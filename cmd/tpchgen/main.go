// Command tpchgen writes the TPC-H-style workload to CSV files, one per
// relation, for use with permcli -csv or external tools.
//
//	tpchgen -sf 0.5 -seed 1 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/tpch"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.5, "scale factor")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	cat, counts := tpch.Generate(tpch.Config{SF: *sf, Seed: *seed})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	for _, name := range cat.Names() {
		r, err := cat.Relation(name)
		if err != nil {
			fatalf("%v", err)
		}
		path := filepath.Join(*out, name+".csv")
		if err := writeCSV(path, r); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, r.Card())
	}
	fmt.Printf("scale %g: %+v\n", *sf, counts)
}

// writeCSV writes one relation to path, folding a close failure into the
// returned error.
func writeCSV(path string, r *rel.Relation) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return catalog.WriteCSV(f, r)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpchgen: "+format+"\n", args...)
	os.Exit(1)
}

// Command permfuzz is the long-budget differential fuzzer: it generates
// random queries from a seed and runs each through the full strategy ×
// executor × parallelism matrix of internal/fuzz, shrinking and reporting
// every disagreement. The bounded version of the same corpus runs inside
// `go test ./internal/fuzz`; this command exists for nightly CI and for
// reproducing a reported failure from its seed.
//
//	go run ./cmd/permfuzz -seed 7 -n 2000            # PR-sized smoke
//	go run ./cmd/permfuzz -seed 20260729 -d 30m \
//	    -maxscans 7 -out fuzz-repros                 # nightly budget
//
// Exit status is non-zero when any query disagreed. Minimized repros are
// written to -out (or stdout) in the corpus file format, ready to be
// checked in under internal/fuzz/testdata/fuzz-corpus/.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"perm/internal/fuzz"
)

func main() {
	seed := flag.Int64("seed", 1, "generator and data seed")
	n := flag.Int("n", 10000, "number of queries to generate")
	d := flag.Duration("d", 0, "optional wall-clock budget; stops early when exceeded")
	out := flag.String("out", "", "directory for minimized repro files (stdout when empty)")
	maxScans := flag.Int("maxscans", fuzz.MaxProvScans, "max base-relation accesses for the provenance matrix")
	shrinkBudget := flag.Int("shrink", 300, "oracle runs the shrinker may spend per failure")
	planCheck := flag.Bool("plancheck", true, "verify every compile stage with internal/plancheck (strict)")
	flag.Parse()

	fuzz.MaxProvScans = *maxScans
	fuzz.PlanCheck = *planCheck
	db := fuzz.NewDB(*seed)
	g := fuzz.NewGen(*seed)
	start := time.Now()
	fails, ran := 0, 0
	for i := 0; i < *n; i++ {
		if *d > 0 && time.Since(start) > *d {
			break
		}
		q := g.Next()
		ran++
		err := fuzz.Check(db, q)
		if err == nil {
			if ran%1000 == 0 {
				fmt.Fprintf(os.Stderr, "permfuzz: %d queries, %d failures, %s elapsed\n", ran, fails, time.Since(start).Round(time.Second))
			}
			continue
		}
		fails++
		min := fuzz.Shrink(db, q, *shrinkBudget)
		minErr := fuzz.Check(db, min)
		report := reproFile(*seed, i, q, min, err, minErr)
		if *out == "" {
			fmt.Println(report)
			continue
		}
		if mkErr := os.MkdirAll(*out, 0o755); mkErr != nil {
			fmt.Fprintf(os.Stderr, "permfuzz: %v\n", mkErr)
			os.Exit(2)
		}
		path := filepath.Join(*out, fmt.Sprintf("repro-seed%d-q%d.sql", *seed, i))
		if wrErr := os.WriteFile(path, []byte(report), 0o644); wrErr != nil {
			fmt.Fprintf(os.Stderr, "permfuzz: %v\n", wrErr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "permfuzz: failure at query %d, repro written to %s\n", i, path)
	}
	fmt.Fprintf(os.Stderr, "permfuzz: done: %d queries, %d failures, %s\n", ran, fails, time.Since(start).Round(time.Second))
	if fails > 0 {
		os.Exit(1)
	}
}

// reproFile renders a failure in the corpus file format: comment header
// with the provenance of the repro, the minimized SQL as the payload.
func reproFile(seed int64, idx int, orig, min *fuzz.Query, err, minErr error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- permfuzz seed %d query %d (replay: permfuzz -seed %d -n %d)\n", seed, idx, seed, idx+1)
	writeComment(&b, "failure", err)
	writeComment(&b, "minimized failure", minErr)
	stage := plancheckStage(minErr)
	if stage == "" {
		stage = plancheckStage(err)
	}
	if stage != "" {
		fmt.Fprintf(&b, "-- plancheck stage: %s\n", stage)
	}
	fmt.Fprintf(&b, "-- original: %s\n", orig.SQL)
	fmt.Fprintf(&b, "%s\n", min.SQL)
	return b.String()
}

// plancheckStage extracts the failing compile stage from a strict
// plan-verification error ("… plancheck: <stage>: <check> at <path>: …"),
// so repro files name the stage that introduced the violation. Empty when
// the failure is not a plancheck one.
func plancheckStage(err error) string {
	if err == nil {
		return ""
	}
	msg := err.Error()
	i := strings.Index(msg, "plancheck: ")
	if i < 0 {
		return ""
	}
	rest := msg[i+len("plancheck: "):]
	// The stage may itself contain "/" but never ": ".
	if j := strings.Index(rest, ": "); j >= 0 {
		return rest[:j]
	}
	return ""
}

func writeComment(b *strings.Builder, label string, err error) {
	msg := "(none)"
	if err != nil {
		msg = err.Error()
	}
	for i, line := range strings.Split(msg, "\n") {
		if i == 0 {
			fmt.Fprintf(b, "-- %s: %s\n", label, line)
		} else {
			fmt.Fprintf(b, "--   %s\n", line)
		}
	}
}

// Command permlint runs the perm invariant checkers over Go packages.
//
// Usage:
//
//	go run ./cmd/permlint ./...
//
// By default every analyzer runs and any non-advisory finding makes the
// process exit 1. The hotalloc analyzer's findings are advisory — they form
// the allocation inventory for the vectorized-executor work — and are
// printed without affecting the exit status unless -strict-hot is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perm/internal/lint"
)

func main() {
	var (
		checks    = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		listFlag  = flag.Bool("list", false, "list the available analyzers and exit")
		strictHot = flag.Bool("strict-hot", false, "count advisory (hotalloc) findings against the exit status")
		inventory = flag.Bool("inventory", false, "print only advisory findings (the hot-path allocation inventory) and exit 0")
		dir       = flag.String("C", ".", "change to this directory before loading packages")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: permlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the perm invariant checkers over the named packages (default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "permlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.NewLoader().Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
		os.Exit(2)
	}

	failing := 0
	for _, d := range diags {
		if *inventory && !d.Info {
			continue
		}
		if !d.Info {
			failing++
		}
		fmt.Println(d)
	}
	if *inventory {
		return
	}
	if *strictHot {
		failing = len(diags)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "permlint: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

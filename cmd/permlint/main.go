// Command permlint runs the perm invariant checkers over Go packages.
//
// Usage:
//
//	go run ./cmd/permlint ./...
//
// By default every analyzer runs and any non-advisory finding makes the
// process exit 1. Advisory findings — the hotalloc allocation inventory and
// the purityinv classification inventory — never affect the exit status and
// are printed only when their analyzer is explicitly selected with -checks
// or when -inventory asks for them, so the default run reports failures
// alone. -strict-hot diffs the hotalloc inventory against a checked-in
// baseline and fails on NEW allocations only (the burn-down may shrink,
// never grow). -json emits the findings as a JSON array instead of text.
//
// -checks lockorder -graph emits the whole-program lock-acquisition-order
// graph in Graphviz DOT form instead of findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"perm/internal/lint"
)

func main() {
	var (
		checks      = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		listFlag    = flag.Bool("list", false, "list the available analyzers and exit")
		strictHot   = flag.Bool("strict-hot", false, "fail on hotalloc findings missing from the -hot-baseline file")
		inventory   = flag.Bool("inventory", false, "print only advisory findings (the hotalloc and purityinv inventories) and exit 0")
		jsonFlag    = flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message/severity)")
		graphFlag   = flag.Bool("graph", false, "emit the whole-program lock-acquisition-order graph as Graphviz DOT and exit")
		verbose     = flag.Bool("v", false, "report load and per-analyzer wall time on stderr")
		hotBaseline = flag.String("hot-baseline", "internal/lint/testdata/hotalloc-baseline.txt", "baseline the -strict-hot inventory diff compares against")
		writeHot    = flag.Bool("write-hot-baseline", false, "rewrite the -hot-baseline file from the current inventory and exit")
		dir         = flag.String("C", ".", "change to this directory before loading packages")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: permlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the perm invariant checkers over the named packages (default ./...).\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := lint.AnalyzerByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "permlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	pkgs, err := lint.NewLoader().Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	if *graphFlag {
		fmt.Print(lint.LockOrderDOT(pkgs))
		if *verbose {
			fmt.Fprintf(os.Stderr, "permlint: load %v (%d packages)\n", loadTime.Round(time.Millisecond), len(pkgs))
		}
		return
	}

	diags, timings, err := lint.RunAnalyzersTimed(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "permlint: load %v (%d packages)\n", loadTime.Round(time.Millisecond), len(pkgs))
		var analyze time.Duration
		for _, tm := range timings {
			analyze += tm.Duration
			fmt.Fprintf(os.Stderr, "permlint: %-12s %v\n", tm.Name, tm.Duration.Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "permlint: analyze %v total\n", analyze.Round(time.Millisecond))
	}

	if *writeHot {
		if err := writeBaseline(*hotBaseline, diags); err != nil {
			fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
			os.Exit(2)
		}
		return
	}

	// Advisory findings are inventories, not failures: shown when asked
	// for (-inventory) or when their analyzer was named in -checks, kept
	// out of the default run's output.
	printInfo := *inventory || *checks != ""
	failing := 0
	var shown []lint.Diagnostic
	for _, d := range diags {
		if !d.Info {
			failing++
			if !*inventory {
				shown = append(shown, d)
			}
			continue
		}
		if printInfo {
			shown = append(shown, d)
		}
	}
	if *jsonFlag {
		if err := lint.WriteJSON(os.Stdout, shown); err != nil {
			fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range shown {
			fmt.Println(d)
		}
	}
	if *inventory {
		return
	}
	if *strictHot {
		regressions, err := diffBaseline(*hotBaseline, diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "permlint: %v\n", err)
			os.Exit(2)
		}
		for _, r := range regressions {
			fmt.Printf("%s [not in %s: new hot-path allocation]\n", r, filepath.Base(*hotBaseline))
		}
		failing += len(regressions)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "permlint: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

// baselineDiag reports whether a finding belongs in the hotalloc baseline:
// only the hotalloc inventory does — other advisory findings (purityinv)
// have their own artifact and must not churn the burn-down file.
func baselineDiag(d lint.Diagnostic) bool {
	return d.Info && d.Analyzer == "hotalloc"
}

// baselineKey normalizes an advisory finding for baseline comparison: the
// file's base name plus the message, deliberately dropping line numbers so
// unrelated edits moving a hot function do not churn the baseline.
func baselineKey(d lint.Diagnostic) string {
	return filepath.Base(d.Pos.Filename) + ": " + d.Message
}

// writeBaseline records the current advisory inventory, one normalized
// finding per line, sorted, duplicates preserved (two appends in one
// function are two entries).
func writeBaseline(path string, diags []lint.Diagnostic) error {
	var keys []string
	for _, d := range diags {
		if baselineDiag(d) {
			keys = append(keys, baselineKey(d))
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# hotalloc baseline: the accepted per-row allocation inventory in perm:hot functions.\n")
	b.WriteString("# permlint -strict-hot fails on findings absent from this file.\n")
	b.WriteString("# Regenerate with: go run ./cmd/permlint -write-hot-baseline ./...\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// diffBaseline returns the advisory findings not covered by the baseline
// multiset: brand-new allocations, or more occurrences of a known one than
// the baseline admits.
func diffBaseline(path string, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading -hot-baseline (generate with -write-hot-baseline): %w", err)
	}
	allowed := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allowed[line]++
	}
	var regressions []lint.Diagnostic
	for _, d := range diags {
		if !baselineDiag(d) {
			continue
		}
		k := baselineKey(d)
		if allowed[k] > 0 {
			allowed[k]--
			continue
		}
		regressions = append(regressions, d)
	}
	return regressions, nil
}

// Command permd serves the perm engine over HTTP/JSON: POST /query,
// /exec and /advise plus GET /healthz and /stats (see internal/service
// for the endpoint contracts). The base catalog is seeded with the fuzz
// tables (r, s, t, u) and the synthetic workload relations (r1, r2) so
// cmd/permload and ad-hoc curl sessions have data to query out of the
// box; per-session DDL lands in copy-on-write overlays above it.
//
//	go run ./cmd/permd -addr :8080
//	curl -s localhost:8080/query -d '{"query":"SELECT PROVENANCE * FROM r"}'
//
// SIGINT/SIGTERM starts a graceful drain: in-flight requests run to
// completion (bounded by -drain-timeout), new statement requests are
// rejected with 503, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perm"
	"perm/internal/fuzz"
	"perm/internal/service"
	"perm/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "seed for the fuzz tables and synth workload data")
	maxConcurrent := flag.Int("max-concurrent", 0, "max statements executing at once (0 = 4×GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on the deadline a request may ask for")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	synthSize := flag.Int("synth-size", 100, "row count of the synth workload relations r1 and r2")
	synthDomain := flag.Int("synth-domain", 0, "bounded uniform domain for synth attribute b (0 = gaussian)")
	planCheck := flag.String("plancheck", "off", "per-stage plan verification: off, log or strict")
	flag.Parse()

	pcMode, err := perm.ParsePlanCheckMode(*planCheck)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permd:", err)
		os.Exit(2)
	}
	db, err := buildDB(*seed, *synthSize, *synthDomain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permd:", err)
		os.Exit(1)
	}
	svc := service.New(service.Config{
		DB:             db,
		MaxConcurrent:  *maxConcurrent,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PlanCheck:      pcMode,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "permd: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "permd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "permd: %v, draining (up to %s)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := svc.Shutdown(ctx)    // reject new statements, wait for admitted ones
	httpErr := httpSrv.Shutdown(ctx) // then close the listener and idle conns
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "permd:", err)
	}
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "permd:", drainErr)
		os.Exit(1)
	}
	if httpErr != nil {
		fmt.Fprintln(os.Stderr, "permd:", httpErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "permd: drained, bye")
}

// buildDB seeds the base catalog: the fuzz tables r, s, t, u plus the
// synthetic workload relations r1, r2.
func buildDB(seed int64, synthSize, synthDomain int) (*perm.DB, error) {
	base := fuzz.NewDB(seed)
	wl := synth.Workload{InputSize: synthSize, SublinkSize: synthSize, Seed: seed, Domain: synthDomain}
	cat := wl.Catalog()
	for _, name := range []string{"r1", "r2"} {
		r, err := cat.Relation(name)
		if err != nil {
			return nil, fmt.Errorf("synth relation %s: %w", name, err)
		}
		base.Catalog().Register(name, r)
	}
	return base, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"perm/internal/synth"
)

// TestGracefulSIGTERM runs the real binary: SIGTERM while a provenance
// query is in flight must let that query deliver its full response,
// reject new work with 503, and exit 0 within the drain deadline.
func TestGracefulSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the permd binary")
	}
	bin := filepath.Join(t.TempDir(), "permd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-synth-size", "200", "-synth-domain", "10", "-drain-timeout", "30s")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + addr

	// Wait for the listener.
	waitFor(t, 5*time.Second, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == 200
	})

	// Launch a slow provenance query (seconds under Gen at this size).
	wl := synth.Workload{InputSize: 200, SublinkSize: 200, Seed: 1, Domain: 10}
	slow := "SELECT PROVENANCE " + strings.TrimPrefix(wl.Q3(0), "SELECT ")
	type result struct {
		status int
		rows   int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		status, rows, err := postQuery(base, fmt.Sprintf(`{"query":%q,"strategy":"Gen","timeout_ms":25000}`, slow))
		resc <- result{status, rows, err}
	}()
	waitFor(t, 5*time.Second, func() bool { return inFlight(base) >= 1 })

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// While the slow query drains, new statement work must get 503.
	waitFor(t, 5*time.Second, func() bool {
		status, _, err := postQuery(base, `{"query":"SELECT a FROM r1 WHERE b = 0"}`)
		return err == nil && status == 503
	})

	r := <-resc
	if r.err != nil || r.status != 200 || r.rows == 0 {
		t.Fatalf("in-flight query during SIGTERM drain: status=%d rows=%d err=%v\npermd log:\n%s",
			r.status, r.rows, r.err, logs.String())
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("permd exited with %v\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("permd did not exit after SIGTERM\n%s", logs.String())
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func postQuery(base, body string) (status, rows int, err error) {
	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Rows [][]any `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, 0, err
	}
	return resp.StatusCode, len(out.Rows), nil
}

func inFlight(base string) int {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var out struct {
		InFlight int `json:"in_flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return -1
	}
	return out.InFlight
}

// Command permload is the load generator and differential checker for
// permd. It replays the checked-in fuzz corpus (honoring the files'
// "-- expect-error:" annotations) plus the synthetic sublink workload —
// plain and SELECT PROVENANCE, streaming and materializing — at a
// configurable concurrency, and reports p50/p99 latency and QPS.
//
// With -verify (the default) every response is additionally compared
// against direct library execution over the same seed: rows must match
// cell for cell, and error responses must carry the engine's error text
// verbatim. The target permd must therefore run with the same -seed,
// -synth-size and -synth-domain.
//
//	go run ./cmd/permd &
//	go run ./cmd/permload -n 500 -c 8
//
// Exit status is non-zero when any request failed unexpectedly or
// diverged from direct execution.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perm"
	"perm/internal/fuzz"
	"perm/internal/synth"
)

// task is one request template in the replay mix.
type task struct {
	name      string
	query     string
	expectErr string // substring the error must contain; "" means must succeed
	mode      string // "" (stream) or "materialize"
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "permd base URL")
	n := flag.Int("n", 500, "total requests to send")
	c := flag.Int("c", 8, "concurrent workers")
	corpus := flag.String("corpus", "internal/fuzz/testdata/fuzz-corpus", "fuzz corpus directory ('' to skip)")
	seed := flag.Int64("seed", 1, "seed; must match the target permd")
	verify := flag.Bool("verify", true, "compare every response against direct library execution")
	synthSize := flag.Int("synth-size", 100, "synth workload size; must match the target permd")
	synthDomain := flag.Int("synth-domain", 0, "synth workload domain; must match the target permd")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request timeout_ms to send (0 = server default)")
	flag.Parse()

	tasks, err := buildTasks(*corpus, *seed, *synthSize, *synthDomain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permload:", err)
		os.Exit(1)
	}
	var direct *perm.DB
	if *verify {
		direct = buildDB(*seed, *synthSize, *synthDomain)
	}

	var (
		next     atomic.Int64
		failures atomic.Int64
		expected atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
		msgs     []string
	)
	fail := func(msg string) {
		failures.Add(1)
		mu.Lock()
		if len(msgs) < 20 {
			msgs = append(msgs, msg)
		}
		mu.Unlock()
	}
	client := &http.Client{}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, *n / *c + 1)
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					break
				}
				tk := tasks[i%int64(len(tasks))]
				d, wasErr, msg := runOne(client, *addr, tk, *timeoutMS, direct)
				local = append(local, d)
				if msg != "" {
					fail(tk.name + ": " + msg)
				} else if wasErr {
					expected.Add(1)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	fmt.Printf("permload: %d requests, %d workers, %d task templates, %s elapsed\n",
		len(lats), *c, len(tasks), elapsed.Round(time.Millisecond))
	fmt.Printf("permload: p50 %s  p99 %s  max %s  %.0f req/s\n",
		q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		q(1).Round(time.Microsecond), float64(len(lats))/elapsed.Seconds())
	fmt.Printf("permload: %d expected errors, %d failures\n", expected.Load(), failures.Load())
	for _, m := range msgs {
		fmt.Fprintln(os.Stderr, "permload: FAIL:", m)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// queryBody mirrors the service's QueryRequest.
type queryBody struct {
	Query     string `json:"query"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// queryReply mirrors the union of the service's success and error bodies.
type queryReply struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Error   *struct {
		Class   string `json:"class"`
		Message string `json:"message"`
	} `json:"error"`
}

// runOne sends one request and checks the outcome. It returns the request
// latency, whether the response was an (expected) error, and a non-empty
// failure message when the outcome was wrong.
func runOne(client *http.Client, addr string, tk task, timeoutMS int64, direct *perm.DB) (time.Duration, bool, string) {
	body, _ := json.Marshal(queryBody{Query: tk.query, Mode: tk.mode, TimeoutMS: timeoutMS})
	t0 := time.Now()
	resp, err := client.Post(addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return time.Since(t0), false, "transport: " + err.Error()
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var out queryReply
	decErr := dec.Decode(&out)
	resp.Body.Close()
	d := time.Since(t0)
	if decErr != nil {
		return d, false, "bad response JSON: " + decErr.Error()
	}
	if resp.StatusCode == http.StatusOK && out.Error != nil ||
		resp.StatusCode != http.StatusOK && out.Error == nil {
		return d, false, fmt.Sprintf("status %d does not match body", resp.StatusCode)
	}
	if out.Error != nil && tk.expectErr != "" && !strings.Contains(out.Error.Message, tk.expectErr) {
		return d, true, fmt.Sprintf("error %q does not contain %q", out.Error.Message, tk.expectErr)
	}
	if direct == nil {
		// Without -verify, judge by the corpus annotation alone.
		if tk.expectErr == "" && out.Error != nil {
			return d, true, "unexpected error: " + out.Error.Message
		}
		if tk.expectErr != "" && out.Error == nil {
			return d, false, fmt.Sprintf("expected an error containing %q, got success", tk.expectErr)
		}
		return d, out.Error != nil, ""
	}
	var opts []perm.Option
	if tk.mode == "materialize" {
		opts = append(opts, perm.WithoutStreaming())
	}
	want, wantErr := direct.Query(tk.query, opts...)
	switch {
	case wantErr != nil && out.Error == nil:
		return d, false, fmt.Sprintf("library errored (%v) but service succeeded", wantErr)
	case wantErr == nil && out.Error != nil:
		return d, true, fmt.Sprintf("service errored (%s) but library succeeded", out.Error.Message)
	case wantErr != nil:
		if out.Error.Message != wantErr.Error() {
			return d, true, fmt.Sprintf("error text diverged: service %q, library %q", out.Error.Message, wantErr)
		}
		return d, true, ""
	}
	if msg := compareRows(want, out); msg != "" {
		return d, false, msg
	}
	return d, false, ""
}

// compareRows checks column names and every cell of the HTTP result
// against the direct library result.
func compareRows(want *perm.Result, got queryReply) string {
	if strings.Join(want.Columns, "|") != strings.Join(got.Columns, "|") {
		return fmt.Sprintf("columns diverged: service %v, library %v", got.Columns, want.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count diverged: service %d, library %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			return fmt.Sprintf("row %d width diverged", i)
		}
		for j := range want.Rows[i] {
			if !cellEqual(want.Rows[i][j], got.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d diverged: service %v, library %v",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return ""
}

// cellEqual compares one direct-library cell with one JSON-decoded cell.
// Numbers compare numerically (JSON renders 1e+06 as 1000000), everything
// else by rendered text.
func cellEqual(want, got any) bool {
	if want == nil || got == nil {
		return want == nil && got == nil
	}
	ws := fmt.Sprintf("%v", want)
	var gs string
	switch g := got.(type) {
	case json.Number:
		gs = g.String()
	default:
		gs = fmt.Sprintf("%v", g)
	}
	if ws == gs {
		return true
	}
	wf, werr := strconv.ParseFloat(ws, 64)
	gf, gerr := strconv.ParseFloat(gs, 64)
	return werr == nil && gerr == nil && wf == gf
}

// buildTasks assembles the replay mix: every corpus file (plus PROVENANCE
// variants of the LIMIT-free success files) and the four synth queries,
// plain and PROVENANCE, under both executor modes.
func buildTasks(corpusDir string, seed int64, synthSize, synthDomain int) ([]task, error) {
	var tasks []task
	if corpusDir != "" {
		files, err := filepath.Glob(filepath.Join(corpusDir, "*.sql"))
		if err != nil || len(files) == 0 {
			return nil, fmt.Errorf("no corpus at %s (use -corpus '' to skip)", corpusDir)
		}
		for _, file := range files {
			raw, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			query, expectErr := parseCorpusFile(string(raw))
			if query == "" {
				continue
			}
			name := filepath.Base(file)
			tasks = append(tasks, task{name: name, query: query, expectErr: expectErr})
			upper := strings.ToUpper(query)
			if expectErr == "" && strings.HasPrefix(query, "SELECT ") &&
				!strings.Contains(upper, "LIMIT") && !strings.Contains(upper, "OFFSET") {
				tasks = append(tasks, task{
					name:  name + "+prov",
					query: "SELECT PROVENANCE " + strings.TrimPrefix(query, "SELECT "),
				})
			}
		}
	}
	wl := synth.Workload{InputSize: synthSize, SublinkSize: synthSize, Seed: seed, Domain: synthDomain}
	gens := []struct {
		name string
		fn   func(int64) string
	}{{"q1", wl.Q1}, {"q2", wl.Q2}, {"q3", wl.Q3}, {"q4", wl.Q4}}
	for _, g := range gens {
		for inst := int64(0); inst < 3; inst++ {
			q := g.fn(inst)
			mode := ""
			if inst%2 == 1 {
				mode = "materialize"
			}
			tasks = append(tasks, task{name: fmt.Sprintf("synth-%s-%d", g.name, inst), query: q, mode: mode})
			tasks = append(tasks, task{
				name:  fmt.Sprintf("synth-%s-%d+prov", g.name, inst),
				query: "SELECT PROVENANCE " + strings.TrimPrefix(q, "SELECT "),
				mode:  mode,
			})
		}
	}
	return tasks, nil
}

// parseCorpusFile extracts the SQL text and the optional expect-error
// annotation from one corpus file (same format as internal/fuzz).
func parseCorpusFile(raw string) (query, expectErr string) {
	var sqlLines []string
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(trimmed, "-- expect-error:"); ok {
			expectErr = strings.TrimSpace(rest)
			continue
		}
		if strings.HasPrefix(trimmed, "--") || trimmed == "" {
			continue
		}
		sqlLines = append(sqlLines, trimmed)
	}
	return strings.Join(sqlLines, " "), expectErr
}

// buildDB mirrors permd's base catalog: fuzz tables r, s, t, u plus synth
// relations r1, r2.
func buildDB(seed int64, synthSize, synthDomain int) *perm.DB {
	db := fuzz.NewDB(seed)
	wl := synth.Workload{InputSize: synthSize, SublinkSize: synthSize, Seed: seed, Domain: synthDomain}
	cat := wl.Catalog()
	for _, name := range []string{"r1", "r2"} {
		r, err := cat.Relation(name)
		if err != nil {
			panic(err)
		}
		db.Catalog().Register(name, r)
	}
	return db
}

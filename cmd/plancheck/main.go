// Command plancheck runs the staged algebra-IR verifier
// (internal/plancheck) over SQL files without executing them: every file
// is compiled through translate → rewrite → optimize and each stage's
// plan is checked against the structural invariants. It is the CI gate
// that keeps the fuzz corpus plancheck-clean under every strategy, and a
// debugging tool for inspecting per-stage verdicts of a single query.
//
//	go run ./cmd/plancheck -corpus internal/fuzz/testdata/fuzz-corpus
//	go run ./cmd/plancheck -v -strategy Gen query.sql
//	go run ./cmd/plancheck -corpus ... -inject   # self-test: must fail
//
// Files use the fuzz corpus format: "--" comment lines are stripped, and
// files declaring "-- expect-error:" are skipped (they do not compile).
// Each file's plain form is verified once, and its SELECT PROVENANCE form
// under every requested strategy; strategies that reject the query at the
// rewrite stage ("rewrite: " errors) count as not applicable, not as
// failures.
//
// Exit status: 0 when every stage of every configuration verified clean
// (advisory findings do not fail the gate; -advisory prints them), 1 when
// any non-advisory finding or unexpected compile error surfaced, 2 on
// usage or I/O errors.
//
// -inject is the gate's self-test: after translating each file, the plan
// is deliberately corrupted (a projection referencing a column no scope
// defines) before verification. The run must then report findings and
// exit 1 — CI asserts the failure, proving the gate can fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"perm"
	"perm/internal/algebra"
	"perm/internal/fuzz"
	"perm/internal/plancheck"
	"perm/internal/sql"
)

var strategyNames = map[string]perm.Strategy{
	"Gen": perm.Gen, "Left": perm.Left, "Move": perm.Move,
	"Unn": perm.Unn, "UnnX": perm.UnnX, "Auto": perm.Auto,
}

func main() {
	corpus := flag.String("corpus", "", "directory of corpus .sql files to sweep (positional args name single files)")
	strategy := flag.String("strategy", "all", "provenance strategy to verify under: Gen, Left, Move, Unn, UnnX, Auto or all")
	seed := flag.Int64("seed", 1, "seed for the base catalog the files are compiled against")
	advisory := flag.Bool("advisory", false, "print advisory findings (they never affect the exit status)")
	verbose := flag.Bool("v", false, "print a per-stage verdict line for every configuration")
	inject := flag.Bool("inject", false, "self-test: corrupt every translated plan so the gate provably fails")
	flag.Parse()

	var strategies []perm.Strategy
	if *strategy == "all" {
		strategies = []perm.Strategy{perm.Gen, perm.Left, perm.Move, perm.Unn, perm.UnnX, perm.Auto}
	} else {
		s, ok := strategyNames[*strategy]
		if !ok {
			fmt.Fprintf(os.Stderr, "plancheck: unknown strategy %q\n", *strategy)
			os.Exit(2)
		}
		strategies = []perm.Strategy{s}
	}

	files := flag.Args()
	if *corpus != "" {
		matches, err := filepath.Glob(filepath.Join(*corpus, "*.sql"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(os.Stderr, "plancheck: no .sql files under %s\n", *corpus)
			os.Exit(2)
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "plancheck: nothing to check (pass -corpus or file arguments)")
		os.Exit(2)
	}

	db := fuzz.NewDB(*seed)
	r := &runner{db: db, strategies: strategies, advisory: *advisory, verbose: *verbose, inject: *inject}
	for _, file := range files {
		if err := r.file(file); err != nil {
			fmt.Fprintf(os.Stderr, "plancheck: %s: %v\n", file, err)
			os.Exit(2)
		}
	}
	fmt.Printf("plancheck: %d files, %d configurations verified, %d skipped: %d findings (%d advisory)\n",
		len(files), r.configs, r.skipped, r.bad+r.adv, r.adv)
	if r.bad > 0 {
		os.Exit(1)
	}
}

type runner struct {
	db         *perm.DB
	strategies []perm.Strategy
	advisory   bool
	verbose    bool
	inject     bool

	configs int // (file, strategy) configurations verified
	skipped int // expect-error files and inapplicable strategies
	bad     int // non-advisory findings
	adv     int // advisory findings
}

// file verifies one corpus file under every configuration. Only I/O and
// format problems return an error; findings are counted on the runner.
func (r *runner) file(path string) error {
	query, skip, err := readCorpusFile(path)
	if err != nil {
		return err
	}
	name := filepath.Base(path)
	if skip {
		r.skipped++
		if r.verbose {
			fmt.Printf("%s: skip (expect-error file)\n", name)
		}
		return nil
	}
	if r.inject {
		return r.injectFile(name, query)
	}

	// Plain form: translate and optimize stages only.
	if err := r.verify(name, "plain", query); err != nil {
		return err
	}
	if !strings.HasPrefix(strings.ToUpper(query), "SELECT") {
		return nil
	}
	provQ := "SELECT PROVENANCE" + query[len("SELECT"):]
	for _, s := range r.strategies {
		if err := r.verify(name, string(s), provQ, perm.WithStrategy(s)); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) verify(name, config, query string, opts ...perm.Option) error {
	stages, err := r.db.VerifyPlan(query, opts...)
	if err != nil {
		if strings.HasPrefix(err.Error(), "rewrite: ") {
			r.skipped++
			if r.verbose {
				fmt.Printf("%s [%s]: n/a (%v)\n", name, config, err)
			}
			return nil
		}
		// The corpus compiles by construction; anything else is a defect.
		r.bad++
		fmt.Printf("%s [%s]: compile failed: %v\n", name, config, err)
		return nil
	}
	r.configs++
	for _, st := range stages {
		clean := true
		for _, f := range st.Findings {
			if f.Advisory {
				r.adv++
				if r.advisory {
					fmt.Printf("%s [%s]: %s\n", name, config, f)
				}
				continue
			}
			clean = false
			r.bad++
			fmt.Printf("%s [%s]: %s\n", name, config, f)
		}
		if r.verbose {
			verdict := "ok"
			if !clean {
				verdict = "FAIL"
			}
			fmt.Printf("%s [%s] %s: %s\n", name, config, st.Stage, verdict)
		}
	}
	return nil
}

// injectFile translates the file and verifies a deliberately corrupted
// plan: a projection referencing a column no scope defines. The verifier
// must report it — a clean verdict here means the gate cannot fail.
func (r *runner) injectFile(name, query string) error {
	tr, err := sql.CompileEnv(sql.Env{Catalog: r.db.Catalog()}, query)
	if err != nil {
		return fmt.Errorf("compile for injection: %w", err)
	}
	broken := algebra.NewProject(tr.Plan, algebra.Col(algebra.Attr("plancheck#injected"), "injected"))
	diags := plancheck.Verify(plancheck.StagePlan{Stage: plancheck.StageTranslate, Plan: broken, Hidden: tr.Hidden})
	r.configs++
	found := false
	for _, d := range diags {
		if !d.Advisory {
			found = true
			r.bad++
			fmt.Printf("%s [inject]: %s\n", name, d)
		}
	}
	if !found {
		fmt.Printf("%s [inject]: SELF-TEST BROKEN: the corrupted plan verified clean\n", name)
	}
	return nil
}

// readCorpusFile strips corpus comments and reports whether the file is
// an expect-error case (which does not compile and cannot be verified).
func readCorpusFile(path string) (query string, skip bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false, err
	}
	var sqlLines []string
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "-- expect-error:") {
			return "", true, nil
		}
		if strings.HasPrefix(trimmed, "--") || trimmed == "" {
			continue
		}
		sqlLines = append(sqlLines, trimmed)
	}
	if len(sqlLines) == 0 {
		return "", false, fmt.Errorf("no SQL payload")
	}
	return strings.Join(sqlLines, " "), false, nil
}

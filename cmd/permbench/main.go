// Command permbench regenerates the paper's evaluation tables (Figure 6:
// TPC-H strategies across database sizes; Figures 7–9: synthetic sweeps)
// and the two executor comparisons of this reproduction's execution layer:
// the memoizing/parallel modes table and the streaming-vs-materializing
// table.
//
// Examples:
//
//	permbench -fig 6                     # TPC-H, default four scales
//	permbench -fig 6 -scales 0.05,0.5 -queries 4,11,15 -timeout 10s
//	permbench -fig 7 -sizes 10,100,1000 -instances 5
//	permbench -fig all -timeout 5s       # everything, quick cutoff
//	permbench -fig modes                 # sequential vs memo vs parallel
//	permbench -fig stream                # streaming vs materializing executor
//	permbench -fig stream -sizes 100,400 -instances 1
//	permbench -fig 7 -parallel 8 -memo   # paper sweep on the fast executor
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"perm/internal/bench"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, modes, stream or all")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-cell timeout (the paper's 6h rule, scaled); slower cells print >timeout")
		instances = flag.Int("instances", 3, "random query instances averaged per cell (the paper used 100)")
		seed      = flag.Int64("seed", 1, "workload seed")
		scales    = flag.String("scales", "", "figure 6 database scales, comma-separated (default 0.05,0.5,5,50)")
		queries   = flag.String("queries", "", "figure 6 TPC-H query numbers, comma-separated (default: all nine)")
		sizes     = flag.String("sizes", "", "sweep sizes for figures 7-9 and the modes/stream tables, comma-separated")
		parallel  = flag.Int("parallel", 0, "executor worker pool size for figures 6-9 (0: sequential, matching the paper)")
		memo      = flag.Bool("memo", false, "enable per-binding sublink memoization for figures 6-9 (off matches the paper's PostgreSQL executor)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size of the modes comparison's parallel cells")
	)
	flag.Parse()

	r := bench.New(os.Stdout, *timeout, *instances)
	r.Parallelism = *parallel
	r.SublinkMemo = *memo

	f6 := bench.DefaultFig6()
	f6.Seed = *seed
	if *scales != "" {
		f6.Scales = nil
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("invalid scale %q: %v", s, err)
			}
			f6.Scales = append(f6.Scales, v)
		}
	}
	if *queries != "" {
		for _, s := range strings.Split(*queries, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("invalid query number %q: %v", s, err)
			}
			f6.Queries = append(f6.Queries, v)
		}
	}

	sc := bench.DefaultSynth()
	sc.Seed = *seed
	if *sizes != "" {
		sc.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatalf("invalid size %q: %v", s, err)
			}
			sc.Sizes = append(sc.Sizes, v)
		}
	}

	mc := bench.DefaultModes(*workers)
	mc.Seed = *seed
	st := bench.DefaultStream()
	st.Seed = *seed
	if *sizes != "" {
		mc.Sizes = append([]int(nil), sc.Sizes...)
		st.Sizes = append([]int(nil), sc.Sizes...)
	}

	// The process entry point owns the root context; an interrupt cancels
	// the in-flight cell and the run exits at the next measurement.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("permbench: timeout=%v instances=%d seed=%d\n", *timeout, *instances, *seed)
	switch *fig {
	case "6":
		r.Figure6(ctx, f6)
	case "7":
		r.Figure7(ctx, sc)
	case "8":
		r.Figure8(ctx, sc)
	case "9":
		r.Figure9(ctx, sc)
	case "modes":
		r.Modes(ctx, mc)
	case "stream":
		r.FigureStream(ctx, st)
	case "all":
		r.Figure6(ctx, f6)
		r.Figure7(ctx, sc)
		r.Figure8(ctx, sc)
		r.Figure9(ctx, sc)
		r.Modes(ctx, mc)
		r.FigureStream(ctx, st)
	default:
		fatalf("unknown figure %q (want 6, 7, 8, 9, modes, stream or all)", *fig)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "permbench: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"strings"
	"testing"

	"perm"
)

func demoDB(t *testing.T) *perm.DB {
	t.Helper()
	db := perm.Open()
	if err := db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMetaCommands(t *testing.T) {
	db := demoDB(t)
	strategy := perm.Auto
	parallel := 1

	var sb strings.Builder
	if !meta(&sb, db, `\d`, &strategy, &parallel) {
		t.Fatal(`\d should not quit`)
	}
	if !strings.Contains(sb.String(), "r") || !strings.Contains(sb.String(), "s") {
		t.Errorf(`\d output: %q`, sb.String())
	}

	sb.Reset()
	meta(&sb, db, `\strategy Gen`, &strategy, &parallel)
	if strategy != perm.Gen {
		t.Errorf("strategy = %v", strategy)
	}
	sb.Reset()
	meta(&sb, db, `\strategy Bogus`, &strategy, &parallel)
	if !strings.Contains(sb.String(), "unknown strategy") {
		t.Errorf("bad strategy output: %q", sb.String())
	}

	sb.Reset()
	meta(&sb, db, `\explain SELECT a FROM r;`, &strategy, &parallel)
	if !strings.Contains(sb.String(), "Scan r") {
		t.Errorf(`\explain output: %q`, sb.String())
	}

	sb.Reset()
	meta(&sb, db, `\advise SELECT a FROM r WHERE a = ANY (SELECT c FROM s);`, &strategy, &parallel)
	if !strings.Contains(sb.String(), "cost") {
		t.Errorf(`\advise output: %q`, sb.String())
	}

	sb.Reset()
	meta(&sb, db, `\nonsense`, &strategy, &parallel)
	if !strings.Contains(sb.String(), "meta commands") {
		t.Errorf("help output: %q", sb.String())
	}

	if meta(&sb, db, `\q`, &strategy, &parallel) {
		t.Error(`\q should quit`)
	}
}

func TestRunQueryOutput(t *testing.T) {
	db := demoDB(t)
	var sb strings.Builder
	runQuery(&sb, db, "SELECT PROVENANCE a FROM r WHERE a = 1;", perm.Auto, 1)
	out := sb.String()
	for _, want := range []string{"prov_r_a", "(1 rows)", "sources: r"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	runQuery(&sb, db, "CREATE VIEW v AS SELECT a FROM r;", perm.Auto, 1)
	if !strings.Contains(sb.String(), "ok") {
		t.Errorf("view creation output: %q", sb.String())
	}
	sb.Reset()
	runQuery(&sb, db, "SELECT * FROM v WHERE a = 2;", perm.Auto, 1)
	if !strings.Contains(sb.String(), "(1 rows)") {
		t.Errorf("view query output: %q", sb.String())
	}

	sb.Reset()
	runQuery(&sb, db, "SELEC broken;", perm.Auto, 1)
	if !strings.Contains(sb.String(), "error:") {
		t.Errorf("error output: %q", sb.String())
	}
}

// Command permcli is an interactive SQL shell for the Perm reproduction,
// with the paper's SELECT PROVENANCE language extension.
//
//	permcli -demo                        # Figure 3's R and S preloaded
//	permcli -tpch 0.2                    # TPC-H-style data at scale 0.2
//	permcli -csv r=path/to/r.csv -csv s=path/to/s.csv
//
// Statements end with a semicolon (CREATE VIEW / DROP VIEW work too). Meta
// commands: \d lists relations, \explain <query> prints the (rewritten,
// optimized) plan, \advise <query> ranks the strategies by estimated cost,
// \strategy <Gen|Left|Move|Unn|UnnX|Auto> sets the rewrite strategy,
// \parallel <n> sets the executor worker pool size, \q quits.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"perm"
	"perm/internal/tpch"
)

type csvFlags []string

func (c *csvFlags) String() string     { return strings.Join(*c, ",") }
func (c *csvFlags) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	var (
		demo   = flag.Bool("demo", false, "preload the paper's Figure 3 relations r(a,b) and s(c,d)")
		tpchSF = flag.Float64("tpch", 0, "preload TPC-H-style data at this scale factor")
		seed   = flag.Int64("seed", 1, "seed for generated data")
		par    = flag.Int("parallel", 1, "executor worker pool size (1: sequential)")
		csvs   csvFlags
	)
	flag.Var(&csvs, "csv", "load a relation from CSV as name=path (repeatable)")
	flag.Parse()

	db := perm.Open()
	if *demo {
		must(db.Register("r", []string{"a", "b"}, [][]any{{1, 1}, {2, 1}, {3, 2}}))
		must(db.Register("s", []string{"c", "d"}, [][]any{{1, 3}, {2, 4}, {4, 5}}))
		fmt.Println("loaded demo relations r(a, b) and s(c, d) from Figure 3 of the paper")
	}
	if *tpchSF > 0 {
		cat, counts := tpch.Generate(tpch.Config{SF: *tpchSF, Seed: *seed})
		for _, name := range cat.Names() {
			r, _ := cat.Relation(name)
			db.Catalog().Register(name, r)
		}
		fmt.Printf("loaded TPC-H scale %g (lineitem %d rows)\n", *tpchSF, counts.Lineitem)
	}
	for _, spec := range csvs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatalf("-csv wants name=path, got %q", spec)
		}
		if err := loadCSV(db, name, path); err != nil {
			fatalf("loading %s: %v", path, err)
		}
		fmt.Printf("loaded %s from %s\n", name, path)
	}

	strategy := perm.Auto
	parallel := *par
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("perm> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !meta(os.Stdout, db, trimmed, &strategy, &parallel) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			runQuery(os.Stdout, db, buf.String(), strategy, parallel)
			buf.Reset()
		}
		prompt()
	}
}

// meta handles a backslash command; it returns false to quit.
func meta(w io.Writer, db *perm.DB, cmd string, strategy *perm.Strategy, parallel *int) bool {
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return false
	case cmd == "\\d":
		for _, name := range db.Relations() {
			fmt.Fprintln(w, " ", name)
		}
	case strings.HasPrefix(cmd, "\\strategy"):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, "\\strategy"))
		switch perm.Strategy(arg) {
		case perm.Gen, perm.Left, perm.Move, perm.Unn, perm.UnnX, perm.Auto:
			*strategy = perm.Strategy(arg)
			fmt.Fprintln(w, "strategy set to", arg)
		default:
			fmt.Fprintln(w, "unknown strategy; want Gen, Left, Move, Unn, UnnX or Auto")
		}
	case strings.HasPrefix(cmd, "\\parallel"):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, "\\parallel"))
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			fmt.Fprintln(w, "\\parallel wants a worker count >= 1")
			break
		}
		*parallel = n
		fmt.Fprintln(w, "executor workers set to", n)
	case strings.HasPrefix(cmd, "\\advise"):
		q := strings.TrimSpace(strings.TrimPrefix(cmd, "\\advise"))
		q = strings.TrimSuffix(q, ";")
		advice, err := db.Advise(q)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			break
		}
		for _, a := range advice {
			if a.Applicable {
				fmt.Fprintf(w, "  %-5s cost %.3g  (%s)\n", a.Strategy, a.Cost, a.Reason)
			} else {
				fmt.Fprintf(w, "  %-5s not applicable\n", a.Strategy)
			}
		}
	case strings.HasPrefix(cmd, "\\explain"):
		q := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		q = strings.TrimSuffix(q, ";")
		plan, err := db.Explain(q, perm.WithStrategy(*strategy))
		if err != nil {
			fmt.Fprintln(w, "error:", err)
		} else {
			fmt.Fprint(w, plan)
		}
	default:
		fmt.Fprintln(w, `meta commands: \d  \explain <query>  \advise <query>  \strategy <name>  \parallel <n>  \q`)
	}
	return true
}

func runQuery(w io.Writer, db *perm.DB, q string, strategy perm.Strategy, parallel int) {
	res, err := db.Exec(q, perm.WithStrategy(strategy), perm.WithParallelism(parallel))
	if err != nil {
		fmt.Fprintln(w, "error:", err)
		return
	}
	if res == nil {
		fmt.Fprintln(w, "ok")
		return
	}
	fmt.Fprint(w, res.FormatTable())
	fmt.Fprintf(w, "(%d rows)\n", len(res.Rows))
	if len(res.Provenance) > 0 {
		fmt.Fprintf(w, "provenance columns start at %d; sources:", res.DataColumns+1)
		for _, g := range res.Provenance {
			fmt.Fprintf(w, " %s", g.Relation)
		}
		fmt.Fprintln(w)
	}
}

func must(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

// loadCSV loads one relation from a CSV file, closing it on every path.
func loadCSV(db *perm.DB, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.LoadCSV(name, f)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "permcli: "+format+"\n", args...)
	os.Exit(1)
}

package perm

import (
	"context"
	"fmt"
	"sync"

	"perm/internal/catalog"
	"perm/internal/sql"
)

// Session is an isolated statement scope over a shared DB: its DDL —
// CREATE TABLE, INSERT, CREATE VIEW, DROP — lands in a private
// copy-on-write layer (a catalog.Overlay plus a session views map) that
// shadows the base without ever mutating it. Any number of sessions run
// concurrently against one DB; a session's writes are invisible to every
// other session, and every statement executes against one immutable
// snapshot of (base + session layer), so long-running provenance queries
// neither block nor observe concurrent DDL — not even their own session's.
//
// A Session's methods are safe for concurrent use; session DDL serializes
// on the session's mutex while queries only take snapshots.
type Session struct {
	db *DB

	// mu serializes session DDL (the copy-on-write read-modify-write
	// cycles) and guards the views/droppedViews maps, which are replaced
	// wholesale so snapshots stay stable. The overlay has its own lock.
	mu      sync.Mutex
	overlay *catalog.Overlay
	// views is the session's private view layer. guarded-by: mu
	views map[string]*sql.ViewDef
	// droppedViews tombstones base views dropped in this session.
	// guarded-by: mu
	droppedViews map[string]bool
}

// NewSession opens a session layered over db's current and future base
// state: base DDL performed after the session is created is visible to the
// session unless shadowed by the session's own layer.
func (db *DB) NewSession() *Session {
	return &Session{
		db:           db,
		overlay:      catalog.NewOverlay(db.cat),
		views:        map[string]*sql.ViewDef{},
		droppedViews: map[string]bool{},
	}
}

// snapshot captures one consistent view of the session: the overlay's
// catalog snapshot plus the merged views map (session views shadow base
// views; session drops hide them).
func (s *Session) snapshot() snapshot {
	s.mu.Lock()
	local, dropped := s.views, s.droppedViews
	s.mu.Unlock()
	base := s.db.snapshotViews()
	merged := make(map[string]*sql.ViewDef, len(base)+len(local))
	for n, v := range base {
		if !dropped[n] {
			merged[n] = v
		}
	}
	for n, v := range local {
		merged[n] = v
	}
	return snapshot{src: s.overlay.Snapshot(), views: merged}
}

// Query parses, plans and executes a SQL statement against the session's
// snapshot. See DB.Query.
func (s *Session) Query(query string, opts ...Option) (*Result, error) {
	return s.snapshot().query(query, newQueryConfig(opts))
}

// QueryContext is Query under a context (see DB.QueryContext).
func (s *Session) QueryContext(ctx context.Context, query string, opts ...Option) (*Result, error) {
	return s.Query(query, append([]Option{WithContext(ctx)}, opts...)...)
}

// Advise ranks the rewrite strategies for a query against the session's
// snapshot. See DB.Advise.
func (s *Session) Advise(query string) ([]StrategyAdvice, error) {
	return s.snapshot().advise(query)
}

// Explain returns the (optimized) plan of a statement against the
// session's snapshot. See DB.Explain.
func (s *Session) Explain(query string, opts ...Option) (string, error) {
	return s.snapshot().explain(query, newQueryConfig(opts))
}

// Relations lists the relation names visible to the session.
func (s *Session) Relations() []string { return s.overlay.Names() }

// Views lists the view names visible to the session.
func (s *Session) Views() []string {
	sn := s.snapshot()
	out := make([]string, 0, len(sn.views))
	for n := range sn.views {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// ExecContext is Exec under a context (see DB.QueryContext).
func (s *Session) ExecContext(ctx context.Context, statement string, opts ...Option) (*Result, error) {
	return s.Exec(statement, append([]Option{WithContext(ctx)}, opts...)...)
}

// Exec runs any statement in the session: queries return a Result; CREATE
// TABLE / CREATE VIEW / INSERT / DROP mutate only the session's
// copy-on-write layer and return nil.
func (s *Session) Exec(statement string, opts ...Option) (*Result, error) {
	st, err := sql.ParseStatement(statement)
	if err != nil {
		return nil, err
	}
	switch {
	case st.CreateView != nil:
		return nil, s.createView(st.CreateView)
	case st.DropView != "":
		return nil, s.dropView(st.DropView)
	case st.CreateTable != nil:
		return nil, s.createTable(st.CreateTable)
	case st.Insert != nil:
		return nil, s.insert(st.Insert)
	case st.DropTable != "":
		return nil, s.overlay.Drop(st.DropTable)
	default:
		return s.Query(statement, opts...)
	}
}

// createView mirrors the DB's probe-before-publish discipline at session
// scope: the body is compiled against a snapshot that already contains the
// new view (substituting any ordinals in place, see sql.Analyze), and only
// a successful probe publishes. The session lock spans the whole cycle, so
// concurrent session DDL serializes; concurrent queries keep whatever
// snapshot they hold.
func (s *Session) createView(def *sql.ViewDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	probe := cloneViews(s.views)
	probe[def.Name] = def
	base := s.db.snapshotViews()
	merged := make(map[string]*sql.ViewDef, len(base)+len(probe))
	for n, v := range base {
		if !s.droppedViews[n] {
			merged[n] = v
		}
	}
	for n, v := range probe {
		merged[n] = v
	}
	if _, err := sql.CompileEnv(sql.Env{Catalog: s.overlay.Snapshot(), Views: merged}, "SELECT * FROM "+def.Name); err != nil {
		return err
	}
	s.views = probe
	return nil
}

func (s *Session) dropView(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.views[name]; ok {
		next := cloneViews(s.views)
		delete(next, name)
		s.views = next
		return nil
	}
	base := s.db.snapshotViews()
	if _, ok := base[name]; ok && !s.droppedViews[name] {
		// A base view is dropped by tombstone: the base map is shared.
		next := make(map[string]bool, len(s.droppedViews)+1)
		for k, v := range s.droppedViews {
			next[k] = v
		}
		next[name] = true
		s.droppedViews = next
		return nil
	}
	return fmt.Errorf("perm: unknown view %q", name)
}

func (s *Session) createTable(def *sql.TableDef) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.viewVisibleLocked(def.Name) {
		return fmt.Errorf("perm: relation %q already exists (as a view)", def.Name)
	}
	r, kinds := tableDefRelation(def)
	return s.overlay.Create(def.Name, r, kinds)
}

// insert runs the session-scope copy-on-write cycle: read the current
// version through the overlay (a base relation on first touch), build the
// appended copy, publish it into the session layer. The session lock makes
// the cycle atomic against concurrent session DDL; snapshots taken before
// the publish keep the old version.
func (s *Session) insert(ins *sql.InsertStmt) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.viewVisibleLocked(ins.Table) {
		return fmt.Errorf("perm: cannot INSERT into view %q", ins.Table)
	}
	old, err := s.overlay.Relation(ins.Table)
	if err != nil {
		return err
	}
	kinds, err := s.overlay.Kinds(ins.Table)
	if err != nil {
		return err
	}
	next, merged, err := appendRows(old, kinds, ins)
	if err != nil {
		return err
	}
	s.overlay.Replace(ins.Table, next, merged)
	return nil
}

// viewVisibleLocked reports whether name resolves to a view in the
// session. Callers must hold the session lock.
//
// permlint:held mu
func (s *Session) viewVisibleLocked(name string) bool {
	if _, ok := s.views[name]; ok {
		return true
	}
	if s.droppedViews[name] {
		return false
	}
	_, ok := s.db.snapshotViews()[name]
	return ok
}

// Register installs a base relation into the session's layer (shadowing
// any base relation of the same name) — the programmatic counterpart of
// CREATE TABLE + INSERT for tools. Row values follow DB.Register.
func (s *Session) Register(name string, columns []string, rows [][]any) error {
	r, err := buildRelation(columns, rows)
	if err != nil {
		return err
	}
	s.overlay.Replace(name, r, nil)
	return nil
}

module perm

go 1.24

package perm

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/opt"
	"perm/internal/plancheck"
	"perm/internal/rewrite"
	"perm/internal/sql"
)

// PlanCheckMode selects how much the per-stage plan verifier
// (internal/plancheck) interferes with a query.
type PlanCheckMode uint8

// The plan-verification modes.
const (
	// PlanCheckOff disables per-stage verification (no overhead).
	PlanCheckOff PlanCheckMode = iota
	// PlanCheckLog verifies every stage and records findings on the Result
	// without failing the query.
	PlanCheckLog
	// PlanCheckStrict verifies every stage and fails the query on the first
	// non-advisory finding, naming the stage that introduced it.
	PlanCheckStrict
)

// String returns the flag spelling (off, log, strict).
func (m PlanCheckMode) String() string {
	switch m {
	case PlanCheckOff:
		return "off"
	case PlanCheckLog:
		return "log"
	case PlanCheckStrict:
		return "strict"
	default:
		return fmt.Sprintf("plancheck(%d)", uint8(m))
	}
}

// ParsePlanCheckMode parses a flag spelling of a mode.
func ParsePlanCheckMode(s string) (PlanCheckMode, error) {
	switch s {
	case "off":
		return PlanCheckOff, nil
	case "log":
		return PlanCheckLog, nil
	case "strict":
		return PlanCheckStrict, nil
	default:
		return PlanCheckOff, fmt.Errorf("perm: unknown plancheck mode %q (want off, log or strict)", s)
	}
}

// DefaultPlanCheck is the verification mode queries use when WithPlanCheck
// is not given. It defaults to off in production; the test harness and the
// fuzzer turn it to strict so every compiled plan is structurally verified
// at every stage. Set it before issuing queries — it is read per query,
// unsynchronized.
var DefaultPlanCheck = PlanCheckOff

// WithPlanCheck sets the per-stage plan verification mode for one query.
func WithPlanCheck(mode PlanCheckMode) Option {
	return func(c *queryConfig) { c.planCheck = mode }
}

// PlanFinding is one plan-verifier finding surfaced on a Result (log mode)
// or in VerifyPlan output.
type PlanFinding struct {
	// Stage names the compile stage the finding was observed at:
	// "translate", "rule/<rule>", "rewrite/<strategy>" or "optimize".
	Stage string
	// Check is the reporting check.
	Check string
	// Path addresses the operator from the plan root.
	Path string
	// Message describes the violation.
	Message string
	// Advisory marks informational findings; only non-advisory ones fail
	// strict verification.
	Advisory bool
}

// String renders the finding like a plancheck diagnostic.
func (f PlanFinding) String() string {
	return plancheck.Diagnostic{Check: f.Check, Stage: f.Stage, Path: f.Path, Message: f.Message, Advisory: f.Advisory}.String()
}

// PlanStage is the verification outcome of one compile stage.
type PlanStage struct {
	// Stage is the stage name, in pipeline order.
	Stage string
	// Findings are the stage's findings (advisory included), empty when
	// the stage verified clean.
	Findings []PlanFinding
}

// planVerifier accumulates per-stage verification across one compile.
type planVerifier struct {
	mode     PlanCheckMode
	stages   []PlanStage
	findings []PlanFinding
	failure  error
}

func newPlanVerifier(mode PlanCheckMode) *planVerifier {
	return &planVerifier{mode: mode}
}

// stage verifies one stage plan and records its findings. In strict mode
// the first non-advisory finding becomes the verifier's failure.
func (pv *planVerifier) stage(sp plancheck.StagePlan) {
	if pv.mode == PlanCheckOff {
		return
	}
	ps := PlanStage{Stage: sp.Stage}
	for _, d := range plancheck.Verify(sp) {
		f := PlanFinding{Stage: d.Stage, Check: d.Check, Path: d.Path, Message: d.Message, Advisory: d.Advisory}
		ps.Findings = append(ps.Findings, f)
		pv.findings = append(pv.findings, f)
		if pv.failure == nil && !d.Advisory && pv.mode == PlanCheckStrict {
			pv.failure = fmt.Errorf("plancheck: %s", d)
		}
	}
	pv.stages = append(pv.stages, ps)
}

// hook adapts the verifier to the rewriter's per-rule stage emissions.
// Rule results are nested plans: they may keep the correlations their
// inputs had, and their schema contract is Input ++ Prov.
func (pv *planVerifier) hook() rewrite.StageHook {
	if pv.mode == PlanCheckOff {
		return nil
	}
	return func(st rewrite.Stage) {
		pv.stage(plancheck.StagePlan{
			Stage:     plancheck.RuleStage(st.Rule),
			Plan:      st.Plan,
			Nested:    true,
			Input:     st.Input,
			Rewritten: true,
			Original:  st.Input.Schema(),
			Prov:      st.Prov,
		})
	}
}

// planned is one statement compiled through translate, rewrite and
// optimize, with per-stage verification interleaved.
type planned struct {
	tr       *sql.Translated
	res      *rewrite.Result // nil for plain queries
	plan     algebra.Op
	stages   []PlanStage
	findings []PlanFinding
}

// compile runs translate → rewrite → optimize over one snapshot, verifying
// after every stage per cfg.planCheck. In strict mode the first
// non-advisory finding aborts with an error naming the failing stage.
func (sn snapshot) compile(query string, cfg queryConfig) (*planned, error) {
	tr, err := sql.CompileEnv(sn.env(), query)
	if err != nil {
		return nil, err
	}
	pv := newPlanVerifier(cfg.planCheck)
	plan := tr.Plan
	pv.stage(plancheck.StagePlan{Stage: plancheck.StageTranslate, Plan: plan, Hidden: tr.Hidden})
	if pv.failure != nil {
		return nil, pv.failure
	}
	var res *rewrite.Result
	if tr.Provenance {
		strat, err := cfg.strategy.internal()
		if err != nil {
			return nil, err
		}
		res, err = rewrite.RewriteHooked(plan, strat, pv.hook())
		if err != nil {
			return nil, err
		}
		if pv.failure != nil {
			return nil, pv.failure
		}
		plan = res.Plan
		pv.stage(plancheck.StagePlan{
			Stage:     plancheck.RewriteStage(string(cfg.strategy)),
			Plan:      plan,
			Rewritten: true,
			Original:  res.Original,
			Prov:      res.Prov,
			Hidden:    tr.Hidden,
		})
		if pv.failure != nil {
			return nil, pv.failure
		}
	}
	if !cfg.noOptimize {
		plan = opt.Optimize(plan)
		sp := plancheck.StagePlan{Stage: plancheck.StageOptimize, Plan: plan, Hidden: tr.Hidden}
		if res != nil {
			sp.Rewritten = true
			sp.Original = res.Original
			sp.Prov = res.Prov
		}
		pv.stage(sp)
		if pv.failure != nil {
			return nil, pv.failure
		}
	}
	return &planned{tr: tr, res: res, plan: plan, stages: pv.stages, findings: pv.findings}, nil
}

// VerifyPlan compiles a statement and verifies every stage without
// executing it, returning the per-stage findings (advisory included) in
// pipeline order. Compile and rewrite errors are returned as-is; verifier
// findings never produce an error here. WithStrategy and WithoutOptimizer
// shape the verified pipeline exactly as they would a query.
func (db *DB) VerifyPlan(query string, opts ...Option) ([]PlanStage, error) {
	return db.snapshot().verifyPlan(query, newQueryConfig(opts))
}

// VerifyPlan is DB.VerifyPlan against the session's overlay catalog.
func (s *Session) VerifyPlan(query string, opts ...Option) ([]PlanStage, error) {
	return s.snapshot().verifyPlan(query, newQueryConfig(opts))
}

func (sn snapshot) verifyPlan(query string, cfg queryConfig) ([]PlanStage, error) {
	cfg.planCheck = PlanCheckLog
	p, err := sn.compile(query, cfg)
	if err != nil {
		return nil, err
	}
	return p.stages, nil
}

package algebra

import (
	"strings"
	"testing"

	"perm/internal/schema"
	"perm/internal/types"
)

func scanR() *Scan { return NewScan("r", "", schema.New("r", "a", "b")) }
func scanS() *Scan { return NewScan("s", "", schema.New("s", "c")) }

func TestScanAliasRequalifies(t *testing.T) {
	s := NewScan("r", "x", schema.New("r", "a"))
	if s.Schema().Attrs[0].Qual != "x" {
		t.Errorf("schema = %s", s.Schema())
	}
	if s.String() != "r AS x" {
		t.Errorf("String = %q", s.String())
	}
	plain := scanR()
	if plain.Alias != "r" || plain.String() != "r" {
		t.Errorf("default alias = %q", plain.Alias)
	}
}

func TestSchemasCompose(t *testing.T) {
	j := &Join{L: scanR(), R: scanS(), Cond: BoolConst(true)}
	if j.Schema().Len() != 3 {
		t.Errorf("join schema = %s", j.Schema())
	}
	p := NewProject(j, Col(Attr("a"), "x"), Col(IntConst(1), "one"))
	if got := p.Schema().String(); got != "(x, one)" {
		t.Errorf("project schema = %s", got)
	}
	agg := &Aggregate{Child: scanR(),
		Group: []GroupExpr{{E: Attr("b"), As: "b"}},
		Aggs:  []AggExpr{{Fn: AggSum, Arg: Attr("a"), As: "s"}}}
	if got := agg.Schema().String(); got != "(b, s)" {
		t.Errorf("aggregate schema = %s", got)
	}
	so := &SetOp{Kind: Union, L: scanR(), R: scanR()}
	if so.Schema().Len() != 2 {
		t.Errorf("setop schema = %s", so.Schema())
	}
	o := &Order{Child: scanR(), Keys: []SortKey{{E: Attr("a")}}}
	l := &Limit{Child: o, N: 1}
	if l.Schema().Len() != 2 || len(o.Children()) != 1 {
		t.Error("order/limit schema propagation broken")
	}
	v := &Values{Sch: schema.New("", "x"), Rows: []Row{NullRow(1)}}
	if v.Schema().Len() != 1 || v.Children() != nil {
		t.Error("values schema broken")
	}
}

func TestConj(t *testing.T) {
	if got := Conj(); !ExprEqual(got, BoolConst(true)) {
		t.Errorf("empty Conj = %v", got)
	}
	a, b := Attr("a"), Attr("b")
	if got := Conj(a); !ExprEqual(got, a) {
		t.Errorf("single Conj = %v", got)
	}
	got := Conj(a, nil, b)
	if !ExprEqual(got, And{L: a, R: b}) {
		t.Errorf("Conj skips nils wrong: %v", got)
	}
}

func TestCollectSublinksOutermostOnly(t *testing.T) {
	inner := Sublink{Kind: ExistsSublink, Query: scanS()}
	mid := &Select{Child: scanS(), Cond: inner}
	outer := Sublink{Kind: AnySublink, Op: types.CmpEq, Test: Attr("a"), Query: mid}
	cond := And{L: outer, R: Cmp{Op: types.CmpGt, L: Attr("b"), R: IntConst(0)}}
	got := CollectSublinks(cond)
	if len(got) != 1 || got[0].Kind != AnySublink {
		t.Fatalf("collected %d sublinks: %v", len(got), got)
	}
	if !HasSublink(cond) || HasSublink(Attr("a")) {
		t.Error("HasSublink misreports")
	}
}

func TestMapExprRebuilds(t *testing.T) {
	e := Or{L: Cmp{Op: types.CmpEq, L: Attr("a"), R: IntConst(1)}, R: Not{E: Attr("x")}}
	got := MapExpr(e, func(x Expr) Expr {
		if a, ok := x.(AttrRef); ok && a.Name == "a" {
			return Attr("z")
		}
		return x
	})
	want := Or{L: Cmp{Op: types.CmpEq, L: Attr("z"), R: IntConst(1)}, R: Not{E: Attr("x")}}
	if !ExprEqual(got, want) {
		t.Errorf("MapExpr = %v", got)
	}
	// Original untouched (immutability).
	if !ExprEqual(e.L, Cmp{Op: types.CmpEq, L: Attr("a"), R: IntConst(1)}) {
		t.Error("MapExpr mutated the source")
	}
}

func TestExprEqual(t *testing.T) {
	q := scanS()
	cases := []struct {
		a, b Expr
		want bool
	}{
		{Attr("a"), Attr("a"), true},
		{Attr("a"), QAttr("r", "a"), false},
		{IntConst(1), IntConst(1), true},
		{IntConst(1), FloatConst(1), true}, // =n semantics on constants
		{NullConst(), NullConst(), true},
		{NullConst(), IntConst(0), false},
		{And{L: Attr("a"), R: Attr("b")}, And{L: Attr("a"), R: Attr("b")}, true},
		{And{L: Attr("a"), R: Attr("b")}, Or{L: Attr("a"), R: Attr("b")}, false},
		{Sublink{Kind: ExistsSublink, Query: q}, Sublink{Kind: ExistsSublink, Query: q}, true},
		{Sublink{Kind: ExistsSublink, Query: q}, Sublink{Kind: ExistsSublink, Query: scanS()}, false},
		{IsNull{E: Attr("a")}, IsNull{E: Attr("a")}, true},
		{NullEq{L: Attr("a"), R: Attr("b")}, NullEq{L: Attr("a"), R: Attr("b")}, true},
	}
	for i, c := range cases {
		if got := ExprEqual(c.a, c.b); got != c.want {
			t.Errorf("case %d: ExprEqual(%v, %v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestWalkVisitsSublinkQueries(t *testing.T) {
	sub := &Select{Child: scanS(), Cond: BoolConst(true)}
	q := &Select{Child: scanR(), Cond: Sublink{Kind: ExistsSublink, Query: sub}}
	var scans int
	Walk(q, func(op Op) bool {
		if _, ok := op.(*Scan); ok {
			scans++
		}
		return true
	})
	if scans != 2 {
		t.Errorf("Walk found %d scans, want 2 (incl. sublink)", scans)
	}
	// Walk visits an operator's condition sublinks before its children, so
	// the sublink's scan precedes the input scan.
	base := BaseRelations(q)
	if len(base) != 2 || base[0].Name != "s" || base[1].Name != "r" {
		t.Errorf("BaseRelations = %v", base)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// σ_{c = b}(S) has free b; wrapping it in a sublink whose enclosing
	// operator provides b binds it.
	inner := &Select{Child: scanS(), Cond: Cmp{Op: types.CmpEq, L: Attr("c"), R: Attr("b")}}
	fv := FreeVars(inner)
	if len(fv) != 1 || fv[0].Name != "b" {
		t.Fatalf("free vars = %v", fv)
	}
	outer := &Select{Child: scanR(), Cond: Sublink{Kind: ExistsSublink, Query: inner}}
	if IsCorrelated(outer) {
		t.Error("outer plan should bind b")
	}
	// A reference no schema provides stays free all the way up.
	bad := &Select{Child: scanS(), Cond: Cmp{Op: types.CmpEq, L: Attr("c"), R: Attr("zz")}}
	outerBad := &Select{Child: scanR(), Cond: Sublink{Kind: ExistsSublink, Query: bad}}
	if !IsCorrelated(outerBad) {
		t.Error("unresolvable reference should remain free")
	}
}

func TestStringRendering(t *testing.T) {
	q := &Select{
		Child: scanR(),
		Cond:  Sublink{Kind: AllSublink, Op: types.CmpLt, Test: Attr("a"), Query: scanS()},
	}
	s := q.String()
	for _, want := range []string{"σ", "ALL", "a <"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	ind := Indent(&Project{Child: q, Cols: []ProjExpr{KeepCol("a")}, Distinct: true})
	for _, want := range []string{"ProjectDistinct", "Select", "Scan r"} {
		if !strings.Contains(ind, want) {
			t.Errorf("Indent missing %q:\n%s", want, ind)
		}
	}
	if got := (Sublink{Kind: ExistsSublink, Query: scanS()}).String(); !strings.Contains(got, "EXISTS") {
		t.Errorf("EXISTS string = %q", got)
	}
	if got := (ProjExpr{E: Attr("a"), As: "b"}).String(); got != "a→b" {
		t.Errorf("rename string = %q", got)
	}
	if got := KeepCol("a").String(); got != "a" {
		t.Errorf("keep string = %q", got)
	}
}

func TestKindAndFnStrings(t *testing.T) {
	if AnySublink.String() != "ANY" || AllSublink.String() != "ALL" ||
		ExistsSublink.String() != "EXISTS" || ScalarSublink.String() != "SCALAR" {
		t.Error("SublinkKind names wrong")
	}
	if AggSum.String() != "sum" || AggCountStar.String() != "count" || AggAvg.String() != "avg" {
		t.Error("AggFn names wrong")
	}
	if Union.String() != "UNION" || Intersect.String() != "INTERSECT" || Except.String() != "EXCEPT" {
		t.Error("SetOpKind names wrong")
	}
}

package algebra

import (
	"fmt"
	"sort"
	"strings"

	"perm/internal/types"
)

// Func is a call of a registered scalar function (upper, lower, length,
// substr) or of one of the operators lowered to calls: || becomes
// Func{"concat"}, LIKE becomes Func{"like"}. Evaluation dispatches through
// the registry below; the semantic analyzer resolves names and argument
// kinds against the same registry, so an unresolved or ill-typed call never
// reaches the evaluator through the SQL front end.
type Func struct {
	Name string
	Args []Expr
}

func (Func) exprNode() {}

// String renders operator-spelled functions as operators and everything else
// as a call.
func (f Func) String() string {
	switch {
	case f.Name == "concat" && len(f.Args) == 2:
		return fmt.Sprintf("(%s || %s)", f.Args[0], f.Args[1])
	case f.Name == "like" && len(f.Args) == 2:
		return fmt.Sprintf("(%s LIKE %s)", f.Args[0], f.Args[1])
	default:
		return fmt.Sprintf("%s(%s)", f.Name, exprList(f.Args))
	}
}

// Cast is CAST(E AS To): an explicit conversion evaluated by types.Cast.
type Cast struct {
	E  Expr
	To types.Kind
}

func (Cast) exprNode() {}

func (c Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// FuncDef describes one scalar function: its arity range, the argument
// kinds the analyzer checks call sites against (types.KindNull admits any
// kind), the result kind, and the evaluation function. Optional trailing
// arguments are passed as a shorter slice.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int
	// Args holds the expected kind per position (length MaxArgs).
	Args []types.Kind
	// Result is the function's result kind.
	Result types.Kind
	// Eval computes the call; len(args) is within [MinArgs, MaxArgs].
	Eval func(args []types.Value) (types.Value, error)
}

// funcs is the scalar function registry. Operators that lower to calls
// (concat, like) live here too, so both executors and the analyzer share one
// definition of the scalar surface.
var funcs = map[string]*FuncDef{
	"upper": {
		Name: "upper", MinArgs: 1, MaxArgs: 1,
		Args: []types.Kind{types.KindString}, Result: types.KindString,
		Eval: func(args []types.Value) (types.Value, error) { return types.Upper(args[0]) },
	},
	"lower": {
		Name: "lower", MinArgs: 1, MaxArgs: 1,
		Args: []types.Kind{types.KindString}, Result: types.KindString,
		Eval: func(args []types.Value) (types.Value, error) { return types.Lower(args[0]) },
	},
	"length": {
		Name: "length", MinArgs: 1, MaxArgs: 1,
		Args: []types.Kind{types.KindString}, Result: types.KindInt,
		Eval: func(args []types.Value) (types.Value, error) { return types.Length(args[0]) },
	},
	"substr": {
		Name: "substr", MinArgs: 2, MaxArgs: 3,
		Args:   []types.Kind{types.KindString, types.KindInt, types.KindInt},
		Result: types.KindString,
		Eval: func(args []types.Value) (types.Value, error) {
			var count *types.Value
			if len(args) == 3 {
				count = &args[2]
			}
			return types.Substr(args[0], args[1], count)
		},
	},
	"concat": {
		Name: "concat", MinArgs: 2, MaxArgs: 2,
		Args:   []types.Kind{types.KindString, types.KindString},
		Result: types.KindString,
		Eval:   func(args []types.Value) (types.Value, error) { return types.Concat(args[0], args[1]) },
	},
	"like": {
		Name: "like", MinArgs: 2, MaxArgs: 2,
		Args:   []types.Kind{types.KindString, types.KindString},
		Result: types.KindBool,
		Eval: func(args []types.Value) (types.Value, error) {
			t, err := types.Like(args[0], args[1])
			if err != nil {
				return types.Null(), err
			}
			switch t {
			case types.True:
				return types.NewBool(true), nil
			case types.False:
				return types.NewBool(false), nil
			default:
				return types.Null(), nil
			}
		},
	},
}

// LookupFunc resolves a scalar function by (lower-case) name.
func LookupFunc(name string) (*FuncDef, bool) {
	f, ok := funcs[name]
	return f, ok
}

// FuncNames lists the registered scalar functions, sorted, for docs and
// error messages.
func FuncNames() []string {
	out := make([]string, 0, len(funcs))
	for n := range funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseCastType maps a SQL type name (as written in CAST(x AS t)) to a
// value kind. Only 64-bit numeric spellings are accepted: the engine's
// integers and floats are int64/float64, and accepting smallint/int4 or
// real/float4 would silently skip the narrower range checks PostgreSQL
// applies to them.
func ParseCastType(name string) (types.Kind, bool) {
	switch strings.ToLower(name) {
	case "int", "integer", "bigint", "int8":
		return types.KindInt, true
	case "float", "double", "float8":
		return types.KindFloat, true
	case "string", "text", "varchar", "char":
		return types.KindString, true
	case "bool", "boolean":
		return types.KindBool, true
	default:
		return types.KindNull, false
	}
}

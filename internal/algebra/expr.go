// Package algebra defines the extended relational algebra of Figure 1 in
// Glavic & Alonso (EDBT 2009): bag-semantics operators (selection,
// bag/set projection, cross product, joins, aggregation, set operations)
// plus the sublink constructs ANY, ALL, EXISTS and scalar subqueries, which
// may appear in selection, projection and join conditions and may be
// correlated with and nested inside enclosing queries.
//
// # The frozen-plan invariant
//
// Trees are immutable once constructed: rewrites build new nodes and may
// freely share subtrees, and the planned plan cache will share whole
// plans across sessions. The invariant is checked statically — every node
// and expression type is annotated `// perm:frozen`, and the immutcheck
// analyzer (internal/lint) rejects any field store, element write or
// in-place append into a plan value after it may have been published.
// Constructors may mutate freely while their node is provably private;
// everything after publication is copy-on-write.
package algebra

import (
	"fmt"
	"strings"

	"perm/internal/types"
)

// Expr is a scalar expression over attributes, constants, functions and
// sublinks. Expressions evaluate to a types.Value; conditions are
// expressions of boolean result interpreted under three-valued logic.
//
// perm:frozen
type Expr interface {
	fmt.Stringer
	exprNode()
}

// AttrRef references an attribute by (optional) qualifier and name. Inside
// a sublink query a reference that does not resolve against the sublink's
// own input resolves against enclosing scopes — that is a correlation.
type AttrRef struct {
	Qual string
	Name string
}

func (AttrRef) exprNode() {}

// String renders the reference as [qual.]name.
func (a AttrRef) String() string {
	if a.Qual == "" {
		return a.Name
	}
	return a.Qual + "." + a.Name
}

// Attr is shorthand for an unqualified attribute reference.
func Attr(name string) AttrRef { return AttrRef{Name: name} }

// QAttr is shorthand for a qualified attribute reference.
func QAttr(qual, name string) AttrRef { return AttrRef{Qual: qual, Name: name} }

// Const is a literal value.
type Const struct {
	Val types.Value
}

func (Const) exprNode() {}

// String renders the literal; strings are single-quoted like SQL.
func (c Const) String() string {
	if c.Val.Kind() == types.KindString {
		return "'" + c.Val.Str() + "'"
	}
	return c.Val.String()
}

// IntConst is shorthand for an integer literal.
func IntConst(i int64) Const { return Const{Val: types.NewInt(i)} }

// StrConst is shorthand for a string literal.
func StrConst(s string) Const { return Const{Val: types.NewString(s)} }

// FloatConst is shorthand for a float literal.
func FloatConst(f float64) Const { return Const{Val: types.NewFloat(f)} }

// BoolConst is shorthand for a boolean literal.
func BoolConst(b bool) Const { return Const{Val: types.NewBool(b)} }

// NullConst is the NULL literal.
func NullConst() Const { return Const{Val: types.Null()} }

// Cmp is a binary comparison producing a three-valued boolean.
type Cmp struct {
	Op   types.CmpOp
	L, R Expr
}

func (Cmp) exprNode() {}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// NullEq is the paper's =n operator: two-valued equality that treats two
// NULLs as equal. Introduced by the Gen strategy's Csub+ condition.
type NullEq struct {
	L, R Expr
}

func (NullEq) exprNode() {}

func (n NullEq) String() string { return fmt.Sprintf("%s =n %s", n.L, n.R) }

// Arith is binary arithmetic with NULL propagation.
type Arith struct {
	Op   types.ArithOp
	L, R Expr
}

func (Arith) exprNode() {}

func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// And is three-valued conjunction; the empty conjunction is true.
type And struct {
	L, R Expr
}

func (And) exprNode() {}

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is three-valued disjunction.
type Or struct {
	L, R Expr
}

func (Or) exprNode() {}

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is three-valued negation.
type Not struct {
	E Expr
}

func (Not) exprNode() {}

func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// IsNull tests a value for NULL (two-valued).
type IsNull struct {
	E Expr
}

func (IsNull) exprNode() {}

func (i IsNull) String() string { return fmt.Sprintf("(%s IS NULL)", i.E) }

// Conj folds a list of conditions into a right-leaning AND chain; the empty
// list is the constant true.
func Conj(conds ...Expr) Expr {
	var out Expr
	for i := len(conds) - 1; i >= 0; i-- {
		if conds[i] == nil {
			continue
		}
		if out == nil {
			out = conds[i]
		} else {
			out = And{L: conds[i], R: out}
		}
	}
	if out == nil {
		return BoolConst(true)
	}
	return out
}

// CaseWhen is one WHEN … THEN … branch of a Case expression.
type CaseWhen struct {
	When Expr // boolean condition, evaluated under three-valued logic
	Then Expr
}

// Case is the searched CASE expression: branches are tested in order and
// the first branch whose condition is true yields the result; otherwise
// Else does (NULL when Else is nil). SQL's simple form CASE x WHEN v …
// is lowered to this searched form by the translator.
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil means NULL
}

func (Case) exprNode() {}

func (c Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// SublinkKind distinguishes the four sublink constructs of the algebra.
type SublinkKind uint8

// The sublink kinds. A scalar sublink (the paper's plain "Tsub" sublink)
// must produce at most one tuple with exactly one attribute; its value is
// that attribute (or NULL for an empty result).
const (
	AnySublink SublinkKind = iota
	AllSublink
	ExistsSublink
	ScalarSublink
)

// String names the kind.
func (k SublinkKind) String() string {
	switch k {
	case AnySublink:
		return "ANY"
	case AllSublink:
		return "ALL"
	case ExistsSublink:
		return "EXISTS"
	case ScalarSublink:
		return "SCALAR"
	default:
		return fmt.Sprintf("sublink(%d)", uint8(k))
	}
}

// Sublink is the algebraic construct Csub: a nested query Tsub embedded in
// an expression. For ANY and ALL, Test and Op form the comparison
// "Test Op ANY/ALL (Query)"; EXISTS and scalar sublinks use neither.
type Sublink struct {
	Kind  SublinkKind
	Op    types.CmpOp // comparison operator for ANY/ALL
	Test  Expr        // the attribute expression A for ANY/ALL
	Query Op          // the sublink query Tsub
}

func (Sublink) exprNode() {}

func (s Sublink) String() string {
	switch s.Kind {
	case AnySublink, AllSublink:
		return fmt.Sprintf("%s %s %s (%s)", s.Test, s.Op, s.Kind, s.Query)
	case ExistsSublink:
		return fmt.Sprintf("EXISTS (%s)", s.Query)
	default:
		return fmt.Sprintf("(%s)", s.Query)
	}
}

// HasSublink reports whether the expression tree contains any sublink.
func HasSublink(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(Sublink); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// CollectSublinks returns every sublink in the expression, outermost first,
// left to right. Sublinks nested inside a collected sublink's query are not
// included — they belong to the inner query and are rewritten recursively.
func CollectSublinks(e Expr) []Sublink {
	var out []Sublink
	WalkExpr(e, func(x Expr) bool {
		if s, ok := x.(Sublink); ok {
			out = append(out, s)
			return false // do not descend into the sublink's Test/Query
		}
		return true
	})
	return out
}

// WalkExpr visits e and its sub-expressions in pre-order. If fn returns
// false for a node, its children are not visited. Sublink queries are not
// descended into (they are operators, not expressions), but the Test
// expression of ANY/ALL is.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case Cmp:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case NullEq:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case Arith:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case And:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case Or:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case Not:
		WalkExpr(x.E, fn)
	case IsNull:
		WalkExpr(x.E, fn)
	case Case:
		for _, w := range x.Whens {
			WalkExpr(w.When, fn)
			WalkExpr(w.Then, fn)
		}
		if x.Else != nil {
			WalkExpr(x.Else, fn)
		}
	case Func:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case Cast:
		WalkExpr(x.E, fn)
	case Sublink:
		if x.Test != nil {
			WalkExpr(x.Test, fn)
		}
	}
}

// MapExpr rebuilds the expression bottom-up, replacing each node with
// fn(node) after its children have been mapped. fn receives every node and
// returns its replacement (commonly the node unchanged). Sublink queries are
// not rewritten; Test expressions are.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case Cmp:
		return fn(Cmp{Op: x.Op, L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case NullEq:
		return fn(NullEq{L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case Arith:
		return fn(Arith{Op: x.Op, L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case And:
		return fn(And{L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case Or:
		return fn(Or{L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)})
	case Not:
		return fn(Not{E: MapExpr(x.E, fn)})
	case IsNull:
		return fn(IsNull{E: MapExpr(x.E, fn)})
	case Case:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{When: MapExpr(w.When, fn), Then: MapExpr(w.Then, fn)}
		}
		return fn(Case{Whens: whens, Else: MapExpr(x.Else, fn)})
	case Func:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = MapExpr(a, fn)
		}
		return fn(Func{Name: x.Name, Args: args})
	case Cast:
		return fn(Cast{E: MapExpr(x.E, fn), To: x.To})
	case Sublink:
		s := x
		s.Test = MapExpr(x.Test, fn)
		return fn(s)
	default:
		return fn(e)
	}
}

// ExprEqual reports structural equality of two expressions. Sublinks compare
// by pointer-identity of their Query operators plus kind/op/test; this is
// exactly what the Move strategy needs to replace occurrences of a sublink
// it collected from the same tree.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case AttrRef:
		y, ok := b.(AttrRef)
		return ok && x == y
	case Const:
		y, ok := b.(Const)
		return ok && types.NullEq(x.Val, y.Val) && x.Val.IsNull() == y.Val.IsNull()
	case Cmp:
		y, ok := b.(Cmp)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case NullEq:
		y, ok := b.(NullEq)
		return ok && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case Arith:
		y, ok := b.(Arith)
		return ok && x.Op == y.Op && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case And:
		y, ok := b.(And)
		return ok && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case Or:
		y, ok := b.(Or)
		return ok && ExprEqual(x.L, y.L) && ExprEqual(x.R, y.R)
	case Not:
		y, ok := b.(Not)
		return ok && ExprEqual(x.E, y.E)
	case IsNull:
		y, ok := b.(IsNull)
		return ok && ExprEqual(x.E, y.E)
	case Case:
		y, ok := b.(Case)
		if !ok || len(x.Whens) != len(y.Whens) || !ExprEqual(x.Else, y.Else) {
			return false
		}
		for i := range x.Whens {
			if !ExprEqual(x.Whens[i].When, y.Whens[i].When) || !ExprEqual(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		return true
	case Func:
		y, ok := b.(Func)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !ExprEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case Cast:
		y, ok := b.(Cast)
		return ok && x.To == y.To && ExprEqual(x.E, y.E)
	case Sublink:
		y, ok := b.(Sublink)
		return ok && x.Kind == y.Kind && x.Op == y.Op && x.Query == y.Query && ExprEqual(x.Test, y.Test)
	default:
		return false
	}
}

// exprList renders a comma-separated expression list.
func exprList[E fmt.Stringer](es []E) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

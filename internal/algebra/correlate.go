package algebra

import "perm/internal/schema"

// FreeVars returns the attribute references in op (including inside sublink
// queries) that cannot be resolved against any schema available within op
// itself — i.e. the correlated references that must be bound by an
// enclosing query. A plan with no free variables is uncorrelated: the Left,
// Move and Unn strategies require that of every sublink they rewrite.
func FreeVars(op Op) []AttrRef {
	return freeVarsOp(op)
}

// IsCorrelated reports whether the plan has at least one free attribute
// reference.
func IsCorrelated(op Op) bool { return len(freeVarsOp(op)) > 0 }

func freeVarsOp(op Op) []AttrRef {
	if op == nil {
		return nil
	}
	var out []AttrRef
	in := ExprInputSchema(op)
	for _, e := range OperatorExprs(op) {
		out = append(out, freeVarsExpr(e, in)...)
	}
	for _, c := range op.Children() {
		out = append(out, freeVarsOp(c)...)
	}
	return out
}

// ExprInputSchema is the schema the operator's expressions are evaluated
// over — the (concatenated) input, not the output. Leaf operators (scans,
// literal relations) evaluate their expressions, if any, over the empty
// schema.
func ExprInputSchema(op Op) schema.Schema {
	switch o := op.(type) {
	case *Select:
		return o.Child.Schema()
	case *Project:
		return o.Child.Schema()
	case *Join:
		return o.L.Schema().Concat(o.R.Schema())
	case *LeftJoin:
		return o.L.Schema().Concat(o.R.Schema())
	case *Aggregate:
		return o.Child.Schema()
	case *Order:
		return o.Child.Schema()
	default:
		return schema.Schema{}
	}
}

func freeVarsExpr(e Expr, sch schema.Schema) []AttrRef {
	var out []AttrRef
	WalkExpr(e, func(x Expr) bool {
		switch v := x.(type) {
		case AttrRef:
			if idx, ambiguous := sch.Lookup(v.Qual, v.Name); idx < 0 && !ambiguous {
				out = append(out, v)
			}
		case Sublink:
			// The sublink query's free variables may be bound by this
			// operator's input; only the remainder escapes further out.
			for _, fv := range freeVarsOp(v.Query) {
				if idx, ambiguous := sch.Lookup(fv.Qual, fv.Name); idx < 0 && !ambiguous {
					out = append(out, fv)
				}
			}
			if v.Test != nil {
				out = append(out, freeVarsExpr(v.Test, sch)...)
			}
			return false
		}
		return true
	})
	return out
}

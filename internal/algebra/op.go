package algebra

import (
	"fmt"
	"strings"

	"perm/internal/schema"
)

// Op is a node of an algebra plan. Every operator knows its output schema.
//
// Plan trees are immutable once built: rewrites and the optimizer share
// subtrees freely, and the planned plan cache shares whole plans across
// sessions. immutcheck enforces the invariant statically.
//
// perm:frozen
type Op interface {
	fmt.Stringer
	// Schema is the output schema of the operator.
	Schema() schema.Schema
	// Children returns the input operators, left to right.
	Children() []Op
	opNode()
}

// Scan reads a base relation from the catalog. Name is the catalog name;
// Alias (defaulting to Name) qualifies the output attributes, so the same
// relation may be scanned twice under different aliases. Sch is the base
// schema as recorded in the catalog, re-qualified by the alias.
//
// perm:frozen
type Scan struct {
	Name  string
	Alias string
	Sch   schema.Schema
}

func (*Scan) opNode() {}

// NewScan builds a scan of base relation name with the catalog schema sch.
func NewScan(name, alias string, sch schema.Schema) *Scan {
	if alias == "" {
		alias = name
	}
	return &Scan{Name: name, Alias: alias, Sch: sch.WithQual(alias)}
}

// Schema implements Op.
func (s *Scan) Schema() schema.Schema { return s.Sch }

// Children implements Op.
func (s *Scan) Children() []Op { return nil }

func (s *Scan) String() string {
	if s.Alias != s.Name {
		return s.Name + " AS " + s.Alias
	}
	return s.Name
}

// Values is an inline relation literal. The Gen rewrite strategy uses it for
// the null(R) extension tuple of CrossBase; it is also handy in tests.
//
// perm:frozen
type Values struct {
	Sch  schema.Schema
	Rows []Row
}

// Row is one literal tuple of a Values operator.
//
// perm:frozen
type Row []Expr

func (*Values) opNode() {}

// Schema implements Op.
func (v *Values) Schema() schema.Schema { return v.Sch }

// Children implements Op.
func (v *Values) Children() []Op { return nil }

func (v *Values) String() string {
	rows := make([]string, len(v.Rows))
	for i, r := range v.Rows {
		rows[i] = "(" + exprList(r) + ")"
	}
	return "VALUES " + strings.Join(rows, ", ")
}

// NullRow returns a Values row of n NULL literals — the null(R) tuple.
func NullRow(n int) Row {
	r := make(Row, n)
	for i := range r {
		r[i] = NullConst()
	}
	return r
}

// Select is σ_Cond(Child). The condition may contain sublinks.
//
// perm:frozen
type Select struct {
	Child Op
	Cond  Expr
}

func (*Select) opNode() {}

// Schema implements Op.
func (s *Select) Schema() schema.Schema { return s.Child.Schema() }

// Children implements Op.
func (s *Select) Children() []Op { return []Op{s.Child} }

func (s *Select) String() string { return fmt.Sprintf("σ[%s](%s)", s.Cond, s.Child) }

// ProjExpr is one output column of a projection: an expression with a result
// name (the paper's renaming a→b). Qual optionally qualifies the output
// attribute so that pass-through columns keep resolving under their original
// relation alias after a provenance rewrite.
//
// perm:frozen
type ProjExpr struct {
	E    Expr
	As   string
	Qual string
}

// String renders the column as expr or expr→name.
func (p ProjExpr) String() string {
	if a, ok := p.E.(AttrRef); ok && a.Name == p.As && (p.Qual == "" || a.Qual == p.Qual) {
		return p.E.String()
	}
	return fmt.Sprintf("%s→%s", p.E, p.As)
}

// Project is Π_Cols(Child); Distinct selects the duplicate-removing set
// version Π^S, otherwise the bag version Π^B. Columns may contain sublinks.
//
// perm:frozen
type Project struct {
	Child    Op
	Cols     []ProjExpr
	Distinct bool
}

func (*Project) opNode() {}

// NewProject builds a bag projection over the given columns.
func NewProject(child Op, cols ...ProjExpr) *Project {
	return &Project{Child: child, Cols: cols}
}

// Col builds a projection column with an explicit output name.
func Col(e Expr, as string) ProjExpr { return ProjExpr{E: e, As: as} }

// KeepCol projects an attribute through unchanged.
func KeepCol(name string) ProjExpr { return ProjExpr{E: Attr(name), As: name} }

// KeepAttr projects a schema attribute through unchanged, preserving its
// qualifier.
func KeepAttr(a schema.Attr) ProjExpr {
	return ProjExpr{E: AttrRef{Qual: a.Qual, Name: a.Name}, As: a.Name, Qual: a.Qual}
}

// Schema implements Op.
func (p *Project) Schema() schema.Schema {
	attrs := make([]schema.Attr, len(p.Cols))
	for i, c := range p.Cols {
		attrs[i] = schema.Attr{Qual: c.Qual, Name: c.As}
	}
	return schema.Schema{Attrs: attrs}
}

// Children implements Op.
func (p *Project) Children() []Op { return []Op{p.Child} }

func (p *Project) String() string {
	tag := "ΠB"
	if p.Distinct {
		tag = "ΠS"
	}
	return fmt.Sprintf("%s[%s](%s)", tag, exprList(p.Cols), p.Child)
}

// Cross is the cross product L × R.
//
// perm:frozen
type Cross struct {
	L, R Op
}

func (*Cross) opNode() {}

// Schema implements Op.
func (c *Cross) Schema() schema.Schema { return c.L.Schema().Concat(c.R.Schema()) }

// Children implements Op.
func (c *Cross) Children() []Op { return []Op{c.L, c.R} }

func (c *Cross) String() string { return fmt.Sprintf("(%s × %s)", c.L, c.R) }

// Join is the inner join L ⋈_Cond R. The condition may contain sublinks
// (the Left and Move strategies produce such joins).
//
// perm:frozen
type Join struct {
	L, R Op
	Cond Expr
}

func (*Join) opNode() {}

// Schema implements Op.
func (j *Join) Schema() schema.Schema { return j.L.Schema().Concat(j.R.Schema()) }

// Children implements Op.
func (j *Join) Children() []Op { return []Op{j.L, j.R} }

func (j *Join) String() string { return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, j.Cond, j.R) }

// LeftJoin is the left outer join L ⟕_Cond R: unmatched left tuples are
// padded with NULLs on the right side.
//
// perm:frozen
type LeftJoin struct {
	L, R Op
	Cond Expr
}

func (*LeftJoin) opNode() {}

// Schema implements Op.
func (j *LeftJoin) Schema() schema.Schema { return j.L.Schema().Concat(j.R.Schema()) }

// Children implements Op.
func (j *LeftJoin) Children() []Op { return []Op{j.L, j.R} }

func (j *LeftJoin) String() string { return fmt.Sprintf("(%s ⟕[%s] %s)", j.L, j.Cond, j.R) }

// AggFn enumerates the aggregate functions.
type AggFn uint8

// The aggregate functions of the engine.
const (
	AggSum AggFn = iota
	AggCount
	AggCountStar
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "sum"
	case AggCount, AggCountStar:
		return "count"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggExpr is one aggregate function application with its result name.
// Distinct computes the function over the distinct argument values of the
// group (SQL's count(DISTINCT x)).
//
// perm:frozen
type AggExpr struct {
	Fn       AggFn
	Arg      Expr // nil for count(*)
	As       string
	Distinct bool
}

// String renders the aggregate call.
func (a AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return fmt.Sprintf("%s(%s)→%s", a.Fn, arg, a.As)
}

// GroupExpr is one grouping expression with a result name. Qual, when set,
// qualifies the output attribute with the grouped column's source relation
// (FROM alias), so qualified references to a grouping column — `ORDER BY
// r.b` above the aggregation, or a correlated `r.b` inside an output-clause
// sublink — keep resolving against the post-aggregation schema the way
// their unqualified spellings do.
//
// perm:frozen
type GroupExpr struct {
	E    Expr
	As   string
	Qual string
}

// String renders the grouping column.
func (g GroupExpr) String() string { return fmt.Sprintf("%s→%s", g.E, g.As) }

// Aggregate is α_{Group,Aggs}(Child): it groups on the Group expressions and
// evaluates the aggregate functions per group. Output schema is the grouping
// columns followed by the aggregate results, one tuple per group. With no
// grouping columns the result is a single tuple (over the whole input, even
// if empty, matching SQL).
//
// perm:frozen
type Aggregate struct {
	Child Op
	Group []GroupExpr
	Aggs  []AggExpr
}

func (*Aggregate) opNode() {}

// Schema implements Op.
func (a *Aggregate) Schema() schema.Schema {
	attrs := make([]schema.Attr, 0, len(a.Group)+len(a.Aggs))
	for _, g := range a.Group {
		attrs = append(attrs, schema.Attr{Qual: g.Qual, Name: g.As})
	}
	for _, f := range a.Aggs {
		attrs = append(attrs, schema.Attr{Name: f.As})
	}
	return schema.Schema{Attrs: attrs}
}

// Children implements Op.
func (a *Aggregate) Children() []Op { return []Op{a.Child} }

func (a *Aggregate) String() string {
	return fmt.Sprintf("α[%s; %s](%s)", exprList(a.Group), exprList(a.Aggs), a.Child)
}

// SetOpKind distinguishes union, intersection and difference.
type SetOpKind uint8

// The set operation kinds.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

// String returns the SQL spelling.
func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	case Except:
		return "EXCEPT"
	default:
		return fmt.Sprintf("setop(%d)", uint8(k))
	}
}

// SetOp is a union/intersection/difference of two inputs with identical
// width. Bag selects the multiplicity-arithmetic version from Figure 1
// (∪B, ∩B, −B); otherwise the duplicate-removing set version applies.
//
// perm:frozen
type SetOp struct {
	Kind SetOpKind
	Bag  bool
	L, R Op
}

func (*SetOp) opNode() {}

// Schema implements Op (the left input names the output).
func (s *SetOp) Schema() schema.Schema { return s.L.Schema() }

// Children implements Op.
func (s *SetOp) Children() []Op { return []Op{s.L, s.R} }

func (s *SetOp) String() string {
	tag := "S"
	if s.Bag {
		tag = "B"
	}
	return fmt.Sprintf("(%s %s[%s] %s)", s.L, s.Kind, tag, s.R)
}

// SortKey is one ORDER BY key.
//
// perm:frozen
type SortKey struct {
	E    Expr
	Desc bool
}

// String renders the key.
func (k SortKey) String() string {
	if k.Desc {
		return k.E.String() + " DESC"
	}
	return k.E.String()
}

// Order sorts its input; provenance rewrites pass it through unchanged
// (ordering does not affect which tuples contribute). Order materializes an
// ordering for presentation; the bag content is unchanged unless a Limit
// sits above it.
//
// perm:frozen
type Order struct {
	Child Op
	Keys  []SortKey
}

func (*Order) opNode() {}

// Schema implements Op.
func (o *Order) Schema() schema.Schema { return o.Child.Schema() }

// Children implements Op.
func (o *Order) Children() []Op { return []Op{o.Child} }

func (o *Order) String() string { return fmt.Sprintf("sort[%s](%s)", exprList(o.Keys), o.Child) }

// Limit keeps N tuples of its (ordered) input after skipping the first
// Offset tuples. N < 0 means "no limit" (an OFFSET-only clause); Offset 0
// skips nothing.
//
// perm:frozen
type Limit struct {
	Child  Op
	N      int
	Offset int
}

func (*Limit) opNode() {}

// Schema implements Op.
func (l *Limit) Schema() schema.Schema { return l.Child.Schema() }

// Children implements Op.
func (l *Limit) Children() []Op { return []Op{l.Child} }

func (l *Limit) String() string {
	if l.Offset > 0 {
		return fmt.Sprintf("limit[%d offset %d](%s)", l.N, l.Offset, l.Child)
	}
	return fmt.Sprintf("limit[%d](%s)", l.N, l.Child)
}

// Walk visits the plan in pre-order, descending into children and into the
// queries of sublinks found in operator conditions/columns. If fn returns
// false the node's subtree is skipped.
func Walk(op Op, fn func(Op) bool) {
	if op == nil || !fn(op) {
		return
	}
	for _, e := range OperatorExprs(op) {
		WalkExpr(e, func(x Expr) bool {
			if s, ok := x.(Sublink); ok {
				Walk(s.Query, fn)
			}
			return true
		})
	}
	for _, c := range op.Children() {
		Walk(c, fn)
	}
}

// OperatorExprs returns the scalar expressions embedded in an operator —
// the condition of a selection or join, the column expressions of a
// projection, the grouping and aggregate argument expressions of an
// aggregation, the sort keys of an ordering. Static analyses over plans
// (plancheck) use it to reach every expression exactly once.
func OperatorExprs(op Op) []Expr {
	switch o := op.(type) {
	case *Select:
		return []Expr{o.Cond}
	case *Project:
		es := make([]Expr, len(o.Cols))
		for i, c := range o.Cols {
			es[i] = c.E
		}
		return es
	case *Join:
		return []Expr{o.Cond}
	case *LeftJoin:
		return []Expr{o.Cond}
	case *Aggregate:
		var es []Expr
		for _, g := range o.Group {
			es = append(es, g.E)
		}
		for _, a := range o.Aggs {
			if a.Arg != nil {
				es = append(es, a.Arg)
			}
		}
		return es
	case *Order:
		es := make([]Expr, len(o.Keys))
		for i, k := range o.Keys {
			es[i] = k.E
		}
		return es
	default:
		return nil
	}
}

// OpName returns the operator's node name for plan-path addressing (the
// compact form used by plancheck diagnostics): scans show their relation,
// every other operator its kind.
func OpName(op Op) string {
	switch o := op.(type) {
	case *Scan:
		return "Scan(" + o.Name + ")"
	case *Values:
		return "Values"
	case *Select:
		return "Select"
	case *Project:
		if o.Distinct {
			return "ProjectDistinct"
		}
		return "Project"
	case *Cross:
		return "Cross"
	case *Join:
		return "Join"
	case *LeftJoin:
		return "LeftJoin"
	case *Aggregate:
		return "Aggregate"
	case *SetOp:
		return o.Kind.String()
	case *Order:
		return "Order"
	case *Limit:
		return "Limit"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// BaseRelations returns the scan operators of the plan in visit order,
// including scans inside sublink queries. This is Base(q) from the paper
// (the base relations accessed by a query), used to build CrossBase and the
// provenance schema.
func BaseRelations(op Op) []*Scan {
	var out []*Scan
	Walk(op, func(o Op) bool {
		if s, ok := o.(*Scan); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}

// Indent renders a plan as an indented tree for debugging and the CLI's
// EXPLAIN output.
func Indent(op Op) string {
	var b strings.Builder
	indent(&b, op, 0)
	return b.String()
}

func indent(b *strings.Builder, op Op, depth int) {
	pad := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *Scan:
		fmt.Fprintf(b, "%sScan %s\n", pad, o)
	case *Values:
		fmt.Fprintf(b, "%s%s\n", pad, o)
	case *Select:
		fmt.Fprintf(b, "%sSelect [%s]\n", pad, o.Cond)
		indent(b, o.Child, depth+1)
	case *Project:
		tag := "Project"
		if o.Distinct {
			tag = "ProjectDistinct"
		}
		fmt.Fprintf(b, "%s%s [%s]\n", pad, tag, exprList(o.Cols))
		indent(b, o.Child, depth+1)
	case *Cross:
		fmt.Fprintf(b, "%sCross\n", pad)
		indent(b, o.L, depth+1)
		indent(b, o.R, depth+1)
	case *Join:
		fmt.Fprintf(b, "%sJoin [%s]\n", pad, o.Cond)
		indent(b, o.L, depth+1)
		indent(b, o.R, depth+1)
	case *LeftJoin:
		fmt.Fprintf(b, "%sLeftJoin [%s]\n", pad, o.Cond)
		indent(b, o.L, depth+1)
		indent(b, o.R, depth+1)
	case *Aggregate:
		fmt.Fprintf(b, "%sAggregate [%s; %s]\n", pad, exprList(o.Group), exprList(o.Aggs))
		indent(b, o.Child, depth+1)
	case *SetOp:
		fmt.Fprintf(b, "%sSetOp %s bag=%v\n", pad, o.Kind, o.Bag)
		indent(b, o.L, depth+1)
		indent(b, o.R, depth+1)
	case *Order:
		fmt.Fprintf(b, "%sOrder [%s]\n", pad, exprList(o.Keys))
		indent(b, o.Child, depth+1)
	case *Limit:
		if o.Offset > 0 {
			fmt.Fprintf(b, "%sLimit %d offset %d\n", pad, o.N, o.Offset)
		} else {
			fmt.Fprintf(b, "%sLimit %d\n", pad, o.N)
		}
		indent(b, o.Child, depth+1)
	default:
		fmt.Fprintf(b, "%s%s\n", pad, op)
	}
}

package algebra

import "perm/internal/schema"

// LiftOrderKeys returns the sort keys that establish the presentation order
// of op's output, rewritten so they resolve against op's own schema, or nil
// when no order reaches the output.
//
// An Order node's keys propagate upward through the operators that preserve
// row identity: Limit, Select (a filter keeps the surviving rows' order)
// and Project (including the re-qualifying projection wrapping every
// derived table, which is how `SELECT a FROM (SELECT a FROM r ORDER BY a
// DESC) t LIMIT 2` keeps its inner order — the PostgreSQL behaviour this
// executor stands in for). Every other operator either destroys order
// (joins, aggregation, set operations) or establishes its own (a nested
// Order), so the walk stops there.
//
// Through a projection each key is remapped onto the output attributes that
// carry it: an attribute-reference key matches a column whose expression
// resolves to the same input attribute; any other key expression matches a
// column expression structurally, or has each of its attribute references
// rewritten through pass-through columns. A key the output cannot express
// ends the propagation — the order is genuinely lost.
func LiftOrderKeys(op Op) []SortKey {
	switch o := op.(type) {
	case *Order:
		return o.Keys
	case *Limit:
		return LiftOrderKeys(o.Child)
	case *Select:
		// A selection's schema is its child's; the keys pass unchanged.
		return LiftOrderKeys(o.Child)
	case *Project:
		inner := LiftOrderKeys(o.Child)
		if inner == nil {
			return nil
		}
		childSch := o.Child.Schema()
		out := make([]SortKey, len(inner))
		for i, k := range inner {
			mapped, ok := liftKeyExpr(k.E, o, childSch)
			if !ok {
				return nil
			}
			out[i] = SortKey{E: mapped, Desc: k.Desc}
		}
		return out
	default:
		return nil
	}
}

// liftKeyExpr rewrites one sort-key expression over p.Child's schema into a
// reference to the projection column that carries it, if any.
func liftKeyExpr(e Expr, p *Project, childSch schema.Schema) (Expr, bool) {
	if ref, isRef := e.(AttrRef); isRef {
		return liftKeyRef(ref, p, childSch)
	}
	// A column computing the exact expression carries the key directly.
	for _, c := range p.Cols {
		if ExprEqual(c.E, e) {
			return AttrRef{Qual: c.Qual, Name: c.As}, true
		}
	}
	// Otherwise rewrite the expression's attribute references through the
	// projection's pass-through columns (ORDER BY a + b survives a
	// projection that carries a and b).
	ok := true
	mapped := MapExpr(e, func(x Expr) Expr {
		ref, isRef := x.(AttrRef)
		if !isRef {
			return x
		}
		out, found := liftKeyRef(ref, p, childSch)
		if !found {
			ok = false
			return x
		}
		return out
	})
	if !ok {
		return nil, false
	}
	return mapped, true
}

// PushLimit rewrites a Limit below bag (non-DISTINCT) projections when the
// order it must honour is not expressible over the projected schema — the
// derived-table case where the subquery orders by a column the outer SELECT
// list drops (`SELECT a FROM (SELECT a, b FROM r ORDER BY b DESC) t LIMIT
// 2` must cut by b). A bag projection maps each input row to exactly one
// output row with the same multiplicity, so cutting before or after
// projecting selects the same rows; cutting below additionally evaluates
// the projections (and any sublinks in them) only for the surviving rows.
// ok reports whether a rewrite applied; both executors consult this before
// evaluating a Limit, so the correctness does not depend on the optional
// optimizer.
func PushLimit(l *Limit) (Op, bool) {
	if LiftOrderKeys(l.Child) != nil {
		return l, false // the limit sees its keys where it stands
	}
	var projs []*Project
	cur := l.Child
	for {
		p, isProj := cur.(*Project)
		if !isProj || p.Distinct {
			break
		}
		projs = append(projs, p)
		cur = p.Child
	}
	if len(projs) == 0 || LiftOrderKeys(cur) == nil {
		return l, false // no order below either; the cut is arbitrary anywhere
	}
	out := Op(&Limit{Child: cur, N: l.N, Offset: l.Offset})
	for i := len(projs) - 1; i >= 0; i-- {
		out = &Project{Child: out, Cols: projs[i].Cols}
	}
	return out, true
}

// liftKeyRef finds the projection output attribute carrying an input
// attribute reference.
func liftKeyRef(ref AttrRef, p *Project, childSch schema.Schema) (Expr, bool) {
	want, amb := childSch.Lookup(ref.Qual, ref.Name)
	if want < 0 || amb {
		return nil, false
	}
	for _, c := range p.Cols {
		src, isPass := c.E.(AttrRef)
		if !isPass {
			continue
		}
		if got, gamb := childSch.Lookup(src.Qual, src.Name); !gamb && got == want {
			return AttrRef{Qual: c.Qual, Name: c.As}, true
		}
	}
	return nil, false
}

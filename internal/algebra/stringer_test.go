package algebra

import (
	"strings"
	"testing"

	"perm/internal/schema"
	"perm/internal/types"
)

// TestIndentAllOperators exercises the plan renderer over every operator
// kind — this is the CLI's \explain surface.
func TestIndentAllOperators(t *testing.T) {
	r := scanR()
	s := scanS()
	plan := &Limit{
		N: 5,
		Child: &Order{
			Keys: []SortKey{{E: Attr("a"), Desc: true}, {E: Attr("b")}},
			Child: &SetOp{
				Kind: Except, Bag: true,
				L: &Aggregate{
					Child: &LeftJoin{
						L:    &Join{L: r, R: s, Cond: Cmp{Op: types.CmpEq, L: Attr("a"), R: Attr("c")}},
						R:    NewScan("s", "s2", schema.New("s", "c")),
						Cond: NullEq{L: Attr("c"), R: QAttr("s2", "c")},
					},
					Group: []GroupExpr{{E: Attr("a"), As: "a"}},
					Aggs:  []AggExpr{{Fn: AggCountStar, As: "n"}, {Fn: AggSum, Arg: Attr("b"), As: "s", Distinct: true}},
				},
				R: NewProject(&Select{
					Child: &Cross{L: scanR(), R: &Values{Sch: schema.New("", "x"), Rows: []Row{NullRow(1)}}},
					Cond:  IsNull{E: Attr("x")},
				}, Col(Attr("a"), "a"), Col(IntConst(0), "n")),
			},
		},
	}
	out := Indent(plan)
	for _, want := range []string{"Limit 5", "Order", "SetOp EXCEPT bag=true", "Aggregate",
		"LeftJoin", "Join", "Cross", "Select", "Project", "Scan r", "VALUES", "sum(DISTINCT b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Indent missing %q:\n%s", want, out)
		}
	}
	// One-line String forms of the same operators.
	str := plan.String()
	for _, want := range []string{"limit[5]", "sort[", "EXCEPT", "α["} {
		if !strings.Contains(str, want) {
			t.Errorf("String missing %q: %s", want, str)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{StrConst("hi"), "'hi'"},
		{NullConst(), "NULL"},
		{BoolConst(true), "true"},
		{FloatConst(1.5), "1.5"},
		{Arith{Op: types.OpMul, L: Attr("a"), R: IntConst(2)}, "(a * 2)"},
		{NullEq{L: Attr("a"), R: Attr("b")}, "a =n b"},
		{IsNull{E: Attr("a")}, "(a IS NULL)"},
		{Not{E: Attr("a")}, "NOT (a)"},
		{And{L: Attr("a"), R: Attr("b")}, "(a AND b)"},
		{Or{L: Attr("a"), R: Attr("b")}, "(a OR b)"},
		{Sublink{Kind: ScalarSublink, Query: scanS()}, "(s)"},
		{Sublink{Kind: AnySublink, Op: types.CmpLe, Test: Attr("a"), Query: scanS()}, "a <= ANY (s)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestSortKeyAndGroupStrings(t *testing.T) {
	if got := (SortKey{E: Attr("a"), Desc: true}).String(); got != "a DESC" {
		t.Errorf("SortKey = %q", got)
	}
	if got := (SortKey{E: Attr("a")}).String(); got != "a" {
		t.Errorf("SortKey asc = %q", got)
	}
	if got := (GroupExpr{E: Attr("a"), As: "g"}).String(); got != "a→g" {
		t.Errorf("GroupExpr = %q", got)
	}
}

func TestMapExprCoversAllNodes(t *testing.T) {
	// Identity MapExpr over every expression node kind must reproduce an
	// ExprEqual tree.
	exprs := []Expr{
		Cmp{Op: types.CmpLt, L: Attr("a"), R: IntConst(1)},
		NullEq{L: Attr("a"), R: NullConst()},
		Arith{Op: types.OpDiv, L: Attr("a"), R: IntConst(2)},
		And{L: BoolConst(true), R: BoolConst(false)},
		Or{L: BoolConst(true), R: BoolConst(false)},
		Not{E: BoolConst(true)},
		IsNull{E: Attr("a")},
		Sublink{Kind: AllSublink, Op: types.CmpGe, Test: Attr("a"), Query: scanS()},
	}
	for _, e := range exprs {
		got := MapExpr(e, func(x Expr) Expr { return x })
		if !ExprEqual(got, e) {
			t.Errorf("identity MapExpr changed %v to %v", e, got)
		}
	}
	if MapExpr(nil, func(x Expr) Expr { return x }) != nil {
		t.Error("MapExpr(nil) should be nil")
	}
}

func TestWalkExprEarlyStop(t *testing.T) {
	e := And{L: Attr("a"), R: Attr("b")}
	var visited int
	WalkExpr(e, func(x Expr) bool {
		visited++
		return false // do not descend
	})
	if visited != 1 {
		t.Errorf("early stop visited %d nodes", visited)
	}
}

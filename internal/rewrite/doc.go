// Package rewrite implements the contribution of Glavic & Alonso,
// "Provenance for Nested Subqueries" (EDBT 2009): algebraic rewrite rules
// that transform a query q into a query q+ computing q's result together
// with its Why-provenance under the paper's extended contribution
// definition (Definition 2).
//
// The package provides the Perm standard rules R1–R5 of Figure 4 (scan,
// projection, selection, cross product, aggregation — extended here with
// joins and set operations following the Perm system), and the sublink
// rewrite strategies of Figure 5.
//
// # Strategies
//
//   - Gen (rules G1/G2, §3.3): applicable to every sublink, including
//     correlated and nested ones — the paper's general fallback. The query
//     is joined with CrossBase(Tsub), the cross product of the
//     null-extended base relations of the sublink query, and filtered with
//     the simulated join condition Csub+ that replays the sublink's
//     semantics over the cross product. Complete but expensive: the
//     CrossBase grows as the product of the sublink's base relation sizes.
//
//   - Left (rules L1/L2, §3.4): uncorrelated sublinks only. The rewritten
//     sublink query is attached with a left outer join whose condition Jsub
//     keeps exactly the sublink-result tuples that played the influence
//     role for each outer tuple; the outer join's null row represents
//     "sublink contributed nothing".
//
//   - Move (rules T1/T2, §3.4): a variant of Left that first moves the
//     sublink into a projection, so its (per-tuple constant) value is
//     computed once and reused inside Jsub rather than re-derived by the
//     join condition.
//
//   - Unn (rules U1/U2, §3.5): unnesting special cases with the paper's
//     best measured performance — EXISTS sublinks become a cross product
//     (plus duplicate elimination on the outer key), equality-ANY sublinks
//     become an equi-join.
//
//   - UnnX: this reproduction's extension of Unn to ALL, negated and
//     scalar sublinks — the unnesting direction the paper names as future
//     work. See unnx.go for the per-form rules.
//
//   - Auto: picks per query, preferring Unn/UnnX where their patterns
//     match, then Move for uncorrelated sublinks, then Gen.
//
// Advise ranks the strategies with a cardinality-based cost model (the
// paper's provenance-aware-optimizer future-work direction); Rewrite
// applies one strategy and reports the provenance attribute groups
// (ProvSource) appended to the original schema.
//
// Strategies that cannot rewrite a query (Left/Move on correlated
// sublinks, Unn outside its patterns) return ErrNotApplicable, matching
// the "n/a" cells of the paper's tables.
package rewrite

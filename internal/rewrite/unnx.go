package rewrite

import (
	"fmt"

	"perm/internal/algebra"
)

// The UnnX strategy is this reproduction's implementation of the paper's
// future-work direction (§3.6/§4.2.2: "investigate the applicability and
// impact of other de-correlation and un-nesting techniques for provenance
// computation"). It generalizes the Unn rules from {EXISTS, = ANY} to every
// sublink shape whose Definition-2 provenance is expressible as a join,
// still requiring uncorrelated sublink queries and bare (possibly negated)
// sublink conjuncts:
//
//	X1  σ_{EXISTS Tsub}(T)         → T+ × Tsub+                  (U1)
//	X2  σ_{A op ANY Tsub}(T)       → T+ ⋈_{A op t} Tsub+         (U2 generalized
//	                                 to any comparison: a satisfied ANY is
//	                                 reqtrue, so Tsub* = Tsub^true)
//	X3  σ_{¬(A op ALL Tsub)}(T)    → T+ ⋈_{¬(A op t)} Tsub+      (a failed ALL
//	                                 is reqfalse, so Tsub* = Tsub^false)
//	X4  σ_{A op ALL Tsub}(T),
//	    σ_{¬EXISTS Tsub}(T),
//	    σ_{¬(A op ANY Tsub)}(T),
//	    scalar-sublink conjuncts   → σ_{conjunct}(T+) ⟕_{true} Π_{P}(Tsub+)
//	                                 (the provenance is all of Tsub — or NULL
//	                                 when Tsub is empty — so a constant-true
//	                                 left outer join attaches it)
//
// X4's left outer join replaces the Left strategy's disjunctive Jsub with a
// trivially true condition, and X2/X3 produce plain theta-joins (hash joins
// for equality); the ablation benchmarks compare UnnX against the paper's
// strategies on the workloads where only Gen/Left/Move applied.
func (rw *rewriter) unnxSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	conjuncts := flattenAnd(s.Cond)
	child, childProv, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := algebra.Op(child)
	var subProvAll []ProvSource

	attach := func(q algebra.Op) error {
		subPlus, subProv, err := rw.rewrite(q)
		if err != nil {
			return err
		}
		provOnly := algebra.NewProject(subPlus, provCols(subProv)...)
		plan = &algebra.LeftJoin{L: plan, R: provOnly, Cond: algebra.BoolConst(true)}
		subProvAll = append(subProvAll, subProv...)
		return nil
	}
	join := func(q algebra.Op, mk func(res algebra.Expr) algebra.Expr) error {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(q)
		if err != nil {
			return err
		}
		plan = &algebra.Join{L: plan, R: wrapped, Cond: mk(resRef)}
		subProvAll = append(subProvAll, subProv...)
		return nil
	}

	for _, conj := range conjuncts {
		if !algebra.HasSublink(conj) {
			// Filter eagerly: every conjunct of the original selection
			// references only the selection's input (or enclosing scopes),
			// which stays available throughout the join chain.
			plan = &algebra.Select{Child: plan, Cond: conj}
			continue
		}
		pat, ok := unnxPattern(conj)
		if !ok {
			return nil, nil, fmt.Errorf("%w: UnnX requires bare or negated sublink conjuncts (or scalar-only expressions), got %s", ErrNotApplicable, conj)
		}
		if err := requireUncorrelated(UnnX, pat.sublinks); err != nil {
			return nil, nil, err
		}
		switch pat.kind {
		case xCross: // X1
			wrapped, _, subProv, err := rw.wrapSublinkQuery(pat.sublinks[0].Query)
			if err != nil {
				return nil, nil, err
			}
			plan = &algebra.Cross{L: plan, R: wrapped}
			subProvAll = append(subProvAll, subProv...)
		case xJoin: // X2
			sl := pat.sublinks[0]
			if err := join(sl.Query, func(res algebra.Expr) algebra.Expr {
				return algebra.Cmp{Op: sl.Op, L: sl.Test, R: res}
			}); err != nil {
				return nil, nil, err
			}
		case xAntiJoin: // X3
			sl := pat.sublinks[0]
			if err := join(sl.Query, func(res algebra.Expr) algebra.Expr {
				return algebra.Cmp{Op: sl.Op.Negate(), L: sl.Test, R: res}
			}); err != nil {
				return nil, nil, err
			}
		case xAttach: // X4
			// Filter first (one sublink evaluation per input tuple), then
			// attach the sublink's full provenance to the survivors.
			plan = &algebra.Select{Child: plan, Cond: conj}
			for _, sl := range pat.sublinks {
				if err := attach(sl.Query); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	out := projectResult(plan, s.Schema(), childProv, subProvAll)
	return out, append(childProv, subProvAll...), nil
}

type unnxKind uint8

const (
	xCross unnxKind = iota
	xJoin
	xAntiJoin
	xAttach
)

type unnxMatch struct {
	kind     unnxKind
	sublinks []algebra.Sublink
}

// unnxPattern classifies one conjunct for the UnnX rules.
func unnxPattern(conj algebra.Expr) (unnxMatch, bool) {
	switch e := conj.(type) {
	case algebra.Sublink:
		switch e.Kind {
		case algebra.ExistsSublink:
			return unnxMatch{kind: xCross, sublinks: []algebra.Sublink{e}}, true
		case algebra.AnySublink:
			return unnxMatch{kind: xJoin, sublinks: []algebra.Sublink{e}}, true
		case algebra.AllSublink:
			// A satisfied ALL is reqtrue: provenance is all of Tsub.
			return unnxMatch{kind: xAttach, sublinks: []algebra.Sublink{e}}, true
		}
	case algebra.Not:
		if sl, ok := e.E.(algebra.Sublink); ok {
			switch sl.Kind {
			case algebra.AllSublink:
				return unnxMatch{kind: xAntiJoin, sublinks: []algebra.Sublink{sl}}, true
			case algebra.ExistsSublink, algebra.AnySublink:
				// A failed EXISTS/ANY is reqfalse: provenance is all of
				// Tsub (NULL when empty).
				return unnxMatch{kind: xAttach, sublinks: []algebra.Sublink{sl}}, true
			}
		}
	}
	// Arbitrary expressions qualify when every embedded sublink is scalar:
	// a scalar sublink's provenance is all of Tsub regardless of the
	// expression around it.
	sublinks := algebra.CollectSublinks(conj)
	if len(sublinks) == 0 {
		return unnxMatch{}, false
	}
	for _, sl := range sublinks {
		if sl.Kind != algebra.ScalarSublink {
			return unnxMatch{}, false
		}
	}
	return unnxMatch{kind: xAttach, sublinks: sublinks}, true
}

// unnxApplicable reports whether unnxSelect would succeed, for Auto-style
// dispatch and the benchmark harness.
func unnxApplicable(cond algebra.Expr) bool {
	for _, conj := range flattenAnd(cond) {
		if !algebra.HasSublink(conj) {
			continue
		}
		pat, ok := unnxPattern(conj)
		if !ok {
			return false
		}
		for _, sl := range pat.sublinks {
			if algebra.IsCorrelated(sl.Query) {
				return false
			}
		}
	}
	return true
}

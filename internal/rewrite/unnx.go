package rewrite

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/schema"
	"perm/internal/types"
)

// The UnnX strategy is this reproduction's implementation of the paper's
// future-work direction (§3.6/§4.2.2: "investigate the applicability and
// impact of other de-correlation and un-nesting techniques for provenance
// computation"). It generalizes the Unn rules from {EXISTS, = ANY} to every
// sublink shape whose Definition-2 provenance is expressible as a join,
// still requiring uncorrelated sublink queries and bare (possibly negated)
// sublink conjuncts:
//
//	X1  σ_{EXISTS Tsub}(T)         → T+ × Tsub+                  (U1)
//	X2  σ_{A op ANY Tsub}(T)       → T+ ⋈_{A op t} Tsub+         (U2 generalized
//	                                 to any comparison: a satisfied ANY is
//	                                 reqtrue, so Tsub* = Tsub^true)
//	X3  σ_{¬(A op ALL Tsub)}(T)    → T+ ⋈_{¬(A op t)} Tsub+      (a failed ALL
//	                                 is reqfalse, so Tsub* = Tsub^false)
//	X4  σ_{A op ALL Tsub}(T),
//	    σ_{¬EXISTS Tsub}(T),
//	    σ_{¬(A op ANY Tsub)}(T),
//	    scalar-sublink conjuncts   → σ_{conjunct}(T+) ⟕_{true} Π_{P}(Tsub+)
//	                                 (the provenance is all of Tsub — or NULL
//	                                 when Tsub is empty — so a constant-true
//	                                 left outer join attaches it)
//	X5  σ_{EXISTS Tsub[o]}(T),
//	    Tsub = σ_{rest ∧ o = i}(X) → T+ ⋈_{o = î} Tsub′+ where
//	                                 Tsub′ = Π_{…, i→î}(σ_{rest}(X)):
//	                                 correlated EXISTS whose correlation is a
//	                                 conjunction of equalities between outer
//	                                 attributes o and inner expressions i in
//	                                 the sublink's top-level WHERE — the
//	                                 canonical unnestable pattern — turns
//	                                 into an equi-join on the lifted
//	                                 correlation, with the inner comparands
//	                                 exposed through the sublink projection.
//	                                 The witnesses of a satisfied EXISTS
//	                                 under a binding are exactly the inner
//	                                 rows matching the binding, which is
//	                                 exactly what the join pairs the outer
//	                                 tuple with.
//
// X4's left outer join replaces the Left strategy's disjunctive Jsub with a
// trivially true condition, and X2/X3/X5 produce plain theta-joins (hash
// joins for equality); the ablation benchmarks compare UnnX against the
// paper's strategies on the workloads where only Gen/Left/Move applied.
func (rw *rewriter) unnxSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	conjuncts := flattenAnd(s.Cond)
	child, childProv, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := algebra.Op(child)
	var subProvAll []ProvSource

	attach := func(q algebra.Op) error {
		subPlus, subProv, err := rw.rewrite(q)
		if err != nil {
			return err
		}
		provOnly := algebra.NewProject(subPlus, provCols(subProv)...)
		plan = &algebra.LeftJoin{L: plan, R: provOnly, Cond: algebra.BoolConst(true)}
		subProvAll = append(subProvAll, subProv...)
		return nil
	}
	join := func(q algebra.Op, mk func(res algebra.Expr) algebra.Expr) error {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(q)
		if err != nil {
			return err
		}
		plan = &algebra.Join{L: plan, R: wrapped, Cond: mk(resRef)}
		subProvAll = append(subProvAll, subProv...)
		return nil
	}

	for _, conj := range conjuncts {
		if !algebra.HasSublink(conj) {
			// Filter eagerly: every conjunct of the original selection
			// references only the selection's input (or enclosing scopes),
			// which stays available throughout the join chain.
			plan = &algebra.Select{Child: plan, Cond: conj}
			continue
		}
		pat, ok := unnxPattern(conj)
		if !ok {
			return nil, nil, fmt.Errorf("%w: UnnX requires bare or negated sublink conjuncts (or scalar-only expressions), got %s", ErrNotApplicable, conj)
		}
		for _, sl := range pat.sublinks {
			if (pat.kind == xCross) && sl.Kind == algebra.ExistsSublink {
				continue // X5 may decorrelate; checked below
			}
			if fv := algebra.FreeVars(sl.Query); len(fv) > 0 {
				return nil, nil, fmt.Errorf("%w: UnnX decorrelates only EXISTS sublinks with top-level equality correlation; the %s sublink %s stays correlated (free: %v)", ErrNotApplicable, sl.Kind, sl, fv)
			}
		}
		switch pat.kind {
		case xCross: // X1 / X5
			sl := pat.sublinks[0]
			if algebra.IsCorrelated(sl.Query) {
				wrapped, cond, subProv, err := rw.unnxDecorrelateExists(sl.Query, s.Child.Schema())
				if err != nil {
					return nil, nil, err
				}
				plan = &algebra.Join{L: plan, R: wrapped, Cond: cond}
				subProvAll = append(subProvAll, subProv...)
				break
			}
			wrapped, _, subProv, err := rw.wrapSublinkQuery(sl.Query)
			if err != nil {
				return nil, nil, err
			}
			plan = &algebra.Cross{L: plan, R: wrapped}
			subProvAll = append(subProvAll, subProv...)
		case xJoin: // X2
			sl := pat.sublinks[0]
			if err := join(sl.Query, func(res algebra.Expr) algebra.Expr {
				return algebra.Cmp{Op: sl.Op, L: sl.Test, R: res}
			}); err != nil {
				return nil, nil, err
			}
		case xAntiJoin: // X3
			sl := pat.sublinks[0]
			if err := join(sl.Query, func(res algebra.Expr) algebra.Expr {
				return algebra.Cmp{Op: sl.Op.Negate(), L: sl.Test, R: res}
			}); err != nil {
				return nil, nil, err
			}
		case xAttach: // X4
			// Filter first (one sublink evaluation per input tuple), then
			// attach the sublink's full provenance to the survivors.
			plan = &algebra.Select{Child: plan, Cond: conj}
			for _, sl := range pat.sublinks {
				if err := attach(sl.Query); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	out := projectResult(plan, s.Schema(), childProv, subProvAll)
	return out, append(childProv, subProvAll...), nil
}

type unnxKind uint8

const (
	xCross unnxKind = iota
	xJoin
	xAntiJoin
	xAttach
)

type unnxMatch struct {
	kind     unnxKind
	sublinks []algebra.Sublink
}

// unnxPattern classifies one conjunct for the UnnX rules.
func unnxPattern(conj algebra.Expr) (unnxMatch, bool) {
	switch e := conj.(type) {
	case algebra.Sublink:
		switch e.Kind {
		case algebra.ExistsSublink:
			return unnxMatch{kind: xCross, sublinks: []algebra.Sublink{e}}, true
		case algebra.AnySublink:
			return unnxMatch{kind: xJoin, sublinks: []algebra.Sublink{e}}, true
		case algebra.AllSublink:
			// A satisfied ALL is reqtrue: provenance is all of Tsub.
			return unnxMatch{kind: xAttach, sublinks: []algebra.Sublink{e}}, true
		}
	case algebra.Not:
		if sl, ok := e.E.(algebra.Sublink); ok {
			switch sl.Kind {
			case algebra.AllSublink:
				return unnxMatch{kind: xAntiJoin, sublinks: []algebra.Sublink{sl}}, true
			case algebra.ExistsSublink, algebra.AnySublink:
				// A failed EXISTS/ANY is reqfalse: provenance is all of
				// Tsub (NULL when empty).
				return unnxMatch{kind: xAttach, sublinks: []algebra.Sublink{sl}}, true
			}
		}
	}
	// Arbitrary expressions qualify when every embedded sublink is scalar:
	// a scalar sublink's provenance is all of Tsub regardless of the
	// expression around it.
	sublinks := algebra.CollectSublinks(conj)
	if len(sublinks) == 0 {
		return unnxMatch{}, false
	}
	for _, sl := range sublinks {
		if sl.Kind != algebra.ScalarSublink {
			return unnxMatch{}, false
		}
	}
	return unnxMatch{kind: xAttach, sublinks: sublinks}, true
}

// unnxDecorrelateExists is rule X5: it splits the correlation out of the
// sublink's top-level selection, exposes the inner comparands through the
// sublink projection, and hands the caller the rewritten, now-uncorrelated
// sublink plan plus the equi-join condition that re-applies the correlation
// per outer tuple. outerSch is the enclosing selection's input schema; every
// correlated reference must resolve there (a reference escaping to an even
// higher scope would leave the join correlated).
func (rw *rewriter) unnxDecorrelateExists(q algebra.Op, outerSch schema.Schema) (wrapped algebra.Op, cond algebra.Expr, prov []ProvSource, err error) {
	corrs, qPrime, exposed, err := rw.splitExistsCorrelation(q)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, c := range corrs {
		if idx, amb := outerSch.Lookup(c.outer.Qual, c.outer.Name); idx < 0 || amb {
			return nil, nil, nil, fmt.Errorf("%w: UnnX cannot decorrelate EXISTS: correlated reference %s does not resolve in the enclosing selection's input %s", ErrNotApplicable, c.outer, outerSch)
		}
	}
	subPlus, subProv, err := rw.rewrite(qPrime)
	if err != nil {
		return nil, nil, nil, err
	}
	// Rename every data attribute fresh, as wrapSublinkQuery does, keeping
	// track of where the exposed correlation columns land.
	cols := make([]algebra.ProjExpr, 0, qPrime.Schema().Len())
	freshFor := map[string]string{}
	for _, a := range qPrime.Schema().Attrs {
		fresh := rw.freshName("sub")
		cols = append(cols, algebra.Col(algebra.QAttr(a.Qual, a.Name), fresh))
		freshFor[a.Name] = fresh
	}
	cols = append(cols, provCols(subProv)...)
	conds := make([]algebra.Expr, len(corrs))
	for i, c := range corrs {
		conds[i] = algebra.Cmp{Op: types.CmpEq, L: c.outer, R: algebra.Attr(freshFor[exposed[i]])}
	}
	return algebra.NewProject(subPlus, cols...), algebra.Conj(conds...), subProv, nil
}

// corrEq is one lifted correlation predicate: outer = inner.
type corrEq struct {
	outer algebra.AttrRef
	inner algebra.Expr
}

// splitExistsCorrelation analyses a correlated EXISTS sublink query of the
// shape [Π](σ_{rest ∧ o1 = i1 ∧ …}(X)) and rebuilds it without the
// correlation conjuncts, the inner comparands exposed under fresh names.
// It fails with a precise ErrNotApplicable reason when the correlation does
// not fit the pattern.
func (rw *rewriter) splitExistsCorrelation(q algebra.Op) (corrs []corrEq, qPrime *algebra.Project, exposed []string, err error) {
	var proj *algebra.Project
	sel, ok := q.(*algebra.Select)
	if !ok {
		if p, isProj := q.(*algebra.Project); isProj {
			if s, isSel := p.Child.(*algebra.Select); isSel {
				proj, sel = p, s
				ok = true
			}
		}
	}
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: UnnX decorrelates EXISTS only when the correlation sits in the sublink's top-level WHERE clause (free: %v)", ErrNotApplicable, algebra.FreeVars(q))
	}
	innerSch := sel.Child.Schema()
	var rest []algebra.Expr
	for _, cj := range flattenAnd(sel.Cond) {
		if cmp, isCmp := cj.(algebra.Cmp); isCmp && cmp.Op == types.CmpEq && !algebra.HasSublink(cj) {
			if ref, isRef := cmp.L.(algebra.AttrRef); isRef && refEscapes(ref, innerSch) && innerOnly(cmp.R, innerSch) {
				corrs = append(corrs, corrEq{outer: ref, inner: cmp.R})
				continue
			}
			if ref, isRef := cmp.R.(algebra.AttrRef); isRef && refEscapes(ref, innerSch) && innerOnly(cmp.L, innerSch) {
				corrs = append(corrs, corrEq{outer: ref, inner: cmp.L})
				continue
			}
		}
		rest = append(rest, cj)
	}
	if len(corrs) == 0 {
		return nil, nil, nil, fmt.Errorf("%w: UnnX cannot decorrelate EXISTS: no top-level equality conjunct pairs an outer attribute with an inner expression (free: %v)", ErrNotApplicable, algebra.FreeVars(q))
	}
	inner := sel.Child
	if len(rest) > 0 {
		inner = &algebra.Select{Child: inner, Cond: algebra.Conj(rest...)}
	}
	var cols []algebra.ProjExpr
	distinct := false
	if proj != nil {
		cols = append(cols, proj.Cols...)
		distinct = proj.Distinct
	} else {
		for _, a := range sel.Schema().Attrs {
			cols = append(cols, algebra.KeepAttr(a))
		}
	}
	exposed = make([]string, len(corrs))
	for i, c := range corrs {
		exposed[i] = rw.freshName("corr")
		cols = append(cols, algebra.Col(c.inner, exposed[i]))
	}
	qPrime = &algebra.Project{Child: inner, Cols: cols, Distinct: distinct}
	if fv := algebra.FreeVars(qPrime); len(fv) > 0 {
		return nil, nil, nil, fmt.Errorf("%w: UnnX cannot decorrelate EXISTS: correlation is not confined to top-level equality conjuncts (still free after lifting: %v)", ErrNotApplicable, fv)
	}
	return corrs, qPrime, exposed, nil
}

// refEscapes reports whether an attribute reference fails to resolve in the
// sublink's own input — i.e. it is correlated to an enclosing scope.
func refEscapes(ref algebra.AttrRef, sch schema.Schema) bool {
	idx, amb := sch.Lookup(ref.Qual, ref.Name)
	return idx < 0 && !amb
}

// innerOnly reports whether every attribute reference of e resolves
// (uniquely) in the sublink's input schema and e contains no sublinks.
func innerOnly(e algebra.Expr, sch schema.Schema) bool {
	if algebra.HasSublink(e) {
		return false
	}
	ok := true
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		if ref, isRef := x.(algebra.AttrRef); isRef {
			if idx, amb := sch.Lookup(ref.Qual, ref.Name); idx < 0 || amb {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// unnxApplicable reports whether unnxSelect would succeed, for Auto-style
// dispatch and the benchmark harness.
func unnxApplicable(cond algebra.Expr) bool {
	for _, conj := range flattenAnd(cond) {
		if !algebra.HasSublink(conj) {
			continue
		}
		pat, ok := unnxPattern(conj)
		if !ok {
			return false
		}
		for _, sl := range pat.sublinks {
			if !algebra.IsCorrelated(sl.Query) {
				continue
			}
			if pat.kind != xCross || sl.Kind != algebra.ExistsSublink {
				return false
			}
			// X5 candidate: probe the correlation analysis (the outer
			// schema check happens in the rewrite proper).
			probe := &rewriter{strategy: UnnX, scanSeq: map[string]int{}}
			if _, _, _, err := probe.splitExistsCorrelation(sl.Query); err != nil {
				return false
			}
		}
	}
	return true
}

package rewrite

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/schema"
)

// leftSelect is rule L1:
//
//	(σC(T))+ = Π_{T, P(T), P(Tsub1), …}(σC(T+ ⟕_{Jsub1} Tsub1+ … ⟕_{Jsubn} Tsubn+))
//
// Applicable only when every sublink is uncorrelated, so the rewritten
// sublink query can stand on the inner side of an ordinary join. The outer
// join pads NULL provenance when the sublink query is empty; the original
// condition C (with its sublinks, which the executor memoizes) filters the
// result rows.
func (rw *rewriter) leftSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	sublinks := algebra.CollectSublinks(s.Cond)
	if err := requireUncorrelated(Left, sublinks); err != nil {
		return nil, nil, err
	}
	child, childProv, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := algebra.Op(child)
	var subProvAll []ProvSource
	for _, sl := range sublinks {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(sl.Query)
		if err != nil {
			return nil, nil, err
		}
		cond := jsub(sl.Kind, sl, cmpOrTrue(sl, resRef))
		plan = &algebra.LeftJoin{L: plan, R: wrapped, Cond: cond}
		subProvAll = append(subProvAll, subProv...)
	}
	sel := &algebra.Select{Child: plan, Cond: s.Cond}
	out := projectResult(sel, s.Schema(), childProv, subProvAll)
	return out, append(childProv, subProvAll...), nil
}

// leftProject is rule L2:
//
//	(ΠA(T))+ = Π_{A, P(T), P(Tsub1), …}(T+ ⟕_{Jsub1} Tsub1+ … ⟕_{Jsubn} Tsubn+)
func (rw *rewriter) leftProject(p *algebra.Project) (algebra.Op, []ProvSource, error) {
	var sublinks []algebra.Sublink
	for _, c := range p.Cols {
		sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
	}
	if err := requireUncorrelated(Left, sublinks); err != nil {
		return nil, nil, err
	}
	child, childProv, err := rw.rewrite(p.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := algebra.Op(child)
	var subProvAll []ProvSource
	for _, sl := range sublinks {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(sl.Query)
		if err != nil {
			return nil, nil, err
		}
		cond := jsub(sl.Kind, sl, cmpOrTrue(sl, resRef))
		plan = &algebra.LeftJoin{L: plan, R: wrapped, Cond: cond}
		subProvAll = append(subProvAll, subProv...)
	}
	cols := append([]algebra.ProjExpr{}, p.Cols...)
	cols = append(cols, provCols(childProv)...)
	cols = append(cols, provCols(subProvAll)...)
	out := &algebra.Project{Child: plan, Cols: cols, Distinct: p.Distinct}
	return out, append(childProv, subProvAll...), nil
}

// wrapSublinkQuery rewrites Tsub into Tsub+ and renames its data attributes
// to fresh names so they can neither shadow the enclosing query's attributes
// in Jsub nor collide in the join schema. It returns the wrapped plan, a
// reference to the (renamed) sublink result attribute t used by C′sub, and
// the provenance sources that pass through.
func (rw *rewriter) wrapSublinkQuery(q algebra.Op) (algebra.Op, algebra.Expr, []ProvSource, error) {
	subPlus, subProv, err := rw.rewrite(q)
	if err != nil {
		return nil, nil, nil, err
	}
	origSch := q.Schema()
	cols := make([]algebra.ProjExpr, 0, origSch.Len())
	var resRef algebra.Expr
	for i, a := range origSch.Attrs {
		fresh := rw.freshName("sub")
		cols = append(cols, algebra.Col(algebra.QAttr(a.Qual, a.Name), fresh))
		if i == 0 {
			resRef = algebra.Attr(fresh)
		}
	}
	cols = append(cols, provCols(subProv)...)
	return algebra.NewProject(subPlus, cols...), resRef, subProv, nil
}

// requireUncorrelated enforces the applicability restriction of the Left,
// Move and Unn strategies (§3.6): every sublink query must be free of
// correlated attribute references.
func requireUncorrelated(s Strategy, sublinks []algebra.Sublink) error {
	for _, sl := range sublinks {
		if fv := algebra.FreeVars(sl.Query); len(fv) > 0 {
			return fmt.Errorf("%w: %s cannot rewrite correlated sublink %s (free: %v)", ErrNotApplicable, s, sl, fv)
		}
	}
	return nil
}

// projectResult wraps a plan in the final projection of the strategy rules:
// the original result attributes followed by all provenance attributes.
func projectResult(plan algebra.Op, orig schema.Schema, provGroups ...[]ProvSource) algebra.Op {
	cols := make([]algebra.ProjExpr, 0, orig.Len())
	for _, a := range orig.Attrs {
		cols = append(cols, algebra.KeepAttr(a))
	}
	for _, pg := range provGroups {
		cols = append(cols, provCols(pg)...)
	}
	return algebra.NewProject(plan, cols...)
}

package rewrite

import (
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/types"
)

// The advisor is this reproduction's take on the paper's second future-work
// item (§4.2.1: "we will explore making the query optimization cost-model
// ... provenance-aware to improve performance"): a coarse cardinality-based
// cost model over the rewritten plan shapes, used to rank the applicable
// strategies for a query before running any of them.
//
// The model captures exactly the asymmetries the paper measured:
//
//   - Gen pays |T| × Π(|R_i|+1) × |Tsub| for each sublink — the CrossBase
//     cross product probed by a nested EXISTS;
//   - Left and Move pay |T| × |Tsub| — an outer join under a disjunctive
//     condition no hash join can use;
//   - Unn pays |T| + |Tsub| for equality patterns (hash join) and
//     |T| × |Tsub| otherwise;
//   - correlated sublink queries multiply by the outer cardinality because
//     the executor re-evaluates them per binding.

// Stats supplies base relation cardinalities to the cost model.
type Stats interface {
	// Card returns the (estimated) row count of a base relation; unknown
	// relations may return any default.
	Card(relation string) int
}

// StatsFunc adapts a function to the Stats interface.
type StatsFunc func(relation string) int

// Card implements Stats.
func (f StatsFunc) Card(relation string) int { return f(relation) }

// Advice is the advisor's estimate for one strategy.
type Advice struct {
	Strategy Strategy
	// Applicable reports whether the strategy can rewrite the query at all.
	Applicable bool
	// Cost is a unitless work estimate (comparable across strategies for
	// the same query, not across queries).
	Cost float64
	// Reason summarizes the dominant term or the inapplicability cause.
	Reason string
}

// defaultSelectivity is the assumed fraction of tuples surviving a
// selection — deliberately crude; the advisor ranks strategies, it does not
// predict runtimes.
const defaultSelectivity = 0.3

// Advise estimates every strategy for q and returns the advice sorted by
// cost, inapplicable strategies last.
func Advise(q algebra.Op, stats Stats) []Advice {
	a := &advisor{stats: stats}
	out := []Advice{
		a.advise(q, Gen),
		a.advise(q, Left),
		a.advise(q, Move),
		a.advise(q, Unn),
		a.advise(q, UnnX),
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Applicable != out[j].Applicable {
			return out[i].Applicable
		}
		return out[i].Cost < out[j].Cost
	})
	return out
}

// Best returns the cheapest applicable strategy.
func Best(q algebra.Op, stats Stats) (Strategy, error) {
	advice := Advise(q, stats)
	if len(advice) == 0 || !advice[0].Applicable {
		return Gen, fmt.Errorf("rewrite: no applicable strategy")
	}
	return advice[0].Strategy, nil
}

type advisor struct {
	stats Stats
}

// advise checks applicability by attempting the rewrite (cheap — plans are
// small) and then costs the query's sublinks under the strategy.
func (a *advisor) advise(q algebra.Op, s Strategy) Advice {
	if _, err := Rewrite(q, s); err != nil {
		return Advice{Strategy: s, Applicable: false, Cost: 0, Reason: err.Error()}
	}
	cost, reason := a.costOp(q, s)
	return Advice{Strategy: s, Applicable: true, Cost: cost, Reason: reason}
}

// card estimates output cardinality of a plan.
func (a *advisor) card(op algebra.Op) float64 {
	switch o := op.(type) {
	case *algebra.Scan:
		c := a.stats.Card(o.Name)
		if c < 1 {
			c = 1
		}
		return float64(c)
	case *algebra.Values:
		return float64(len(o.Rows))
	case *algebra.Select:
		return a.card(o.Child) * defaultSelectivity
	case *algebra.Project:
		return a.card(o.Child)
	case *algebra.Cross:
		return a.card(o.L) * a.card(o.R)
	case *algebra.Join:
		return a.card(o.L) * a.card(o.R) * 0.1
	case *algebra.LeftJoin:
		v := a.card(o.L) * a.card(o.R) * 0.1
		if l := a.card(o.L); v < l {
			return l
		}
		return v
	case *algebra.Aggregate:
		if len(o.Group) == 0 {
			return 1
		}
		return a.card(o.Child) * 0.2
	case *algebra.SetOp:
		return a.card(o.L) + a.card(o.R)
	case *algebra.Order:
		return a.card(o.Child)
	case *algebra.Limit:
		return float64(o.N)
	default:
		return 1
	}
}

// costOp walks the plan and accumulates per-sublink strategy costs; the
// dominant sublink names the reason.
func (a *advisor) costOp(op algebra.Op, s Strategy) (float64, string) {
	total := a.card(op) // traversal floor
	reason := "no sublinks"
	var visit func(o algebra.Op)
	visit = func(o algebra.Op) {
		var outer float64
		var sublinks []algebra.Sublink
		switch x := o.(type) {
		case *algebra.Select:
			outer = a.card(x.Child)
			sublinks = algebra.CollectSublinks(x.Cond)
		case *algebra.Project:
			outer = a.card(x.Child)
			for _, c := range x.Cols {
				sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
			}
		case *algebra.Join:
			outer = a.card(x.L) * a.card(x.R)
			sublinks = algebra.CollectSublinks(x.Cond)
		}
		for _, sl := range sublinks {
			c := a.costSublink(outer, sl, s)
			if c > total {
				total = c
				reason = fmt.Sprintf("sublink %s dominates (%.3g work units)", sl.Kind, c)
			} else {
				total += c
			}
			visit(sl.Query)
		}
		for _, child := range o.Children() {
			visit(child)
		}
	}
	visit(op)
	return total, reason
}

func (a *advisor) costSublink(outer float64, sl algebra.Sublink, s Strategy) float64 {
	tsub := a.card(sl.Query)
	correlated := algebra.IsCorrelated(sl.Query)
	perBinding := 1.0
	if correlated {
		// The executor re-evaluates correlated subplans per outer binding.
		perBinding = tsub
	}
	switch s {
	case Gen:
		crossBase := 1.0
		for _, sc := range algebra.BaseRelations(sl.Query) {
			crossBase *= float64(a.stats.Card(sc.Name) + 1)
		}
		// Outer × CrossBase pairs, each probing the rewritten sublink via
		// the simulated-join EXISTS.
		return outer * crossBase * (tsub + perBinding)
	case Left, Move:
		// Outer join with a disjunctive Jsub: nested loop.
		return outer * (tsub + perBinding)
	case Unn, UnnX:
		// Hash join for equality-ANY, theta join otherwise.
		if sl.Kind == algebra.AnySublink && sl.Op == types.CmpEq {
			return outer + tsub
		}
		return outer * tsub * 0.5
	default:
		return outer * tsub
	}
}

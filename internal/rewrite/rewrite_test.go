package rewrite

import (
	"errors"
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

func ints(vals ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func null() types.Value { return types.Null() }

// figure3DB is the database of the paper's Figure 3.
func figure3DB() *catalog.Catalog {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4), ints(4, 5)))
	return c
}

func scan(t *testing.T, c *catalog.Catalog, name string) *algebra.Scan {
	t.Helper()
	sch, err := c.Schema(name)
	if err != nil {
		t.Fatalf("schema(%s): %v", name, err)
	}
	return algebra.NewScan(name, "", sch)
}

func run(t *testing.T, c *catalog.Catalog, op algebra.Op) *rel.Relation {
	t.Helper()
	out, err := eval.New(c).Eval(op)
	if err != nil {
		t.Fatalf("eval: %v\nplan:\n%s", err, algebra.Indent(op))
	}
	return out
}

func rewriteRun(t *testing.T, c *catalog.Catalog, q algebra.Op, s Strategy) (*Result, *rel.Relation) {
	t.Helper()
	res, err := Rewrite(q, s)
	if err != nil {
		t.Fatalf("rewrite(%v): %v", s, err)
	}
	return res, run(t, c, res.Plan)
}

// resultPreserved checks ΠS_T(q+) = ΠS_T(q): the rewritten query restricted
// to the original attributes is set-equal to the original result (Theorem 4's
// result-preservation direction).
func resultPreserved(t *testing.T, c *catalog.Catalog, q algebra.Op, res *Result, got *rel.Relation) {
	t.Helper()
	orig := run(t, c, q)
	width := res.Original.Len()
	proj := rel.New(res.Original)
	_ = got.Each(func(tp rel.Tuple, n int) error {
		proj.Add(tp[:width].Clone(), n)
		return nil
	})
	if !proj.EqualSet(orig) {
		t.Errorf("result not preserved:\noriginal: %s\nprojected: %s", orig, proj)
	}
}

// --- R1–R5 (Figure 4) ---

func TestRewriteScanR1(t *testing.T) {
	c := figure3DB()
	res, got := rewriteRun(t, c, scan(t, c, "r"), Gen)
	if len(res.Prov) != 1 || res.Prov[0].Rel != "r" {
		t.Fatalf("prov sources = %+v", res.Prov)
	}
	want := rel.FromTuples(got.Schema, ints(1, 1, 1, 1), ints(2, 1, 2, 1), ints(3, 2, 3, 2))
	if !got.Equal(want) {
		t.Errorf("R+ = %s", got)
	}
	if got.Schema.Attrs[2].Name != "prov_r_a" {
		t.Errorf("prov attr name = %s", got.Schema.Attrs[2].Name)
	}
}

// TestRepresentationExample is the worked example of §3.1:
// qex = Π_{a,c}(σ_{a<c}(R×S)) over R={(1,2),(3,4)}, S={(2),(5)}.
func TestRepresentationExample(t *testing.T) {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 2), ints(3, 4)))
	c.Register("s", rel.FromTuples(schema.New("", "c"), ints(2), ints(5)))
	q := algebra.NewProject(
		&algebra.Select{
			Child: &algebra.Cross{L: scan(t, c, "r"), R: scan(t, c, "s")},
			Cond:  algebra.Cmp{Op: types.CmpLt, L: algebra.Attr("a"), R: algebra.Attr("c")},
		},
		algebra.KeepCol("a"), algebra.KeepCol("c"),
	)
	res, got := rewriteRun(t, c, q, Gen)
	// Paper: (a,c,pa,pb,pc) = {(1,2,1,2,2),(1,5,1,2,5),(3,5,3,4,5)}.
	want := rel.FromTuples(got.Schema,
		ints(1, 2, 1, 2, 2), ints(1, 5, 1, 2, 5), ints(3, 5, 3, 4, 5))
	if !got.Equal(want) {
		t.Errorf("qex+ = %s, want %s", got, want)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteAggregateR5(t *testing.T) {
	c := figure3DB()
	q := &algebra.Aggregate{
		Child: scan(t, c, "r"),
		Group: []algebra.GroupExpr{{E: algebra.Attr("b"), As: "b"}},
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: algebra.Attr("a"), As: "s"}},
	}
	res, got := rewriteRun(t, c, q, Gen)
	// Group b=1 (sum 3) has two contributing tuples; b=2 (sum 3) has one.
	want := rel.FromTuples(got.Schema,
		ints(1, 3, 1, 1), ints(1, 3, 2, 1), ints(2, 3, 3, 2))
	if !got.Equal(want) {
		t.Errorf("α+ = %s", got)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteAggregateEmptyInput(t *testing.T) {
	c := catalog.New()
	c.Register("e", rel.New(schema.New("", "a")))
	q := &algebra.Aggregate{
		Child: scan(t, c, "e"),
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggCountStar, As: "n"}},
	}
	_, got := rewriteRun(t, c, q, Gen)
	want := rel.FromTuples(got.Schema, rel.Tuple{types.NewInt(0), null()})
	if !got.Equal(want) {
		t.Errorf("empty-input aggregate provenance = %s", got)
	}
}

func TestRewriteAggregateNullGroupKey(t *testing.T) {
	// R5 joins the aggregate with T+ on G =n Ĝ: groups keyed by NULL must
	// still find their contributing tuples (plain = would lose them).
	c := catalog.New()
	c.Register("t", rel.FromTuples(schema.New("", "g", "v"),
		rel.Tuple{types.Null(), types.NewInt(1)},
		rel.Tuple{types.Null(), types.NewInt(2)},
		ints(1, 5),
	))
	q := &algebra.Aggregate{
		Child: scan(t, c, "t"),
		Group: []algebra.GroupExpr{{E: algebra.Attr("g"), As: "g"}},
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: algebra.Attr("v"), As: "s"}},
	}
	res, got := rewriteRun(t, c, q, Gen)
	want := rel.FromTuples(got.Schema,
		rel.Tuple{types.Null(), types.NewInt(3), types.Null(), types.NewInt(1)},
		rel.Tuple{types.Null(), types.NewInt(3), types.Null(), types.NewInt(2)},
		rel.Tuple{types.NewInt(1), types.NewInt(5), types.NewInt(1), types.NewInt(5)},
	)
	if !got.Equal(want) {
		t.Errorf("NULL-group provenance = %s\nwant %s", got, want)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteSelfJoinDisambiguation(t *testing.T) {
	c := figure3DB()
	sch, _ := c.Schema("r")
	q := &algebra.Join{
		L:    algebra.NewScan("r", "x", sch),
		R:    algebra.NewScan("r", "y", sch),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.QAttr("x", "a"), R: algebra.QAttr("y", "a")},
	}
	res, got := rewriteRun(t, c, q, Gen)
	if len(res.Prov) != 2 {
		t.Fatalf("prov sources = %d", len(res.Prov))
	}
	if res.Prov[0].Attrs[0].Name == res.Prov[1].Attrs[0].Name {
		t.Fatal("self-join provenance attributes collide")
	}
	if got.Card() != 3 {
		t.Errorf("self-join provenance card = %d", got.Card())
	}
}

func TestRewriteUnion(t *testing.T) {
	c := figure3DB()
	l := algebra.NewProject(scan(t, c, "r"), algebra.KeepCol("a"))
	r := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	q := &algebra.SetOp{Kind: algebra.Union, Bag: true, L: l, R: r}
	res, got := rewriteRun(t, c, q, Gen)
	if got.Card() != 6 {
		t.Fatalf("union provenance card = %d: %s", got.Card(), got)
	}
	// Left tuples carry NULL provenance for S and vice versa.
	if got.Count(rel.Tuple{types.NewInt(1), types.NewInt(1), types.NewInt(1), null(), null()}) != 1 {
		t.Errorf("left union provenance wrong: %s", got)
	}
	if got.Count(rel.Tuple{types.NewInt(4), null(), null(), types.NewInt(4), types.NewInt(5)}) != 1 {
		t.Errorf("right union provenance wrong: %s", got)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteIntersect(t *testing.T) {
	c := catalog.New()
	c.Register("l", rel.FromTuples(schema.New("", "a"), ints(1), ints(2)))
	c.Register("m", rel.FromTuples(schema.New("", "b"), ints(2), ints(3)))
	q := &algebra.SetOp{
		Kind: algebra.Intersect, Bag: false,
		L: scan(t, c, "l"), R: scan(t, c, "m"),
	}
	res, got := rewriteRun(t, c, q, Gen)
	want := rel.FromTuples(got.Schema, ints(2, 2, 2))
	if !got.Equal(want) {
		t.Errorf("intersect provenance = %s", got)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteExcept(t *testing.T) {
	c := catalog.New()
	c.Register("l", rel.FromTuples(schema.New("", "a"), ints(1), ints(2)))
	c.Register("m", rel.FromTuples(schema.New("", "b"), ints(2), ints(3)))
	q := &algebra.SetOp{Kind: algebra.Except, Bag: false, L: scan(t, c, "l"), R: scan(t, c, "m")}
	res, got := rewriteRun(t, c, q, Gen)
	// Result (1): derivation (1) from L, and per Definition 1 all of M.
	want := rel.FromTuples(got.Schema, ints(1, 1, 2), ints(1, 1, 3))
	if !got.Equal(want) {
		t.Errorf("except provenance = %s", got)
	}
	resultPreserved(t, c, q, res, got)
}

func TestRewriteExceptEmptyRight(t *testing.T) {
	c := catalog.New()
	c.Register("l", rel.FromTuples(schema.New("", "a"), ints(1)))
	c.Register("m", rel.New(schema.New("", "b")))
	q := &algebra.SetOp{Kind: algebra.Except, Bag: false, L: scan(t, c, "l"), R: scan(t, c, "m")}
	_, got := rewriteRun(t, c, q, Gen)
	want := rel.FromTuples(got.Schema, rel.Tuple{types.NewInt(1), types.NewInt(1), null()})
	if !got.Equal(want) {
		t.Errorf("except with empty right = %s", got)
	}
}

func TestRewriteLimitRejected(t *testing.T) {
	c := figure3DB()
	q := &algebra.Limit{Child: scan(t, c, "r"), N: 1}
	if _, err := Rewrite(q, Gen); err == nil {
		t.Fatal("LIMIT should be rejected")
	}
}

// --- Figure 3: sublink provenance under all applicable strategies ---

// figure3Q1 is q1 = σ_{a = ANY(Πc(S))}(R).
func figure3Q1(t *testing.T, c *catalog.Catalog) algebra.Op {
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	return &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
	}
}

// figure3Q1Want is the provenance table printed in Figure 3 for q1, in the
// single-relation representation (a, b, prov_r_a, prov_r_b, prov_s_c, prov_s_d):
// (1,1) ← R(1,1), S(1,3); (2,1) ← R(2,1), S(2,4).
func figure3Q1Want(sch schema.Schema) *rel.Relation {
	return rel.FromTuples(sch,
		ints(1, 1, 1, 1, 1, 3),
		ints(2, 1, 2, 1, 2, 4),
	)
}

func TestFigure3Q1AllStrategies(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move, Unn, Auto} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			q := figure3Q1(t, c)
			res, got := rewriteRun(t, c, q, s)
			want := figure3Q1Want(got.Schema)
			if !got.Equal(want) {
				t.Errorf("q1+ under %v = %s\nwant %s\nplan:\n%s", s, got, want, algebra.Indent(res.Plan))
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

// TestFigure3Q2 is q2 = σ_{c > ALL(Πa(R))}(S): result (4,5) with all of R
// and S(4,5) in its provenance.
func TestFigure3Q2(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move, Auto} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			sub := algebra.NewProject(scan(t, c, "r"), algebra.KeepCol("a"))
			q := &algebra.Select{
				Child: scan(t, c, "s"),
				Cond:  algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("c"), Query: sub},
			}
			res, got := rewriteRun(t, c, q, s)
			// (c,d,prov_s_c,prov_s_d,prov_r_a,prov_r_b): (4,5) joins every R tuple.
			want := rel.FromTuples(got.Schema,
				ints(4, 5, 4, 5, 1, 1),
				ints(4, 5, 4, 5, 2, 1),
				ints(4, 5, 4, 5, 3, 2),
			)
			if !got.Equal(want) {
				t.Errorf("q2+ = %s\nwant %s", got, want)
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

// TestFigure3Q3 is q3 = σ_{(a=3) ∨ ¬(a < ALL(σ_{c≠1}(Πc(S))))}(R) with
// Tsub = {2,4}:
//
//	(2,1): sublink reqfalse → Tsub^false = {2} → provenance S(2,4);
//	(3,2): a=3 satisfies the first disjunct, so the sublink's role is ind
//	       under Definition 1 and Figure 3 prints S* = {(2,4),(4,5)}. The
//	       rewrite strategies implement Definition 2 (§2.5: condition 3
//	       "should be applied to these queries too"), which eliminates the
//	       ind role: the sublink's actual value is false, so only
//	       Tsub^false = {2} → S(2,4) contributes. The Definition 1 variant
//	       is covered by the provenance oracle tests.
func TestFigure3Q3(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move, Auto} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			sub := algebra.NewProject(
				&algebra.Select{
					Child: scan(t, c, "s"),
					Cond:  algebra.Cmp{Op: types.CmpNe, L: algebra.Attr("c"), R: algebra.IntConst(1)},
				},
				algebra.KeepCol("c"),
			)
			q := &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Or{
					L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(3)},
					R: algebra.Not{E: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub}},
				},
			}
			res, got := rewriteRun(t, c, q, s)
			// (a,b,prov_r_a,prov_r_b,prov_s_c,prov_s_d):
			want := rel.FromTuples(got.Schema,
				ints(2, 1, 2, 1, 2, 4),
				ints(3, 2, 3, 2, 2, 4),
			)
			if !got.Equal(want) {
				t.Errorf("q3+ = %s\nwant %s\nplan:\n%s", got, want, algebra.Indent(res.Plan))
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

// --- §3.5 Gen example: correlated ANY sublink ---

func TestGenExampleSection35(t *testing.T) {
	// q = σ_{a = ANY(σ_{c=b}(S))}(R) over R(a,b), S(c).
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c"), ints(1), ints(2), ints(3)))
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}
	q := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
	}
	res, got := rewriteRun(t, c, q, Gen)
	// (1,1): Tsub(b=1)={1}, a=1 matches → S*={1}.
	// (2,1): Tsub={1}, a=2 no match → dropped.
	// (3,2): Tsub={2}, a=3 no match → dropped.
	want := rel.FromTuples(got.Schema, ints(1, 1, 1, 1, 1))
	if !got.Equal(want) {
		t.Errorf("§3.5 example = %s\nwant %s\nplan:\n%s", got, want, algebra.Indent(res.Plan))
	}
	resultPreserved(t, c, q, res, got)
	// Left/Move/Unn must refuse the correlated sublink.
	for _, s := range []Strategy{Left, Move, Unn} {
		if _, err := Rewrite(q, s); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%v on correlated sublink: err = %v, want ErrNotApplicable", s, err)
		}
	}
}

// TestGenPlanShapeSection35 pins the structural shape of the Gen rewrite
// for the paper's §3.5 example — the pieces the paper's q+ displays must
// all be present: the CrossBase (null-extended base relation renamed to
// provenance attributes), the membership EXISTS over the renamed Tsub+,
// the re-evaluated original sublink Csub inside Jsub, and the empty-result
// branch (¬EXISTS(Tsub) ∧ P =n NULL).
func TestGenPlanShapeSection35(t *testing.T) {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1)))
	c.Register("s", rel.FromTuples(schema.New("", "c"), ints(1)))
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}
	q := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
	}
	res, err := Rewrite(q, Gen)
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.Indent(res.Plan)
	for _, want := range []string{
		"VALUES (NULL)", // null(S) extension tuple
		"SetOp UNION",   // S ∪ null(S)
		"prov_s_c",      // P(S) naming
		"prov_s_c_s",    // the Tsub′ rename inside the EXISTS
		"=n",            // null-aware join simulation
		"IS NULL",       // empty-sublink branch
		"a = ANY",       // the original Csub re-evaluated in Jsub
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("Gen plan missing %q:\n%s", want, plan)
		}
	}
	// Exactly one provenance source per base relation access: r and s.
	if len(res.Prov) != 2 || res.Prov[0].Rel != "r" || res.Prov[1].Rel != "s" {
		t.Errorf("prov sources = %+v", res.Prov)
	}
}

// --- EXISTS and scalar sublinks ---

func TestExistsSublinkProvenance(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move, Unn, Auto} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			sub := &algebra.Select{
				Child: scan(t, c, "s"),
				Cond:  algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("c"), R: algebra.IntConst(2)},
			}
			q := &algebra.Select{
				Child: scan(t, c, "r"),
				Cond:  algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub},
			}
			res, got := rewriteRun(t, c, q, s)
			// EXISTS provenance is all of Tsub = {(4,5)}; every R tuple kept.
			want := rel.FromTuples(got.Schema,
				ints(1, 1, 1, 1, 4, 5),
				ints(2, 1, 2, 1, 4, 5),
				ints(3, 2, 3, 2, 4, 5),
			)
			if !got.Equal(want) {
				t.Errorf("EXISTS+ = %s\nwant %s", got, want)
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

func TestExistsEmptySublinkDropsAll(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move, Unn} {
		c := figure3DB()
		sub := &algebra.Select{Child: scan(t, c, "s"), Cond: algebra.BoolConst(false)}
		q := &algebra.Select{Child: scan(t, c, "r"), Cond: algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}}
		_, got := rewriteRun(t, c, q, s)
		if !got.Empty() {
			t.Errorf("%v: EXISTS over empty sublink should produce nothing, got %s", s, got)
		}
	}
}

func TestNotExistsNullProvenance(t *testing.T) {
	// σ_{¬EXISTS(σ_{false}(S))}(R): all R tuples qualify; the sublink query
	// is empty so its provenance attributes are NULL.
	for _, s := range []Strategy{Gen, Left, Move} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			sub := &algebra.Select{Child: scan(t, c, "s"), Cond: algebra.BoolConst(false)}
			q := &algebra.Select{
				Child: scan(t, c, "r"),
				Cond:  algebra.Not{E: algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}},
			}
			res, got := rewriteRun(t, c, q, s)
			want := rel.FromTuples(got.Schema,
				rel.Tuple{types.NewInt(1), types.NewInt(1), types.NewInt(1), types.NewInt(1), null(), null()},
				rel.Tuple{types.NewInt(2), types.NewInt(1), types.NewInt(2), types.NewInt(1), null(), null()},
				rel.Tuple{types.NewInt(3), types.NewInt(2), types.NewInt(3), types.NewInt(2), null(), null()},
			)
			if !got.Equal(want) {
				t.Errorf("¬EXISTS+ = %s\nwant %s\nplan:\n%s", got, want, algebra.Indent(res.Plan))
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

func TestScalarSublinkProvenance(t *testing.T) {
	for _, s := range []Strategy{Gen, Left, Move} {
		t.Run(s.String(), func(t *testing.T) {
			c := figure3DB()
			// σ_{a = (α_min(c)(S))}(R): min is 1, so only (1,1) qualifies;
			// scalar-sublink provenance is all of Tsub's provenance = all S.
			minQ := &algebra.Aggregate{
				Child: scan(t, c, "s"),
				Aggs:  []algebra.AggExpr{{Fn: algebra.AggMin, Arg: algebra.Attr("c"), As: "m"}},
			}
			q := &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"),
					R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: minQ}},
			}
			res, got := rewriteRun(t, c, q, s)
			want := rel.FromTuples(got.Schema,
				ints(1, 1, 1, 1, 1, 3),
				ints(1, 1, 1, 1, 2, 4),
				ints(1, 1, 1, 1, 4, 5),
			)
			if !got.Equal(want) {
				t.Errorf("scalar+ = %s\nwant %s\nplan:\n%s", got, want, algebra.Indent(res.Plan))
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

// --- multiple sublinks (Definition 2) ---

// TestMultiSublinkDefinition2 reproduces the §2.5 example: U={(5)},
// R={1..100}, S={(1),(5)}, condition C1 ∨ C2 with C1 = a = ANY(R) (true) and
// C2 = a > ALL(S) (false). Under Definition 2 the provenance is unique:
// R* = {5} (C1 reqtrue → R^true) and S* = {5} (C2 false → S^false = tuples
// with ¬(5 > t') = {5}).
func TestMultiSublinkDefinition2(t *testing.T) {
	for _, strat := range []Strategy{Gen, Left, Move} {
		t.Run(strat.String(), func(t *testing.T) {
			c := catalog.New()
			rTuples := make([]rel.Tuple, 100)
			for i := range rTuples {
				rTuples[i] = ints(int64(i + 1))
			}
			c.Register("r", rel.FromTuples(schema.New("", "b"), rTuples...))
			c.Register("s", rel.FromTuples(schema.New("", "c"), ints(1), ints(5)))
			c.Register("u", rel.FromTuples(schema.New("", "a"), ints(5)))
			q := &algebra.Select{
				Child: scan(t, c, "u"),
				Cond: algebra.Or{
					L: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: scan(t, c, "r")},
					R: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("a"), Query: scan(t, c, "s")},
				},
			}
			res, got := rewriteRun(t, c, q, strat)
			// (a, prov_u_a, prov_r_b, prov_s_c) = (5,5,5,5) only.
			want := rel.FromTuples(got.Schema, ints(5, 5, 5, 5))
			if !got.Equal(want) {
				t.Errorf("Definition 2 multi-sublink provenance = %s\nwant %s", got, want)
			}
			resultPreserved(t, c, q, res, got)
		})
	}
}

// TestSingleSublinkNoFalsePositives verifies the §2.5 note: for
// σ_{a=2 ∨ a = ANY(S)}(R) and result tuple (2,1) the sublink is true, and
// under Definition 2 only S tuples equal to a contribute — not all of S as
// Definition 1's ind role would include.
func TestSingleSublinkNoFalsePositives(t *testing.T) {
	for _, strat := range []Strategy{Gen, Left, Move} {
		t.Run(strat.String(), func(t *testing.T) {
			c := figure3DB()
			sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
			q := &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Or{
					L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(2)},
					R: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
				},
			}
			_, got := rewriteRun(t, c, q, strat)
			// (2,1) must pair only with S(2,4), not with all of S.
			for _, tp := range got.SortedTuples() {
				if tp[0].Int() == 2 && tp[4].Int() != 2 {
					t.Errorf("false positive in provenance of (2,1): %s", tp)
				}
			}
		})
	}
}

// --- projections with sublinks ---

func TestProjectionSublinkStrategies(t *testing.T) {
	for _, strat := range []Strategy{Gen, Left, Move, Auto} {
		t.Run(strat.String(), func(t *testing.T) {
			c := figure3DB()
			sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
			q := algebra.NewProject(scan(t, c, "r"),
				algebra.KeepCol("a"),
				algebra.Col(algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub}, "m"),
			)
			res, got := rewriteRun(t, c, q, strat)
			resultPreserved(t, c, q, res, got)
			// a=1: sublink true → provenance S(1,·) only. a=3: false → all S.
			for _, tp := range got.SortedTuples() {
				a := tp[0].Int()
				provC := tp[4]
				switch a {
				case 1, 2:
					if provC.IsNull() || provC.Int() != a {
						t.Errorf("a=%d should pair only with S(c=%d): %s", a, a, tp)
					}
				}
			}
			count3 := 0
			for _, tp := range got.SortedTuples() {
				if tp[0].Int() == 3 {
					count3++
				}
			}
			if count3 != 3 {
				t.Errorf("a=3 (sublink false) should pair with all 3 S tuples, got %d", count3)
			}
		})
	}
}

// TestCorrelatedProjectionSublink is the §2.6 example:
// q = Π_{a = ALL(σ_{b=c}(S))}(R) — wait, the paper's example projects the
// sublink value; each input tuple parameterizes Tsub differently and the
// provenance is computed per input tuple, which the single-relation
// representation captures by storing the parameterizing input tuple's
// provenance alongside.
func TestCorrelatedProjectionSublink(t *testing.T) {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4)))
	sub := algebra.NewProject(&algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}, algebra.KeepCol("d"))
	q := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub}, "v"),
	)
	res, got := rewriteRun(t, c, q, Gen)
	resultPreserved(t, c, q, res, got)
	// Each result row pairs the sublink's provenance with the provenance of
	// the input tuple that parameterized it: R(1,1) with S(1,3), R(2,1) with
	// S(1,3), R(3,2) with S(2,4).
	if got.Card() != 3 {
		t.Fatalf("card = %d: %s", got.Card(), got)
	}
	for _, tp := range got.SortedTuples() {
		b, provC := tp[2].Int(), tp[3].Int()
		if b != provC {
			t.Errorf("input tuple b=%d paired with sublink provenance c=%d: %s", b, provC, tp)
		}
	}
}

// --- nested sublinks ---

func TestNestedSublinkGen(t *testing.T) {
	// σ_{a = ANY(Π_c(σ_{c = ANY(Π_d(S))}(S2)))}(R) — a sublink nested in a
	// sublink, all uncorrelated. S2 is a second access to S.
	c := figure3DB()
	sch, _ := c.Schema("s")
	inner := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("d"))
	mid := algebra.NewProject(&algebra.Select{
		Child: algebra.NewScan("s", "s2", sch),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq,
			Test: algebra.QAttr("s2", "c"), Query: inner},
	}, algebra.Col(algebra.QAttr("s2", "c"), "c"))
	q := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: mid},
	}
	for _, strat := range []Strategy{Gen, Left, Move, Unn, Auto} {
		t.Run(strat.String(), func(t *testing.T) {
			res, got := rewriteRun(t, c, q, strat)
			resultPreserved(t, c, q, res, got)
			if len(res.Prov) != 3 {
				t.Fatalf("expected 3 provenance sources (r, s2, s), got %d", len(res.Prov))
			}
			// σ_{c=ANY({3,4,5})}(S) = {(4,5)} → mid = {4}; σ_{a=ANY({4})}(R) = ∅.
			if !got.Empty() {
				t.Errorf("nested sublink result should be empty, got %s", got)
			}
		})
	}
}

func TestAggregationWithSublinkHaving(t *testing.T) {
	// HAVING-style: σ_{s > (scalar avg)}(α_{b;sum(a)→s}(R)) — a selection
	// with a scalar sublink above an aggregation.
	for _, strat := range []Strategy{Gen, Left, Move} {
		t.Run(strat.String(), func(t *testing.T) {
			c := figure3DB()
			avgQ := &algebra.Aggregate{
				Child: scan(t, c, "s"),
				Aggs:  []algebra.AggExpr{{Fn: algebra.AggMin, Arg: algebra.Attr("c"), As: "m"}},
			}
			agg := &algebra.Aggregate{
				Child: scan(t, c, "r"),
				Group: []algebra.GroupExpr{{E: algebra.Attr("b"), As: "b"}},
				Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: algebra.Attr("a"), As: "s"}},
			}
			q := &algebra.Select{
				Child: agg,
				Cond: algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("s"),
					R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: avgQ}},
			}
			res, got := rewriteRun(t, c, q, strat)
			resultPreserved(t, c, q, res, got)
			// Both groups (sum 3 each) exceed min(c)=1; each group's rows pair
			// its contributing R tuples with all of S (scalar provenance).
			if got.Card() != 9 { // (2 tuples of group 1 + 1 of group 2) × 3 S tuples
				t.Errorf("HAVING provenance card = %d: %s", got.Card(), got)
			}
		})
	}
}

// --- strategy equivalence property ---

// TestStrategiesAgree cross-checks Gen, Left and Move (and Unn where
// applicable) on a family of uncorrelated sublink queries over randomized
// small relations: all strategies must produce identical provenance bags.
func TestStrategiesAgree(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(t *testing.T, c *catalog.Catalog) algebra.Op
		unn  bool
	}{
		{"eqAny", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return figure3Q1(t, c)
		}, true},
		{"ltAll", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond:  algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub},
			}
		}, false},
		{"existsConj", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			sub := &algebra.Select{
				Child: scan(t, c, "s"),
				Cond:  algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("c"), R: algebra.IntConst(1)},
			}
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.And{
					L: algebra.Cmp{Op: types.CmpLe, L: algebra.Attr("a"), R: algebra.IntConst(2)},
					R: algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub},
				},
			}
		}, true},
	}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, shape := range shapes {
		for _, seed := range seeds {
			c := randomDB(seed)
			q := shape.mk(t, c)
			ref, err := Rewrite(q, Gen)
			if err != nil {
				t.Fatalf("%s/seed%d Gen: %v", shape.name, seed, err)
			}
			refOut := run(t, c, ref.Plan)
			strategies := []Strategy{Left, Move}
			if shape.unn {
				strategies = append(strategies, Unn)
			}
			for _, strat := range strategies {
				res, err := Rewrite(q, strat)
				if err != nil {
					t.Fatalf("%s/seed%d %v: %v", shape.name, seed, strat, err)
				}
				got := run(t, c, res.Plan)
				if !got.Equal(refOut.WithSchema(got.Schema)) {
					t.Errorf("%s/seed%d: %v disagrees with Gen:\nGen:  %s\n%v: %s",
						shape.name, seed, strat, refOut, strat, got)
				}
			}
		}
	}
}

// randomDB builds small deterministic pseudo-random relations r(a,b), s(c,d).
func randomDB(seed int64) *catalog.Catalog {
	c := catalog.New()
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := (seed >> 33) % 5
		if v < 0 {
			v = -v
		}
		return v
	}
	r := rel.New(schema.New("", "a", "b"))
	for i := 0; i < 6; i++ {
		r.Add(ints(next(), next()), 1)
	}
	s := rel.New(schema.New("", "c", "d"))
	for i := 0; i < 4; i++ {
		s.Add(ints(next(), next()), 1)
	}
	c.Register("r", r)
	c.Register("s", s)
	return c
}

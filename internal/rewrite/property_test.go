package rewrite

import (
	"math/rand"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/opt"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// queryGen produces random single-block queries with sublinks over the
// relations r(a,b) and s(c,d): random comparison conditions, random sublink
// kinds and operators, optional correlation, optional projection/distinct.
type queryGen struct {
	rnd *rand.Rand
	cat *catalog.Catalog
}

func newQueryGen(seed int64) *queryGen {
	g := &queryGen{rnd: rand.New(rand.NewSource(seed)), cat: catalog.New()}
	mk := func(names ...string) *rel.Relation {
		r := rel.New(schema.New("", names...))
		n := 3 + g.rnd.Intn(5)
		for i := 0; i < n; i++ {
			t := make(rel.Tuple, len(names))
			for j := range t {
				if g.rnd.Intn(12) == 0 {
					t[j] = types.Null()
				} else {
					t[j] = types.NewInt(int64(g.rnd.Intn(5)))
				}
			}
			r.Add(t, 1)
		}
		return r
	}
	g.cat.Register("r", mk("a", "b"))
	g.cat.Register("s", mk("c", "d"))
	return g
}

func (g *queryGen) scan(name string) *algebra.Scan {
	sch, err := g.cat.Schema(name)
	if err != nil {
		panic(err)
	}
	return algebra.NewScan(name, "", sch)
}

func (g *queryGen) cmpOp() types.CmpOp {
	return []types.CmpOp{types.CmpEq, types.CmpNe, types.CmpLt, types.CmpLe, types.CmpGt, types.CmpGe}[g.rnd.Intn(6)]
}

// sublink builds a random sublink over s; correlated references b from r.
func (g *queryGen) sublink(correlated bool) algebra.Sublink {
	var cond algebra.Expr = algebra.Cmp{Op: g.cmpOp(), L: algebra.Attr("c"), R: algebra.IntConst(int64(g.rnd.Intn(5)))}
	if correlated {
		cond = algebra.And{L: cond, R: algebra.Cmp{Op: g.cmpOp(), L: algebra.Attr("d"), R: algebra.Attr("b")}}
	}
	inner := algebra.NewProject(
		&algebra.Select{Child: g.scan("s"), Cond: cond},
		algebra.KeepCol("c"),
	)
	kind := []algebra.SublinkKind{algebra.AnySublink, algebra.AllSublink, algebra.ExistsSublink}[g.rnd.Intn(3)]
	sl := algebra.Sublink{Kind: kind, Query: inner}
	if kind != algebra.ExistsSublink {
		sl.Op = g.cmpOp()
		sl.Test = algebra.Attr("a")
	}
	return sl
}

// condition combines 1–2 sublinks with plain comparisons via AND/OR/NOT.
func (g *queryGen) condition(correlated bool) algebra.Expr {
	plain := algebra.Cmp{Op: g.cmpOp(), L: algebra.Attr("a"), R: algebra.IntConst(int64(g.rnd.Intn(5)))}
	var sub algebra.Expr = g.sublink(correlated)
	if g.rnd.Intn(3) == 0 {
		sub = algebra.Not{E: sub}
	}
	switch g.rnd.Intn(4) {
	case 0:
		return sub
	case 1:
		return algebra.And{L: plain, R: sub}
	case 2:
		return algebra.Or{L: plain, R: sub}
	default:
		return algebra.And{L: sub, R: algebra.Or{L: plain, R: g.sublink(correlated)}}
	}
}

func (g *queryGen) query(correlated bool) algebra.Op {
	sel := &algebra.Select{Child: g.scan("r"), Cond: g.condition(correlated)}
	switch g.rnd.Intn(3) {
	case 0:
		return sel
	case 1:
		return algebra.NewProject(sel, algebra.KeepCol("a"))
	default:
		return &algebra.Project{Child: sel, Cols: []algebra.ProjExpr{algebra.KeepCol("b")}, Distinct: true}
	}
}

// evalBoth runs the original and rewritten plans (optimized and not) and
// checks the core invariants; returns the rewritten output.
func checkInvariants(t *testing.T, cat *catalog.Catalog, q algebra.Op, res *Result, label string) *rel.Relation {
	t.Helper()
	ev := eval.New(cat)
	orig, err := ev.Eval(q)
	if err != nil {
		t.Fatalf("%s: original eval: %v", label, err)
	}
	out, err := ev.Eval(res.Plan)
	if err != nil {
		t.Fatalf("%s: rewritten eval: %v\n%s", label, err, algebra.Indent(res.Plan))
	}

	// Invariant 1: schema layout — original attributes then provenance.
	width := res.Original.Len()
	wantWidth := width
	for _, p := range res.Prov {
		wantWidth += len(p.Attrs)
	}
	if out.Schema.Len() != wantWidth {
		t.Fatalf("%s: schema width %d, want %d", label, out.Schema.Len(), wantWidth)
	}

	// Invariant 2: result preservation (set semantics).
	proj := rel.New(res.Original)
	_ = out.Each(func(tp rel.Tuple, n int) error {
		proj.Add(tp[:width].Clone(), 1)
		return nil
	})
	if !proj.EqualSet(orig.WithSchema(proj.Schema)) {
		t.Errorf("%s: result not preserved\norig: %s\nproj: %s\nplan:\n%s", label, orig, proj, algebra.Indent(res.Plan))
	}

	// Invariant 3: soundness — every non-NULL provenance tuple group
	// appears in its base relation.
	_ = out.Each(func(tp rel.Tuple, n int) error {
		off := width
		for _, p := range res.Prov {
			w := len(p.Attrs)
			sub := tp[off : off+w]
			off += w
			allNull := true
			for _, v := range sub {
				if !v.IsNull() {
					allNull = false
				}
			}
			if allNull {
				continue
			}
			base, err := cat.Relation(p.Rel)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if base.Count(sub.Clone()) == 0 {
				t.Errorf("%s: provenance tuple %s not in base relation %s", label, sub, p.Rel)
			}
		}
		return nil
	})

	// Invariant 4: the optimizer does not change the provenance bag.
	optimized, err := ev.Eval(opt.Optimize(res.Plan))
	if err != nil {
		t.Fatalf("%s: optimized eval: %v", label, err)
	}
	if !optimized.Equal(out.WithSchema(optimized.Schema)) {
		t.Errorf("%s: optimizer changed the provenance bag", label)
	}
	return out
}

// TestPropertyUncorrelated fuzzes uncorrelated queries: every strategy that
// rewrites must satisfy the invariants, and all strategies must agree.
func TestPropertyUncorrelated(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		g := newQueryGen(seed)
		q := g.query(false)
		var ref *rel.Relation
		for _, s := range []Strategy{Gen, Left, Move, Unn, UnnX, Auto} {
			res, err := Rewrite(q, s)
			if err != nil {
				// Unn/UnnX may be structurally inapplicable; that is fine.
				continue
			}
			out := checkInvariants(t, g.cat, q, res, s.String())
			if ref == nil {
				ref = out
			} else if !out.Equal(ref.WithSchema(out.Schema)) {
				t.Errorf("seed %d: %v disagrees\nref: %s\ngot: %s\nquery: %s",
					seed, s, ref, out, q)
			}
		}
		if ref == nil {
			t.Fatalf("seed %d: no strategy applied", seed)
		}
	}
}

// TestPropertyCorrelated fuzzes correlated queries under Gen (the only
// applicable strategy) and checks the invariants.
func TestPropertyCorrelated(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		g := newQueryGen(seed * 31)
		q := g.query(true)
		res, err := Rewrite(q, Gen)
		if err != nil {
			t.Fatalf("seed %d: Gen must always apply: %v", seed, err)
		}
		genOut := checkInvariants(t, g.cat, q, res, "Gen(correlated)")
		for _, s := range []Strategy{Left, Move, Unn} {
			if _, err := Rewrite(q, s); err == nil {
				t.Errorf("seed %d: %v should refuse correlated sublinks", seed, s)
			}
		}
		// UnnX may decorrelate an equality-correlated EXISTS (rule X5);
		// when it applies it must agree with Gen, otherwise it must refuse.
		if xres, err := Rewrite(q, UnnX); err == nil {
			out := checkInvariants(t, g.cat, q, xres, "UnnX(correlated)")
			if !out.Equal(genOut.WithSchema(out.Schema)) {
				t.Errorf("seed %d: UnnX disagrees with Gen on correlated EXISTS\nGen:  %s\nUnnX: %s\nquery: %s",
					seed, genOut, out, q)
			}
		}
	}
}

package rewrite

import (
	"errors"
	"fmt"
)

// Strategy selects how sublinks are rewritten.
type Strategy uint8

// The rewrite strategies of the paper plus Auto, which picks the cheapest
// applicable strategy per operator (Unn, then Move, then Gen).
const (
	Gen Strategy = iota
	Left
	Move
	Unn
	Auto
	// UnnX is this reproduction's extension of the Unn strategy to ALL,
	// negated and scalar sublinks (the paper's §3.6 future-work
	// direction); see internal/rewrite/unnx.go.
	UnnX
)

// String names the strategy as in the paper.
func (s Strategy) String() string {
	switch s {
	case Gen:
		return "Gen"
	case Left:
		return "Left"
	case Move:
		return "Move"
	case Unn:
		return "Unn"
	case UnnX:
		return "UnnX"
	case Auto:
		return "Auto"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy parses a strategy name (case-sensitive, as printed).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "Gen", "gen":
		return Gen, nil
	case "Left", "left":
		return Left, nil
	case "Move", "move":
		return Move, nil
	case "Unn", "unn":
		return Unn, nil
	case "UnnX", "unnx":
		return UnnX, nil
	case "Auto", "auto":
		return Auto, nil
	default:
		return Gen, fmt.Errorf("rewrite: unknown strategy %q", name)
	}
}

// ErrNotApplicable reports that the requested strategy cannot rewrite the
// query: Left and Move refuse correlated sublinks; Unn requires its exact
// U1/U2 patterns. The benchmark harness (like the paper's Figure 6) skips
// such strategy/query combinations.
var ErrNotApplicable = errors.New("rewrite: strategy not applicable")

package rewrite

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/schema"
)

// ProvSource describes the provenance attributes contributed by one base
// relation access of the query. The rewritten plan's schema is the original
// schema followed by the Attrs of every ProvSource in order.
type ProvSource struct {
	// Rel is the base relation name.
	Rel string
	// Disamb distinguishes repeated accesses of the same relation
	// (0 for the first access, 1 for the second, …).
	Disamb int
	// Base is the relation's original schema, qualified by the scan alias.
	Base schema.Schema
	// Attrs are the provenance attribute names (P(R)), unqualified and
	// unique within the rewritten query.
	Attrs []schema.Attr
}

// Result is the outcome of a provenance rewrite.
type Result struct {
	// Plan is q+: it computes the original result tuples extended with the
	// contributing tuples of every base relation.
	Plan algebra.Op
	// Original is the schema of the un-rewritten query; the first
	// Original.Len() attributes of Plan's schema are the original result.
	Original schema.Schema
	// Prov lists the provenance attribute groups, one per base relation
	// access, in schema order after the original attributes.
	Prov []ProvSource
}

// ProvAttrs returns all provenance attributes in schema order.
func (r *Result) ProvAttrs() []schema.Attr {
	var out []schema.Attr
	for _, p := range r.Prov {
		out = append(out, p.Attrs...)
	}
	return out
}

// Rewrite transforms q into q+ under the given sublink strategy. It returns
// ErrNotApplicable (wrapped) when the strategy cannot handle a sublink in q.
func Rewrite(q algebra.Op, strategy Strategy) (*Result, error) {
	return RewriteHooked(q, strategy, nil)
}

// Stage is one rewrite-rule application, as observed by a StageHook: the
// rule that fired, the operator it consumed, and the rewritten plan it
// produced, whose schema must be Input's schema followed by the attributes
// of Prov.
type Stage struct {
	// Rule names the rewrite rule, e.g. "R1/scan", "G1/select",
	// "R5/aggregate", "union".
	Rule string
	// Input is the un-rewritten operator the rule consumed.
	Input algebra.Op
	// Plan is the rewritten result.
	Plan algebra.Op
	// Prov lists the provenance sources of Plan.
	Prov []ProvSource
}

// StageHook observes every rewrite-rule application, bottom-up. Hooks must
// not retain or mutate the plans (algebra trees are shared).
type StageHook func(Stage)

// RewriteHooked is Rewrite with a hook invoked after every rule
// application — the per-stage observation point of the plancheck verifier.
// A nil hook behaves exactly like Rewrite.
func RewriteHooked(q algebra.Op, strategy Strategy, hook StageHook) (*Result, error) {
	ctx := &rewriter{strategy: strategy, scanSeq: map[string]int{}, hook: hook}
	plan, prov, err := ctx.rewrite(q)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Original: q.Schema(), Prov: prov}, nil
}

// rewriter carries rewrite-wide state: the strategy, per-relation access
// counters for P(R) disambiguation, a fresh-name counter, and the optional
// per-rule observation hook.
type rewriter struct {
	strategy Strategy
	scanSeq  map[string]int
	fresh    int
	hook     StageHook
}

// freshName returns a new name that cannot collide with user attributes or
// provenance attributes.
func (rw *rewriter) freshName(stem string) string {
	rw.fresh++
	return fmt.Sprintf("_%s%d", stem, rw.fresh)
}

// rewrite dispatches on the operator, returning the rewritten plan and its
// provenance sources, and reports the applied rule to the hook. Invariant:
// plus.Schema() == op.Schema() ++ prov attrs.
func (rw *rewriter) rewrite(op algebra.Op) (algebra.Op, []ProvSource, error) {
	plus, prov, rule, err := rw.rewriteRule(op)
	if err != nil {
		return nil, nil, err
	}
	if rw.hook != nil && rule != "" {
		rw.hook(Stage{Rule: rule, Input: op, Plan: plus, Prov: prov})
	}
	return plus, prov, nil
}

// rewriteRule applies the rule for one operator and names it.
func (rw *rewriter) rewriteRule(op algebra.Op) (algebra.Op, []ProvSource, string, error) {
	switch o := op.(type) {
	case *algebra.Scan:
		plus, prov, err := rw.rewriteScan(o)
		return plus, prov, "R1/scan", err
	case *algebra.Select:
		return rw.rewriteSelect(o)
	case *algebra.Project:
		return rw.rewriteProject(o)
	case *algebra.Cross:
		plus, prov, err := rw.rewriteCross(o)
		return plus, prov, "R4/cross", err
	case *algebra.Join:
		plus, prov, err := rw.rewriteJoin(o)
		return plus, prov, "R4/join", err
	case *algebra.LeftJoin:
		plus, prov, err := rw.rewriteLeftJoin(o)
		return plus, prov, "R4/leftjoin", err
	case *algebra.Aggregate:
		plus, prov, err := rw.rewriteAggregate(o)
		return plus, prov, "R5/aggregate", err
	case *algebra.SetOp:
		plus, prov, err := rw.rewriteSetOp(o)
		return plus, prov, setOpRule(o.Kind), err
	case *algebra.Order:
		child, prov, err := rw.rewrite(o.Child)
		if err != nil {
			return nil, nil, "", err
		}
		return &algebra.Order{Child: child, Keys: o.Keys}, prov, "order", nil
	case *algebra.Limit:
		return nil, nil, "", fmt.Errorf("rewrite: LIMIT queries have no provenance semantics in the paper; remove the limit before asking for provenance")
	case *algebra.Values:
		// Literal relations contribute no base provenance (and no stage
		// worth observing).
		return o, nil, "", nil
	default:
		return nil, nil, "", fmt.Errorf("rewrite: unsupported operator %T", op)
	}
}

func setOpRule(k algebra.SetOpKind) string {
	switch k {
	case algebra.Union:
		return "union"
	case algebra.Intersect:
		return "intersect"
	case algebra.Except:
		return "except"
	default:
		return "setop"
	}
}

// rewriteScan is rule R1: R+ = Π_{R, R→P(R)}(R).
func (rw *rewriter) rewriteScan(s *algebra.Scan) (algebra.Op, []ProvSource, error) {
	disamb := rw.scanSeq[s.Name]
	rw.scanSeq[s.Name]++
	provSch := schema.ProvSchema(s.Name, s.Sch, disamb)

	cols := make([]algebra.ProjExpr, 0, 2*s.Sch.Len())
	for _, a := range s.Sch.Attrs {
		cols = append(cols, algebra.KeepAttr(a))
	}
	for i, a := range s.Sch.Attrs {
		cols = append(cols, algebra.Col(algebra.QAttr(a.Qual, a.Name), provSch.Attrs[i].Name))
	}
	src := ProvSource{Rel: s.Name, Disamb: disamb, Base: s.Sch, Attrs: provSch.Attrs}
	return algebra.NewProject(s, cols...), []ProvSource{src}, nil
}

// rewriteSelect is rule R3 for sublink-free conditions and dispatches to the
// strategy rules (G1, L1, T1, U1/U2) otherwise.
func (rw *rewriter) rewriteSelect(s *algebra.Select) (algebra.Op, []ProvSource, string, error) {
	if !algebra.HasSublink(s.Cond) {
		child, prov, err := rw.rewrite(s.Child)
		if err != nil {
			return nil, nil, "", err
		}
		return &algebra.Select{Child: child, Cond: s.Cond}, prov, "R3/select", nil
	}
	switch rw.strategy {
	case Gen:
		plus, prov, err := rw.genSelect(s)
		return plus, prov, "G1/select", err
	case Left:
		plus, prov, err := rw.leftSelect(s)
		return plus, prov, "L1/select", err
	case Move:
		plus, prov, err := rw.moveSelect(s)
		return plus, prov, "T1/select", err
	case Unn:
		plus, prov, err := rw.unnSelect(s)
		return plus, prov, "U/select", err
	case UnnX:
		plus, prov, err := rw.unnxSelect(s)
		return plus, prov, "X/select", err
	case Auto:
		return rw.autoSelect(s)
	default:
		return nil, nil, "", fmt.Errorf("rewrite: unknown strategy %v", rw.strategy)
	}
}

// rewriteProject is rule R2 for sublink-free projections and dispatches to
// the strategy rules (G2, L2, T2) otherwise.
func (rw *rewriter) rewriteProject(p *algebra.Project) (algebra.Op, []ProvSource, string, error) {
	has := false
	for _, c := range p.Cols {
		if algebra.HasSublink(c.E) {
			has = true
			break
		}
	}
	if !has {
		child, prov, err := rw.rewrite(p.Child)
		if err != nil {
			return nil, nil, "", err
		}
		cols := append([]algebra.ProjExpr{}, p.Cols...)
		cols = append(cols, provCols(prov)...)
		return &algebra.Project{Child: child, Cols: cols, Distinct: p.Distinct}, prov, "R2/project", nil
	}
	switch rw.strategy {
	case Gen:
		plus, prov, err := rw.genProject(p)
		return plus, prov, "G2/project", err
	case Left:
		plus, prov, err := rw.leftProject(p)
		return plus, prov, "L2/project", err
	case Move:
		plus, prov, err := rw.moveProject(p)
		return plus, prov, "T2/project", err
	case Unn, UnnX:
		return nil, nil, "", fmt.Errorf("%w: %v has no rewrite rule for sublinks in projections", ErrNotApplicable, rw.strategy)
	case Auto:
		return rw.autoProject(p)
	default:
		return nil, nil, "", fmt.Errorf("rewrite: unknown strategy %v", rw.strategy)
	}
}

// rewriteCross is rule R4: (T1 × T2)+ = T1+ × T2+ with concatenated
// provenance attribute lists.
func (rw *rewriter) rewriteCross(c *algebra.Cross) (algebra.Op, []ProvSource, error) {
	l, lp, err := rw.rewrite(c.L)
	if err != nil {
		return nil, nil, err
	}
	r, rp, err := rw.rewrite(c.R)
	if err != nil {
		return nil, nil, err
	}
	// Schema order is (T1, P(T1), T2, P(T2)); re-project to the invariant
	// order (T1, T2, P(T1), P(T2)).
	plan := reorder(&algebra.Cross{L: l, R: r}, c.Schema(), append(lp, rp...))
	return plan, append(lp, rp...), nil
}

// rewriteJoin extends R3/R4 to inner joins: (T1 ⋈C T2)+ = T1+ ⋈C T2+. Join
// conditions containing sublinks are normalized to a selection over a cross
// product first, so the sublink strategies apply uniformly.
func (rw *rewriter) rewriteJoin(j *algebra.Join) (algebra.Op, []ProvSource, error) {
	if algebra.HasSublink(j.Cond) {
		norm := &algebra.Select{Child: &algebra.Cross{L: j.L, R: j.R}, Cond: j.Cond}
		return rw.rewrite(norm)
	}
	l, lp, err := rw.rewrite(j.L)
	if err != nil {
		return nil, nil, err
	}
	r, rp, err := rw.rewrite(j.R)
	if err != nil {
		return nil, nil, err
	}
	plan := reorder(&algebra.Join{L: l, R: r, Cond: j.Cond}, j.Schema(), append(lp, rp...))
	return plan, append(lp, rp...), nil
}

// rewriteLeftJoin extends the rules to left outer joins: unmatched left
// tuples carry NULL provenance for the right input, exactly as the executor
// pads their data attributes.
func (rw *rewriter) rewriteLeftJoin(j *algebra.LeftJoin) (algebra.Op, []ProvSource, error) {
	if algebra.HasSublink(j.Cond) {
		return nil, nil, fmt.Errorf("rewrite: sublinks in outer join conditions are not supported")
	}
	l, lp, err := rw.rewrite(j.L)
	if err != nil {
		return nil, nil, err
	}
	r, rp, err := rw.rewrite(j.R)
	if err != nil {
		return nil, nil, err
	}
	plan := reorder(&algebra.LeftJoin{L: l, R: r, Cond: j.Cond}, j.Schema(), append(lp, rp...))
	return plan, append(lp, rp...), nil
}

// rewriteAggregate is rule R5:
//
//	(α_{G,agg}(T))+ = Π_{G,agg,P(T+)}(α_{G,agg}(T) ⟕_{G =n Ĝ} Π_{G→Ĝ,P(T+)}(T+))
//
// The paper writes an inner join on G = Ĝ; we use a left outer join with
// null-aware equality so that (a) groups keyed by NULL join their input
// tuples and (b) the single result tuple of an aggregation over an empty
// input (no GROUP BY) survives with NULL provenance.
func (rw *rewriter) rewriteAggregate(a *algebra.Aggregate) (algebra.Op, []ProvSource, error) {
	child, prov, err := rw.rewrite(a.Child)
	if err != nil {
		return nil, nil, err
	}
	agg := &algebra.Aggregate{Child: a.Child, Group: a.Group, Aggs: a.Aggs}

	// Right side: Π_{G→Ĝ, P(T+)}(T+).
	rightCols := make([]algebra.ProjExpr, 0, len(a.Group)+len(prov))
	hatNames := make([]string, len(a.Group))
	for i, g := range a.Group {
		hatNames[i] = rw.freshName("g")
		rightCols = append(rightCols, algebra.Col(g.E, hatNames[i]))
	}
	rightCols = append(rightCols, provCols(prov)...)
	right := algebra.NewProject(child, rightCols...)

	// Join condition: ∧ G_i =n Ĝ_i (empty for global aggregation → true).
	conds := make([]algebra.Expr, len(a.Group))
	for i, g := range a.Group {
		conds[i] = algebra.NullEq{L: algebra.Attr(g.As), R: algebra.Attr(hatNames[i])}
	}
	join := &algebra.LeftJoin{L: agg, R: right, Cond: algebra.Conj(conds...)}

	// Outer projection: the aggregation schema followed by P(T+).
	outCols := make([]algebra.ProjExpr, 0, agg.Schema().Len()+len(prov))
	for _, at := range agg.Schema().Attrs {
		outCols = append(outCols, algebra.KeepAttr(at))
	}
	outCols = append(outCols, provCols(prov)...)
	return algebra.NewProject(join, outCols...), prov, nil
}

// rewriteSetOp extends the rules to set operations, following the Perm
// system (the EDBT paper's Figure 4 covers only the operators its examples
// need):
//
//   - union: both sides are padded with NULLs for the other side's
//     provenance attributes and unioned;
//   - intersection: every L tuple and R tuple equal (under =n) to a result
//     tuple contributes;
//   - difference: the result tuple's derivations in L contribute, and — per
//     Definition 1's maximality — all of R does (removing any single R tuple
//     still leaves the result non-empty).
func (rw *rewriter) rewriteSetOp(s *algebra.SetOp) (algebra.Op, []ProvSource, error) {
	l, lp, err := rw.rewrite(s.L)
	if err != nil {
		return nil, nil, err
	}
	r, rp, err := rw.rewrite(s.R)
	if err != nil {
		return nil, nil, err
	}
	switch s.Kind {
	case algebra.Union:
		return rw.rewriteUnion(s, l, lp, r, rp)
	case algebra.Intersect:
		return rw.rewriteIntersect(s, l, lp, r, rp)
	case algebra.Except:
		return rw.rewriteExcept(s, l, lp, r, rp)
	default:
		return nil, nil, fmt.Errorf("rewrite: unknown set operation %v", s.Kind)
	}
}

func (rw *rewriter) rewriteUnion(s *algebra.SetOp, l algebra.Op, lp []ProvSource, r algebra.Op, rp []ProvSource) (algebra.Op, []ProvSource, error) {
	outSch := s.Schema()
	// Left side: original attrs, P(L), NULLs for P(R).
	leftCols := make([]algebra.ProjExpr, 0)
	for _, a := range outSch.Attrs {
		leftCols = append(leftCols, algebra.KeepAttr(a))
	}
	leftCols = append(leftCols, provCols(lp)...)
	for _, p := range rp {
		for _, a := range p.Attrs {
			leftCols = append(leftCols, algebra.Col(algebra.NullConst(), a.Name))
		}
	}
	// Right side: R attrs emitted under the left names, NULLs for P(L), P(R).
	rightCols := make([]algebra.ProjExpr, 0)
	for i, a := range outSch.Attrs {
		ra := s.R.Schema().Attrs[i]
		rightCols = append(rightCols, algebra.ProjExpr{E: algebra.QAttr(ra.Qual, ra.Name), As: a.Name, Qual: a.Qual})
	}
	for _, p := range lp {
		for _, a := range p.Attrs {
			rightCols = append(rightCols, algebra.Col(algebra.NullConst(), a.Name))
		}
	}
	rightCols = append(rightCols, provCols(rp)...)
	plan := &algebra.SetOp{
		Kind: algebra.Union,
		Bag:  s.Bag,
		L:    algebra.NewProject(l, leftCols...),
		R:    algebra.NewProject(r, rightCols...),
	}
	return plan, append(lp, rp...), nil
}

func (rw *rewriter) rewriteIntersect(s *algebra.SetOp, l algebra.Op, lp []ProvSource, r algebra.Op, rp []ProvSource) (algebra.Op, []ProvSource, error) {
	core := &algebra.SetOp{Kind: algebra.Intersect, Bag: s.Bag, L: s.L, R: s.R}
	j1, err := rw.joinOnEqualTuple(core, s.Schema(), l, s.L.Schema(), lp)
	if err != nil {
		return nil, nil, err
	}
	j2, err := rw.joinOnEqualTuple(j1, s.Schema(), r, s.R.Schema(), rp)
	if err != nil {
		return nil, nil, err
	}
	outCols := make([]algebra.ProjExpr, 0)
	for _, a := range s.Schema().Attrs {
		outCols = append(outCols, algebra.KeepAttr(a))
	}
	outCols = append(outCols, provCols(lp)...)
	outCols = append(outCols, provCols(rp)...)
	return algebra.NewProject(j2, outCols...), append(lp, rp...), nil
}

func (rw *rewriter) rewriteExcept(s *algebra.SetOp, l algebra.Op, lp []ProvSource, r algebra.Op, rp []ProvSource) (algebra.Op, []ProvSource, error) {
	core := &algebra.SetOp{Kind: algebra.Except, Bag: s.Bag, L: s.L, R: s.R}
	j1, err := rw.joinOnEqualTuple(core, s.Schema(), l, s.L.Schema(), lp)
	if err != nil {
		return nil, nil, err
	}
	// All of R contributes to every result tuple; keep only P(R) and attach
	// it with a left outer join so an empty R yields NULL provenance.
	rProv := algebra.NewProject(r, provCols(rp)...)
	j2 := &algebra.LeftJoin{L: j1, R: rProv, Cond: algebra.BoolConst(true)}
	outCols := make([]algebra.ProjExpr, 0)
	for _, a := range s.Schema().Attrs {
		outCols = append(outCols, algebra.KeepAttr(a))
	}
	outCols = append(outCols, provCols(lp)...)
	outCols = append(outCols, provCols(rp)...)
	return algebra.NewProject(j2, outCols...), append(lp, rp...), nil
}

// joinOnEqualTuple joins base (whose first attributes are resultSch) with a
// rewritten input side, matching result tuples to their derivations under
// per-attribute =n. The side's data attributes are renamed to fresh names to
// avoid collisions; only its provenance attributes remain visible.
func (rw *rewriter) joinOnEqualTuple(base algebra.Op, resultSch schema.Schema, side algebra.Op, sideSch schema.Schema, sideProv []ProvSource) (algebra.Op, error) {
	if resultSch.Len() != sideSch.Len() {
		return nil, fmt.Errorf("rewrite: set operation width mismatch: %s vs %s", resultSch, sideSch)
	}
	cols := make([]algebra.ProjExpr, 0, sideSch.Len()+len(sideProv))
	freshNames := make([]string, sideSch.Len())
	for i, a := range sideSch.Attrs {
		freshNames[i] = rw.freshName("eq")
		cols = append(cols, algebra.Col(algebra.QAttr(a.Qual, a.Name), freshNames[i]))
	}
	cols = append(cols, provCols(sideProv)...)
	wrapped := algebra.NewProject(side, cols...)
	conds := make([]algebra.Expr, resultSch.Len())
	for i, a := range resultSch.Attrs {
		conds[i] = algebra.NullEq{L: algebra.QAttr(a.Qual, a.Name), R: algebra.Attr(freshNames[i])}
	}
	return &algebra.Join{L: base, R: wrapped, Cond: algebra.Conj(conds...)}, nil
}

// provCols builds pass-through projection columns for provenance attributes.
func provCols(prov []ProvSource) []algebra.ProjExpr {
	var out []algebra.ProjExpr
	for _, p := range prov {
		for _, a := range p.Attrs {
			out = append(out, algebra.KeepAttr(a))
		}
	}
	return out
}

// reorder projects a plan whose schema interleaves data and provenance
// attributes back to the invariant layout: original schema first, then all
// provenance attributes.
func reorder(plan algebra.Op, orig schema.Schema, prov []ProvSource) algebra.Op {
	cols := make([]algebra.ProjExpr, 0, orig.Len())
	for _, a := range orig.Attrs {
		cols = append(cols, algebra.KeepAttr(a))
	}
	cols = append(cols, provCols(prov)...)
	return algebra.NewProject(plan, cols...)
}

// cmpOrTrue returns the comparison test "A op t" of an ANY/ALL sublink; for
// EXISTS and scalar sublinks (no comparison) it returns true, matching
// Jsub = true in the paper.
func cmpOrTrue(s algebra.Sublink, res algebra.Expr) algebra.Expr {
	switch s.Kind {
	case algebra.AnySublink, algebra.AllSublink:
		return algebra.Cmp{Op: s.Op, L: s.Test, R: res}
	default:
		return algebra.BoolConst(true)
	}
}

// jsub builds the influence-role condition of §3.3 with csub standing for
// the sublink's (possibly precomputed) boolean value and csubPrime for the
// comparison C′sub = A op t:
//
//	ANY:            Jsub = C′sub ∨ ¬Csub
//	ALL:            Jsub = Csub ∨ ¬C′sub
//	EXISTS, scalar: Jsub = true
func jsub(kind algebra.SublinkKind, csub, csubPrime algebra.Expr) algebra.Expr {
	switch kind {
	case algebra.AnySublink:
		return algebra.Or{L: csubPrime, R: algebra.Not{E: csub}}
	case algebra.AllSublink:
		return algebra.Or{L: csub, R: algebra.Not{E: csubPrime}}
	default:
		return algebra.BoolConst(true)
	}
}

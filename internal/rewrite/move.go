package rewrite

import (
	"perm/internal/algebra"
)

// moveSelect is rule T1:
//
//	(σC(T))+ = Π_{T, P(T+), P(Tsub…)}(
//	    σ_{Ctar}(Π_{T, P(T+), Csub1→C1, …, Csubm→Cm}(T+) ⟕_{Jsub1′} Tsub1+ … ))
//
// The Move strategy avoids the Left strategy's duplication of the sublink
// Csub in the join condition Jsub: each sublink is evaluated exactly once in
// an inner projection, and both the join conditions (Jsubi′) and the
// selection condition (Ctar) refer to its precomputed boolean column Ci.
func (rw *rewriter) moveSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	sublinks := algebra.CollectSublinks(s.Cond)
	if err := requireUncorrelated(Move, sublinks); err != nil {
		return nil, nil, err
	}
	child, childProv, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}

	moved, ciNames := rw.moveSublinksIntoProjection(child, sublinks)
	plan := algebra.Op(moved)
	var subProvAll []ProvSource
	for i, sl := range sublinks {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(sl.Query)
		if err != nil {
			return nil, nil, err
		}
		cond := jsub(sl.Kind, algebra.Attr(ciNames[i]), cmpOrTrue(sl, resRef))
		plan = &algebra.LeftJoin{L: plan, R: wrapped, Cond: cond}
		subProvAll = append(subProvAll, subProv...)
	}

	ctar := replaceSublinks(s.Cond, sublinks, ciNames)
	sel := &algebra.Select{Child: plan, Cond: ctar}
	out := projectResult(sel, s.Schema(), childProv, subProvAll)
	return out, append(childProv, subProvAll...), nil
}

// moveProject is rule T2: the inner projection A′ passes the input through
// and computes every sublink once into a Ci column; the outer projection A″
// re-states A with sublinks replaced by their Ci columns, followed by the
// provenance attributes.
func (rw *rewriter) moveProject(p *algebra.Project) (algebra.Op, []ProvSource, error) {
	var sublinks []algebra.Sublink
	for _, c := range p.Cols {
		sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
	}
	if err := requireUncorrelated(Move, sublinks); err != nil {
		return nil, nil, err
	}
	child, childProv, err := rw.rewrite(p.Child)
	if err != nil {
		return nil, nil, err
	}

	moved, ciNames := rw.moveSublinksIntoProjection(child, sublinks)
	plan := algebra.Op(moved)
	var subProvAll []ProvSource
	for i, sl := range sublinks {
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(sl.Query)
		if err != nil {
			return nil, nil, err
		}
		cond := jsub(sl.Kind, algebra.Attr(ciNames[i]), cmpOrTrue(sl, resRef))
		plan = &algebra.LeftJoin{L: plan, R: wrapped, Cond: cond}
		subProvAll = append(subProvAll, subProv...)
	}

	cols := make([]algebra.ProjExpr, 0, len(p.Cols))
	for _, c := range p.Cols {
		cols = append(cols, algebra.ProjExpr{E: replaceSublinks(c.E, sublinks, ciNames), As: c.As, Qual: c.Qual})
	}
	cols = append(cols, provCols(childProv)...)
	cols = append(cols, provCols(subProvAll)...)
	out := &algebra.Project{Child: plan, Cols: cols, Distinct: p.Distinct}
	return out, append(childProv, subProvAll...), nil
}

// moveSublinksIntoProjection builds the inner projection of the Move rules:
// the rewritten input passes through unchanged, and each sublink is
// evaluated into a fresh boolean column Ci. The returned names align with
// the sublinks slice.
func (rw *rewriter) moveSublinksIntoProjection(child algebra.Op, sublinks []algebra.Sublink) (*algebra.Project, []string) {
	cols := make([]algebra.ProjExpr, 0, child.Schema().Len()+len(sublinks))
	for _, a := range child.Schema().Attrs {
		cols = append(cols, algebra.KeepAttr(a))
	}
	ciNames := make([]string, len(sublinks))
	for i, sl := range sublinks {
		ciNames[i] = rw.freshName("c")
		cols = append(cols, algebra.Col(sl, ciNames[i]))
	}
	return algebra.NewProject(child, cols...), ciNames
}

// replaceSublinks substitutes each occurrence of a collected sublink in e by
// a reference to its precomputed column, producing Ctar.
func replaceSublinks(e algebra.Expr, sublinks []algebra.Sublink, ciNames []string) algebra.Expr {
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		sl, ok := x.(algebra.Sublink)
		if !ok {
			return x
		}
		for i := range sublinks {
			if algebra.ExprEqual(sl, sublinks[i]) {
				return algebra.Attr(ciNames[i])
			}
		}
		return x
	})
}

package rewrite

import (
	"fmt"

	"perm/internal/algebra"
)

// genSelect is rule G1:
//
//	(σC(T))+ = σ_{C ∧ Csub1+ ∧ … ∧ Csubn+}(T+ × CrossBase(Tsub1) × … × CrossBase(Tsubn))
//
// The Gen strategy works for every sublink — correlated, nested, in any
// boolean context — because it never joins the sublink query directly;
// instead it pairs each input tuple with every possible provenance tuple
// (the CrossBase) and keeps a pair iff the simulated join condition Csub+
// certifies membership in the sublink's provenance.
func (rw *rewriter) genSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	child, prov, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := child
	conds := []algebra.Expr{s.Cond}
	for _, sl := range algebra.CollectSublinks(s.Cond) {
		cb, subProv, csubPlus, err := rw.genSublink(sl)
		if err != nil {
			return nil, nil, err
		}
		plan = &algebra.Cross{L: plan, R: cb}
		prov = append(prov, subProv...)
		conds = append(conds, csubPlus)
	}
	return &algebra.Select{Child: plan, Cond: algebra.Conj(conds...)}, prov, nil
}

// genProject is rule G2 in pushed-selection form:
//
//	(ΠA(T))+ = Π_{A, P(T+), P(Tsub…)}(σ_{Csub1+ ∧ …}(T+ × CrossBase(Tsub1) × …))
//
// The paper states G2 with the filter above the projection; evaluating it
// below (over the projection's input, where every correlated attribute of
// the sublinks still resolves) is equivalent — Csub+ references only input
// attributes and CrossBase attributes, never projection outputs — and works
// even when A projects the correlation attributes away.
func (rw *rewriter) genProject(p *algebra.Project) (algebra.Op, []ProvSource, error) {
	child, childProv, err := rw.rewrite(p.Child)
	if err != nil {
		return nil, nil, err
	}
	var sublinks []algebra.Sublink
	for _, c := range p.Cols {
		sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
	}
	plan := child
	var conds []algebra.Expr
	var subProvAll []ProvSource
	for _, sl := range sublinks {
		cb, subProv, csubPlus, err := rw.genSublink(sl)
		if err != nil {
			return nil, nil, err
		}
		plan = &algebra.Cross{L: plan, R: cb}
		subProvAll = append(subProvAll, subProv...)
		conds = append(conds, csubPlus)
	}
	filtered := algebra.Op(plan)
	if len(conds) > 0 {
		filtered = &algebra.Select{Child: plan, Cond: algebra.Conj(conds...)}
	}
	cols := append([]algebra.ProjExpr{}, p.Cols...)
	cols = append(cols, provCols(childProv)...)
	cols = append(cols, provCols(subProvAll)...)
	out := &algebra.Project{Child: filtered, Cols: cols, Distinct: p.Distinct}
	return out, append(childProv, subProvAll...), nil
}

// genSublink builds, for one sublink Csub with query Tsub:
//
//   - CrossBase(Tsub) = Π_{R1→P(R1)}(R1 ∪ null(R1)) × … × Π_{Rn→P(Rn)}(Rn ∪ null(Rn)),
//     the relation of all possible provenance tuples of the sublink;
//
//   - the provenance sources whose attributes are the CrossBase columns;
//
//   - the membership condition
//
//     Csub+ = EXISTS(σ_{Jsub ∧ P(Tsub+) =n Tsub′}(Π_{P(Tsub+)→Tsub′}(Tsub+)))
//     ∨ (¬EXISTS(σ_{Jsub}(Tsub+)) ∧ P(Tsub+) =n null)
//
// where Jsub encodes the influence role (reqtrue/reqfalse) via the actual
// sublink value Csub — the literal original sublink expression, re-evaluated
// inside the EXISTS — and C′sub = A op t over the current Tsub+ tuple.
//
// The second disjunct pairs a tuple with the all-NULL CrossBase row when no
// inner tuple plays an influence role. The paper states it as ¬EXISTS(Tsub)
// (an empty sublink result); filtering with Jsub generalizes that to the
// three-valued cases the differential fuzzer surfaced — a NULL test value,
// or an ANY/ALL over rows whose comparisons are all Unknown — where the
// sublink's value is Unknown, the tuple still reaches a projection's output
// (or passes a disjunctive selection through its other arm), and no inner
// tuple certifies or refutes the sublink. With Jsub ≡ true (EXISTS and
// scalar sublinks) the condition degenerates to the paper's form.
func (rw *rewriter) genSublink(sl algebra.Sublink) (cb algebra.Op, prov []ProvSource, csubPlus algebra.Expr, err error) {
	subPlus, subProv, err := rw.rewrite(sl.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(subProv) == 0 {
		return nil, nil, nil, fmt.Errorf("rewrite: sublink %s accesses no base relations", sl)
	}

	// CrossBase over the same base relations, named exactly as P(Tsub+).
	for _, ps := range subProv {
		alias := rw.freshName("cb_" + ps.Rel)
		scan := algebra.NewScan(ps.Rel, alias, ps.Base)
		nullExt := &algebra.SetOp{
			Kind: algebra.Union,
			Bag:  true,
			L:    scan,
			R:    &algebra.Values{Sch: scan.Schema().WithQual(alias), Rows: []algebra.Row{algebra.NullRow(ps.Base.Len())}},
		}
		cols := make([]algebra.ProjExpr, ps.Base.Len())
		for i, a := range scan.Schema().Attrs {
			cols[i] = algebra.Col(algebra.QAttr(a.Qual, a.Name), ps.Attrs[i].Name)
		}
		one := algebra.NewProject(nullExt, cols...)
		if cb == nil {
			cb = one
		} else {
			cb = &algebra.Cross{L: cb, R: one}
		}
	}

	// Inner query of the first EXISTS: Tsub+ with its data attributes
	// renamed fresh (so the sublink's Test expression cannot be shadowed)
	// and its provenance attributes renamed to the Tsub′ copies.
	origSch := sl.Query.Schema()
	innerCols := make([]algebra.ProjExpr, 0, origSch.Len())
	var resRef algebra.Expr
	for i, a := range origSch.Attrs {
		fresh := rw.freshName("res")
		innerCols = append(innerCols, algebra.Col(algebra.QAttr(a.Qual, a.Name), fresh))
		if i == 0 {
			resRef = algebra.Attr(fresh)
		}
	}
	var eqConds []algebra.Expr
	var nullConds []algebra.Expr
	for _, ps := range subProv {
		for _, a := range ps.Attrs {
			inner := a.Name + "_s"
			innerCols = append(innerCols, algebra.Col(algebra.Attr(a.Name), inner))
			// a.Name is absent from the renamed inner schema, so it
			// resolves to the CrossBase column of the enclosing scope.
			eqConds = append(eqConds, algebra.NullEq{L: algebra.Attr(a.Name), R: algebra.Attr(inner)})
			nullConds = append(nullConds, algebra.IsNull{E: algebra.Attr(a.Name)})
		}
	}
	inner := algebra.NewProject(subPlus, innerCols...)

	j := jsub(sl.Kind, sl, cmpOrTrue(sl, resRef))
	membership := algebra.Sublink{
		Kind:  algebra.ExistsSublink,
		Query: &algebra.Select{Child: inner, Cond: algebra.Conj(append([]algebra.Expr{j}, eqConds...)...)},
	}
	// For EXISTS and scalar sublinks Jsub is the constant true, so the
	// role-filtered probe reduces to the paper's ¬EXISTS(Tsub) — probe the
	// original (cheaper) sublink query there instead of the rewritten plan.
	emptyProbe := algebra.Op(sl.Query)
	if sl.Kind == algebra.AnySublink || sl.Kind == algebra.AllSublink {
		emptyProbe = &algebra.Select{Child: inner, Cond: j}
	}
	emptyCase := algebra.Conj(append([]algebra.Expr{
		algebra.Not{E: algebra.Sublink{Kind: algebra.ExistsSublink, Query: emptyProbe}},
	}, nullConds...)...)

	return cb, subProv, algebra.Or{L: membership, R: emptyCase}, nil
}

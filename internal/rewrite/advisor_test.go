package rewrite

import (
	"testing"

	"perm/internal/algebra"
	"perm/internal/types"
)

// fixedStats returns the same cardinality for every relation unless
// overridden.
type fixedStats map[string]int

func (f fixedStats) Card(rel string) int {
	if c, ok := f[rel]; ok {
		return c
	}
	return 100
}

func TestAdviseRanksQ1(t *testing.T) {
	c := figure3DB()
	q := figure3Q1(t, c)
	advice := Advise(q, fixedStats{"r": 1000, "s": 1000})
	if len(advice) != 5 {
		t.Fatalf("advice entries = %d", len(advice))
	}
	// Every strategy applies to q1; Unn (hash join) must rank first and
	// Gen (CrossBase) last among the applicable ones.
	for _, a := range advice {
		if !a.Applicable {
			t.Fatalf("%v should be applicable to q1: %s", a.Strategy, a.Reason)
		}
	}
	if first := advice[0].Strategy; first != Unn && first != UnnX {
		t.Errorf("cheapest = %v, want Unn/UnnX\n%+v", first, advice)
	}
	if last := advice[len(advice)-1].Strategy; last != Gen {
		t.Errorf("most expensive applicable = %v, want Gen\n%+v", last, advice)
	}
}

func TestAdviseCorrelatedOnlyGen(t *testing.T) {
	c := figure3DB()
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}
	q := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
	}
	advice := Advise(q, fixedStats{})
	applicable := 0
	for _, a := range advice {
		if a.Applicable {
			applicable++
			if a.Strategy != Gen {
				t.Errorf("%v should not apply to a correlated sublink", a.Strategy)
			}
		}
	}
	if applicable != 1 {
		t.Errorf("%d applicable strategies, want 1 (Gen)", applicable)
	}
	best, err := Best(q, fixedStats{})
	if err != nil || best != Gen {
		t.Errorf("Best = %v, %v", best, err)
	}
}

func TestAdviseGenGrowsWithSublinkBase(t *testing.T) {
	c := figure3DB()
	q := figure3Q1(t, c)
	small := Advise(q, fixedStats{"s": 10, "r": 100})
	big := Advise(q, fixedStats{"s": 10000, "r": 100})
	genCost := func(advice []Advice) float64 {
		for _, a := range advice {
			if a.Strategy == Gen {
				return a.Cost
			}
		}
		t.Fatal("no Gen advice")
		return 0
	}
	gs, gb := genCost(small), genCost(big)
	if gb < gs*100 {
		t.Errorf("Gen cost should grow superlinearly with the sublink base relation: %.3g → %.3g", gs, gb)
	}
}

func TestAdviseNoSublinks(t *testing.T) {
	c := figure3DB()
	q := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(1)}}
	advice := Advise(q, fixedStats{})
	for _, a := range advice {
		if !a.Applicable {
			t.Errorf("%v should apply trivially to a sublink-free query", a.Strategy)
		}
	}
	// All strategies cost the same (no sublinks to differ on).
	for _, a := range advice[1:] {
		if a.Cost != advice[0].Cost {
			t.Errorf("sublink-free costs differ: %+v", advice)
		}
	}
}

package rewrite

import (
	"errors"
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/types"
)

// unnxShapes enumerates the sublink shapes the extended unnesting strategy
// claims to cover; each is compared against the Gen strategy on randomized
// databases.
func unnxShapes() []struct {
	name string
	mk   func(t *testing.T, c *catalog.Catalog) algebra.Op
} {
	subC := func(t *testing.T, c *catalog.Catalog) algebra.Op {
		return algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	}
	return []struct {
		name string
		mk   func(t *testing.T, c *catalog.Catalog) algebra.Op
	}{
		{"X2-ltAny", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: subC(t, c)}}
		}},
		{"X3-notLeAll", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Not{E: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLe, Test: algebra.Attr("a"), Query: subC(t, c)}}}
		}},
		{"X4-geAll", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGe, Test: algebra.Attr("a"), Query: subC(t, c)}}
		}},
		{"X4-notExists", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			sub := &algebra.Select{Child: scan(t, c, "s"),
				Cond: algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("c"), R: algebra.IntConst(3)}}
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Not{E: algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}}}
		}},
		{"X4-notEqAny", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Not{E: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: subC(t, c)}}}
		}},
		{"X4-scalarCmp", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			minQ := &algebra.Aggregate{Child: scan(t, c, "s"),
				Aggs: []algebra.AggExpr{{Fn: algebra.AggMin, Arg: algebra.Attr("c"), As: "m"}}}
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("a"),
					R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: minQ}}}
		}},
		{"mixed-conjunction", func(t *testing.T, c *catalog.Catalog) algebra.Op {
			return &algebra.Select{Child: scan(t, c, "r"),
				Cond: algebra.And{
					L: algebra.Cmp{Op: types.CmpGe, L: algebra.Attr("b"), R: algebra.IntConst(1)},
					R: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: subC(t, c)},
				}}
		}},
	}
}

// TestUnnXAgreesWithGen is the correctness backbone of the extension: on
// every covered shape and several random databases, UnnX and Gen must
// compute identical provenance bags.
func TestUnnXAgreesWithGen(t *testing.T) {
	for _, shape := range unnxShapes() {
		for seed := int64(1); seed <= 5; seed++ {
			c := randomDB(seed)
			q := shape.mk(t, c)
			ref, err := Rewrite(q, Gen)
			if err != nil {
				t.Fatalf("%s/seed%d Gen: %v", shape.name, seed, err)
			}
			refOut := run(t, c, ref.Plan)
			res, err := Rewrite(q, UnnX)
			if err != nil {
				t.Fatalf("%s/seed%d UnnX: %v", shape.name, seed, err)
			}
			got := run(t, c, res.Plan)
			if !got.Equal(refOut.WithSchema(got.Schema)) {
				t.Errorf("%s/seed%d: UnnX disagrees with Gen\nGen:  %s\nUnnX: %s\nplan:\n%s",
					shape.name, seed, refOut, got, algebra.Indent(res.Plan))
			}
		}
	}
}

// correlatedExists builds σ_{EXISTS(Π_c(σ_{c = outer.b [∧ extra]}(s)))}(r)
// — the canonical equality-correlated EXISTS pattern rule X5 decorrelates.
func correlatedExists(t *testing.T, c *catalog.Catalog, extra algebra.Expr) algebra.Op {
	t.Helper()
	cond := algebra.Expr(algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")})
	if extra != nil {
		cond = algebra.And{L: cond, R: extra}
	}
	sub := algebra.NewProject(
		&algebra.Select{Child: scan(t, c, "s"), Cond: cond},
		algebra.KeepCol("c"),
	)
	return &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub},
	}
}

// TestUnnXDecorrelatesExists: rule X5 must rewrite the equality-correlated
// EXISTS pattern and agree with Gen on randomized databases.
func TestUnnXDecorrelatesExists(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := randomDB(seed)
		for _, extra := range []algebra.Expr{
			nil,
			algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("d"), R: algebra.IntConst(1)},
		} {
			q := correlatedExists(t, c, extra)
			ref, err := Rewrite(q, Gen)
			if err != nil {
				t.Fatalf("seed %d Gen: %v", seed, err)
			}
			res, err := Rewrite(q, UnnX)
			if err != nil {
				t.Fatalf("seed %d UnnX should decorrelate correlated EXISTS: %v", seed, err)
			}
			refOut := run(t, c, ref.Plan)
			got := run(t, c, res.Plan)
			if !got.Equal(refOut.WithSchema(got.Schema)) {
				t.Errorf("seed %d: X5 disagrees with Gen\nGen:  %s\nUnnX: %s\nplan:\n%s",
					seed, refOut, got, algebra.Indent(res.Plan))
			}
		}
	}
}

// TestUnnXDecorrelationRefusalsArePrecise: genuinely inapplicable
// correlated sublinks must name the exact obstacle (Advise surfaces these
// reasons verbatim).
func TestUnnXDecorrelationRefusalsArePrecise(t *testing.T) {
	c := figure3DB()
	// Inequality correlation: no equality conjunct to lift.
	ineq := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.ExistsSublink,
			Query: &algebra.Select{Child: scan(t, c, "s"),
				Cond: algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("c"), R: algebra.Attr("b")}}},
	}
	_, err := Rewrite(ineq, UnnX)
	if !errors.Is(err, ErrNotApplicable) || !strings.Contains(err.Error(), "no top-level equality conjunct") {
		t.Errorf("inequality correlation: %v", err)
	}
	// Correlated ANY: X5 covers EXISTS only.
	anyCorr := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
			Query: &algebra.Select{Child: scan(t, c, "s"),
				Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")}}},
	}
	_, err = Rewrite(anyCorr, UnnX)
	if !errors.Is(err, ErrNotApplicable) || !strings.Contains(err.Error(), "decorrelates only EXISTS") {
		t.Errorf("correlated ANY: %v", err)
	}
	// Correlation hidden under a disjunction inside the sublink: lifting
	// must leave it alone and report the residual free variables.
	buried := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.ExistsSublink,
			Query: &algebra.Select{Child: scan(t, c, "s"),
				Cond: algebra.Or{
					L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
					R: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("d"), R: algebra.IntConst(3)},
				}}},
	}
	_, err = Rewrite(buried, UnnX)
	if !errors.Is(err, ErrNotApplicable) || !strings.Contains(err.Error(), "equality conjunct") {
		t.Errorf("buried correlation: %v", err)
	}
}

func TestUnnXNotApplicableCases(t *testing.T) {
	c := figure3DB()
	// Correlated sublink.
	correlated := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
			Query: &algebra.Select{Child: scan(t, c, "s"),
				Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")}}},
	}
	if _, err := Rewrite(correlated, UnnX); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("correlated: %v", err)
	}
	// Quantified sublink buried in a disjunction.
	buried := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Or{
			L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(1)},
			R: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
				Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))},
		},
	}
	if _, err := Rewrite(buried, UnnX); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("buried quantifier: %v", err)
	}
	// Projection sublinks.
	proj := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Sublink{Kind: algebra.ExistsSublink, Query: scan(t, c, "s")}, "e"))
	if _, err := Rewrite(proj, UnnX); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("projection: %v", err)
	}
}

// TestUnnXCoversUnn: everything Unn handles, UnnX handles identically.
func TestUnnXCoversUnn(t *testing.T) {
	c := figure3DB()
	q := figure3Q1(t, c)
	unnRes, err := Rewrite(q, Unn)
	if err != nil {
		t.Fatal(err)
	}
	xRes, err := Rewrite(q, UnnX)
	if err != nil {
		t.Fatal(err)
	}
	a := run(t, c, unnRes.Plan)
	b := run(t, c, xRes.Plan)
	if !a.Equal(b.WithSchema(a.Schema)) {
		t.Errorf("UnnX differs from Unn on q1:\n%s\nvs\n%s", a, b)
	}
}

func TestUnnXApplicablePredicate(t *testing.T) {
	c := figure3DB()
	q2Cond := algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"),
		Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))}
	if !unnxApplicable(q2Cond) {
		t.Error("ALL sublink should be UnnX-applicable")
	}
	if unnApplicable(q2Cond) {
		t.Error("ALL sublink must not be Unn-applicable (paper fidelity)")
	}
}

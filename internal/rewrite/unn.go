package rewrite

import (
	"errors"
	"fmt"

	"perm/internal/algebra"
	"perm/internal/types"
)

// unnSelect implements the Unn strategy (rules U1 and U2): selected sublink
// patterns are unnested into plain joins, for which the standard provenance
// rewrites are very efficient.
//
//	U1:  (σ_{EXISTS Tsub}(T))+       = T+ × Tsub+
//	U2:  (σ_{x = ANY (Tsub)}(T))+    = T+ ⋈_{x = t} Tsub+
//
// The selection condition is decomposed into conjuncts; sublink-free
// conjuncts stay in a residual selection (this is what makes Unn applicable
// to the paper's synthetic query q1 = σ_{range ∧ a = ANY(σ_{range2}(R2))}(R1)).
// Any other sublink shape — ALL, non-equality ANY, negated EXISTS, correlated
// queries, sublinks nested in larger expressions — is not applicable.
func (rw *rewriter) unnSelect(s *algebra.Select) (algebra.Op, []ProvSource, error) {
	conjuncts := flattenAnd(s.Cond)
	child, childProv, err := rw.rewrite(s.Child)
	if err != nil {
		return nil, nil, err
	}
	plan := algebra.Op(child)
	var residual []algebra.Expr
	var subProvAll []ProvSource
	for _, conj := range conjuncts {
		if !algebra.HasSublink(conj) {
			residual = append(residual, conj)
			continue
		}
		sl, ok := conj.(algebra.Sublink)
		if !ok {
			return nil, nil, fmt.Errorf("%w: Unn requires a bare sublink conjunct, got %s", ErrNotApplicable, conj)
		}
		if err := requireUncorrelated(Unn, []algebra.Sublink{sl}); err != nil {
			return nil, nil, err
		}
		wrapped, resRef, subProv, err := rw.wrapSublinkQuery(sl.Query)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case sl.Kind == algebra.ExistsSublink:
			// U1: the provenance of a satisfied EXISTS is all of Tsub; an
			// empty Tsub empties the cross product, dropping the tuples the
			// selection would have dropped.
			plan = &algebra.Cross{L: plan, R: wrapped}
		case sl.Kind == algebra.AnySublink && sl.Op == types.CmpEq:
			// U2: an equality ANY is always reqtrue for result tuples, so
			// its provenance Tsub^true is exactly the equi-join partners.
			plan = &algebra.Join{L: plan, R: wrapped, Cond: algebra.Cmp{Op: types.CmpEq, L: sl.Test, R: resRef}}
		default:
			return nil, nil, fmt.Errorf("%w: Unn has no rule for %s sublinks", ErrNotApplicable, sl.Kind)
		}
		subProvAll = append(subProvAll, subProv...)
	}
	var filtered algebra.Op = plan
	if len(residual) > 0 {
		filtered = &algebra.Select{Child: plan, Cond: algebra.Conj(residual...)}
	}
	out := projectResult(filtered, s.Schema(), childProv, subProvAll)
	return out, append(childProv, subProvAll...), nil
}

// unnApplicable reports whether unnSelect would succeed on the condition,
// without building anything. Used by the Auto strategy.
func unnApplicable(cond algebra.Expr) bool {
	for _, conj := range flattenAnd(cond) {
		if !algebra.HasSublink(conj) {
			continue
		}
		sl, ok := conj.(algebra.Sublink)
		if !ok {
			return false
		}
		if algebra.IsCorrelated(sl.Query) {
			return false
		}
		if sl.Kind != algebra.ExistsSublink && !(sl.Kind == algebra.AnySublink && sl.Op == types.CmpEq) {
			return false
		}
		// Nested sublinks inside Tsub must themselves be rewritable; the
		// recursive rewrite checks that, so only the top shape matters here.
	}
	return true
}

// flattenAnd splits a condition into its top-level conjuncts.
func flattenAnd(e algebra.Expr) []algebra.Expr {
	if a, ok := e.(algebra.And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []algebra.Expr{e}
}

// autoSelect picks the cheapest applicable strategy for one selection:
// Unn when its patterns match, then the extended unnesting UnnX (which
// additionally covers ALL, negated and scalar shapes and decorrelates
// equality-correlated EXISTS via rule X5), then Move for uncorrelated
// sublinks, then Gen (which always applies). This mirrors how the paper
// positions the strategies — specialized ≫ outer-join ≫ general — with the
// reproduction's extension slotted between.
func (rw *rewriter) autoSelect(s *algebra.Select) (algebra.Op, []ProvSource, string, error) {
	if unnApplicable(s.Cond) {
		plus, prov, err := rw.unnSelect(s)
		return plus, prov, "U/select", err
	}
	if unnxApplicable(s.Cond) {
		out, prov, err := rw.unnxSelect(s)
		if err == nil {
			return out, prov, "X/select", nil
		}
		// unnxApplicable is a structural pre-check; the rewrite proper may
		// still refuse (e.g. a correlation escaping to a higher scope).
		// Fall through to the general strategies in that case.
		if !errors.Is(err, ErrNotApplicable) {
			return nil, nil, "", err
		}
	}
	if allUncorrelated(algebra.CollectSublinks(s.Cond)) {
		plus, prov, err := rw.moveSelect(s)
		return plus, prov, "T1/select", err
	}
	plus, prov, err := rw.genSelect(s)
	return plus, prov, "G1/select", err
}

// autoProject picks Move for uncorrelated projection sublinks and Gen
// otherwise (Unn has no projection rules).
func (rw *rewriter) autoProject(p *algebra.Project) (algebra.Op, []ProvSource, string, error) {
	var sublinks []algebra.Sublink
	for _, c := range p.Cols {
		sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
	}
	if allUncorrelated(sublinks) {
		plus, prov, err := rw.moveProject(p)
		return plus, prov, "T2/project", err
	}
	plus, prov, err := rw.genProject(p)
	return plus, prov, "G2/project", err
}

func allUncorrelated(sublinks []algebra.Sublink) bool {
	for _, sl := range sublinks {
		if algebra.IsCorrelated(sl.Query) {
			return false
		}
	}
	return true
}

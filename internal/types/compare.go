package types

import "fmt"

// TriBool is SQL three-valued logic: comparisons over NULL yield Unknown,
// and a WHERE clause keeps a tuple only when its condition is True.
type TriBool uint8

// The three truth values.
const (
	False TriBool = iota
	True
	Unknown
)

// String implements fmt.Stringer.
func (t TriBool) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "unknown"
	}
}

// TriOf lifts a Go bool into TriBool.
func TriOf(b bool) TriBool {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t TriBool) And(o TriBool) TriBool {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is three-valued disjunction.
func (t TriBool) Or(o TriBool) TriBool {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not is three-valued negation.
func (t TriBool) Not() TriBool {
	switch t {
	case False:
		return True
	case True:
		return False
	default:
		return Unknown
	}
}

// CmpOp is a comparison operator appearing in conditions and as the "op" of
// ANY/ALL sublinks.
type CmpOp uint8

// The comparison operators of the algebra.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (¬(a op b) ⇔ a op.Negate() b for
// non-NULL operands). Used by the rewriter to express ¬Csub′.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	default:
		panic("types: Negate on unknown CmpOp")
	}
}

// Compare orders two non-NULL values: -1, 0 or +1. Numeric values compare
// numerically across int/float; strings and booleans compare within their
// kind. ok is false when either side is NULL or the kinds are incomparable.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			ai, bi := a.i, b.i
			switch {
			case ai < bi:
				return -1, true
			case ai > bi:
				return 1, true
			default:
				return 0, true
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		default:
			return 0, true
		}
	case KindBool:
		ai, bi := b2i(a.b), b2i(b.b)
		return ai - bi, true
	default:
		return 0, false
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Apply evaluates a op b under three-valued logic: Unknown when either side
// is NULL or the values are incomparable.
func (op CmpOp) Apply(a, b Value) TriBool {
	cmp, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	switch op {
	case CmpEq:
		return TriOf(cmp == 0)
	case CmpNe:
		return TriOf(cmp != 0)
	case CmpLt:
		return TriOf(cmp < 0)
	case CmpLe:
		return TriOf(cmp <= 0)
	case CmpGt:
		return TriOf(cmp > 0)
	case CmpGe:
		return TriOf(cmp >= 0)
	default:
		return Unknown
	}
}

// NullEq is the paper's =n operator: a =n b ⇔ a = b ∨ (a IS NULL ∧ b IS NULL).
// Unlike Apply(CmpEq, …) it is two-valued; the Gen strategy relies on it to
// join CrossBase tuples against rewritten sublink output that may be NULL.
func NullEq(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	cmp, ok := Compare(a, b)
	return ok && cmp == 0
}

package types

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatalf("zero Value should be NULL, got kind %v", v.Kind())
	}
	if got := v.String(); got != "NULL" {
		t.Fatalf("NULL renders as %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int roundtrip: %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float roundtrip: %g", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str roundtrip: %q", got)
	}
	if !NewBool(true).Bool() {
		t.Errorf("Bool roundtrip failed")
	}
	if NewInt(3).Float() != 3.0 {
		t.Errorf("Int should widen to float")
	}
	if NewFloat(3.7).Int() != 3 {
		t.Errorf("Float should truncate to int")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Str() on an int should panic")
		}
	}()
	_ = NewInt(1).Str()
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "boolean", KindInt: "integer",
		KindFloat: "float", KindString: "string",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	cmp, ok := Compare(NewInt(2), NewFloat(2.0))
	if !ok || cmp != 0 {
		t.Errorf("2 = 2.0 expected, got cmp=%d ok=%v", cmp, ok)
	}
	cmp, ok = Compare(NewFloat(1.5), NewInt(2))
	if !ok || cmp != -1 {
		t.Errorf("1.5 < 2 expected, got cmp=%d ok=%v", cmp, ok)
	}
}

func TestCompareNullAndMismatch(t *testing.T) {
	if _, ok := Compare(Null(), NewInt(1)); ok {
		t.Error("NULL should be incomparable")
	}
	if _, ok := Compare(NewString("a"), NewInt(1)); ok {
		t.Error("string vs int should be incomparable")
	}
	if cmp, ok := Compare(NewBool(false), NewBool(true)); !ok || cmp >= 0 {
		t.Errorf("false < true expected, got %d %v", cmp, ok)
	}
}

func TestCmpOpApplyThreeValued(t *testing.T) {
	if got := CmpEq.Apply(NewInt(1), Null()); got != Unknown {
		t.Errorf("1 = NULL should be Unknown, got %v", got)
	}
	if got := CmpLt.Apply(NewInt(1), NewInt(2)); got != True {
		t.Errorf("1 < 2 should be True, got %v", got)
	}
	if got := CmpGe.Apply(NewString("b"), NewString("c")); got != False {
		t.Errorf("b >= c should be False, got %v", got)
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	vals := []Value{NewInt(1), NewInt(2), NewInt(3)}
	for _, op := range ops {
		neg := op.Negate()
		for _, a := range vals {
			for _, b := range vals {
				if op.Apply(a, b) == neg.Apply(a, b) {
					t.Errorf("%s and %s agree on (%v,%v)", op, neg, a, b)
				}
			}
		}
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %s is %s", op, op.Negate().Negate())
		}
	}
}

func TestTriBoolTables(t *testing.T) {
	vals := []TriBool{False, True, Unknown}
	// Kleene logic truth tables.
	wantAnd := [3][3]TriBool{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	wantOr := [3][3]TriBool{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != wantAnd[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, wantAnd[i][j])
			}
			if got := a.Or(b); got != wantOr[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, wantOr[i][j])
			}
		}
	}
	if False.Not() != True || True.Not() != False || Unknown.Not() != Unknown {
		t.Error("three-valued NOT broken")
	}
}

func TestNullEq(t *testing.T) {
	if !NullEq(Null(), Null()) {
		t.Error("NULL =n NULL must hold")
	}
	if NullEq(Null(), NewInt(0)) {
		t.Error("NULL =n 0 must not hold")
	}
	if !NullEq(NewInt(5), NewFloat(5)) {
		t.Error("5 =n 5.0 must hold")
	}
	if NullEq(NewString("a"), NewString("b")) {
		t.Error("a =n b must not hold")
	}
}

func TestArithNullPropagationAndPromotion(t *testing.T) {
	v, err := OpAdd.Apply(Null(), NewInt(1))
	if err != nil || !v.IsNull() {
		t.Errorf("NULL + 1 = %v, %v", v, err)
	}
	v, err = OpMul.Apply(NewInt(6), NewInt(7))
	if err != nil || v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("6*7 = %v, %v", v, err)
	}
	v, err = OpAdd.Apply(NewInt(1), NewFloat(0.5))
	if err != nil || v.Kind() != KindFloat || v.Float() != 1.5 {
		t.Errorf("1 + 0.5 = %v, %v", v, err)
	}
	v, err = OpDiv.Apply(NewInt(7), NewInt(2))
	if err != nil || v.Int() != 3 {
		t.Errorf("7/2 = %v, %v (integer division expected)", v, err)
	}
	if _, err = OpDiv.Apply(NewInt(1), NewInt(0)); !errors.Is(err, ErrDivisionByZero) {
		t.Errorf("1/0 should be a division-by-zero error, got %v", err)
	}
	if _, err = OpAdd.Apply(NewString("x"), NewInt(1)); err == nil {
		t.Error("string + int should error")
	}
}

func TestAppendKeySelfDelimiting(t *testing.T) {
	// Distinct values must produce distinct keys; NullEq-equal values the
	// same key.
	vals := []Value{
		Null(), NewBool(true), NewBool(false), NewInt(0), NewInt(1),
		NewInt(-1), NewFloat(0.5), NewString(""), NewString("a"),
		NewString("ab"), NewString("b"),
	}
	for i, a := range vals {
		for j, b := range vals {
			ka := a.AppendKey(nil)
			kb := b.AppendKey(nil)
			if (i == j) != bytes.Equal(ka, kb) {
				t.Errorf("key collision/mismatch between %v and %v", a, b)
			}
		}
	}
	// 1 and 1.0 must share a key, matching numeric comparison.
	if !bytes.Equal(NewInt(1).AppendKey(nil), NewFloat(1).AppendKey(nil)) {
		t.Error("1 and 1.0 should have the same key")
	}
}

func TestAppendKeyConcatenationUnambiguous(t *testing.T) {
	// ("a","bc") vs ("ab","c"): concatenated keys must differ because the
	// encoding is self-delimiting.
	k1 := NewString("a").AppendKey(nil)
	k1 = NewString("bc").AppendKey(k1)
	k2 := NewString("ab").AppendKey(nil)
	k2 = NewString("c").AppendKey(k2)
	if bytes.Equal(k1, k2) {
		t.Error("tuple key encoding is ambiguous under concatenation")
	}
}

func TestValueStringForms(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"true":  NewBool(true),
		"false": NewBool(false),
		"-7":    NewInt(-7),
		"2.5":   NewFloat(2.5),
		"hi":    NewString("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestTriBoolAndOpStrings(t *testing.T) {
	if False.String() != "false" || True.String() != "true" || Unknown.String() != "unknown" {
		t.Error("TriBool names wrong")
	}
	ops := map[CmpOp]string{CmpEq: "=", CmpNe: "<>", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp %d = %q want %q", op, op.String(), want)
		}
	}
	ariths := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%"}
	for op, want := range ariths {
		if op.String() != want {
			t.Errorf("ArithOp %d = %q want %q", op, op.String(), want)
		}
	}
}

func TestArithModAndErrors(t *testing.T) {
	v, err := OpMod.Apply(NewInt(7), NewInt(3))
	if err != nil || v.Int() != 1 {
		t.Errorf("7%%3 = %v, %v", v, err)
	}
	if _, err = OpMod.Apply(NewInt(7), NewInt(0)); !errors.Is(err, ErrDivisionByZero) {
		t.Errorf("mod by zero should be a division-by-zero error, got %v", err)
	}
	if _, err := OpMod.Apply(NewFloat(1.5), NewFloat(2)); err == nil {
		t.Error("float %% should error")
	}
	v, err = OpSub.Apply(NewFloat(1.5), NewInt(1))
	if err != nil || v.Float() != 0.5 {
		t.Errorf("1.5-1 = %v, %v", v, err)
	}
	if _, err = OpDiv.Apply(NewFloat(1), NewFloat(0)); !errors.Is(err, ErrDivisionByZero) {
		t.Errorf("float div by zero should be a division-by-zero error, got %v", err)
	}
}

func TestCmpOpApplyAllOps(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	if CmpNe.Apply(a, b) != True || CmpLe.Apply(a, a) != True ||
		CmpGt.Apply(b, a) != True || CmpGe.Apply(a, b) != False {
		t.Error("comparison table wrong")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, ok1 := Compare(x, y)
		c2, ok2 := Compare(y, x)
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatIntKeyCoherence(t *testing.T) {
	f := func(x int32) bool {
		a, b := NewInt(int64(x)), NewFloat(float64(x))
		return bytes.Equal(a.AppendKey(nil), b.AppendKey(nil)) && NullEq(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Non-integral floats keep a distinct key space.
	if bytes.Equal(NewFloat(1.5).AppendKey(nil), NewInt(1).AppendKey(nil)) {
		t.Error("1.5 must not collide with 1")
	}
	if bytes.Equal(NewFloat(math.Inf(1)).AppendKey(nil), NewFloat(math.Inf(-1)).AppendKey(nil)) {
		t.Error("+Inf and -Inf must not collide")
	}
}

package types

import (
	"errors"
	"fmt"
)

// ArithOp is a binary arithmetic operator usable in projection and selection
// expressions (the paper's "expressions over attributes, constants and
// functions").
type ArithOp uint8

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("arith(%d)", uint8(op))
	}
}

// ErrDivisionByZero is returned for x/0 and x%0, matching PostgreSQL (which
// raises "division by zero" rather than producing NULL).
var ErrDivisionByZero = errors.New("types: division by zero")

// Apply evaluates a op b with SQL NULL propagation: any NULL operand yields
// NULL. Integer pairs stay integral; mixed pairs promote to float. Division
// or modulus by zero is an error (ErrDivisionByZero), as in PostgreSQL.
func (op ArithOp) Apply(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("types: %s requires numeric operands, got %s and %s", op, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case OpAdd:
			return NewInt(x + y), nil
		case OpSub:
			return NewInt(x - y), nil
		case OpMul:
			return NewInt(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null(), ErrDivisionByZero
			}
			// Integer division over integers, matching SQL.
			return NewInt(x / y), nil
		case OpMod:
			if y == 0 {
				return Null(), ErrDivisionByZero
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), ErrDivisionByZero
		}
		return NewFloat(x / y), nil
	case OpMod:
		return Null(), fmt.Errorf("types: %% requires integer operands")
	}
	return Null(), fmt.Errorf("types: unknown arithmetic operator %d", op)
}

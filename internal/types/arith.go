package types

import "fmt"

// ArithOp is a binary arithmetic operator usable in projection and selection
// expressions (the paper's "expressions over attributes, constants and
// functions").
type ArithOp uint8

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("arith(%d)", uint8(op))
	}
}

// Apply evaluates a op b with SQL NULL propagation: any NULL operand yields
// NULL. Integer pairs stay integral (except division by zero, which yields
// NULL rather than an error, simplifying range predicates over generated
// data); mixed pairs promote to float.
func (op ArithOp) Apply(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("types: %s requires numeric operands, got %s and %s", op, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case OpAdd:
			return NewInt(x + y), nil
		case OpSub:
			return NewInt(x - y), nil
		case OpMul:
			return NewInt(x * y), nil
		case OpDiv:
			if y == 0 {
				return Null(), nil
			}
			// Integer division over integers, matching SQL.
			return NewInt(x / y), nil
		case OpMod:
			if y == 0 {
				return Null(), nil
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), nil
		}
		return NewFloat(x / y), nil
	case OpMod:
		return Null(), fmt.Errorf("types: %% requires integer operands")
	}
	return Null(), fmt.Errorf("types: unknown arithmetic operator %d", op)
}

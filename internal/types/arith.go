package types

import (
	"errors"
	"fmt"
	"math"
)

// ArithOp is a binary arithmetic operator usable in projection and selection
// expressions (the paper's "expressions over attributes, constants and
// functions").
type ArithOp uint8

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return fmt.Sprintf("arith(%d)", uint8(op))
	}
}

// ErrDivisionByZero is returned for x/0 and x%0, matching PostgreSQL (which
// raises "division by zero" rather than producing NULL).
var ErrDivisionByZero = errors.New("types: division by zero")

// ErrNumericOutOfRange is returned when int64 arithmetic (including sum)
// overflows, matching PostgreSQL's "bigint out of range" error instead of
// silently wrapping around.
var ErrNumericOutOfRange = errors.New("types: bigint out of range")

// AddInt64 is checked int64 addition: it returns ErrNumericOutOfRange
// instead of wrapping. The sum aggregate accumulates through it.
func AddInt64(x, y int64) (int64, error) {
	z := x + y
	// Overflow iff the operands share a sign the result does not.
	if (x > 0 && y > 0 && z < 0) || (x < 0 && y < 0 && z >= 0) {
		return 0, ErrNumericOutOfRange
	}
	return z, nil
}

// SubInt64 is checked int64 subtraction.
func SubInt64(x, y int64) (int64, error) {
	z := x - y
	if (x >= 0 && y < 0 && z < 0) || (x < 0 && y > 0 && z >= 0) {
		return 0, ErrNumericOutOfRange
	}
	return z, nil
}

// MulInt64 is checked int64 multiplication.
func MulInt64(x, y int64) (int64, error) {
	if x == 0 || y == 0 {
		return 0, nil
	}
	z := x * y
	if z/y != x || (x == -1 && y == math.MinInt64) || (y == -1 && x == math.MinInt64) {
		return 0, ErrNumericOutOfRange
	}
	return z, nil
}

// Apply evaluates a op b with SQL NULL propagation: any NULL operand yields
// NULL. Integer pairs stay integral; mixed pairs promote to float. Division
// or modulus by zero is an error (ErrDivisionByZero), and int64 overflow is
// an error (ErrNumericOutOfRange), as in PostgreSQL.
func (op ArithOp) Apply(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null(), fmt.Errorf("types: %s requires numeric operands, got %s and %s", op, a.Kind(), b.Kind())
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case OpAdd:
			z, err := AddInt64(x, y)
			return NewInt(z), err
		case OpSub:
			z, err := SubInt64(x, y)
			return NewInt(z), err
		case OpMul:
			z, err := MulInt64(x, y)
			return NewInt(z), err
		case OpDiv:
			if y == 0 {
				return Null(), ErrDivisionByZero
			}
			if x == math.MinInt64 && y == -1 {
				return Null(), ErrNumericOutOfRange
			}
			// Integer division over integers, matching SQL.
			return NewInt(x / y), nil
		case OpMod:
			if y == 0 {
				return Null(), ErrDivisionByZero
			}
			return NewInt(x % y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null(), ErrDivisionByZero
		}
		return NewFloat(x / y), nil
	case OpMod:
		return Null(), fmt.Errorf("types: %% requires integer operands")
	}
	return Null(), fmt.Errorf("types: unknown arithmetic operator %d", op)
}

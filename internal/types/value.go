// Package types implements the value domain of the Perm reproduction:
// SQL-style scalar values (integers, floats, strings, booleans and NULL)
// together with three-valued comparison logic and the null-aware equality
// operator =n used by the Gen rewrite strategy of Glavic & Alonso
// (EDBT 2009), where a =n b ⇔ a = b ∨ (a IS NULL ∧ b IS NULL).
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that the zero
// Value is SQL NULL, which is the only sensible default for a database value.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL. Values are small
// (no pointers except the string header) and are passed by value throughout
// the engine.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{kind: KindBool, b: b} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the runtime kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if the value is not a boolean;
// callers must check Kind first (the evaluator always does).
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("types: Bool() on " + v.kind.String())
	}
	return v.b
}

// Int returns the integer payload, converting from float if necessary.
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		panic("types: Int() on " + v.kind.String())
	}
}

// Float returns the numeric payload as float64, converting from int if
// necessary.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("types: Float() on " + v.kind.String())
	}
}

// Str returns the string payload. It panics on non-strings.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("types: Str() on " + v.kind.String())
	}
	return v.s
}

// IsNumeric reports whether the value is an integer or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value the way the CLI and test fixtures print tuples.
// NULL prints as "NULL" to match SQL conventions.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// AppendKey appends a self-delimiting encoding of the value to buf. Two
// values encode to the same bytes iff NullEq considers them equal, which is
// exactly the grouping and duplicate-elimination equivalence the engine
// needs (SQL GROUP BY and DISTINCT treat NULLs as equal, matching =n).
func (v Value) AppendKey(buf []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(buf, 'n')
	case KindBool:
		if v.b {
			return append(buf, 'b', 1)
		}
		return append(buf, 'b', 0)
	case KindInt:
		buf = append(buf, 'i')
		return appendUint64(buf, uint64(v.i))
	case KindFloat:
		// Integral floats encode as their integer counterpart so that
		// 1 and 1.0 group together, matching Compare's numeric coercion.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) &&
			v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			buf = append(buf, 'i')
			return appendUint64(buf, uint64(int64(v.f)))
		}
		buf = append(buf, 'f')
		return appendUint64(buf, math.Float64bits(v.f))
	case KindString:
		buf = append(buf, 's')
		buf = appendUint64(buf, uint64(len(v.s)))
		return append(buf, v.s...)
	default:
		panic("types: AppendKey on unknown kind")
	}
}

func appendUint64(buf []byte, u uint64) []byte {
	return append(buf,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file implements the string and conversion operations of the SQL
// surface: || concatenation, LIKE pattern matching, the scalar functions
// upper/lower/length/substr, and CAST. All of them propagate SQL NULL and
// report PostgreSQL-style errors for invalid inputs; static kind errors are
// raised earlier, by the semantic analyzer in internal/sql.

// Concat is the SQL || operator: NULL-propagating string concatenation.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.kind != KindString || b.kind != KindString {
		return Null(), fmt.Errorf("types: operator does not exist: %s || %s", a.Kind(), b.Kind())
	}
	return NewString(a.s + b.s), nil
}

// Like evaluates "s LIKE pattern" under three-valued logic: NULL operands
// yield Unknown. The pattern language is SQL's: '%' matches any (possibly
// empty) substring, '_' matches exactly one character, everything else
// matches itself.
func Like(s, pattern Value) (TriBool, error) {
	if s.IsNull() || pattern.IsNull() {
		return Unknown, nil
	}
	if s.kind != KindString || pattern.kind != KindString {
		return Unknown, fmt.Errorf("types: operator does not exist: %s LIKE %s", s.Kind(), pattern.Kind())
	}
	return TriOf(likeMatch([]rune(s.s), []rune(pattern.s))), nil
}

// likeMatch matches the whole string against the whole pattern with greedy
// '%' handling and a single backtrack point per '%' — O(len(s)·len(pat)),
// never the exponential blowup of naive recursion on patterns with many
// wildcards.
func likeMatch(s, pat []rune) bool {
	si, pi := 0, 0
	star, anchor := -1, 0 // last '%' position in pat, and the s index it is matched at
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, anchor = pi, si
			pi++
		case star >= 0:
			// Mismatch after a '%': widen what the '%' swallows by one and
			// retry from just past it.
			anchor++
			si, pi = anchor, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// Upper is upper(string).
func Upper(v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.kind != KindString {
		return Null(), fmt.Errorf("types: function upper(%s) does not exist", v.Kind())
	}
	return NewString(strings.ToUpper(v.s)), nil
}

// Lower is lower(string).
func Lower(v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.kind != KindString {
		return Null(), fmt.Errorf("types: function lower(%s) does not exist", v.Kind())
	}
	return NewString(strings.ToLower(v.s)), nil
}

// Length is length(string): the character (rune) count.
func Length(v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.kind != KindString {
		return Null(), fmt.Errorf("types: function length(%s) does not exist", v.Kind())
	}
	return NewInt(int64(len([]rune(v.s)))), nil
}

// Substr is substr(string, from [, count]) with PostgreSQL semantics:
// positions are 1-based, a start before the string clips against it
// (substr('abc', 0, 2) = 'a'), and a negative count is an error.
func Substr(s, from Value, count *Value) (Value, error) {
	if s.IsNull() || from.IsNull() || (count != nil && count.IsNull()) {
		return Null(), nil
	}
	if s.kind != KindString || from.kind != KindInt || (count != nil && count.kind != KindInt) {
		return Null(), fmt.Errorf("types: function substr(%s, …) requires (string, integer [, integer])", s.Kind())
	}
	runes := []rune(s.s)
	start := from.i
	end := int64(len(runes)) + 1 // exclusive, 1-based
	if count != nil {
		if count.i < 0 {
			return Null(), fmt.Errorf("types: negative substring length not allowed")
		}
		if e, err := AddInt64(start, count.i); err == nil {
			end = e
		} else {
			end = math.MaxInt64 // saturate; clamped to the string below
		}
	}
	if start < 1 {
		start = 1
	}
	if end > int64(len(runes))+1 {
		end = int64(len(runes)) + 1
	}
	if start >= end {
		return NewString(""), nil
	}
	return NewString(string(runes[start-1 : end-1])), nil
}

// CanCast reports whether a CAST from one kind to another is defined. An
// unknown (null) source kind casts to anything; following PostgreSQL, the
// only rejected pair among the concrete kinds is float↔boolean.
func CanCast(from, to Kind) bool {
	if from == KindNull {
		return true
	}
	if from == to {
		return true
	}
	if (from == KindFloat && to == KindBool) || (from == KindBool && to == KindFloat) {
		return false
	}
	return true
}

// Cast converts a value to the target kind, following PostgreSQL: NULL casts
// to NULL, numeric↔numeric rounds (raising "bigint out of range" when the
// float exceeds int64), anything casts to string via its canonical text, and
// string→X parses the text (raising "invalid input syntax" otherwise).
func Cast(v Value, to Kind) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	if v.kind == to {
		return v, nil
	}
	switch to {
	case KindString:
		return NewString(v.String()), nil
	case KindInt:
		switch v.kind {
		case KindFloat:
			f := math.RoundToEven(v.f)
			if math.IsNaN(f) || f < math.MinInt64 || f >= math.MaxInt64 {
				return Null(), ErrNumericOutOfRange
			}
			return NewInt(int64(f)), nil
		case KindBool:
			if v.b {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		case KindString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("types: invalid input syntax for type integer: %q", v.s)
			}
			return NewInt(i), nil
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return NewFloat(float64(v.i)), nil
		case KindString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Null(), fmt.Errorf("types: invalid input syntax for type float: %q", v.s)
			}
			return NewFloat(f), nil
		}
	case KindBool:
		switch v.kind {
		case KindInt:
			return NewBool(v.i != 0), nil
		case KindString:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "t", "true", "yes", "on", "1":
				return NewBool(true), nil
			case "f", "false", "no", "off", "0":
				return NewBool(false), nil
			}
			return Null(), fmt.Errorf("types: invalid input syntax for type boolean: %q", v.s)
		}
	}
	return Null(), fmt.Errorf("types: cannot cast type %s to %s", v.Kind(), to)
}

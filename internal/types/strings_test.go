package types

import (
	"strings"
	"testing"
	"time"
)

func TestLikeSemantics(t *testing.T) {
	cases := []struct {
		s, pat string
		want   TriBool
	}{
		{"abc", "abc", True},
		{"abc", "a%", True},
		{"abc", "%c", True},
		{"abc", "%b%", True},
		{"abc", "a_c", True},
		{"abc", "_", False},
		{"abc", "___", True},
		{"abc", "", False},
		{"", "", True},
		{"", "%", True},
		{"", "_", False},
		{"abc", "%", True},
		{"abc", "%%", True},
		{"abc", "a%b%c", True},
		{"abc", "a%c%b", False},
		{"aaab", "%a%a%b", True},
		{"aaab", "%a%a%a%a%b", False},
		{"banana", "%ana", True},
		{"banana", "b%na", True},
		{"banana", "b%x%", False},
	}
	for _, c := range cases {
		got, err := Like(NewString(c.s), NewString(c.pat))
		if err != nil {
			t.Fatalf("Like(%q, %q): %v", c.s, c.pat, err)
		}
		if got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	if got, _ := Like(Null(), NewString("%")); got != Unknown {
		t.Errorf("Like(NULL, %%) = %v, want unknown", got)
	}
	if got, _ := Like(NewString("a"), Null()); got != Unknown {
		t.Errorf("Like(a, NULL) = %v, want unknown", got)
	}
	if _, err := Like(NewInt(1), NewString("%")); err == nil {
		t.Error("Like over an integer should be a type error")
	}
}

// TestLikeManyWildcards: patterns with many '%'s must match in polynomial
// time — the naive recursive matcher was exponential and hung for over a
// minute on this input (review-found).
func TestLikeManyWildcards(t *testing.T) {
	s := NewString(strings.Repeat("a", 2000))
	pat := NewString(strings.Repeat("%a", 20) + "%b")
	start := time.Now()
	got, err := Like(s, pat)
	if err != nil {
		t.Fatal(err)
	}
	if got != False {
		t.Fatalf("match = %v, want false", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pathological LIKE took %s", elapsed)
	}
}

// Package provenance provides two reference implementations of the paper's
// provenance semantics that are independent of the query rewriter:
//
//   - an Oracle computing the closed forms of Theorems 1–3 directly, under
//     either Definition 1 (with the ind influence role) or Definition 2
//     (the paper's extension, which eliminates ind);
//   - a brute-force Checker that verifies the raw conditions of
//     Definitions 1 and 2 — including maximality — by exhaustive
//     substitution on tiny relations.
//
// Tests use the oracle to cross-check the rewrite strategies and the
// checker to cross-check the oracle, closing the verification loop: a
// rewrite bug, an oracle bug and a checker bug would all have to agree for
// a wrong provenance result to pass.
//
// # Invariants
//
// The oracle evaluates original (unrewritten) plans with its own evaluator
// and derives the contributing tuple sets per base relation access; its
// output is compared against rewritten-plan execution by set equality on
// witness lists, so it must enumerate provenance in the same base-relation
// access order as rewrite.Result.Prov.
//
// The checker is exponential in spirit (maximality probes every excluded
// tuple) and is only meant for the hand-sized relations of the test suite.
// Neither the oracle nor the checker is used on any production query path;
// they exist to keep the rewriter honest.
package provenance

package provenance

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
)

// Checker verifies computed provenance against the raw conditions of
// Definition 1 / Definition 2 by exhaustive substitution: it replaces each
// sublink query with literal subsets and re-evaluates the operator. It is
// exponential in spirit (maximality probes every excluded tuple) and meant
// for tiny relations in tests.
type Checker struct {
	cat *catalog.Catalog
	def Definition
	o   *Oracle
}

// NewChecker returns a checker under the given definition.
func NewChecker(cat *catalog.Catalog, def Definition) *Checker {
	return &Checker{cat: cat, def: def, o: NewOracle(cat, def)}
}

// CheckSelection verifies that tp is the provenance of its result tuple for
// sel = σ_C(Scan(T)) under the checker's definition:
//
//	condition 1: σ with every Tsub_i replaced by Tsub_i* still produces t;
//	condition 2: each single tuple of each Tsub_i* keeps producing t;
//	condition 3 (Definition 2 only): each single tuple of Tsub_i* gives the
//	            sublink the same value as the full Tsub_i;
//	maximality:  adding any excluded Tsub_i tuple to Tsub_i* violates one of
//	            the applicable conditions.
func (c *Checker) CheckSelection(sel *algebra.Select, tp TupleProvenance) error {
	sc, ok := sel.Child.(*algebra.Scan)
	if !ok {
		return fmt.Errorf("provenance: checker supports selections over base relations, got %T", sel.Child)
	}
	in, err := c.o.ev.Eval(sc)
	if err != nil {
		return err
	}
	sublinks := algebra.CollectSublinks(sel.Cond)
	t := tp.Witness

	// Materialize each sublink's full result for the binding t and fetch
	// the computed star sets.
	full := make([]*rel.Relation, len(sublinks))
	star := make([]*rel.Relation, len(sublinks))
	for i, sl := range sublinks {
		full[i], err = c.o.sublinkResult(sl, in.Schema, t)
		if err != nil {
			return err
		}
		s, ok := tp.Sources[subKey(i)]
		if !ok {
			return fmt.Errorf("provenance: missing source %s in computed provenance", subKey(i))
		}
		star[i] = s
	}

	condValue := func(sets []*rel.Relation) (bool, error) {
		cond := substituteSublinkSets(sel.Cond, sublinks, sets)
		return c.o.evalCondition(cond, in.Schema, t)
	}
	sublinkValue := func(i int, set *rel.Relation) (bool, error) {
		sl := sublinks[i]
		sl.Query = valuesOf(set)
		return c.o.evalCondition(sl, in.Schema, t)
	}

	// verify checks conditions 1, 2 and (Definition 2) 3 for one candidate
	// tuple of subsets. Maximality probes re-run it on augmented sets:
	// Definition 1's maximality is about the tuple of subsets *jointly* —
	// growing one set may break condition 2 for tuples of another (that
	// joint constraint is exactly what makes the §2.5 example ambiguous).
	verify := func(sets []*rel.Relation) error {
		keep, err := condValue(sets)
		if err != nil {
			return err
		}
		if !keep {
			return fmt.Errorf("condition 1 violated: σ over starred inputs drops %s", t)
		}
		for i := range sublinks {
			fullVal, err := sublinkValue(i, full[i])
			if err != nil {
				return err
			}
			err = sets[i].Each(func(st rel.Tuple, n int) error {
				single := rel.FromTuples(sets[i].Schema, st)
				probe := append([]*rel.Relation{}, sets...)
				probe[i] = single
				keep, err := condValue(probe)
				if err != nil {
					return err
				}
				if !keep {
					return fmt.Errorf("condition 2 violated: tuple %s of %s does not reproduce %s", st, subKey(i), t)
				}
				if c.def == Definition2 {
					v, err := sublinkValue(i, single)
					if err != nil {
						return err
					}
					if v != fullVal {
						return fmt.Errorf("condition 3 violated: tuple %s flips sublink %d from %v to %v", st, i, fullVal, v)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	if err := verify(star); err != nil {
		return fmt.Errorf("provenance: %w", err)
	}

	// Maximality: adding any excluded tuple must make verify fail.
	for i := range sublinks {
		excluded := rel.New(full[i].Schema)
		_ = full[i].Each(func(st rel.Tuple, n int) error {
			if star[i].Count(st) == 0 {
				excluded.Add(st, 1)
			}
			return nil
		})
		err = excluded.Each(func(st rel.Tuple, n int) error {
			augmented := star[i].Clone()
			augmented.Add(st, 1)
			sets := append([]*rel.Relation{}, star...)
			sets[i] = augmented
			if verify(sets) == nil {
				return fmt.Errorf("provenance: not maximal: tuple %s of sublink %d could be added to %s's provenance", st, i, t)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// substituteSublinkSets replaces each collected sublink's query with a
// literal Values relation, producing the condition C(Tsub1*, …, Tsubn*).
func substituteSublinkSets(cond algebra.Expr, sublinks []algebra.Sublink, sets []*rel.Relation) algebra.Expr {
	return algebra.MapExpr(cond, func(x algebra.Expr) algebra.Expr {
		sl, ok := x.(algebra.Sublink)
		if !ok {
			return x
		}
		for i := range sublinks {
			if algebra.ExprEqual(sl, sublinks[i]) {
				sl.Query = valuesOf(sets[i])
				return sl
			}
		}
		return x
	})
}

// valuesOf converts a materialized relation into a Values literal.
func valuesOf(r *rel.Relation) *algebra.Values {
	var rows []algebra.Row
	_ = r.Each(func(t rel.Tuple, n int) error {
		for ; n > 0; n-- {
			rows = append(rows, constRow(t))
		}
		return nil
	})
	return &algebra.Values{Sch: unqualified(r.Schema), Rows: rows}
}

// unqualified strips qualifiers so literal relations cannot capture
// references intended for enclosing scopes.
func unqualified(s schema.Schema) schema.Schema {
	attrs := make([]schema.Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		attrs[i] = schema.Attr{Name: a.Name}
	}
	return schema.Schema{Attrs: attrs}
}

package provenance

import (
	"fmt"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/schema"
	"perm/internal/types"
)

func ints(vals ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func figure3DB() *catalog.Catalog {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4), ints(4, 5)))
	return c
}

func scan(t *testing.T, c *catalog.Catalog, name string) *algebra.Scan {
	t.Helper()
	sch, err := c.Schema(name)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.NewScan(name, "", sch)
}

// findProv returns the provenance entry whose result tuple equals want.
func findProv(t *testing.T, ps []TupleProvenance, want rel.Tuple) TupleProvenance {
	t.Helper()
	for _, p := range ps {
		if p.Result.Key() == want.Key() {
			return p
		}
	}
	t.Fatalf("no provenance entry for %s (have %d entries)", want, len(ps))
	return TupleProvenance{}
}

func subset(t *testing.T, sch schema.Schema, tuples ...rel.Tuple) *rel.Relation {
	t.Helper()
	return rel.FromTuples(sch, tuples...)
}

// TestFigure3OracleDefinition1 reproduces the Figure 3 provenance table
// exactly as printed (the paper computes it under Definition 1).
func TestFigure3OracleDefinition1(t *testing.T) {
	c := figure3DB()
	o := NewOracle(c, Definition1)
	sSchema := schema.New("", "c").WithQual("")

	// q1 = σ_{a = ANY(Πc(S))}(R).
	q1 := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
			Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))},
	}
	ps, err := o.SelectionProvenance(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("q1 result tuples = %d", len(ps))
	}
	p := findProv(t, ps, ints(1, 1))
	if !p.Sources["sub0"].Equal(subset(t, sSchema, ints(1))) {
		t.Errorf("q1 (1,1) sublink provenance = %s, want {(1)}", p.Sources["sub0"])
	}
	p = findProv(t, ps, ints(2, 1))
	if !p.Sources["sub0"].Equal(subset(t, sSchema, ints(2))) {
		t.Errorf("q1 (2,1) sublink provenance = %s, want {(2)}", p.Sources["sub0"])
	}

	// q2 = σ_{c > ALL(Πa(R))}(S): (4,5) with all of R.
	q2 := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("c"),
			Query: algebra.NewProject(scan(t, c, "r"), algebra.KeepCol("a"))},
	}
	ps, err = o.SelectionProvenance(q2)
	if err != nil {
		t.Fatal(err)
	}
	p = findProv(t, ps, ints(4, 5))
	rSchema := schema.New("", "a")
	if !p.Sources["sub0"].Equal(subset(t, rSchema, ints(1), ints(2), ints(3))) {
		t.Errorf("q2 (4,5) sublink provenance = %s, want all of Πa(R)", p.Sources["sub0"])
	}

	// q3 = σ_{(a=3) ∨ ¬(a < ALL(σ_{c≠1}(Πc(S))))}(R). Figure 3 prints
	// (2,1) ← S(2,4) and (3,2) ← S{(2,4),(4,5)} (ind role under Def 1).
	q3 := q3Query(t, c)
	ps, err = o.SelectionProvenance(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("q3 result tuples = %d", len(ps))
	}
	cOnly := schema.New("", "c")
	p = findProv(t, ps, ints(2, 1))
	if !p.Sources["sub0"].Equal(subset(t, cOnly, ints(2))) {
		t.Errorf("q3 (2,1) = %s, want {(2)}", p.Sources["sub0"])
	}
	p = findProv(t, ps, ints(3, 2))
	if !p.Sources["sub0"].Equal(subset(t, cOnly, ints(2), ints(4))) {
		t.Errorf("q3 (3,2) under Def 1 = %s, want {(2),(4)} (ind role)", p.Sources["sub0"])
	}
}

// TestFigure3Q3Definition2 shows the Definition 2 refinement of §2.5: the
// ind role disappears and (3,2)'s sublink provenance shrinks to Tsub^false.
func TestFigure3Q3Definition2(t *testing.T) {
	c := figure3DB()
	o := NewOracle(c, Definition2)
	ps, err := o.SelectionProvenance(q3Query(t, c))
	if err != nil {
		t.Fatal(err)
	}
	p := findProv(t, ps, ints(3, 2))
	if !p.Sources["sub0"].Equal(subset(t, schema.New("", "c"), ints(2))) {
		t.Errorf("q3 (3,2) under Def 2 = %s, want {(2)}", p.Sources["sub0"])
	}
}

func q3Query(t *testing.T, c *catalog.Catalog) *algebra.Select {
	sub := algebra.NewProject(
		&algebra.Select{
			Child: scan(t, c, "s"),
			Cond:  algebra.Cmp{Op: types.CmpNe, L: algebra.Attr("c"), R: algebra.IntConst(1)},
		},
		algebra.KeepCol("c"),
	)
	return &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Or{
			L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(3)},
			R: algebra.Not{E: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub}},
		},
	}
}

// section25DB and section25Query build the multi-sublink ambiguity example
// of §2.5: U={(5)}, R={1..100}, S={(1),(5)}, C = (a = ANY R) ∨ (a > ALL S).
func section25DB() *catalog.Catalog {
	c := catalog.New()
	rt := make([]rel.Tuple, 100)
	for i := range rt {
		rt[i] = ints(int64(i + 1))
	}
	c.Register("r", rel.FromTuples(schema.New("", "b"), rt...))
	c.Register("s", rel.FromTuples(schema.New("", "c"), ints(1), ints(5)))
	c.Register("u", rel.FromTuples(schema.New("", "a"), ints(5)))
	return c
}

func section25Query(t *testing.T, c *catalog.Catalog) *algebra.Select {
	return &algebra.Select{
		Child: scan(t, c, "u"),
		Cond: algebra.Or{
			L: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: scan(t, c, "r")},
			R: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("a"), Query: scan(t, c, "s")},
		},
	}
}

// TestMultiSublinkAmbiguity demonstrates the §2.5 problem: under
// Definition 1 both of the paper's incomparable "solutions" satisfy
// conditions 1, 2 and maximality (the definition is not well-defined),
// while under Definition 2 exactly the canonical solution passes.
func TestMultiSublinkAmbiguity(t *testing.T) {
	c := section25DB()
	q := section25Query(t, c)
	rSch := schema.New("", "b")
	sSch := schema.New("", "c")

	mk := func(rStar, sStar *rel.Relation) TupleProvenance {
		return TupleProvenance{
			Result:  ints(5),
			Witness: ints(5),
			Sources: map[string]*rel.Relation{
				"u":    rel.FromTuples(schema.New("", "a"), ints(5)),
				"sub0": rStar,
				"sub1": sStar,
			},
		}
	}
	// Paper's solution 1: R* = {5}, S* = {1,5}.
	sol1 := mk(subset(t, rSch, ints(5)), subset(t, sSch, ints(1), ints(5)))
	// Paper's solution 2: R* = {1..100}, S* = {1}.
	all := rel.New(rSch)
	for i := 1; i <= 100; i++ {
		all.Add(ints(int64(i)), 1)
	}
	sol2 := mk(all, subset(t, sSch, ints(1)))

	def1 := NewChecker(c, Definition1)
	if err := def1.CheckSelection(q, sol1); err != nil {
		t.Errorf("Def 1 should accept solution 1: %v", err)
	}
	if err := def1.CheckSelection(q, sol2); err != nil {
		t.Errorf("Def 1 should accept solution 2: %v", err)
	}

	// Definition 2's unique provenance: R* = {5} (reqtrue → R^true),
	// S* = {5} (sublink false → S^false = {t' | ¬(5 > t')} = {5}).
	def2 := NewChecker(c, Definition2)
	canonical := mk(subset(t, rSch, ints(5)), subset(t, sSch, ints(5)))
	if err := def2.CheckSelection(q, canonical); err != nil {
		t.Errorf("Def 2 should accept the canonical solution: %v", err)
	}
	if err := def2.CheckSelection(q, sol1); err == nil {
		t.Error("Def 2 should reject solution 1 (S* produces a different sublink value)")
	}
	if err := def2.CheckSelection(q, sol2); err == nil {
		t.Error("Def 2 should reject solution 2")
	}

	// The oracle must compute exactly the canonical Definition 2 solution.
	ps, err := NewOracle(c, Definition2).SelectionProvenance(q)
	if err != nil {
		t.Fatal(err)
	}
	p := findProv(t, ps, ints(5))
	if !p.Sources["sub0"].Equal(canonical.Sources["sub0"]) || !p.Sources["sub1"].Equal(canonical.Sources["sub1"]) {
		t.Errorf("oracle Def 2 = R*:%s S*:%s", p.Sources["sub0"], p.Sources["sub1"])
	}
}

// TestProjectionOracle covers Theorem 2 (sublinks in projections): the
// provenance per input tuple follows the selection rules, and under
// Definition 1 an ind sublink (one whose value does not change the
// projected expression) contributes everything.
func TestProjectionOracle(t *testing.T) {
	c := figure3DB()
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	link := algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub}

	// Π_{a, a=ANY(S)}(R): the sublink's value is the projected expression,
	// so it is never ind.
	q := algebra.NewProject(scan(t, c, "r"),
		algebra.KeepCol("a"), algebra.Col(link, "m"))
	o := NewOracle(c, Definition2)
	ps, err := o.ProjectionProvenance(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("projection provenance entries = %d", len(ps))
	}
	cOnly := schema.New("", "c")
	for _, p := range ps {
		a := p.Witness[0].Int()
		switch a {
		case 1, 2:
			if !p.Sources["sub0"].Equal(subset(t, cOnly, ints(a))) {
				t.Errorf("a=%d: Tsub* = %s, want {(%d)}", a, p.Sources["sub0"], a)
			}
		case 3:
			// Sublink false → reqfalse → all of Tsub.
			if p.Sources["sub0"].Card() != 3 {
				t.Errorf("a=3: Tsub* = %s, want all of S", p.Sources["sub0"])
			}
		}
	}

	// Π_{true ∨ Csub}(R) (the paper's footnote-4 example shape): the
	// projected value is true regardless of the sublink, so under
	// Definition 1 the role is ind and everything contributes; under
	// Definition 2 the actual value pins Tsub^true.
	qInd := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Or{L: algebra.BoolConst(true), R: link}, "v"))
	psInd, err := NewOracle(c, Definition1).ProjectionProvenance(qInd)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range psInd {
		if p.Sources["sub0"].Card() != 3 {
			t.Errorf("Def1 ind projection sublink: Tsub* = %s, want all of S", p.Sources["sub0"])
		}
	}
	psDef2, err := NewOracle(c, Definition2).ProjectionProvenance(qInd)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range psDef2 {
		a := p.Witness[0].Int()
		if a == 1 || a == 2 {
			if !p.Sources["sub0"].Equal(subset(t, schema.New("", "c"), ints(a))) {
				t.Errorf("Def2 pins the actual value: a=%d got %s", a, p.Sources["sub0"])
			}
		}
	}
}

// TestOracleCorrelatedProjection covers §2.6: a correlated sublink in a
// projection is parameterized per input tuple; the oracle reports the
// per-witness provenance.
func TestOracleCorrelatedProjection(t *testing.T) {
	c := figure3DB()
	sub := algebra.NewProject(&algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}, algebra.KeepCol("c"))
	q := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}, "e"))
	ps, err := NewOracle(c, Definition2).ProjectionProvenance(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		b := p.Witness[1].Int()
		got := p.Sources["sub0"]
		// Tsub(b) = σ_{c=b}(S) projected on c: {b} if b ∈ {1,2}, ∅ otherwise.
		if b <= 2 {
			if !got.Equal(subset(t, schema.New("", "c"), ints(b))) {
				t.Errorf("b=%d: Tsub* = %s", b, got)
			}
		} else if !got.Empty() {
			t.Errorf("b=%d: Tsub* should be empty, got %s", b, got)
		}
	}
}

// TestOracleSatisfiesChecker validates the oracle's closed forms against
// the brute-force definition checker across a family of query shapes and
// randomized small databases, under both definitions.
func TestOracleSatisfiesChecker(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(t *testing.T, c *catalog.Catalog) *algebra.Select
	}{
		{"eqAny", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
					Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))},
			}
		}},
		{"ltAllOr", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Or{
					L: algebra.Cmp{Op: types.CmpGe, L: algebra.Attr("b"), R: algebra.IntConst(2)},
					R: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"),
						Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))},
				},
			}
		}},
		{"existsCorrelated", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Sublink{Kind: algebra.ExistsSublink,
					Query: &algebra.Select{
						Child: scan(t, c, "s"),
						Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
					}},
			}
		}},
		{"twoSublinks", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r"),
				Cond: algebra.Or{
					L: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
						Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))},
					R: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("b"),
						Query: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("d"))},
				},
			}
		}},
	}
	for _, def := range []Definition{Definition1, Definition2} {
		for _, shape := range shapes {
			for seed := int64(1); seed <= 6; seed++ {
				name := fmt.Sprintf("%v/%s/seed%d", def, shape.name, seed)
				t.Run(name, func(t *testing.T) {
					c := randomDB(seed)
					q := shape.mk(t, c)
					o := NewOracle(c, def)
					ps, err := o.SelectionProvenance(q)
					if err != nil {
						t.Fatal(err)
					}
					ck := NewChecker(c, def)
					for _, p := range ps {
						if err := ck.CheckSelection(q, p); err != nil {
							t.Errorf("checker rejects oracle provenance of %s: %v", p.Result, err)
						}
					}
				})
			}
		}
	}
}

// TestRewriteMatchesOracle cross-checks the Gen and Left strategies against
// the oracle under Definition 2 for sublink queries whose results are base
// tuples (bare scans and selections over scans), where the sublink-result
// and base-relation granularities coincide.
func TestRewriteMatchesOracle(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(t *testing.T, c *catalog.Catalog) *algebra.Select
	}{
		{"anyScan", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r1"),
				Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"),
					Query: scan(t, c, "s1")},
			}
		}},
		{"allSelect", func(t *testing.T, c *catalog.Catalog) *algebra.Select {
			return &algebra.Select{
				Child: scan(t, c, "r1"),
				Cond: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLe, Test: algebra.Attr("a"),
					Query: &algebra.Select{
						Child: scan(t, c, "s1"),
						Cond:  algebra.Cmp{Op: types.CmpGt, L: algebra.Attr("c"), R: algebra.IntConst(0)},
					}},
			}
		}},
	}
	for _, shape := range shapes {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", shape.name, seed), func(t *testing.T) {
				c := randomSingleColDB(seed)
				q := shape.mk(t, c)
				oracle, err := NewOracle(c, Definition2).SelectionProvenance(q)
				if err != nil {
					t.Fatal(err)
				}
				for _, strat := range []rewrite.Strategy{rewrite.Gen, rewrite.Left} {
					res, err := rewrite.Rewrite(q, strat)
					if err != nil {
						t.Fatal(err)
					}
					out, err := eval.New(c).Eval(res.Plan)
					if err != nil {
						t.Fatal(err)
					}
					compareRewriteToOracle(t, strat, q, res, out, oracle)
				}
			})
		}
	}
}

// compareRewriteToOracle groups the single-relation representation by result
// tuple and checks each provenance source's distinct tuple set against the
// oracle.
func compareRewriteToOracle(t *testing.T, strat rewrite.Strategy, q *algebra.Select, res *rewrite.Result, out *rel.Relation, oracle []TupleProvenance) {
	t.Helper()
	width := res.Original.Len()
	// source index → (result key → set of prov tuples)
	groups := make([]map[string]*rel.Relation, len(res.Prov))
	for i := range groups {
		groups[i] = map[string]*rel.Relation{}
	}
	_ = out.Each(func(tp rel.Tuple, n int) error {
		key := tp[:width].Key()
		off := width
		for i, src := range res.Prov {
			w := len(src.Attrs)
			sub := tp[off : off+w]
			off += w
			allNull := true
			for _, v := range sub {
				if !v.IsNull() {
					allNull = false
				}
			}
			if !allNull {
				g := groups[i][key]
				if g == nil {
					g = rel.New(schema.Schema{Attrs: src.Attrs})
					groups[i][key] = g
				}
				if g.Count(sub.Clone()) == 0 {
					g.Add(sub.Clone(), 1)
				}
			}
		}
		return nil
	})
	for _, op := range oracle {
		key := op.Result.Key()
		// Source 0 is the selection input; source i+1 is sublink i.
		for i := range res.Prov {
			var want *rel.Relation
			if i == 0 {
				want = op.Sources[res.Prov[0].Rel]
			} else {
				want = op.Sources[fmt.Sprintf("sub%d", i-1)]
			}
			got := groups[i][key]
			if got == nil {
				got = rel.New(schema.Schema{Attrs: res.Prov[i].Attrs})
			}
			if want == nil {
				t.Fatalf("oracle missing source %d for %s", i, op.Result)
			}
			if !got.EqualSet(want.WithSchema(got.Schema)) {
				t.Errorf("%v: source %d of %s = %s, oracle %s", strat, i, op.Result, got, want)
			}
		}
	}
}

// randomDB builds r(a,b), s(c,d) with small random integers.
func randomDB(seed int64) *catalog.Catalog {
	c := catalog.New()
	next := mkRand(seed)
	r := rel.New(schema.New("", "a", "b"))
	for i := 0; i < 5; i++ {
		r.Add(ints(next(), next()), 1)
	}
	s := rel.New(schema.New("", "c", "d"))
	for i := 0; i < 4; i++ {
		s.Add(ints(next(), next()), 1)
	}
	c.Register("r", r)
	c.Register("s", s)
	return c
}

// randomSingleColDB builds r1(a), s1(c) for the granularity-aligned
// rewrite-vs-oracle comparison.
func randomSingleColDB(seed int64) *catalog.Catalog {
	c := catalog.New()
	next := mkRand(seed)
	r := rel.New(schema.New("", "a"))
	for i := 0; i < 6; i++ {
		r.Add(ints(next()), 1)
	}
	s := rel.New(schema.New("", "c"))
	for i := 0; i < 4; i++ {
		s.Add(ints(next()), 1)
	}
	c.Register("r1", r)
	c.Register("s1", s)
	return c
}

func mkRand(seed int64) func() int64 {
	return func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := (seed >> 33) % 4
		if v < 0 {
			v = -v
		}
		return v
	}
}

package provenance

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Definition selects which contribution definition the oracle computes.
type Definition uint8

// The two contribution definitions of §2.
const (
	// Definition1 is Cui & Widom's contribution definition applied to
	// sublinks (§2.3–2.4): influence roles reqtrue/reqfalse/ind, where ind
	// sublinks contribute their entire query result.
	Definition1 Definition = iota
	// Definition2 adds condition 3 (§2.5): the provenance must reproduce
	// every sublink's result, which removes the ind role and the false
	// positives it admits.
	Definition2
)

// String names the definition.
func (d Definition) String() string {
	if d == Definition1 {
		return "Definition 1"
	}
	return "Definition 2"
}

// TupleProvenance is the provenance of one result tuple: for every base
// relation access, the contributing subset.
type TupleProvenance struct {
	// Result is the output tuple.
	Result rel.Tuple
	// Witness is the input tuple of the operator that produced Result (for
	// projections over correlated sublinks the provenance is defined per
	// input tuple, §2.6).
	Witness rel.Tuple
	// Sources maps a source label — the relation name for the operator's
	// input, "sub<i>" for the i-th sublink — to the contributing subset.
	Sources map[string]*rel.Relation
}

// Oracle computes provenance closed forms by direct evaluation.
type Oracle struct {
	cat *catalog.Catalog
	def Definition
	ev  *eval.Evaluator
}

// NewOracle returns an oracle over the catalog under the given definition.
func NewOracle(cat *catalog.Catalog, def Definition) *Oracle {
	return &Oracle{cat: cat, def: def, ev: eval.New(cat)}
}

// SelectionProvenance computes the provenance of every result tuple of
// q = σ_C(Scan(T)), where C may contain (correlated) sublinks. It returns
// one TupleProvenance per qualifying input tuple. The operator input's
// contribution is keyed by the relation name; sublink i's contribution (the
// subset Tsub_i* of the sublink query's result, per Figure 2 / Theorem 1
// and its ALL/EXISTS/scalar analogues) is keyed "sub<i>".
func (o *Oracle) SelectionProvenance(sel *algebra.Select) ([]TupleProvenance, error) {
	sc, ok := sel.Child.(*algebra.Scan)
	if !ok {
		return nil, fmt.Errorf("provenance: oracle supports selections over base relations, got %T", sel.Child)
	}
	in, err := o.ev.Eval(sc)
	if err != nil {
		return nil, err
	}
	sublinks := algebra.CollectSublinks(sel.Cond)
	var out []TupleProvenance
	err = in.Each(func(t rel.Tuple, n int) error {
		keep, err := o.evalCondition(sel.Cond, in.Schema, t)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		tp := TupleProvenance{
			Result:  t,
			Witness: t,
			Sources: map[string]*rel.Relation{sc.Name: rel.FromTuples(in.Schema, t)},
		}
		for i, sl := range sublinks {
			star, err := o.sublinkStar(sl, sel.Cond, in.Schema, t)
			if err != nil {
				return err
			}
			tp.Sources[subKey(i)] = star
		}
		out = append(out, tp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ProjectionProvenance computes the provenance of q = Π_A(Scan(T)) per
// input tuple (one TupleProvenance per input tuple; callers union them per
// distinct result tuple for the uncorrelated case, per Theorem 2).
func (o *Oracle) ProjectionProvenance(p *algebra.Project) ([]TupleProvenance, error) {
	sc, ok := p.Child.(*algebra.Scan)
	if !ok {
		return nil, fmt.Errorf("provenance: oracle supports projections over base relations, got %T", p.Child)
	}
	in, err := o.ev.Eval(sc)
	if err != nil {
		return nil, err
	}
	var sublinks []algebra.Sublink
	for _, c := range p.Cols {
		sublinks = append(sublinks, algebra.CollectSublinks(c.E)...)
	}
	var out []TupleProvenance
	err = in.Each(func(t rel.Tuple, n int) error {
		row := make(rel.Tuple, len(p.Cols))
		for i, c := range p.Cols {
			v, err := o.evalExpr(c.E, in.Schema, t)
			if err != nil {
				return err
			}
			row[i] = v
		}
		tp := TupleProvenance{
			Result:  row,
			Witness: t,
			Sources: map[string]*rel.Relation{sc.Name: rel.FromTuples(in.Schema, t)},
		}
		// In a projection every input tuple is kept, so the enclosing
		// condition for role purposes is the projection expression itself;
		// Definition 2 pins each sublink to its actual value, Definition 1
		// treats sublinks whose value does not change the projected
		// expression as ind. We follow Theorem 2: per input tuple, the
		// sublink provenance is derived exactly as for selections.
		for i, sl := range sublinks {
			star, err := o.sublinkStarForValue(sl, in.Schema, t, p.Cols)
			if err != nil {
				return err
			}
			tp.Sources[subKey(i)] = star
		}
		out = append(out, tp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func subKey(i int) string { return fmt.Sprintf("sub%d", i) }

// evalCondition evaluates a condition for one tuple (True means keep).
func (o *Oracle) evalCondition(cond algebra.Expr, sch schema.Schema, t rel.Tuple) (bool, error) {
	v, err := o.evalExpr(cond, sch, t)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Kind() == types.KindBool && v.Bool(), nil
}

// evalExpr evaluates an expression for one tuple via a throwaway
// single-tuple selection plan, reusing the engine's expression semantics.
func (o *Oracle) evalExpr(e algebra.Expr, sch schema.Schema, t rel.Tuple) (types.Value, error) {
	probe := &algebra.Project{
		Child: &algebra.Values{Sch: sch, Rows: []algebra.Row{constRow(t)}},
		Cols:  []algebra.ProjExpr{{E: e, As: "v"}},
	}
	out, err := eval.New(o.cat).Eval(probe)
	if err != nil {
		return types.Null(), err
	}
	var v types.Value
	_ = out.Each(func(row rel.Tuple, n int) error { v = row[0]; return nil })
	return v, nil
}

func constRow(t rel.Tuple) algebra.Row {
	row := make(algebra.Row, len(t))
	for i, v := range t {
		row[i] = algebra.Const{Val: v}
	}
	return row
}

// sublinkResult materializes Tsub for one outer binding. The oracle
// de-correlates the query by substituting the outer tuple's values for the
// free attribute references — its own mechanism, independent of the
// evaluator's scope stack, which is part of the point of having an oracle.
func (o *Oracle) sublinkResult(sl algebra.Sublink, sch schema.Schema, t rel.Tuple) (*rel.Relation, error) {
	bound := substituteOuter(sl.Query, sch, t)
	return o.ev.Eval(bound)
}

// substituteOuter replaces every free attribute reference of q that resolves
// in the outer schema with the corresponding constant of the outer tuple,
// recursing into nested sublink queries. Caveat: the substitution is by
// name, so oracle queries must not reuse a free reference's name for a
// bound attribute in an inner scope (the test queries never do).
func substituteOuter(q algebra.Op, outer schema.Schema, t rel.Tuple) algebra.Op {
	free := map[algebra.AttrRef]types.Value{}
	for _, fv := range algebra.FreeVars(q) {
		if idx, amb := outer.Lookup(fv.Qual, fv.Name); idx >= 0 && !amb {
			free[fv] = t[idx]
		}
	}
	if len(free) == 0 {
		return q
	}
	var substExpr func(e algebra.Expr) algebra.Expr
	substExpr = func(e algebra.Expr) algebra.Expr {
		return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
			switch v := x.(type) {
			case algebra.AttrRef:
				if val, ok := free[v]; ok {
					return algebra.Const{Val: val}
				}
			case algebra.Sublink:
				v.Query = mapOpExprs(v.Query, substExpr)
				return v
			}
			return x
		})
	}
	return mapOpExprs(q, substExpr)
}

// mapOpExprs rebuilds a plan with fn applied to every operator expression.
// Attribute references bound inside the plan shadow outer ones; this simple
// substitution is sound because the oracle only substitutes references that
// are free in the whole plan (FreeVars already accounts for shadowing).
func mapOpExprs(op algebra.Op, fn func(algebra.Expr) algebra.Expr) algebra.Op {
	switch q := op.(type) {
	case *algebra.Scan, *algebra.Values:
		return op
	case *algebra.Select:
		return &algebra.Select{Child: mapOpExprs(q.Child, fn), Cond: fn(q.Cond)}
	case *algebra.Project:
		cols := make([]algebra.ProjExpr, len(q.Cols))
		for i, c := range q.Cols {
			cols[i] = algebra.ProjExpr{E: fn(c.E), As: c.As, Qual: c.Qual}
		}
		return &algebra.Project{Child: mapOpExprs(q.Child, fn), Cols: cols, Distinct: q.Distinct}
	case *algebra.Cross:
		return &algebra.Cross{L: mapOpExprs(q.L, fn), R: mapOpExprs(q.R, fn)}
	case *algebra.Join:
		return &algebra.Join{L: mapOpExprs(q.L, fn), R: mapOpExprs(q.R, fn), Cond: fn(q.Cond)}
	case *algebra.LeftJoin:
		return &algebra.LeftJoin{L: mapOpExprs(q.L, fn), R: mapOpExprs(q.R, fn), Cond: fn(q.Cond)}
	case *algebra.Aggregate:
		gs := make([]algebra.GroupExpr, len(q.Group))
		for i, g := range q.Group {
			gs[i] = algebra.GroupExpr{E: fn(g.E), As: g.As, Qual: g.Qual}
		}
		as := make([]algebra.AggExpr, len(q.Aggs))
		for i, a := range q.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = fn(a.Arg)
			}
			as[i] = na
		}
		return &algebra.Aggregate{Child: mapOpExprs(q.Child, fn), Group: gs, Aggs: as}
	case *algebra.SetOp:
		return &algebra.SetOp{Kind: q.Kind, Bag: q.Bag, L: mapOpExprs(q.L, fn), R: mapOpExprs(q.R, fn)}
	case *algebra.Order:
		return &algebra.Order{Child: mapOpExprs(q.Child, fn), Keys: q.Keys}
	case *algebra.Limit:
		return &algebra.Limit{Child: mapOpExprs(q.Child, fn), N: q.N, Offset: q.Offset}
	default:
		return op
	}
}

// sublinkStar computes Tsub* for one outer tuple per Theorem 1 and its
// analogues (Figure 2), under the oracle's definition:
//
//	ANY:  reqtrue → Tsub^true;  reqfalse → Tsub;  ind → Tsub (Def 1 only)
//	ALL:  reqfalse → Tsub^false; reqtrue → Tsub;  ind → Tsub (Def 1 only)
//	EXISTS, scalar: Tsub
//
// Under Definition 2 the role is pinned by the sublink's actual value:
// a true ANY behaves reqtrue, a false ANY reqfalse, etc.
func (o *Oracle) sublinkStar(sl algebra.Sublink, cond algebra.Expr, sch schema.Schema, t rel.Tuple) (*rel.Relation, error) {
	tsub, err := o.sublinkResult(sl, sch, t)
	if err != nil {
		return nil, err
	}
	switch sl.Kind {
	case algebra.ExistsSublink, algebra.ScalarSublink:
		return tsub, nil
	}
	val, err := o.sublinkValue(sl, sch, t)
	if err != nil {
		return nil, err
	}
	role, err := o.influenceRole(sl, cond, sch, t, val)
	if err != nil {
		return nil, err
	}
	return o.applyRole(sl, sch, t, tsub, role)
}

// role is the influence role of a sublink for one input tuple.
type role uint8

const (
	reqtrue role = iota
	reqfalse
	ind
)

// influenceRole determines the role of sl in cond for tuple t. Under
// Definition 2 the role follows the sublink's actual value; under
// Definition 1 it is determined by whether the condition's value depends on
// the sublink (forcing the sublink to true and to false and comparing).
func (o *Oracle) influenceRole(sl algebra.Sublink, cond algebra.Expr, sch schema.Schema, t rel.Tuple, actual bool) (role, error) {
	if o.def == Definition2 {
		if actual {
			return reqtrue, nil
		}
		return reqfalse, nil
	}
	forced := func(v bool) (bool, error) {
		fc := algebra.MapExpr(cond, func(x algebra.Expr) algebra.Expr {
			if s, ok := x.(algebra.Sublink); ok && algebra.ExprEqual(s, sl) {
				return algebra.BoolConst(v)
			}
			return x
		})
		return o.evalCondition(fc, sch, t)
	}
	withTrue, err := forced(true)
	if err != nil {
		return ind, err
	}
	withFalse, err := forced(false)
	if err != nil {
		return ind, err
	}
	switch {
	case withTrue && !withFalse:
		return reqtrue, nil
	case !withTrue && withFalse:
		return reqfalse, nil
	default:
		return ind, nil
	}
}

// sublinkValue evaluates the sublink's boolean value for tuple t.
func (o *Oracle) sublinkValue(sl algebra.Sublink, sch schema.Schema, t rel.Tuple) (bool, error) {
	return o.evalCondition(sl, sch, t)
}

// applyRole materializes Tsub* from the role per Figure 2.
func (o *Oracle) applyRole(sl algebra.Sublink, sch schema.Schema, t rel.Tuple, tsub *rel.Relation, r role) (*rel.Relation, error) {
	testVal, err := o.evalExpr(sl.Test, sch, t)
	if err != nil {
		return nil, err
	}
	filter := func(wantTrue bool) *rel.Relation {
		out := rel.New(tsub.Schema)
		_ = tsub.Each(func(st rel.Tuple, n int) error {
			res := sl.Op.Apply(testVal, st[0])
			if (res == types.True) == wantTrue && res != types.Unknown {
				out.Add(st, n)
			}
			return nil
		})
		return out
	}
	switch sl.Kind {
	case algebra.AnySublink:
		if r == reqtrue {
			return filter(true), nil // Tsub^true
		}
		return tsub, nil
	case algebra.AllSublink:
		if r == reqfalse {
			return filter(false), nil // Tsub^false
		}
		return tsub, nil
	default:
		return tsub, nil
	}
}

// sublinkStarForValue is sublinkStar for projection sublinks: there is no
// enclosing condition, so Definition 1's role is computed against the
// projected expressions (ind when forcing the sublink's value leaves every
// projected value unchanged), and Definition 2 pins the actual value.
func (o *Oracle) sublinkStarForValue(sl algebra.Sublink, sch schema.Schema, t rel.Tuple, cols []algebra.ProjExpr) (*rel.Relation, error) {
	tsub, err := o.sublinkResult(sl, sch, t)
	if err != nil {
		return nil, err
	}
	switch sl.Kind {
	case algebra.ExistsSublink, algebra.ScalarSublink:
		return tsub, nil
	}
	val, err := o.sublinkValue(sl, sch, t)
	if err != nil {
		return nil, err
	}
	r := reqfalse
	if val {
		r = reqtrue
	}
	if o.def == Definition1 {
		same := true
		for _, c := range cols {
			if !algebra.HasSublink(c.E) {
				continue
			}
			force := func(v bool) (types.Value, error) {
				fe := algebra.MapExpr(c.E, func(x algebra.Expr) algebra.Expr {
					if s, ok := x.(algebra.Sublink); ok && algebra.ExprEqual(s, sl) {
						return algebra.BoolConst(v)
					}
					return x
				})
				return o.evalExpr(fe, sch, t)
			}
			vt, err := force(true)
			if err != nil {
				return nil, err
			}
			vf, err := force(false)
			if err != nil {
				return nil, err
			}
			if !types.NullEq(vt, vf) || vt.IsNull() != vf.IsNull() {
				same = false
			}
		}
		if same {
			r = ind
		}
	}
	return o.applyRole(sl, sch, t, tsub, r)
}

// Package schema models relation schemas for the Perm reproduction: ordered
// attribute lists with optional relation qualifiers, name resolution with
// ambiguity detection, and the provenance attribute naming scheme P(R) from
// Glavic & Alonso (EDBT 2009) §3.1.
package schema

import (
	"fmt"
	"strings"
)

// Attr is a single attribute of a relation schema. Name is the column name;
// Qual is the optional relation or alias qualifier used to resolve
// references like "r.a".
type Attr struct {
	Qual string
	Name string
}

// String renders the attribute as [qual.]name.
func (a Attr) String() string {
	if a.Qual == "" {
		return a.Name
	}
	return a.Qual + "." + a.Name
}

// Schema is an ordered list of attributes. The zero Schema is empty and
// ready to use.
type Schema struct {
	Attrs []Attr
}

// New builds a schema with a shared qualifier for every attribute name.
func New(qual string, names ...string) Schema {
	attrs := make([]Attr, len(names))
	for i, n := range names {
		attrs[i] = Attr{Qual: qual, Name: n}
	}
	return Schema{Attrs: attrs}
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.Attrs) }

// String renders the schema as (a, b, r.c).
func (s Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Concat returns s followed by o — the paper's ⧺ operator on attribute
// lists (used by the cross product rewrite rule R4).
func (s Schema) Concat(o Schema) Schema {
	attrs := make([]Attr, 0, len(s.Attrs)+len(o.Attrs))
	attrs = append(attrs, s.Attrs...)
	attrs = append(attrs, o.Attrs...)
	return Schema{Attrs: attrs}
}

// WithQual returns a copy of the schema with every attribute re-qualified,
// implementing relation aliasing (FROM R AS x).
func (s Schema) WithQual(qual string) Schema {
	attrs := make([]Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		attrs[i] = Attr{Qual: qual, Name: a.Name}
	}
	return Schema{Attrs: attrs}
}

// IndexOf resolves a possibly-qualified attribute reference to a position.
// A reference with an empty qualifier matches any attribute with the name;
// resolution fails if no attribute matches or more than one does.
func (s Schema) IndexOf(qual, name string) (int, error) {
	found := -1
	for i, a := range s.Attrs {
		if a.Name != name {
			continue
		}
		if qual != "" && a.Qual != qual {
			continue
		}
		if found >= 0 {
			ref := name
			if qual != "" {
				ref = qual + "." + name
			}
			return -1, fmt.Errorf("schema: ambiguous attribute reference %q in %s", ref, s)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if qual != "" {
			ref = qual + "." + name
		}
		return -1, fmt.Errorf("schema: unknown attribute %q in %s", ref, s)
	}
	return found, nil
}

// Lookup resolves a reference without constructing errors: idx is -1 when
// the name is absent; ambiguous reports a non-unique match. The evaluator
// uses Lookup to walk correlation scopes (absent in the inner scope means
// "try the enclosing query", which must not be an error).
func (s Schema) Lookup(qual, name string) (idx int, ambiguous bool) {
	idx = -1
	for i, a := range s.Attrs {
		if a.Name != name {
			continue
		}
		if qual != "" && a.Qual != qual {
			continue
		}
		if idx >= 0 {
			return -1, true
		}
		idx = i
	}
	return idx, false
}

// Has reports whether the reference resolves uniquely in the schema.
func (s Schema) Has(qual, name string) bool {
	_, err := s.IndexOf(qual, name)
	return err == nil
}

// ProvPrefix is the prefix of provenance attribute names. The paper uses the
// shorthand "p" for its examples; the implementation uses "prov_" plus the
// originating relation, matching the Perm system's naming scheme.
const ProvPrefix = "prov_"

// ProvAttr returns the provenance attribute name P(rel.attr) for one source
// attribute, e.g. ProvAttr("r", "a") = "prov_r_a".
func ProvAttr(rel, attr string) string {
	return ProvPrefix + strings.ToLower(rel) + "_" + strings.ToLower(attr)
}

// ProvSchema returns P(R): a unique renaming of all attributes of a base
// relation rel with schema s. disamb distinguishes multiple references to
// the same relation within one query (the paper treats those as different
// relations); disamb 0 yields plain names, n>0 appends "_n".
func ProvSchema(rel string, s Schema, disamb int) Schema {
	suffix := ""
	if disamb > 0 {
		suffix = fmt.Sprintf("_%d", disamb)
	}
	attrs := make([]Attr, len(s.Attrs))
	for i, a := range s.Attrs {
		attrs[i] = Attr{Name: ProvAttr(rel+suffix, a.Name)}
	}
	return Schema{Attrs: attrs}
}

// IsProvAttr reports whether an attribute name is a provenance attribute.
func IsProvAttr(name string) bool { return strings.HasPrefix(name, ProvPrefix) }

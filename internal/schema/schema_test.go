package schema

import (
	"strings"
	"testing"
)

func TestIndexOfResolution(t *testing.T) {
	s := Schema{Attrs: []Attr{{Qual: "r", Name: "a"}, {Qual: "r", Name: "b"}, {Qual: "s", Name: "c"}}}
	if i, err := s.IndexOf("", "b"); err != nil || i != 1 {
		t.Errorf("b resolved to %d, %v", i, err)
	}
	if i, err := s.IndexOf("s", "c"); err != nil || i != 2 {
		t.Errorf("s.c resolved to %d, %v", i, err)
	}
	if _, err := s.IndexOf("r", "c"); err == nil {
		t.Error("r.c should not resolve")
	}
	if _, err := s.IndexOf("", "zz"); err == nil {
		t.Error("zz should not resolve")
	}
}

func TestIndexOfAmbiguity(t *testing.T) {
	s := Schema{Attrs: []Attr{{Qual: "r", Name: "a"}, {Qual: "s", Name: "a"}}}
	if _, err := s.IndexOf("", "a"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified a should be ambiguous, got %v", err)
	}
	if i, err := s.IndexOf("s", "a"); err != nil || i != 1 {
		t.Errorf("s.a should resolve to 1, got %d, %v", i, err)
	}
}

func TestConcatAndWithQual(t *testing.T) {
	a := New("r", "x", "y")
	b := New("s", "z")
	c := a.Concat(b)
	if c.Len() != 3 || c.Attrs[2].Qual != "s" {
		t.Errorf("concat wrong: %s", c)
	}
	q := c.WithQual("t")
	for _, at := range q.Attrs {
		if at.Qual != "t" {
			t.Errorf("requalify missed %s", at)
		}
	}
	// Originals untouched.
	if a.Attrs[0].Qual != "r" {
		t.Error("WithQual mutated the source schema")
	}
}

func TestProvNaming(t *testing.T) {
	if got := ProvAttr("R", "A"); got != "prov_r_a" {
		t.Errorf("ProvAttr = %q", got)
	}
	s := New("r", "a", "b")
	p := ProvSchema("r", s, 0)
	if p.Attrs[0].Name != "prov_r_a" || p.Attrs[1].Name != "prov_r_b" {
		t.Errorf("ProvSchema = %s", p)
	}
	p1 := ProvSchema("r", s, 1)
	if p1.Attrs[0].Name != "prov_r_1_a" {
		t.Errorf("disambiguated ProvSchema = %s", p1)
	}
	if !IsProvAttr("prov_r_a") || IsProvAttr("a") {
		t.Error("IsProvAttr misclassifies")
	}
}

func TestLookupAgreesWithIndexOfProperty(t *testing.T) {
	// Lookup and IndexOf must agree on every (qual, name) over a schema
	// with deliberate duplicates and shadowing.
	s := Schema{Attrs: []Attr{
		{Qual: "r", Name: "a"}, {Qual: "s", Name: "a"}, {Qual: "r", Name: "b"},
	}}
	quals := []string{"", "r", "s", "t"}
	names := []string{"a", "b", "c"}
	for _, q := range quals {
		for _, n := range names {
			idx, amb := s.Lookup(q, n)
			got, err := s.IndexOf(q, n)
			switch {
			case amb:
				if err == nil {
					t.Errorf("Lookup(%q,%q) ambiguous but IndexOf succeeded", q, n)
				}
			case idx < 0:
				if err == nil {
					t.Errorf("Lookup(%q,%q) absent but IndexOf succeeded", q, n)
				}
			default:
				if err != nil || got != idx {
					t.Errorf("Lookup(%q,%q)=%d but IndexOf=%d,%v", q, n, idx, got, err)
				}
			}
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := Schema{Attrs: []Attr{{Name: "a"}, {Qual: "r", Name: "b"}}}
	if got := s.String(); got != "(a, r.b)" {
		t.Errorf("String = %q", got)
	}
}

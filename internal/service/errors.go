package service

import (
	"context"
	"errors"
	"net/http"
	"regexp"
	"strconv"
	"strings"

	"perm/internal/eval"
	"perm/internal/rewrite"
	"perm/internal/types"
)

// ErrorJSON is the error body of every failed request. Class is stable
// across releases (tests and permload key on it); Message is the engine's
// error text verbatim, so differential replays can compare it with direct
// library execution; Position, when present, is the 1-based byte position
// the compiler reported.
type ErrorJSON struct {
	Class    string `json:"class"`
	Message  string `json:"message"`
	Position int    `json:"position,omitempty"`
}

// ErrorBody is the top-level JSON shape of a failed request.
type ErrorBody struct {
	Error ErrorJSON `json:"error"`
}

// Error classes.
const (
	ClassCompile  = "compile"   // parse / semantic analysis / translation ("sql:" errors)
	ClassRewrite  = "rewrite"   // provenance strategy not applicable
	ClassRuntime  = "runtime"   // evaluation errors: division by zero, overflow
	ClassPlan     = "plancheck" // strict plan verification found a structural violation
	ClassCatalog  = "catalog"   // unknown relation at execution time
	ClassRequest  = "request"   // malformed request: bad JSON, unknown strategy/mode
	ClassStmt     = "statement" // statement-level errors from the perm layer
	ClassTimeout  = "timeout"   // request deadline expired
	ClassCanceled = "canceled"  // client went away
	ClassBudget   = "budget"    // row budget exceeded
	ClassOverload = "overload"  // admission control shed this request
	ClassDraining = "draining"  // server is shutting down
	ClassInternal = "internal"
)

var positionRE = regexp.MustCompile(`position (-?\d+)`)

// classify maps an engine error onto (error class, source position, HTTP
// status). ctx is the request context: a deadline that expired while the
// query ran turns the evaluator's generic cancellation into class
// "timeout".
func classify(ctx context.Context, err error) (ErrorJSON, int) {
	msg := err.Error()
	out := ErrorJSON{Message: msg}
	switch {
	case errors.Is(err, eval.ErrCanceled):
		if ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			out.Class = ClassTimeout
			return out, http.StatusGatewayTimeout
		}
		out.Class = ClassCanceled
		// 499 is the de-facto "client closed request" status.
		return out, 499
	case errors.Is(err, eval.ErrBudget):
		out.Class = ClassBudget
		return out, http.StatusBadRequest
	case errors.Is(err, rewrite.ErrNotApplicable):
		out.Class = ClassRewrite
		return out, http.StatusBadRequest
	case errors.Is(err, types.ErrDivisionByZero), errors.Is(err, types.ErrNumericOutOfRange):
		out.Class = ClassRuntime
		return out, http.StatusBadRequest
	case strings.HasPrefix(msg, "sql:"):
		out.Class = ClassCompile
		if m := positionRE.FindStringSubmatch(msg); m != nil {
			if p, err := strconv.Atoi(m[1]); err == nil {
				out.Position = p
			}
		}
		return out, http.StatusBadRequest
	case strings.HasPrefix(msg, "plancheck:"):
		// A strict-mode verifier failure is an engine defect surfaced by the
		// request, not the client's fault.
		out.Class = ClassPlan
		return out, http.StatusInternalServerError
	case strings.HasPrefix(msg, "catalog:"):
		out.Class = ClassCatalog
		return out, http.StatusBadRequest
	case strings.HasPrefix(msg, "perm:"):
		out.Class = ClassStmt
		return out, http.StatusBadRequest
	case strings.HasPrefix(msg, "types:"):
		out.Class = ClassRuntime
		return out, http.StatusBadRequest
	default:
		out.Class = ClassInternal
		return out, http.StatusInternalServerError
	}
}

// Package service wraps the perm engine in a production-shaped HTTP/JSON
// server: the network surface of the reproduction's "serve heavy
// concurrent traffic" direction. cmd/permd is the binary; cmd/permload is
// the matching load generator.
//
// # Endpoints
//
//	POST /query    run a statement (plain or SELECT PROVENANCE) and return rows
//	POST /exec     run DDL/DML: CREATE TABLE/VIEW, INSERT, DROP (queries work too)
//	POST /advise   rank the provenance rewrite strategies for a query
//	GET  /healthz  liveness (503 while draining)
//	GET  /stats    per-endpoint request counts, in-flight gauge, latency histograms
//
// Request options (strategy, parallelism, executor mode, timeout) travel
// per request; see the request types in handlers.go for the JSON shapes.
//
// # Sessions and snapshots
//
// Every request may name a session. Sessions are created on first use and
// hold a copy-on-write catalog overlay (catalog.Overlay) plus a session
// views layer above the server's shared base catalog: session DDL shadows
// the base without mutating it, so sessions never observe each other's
// tables or views, while all of them share one copy of the base data.
// Each statement — DDL or query — executes against one immutable snapshot
// of (base + session layer). A long-running provenance query therefore
// never blocks concurrent DDL, is never torn by it, and two sessions can
// CREATE/INSERT/DROP the same names freely. A request without a session
// name runs against a one-shot private session over the base.
//
// # Cancellation and admission
//
// Every query runs under a context.Context assembled from the client
// connection (disconnect aborts evaluation), the server default timeout,
// and the request's timeout_ms (capped by the server maximum). The
// deadline propagates into both executors' row loops via the evaluator's
// cancellation checkpoints — stream emit, breaker fills, worker sinks — so
// provenance rewrites that multiply scan counts (the paper's Gen strategy)
// stop promptly and release their worker-pool slots. Expired requests
// report error class "timeout" over JSON.
//
// Admission control sheds load instead of queueing unboundedly: at most
// MaxConcurrent statements execute at once, and requests beyond that are
// rejected with 429 and a Retry-After header. During shutdown the server
// drains: admitted requests complete (no dropped responses), new work is
// rejected with 503, and Shutdown returns when the last in-flight request
// finishes or its drain deadline expires.
package service

package service

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSessionIsolation interleaves DDL and provenance queries
// from many goroutines: every goroutine owns one private session and all
// of them share one more. Session tables must never leak across sessions
// and base-table queries must stay undisturbed throughout. Run with -race.
func TestConcurrentSessionIsolation(t *testing.T) {
	_, ts := newGoldenServer(t, Config{MaxConcurrent: 64})
	const workers = 8
	const rounds = 12

	var wg sync.WaitGroup
	errc := make(chan error, workers*4)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			own := fmt.Sprintf("sess-%d", i)
			table := fmt.Sprintf("w%d", i)
			status, out := post(t, ts.URL+"/exec", map[string]any{
				"session": own, "statement": fmt.Sprintf("CREATE TABLE %s (a int)", table)})
			if status != 200 {
				report("create %s: status %d (%+v)", table, status, out.Error)
				return
			}
			status, out = post(t, ts.URL+"/exec", map[string]any{
				"session": own, "statement": fmt.Sprintf("INSERT INTO %s VALUES (%d), (%d)", table, i, i)})
			if status != 200 {
				report("insert %s: status %d (%+v)", table, status, out.Error)
				return
			}
			shared := fmt.Sprintf("sh%d", i)
			post(t, ts.URL+"/exec", map[string]any{
				"session": "shared", "statement": fmt.Sprintf("CREATE TABLE %s (a int)", shared)})
			for r := 0; r < rounds; r++ {
				// Own session sees exactly its own rows, with provenance.
				status, out := post(t, ts.URL+"/query", map[string]any{
					"session": own, "query": fmt.Sprintf("SELECT PROVENANCE a FROM %s", table)})
				if status != 200 {
					report("round %d: own query status %d (%+v)", r, status, out.Error)
					return
				}
				want := fmt.Sprintf("%d %d; %d %d", i, i, i, i)
				if got := renderRows(out.Rows); got != want {
					report("round %d: own rows %q, want %q", r, got, want)
					return
				}
				// The neighbour's private table must be invisible here.
				other := fmt.Sprintf("w%d", (i+1)%workers)
				status, out = post(t, ts.URL+"/query", map[string]any{
					"session": own, "query": "SELECT a FROM " + other})
				if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
					report("round %d: session %s can see %s (status %d, %+v)", r, own, other, status, out.Error)
					return
				}
				// The shared base table reads the same from every session.
				status, out = post(t, ts.URL+"/query", map[string]any{
					"session": own, "query": "SELECT a FROM t1 ORDER BY 1"})
				if status != 200 || renderRows(out.Rows) != "1; 2; 3" {
					report("round %d: base table read broke: status %d rows %q", r, status, renderRows(out.Rows))
					return
				}
				// DDL churn on the shared session while queries run.
				post(t, ts.URL+"/exec", map[string]any{
					"session": "shared", "statement": fmt.Sprintf("INSERT INTO %s VALUES (%d)", shared, r)})
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the dust settles: the shared session sees every shared table,
	// a fresh session sees none of them.
	for i := 0; i < workers; i++ {
		shared := fmt.Sprintf("sh%d", i)
		status, out := post(t, ts.URL+"/query", map[string]any{
			"session": "shared", "query": "SELECT a FROM " + shared})
		if status != 200 {
			t.Errorf("shared session lost %s: status %d (%+v)", shared, status, out.Error)
		}
		if len(out.Rows) != rounds*1 {
			t.Errorf("shared table %s has %d rows, want %d", shared, len(out.Rows), rounds)
		}
		status, out = post(t, ts.URL+"/query", map[string]any{
			"session": "fresh", "query": "SELECT a FROM " + shared})
		if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
			t.Errorf("fresh session can see %s: status %d (%+v)", shared, status, out.Error)
		}
	}
}

// TestRequestTimeoutCancelsQuery is the acceptance scenario: a 50ms
// request timeout on the 400×400 synthetic workload under the Gen
// strategy (~seconds unconstrained) must come back as a timeout error
// within 200ms, release its worker-pool slot, and leak no goroutines.
func TestRequestTimeoutCancelsQuery(t *testing.T) {
	_, ts, wl := newSynthServer(t, 400, 20, Config{MaxConcurrent: 2})
	q := "SELECT PROVENANCE " + strings.TrimPrefix(wl.Q3(0), "SELECT ")

	// Warm up the HTTP client/server goroutine population before taking
	// the baseline, so keep-alive conns don't count as leaks.
	post(t, ts.URL+"/query", map[string]any{"query": "SELECT a FROM r1 WHERE a = 0 AND b = -1"})
	before := runtime.NumGoroutine()

	start := time.Now()
	status, out := post(t, ts.URL+"/query", map[string]any{
		"query": q, "strategy": "Gen", "timeout_ms": 50})
	elapsed := time.Since(start)
	if status != 504 || out.Error == nil || out.Error.Class != ClassTimeout {
		t.Fatalf("status = %d, error = %+v, want 504 class timeout", status, out.Error)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("timeout response took %v, want < 200ms", elapsed)
	}

	// The limiter slot must be free again: with MaxConcurrent=2, two
	// concurrent quick queries succeed only if the timed-out query
	// released its token.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, out := post(t, ts.URL+"/query", map[string]any{"query": "SELECT a FROM r1 WHERE b = 0"})
			if status != 200 {
				t.Errorf("post-timeout query: status %d (%+v)", status, out.Error)
			}
		}()
	}
	wg.Wait()

	// No goroutine leak: the evaluator and worker pool wind down. Allow
	// brief scheduling slack plus a small tolerance for idle HTTP conns.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d now=%d — leak after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOverloadShedding: more simultaneous statements than MaxConcurrent
// get 429 + Retry-After instead of queueing.
func TestOverloadShedding(t *testing.T) {
	s, ts, wl := newSynthServer(t, 200, 10, Config{MaxConcurrent: 1})
	q := "SELECT PROVENANCE " + strings.TrimPrefix(wl.Q3(0), "SELECT ")

	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL+"/query", map[string]any{"query": q, "strategy": "Gen"})
		done <- status
	}()
	// Wait until the slow query holds the only slot.
	waitUntil(t, 2*time.Second, func() bool { return s.inFlightN.Load() == 1 })

	status, out := post(t, ts.URL+"/query", map[string]any{"query": "SELECT a FROM r1 WHERE b = 0"})
	if status != 429 || out.Error == nil || out.Error.Class != ClassOverload {
		t.Fatalf("shed request: status = %d, error = %+v, want 429 class overload", status, out.Error)
	}
	if status := <-done; status != 200 {
		t.Fatalf("slow query finished with status %d", status)
	}
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package service

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perm/internal/fuzz"
)

// TestCorpusOverHTTP replays the checked-in fuzz corpus through the HTTP
// service and demands row-for-row equality with direct library execution
// over the same seed. Files annotated "-- expect-error:" must fail over
// JSON with the same error class and the engine's message verbatim.
func TestCorpusOverHTTP(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "fuzz", "testdata", "fuzz-corpus", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fuzz corpus found: %v", err)
	}
	direct := fuzz.NewDB(1)
	s := New(Config{DB: fuzz.NewDB(1)})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			query, expectErr := parseCorpus(string(raw))
			if query == "" {
				t.Fatalf("%s contains no SQL", file)
			}
			queries := []string{query}
			upper := strings.ToUpper(query)
			if expectErr == "" && strings.HasPrefix(query, "SELECT ") &&
				!strings.Contains(upper, "LIMIT") && !strings.Contains(upper, "OFFSET") {
				queries = append(queries, "SELECT PROVENANCE "+strings.TrimPrefix(query, "SELECT "))
			}
			for _, q := range queries {
				status, out := post(t, ts.URL+"/query", map[string]any{"query": q})
				want, wantErr := direct.Query(q)
				if wantErr != nil {
					if status == 200 || out.Error == nil {
						t.Fatalf("library errored (%v) but service returned %d\n%s", wantErr, status, q)
					}
					if out.Error.Message != wantErr.Error() {
						t.Fatalf("error text diverged:\nservice: %s\nlibrary: %s\n%s", out.Error.Message, wantErr, q)
					}
					wantBody, _ := classify(nil, wantErr)
					if out.Error.Class != wantBody.Class {
						t.Fatalf("error class diverged: service %s, library %s\n%s", out.Error.Class, wantBody.Class, q)
					}
					if expectErr != "" && !strings.Contains(out.Error.Message, expectErr) {
						t.Fatalf("error %q does not contain %q", out.Error.Message, expectErr)
					}
					continue
				}
				if expectErr != "" {
					t.Fatalf("expected an error containing %q, got success over both paths\n%s", expectErr, q)
				}
				if status != 200 {
					t.Fatalf("service status %d (%+v) but library succeeded\n%s", status, out.Error, q)
				}
				if msg := sameResult(want, out); msg != "" {
					t.Fatalf("%s\n%s", msg, q)
				}
			}
		})
	}
}

// parseCorpus extracts the SQL text and the optional expect-error
// annotation from one corpus file (same format as internal/fuzz).
func parseCorpus(raw string) (query, expectErr string) {
	var sqlLines []string
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(trimmed, "-- expect-error:"); ok {
			expectErr = strings.TrimSpace(rest)
			continue
		}
		if strings.HasPrefix(trimmed, "--") || trimmed == "" {
			continue
		}
		sqlLines = append(sqlLines, trimmed)
	}
	return strings.Join(sqlLines, " "), expectErr
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"perm"
)

// maxBodyBytes bounds request bodies; queries are text, not bulk data.
const maxBodyBytes = 1 << 20

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Session names the session scope; empty runs against a one-shot
	// private session over the base catalog.
	Session string `json:"session,omitempty"`
	// Query is the SQL text (plain or SELECT PROVENANCE).
	Query string `json:"query"`
	// Strategy selects the provenance rewrite strategy: Gen, Left, Move,
	// Unn, UnnX or Auto (default).
	Strategy string `json:"strategy,omitempty"`
	// Parallelism is the per-query worker count (capped by the server).
	Parallelism int `json:"parallelism,omitempty"`
	// Mode selects the executor: "stream" (default) or "materialize".
	Mode string `json:"mode,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped by the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ProvGroupJSON mirrors perm.ProvGroup.
type ProvGroupJSON struct {
	Relation string   `json:"relation"`
	Columns  []string `json:"columns"`
}

// QueryResponse is the success body of POST /query (and of POST /exec when
// the statement was a query).
type QueryResponse struct {
	Columns     []string        `json:"columns"`
	Rows        [][]any         `json:"rows"`
	DataColumns int             `json:"data_columns"`
	Provenance  []ProvGroupJSON `json:"provenance,omitempty"`
	PeakRows    int64           `json:"peak_rows"`
	ElapsedMS   float64         `json:"elapsed_ms"`
}

// ExecRequest is the body of POST /exec.
type ExecRequest struct {
	Session   string `json:"session,omitempty"`
	Statement string `json:"statement"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExecResponse is the success body of POST /exec.
type ExecResponse struct {
	OK bool `json:"ok"`
	// Result carries the rows when the statement was a query.
	Result *QueryResponse `json:"result,omitempty"`
}

// AdviseRequest is the body of POST /advise.
type AdviseRequest struct {
	Session string `json:"session,omitempty"`
	// Query is the plain query (no PROVENANCE keyword) to rank strategies
	// for.
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// AdviceJSON mirrors perm.StrategyAdvice.
type AdviceJSON struct {
	Strategy   string  `json:"strategy"`
	Applicable bool    `json:"applicable"`
	Cost       float64 `json:"cost"`
	Reason     string  `json:"reason"`
}

// AdviseResponse is the success body of POST /advise, ranked best-first.
type AdviseResponse struct {
	Advice []AdviceJSON `json:"advice"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(ctx context.Context, w http.ResponseWriter, err error) {
	body, status := classify(ctx, err)
	writeJSON(w, status, ErrorBody{body})
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{ErrorJSON{
			Class:   ClassRequest,
			Message: "service: malformed request body: " + err.Error(),
		}})
		return false
	}
	return true
}

var strategies = map[string]perm.Strategy{
	"":    perm.Auto,
	"Gen": perm.Gen, "Left": perm.Left, "Move": perm.Move,
	"Unn": perm.Unn, "UnnX": perm.UnnX, "Auto": perm.Auto,
}

// queryOptions validates the per-request knobs and builds the perm
// options. A nil error slice return means the request was rejected and a
// response written.
func (s *Server) queryOptions(w http.ResponseWriter, strategy, mode string, parallelism int) ([]perm.Option, bool) {
	strat, ok := strategies[strategy]
	if !ok {
		writeJSON(w, http.StatusBadRequest, ErrorBody{ErrorJSON{
			Class:   ClassRequest,
			Message: fmt.Sprintf("service: unknown strategy %q (want Gen, Left, Move, Unn, UnnX or Auto)", strategy),
		}})
		return nil, false
	}
	opts := []perm.Option{perm.WithStrategy(strat)}
	if s.cfg.PlanCheck != perm.PlanCheckOff {
		opts = append(opts, perm.WithPlanCheck(s.cfg.PlanCheck))
	}
	switch mode {
	case "", "stream":
	case "materialize", "mat":
		opts = append(opts, perm.WithoutStreaming())
	default:
		writeJSON(w, http.StatusBadRequest, ErrorBody{ErrorJSON{
			Class:   ClassRequest,
			Message: fmt.Sprintf("service: unknown executor mode %q (want stream or materialize)", mode),
		}})
		return nil, false
	}
	if parallelism > s.cfg.MaxParallelism {
		parallelism = s.cfg.MaxParallelism
	}
	if parallelism > 1 {
		opts = append(opts, perm.WithParallelism(parallelism))
	}
	return opts, true
}

func resultJSON(res *perm.Result, elapsed time.Duration) *QueryResponse {
	out := &QueryResponse{
		Columns:     res.Columns,
		Rows:        res.Rows,
		DataColumns: res.DataColumns,
		PeakRows:    res.PeakRows,
		ElapsedMS:   round3(float64(elapsed) / float64(time.Millisecond)),
	}
	if out.Rows == nil {
		out.Rows = [][]any{}
	}
	for _, g := range res.Provenance {
		out.Provenance = append(out.Provenance, ProvGroupJSON{Relation: g.Relation, Columns: g.Columns})
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	opts, ok := s.queryOptions(w, req.Strategy, req.Mode, req.Parallelism)
	if !ok {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.queryStats.inFlight.Add(1)
	defer s.queryStats.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	start := time.Now()
	res, err := s.session(req.Session).QueryContext(ctx, req.Query, opts...)
	elapsed := time.Since(start)
	if err != nil {
		s.queryStats.observe(elapsed, true, 0)
		writeError(ctx, w, err)
		return
	}
	s.queryStats.observe(elapsed, false, res.PeakRows)
	writeJSON(w, http.StatusOK, resultJSON(res, elapsed))
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req ExecRequest
	if !decodeBody(w, r, &req) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.execStats.inFlight.Add(1)
	defer s.execStats.inFlight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	start := time.Now()
	res, err := s.session(req.Session).ExecContext(ctx, req.Statement)
	elapsed := time.Since(start)
	if err != nil {
		s.execStats.observe(elapsed, true, 0)
		writeError(ctx, w, err)
		return
	}
	resp := ExecResponse{OK: true}
	var peak int64
	if res != nil {
		resp.Result = resultJSON(res, elapsed)
		peak = res.PeakRows
	}
	s.execStats.observe(elapsed, false, peak)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	s.adviseStats.inFlight.Add(1)
	defer s.adviseStats.inFlight.Add(-1)

	start := time.Now()
	advice, err := s.session(req.Session).Advise(req.Query)
	elapsed := time.Since(start)
	if err != nil {
		s.adviseStats.observe(elapsed, true, 0)
		writeError(r.Context(), w, err)
		return
	}
	s.adviseStats.observe(elapsed, false, 0)
	out := AdviseResponse{Advice: []AdviceJSON{}}
	for _, a := range advice {
		out.Advice = append(out.Advice, AdviceJSON{
			Strategy:   string(a.Strategy),
			Applicable: a.Applicable,
			Cost:       a.Cost,
			Reason:     a.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
	Sessions int    `json:"sessions"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", InFlight: s.inFlightN.Load(), Sessions: s.SessionCount()}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeS   float64                 `json:"uptime_s"`
	Sessions  int                     `json:"sessions"`
	InFlight  int64                   `json:"in_flight"`
	Draining  bool                    `json:"draining,omitempty"`
	Endpoints map[string]EndpointJSON `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS:  round3(time.Since(s.start).Seconds()),
		Sessions: s.SessionCount(),
		InFlight: s.inFlightN.Load(),
		Draining: s.draining.Load(),
		Endpoints: map[string]EndpointJSON{
			"query":  s.queryStats.json(),
			"exec":   s.execStats.json(),
			"advise": s.adviseStats.json(),
		},
	})
}

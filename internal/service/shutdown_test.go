package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrains: Shutdown lets an admitted slow query run to
// completion and deliver its full response, while new statement requests
// are rejected with 503 and healthz flips to draining.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts, wl := newSynthServer(t, 200, 10, Config{})
	slow := "SELECT PROVENANCE " + strings.TrimPrefix(wl.Q3(0), "SELECT ")

	type result struct {
		status int
		out    reply
	}
	resc := make(chan result, 1)
	go func() {
		status, out := post(t, ts.URL+"/query", map[string]any{"query": slow, "strategy": "Gen"})
		resc <- result{status, out}
	}()
	waitUntil(t, 2*time.Second, func() bool { return s.inFlightN.Load() == 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	waitUntil(t, 2*time.Second, func() bool { return s.Draining() })

	// New statement work is rejected while the drain runs.
	status, out := post(t, ts.URL+"/query", map[string]any{"query": "SELECT a FROM r1 WHERE b = 0"})
	if status != 503 || out.Error == nil || out.Error.Class != ClassDraining {
		t.Fatalf("during drain: status = %d, error = %+v, want 503 class draining", status, out.Error)
	}
	status, out = post(t, ts.URL+"/exec", map[string]any{"statement": "CREATE TABLE d (a int)"})
	if status != 503 || out.Error == nil || out.Error.Class != ClassDraining {
		t.Fatalf("exec during drain: status = %d, error = %+v", status, out.Error)
	}

	// Health reports draining with 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || health.Status != "draining" {
		t.Fatalf("healthz during drain = %d %+v", resp.StatusCode, health)
	}

	// The in-flight query still delivers its complete response: no
	// dropped responses during drain.
	r := <-resc
	if r.status != 200 {
		t.Fatalf("in-flight query during drain: status = %d (%+v)", r.status, r.out.Error)
	}
	if len(r.out.Rows) == 0 || len(r.out.Columns) == 0 {
		t.Fatalf("in-flight query returned a truncated body: %d rows, %v", len(r.out.Rows), r.out.Columns)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if n := s.inFlightN.Load(); n != 0 {
		t.Fatalf("in-flight gauge = %d after drain", n)
	}
}

// TestShutdownDeadline: a drain that cannot finish in time reports the
// context error instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	s, ts, wl := newSynthServer(t, 200, 10, Config{})
	slow := "SELECT PROVENANCE " + strings.TrimPrefix(wl.Q3(0), "SELECT ")
	done := make(chan struct{})
	go func() {
		post(t, ts.URL+"/query", map[string]any{"query": slow, "strategy": "Gen"})
		close(done)
	}()
	waitUntil(t, 2*time.Second, func() bool { return s.inFlightN.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil although a request was still in flight")
	}
	<-done
}

package service

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the histogram upper bounds, in milliseconds. The
// final implicit bucket is +Inf.
var latencyBucketsMS = [numBuckets - 1]float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// numBuckets is len(latencyBucketsMS) plus the open-ended +Inf bucket.
const numBuckets = 15

// histogram is a fixed-bucket latency histogram with lock-free recording.
type histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64 // total microseconds
	maxUS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	us := d.Microseconds()
	h.sumUS.Add(us)
	for {
		old := h.maxUS.Load()
		if us <= old || h.maxUS.CompareAndSwap(old, us) {
			break
		}
	}
}

// quantile estimates the q-quantile (0 < q < 1) from the bucket counts,
// interpolating linearly within the winning bucket. The open-ended last
// bucket reports the observed maximum.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	maxMS := float64(h.maxUS.Load()) / 1000
	var cum int64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			if i < len(latencyBucketsMS) {
				lower = latencyBucketsMS[i]
			}
			continue
		}
		if float64(cum)+float64(c) >= rank {
			upper := maxMS
			if i < len(latencyBucketsMS) {
				upper = latencyBucketsMS[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			// The estimate interpolates within the bucket; the observed
			// maximum is a hard upper bound on any quantile.
			return math.Min(lower+frac*(upper-lower), maxMS)
		}
		cum += c
		if i < len(latencyBucketsMS) {
			lower = latencyBucketsMS[i]
		}
	}
	return maxMS
}

func (h *histogram) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / float64(n) / 1000
}

// LatencyJSON is the serialized view of one histogram (milliseconds).
type LatencyJSON struct {
	P50     float64          `json:"p50_ms"`
	P90     float64          `json:"p90_ms"`
	P99     float64          `json:"p99_ms"`
	Max     float64          `json:"max_ms"`
	Mean    float64          `json:"mean_ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

func (h *histogram) json(withBuckets bool) LatencyJSON {
	out := LatencyJSON{
		P50:  round3(h.quantile(0.50)),
		P90:  round3(h.quantile(0.90)),
		P99:  round3(h.quantile(0.99)),
		Max:  round3(float64(h.maxUS.Load()) / 1000),
		Mean: round3(h.mean()),
	}
	if withBuckets {
		out.Buckets = map[string]int64{}
		for i := range h.counts {
			if c := h.counts[i].Load(); c > 0 {
				label := "+inf"
				if i < len(latencyBucketsMS) {
					label = formatBucket(latencyBucketsMS[i])
				}
				out.Buckets["le_"+label] = c
			}
		}
	}
	return out
}

func formatBucket(ms float64) string {
	if ms == math.Trunc(ms) {
		return itoa(int64(ms)) + "ms"
	}
	return itoa(int64(ms*1000)) + "us"
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// endpointStats aggregates one endpoint's counters.
type endpointStats struct {
	count    atomic.Int64
	errors   atomic.Int64
	inFlight atomic.Int64
	peakRows atomic.Int64 // max Result.PeakRows observed
	hist     histogram
}

// EndpointJSON is the serialized view of one endpoint's stats.
type EndpointJSON struct {
	Count    int64       `json:"count"`
	Errors   int64       `json:"errors"`
	InFlight int64       `json:"in_flight"`
	PeakRows int64       `json:"peak_rows_max,omitempty"`
	Latency  LatencyJSON `json:"latency"`
}

func (s *endpointStats) json() EndpointJSON {
	return EndpointJSON{
		Count:    s.count.Load(),
		Errors:   s.errors.Load(),
		InFlight: s.inFlight.Load(),
		PeakRows: s.peakRows.Load(),
		Latency:  s.hist.json(true),
	}
}

// observe records one finished request.
func (s *endpointStats) observe(d time.Duration, failed bool, peakRows int64) {
	s.count.Add(1)
	if failed {
		s.errors.Add(1)
	}
	s.hist.observe(d)
	for {
		old := s.peakRows.Load()
		if peakRows <= old || s.peakRows.CompareAndSwap(old, peakRows) {
			break
		}
	}
}

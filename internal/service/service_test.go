package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"perm"
	"perm/internal/synth"
)

// newGoldenServer builds a server over a small deterministic table
//
//	t1(a int, b string) = {(1,x), (2,y), (3,x)}
//
// unless cfg.DB is already set.
func newGoldenServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		db := perm.Open()
		if err := db.Register("t1", []string{"a", "b"}, [][]any{{1, "x"}, {2, "y"}, {3, "x"}}); err != nil {
			t.Fatal(err)
		}
		cfg.DB = db
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// newSynthServer builds a server over the synthetic workload relations
// r1, r2 (size rows each, attribute b uniform over [0, domain)).
func newSynthServer(t *testing.T, size, domain int, cfg Config) (*Server, *httptest.Server, synth.Workload) {
	t.Helper()
	db := perm.Open()
	wl := synth.Workload{InputSize: size, SublinkSize: size, Seed: 1, Domain: domain}
	cat := wl.Catalog()
	for _, name := range []string{"r1", "r2"} {
		r, err := cat.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		db.Catalog().Register(name, r)
	}
	cfg.DB = db
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, wl
}

// reply is the decoded union of every endpoint's response body.
type reply struct {
	QueryResponse
	OK     bool           `json:"ok"`
	Result *QueryResponse `json:"result"`
	Advice []AdviceJSON   `json:"advice"`
	Error  *ErrorJSON     `json:"error"`
	Status string         `json:"status"`
}

// post sends one JSON request and decodes the response (numbers kept as
// json.Number so rendering matches the library's %v output).
func post(t *testing.T, url string, body any) (int, reply) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var out reply
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("POST %s: bad response JSON: %v", url, err)
	}
	return resp.StatusCode, out
}

// renderRows renders a row set to one comparable line per row.
func renderRows(rows [][]any) string {
	var b strings.Builder
	for i, row := range rows {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, c := range row {
			if j > 0 {
				b.WriteString(" ")
			}
			b.WriteString(renderCell(c))
		}
	}
	return b.String()
}

func renderCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "∅"
	case json.Number:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

// cellEqual compares one direct-library cell with one JSON-decoded cell.
// Numbers compare numerically (JSON renders large floats differently than
// %v), everything else by rendered text.
func cellEqual(want, got any) bool {
	if want == nil || got == nil {
		return want == nil && got == nil
	}
	ws := fmt.Sprintf("%v", want)
	gs := renderCell(got)
	if ws == gs {
		return true
	}
	wf, werr := strconv.ParseFloat(ws, 64)
	gf, gerr := strconv.ParseFloat(gs, 64)
	return werr == nil && gerr == nil && wf == gf
}

// sameResult compares a direct library result with an HTTP response body
// row for row; the returned string is empty on agreement.
func sameResult(want *perm.Result, got reply) string {
	if strings.Join(want.Columns, "|") != strings.Join(got.Columns, "|") {
		return fmt.Sprintf("columns diverged: service %v, library %v", got.Columns, want.Columns)
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count diverged: service %d, library %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			return fmt.Sprintf("row %d width diverged", i)
		}
		for j := range want.Rows[i] {
			if !cellEqual(want.Rows[i][j], got.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d diverged: service %v, library %v",
					i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return ""
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	cases := []struct {
		name     string
		body     map[string]any
		status   int
		wantCols string // "|"-joined; "" skips the check
		wantRows string // renderRows form; checked when status is 200
		class    string
		position int
	}{
		{
			name:     "plain select",
			body:     map[string]any{"query": "SELECT a FROM t1 ORDER BY 1"},
			status:   200,
			wantCols: "a",
			wantRows: "1; 2; 3",
		},
		{
			name:     "expression and alias",
			body:     map[string]any{"query": "SELECT a + 1 AS next, b FROM t1 WHERE b = 'x' ORDER BY 1"},
			status:   200,
			wantCols: "next|b",
			wantRows: "2 x; 4 x",
		},
		{
			name:     "empty result keeps rows array",
			body:     map[string]any{"query": "SELECT a FROM t1 WHERE a > 99"},
			status:   200,
			wantCols: "a",
			wantRows: "",
		},
		{
			name:     "provenance column naming",
			body:     map[string]any{"query": "SELECT PROVENANCE a FROM t1 ORDER BY 1"},
			status:   200,
			wantCols: "a|prov_t1_a|prov_t1_b",
			wantRows: "1 1 x; 2 2 y; 3 3 x",
		},
		{
			name:     "explicit strategy",
			body:     map[string]any{"query": "SELECT PROVENANCE a FROM t1 ORDER BY 1", "strategy": "Gen"},
			status:   200,
			wantCols: "a|prov_t1_a|prov_t1_b",
			wantRows: "1 1 x; 2 2 y; 3 3 x",
		},
		{
			name:     "materialize mode",
			body:     map[string]any{"query": "SELECT a FROM t1 ORDER BY 1 DESC", "mode": "materialize"},
			status:   200,
			wantCols: "a",
			wantRows: "3; 2; 1",
		},
		{
			name:     "parallelism option",
			body:     map[string]any{"query": "SELECT a FROM t1 ORDER BY 1", "parallelism": 4},
			status:   200,
			wantCols: "a",
			wantRows: "1; 2; 3",
		},
		{
			name:     "unknown column",
			body:     map[string]any{"query": "SELECT bogus FROM t1"},
			status:   400,
			class:    ClassCompile,
			position: 8,
		},
		{
			name:     "syntax error",
			body:     map[string]any{"query": "SELEC 1"},
			status:   400,
			class:    ClassCompile,
			position: 1,
		},
		{
			name:   "unknown relation",
			body:   map[string]any{"query": "SELECT a FROM nope"},
			status: 400,
			class:  ClassCatalog,
		},
		{
			name:   "strategy not applicable",
			body:   map[string]any{"query": "SELECT PROVENANCE a FROM t1 WHERE a < ALL (SELECT a FROM t1)", "strategy": "Unn"},
			status: 400,
			class:  ClassRewrite,
		},
		{
			name:   "unknown strategy",
			body:   map[string]any{"query": "SELECT a FROM t1", "strategy": "Fast"},
			status: 400,
			class:  ClassRequest,
		},
		{
			name:   "unknown mode",
			body:   map[string]any{"query": "SELECT a FROM t1", "mode": "turbo"},
			status: 400,
			class:  ClassRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, out := post(t, ts.URL+"/query", tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (body error: %+v)", status, tc.status, out.Error)
			}
			if tc.status != 200 {
				if out.Error == nil {
					t.Fatal("error body missing")
				}
				if out.Error.Class != tc.class {
					t.Errorf("class = %q, want %q (message %q)", out.Error.Class, tc.class, out.Error.Message)
				}
				if tc.position != 0 && out.Error.Position != tc.position {
					t.Errorf("position = %d, want %d (message %q)", out.Error.Position, tc.position, out.Error.Message)
				}
				return
			}
			if out.Error != nil {
				t.Fatalf("unexpected error body: %+v", out.Error)
			}
			if tc.wantCols != "" && strings.Join(out.Columns, "|") != tc.wantCols {
				t.Errorf("columns = %v, want %s", out.Columns, tc.wantCols)
			}
			if got := renderRows(out.Rows); got != tc.wantRows {
				t.Errorf("rows = %q, want %q", got, tc.wantRows)
			}
			if out.Rows == nil {
				t.Error("rows array missing from response")
			}
		})
	}
}

func TestQueryProvenanceMetadata(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	status, out := post(t, ts.URL+"/query", map[string]any{"query": "SELECT PROVENANCE a FROM t1"})
	if status != 200 {
		t.Fatalf("status = %d (%+v)", status, out.Error)
	}
	if out.DataColumns != 1 {
		t.Errorf("data_columns = %d, want 1", out.DataColumns)
	}
	if len(out.Provenance) != 1 || out.Provenance[0].Relation != "t1" ||
		strings.Join(out.Provenance[0].Columns, "|") != "prov_t1_a|prov_t1_b" {
		t.Errorf("provenance groups = %+v", out.Provenance)
	}
	if out.PeakRows <= 0 {
		t.Errorf("peak_rows = %d, want > 0", out.PeakRows)
	}
}

func TestQueryMalformedBody(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out reply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || out.Error == nil || out.Error.Class != ClassRequest {
		t.Fatalf("status = %d, error = %+v, want 400 class request", resp.StatusCode, out.Error)
	}
}

func TestExecEndpointSessions(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})

	// DDL and DML in session one.
	for _, stmt := range []string{
		"CREATE TABLE w (a int, b text)",
		"INSERT INTO w VALUES (1, 'p'), (2, 'q')",
	} {
		status, out := post(t, ts.URL+"/exec", map[string]any{"session": "one", "statement": stmt})
		if status != 200 || !out.OK {
			t.Fatalf("%s: status = %d, body %+v", stmt, status, out.Error)
		}
	}

	// The session sees its table, with provenance over the session data.
	status, out := post(t, ts.URL+"/query", map[string]any{"session": "one", "query": "SELECT PROVENANCE a FROM w ORDER BY 1"})
	if status != 200 {
		t.Fatalf("query in session: status = %d (%+v)", status, out.Error)
	}
	if cols := strings.Join(out.Columns, "|"); cols != "a|prov_w_a|prov_w_b" {
		t.Errorf("columns = %s", cols)
	}
	if got := renderRows(out.Rows); got != "1 1 p; 2 2 q" {
		t.Errorf("rows = %q", got)
	}

	// A different session must not see it: no cross-session leakage.
	status, out = post(t, ts.URL+"/query", map[string]any{"session": "two", "query": "SELECT a FROM w"})
	if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
		t.Fatalf("leak check: status = %d, error = %+v, want 400 catalog", status, out.Error)
	}

	// Session one still reads the shared base table.
	status, out = post(t, ts.URL+"/query", map[string]any{"session": "one", "query": "SELECT a FROM t1 ORDER BY 1"})
	if status != 200 || renderRows(out.Rows) != "1; 2; 3" {
		t.Fatalf("base table through session: status = %d rows %q", status, renderRows(out.Rows))
	}

	// Exec of a plain query returns the rows inline.
	status, out = post(t, ts.URL+"/exec", map[string]any{"session": "one", "statement": "SELECT a FROM w ORDER BY 1 DESC"})
	if status != 200 || !out.OK || out.Result == nil {
		t.Fatalf("exec select: status = %d body %+v", status, out.Error)
	}
	if got := renderRows(out.Result.Rows); got != "2; 1" {
		t.Errorf("exec select rows = %q", got)
	}

	// Statement errors come back classified.
	status, out = post(t, ts.URL+"/exec", map[string]any{"session": "one", "statement": "INSERT INTO nope VALUES (1)"})
	if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
		t.Fatalf("insert into unknown: status = %d, error = %+v", status, out.Error)
	}

	// DROP removes the session table again.
	status, _ = post(t, ts.URL+"/exec", map[string]any{"session": "one", "statement": "DROP TABLE w"})
	if status != 200 {
		t.Fatalf("drop: status = %d", status)
	}
	status, out = post(t, ts.URL+"/query", map[string]any{"session": "one", "query": "SELECT a FROM w"})
	if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
		t.Fatalf("after drop: status = %d, error = %+v", status, out.Error)
	}
}

func TestExecCreateView(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	status, out := post(t, ts.URL+"/exec", map[string]any{"session": "v", "statement": "CREATE VIEW big AS SELECT a FROM t1 WHERE a > 1"})
	if status != 200 {
		t.Fatalf("create view: status = %d (%+v)", status, out.Error)
	}
	status, out = post(t, ts.URL+"/query", map[string]any{"session": "v", "query": "SELECT PROVENANCE a FROM big ORDER BY 1"})
	if status != 200 {
		t.Fatalf("query view: status = %d (%+v)", status, out.Error)
	}
	if got := renderRows(out.Rows); got != "2 2 y; 3 3 x" {
		t.Errorf("view provenance rows = %q", got)
	}
	// Views are session-scoped too.
	status, out = post(t, ts.URL+"/query", map[string]any{"session": "other", "query": "SELECT a FROM big"})
	if status != 400 || out.Error == nil || out.Error.Class != ClassCatalog {
		t.Fatalf("view leak check: status = %d, error = %+v", status, out.Error)
	}
}

func TestAdviseEndpoint(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	status, out := post(t, ts.URL+"/advise", map[string]any{"query": "SELECT a FROM t1 WHERE a = ANY (SELECT a FROM t1)"})
	if status != 200 {
		t.Fatalf("status = %d (%+v)", status, out.Error)
	}
	if len(out.Advice) < 4 {
		t.Fatalf("advice entries = %d, want the full strategy ranking", len(out.Advice))
	}
	if !out.Advice[0].Applicable {
		t.Errorf("best-ranked strategy %s not applicable", out.Advice[0].Strategy)
	}
	for i := 1; i < len(out.Advice); i++ {
		a, b := out.Advice[i-1], out.Advice[i]
		if a.Applicable == b.Applicable && a.Cost > b.Cost {
			t.Errorf("ranking not sorted: %s(%.1f) before %s(%.1f)", a.Strategy, a.Cost, b.Strategy, b.Cost)
		}
	}

	status, out = post(t, ts.URL+"/advise", map[string]any{"query": "SELECT bogus FROM t1"})
	if status != 400 || out.Error == nil || out.Error.Class != ClassCompile {
		t.Fatalf("advise error: status = %d, error = %+v", status, out.Error)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newGoldenServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	post(t, ts.URL+"/query", map[string]any{"query": "SELECT a FROM t1"})
	post(t, ts.URL+"/query", map[string]any{"query": "SELECT bogus FROM t1"})

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	q := stats.Endpoints["query"]
	if q.Count != 2 || q.Errors != 1 || q.InFlight != 0 {
		t.Errorf("query stats = %+v, want count 2, errors 1, in_flight 0", q)
	}
	if q.Latency.Max <= 0 {
		t.Errorf("latency histogram empty: %+v", q.Latency)
	}
	if stats.InFlight != 0 {
		t.Errorf("global in_flight = %d", stats.InFlight)
	}
}

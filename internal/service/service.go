package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"perm"
)

// Config configures a Server. The zero value of every field but DB gets a
// sensible default.
type Config struct {
	// DB is the shared base database. Its catalog is treated as immutable
	// once the server starts serving: all DDL lands in session overlays.
	DB *perm.DB

	// MaxConcurrent caps the statements executing at once across all
	// endpoints; requests beyond it are shed with 429 + Retry-After.
	// Default 4 × GOMAXPROCS.
	MaxConcurrent int

	// DefaultTimeout is the server-level per-request deadline applied when
	// a request carries no timeout_ms. Default 30s.
	DefaultTimeout time.Duration

	// MaxTimeout caps the deadline a request may ask for. Default 5m.
	MaxTimeout time.Duration

	// MaxParallelism caps the per-request worker parallelism. Default
	// GOMAXPROCS.
	MaxParallelism int

	// PlanCheck is the per-stage plan verification mode applied to every
	// statement (see perm.WithPlanCheck). Default off; strict turns a
	// structural plan violation into a request error of class "plancheck".
	PlanCheck perm.PlanCheckMode
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the HTTP query service. Create with New, mount via Handler
// (it implements http.Handler), stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	sessMu sync.Mutex
	// sessions maps session names to their engine sessions.
	// guarded-by: sessMu
	sessions map[string]*perm.Session

	// limiter is the admission semaphore: a token per executing statement.
	limiter chan struct{}

	// admission guards the draining flag against in-flight accounting:
	// handlers take the read side to (check draining, join the in-flight
	// group) atomically; Shutdown takes the write side to flip draining, so
	// after Shutdown flips it every admitted request is already counted and
	// none can be dropped.
	admission sync.RWMutex
	draining  atomic.Bool
	inflight  sync.WaitGroup
	inFlightN atomic.Int64

	start time.Time

	queryStats  endpointStats
	execStats   endpointStats
	adviseStats endpointStats
}

// New builds a Server over cfg.DB.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sessions: map[string]*perm.Session{},
		limiter:  make(chan struct{}, cfg.MaxConcurrent),
		start:    time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("POST /advise", s.handleAdvise)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// session returns the named session, creating it on first use. The empty
// name returns a fresh one-shot session (request-private scope over the
// base).
func (s *Server) session(name string) *perm.Session {
	if name == "" {
		return s.cfg.DB.NewSession()
	}
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sess, ok := s.sessions[name]
	if !ok {
		sess = s.cfg.DB.NewSession()
		s.sessions[name] = sess
	}
	return sess
}

// SessionCount reports the number of named sessions.
func (s *Server) SessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// admit performs admission control for one statement-executing request:
// reject while draining (503), shed when the concurrency limit is reached
// (429), otherwise join the in-flight group and take a limiter token.
// On success the caller must call the returned release exactly once.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	s.admission.RLock()
	if s.draining.Load() {
		s.admission.RUnlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{ErrorJSON{
			Class:   ClassDraining,
			Message: "service: server is shutting down",
		}})
		return nil, false
	}
	select {
	case s.limiter <- struct{}{}:
	default:
		s.admission.RUnlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{ErrorJSON{
			Class:   ClassOverload,
			Message: fmt.Sprintf("service: %d statements already executing; retry later", s.cfg.MaxConcurrent),
		}})
		return nil, false
	}
	s.inflight.Add(1)
	s.inFlightN.Add(1)
	s.admission.RUnlock()
	return func() {
		<-s.limiter
		s.inFlightN.Add(-1)
		s.inflight.Done()
	}, true
}

// Shutdown drains the server: new statement requests are rejected with 503
// while every already-admitted request runs to completion. It returns nil
// once the last in-flight request finished, or the context's error if the
// drain deadline expires first (in-flight queries keep their own deadlines
// and the process is expected to exit shortly after).
func (s *Server) Shutdown(ctx context.Context) error {
	s.admission.Lock()
	s.draining.Store(true)
	s.admission.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain deadline expired with %d requests in flight: %w", s.inFlightN.Load(), ctx.Err())
	}
}

// deadline resolves the effective timeout for one request.
func (s *Server) deadline(timeoutMS int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

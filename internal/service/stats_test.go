package service

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h histogram
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.quantile(q); got != 0 {
			t.Errorf("quantile(%v) of empty histogram = %v, want 0", q, got)
		}
	}
	if got := h.mean(); got != 0 {
		t.Errorf("mean of empty histogram = %v, want 0", got)
	}
	j := h.json(true)
	if j.P50 != 0 || j.P99 != 0 || j.Max != 0 || j.Mean != 0 {
		t.Errorf("json of empty histogram = %+v, want zeros", j)
	}
	if len(j.Buckets) != 0 {
		t.Errorf("empty histogram has buckets %v", j.Buckets)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h histogram
	h.observe(800 * time.Microsecond)
	j := h.json(true)
	if j.Max != 0.8 {
		t.Errorf("Max = %v, want 0.8", j.Max)
	}
	if j.Mean != 0.8 {
		t.Errorf("Mean = %v, want 0.8", j.Mean)
	}
	// With one observation every quantile is capped by the observed max.
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.quantile(q); got > 0.8 || got <= 0 {
			t.Errorf("quantile(%v) = %v, want in (0, 0.8]", q, got)
		}
	}
	// 0.8ms lands in the (0.5, 1] bucket.
	if c := j.Buckets["le_1ms"]; c != 1 {
		t.Errorf("le_1ms bucket = %d, want 1 (buckets %v)", c, j.Buckets)
	}
}

func TestHistogramBucketBoundary(t *testing.T) {
	var h histogram
	// Exactly on an upper bound: 1ms is ≤ 1, so it belongs to le_1ms, not
	// the (1, 2] bucket.
	h.observe(1 * time.Millisecond)
	j := h.json(true)
	if c := j.Buckets["le_1ms"]; c != 1 {
		t.Errorf("le_1ms bucket = %d, want 1 (buckets %v)", c, j.Buckets)
	}
	if c := j.Buckets["le_2ms"]; c != 0 {
		t.Errorf("le_2ms bucket = %d, want 0", c)
	}
	// Just past the bound rolls over.
	h.observe(1*time.Millisecond + time.Microsecond)
	if c := h.json(true).Buckets["le_2ms"]; c != 1 {
		t.Errorf("le_2ms bucket after 1.001ms = %d, want 1", c)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h histogram
	// 100 observations of 0.8ms fill the (0.5, 1] bucket. The median rank
	// is 50, half way into the bucket: lower 0.5 + 0.5·(1−0.5) = 0.75,
	// under the 0.8 max cap.
	for range 100 {
		h.observe(800 * time.Microsecond)
	}
	if got := h.quantile(0.5); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("p50 = %v, want 0.75", got)
	}
	// p99: rank 99 → 0.5 + 0.99·0.5 = 0.995, capped at the observed 0.8.
	if got := h.quantile(0.99); got != 0.8 {
		t.Errorf("p99 = %v, want capped at max 0.8", got)
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	var h histogram
	// 50 fast (0.3ms → le_500us) and 50 slow (8ms → le_10ms): the median
	// sits exactly at the first bucket's cumulative count, so it resolves
	// inside the first bucket at its upper edge.
	for range 50 {
		h.observe(300 * time.Microsecond)
	}
	for range 50 {
		h.observe(8 * time.Millisecond)
	}
	if got := h.quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5 (upper edge of the first bucket)", got)
	}
	// p90: rank 90 → 40 into the slow bucket of 50 → frac 0.8 of (5, 8],
	// using the observed max as the open upper edge... the slow bucket is
	// (5, 10] with max 8 < 10, so upper stays the bucket bound 10 and the
	// cap keeps the estimate at 8.
	if got := h.quantile(0.9); got > 8.0 || got <= 5.0 {
		t.Errorf("p90 = %v, want in (5, 8]", got)
	}
}

func TestHistogramOpenBucketUsesMax(t *testing.T) {
	var h histogram
	// Beyond the last finite bound (10s): the +Inf bucket interpolates
	// between the last finite bound and the observed maximum, so estimates
	// stay finite and capped at the max.
	h.observe(12 * time.Second)
	h.observe(15 * time.Second)
	if got := h.quantile(0.99); got <= 10000 || got > 15000 {
		t.Errorf("p99 = %v, want in (10000, 15000]", got)
	}
	if got := h.quantile(0.5); got <= 10000 || got > 15000 {
		t.Errorf("p50 = %v, want in (10000, 15000]", got)
	}
	if c := h.json(true).Buckets["le_+inf"]; c != 2 {
		t.Errorf("+inf bucket = %d, want 2", c)
	}
}

func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	var h histogram
	const writers = 4
	const perWriter = 1000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	// Readers snapshot while writers record; the race detector checks the
	// lock-free paths.
	for range 2 {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				j := h.json(true)
				if j.Max < 0 || j.P99 < 0 {
					t.Error("negative snapshot values")
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range perWriter {
				h.observe(time.Duration(w*perWriter+i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := h.count.Load(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	var bucketSum int64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != writers*perWriter {
		t.Errorf("bucket sum = %d, want %d", bucketSum, writers*perWriter)
	}
}

func TestEndpointStatsObserve(t *testing.T) {
	var s endpointStats
	s.observe(time.Millisecond, false, 10)
	s.observe(2*time.Millisecond, true, 5)
	s.observe(time.Millisecond, false, 30)
	j := s.json()
	if j.Count != 3 || j.Errors != 1 {
		t.Errorf("count/errors = %d/%d, want 3/1", j.Count, j.Errors)
	}
	if j.PeakRows != 30 {
		t.Errorf("PeakRows = %d, want the maximum 30", j.PeakRows)
	}
}

func TestFormatBucket(t *testing.T) {
	if got := formatBucket(0.5); got != "500us" {
		t.Errorf("formatBucket(0.5) = %q, want 500us", got)
	}
	if got := formatBucket(1); got != "1ms" {
		t.Errorf("formatBucket(1) = %q, want 1ms", got)
	}
	if got := formatBucket(10000); got != "10000ms" {
		t.Errorf("formatBucket(10000) = %q, want 10000ms", got)
	}
}

package plancheck

import (
	"perm/internal/algebra"
	"perm/internal/schema"
)

// ProvBlockCheck enforces the paper's rewrite invariant on rewritten plans:
// the output schema is the original data schema followed by a contiguous
// block of provenance attributes named per P(R) (§3.1), and every
// provenance column of a complete rewritten query traces — through
// pass-through projections, joins and set operations — to a scan of the
// base relation it claims to capture (or to deliberate NULL padding).
var ProvBlockCheck = &Check{
	Name: "provblock",
	Doc:  "rewritten schema = original ++ contiguous P(R) block; provenance columns trace to their base-relation scans",
	Run:  runProvBlock,
}

func runProvBlock(p *Pass) {
	if !p.Rewritten {
		return
	}
	want := p.Original
	if p.Nested && p.Input != nil {
		want = p.Input.Schema()
	}
	got := p.Plan.Schema()
	root := pathRoot(p.Plan)

	provN := 0
	for _, src := range p.Prov {
		provN += len(src.Attrs)
	}
	if got.Len() != want.Len()+provN {
		p.Reportf(root, "rewritten schema has %d attributes, want %d data + %d provenance (%s)", got.Len(), want.Len(), provN, got)
		return
	}
	for i, a := range want.Attrs {
		if g := got.Attrs[i]; g.Name != a.Name || g.Qual != a.Qual {
			p.Reportf(root, "data attribute %d is %s, want %s: the rewrite must preserve the original schema as a prefix", i, g, a)
		}
	}

	// The provenance block: contiguous, correctly named, unique.
	idx := want.Len()
	seen := map[string]string{}
	for _, src := range p.Prov {
		expect := schema.ProvSchema(src.Rel, src.Base, src.Disamb)
		if len(src.Attrs) != expect.Len() {
			p.Reportf(root, "provenance source %s (access %d) reports %d attributes, want %d (one per base column)", src.Rel, src.Disamb, len(src.Attrs), expect.Len())
		}
		for j, a := range src.Attrs {
			if j < expect.Len() && a.Name != expect.Attrs[j].Name {
				p.Reportf(root, "provenance attribute %q of %s (access %d) should be named %q per P(R)", a.Name, src.Rel, src.Disamb, expect.Attrs[j].Name)
			}
			if !schema.IsProvAttr(a.Name) {
				p.Reportf(root, "provenance attribute %q lacks the %q prefix", a.Name, schema.ProvPrefix)
			}
			if prev, dup := seen[a.Name]; dup {
				p.Reportf(root, "duplicate provenance attribute %q (from %s and %s): repeated accesses must be disambiguated", a.Name, prev, src.Rel)
			}
			seen[a.Name] = src.Rel
			if idx < got.Len() {
				if g := got.Attrs[idx]; g.Name != a.Name {
					p.Reportf(root, "schema position %d is %s, want provenance attribute %s: the provenance block must be contiguous after the data columns", idx, g, a)
				}
			}
			idx++
		}
	}

	// Origin tracing is meaningful once the whole query is rewritten;
	// intermediate rule results may still hold un-rewritten siblings.
	if p.Nested {
		return
	}
	for _, src := range p.Prov {
		for _, a := range src.Attrs {
			traceOrigin(p, p.Plan, a.Qual, a.Name, src.Rel, root)
		}
	}
}

// traceOrigin follows one provenance column down the plan. Legal flows are
// pass-through projection columns, either side of a join or cross product,
// both sides of a set operation, transparent unary operators, a scan of the
// claimed base relation, and NULL literals (padding for non-contributing
// sides). Anything else — a computed column, a flow through an aggregation,
// a scan of a different relation — is a finding.
func traceOrigin(p *Pass, op algebra.Op, qual, name, rel, path string) {
	switch o := op.(type) {
	case *algebra.Scan:
		idx, _ := o.Sch.Lookup(qual, name)
		if idx < 0 {
			p.Reportf(path, "provenance column %s vanishes: not in scan schema %s", refStr(qual, name), o.Sch)
			return
		}
		if o.Name != rel {
			p.Reportf(path, "provenance column %s traces to a scan of %q, want base relation %q", refStr(qual, name), o.Name, rel)
		}
	case *algebra.Values:
		idx, ambiguous := o.Sch.Lookup(qual, name)
		if idx < 0 || ambiguous {
			p.Reportf(path, "provenance column %s vanishes: not in literal schema %s", refStr(qual, name), o.Sch)
			return
		}
		for i, row := range o.Rows {
			if idx >= len(row) {
				continue
			}
			if c, ok := row[idx].(algebra.Const); !ok || !c.Val.IsNull() {
				p.Reportf(path, "provenance column %s is the non-NULL literal %s in row %d; provenance comes from base scans or NULL padding only", refStr(qual, name), row[idx], i)
				return
			}
		}
	case *algebra.Project:
		idx, ambiguous := o.Schema().Lookup(qual, name)
		if ambiguous {
			p.Reportf(path, "provenance column %s is ambiguous in projection output %s", refStr(qual, name), o.Schema())
			return
		}
		if idx < 0 {
			p.Reportf(path, "provenance column %s vanishes: projected away by %s", refStr(qual, name), o.Schema())
			return
		}
		switch e := o.Cols[idx].E.(type) {
		case algebra.AttrRef:
			traceOrigin(p, o.Child, e.Qual, e.Name, rel, childPath(path, 0, o.Child))
		case algebra.Const:
			if !e.Val.IsNull() {
				p.Reportf(path, "provenance column %s is the non-NULL constant %s; provenance comes from base scans or NULL padding only", refStr(qual, name), e)
			}
		default:
			p.Reportf(path, "provenance column %s is computed (%s), not passed through from a scan of %s", refStr(qual, name), o.Cols[idx].E, rel)
		}
	case *algebra.Select:
		traceOrigin(p, o.Child, qual, name, rel, childPath(path, 0, o.Child))
	case *algebra.Order:
		traceOrigin(p, o.Child, qual, name, rel, childPath(path, 0, o.Child))
	case *algebra.Limit:
		traceOrigin(p, o.Child, qual, name, rel, childPath(path, 0, o.Child))
	case *algebra.Aggregate:
		p.Reportf(path, "provenance column %s flows through an aggregation; rule R5 must re-attach provenance around the aggregate", refStr(qual, name))
	case *algebra.SetOp:
		traceOrigin(p, o.L, qual, name, rel, childPath(path, 0, o.L))
		traceOrigin(p, o.R, qual, name, rel, childPath(path, 1, o.R))
	default:
		// Binary joins: the column lives on exactly one side.
		var l, r algebra.Op
		switch j := op.(type) {
		case *algebra.Cross:
			l, r = j.L, j.R
		case *algebra.Join:
			l, r = j.L, j.R
		case *algebra.LeftJoin:
			l, r = j.L, j.R
		default:
			p.Reportf(path, "provenance column %s reaches unsupported operator %s", refStr(qual, name), algebra.OpName(op))
			return
		}
		li, lamb := l.Schema().Lookup(qual, name)
		ri, ramb := r.Schema().Lookup(qual, name)
		switch {
		case lamb || ramb || (li >= 0 && ri >= 0):
			p.Reportf(path, "provenance column %s is ambiguous across join inputs %s and %s", refStr(qual, name), l.Schema(), r.Schema())
		case li >= 0:
			traceOrigin(p, l, qual, name, rel, childPath(path, 0, l))
		case ri >= 0:
			traceOrigin(p, r, qual, name, rel, childPath(path, 1, r))
		default:
			p.Reportf(path, "provenance column %s vanishes below %s", refStr(qual, name), algebra.OpName(op))
		}
	}
}

func refStr(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

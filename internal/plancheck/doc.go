// Package plancheck is a static verifier over algebra plans, run between
// compile stages: after translation, after every rewrite-rule application
// the rewriter exposes (see rewrite.RewriteHooked), after each strategy's
// final rewritten plan, and after optimization. It is permlint one level
// down: named checks producing Diagnostic findings with plan-path
// locations, plus an advisory tier that never fails strict verification.
//
// The checks encode the structural invariants that Glavic & Alonso's
// correctness argument (EDBT 2009) relies on but that the differential
// fuzzer only observes end-to-end:
//
//   - schema — the well-formedness every stage must preserve: operator
//     output schemas derive from their children, attribute references
//     resolve uniquely against their operator's input (or an enclosing
//     correlation scope, the paper's nested-subquery binding rule),
//     set-operation inputs agree on arity, literal rows match their
//     declared schema. A violation localizes a miscompilation to the stage
//     that introduced it.
//
//   - provblock — the central rewrite invariant (§3.1, Figure 4): for every
//     rewritten plan q+, Schema(q+) = Schema(q) ++ P(R1) ++ … ++ P(Rn),
//     with each P(Ri) named prov_<rel>[_<n>]_<attr> and the block
//     contiguous after the data columns. On complete rewritten queries it
//     additionally traces every provenance column through pass-through
//     projections, joins and set operations down to a scan of the base
//     relation it claims to capture — or to the NULL padding that rules
//     for unions, outer joins and Gen's CrossBase deliberately introduce.
//     Computed provenance columns, flows through aggregations (which rule
//     R5 must route around, not through) and scans of the wrong relation
//     are findings.
//
//   - decorrelate — the soundness condition of the unnesting strategies:
//     once Unn/UnnX claim applicability, their join-based plans must be
//     closed (no free references). Complete plans at any stage must have
//     no free variables at all; intermediate rule results may keep exactly
//     the correlations their inputs already had, and nothing more.
//
//   - hygiene — structural conventions the pipeline depends on: hidden
//     ORDER-BY sort keys (the translator's ord#N columns) appear only as a
//     trailing stripped block of the data region, Limit offsets are
//     non-negative, scans carry their alias on every attribute, grouping
//     output names are unique (the PR 3 ambiguity bug, made structural),
//     and only count(*) takes no argument.
//
//   - cartesian (advisory) — missed-optimization shapes on post-optimize
//     plans: surviving cross products and collapsible pass-through
//     projection chains. Tracked by the nightly inventory, never an error.
//
// Verify runs the catalog over one StagePlan; the perm package wires it
// into the pipeline behind WithPlanCheck, and cmd/plancheck drives it over
// SQL files or the fuzz corpus with per-stage verdicts.
package plancheck

package plancheck

import (
	"perm/internal/algebra"
)

// DecorrelateCheck verifies correlation discipline: a complete plan must
// resolve every attribute reference internally (no free variables), and an
// intermediate rewrite-rule result must not introduce free references its
// input did not already have — in particular, after Unn/UnnX claim
// applicability their decorrelated join plans must be closed.
var DecorrelateCheck = &Check{
	Name: "decorrelate",
	Doc:  "complete plans have no free references; rewrite rules introduce no new correlations",
	Run:  runDecorrelate,
}

func runDecorrelate(p *Pass) {
	free := algebra.FreeVars(p.Plan)
	if len(free) == 0 {
		return
	}
	root := pathRoot(p.Plan)
	if !p.Nested {
		for _, ref := range dedupRefs(free) {
			p.Reportf(root, "free attribute reference %s: a complete plan must resolve every reference internally", ref)
		}
		return
	}
	allowed := map[algebra.AttrRef]bool{}
	if p.Input != nil {
		for _, ref := range algebra.FreeVars(p.Input) {
			allowed[ref] = true
		}
	}
	for _, ref := range dedupRefs(free) {
		if !allowed[ref] {
			p.Reportf(root, "rewrite introduced the free reference %s absent from the rule's input: a rule that claims applicability must not create new correlations", ref)
		}
	}
}

func dedupRefs(refs []algebra.AttrRef) []algebra.AttrRef {
	seen := map[algebra.AttrRef]bool{}
	var out []algebra.AttrRef
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// HygieneCheck enforces structural conventions that no single operator can
// see violated on its own: non-negative LIMIT offsets, aliased scans whose
// attributes carry the alias, aggregate argument shape, unambiguous
// grouping output names, and hidden ORDER-BY sort keys confined to a
// trailing stripped block of the top-level output.
var HygieneCheck = &Check{
	Name: "hygiene",
	Doc:  "offsets non-negative; scan aliases consistent; grouping names unique; hidden sort keys only as a trailing block",
	Run:  runHygiene,
}

func runHygiene(p *Pass) {
	walkPath(p.Plan, func(op algebra.Op, path string) bool {
		switch o := op.(type) {
		case *algebra.Limit:
			if o.Offset < 0 {
				p.Reportf(path, "negative OFFSET %d", o.Offset)
			}
		case *algebra.Scan:
			if o.Alias == "" {
				p.Reportf(path, "scan of %s carries no alias (dangling alias: attributes would be unresolvable)", o.Name)
			}
			for _, a := range o.Sch.Attrs {
				if a.Qual != o.Alias {
					p.Reportf(path, "scan attribute %s is not qualified by the scan alias %q", a, o.Alias)
					break
				}
			}
		case *algebra.Aggregate:
			seen := map[string]bool{}
			for _, g := range o.Group {
				if seen[g.As] {
					p.Reportf(path, "duplicate grouping output name %q: the post-aggregation schema would be ambiguous", g.As)
				}
				seen[g.As] = true
			}
			for _, a := range o.Aggs {
				if a.Arg == nil && a.Fn != algebra.AggCountStar {
					p.Reportf(path, "aggregate %s has no argument but is not count(*)", a.Fn)
				}
			}
		}
		return true
	})

	// Hidden sort-key columns: a trailing block of the data region of the
	// top-level output, stripped at presentation — never anywhere else in
	// the visible prefix. Intermediate rule results legitimately carry the
	// keys as ordinary data columns (Hidden is unknown mid-rewrite), so
	// only complete plans are held to the block layout.
	if p.Nested {
		return
	}
	sch := p.Plan.Schema()
	dataEnd := sch.Len()
	if p.Rewritten {
		dataEnd = p.Original.Len()
		if dataEnd > sch.Len() {
			dataEnd = sch.Len()
		}
	}
	root := pathRoot(p.Plan)
	if p.Hidden > 0 {
		if p.Hidden > dataEnd {
			p.Reportf(root, "hidden sort-key count %d exceeds the %d-column data region of %s", p.Hidden, dataEnd, sch)
			return
		}
		for i := dataEnd - p.Hidden; i < dataEnd; i++ {
			if !hiddenName(sch.Attrs[i].Name) {
				p.Reportf(root, "attribute %s at position %d sits in the hidden sort-key block but is not a generated key", sch.Attrs[i], i)
			}
		}
	}
	for i := 0; i < dataEnd-p.Hidden; i++ {
		if hiddenName(sch.Attrs[i].Name) {
			p.Reportf(root, "hidden sort-key column %s leaks into the visible output at position %d: hidden keys must form a trailing stripped block", sch.Attrs[i], i)
		}
	}
}

// CartesianCheck is the advisory tier: shapes that are legal but usually
// indicate missed optimizations — cross products surviving the optimizer
// and chains of pass-through projections. Its findings never fail strict
// verification; the nightly inventory tracks them.
var CartesianCheck = &Check{
	Name:     "cartesian",
	Doc:      "advisory: cross products surviving optimization; redundant pass-through projection chains",
	Advisory: true,
	Run:      runCartesian,
}

func runCartesian(p *Pass) {
	if p.Stage != StageOptimize {
		return
	}
	walkPath(p.Plan, func(op algebra.Op, path string) bool {
		switch o := op.(type) {
		case *algebra.Cross:
			if _, ok := o.R.(*algebra.Values); !ok {
				p.Reportf(path, "cross product survives optimization (no selection was pushed into a join)")
			}
		case *algebra.Project:
			child, ok := o.Child.(*algebra.Project)
			if ok && passThrough(o) && len(o.Cols) == len(child.Cols) {
				p.Reportf(path, "pass-through projection over a projection: the chain could collapse")
			}
		}
		return true
	})
}

// passThrough reports whether every column of the projection is a plain
// attribute reference kept under its own name.
func passThrough(p *algebra.Project) bool {
	for _, c := range p.Cols {
		a, ok := c.E.(algebra.AttrRef)
		if !ok || a.Name != c.As {
			return false
		}
	}
	return true
}

package plancheck

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/rewrite"
	"perm/internal/schema"
	"perm/internal/types"
)

// scanR builds a scan of r(a, b) under alias r.
func scanR() *algebra.Scan {
	return algebra.NewScan("r", "r", schema.New("", "a", "b"))
}

// scanS builds a scan of s(c, d) under alias s.
func scanS() *algebra.Scan {
	return algebra.NewScan("s", "s", schema.New("", "c", "d"))
}

// rewrittenR builds the canonical rewritten plan for SELECT PROVENANCE a, b
// FROM r: the data columns followed by the contiguous P(r) block, every
// provenance column passed through from the base scan.
func rewrittenR() (algebra.Op, schema.Schema, []rewrite.ProvSource) {
	scan := scanR()
	prov := schema.ProvSchema("r", scan.Sch, 0)
	plan := algebra.NewProject(scan,
		algebra.KeepAttr(scan.Sch.Attrs[0]),
		algebra.KeepAttr(scan.Sch.Attrs[1]),
		algebra.Col(algebra.AttrRef{Qual: "r", Name: "a"}, prov.Attrs[0].Name),
		algebra.Col(algebra.AttrRef{Qual: "r", Name: "b"}, prov.Attrs[1].Name),
	)
	src := []rewrite.ProvSource{{Rel: "r", Disamb: 0, Base: scan.Sch, Attrs: prov.Attrs}}
	return plan, scan.Sch, src
}

type wantDiag struct {
	check    string
	contains string
	advisory bool
}

func TestChecks(t *testing.T) {
	cases := []struct {
		name string
		sp   StagePlan
		want []wantDiag
	}{
		// --- schema ---
		{
			name: "schema/clean select",
			sp: StagePlan{Stage: StageTranslate, Plan: &algebra.Select{
				Child: scanR(),
				Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.AttrRef{Qual: "r", Name: "a"}, R: algebra.IntConst(1)},
			}},
		},
		{
			name: "schema/unresolved reference",
			sp: StagePlan{Stage: StageTranslate, Plan: &algebra.Select{
				Child: scanR(),
				Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("nosuch"), R: algebra.IntConst(1)},
			}},
			want: []wantDiag{
				{check: "schema", contains: "resolves against no input"},
				{check: "decorrelate", contains: "free attribute reference"},
			},
		},
		{
			name: "schema/setop arity mismatch",
			sp: StagePlan{Stage: StageTranslate, Plan: &algebra.SetOp{
				Kind: algebra.Union,
				L:    scanR(),
				R:    algebra.NewProject(scanS(), algebra.KeepAttr(schema.Attr{Qual: "s", Name: "c"})),
			}},
			want: []wantDiag{{check: "schema", contains: "disagree on arity"}},
		},
		{
			name: "schema/literal row width",
			sp: StagePlan{Stage: StageTranslate, Plan: &algebra.Values{
				Sch:  schema.New("", "x", "y"),
				Rows: []algebra.Row{{algebra.IntConst(1)}},
			}},
			want: []wantDiag{{check: "schema", contains: "literal row 0 has 1 expressions"}},
		},
		{
			name: "schema/empty projection",
			sp:   StagePlan{Stage: StageTranslate, Plan: algebra.NewProject(scanR())},
			want: []wantDiag{{check: "schema", contains: "no output columns"}},
		},

		// --- provblock ---
		{
			name: "provblock/clean rewrite",
			sp: func() StagePlan {
				plan, orig, prov := rewrittenR()
				return StagePlan{Stage: RewriteStage("Gen"), Plan: plan, Rewritten: true, Original: orig, Prov: prov}
			}(),
		},
		{
			name: "provblock/missing provenance column",
			sp: func() StagePlan {
				plan, orig, prov := rewrittenR()
				pr := plan.(*algebra.Project)
				pr.Cols = pr.Cols[:3] // drop prov_r_b
				return StagePlan{Stage: RewriteStage("Gen"), Plan: pr, Rewritten: true, Original: orig, Prov: prov}
			}(),
			want: []wantDiag{{check: "provblock", contains: "has 3 attributes, want 2 data + 2 provenance"}},
		},
		{
			name: "provblock/misnamed provenance attribute",
			sp: func() StagePlan {
				plan, orig, prov := rewrittenR()
				prov[0].Attrs = append([]schema.Attr(nil), prov[0].Attrs...)
				prov[0].Attrs[0].Name = "prov_x_a"
				return StagePlan{Stage: RewriteStage("Gen"), Plan: plan, Rewritten: true, Original: orig, Prov: prov}
			}(),
			want: []wantDiag{{check: "provblock", contains: `should be named "prov_r_a" per P(R)`}},
		},
		{
			name: "provblock/computed provenance column",
			sp: func() StagePlan {
				plan, orig, prov := rewrittenR()
				pr := plan.(*algebra.Project)
				pr.Cols[2].E = algebra.IntConst(7)
				return StagePlan{Stage: RewriteStage("Gen"), Plan: pr, Rewritten: true, Original: orig, Prov: prov}
			}(),
			want: []wantDiag{{check: "provblock", contains: "non-NULL constant"}},
		},
		{
			name: "provblock/wrong base relation",
			sp: func() StagePlan {
				scan := scanS()
				prov := schema.ProvSchema("r", schema.New("r", "c", "d"), 0)
				plan := algebra.NewProject(scan,
					algebra.KeepAttr(scan.Sch.Attrs[0]),
					algebra.KeepAttr(scan.Sch.Attrs[1]),
					algebra.Col(algebra.AttrRef{Qual: "s", Name: "c"}, prov.Attrs[0].Name),
					algebra.Col(algebra.AttrRef{Qual: "s", Name: "d"}, prov.Attrs[1].Name),
				)
				src := []rewrite.ProvSource{{Rel: "r", Disamb: 0, Base: schema.New("r", "c", "d"), Attrs: prov.Attrs}}
				return StagePlan{Stage: RewriteStage("Gen"), Plan: plan, Rewritten: true, Original: scan.Sch, Prov: src}
			}(),
			want: []wantDiag{{check: "provblock", contains: `traces to a scan of "s", want base relation "r"`}},
		},
		{
			name: "provblock/flows through aggregation",
			sp: func() StagePlan {
				plan, orig, prov := rewrittenR()
				agg := &algebra.Aggregate{
					Child: plan.(*algebra.Project).Child,
					Group: []algebra.GroupExpr{
						{E: algebra.AttrRef{Qual: "r", Name: "a"}, As: "a"},
						{E: algebra.AttrRef{Qual: "r", Name: "b"}, As: "b"},
					},
					Aggs: []algebra.AggExpr{},
				}
				pr := plan.(*algebra.Project)
				pr.Child = agg
				pr.Cols[0] = algebra.Col(algebra.Attr("a"), "a")
				pr.Cols[1] = algebra.Col(algebra.Attr("b"), "b")
				pr.Cols[2].E = algebra.Attr("a")
				pr.Cols[3].E = algebra.Attr("b")
				return StagePlan{Stage: RewriteStage("Gen"), Plan: pr, Rewritten: true, Original: orig, Prov: prov}
			}(),
			want: []wantDiag{{check: "provblock", contains: "flows through an aggregation"}},
		},

		// --- decorrelate ---
		{
			name: "decorrelate/nested keeps input correlations",
			sp: func() StagePlan {
				free := &algebra.Select{
					Child: scanR(),
					Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.AttrRef{Qual: "s", Name: "c"}, R: algebra.AttrRef{Qual: "r", Name: "a"}},
				}
				return StagePlan{Stage: RuleStage("R3/select"), Plan: free, Nested: true, Input: free}
			}(),
		},
		{
			name: "decorrelate/rule introduces new correlation",
			sp: StagePlan{
				Stage: RuleStage("R1/scan"),
				Plan: &algebra.Select{
					Child: scanR(),
					Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.AttrRef{Qual: "s", Name: "c"}, R: algebra.AttrRef{Qual: "r", Name: "a"}},
				},
				Nested: true,
				Input:  scanR(),
			},
			want: []wantDiag{{check: "decorrelate", contains: "rewrite introduced the free reference s.c"}},
		},

		// --- hygiene ---
		{
			name: "hygiene/clean hidden block",
			sp: func() StagePlan {
				scan := scanR()
				plan := algebra.NewProject(scan,
					algebra.KeepAttr(scan.Sch.Attrs[0]),
					algebra.Col(algebra.AttrRef{Qual: "r", Name: "b"}, "ord#1"),
				)
				return StagePlan{Stage: StageTranslate, Plan: plan, Hidden: 1}
			}(),
		},
		{
			name: "hygiene/negative offset",
			sp:   StagePlan{Stage: StageTranslate, Plan: &algebra.Limit{Child: scanR(), N: 1, Offset: -2}},
			want: []wantDiag{{check: "hygiene", contains: "negative OFFSET -2"}},
		},
		{
			name: "hygiene/dangling scan alias",
			sp:   StagePlan{Stage: StageTranslate, Plan: &algebra.Scan{Name: "r", Sch: schema.New("r", "a", "b")}},
			want: []wantDiag{
				{check: "hygiene", contains: "carries no alias"},
				{check: "hygiene", contains: "not qualified by the scan alias"},
			},
		},
		{
			name: "hygiene/duplicate grouping names",
			sp: StagePlan{Stage: StageTranslate, Plan: &algebra.Aggregate{
				Child: scanR(),
				Group: []algebra.GroupExpr{
					{E: algebra.AttrRef{Qual: "r", Name: "a"}, As: "g"},
					{E: algebra.AttrRef{Qual: "r", Name: "b"}, As: "g"},
				},
			}},
			want: []wantDiag{{check: "hygiene", contains: `duplicate grouping output name "g"`}},
		},
		{
			name: "hygiene/hidden key leaks into visible prefix",
			sp: func() StagePlan {
				scan := scanR()
				plan := algebra.NewProject(scan,
					algebra.Col(algebra.AttrRef{Qual: "r", Name: "b"}, "ord#1"),
					algebra.KeepAttr(scan.Sch.Attrs[0]),
				)
				return StagePlan{Stage: StageTranslate, Plan: plan, Hidden: 1}
			}(),
			want: []wantDiag{
				{check: "hygiene", contains: "leaks into the visible output"},
				{check: "hygiene", contains: "sits in the hidden sort-key block but is not a generated key"},
			},
		},

		// --- cartesian (advisory) ---
		{
			name: "cartesian/cross survives optimization",
			sp:   StagePlan{Stage: StageOptimize, Plan: &algebra.Cross{L: scanR(), R: scanS()}},
			want: []wantDiag{{check: "cartesian", contains: "cross product survives optimization", advisory: true}},
		},
		{
			name: "cartesian/silent outside optimize stage",
			sp:   StagePlan{Stage: StageTranslate, Plan: &algebra.Cross{L: scanR(), R: scanS()}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := Verify(tc.sp)
			for _, w := range tc.want {
				if !hasDiag(diags, w) {
					t.Errorf("missing %s finding containing %q; got %v", w.check, w.contains, diags)
				}
			}
			if len(tc.want) == 0 {
				for _, d := range diags {
					t.Errorf("unexpected finding: %s", d)
				}
			}
			for _, d := range diags {
				if d.Stage != tc.sp.Stage {
					t.Errorf("finding carries stage %q, want %q", d.Stage, tc.sp.Stage)
				}
			}
		})
	}
}

func hasDiag(diags []Diagnostic, w wantDiag) bool {
	for _, d := range diags {
		if d.Check == w.check && strings.Contains(d.Message, w.contains) && d.Advisory == w.advisory {
			return true
		}
	}
	return false
}

func TestVerifyNilPlan(t *testing.T) {
	if diags := Verify(StagePlan{Stage: StageTranslate}); diags != nil {
		t.Fatalf("nil plan produced findings: %v", diags)
	}
}

func TestHasErrors(t *testing.T) {
	adv := []Diagnostic{{Check: "cartesian", Advisory: true}}
	if HasErrors(adv) {
		t.Fatal("advisory-only findings must not count as errors")
	}
	if !HasErrors(append(adv, Diagnostic{Check: "schema"})) {
		t.Fatal("non-advisory finding must count as an error")
	}
}

func TestCheckByName(t *testing.T) {
	for _, c := range Checks() {
		got, ok := CheckByName(c.Name)
		if !ok || got != c {
			t.Fatalf("CheckByName(%q) = %v, %v", c.Name, got, ok)
		}
	}
	if _, ok := CheckByName("nosuch"); ok {
		t.Fatal("CheckByName accepted an unknown name")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Check: "schema", Stage: StageTranslate, Path: "Select/0:Scan(r)", Message: "boom"}
	if got, want := d.String(), "translate: schema at Select/0:Scan(r): boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	d.Advisory = true
	if !strings.Contains(d.String(), "[advisory]") {
		t.Fatalf("advisory diagnostic not marked: %q", d.String())
	}
}

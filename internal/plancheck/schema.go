package plancheck

import (
	"perm/internal/algebra"
	"perm/internal/schema"
)

// SchemaCheck verifies that every operator's output schema is derivable
// from its children and that every attribute reference resolves — uniquely
// — against its operator's input schema or, inside sublink queries, against
// an enclosing correlation scope. It also enforces set-operation arity and
// literal-row widths.
var SchemaCheck = &Check{
	Name: "schema",
	Doc:  "operator schemas derive from children; references resolve uniquely; set-op arity and literal-row widths match",
	Run:  runSchema,
}

func runSchema(p *Pass) {
	sc := &schemaScan{p: p}
	sc.op(p.Plan, pathRoot(p.Plan), nil)
}

type schemaScan struct {
	p *Pass
}

// op verifies one operator and recurses. scopes are the input schemas of
// the enclosing operators whose expressions the current (sublink) plan is
// nested in, innermost first.
func (sc *schemaScan) op(op algebra.Op, path string, scopes []schema.Schema) {
	switch o := op.(type) {
	case *algebra.Values:
		for i, row := range o.Rows {
			if len(row) != o.Sch.Len() {
				sc.p.Reportf(path, "literal row %d has %d expressions for a %d-attribute schema %s", i, len(row), o.Sch.Len(), o.Sch)
			}
		}
	case *algebra.SetOp:
		lw, rw := o.L.Schema().Len(), o.R.Schema().Len()
		if lw != rw {
			sc.p.Reportf(path, "%s inputs disagree on arity: %d vs %d columns (%s vs %s)", o.Kind, lw, rw, o.L.Schema(), o.R.Schema())
		}
		if lw == 0 {
			sc.p.Reportf(path, "%s over zero-column inputs", o.Kind)
		}
	case *algebra.Project:
		if len(o.Cols) == 0 {
			sc.p.Reportf(path, "projection with no output columns")
		}
	}
	in := algebra.ExprInputSchema(op)
	sub := 0
	for _, e := range algebra.OperatorExprs(op) {
		sub = sc.expr(e, path, in, scopes, sub)
	}
	for i, c := range op.Children() {
		sc.op(c, childPath(path, i, c), scopes)
	}
}

// expr resolves the references of one operator expression, descending into
// sublink queries with the operator's input pushed as a correlation scope.
// It returns the updated per-operator sublink counter.
func (sc *schemaScan) expr(e algebra.Expr, path string, in schema.Schema, scopes []schema.Schema, sub int) int {
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		switch v := x.(type) {
		case algebra.AttrRef:
			sc.resolve(v, path, in, scopes)
		case algebra.Sublink:
			inner := append([]schema.Schema{in}, scopes...)
			sc.op(v.Query, subPath(path, sub, v.Query), inner)
			sub++
			// v.Test is visited by WalkExpr itself and resolves against in.
		}
		return true
	})
	return sub
}

// resolve checks one reference against the input schema, then the enclosing
// correlation scopes innermost-first — the same search order the evaluator
// uses. An ambiguous match in the direct input is always a finding; a
// reference that matches nowhere is a finding unless the plan is a Nested
// rule result (its residual correlations are bounded by DecorrelateCheck).
func (sc *schemaScan) resolve(ref algebra.AttrRef, path string, in schema.Schema, scopes []schema.Schema) {
	idx, ambiguous := in.Lookup(ref.Qual, ref.Name)
	if ambiguous {
		sc.p.Reportf(path, "ambiguous attribute reference %s in input %s", ref, in)
		return
	}
	if idx >= 0 {
		return
	}
	for _, s := range scopes {
		idx, ambiguous = s.Lookup(ref.Qual, ref.Name)
		if idx >= 0 || ambiguous {
			return
		}
	}
	if sc.p.Nested {
		return
	}
	sc.p.Reportf(path, "attribute reference %s resolves against no input (input %s, %d enclosing scopes)", ref, in, len(scopes))
}

// Package plancheck statically verifies algebra plans between compile
// stages. See doc.go for the check catalog and the mapping to the paper's
// rewrite-rule invariants.
package plancheck

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
	"perm/internal/rewrite"
	"perm/internal/schema"
)

// Stage names for the fixed pipeline stages. Rewrite stages are derived:
// the final plan of a strategy verifies as RewriteStage(strategy), each
// intermediate rule application as RuleStage(rule).
const (
	StageTranslate = "translate"
	StageOptimize  = "optimize"
)

// RewriteStage names the stage of a strategy's final rewritten plan.
func RewriteStage(strategy string) string { return "rewrite/" + strategy }

// RuleStage names the stage of one intermediate rewrite-rule application
// (the rewriter's per-node hook emissions, e.g. "rule/R1/scan").
func RuleStage(rule string) string { return "rule/" + rule }

// Diagnostic is one finding of one check at one stage. Advisory findings
// flag suspicious-but-legal shapes and never fail strict verification.
type Diagnostic struct {
	// Check is the reporting check's name.
	Check string
	// Stage is the pipeline stage the verified plan came from.
	Stage string
	// Path addresses the offending operator from the plan root, e.g.
	// "Select/0:Cross/1:Scan(r)" (child index : operator, "sub" for
	// sublink-query descent).
	Path string
	// Message describes the violation.
	Message string
	// Advisory marks the finding as informational.
	Advisory bool
}

// String renders the diagnostic as "stage: check at path: message".
func (d Diagnostic) String() string {
	tier := ""
	if d.Advisory {
		tier = " [advisory]"
	}
	return fmt.Sprintf("%s: %s%s at %s: %s", d.Stage, d.Check, tier, d.Path, d.Message)
}

// StagePlan is one plan captured at one pipeline stage, together with the
// stage metadata the checks verify against.
type StagePlan struct {
	// Stage names the pipeline stage (StageTranslate, RuleStage(...),
	// RewriteStage(...), StageOptimize).
	Stage string
	// Plan is the plan to verify.
	Plan algebra.Op
	// Nested marks a plan that is not a complete query: an intermediate
	// rewrite-rule result that may sit under enclosing operators whose
	// schemas bind its correlated references. Reference resolution then
	// tolerates free variables already present in Input.
	Nested bool
	// Input is the pre-stage plan the stage transformed (nil when unknown).
	// For rewrite rules it is the un-rewritten operator, whose schema is the
	// data prefix the rule must preserve.
	Input algebra.Op
	// Rewritten marks a plan that has been through the provenance rewrite;
	// Original and Prov then describe the schema contract to enforce.
	Rewritten bool
	// Original is the data schema of the un-rewritten query (only
	// meaningful when Rewritten).
	Original schema.Schema
	// Prov lists the provenance sources the rewrite reported (only
	// meaningful when Rewritten).
	Prov []rewrite.ProvSource
	// Hidden counts trailing hidden sort-key columns of the data schema
	// (Translated.Hidden); zero when unknown or absent.
	Hidden int
}

// Check is one named plan verification.
type Check struct {
	// Name identifies the check in diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Advisory marks every finding of the check as advisory.
	Advisory bool
	// Run verifies the pass's plan and reports findings on it.
	Run func(*Pass)
}

// Pass carries one check's verification of one stage plan.
type Pass struct {
	StagePlan
	check *Check
	diags *[]Diagnostic
}

// Reportf records a finding at the given plan path.
func (p *Pass) Reportf(path, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.check.Name,
		Stage:    p.Stage,
		Path:     path,
		Message:  fmt.Sprintf(format, args...),
		Advisory: p.check.Advisory,
	})
}

// Checks returns the full check catalog in reporting order.
func Checks() []*Check {
	return []*Check{SchemaCheck, ProvBlockCheck, DecorrelateCheck, HygieneCheck, CartesianCheck}
}

// CheckByName resolves a check by name.
func CheckByName(name string) (*Check, bool) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Verify runs the full check catalog over one stage plan.
func Verify(sp StagePlan) []Diagnostic { return VerifyChecks(sp, Checks()...) }

// VerifyChecks runs the given checks over one stage plan.
func VerifyChecks(sp StagePlan, checks ...*Check) []Diagnostic {
	var diags []Diagnostic
	if sp.Plan == nil {
		return nil
	}
	for _, c := range checks {
		c.Run(&Pass{StagePlan: sp, check: c, diags: &diags})
	}
	return diags
}

// HasErrors reports whether any finding is non-advisory.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if !d.Advisory {
			return true
		}
	}
	return false
}

// pathRoot starts a plan path at the root operator.
func pathRoot(op algebra.Op) string { return algebra.OpName(op) }

// childPath extends a plan path into the i-th child.
func childPath(path string, i int, child algebra.Op) string {
	return fmt.Sprintf("%s/%d:%s", path, i, algebra.OpName(child))
}

// subPath extends a plan path into the i-th sublink query of an operator.
func subPath(path string, i int, query algebra.Op) string {
	return fmt.Sprintf("%s/sub%d:%s", path, i, algebra.OpName(query))
}

// walkPath visits the plan in pre-order with the path of every node,
// descending into children and into sublink queries. Return false to skip
// a node's subtree.
func walkPath(op algebra.Op, fn func(op algebra.Op, path string) bool) {
	var walk func(op algebra.Op, path string)
	walk = func(op algebra.Op, path string) {
		if op == nil || !fn(op, path) {
			return
		}
		sub := 0
		for _, e := range algebra.OperatorExprs(op) {
			algebra.WalkExpr(e, func(x algebra.Expr) bool {
				if s, ok := x.(algebra.Sublink); ok {
					walk(s.Query, subPath(path, sub, s.Query))
					sub++
				}
				return true
			})
		}
		for i, c := range op.Children() {
			walk(c, childPath(path, i, c))
		}
	}
	walk(op, pathRoot(op))
}

// hiddenName reports whether an attribute name is a translator-generated
// hidden sort-key column (freshName stem "ord"; '#' is unlexable, so the
// prefix can never collide with user identifiers).
func hiddenName(name string) bool { return strings.HasPrefix(name, "ord#") }

// The sweep lives in an external test package so it can drive the public
// perm API (DB.VerifyPlan) and the fuzz generator over the real compile
// pipeline without an import cycle.
package plancheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perm"
	"perm/internal/fuzz"
)

var sweepStrategies = []perm.Strategy{perm.Gen, perm.Left, perm.Move, perm.Unn, perm.UnnX, perm.Auto}

// sweep verifies one query (plain, and SELECT PROVENANCE under every
// strategy) at every compile stage, failing the test on any non-advisory
// finding. Rewrite-stage errors mean the strategy is inapplicable and are
// skipped; any other compile error on a generator-valid query is a defect.
func sweep(t *testing.T, db *perm.DB, label, query string) {
	t.Helper()
	verify := func(config, q string, opts ...perm.Option) {
		stages, err := db.VerifyPlan(q, opts...)
		if err != nil {
			if strings.HasPrefix(err.Error(), "rewrite: ") {
				return
			}
			t.Errorf("%s [%s]: compile failed: %v", label, config, err)
			return
		}
		for _, st := range stages {
			for _, f := range st.Findings {
				if !f.Advisory {
					t.Errorf("%s [%s]: %s", label, config, f)
				}
			}
		}
	}
	verify("plain", query)
	if !strings.HasPrefix(strings.ToUpper(query), "SELECT") {
		return
	}
	provQ := "SELECT PROVENANCE" + query[len("SELECT"):]
	for _, s := range sweepStrategies {
		verify(string(s), provQ, perm.WithStrategy(s))
	}
}

// TestCorpusPlancheckClean asserts the checked-in fuzz corpus verifies
// clean at every stage under every strategy — the "zero findings" contract
// the CI gate (cmd/plancheck) enforces on every push.
func TestCorpusPlancheckClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "fuzz", "testdata", "fuzz-corpus", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fuzz corpus found: %v", err)
	}
	db := fuzz.NewDB(1)
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var sqlLines []string
		skip := false
		for _, line := range strings.Split(string(raw), "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "-- expect-error:") {
				skip = true
				break
			}
			if strings.HasPrefix(trimmed, "--") || trimmed == "" {
				continue
			}
			sqlLines = append(sqlLines, trimmed)
		}
		if skip {
			continue
		}
		sweep(t, db, filepath.Base(file), strings.Join(sqlLines, " "))
	}
}

// TestGeneratedPlancheckClean sweeps generated queries through the
// verifier: a bounded version of the long-budget fuzzer's plancheck
// oracle, catching checker false positives and engine regressions alike.
func TestGeneratedPlancheckClean(t *testing.T) {
	if testing.Short() {
		t.Skip("generated sweep is the long half of the plancheck suite")
	}
	db := fuzz.NewDB(1)
	g := fuzz.NewGen(1)
	const n = 300
	for i := 0; i < n; i++ {
		q := g.Next()
		sweep(t, db, q.SQL, q.SQL)
	}
}

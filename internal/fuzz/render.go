package fuzz

import (
	"fmt"
	"strings"

	"perm/internal/sql"
)

// Render turns a statement AST back into SQL text the parser accepts. The
// generator builds ASTs (so the shrinker can reduce them structurally) and
// renders them for execution and for the checked-in corpus. Expressions are
// parenthesized defensively; the parser strips the parentheses again, so
// Render ∘ Parse is the identity on the algebra.
func Render(st *sql.Stmt) string {
	var b strings.Builder
	renderStmt(&b, st)
	return b.String()
}

func renderStmt(b *strings.Builder, st *sql.Stmt) {
	renderSelect(b, st.Left)
	if st.SetOp != nil {
		b.WriteByte(' ')
		b.WriteString(st.SetOp.Kind)
		if st.SetOp.All {
			b.WriteString(" ALL")
		}
		b.WriteByte(' ')
		renderStmt(b, st.SetOp.Right)
	}
}

func renderSelect(b *strings.Builder, sel *sql.SelectStmt) {
	b.WriteString("SELECT")
	if sel.Provenance {
		b.WriteString(" PROVENANCE")
	}
	if sel.Distinct {
		b.WriteString(" DISTINCT")
	}
	if sel.Star {
		b.WriteString(" *")
	} else {
		for i, c := range sel.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte(' ')
			renderExpr(b, c.E)
			if c.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(c.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, ref := range sel.From {
		if i > 0 {
			b.WriteString(", ")
		}
		renderTableRef(b, ref)
	}
	if sel.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, sel.Where)
	}
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range sel.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, g)
		}
	}
	if sel.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, sel.Having)
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range sel.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, k.E)
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(b, " LIMIT %d", sel.Limit)
	}
	if sel.Offset > 0 {
		fmt.Fprintf(b, " OFFSET %d", sel.Offset)
	}
}

func renderTableRef(b *strings.Builder, ref sql.TableRef) {
	switch {
	case ref.Join != nil:
		renderTableRef(b, ref.Join.Left)
		if ref.Join.LeftOuter {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		renderTableRef(b, ref.Join.Right)
		b.WriteString(" ON ")
		renderExpr(b, ref.Join.On)
	case ref.Sub != nil:
		b.WriteByte('(')
		renderStmt(b, ref.Sub)
		b.WriteString(") AS ")
		b.WriteString(ref.Alias)
	default:
		b.WriteString(ref.Table)
		if ref.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(ref.Alias)
		}
	}
}

func renderExpr(b *strings.Builder, e sql.Expr) {
	switch x := e.(type) {
	case sql.Ident:
		if x.Qual != "" {
			b.WriteString(x.Qual)
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case sql.NumLit:
		if x.IsFlt {
			fmt.Fprintf(b, "%g", x.Float)
		} else if x.Int < 0 {
			fmt.Fprintf(b, "(0 - %d)", -x.Int)
		} else {
			fmt.Fprintf(b, "%d", x.Int)
		}
	case sql.StrLit:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(x.S, "'", "''"))
		b.WriteByte('\'')
	case sql.BoolLit:
		if x.B {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case sql.NullLit:
		b.WriteString("NULL")
	case sql.Binary:
		b.WriteByte('(')
		renderExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		renderExpr(b, x.R)
		b.WriteByte(')')
	case sql.Unary:
		b.WriteByte('(')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		renderExpr(b, x.E)
		b.WriteByte(')')
	case sql.IsNull:
		b.WriteByte('(')
		renderExpr(b, x.E)
		if x.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case sql.InList:
		b.WriteByte('(')
		renderExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, it := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, it)
		}
		b.WriteString("))")
	case sql.InSub:
		b.WriteByte('(')
		renderExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		renderStmt(b, x.Sub)
		b.WriteString("))")
	case sql.Quant:
		b.WriteByte('(')
		renderExpr(b, x.E)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		if x.Any {
			b.WriteString(" ANY (")
		} else {
			b.WriteString(" ALL (")
		}
		renderStmt(b, x.Sub)
		b.WriteString("))")
	case sql.Exists:
		// NOT EXISTS re-parses as Unary{NOT, Exists}; render that same
		// shape so Render ∘ Parse is a fixpoint.
		if x.Not {
			b.WriteString("(NOT (EXISTS (")
			renderStmt(b, x.Sub)
			b.WriteString(")))")
			return
		}
		b.WriteString("(EXISTS (")
		renderStmt(b, x.Sub)
		b.WriteString("))")
	case sql.ScalarSub:
		b.WriteByte('(')
		renderStmt(b, x.Sub)
		b.WriteByte(')')
	case sql.Call:
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				renderExpr(b, a)
			}
		}
		b.WriteByte(')')
	case sql.Like:
		b.WriteByte('(')
		renderExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		renderExpr(b, x.Pattern)
		b.WriteByte(')')
	case sql.CastExpr:
		b.WriteString("CAST(")
		renderExpr(b, x.E)
		b.WriteString(" AS ")
		b.WriteString(x.Type)
		b.WriteByte(')')
	case sql.Between:
		b.WriteByte('(')
		renderExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, x.Lo)
		b.WriteString(" AND ")
		renderExpr(b, x.Hi)
		b.WriteByte(')')
	case sql.Case:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteByte(' ')
			renderExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			renderExpr(b, w.Cond)
			b.WriteString(" THEN ")
			renderExpr(b, w.Result)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			renderExpr(b, x.Else)
		}
		b.WriteString(" END")
	default:
		fmt.Fprintf(b, "/*unrenderable %T*/", e)
	}
}

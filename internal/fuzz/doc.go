// Package fuzz is the differential query fuzzer of the engine: a seeded,
// grammar-driven random query generator over a fixed NULL-rich schema —
// three integer tables (r, s, t) and a string-typed table (u) — plus an
// oracle that executes every generated query under the full engine matrix
// and demands agreement.
//
// The generator is kind-aware: it tracks the value kind of every column
// (including derived-table and aggregate outputs) and only emits
// well-typed comparisons, function calls (upper/lower/length/substr,
// || concatenation, LIKE, CAST) and set-operation arms, so a rejection by
// the semantic analyzer is itself a fuzz failure. ORDER BY and GROUP BY
// keys are sometimes spelled as select-list ordinals, which the oracle
// order-checks like named keys.
//
// # The oracle
//
// One generated query runs under every executor mode — {streaming,
// materializing} × parallelism {1, 4} — and, when it carries no
// LIMIT/OFFSET, additionally as SELECT PROVENANCE under every rewrite
// strategy (Gen, Left, Move, Unn, UnnX, Auto) × the same executor matrix.
// The oracle asserts:
//
//   - the plain query succeeds everywhere with the identical presented row
//     sequence (presentation order is deterministic);
//   - where top-level ORDER BY keys are visible output columns, the
//     sequence is actually sorted by them;
//   - per strategy, all executor modes agree exactly — including on the
//     error: no mode may fail where another succeeds, and only
//     rewrite-stage errors (an inapplicable strategy) are legitimate;
//   - all strategies that succeed produce the identical provenance bag;
//   - every provenance result's visible rows equal the plain result's rows
//     as a set (the rewrite preserves the original result).
//
// The generator stays inside the engine's defined surface so any oracle
// failure is a bug, not noise: LIMIT/OFFSET only appear under ORDER BY
// (an unordered limit's row choice is unspecified), scalar subqueries are
// global aggregates (guaranteed single-row), arithmetic avoids division
// (whose by-zero error would make error/success legitimately
// order-dependent) and stays inside the tiny value domain (so checked
// int64 arithmetic never overflows), string values and LIKE patterns come
// from small digit-free pools (so rendered cells never parse as numbers
// and casts to string never collide with the numeric order check), and
// all table references use generation-unique aliases.
//
// # Reproducing a failure
//
// Every query is a pure function of (seed, query index): NewDB(seed)
// builds the data, NewGen(seed).Next() yields the query sequence. A
// failure report names both; replay it with
//
//	q := fuzz.NewGen(seed) // then call Next() index+1 times
//	err := fuzz.Check(fuzz.NewDB(seed), q)
//
// or re-run the long-form fuzzer: go run ./cmd/permfuzz -seed S -n N.
// Shrink minimizes a failing query by structural reduction; minimized
// repros are checked in under testdata/fuzz-corpus/ and replayed by
// TestFuzzCorpus on every test run (files may declare an expected error
// with a "-- expect-error: <substring>" header line; all other corpus
// queries must pass the full oracle).
package fuzz

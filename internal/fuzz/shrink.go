package fuzz

import (
	"strings"

	"perm"
	"perm/internal/sql"
)

// Shrink greedily minimizes a failing query: it tries structural
// reductions (drop clauses, unwrap joins, simplify predicates, reduce
// subqueries) and keeps any strictly shorter variant that still compiles
// and still fails the differential oracle with the same failure class — a
// reduction must preserve the bug it witnesses, not stumble into a
// different one. budget bounds the number of oracle runs, which dominate
// the cost.
func Shrink(db *perm.DB, q *Query, budget int) *Query {
	orig := Check(db, q)
	if orig == nil {
		return q // not failing; nothing to preserve
	}
	wantClass := failureClass(orig)
	env := sql.Env{Catalog: db.Catalog()}
	cur := q
	improved := true
	for improved && budget > 0 {
		improved = false
		for _, cand := range stmtCandidates(cur.Stmt) {
			cq := Finalize(cand)
			if len(cq.SQL) >= len(cur.SQL) {
				continue // only strictly shrinking steps, so the loop terminates
			}
			if _, err := sql.CompileEnv(env, cq.SQL); err != nil {
				continue // the reduction broke validity (width/alias constraints)
			}
			budget--
			if err := Check(db, cq); err != nil && failureClass(err) == wantClass {
				cur = cq
				improved = true
				break // restart from the smaller query
			}
			if budget <= 0 {
				break
			}
		}
	}
	return cur
}

// failureClass buckets an oracle failure so the shrinker preserves the
// original defect: the tripped assertion plus, for execution errors, the
// leading words of the underlying error message.
func failureClass(err error) string {
	msg := err.Error()
	for _, tag := range []string{
		"plain rows disagree",
		"violates ORDER BY",
		"error class disagrees",
		"provenance rows disagree",
		"visible rows differ",
		"provenance bags disagree",
	} {
		if strings.Contains(msg, tag) {
			return tag
		}
	}
	// Execution-error failures: key on the error's own leading words so a
	// reduction cannot swap one error for an unrelated one.
	words := strings.Fields(msg)
	if len(words) > 8 {
		words = words[:8]
	}
	return strings.Join(words, " ")
}

// --- deep copies (expressions are immutable values and may be shared) ---

func copyStmt(st *sql.Stmt) *sql.Stmt {
	if st == nil {
		return nil
	}
	c := &sql.Stmt{Left: copySelect(st.Left)}
	if st.SetOp != nil {
		c.SetOp = &sql.SetOpClause{Kind: st.SetOp.Kind, All: st.SetOp.All, Right: copyStmt(st.SetOp.Right)}
	}
	return c
}

func copySelect(s *sql.SelectStmt) *sql.SelectStmt {
	c := *s
	c.Cols = append([]sql.SelectCol(nil), s.Cols...)
	c.From = append([]sql.TableRef(nil), s.From...)
	c.GroupBy = append([]sql.Expr(nil), s.GroupBy...)
	c.OrderBy = append([]sql.OrderKey(nil), s.OrderBy...)
	return &c
}

// --- candidate enumeration: every result is a fresh tree with one change ---

func stmtCandidates(st *sql.Stmt) []*sql.Stmt {
	var out []*sql.Stmt
	if st.SetOp != nil {
		out = append(out, &sql.Stmt{Left: copySelect(st.Left)}) // drop the set operation
		out = append(out, copyStmt(st.SetOp.Right))             // keep only the right side
		for _, v := range selectCandidates(st.Left) {
			c := copyStmt(st)
			c.Left = v
			out = append(out, c)
		}
		for _, v := range stmtCandidates(st.SetOp.Right) {
			c := copyStmt(st)
			c.SetOp.Right = v
			out = append(out, c)
		}
		return out
	}
	for _, v := range selectCandidates(st.Left) {
		out = append(out, &sql.Stmt{Left: v})
	}
	return out
}

func selectCandidates(s *sql.SelectStmt) []*sql.SelectStmt {
	var out []*sql.SelectStmt
	mod := func(fn func(c *sql.SelectStmt)) {
		c := copySelect(s)
		fn(c)
		out = append(out, c)
	}
	if s.Distinct {
		mod(func(c *sql.SelectStmt) { c.Distinct = false })
	}
	if s.Where != nil {
		mod(func(c *sql.SelectStmt) { c.Where = nil })
		for _, v := range exprCandidates(s.Where) {
			v := v
			mod(func(c *sql.SelectStmt) { c.Where = v })
		}
	}
	if s.Having != nil {
		mod(func(c *sql.SelectStmt) { c.Having = nil })
	}
	if len(s.GroupBy) > 0 {
		mod(func(c *sql.SelectStmt) { c.GroupBy, c.Having = nil, nil })
	}
	if len(s.OrderBy) > 0 {
		mod(func(c *sql.SelectStmt) { c.OrderBy = nil; c.Limit = -1; c.Offset = 0 })
		for i := range s.OrderBy {
			i := i
			mod(func(c *sql.SelectStmt) { c.OrderBy = append(c.OrderBy[:i:i], c.OrderBy[i+1:]...) })
		}
	}
	if s.Limit >= 0 {
		mod(func(c *sql.SelectStmt) { c.Limit = -1 })
	}
	if s.Offset > 0 {
		mod(func(c *sql.SelectStmt) { c.Offset = 0 })
	}
	if len(s.Cols) > 1 {
		for i := range s.Cols {
			i := i
			mod(func(c *sql.SelectStmt) { c.Cols = append(c.Cols[:i:i], c.Cols[i+1:]...) })
		}
	}
	for i, col := range s.Cols {
		for _, v := range exprCandidates(col.E) {
			i, v := i, v
			mod(func(c *sql.SelectStmt) { c.Cols[i] = sql.SelectCol{E: v, Alias: c.Cols[i].Alias} })
		}
	}
	if len(s.From) > 1 {
		for i := range s.From {
			i := i
			mod(func(c *sql.SelectStmt) { c.From = append(c.From[:i:i], c.From[i+1:]...) })
		}
	}
	for i, ref := range s.From {
		for _, v := range refCandidates(ref) {
			i, v := i, v
			mod(func(c *sql.SelectStmt) { c.From[i] = v })
		}
	}
	return out
}

func refCandidates(ref sql.TableRef) []sql.TableRef {
	var out []sql.TableRef
	switch {
	case ref.Join != nil:
		out = append(out, ref.Join.Left, ref.Join.Right) // unwrap to one side
		for _, v := range refCandidates(ref.Join.Left) {
			out = append(out, sql.TableRef{Join: &sql.JoinRef{Left: v, Right: ref.Join.Right, LeftOuter: ref.Join.LeftOuter, On: ref.Join.On}})
		}
		for _, v := range refCandidates(ref.Join.Right) {
			out = append(out, sql.TableRef{Join: &sql.JoinRef{Left: ref.Join.Left, Right: v, LeftOuter: ref.Join.LeftOuter, On: ref.Join.On}})
		}
		if ref.Join.LeftOuter {
			out = append(out, sql.TableRef{Join: &sql.JoinRef{Left: ref.Join.Left, Right: ref.Join.Right, On: ref.Join.On}})
		}
	case ref.Sub != nil:
		for _, v := range stmtCandidates(ref.Sub) {
			out = append(out, sql.TableRef{Sub: v, Alias: ref.Alias})
		}
	}
	return out
}

// exprCandidates proposes simpler replacements for an expression: constant
// truth values for predicates, operands for composites, reduced subqueries
// for sublinks. Invalid proposals (a boolean where a number belongs) are
// filtered by the compile check in Shrink.
func exprCandidates(e sql.Expr) []sql.Expr {
	var out []sql.Expr
	simpler := []sql.Expr{sql.BoolLit{B: true}, sql.NumLit{Int: 1}}
	switch x := e.(type) {
	case sql.Binary:
		out = append(out, x.L, x.R)
		for _, v := range exprCandidates(x.L) {
			out = append(out, sql.Binary{Op: x.Op, L: v, R: x.R})
		}
		for _, v := range exprCandidates(x.R) {
			out = append(out, sql.Binary{Op: x.Op, L: x.L, R: v})
		}
	case sql.Unary:
		out = append(out, x.E)
	case sql.IsNull:
		out = append(out, simpler...)
	case sql.InList:
		out = append(out, simpler...)
		if len(x.List) > 1 {
			out = append(out, sql.InList{E: x.E, List: x.List[:1], Not: x.Not})
		}
	case sql.InSub:
		out = append(out, simpler...)
		for _, v := range stmtCandidates(x.Sub) {
			out = append(out, sql.InSub{E: x.E, Sub: v, Not: x.Not})
		}
	case sql.Quant:
		out = append(out, simpler...)
		for _, v := range stmtCandidates(x.Sub) {
			out = append(out, sql.Quant{Op: x.Op, Any: x.Any, E: x.E, Sub: v})
		}
	case sql.Exists:
		out = append(out, simpler...)
		for _, v := range stmtCandidates(x.Sub) {
			out = append(out, sql.Exists{Sub: v, Not: x.Not})
		}
	case sql.ScalarSub:
		out = append(out, sql.NumLit{Int: 1})
		for _, v := range stmtCandidates(x.Sub) {
			out = append(out, sql.ScalarSub{Sub: v})
		}
	case sql.Between:
		out = append(out, simpler...)
	case sql.Like:
		out = append(out, simpler...)
		for _, v := range exprCandidates(x.E) {
			out = append(out, sql.Like{E: v, Pattern: x.Pattern, Not: x.Not})
		}
	case sql.CastExpr:
		out = append(out, x.E, sql.NumLit{Int: 1}, sql.StrLit{S: "a"})
		for _, v := range exprCandidates(x.E) {
			out = append(out, sql.CastExpr{E: v, Type: x.Type})
		}
	case sql.Case:
		for _, w := range x.Whens {
			out = append(out, w.Result)
		}
		if x.Else != nil {
			out = append(out, x.Else)
		}
		if len(x.Whens) > 1 {
			out = append(out, sql.Case{Operand: x.Operand, Whens: x.Whens[:1], Else: x.Else})
		}
	case sql.Call:
		if len(x.Args) == 1 {
			out = append(out, x.Args[0])
		}
	}
	return out
}

package fuzz

import (
	"strconv"

	"perm"
	"perm/internal/sql"
	"perm/internal/types"
)

// fcol is one generatable column with its value kind. The generator is
// kind-aware: every comparison, function argument and subquery column it
// emits is well-typed, so the semantic analyzer must accept every generated
// query — an analyzer rejection is a fuzz failure.
type fcol struct {
	name string
	kind types.Kind
}

// The fixed fuzz schema: three small integer tables plus a string-typed
// table (u), appended last so the shared rng keeps the seed-stable contents
// of r, s and t that the checked-in corpus is stated over. Distinct column
// names across tables keep unqualified references unambiguous; the
// generator still qualifies most references through always-fresh aliases,
// so self-joins are safe too. Values are drawn from tiny domains with NULLs
// and duplicate rows mixed in — the regime where bag semantics,
// three-valued logic and sublink edge cases (empty subquery results, NULL
// probes) are all exercised.
var fuzzTables = []struct {
	name string
	cols []fcol
}{
	{"r", []fcol{{"a", types.KindInt}, {"b", types.KindInt}}},
	{"s", []fcol{{"c", types.KindInt}, {"d", types.KindInt}}},
	{"t", []fcol{{"e", types.KindInt}, {"f", types.KindInt}}},
	{"u", []fcol{{"g", types.KindString}, {"h", types.KindInt}}},
}

// strDomain is the string value domain: small, duplicate-prone, free of
// digits (so rendered cells never parse as numbers and the order checker
// compares them lexically, like the engine) and free of the row-rendering
// separators '|' and '∅'.
var strDomain = []string{"a", "b", "ab", "ba", "bb", ""}

// likePatterns are the LIKE patterns the generator draws from.
var likePatterns = []string{"%a%", "a%", "%b", "_", "__", "%", "a_%", "%b%a%"}

// splitmix-style deterministic rng (no package state, replayable by seed).
type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*0x9E3779B9 + 0x2545F4914F6CDD1D} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
func (r *rng) chance(p float64) bool {
	return float64(r.next()>>11)/float64(1<<53) < p
}

// NewDB builds the fuzz database for one seed: the tables filled with
// NULL-rich, duplicate-rich rows over tiny domains. Tables are kept small
// (4–6 rows) so even the Gen strategy's CrossBase products over nested
// sublinks stay cheap enough for thousands of differential runs.
func NewDB(seed int64) *perm.DB {
	r := newRng(seed ^ 0x5EED)
	db := perm.Open()
	for _, tb := range fuzzTables {
		n := 3 + r.intn(3)
		cols := make([]string, len(tb.cols))
		for j, c := range tb.cols {
			cols[j] = c.name
		}
		rows := make([][]any, 0, n)
		for i := 0; i < n; i++ {
			row := make([]any, len(tb.cols))
			for j, c := range tb.cols {
				switch {
				case r.chance(0.15):
					row[j] = nil
				case c.kind == types.KindString:
					row[j] = strDomain[r.intn(len(strDomain))]
				default:
					row[j] = r.intn(6) - 1 // domain [-1, 4]
				}
			}
			rows = append(rows, row)
			if r.chance(0.25) { // duplicate row: bag multiplicities > 1
				rows = append(rows, row)
			}
		}
		if err := db.Register(tb.name, cols, rows); err != nil {
			panic(err) // fixed schema; cannot fail
		}
	}
	return db
}

// OrderCheck describes one top-level ORDER BY key that is a visible output
// column, so the oracle can verify the presented row order semantically.
type OrderCheck struct {
	Col  int // result column index
	Desc bool
}

// Query is one generated (or shrunk) query with the metadata the oracle
// needs.
type Query struct {
	Stmt *sql.Stmt
	SQL  string
	// UsesLimit reports a LIMIT or OFFSET anywhere in the tree; the
	// provenance rewrite rejects those, so the oracle skips the strategy
	// matrix for them.
	UsesLimit bool
	// OrderChecks are the top-level ORDER BY keys resolvable to visible
	// output columns (hidden-key and expression keys are exercised but not
	// semantically order-checked).
	OrderChecks []OrderCheck
	// Scans counts base-table references anywhere in the query. The Gen
	// strategy's CrossBase is a product over all sublink base relations, so
	// the oracle bounds the provenance matrix by this count.
	Scans int
}

// Finalize derives a Query from a statement AST: renders it and recomputes
// the oracle metadata. The shrinker calls it after every reduction.
func Finalize(st *sql.Stmt) *Query {
	return &Query{
		Stmt:        st,
		SQL:         Render(st),
		UsesLimit:   stmtUsesLimit(st),
		OrderChecks: orderChecks(st),
		Scans:       stmtScans(st),
	}
}

// stmtScans counts base-table references anywhere in the statement.
func stmtScans(st *sql.Stmt) int {
	n := 0
	visitSelects(st, func(sel *sql.SelectStmt) {
		for _, ref := range sel.From {
			n += refBases(ref)
		}
	})
	return n
}

// refBases counts the base tables of one FROM item; derived tables count
// through their own select blocks (visited separately by visitSelects).
func refBases(ref sql.TableRef) int {
	switch {
	case ref.Join != nil:
		return refBases(ref.Join.Left) + refBases(ref.Join.Right)
	case ref.Sub != nil:
		return 0
	default:
		return 1
	}
}

// stmtUsesLimit reports a LIMIT or OFFSET on any block of the statement.
func stmtUsesLimit(st *sql.Stmt) bool {
	found := false
	visitSelects(st, func(sel *sql.SelectStmt) {
		if sel.Limit >= 0 || sel.Offset > 0 {
			found = true
		}
	})
	return found
}

// visitSelects calls fn for every select block of the statement — set
// operation arms, derived tables and the subqueries nested anywhere in its
// expressions. The single traversal keeps the oracle metadata (scan
// counts, limit detection) in one place: a new expression node needs
// exactly one new arm here.
func visitSelects(st *sql.Stmt, fn func(*sql.SelectStmt)) {
	if st == nil {
		return
	}
	sel := st.Left
	fn(sel)
	for _, ref := range sel.From {
		visitRefSelects(ref, fn)
	}
	for _, e := range collectExprs(sel) {
		visitExprSelects(e, fn)
	}
	if st.SetOp != nil {
		visitSelects(st.SetOp.Right, fn)
	}
}

func visitRefSelects(ref sql.TableRef, fn func(*sql.SelectStmt)) {
	switch {
	case ref.Join != nil:
		visitRefSelects(ref.Join.Left, fn)
		visitRefSelects(ref.Join.Right, fn)
		visitExprSelects(ref.Join.On, fn)
	case ref.Sub != nil:
		visitSelects(ref.Sub, fn)
	}
}

// collectExprs gathers the clause expressions of one select block.
func collectExprs(sel *sql.SelectStmt) []sql.Expr {
	var out []sql.Expr
	for _, c := range sel.Cols {
		out = append(out, c.E)
	}
	if sel.Where != nil {
		out = append(out, sel.Where)
	}
	out = append(out, sel.GroupBy...)
	if sel.Having != nil {
		out = append(out, sel.Having)
	}
	for _, k := range sel.OrderBy {
		out = append(out, k.E)
	}
	return out
}

// visitExprSelects descends into the subqueries embedded in an expression,
// riding the shared sql.WalkExprs traversal (which visits test expressions
// but leaves subquery statements to this hook).
func visitExprSelects(e sql.Expr, fn func(*sql.SelectStmt)) {
	sql.WalkExprs(e, func(n sql.Expr) bool {
		switch x := n.(type) {
		case sql.InSub:
			visitSelects(x.Sub, fn)
		case sql.Quant:
			visitSelects(x.Sub, fn)
		case sql.Exists:
			visitSelects(x.Sub, fn)
		case sql.ScalarSub:
			visitSelects(x.Sub, fn)
		}
		return true
	})
}

// containsCast reports whether the expression contains any CAST — a cast of
// a number to string renders as a digit string, which the order checker
// would wrongly compare numerically, so such keys are not order-checked.
func containsCast(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(n sql.Expr) bool {
		if _, ok := n.(sql.CastExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// orderChecks maps the top-level ORDER BY keys onto visible result column
// indexes where possible: an ordinal, a key naming a select-list alias, or
// a key structurally equal to a select-list expression. Set operations have
// no statement-level ORDER BY in this dialect, so they contribute no
// checks.
func orderChecks(st *sql.Stmt) []OrderCheck {
	if st == nil || st.SetOp != nil {
		return nil
	}
	sel := st.Left
	if sel.Star || len(sel.OrderBy) == 0 {
		return nil
	}
	// A CAST anywhere in the statement can surface digit-strings in the
	// result (possibly laundered through a derived-table column the key
	// references), which compareCells would wrongly compare numerically
	// while the engine sorts them lexically. Quarantine the whole
	// statement: the differential row-sequence comparison still covers its
	// ordering.
	castFound := false
	visitSelects(st, func(s *sql.SelectStmt) {
		for _, e := range collectExprs(s) {
			if containsCast(e) {
				castFound = true
			}
		}
	})
	if castFound {
		return nil
	}
	var out []OrderCheck
	for _, k := range sel.OrderBy {
		found := -1
		switch key := k.E.(type) {
		case sql.NumLit:
			// ORDER BY ordinal: position n is column n-1.
			if key.IsFlt || key.Int < 1 || key.Int > int64(len(sel.Cols)) {
				return out
			}
			found = int(key.Int) - 1
		case sql.Ident:
			if key.Qual != "" {
				// Qualified keys may be hidden-column keys; the differential
				// comparison still covers them.
				return out
			}
			for i, c := range sel.Cols {
				if c.Alias == key.Name {
					found = i
					break
				}
				if cid, isID := c.E.(sql.Ident); isID && c.Alias == "" && cid.Name == key.Name {
					found = i
					break
				}
			}
		default:
			return out
		}
		if found < 0 {
			return out
		}
		out = append(out, OrderCheck{Col: found, Desc: k.Desc})
	}
	return out
}

// Gen is a deterministic random query generator over the fuzz schema.
type Gen struct {
	rng      *rng
	aliasSeq int
	colSeq   int
}

// NewGen returns a generator for one seed.
func NewGen(seed int64) *Gen { return &Gen{rng: newRng(seed)} }

// scopeRel is one FROM item visible in a scope: its alias and typed
// columns.
type scopeRel struct {
	alias string
	cols  []fcol
}

// scope is the name environment of one query block, linked to the enclosing
// block for correlated references.
type scope struct {
	rels  []scopeRel
	outer *scope
}

// colRef is one referencable column with its kind.
type colRef struct {
	qual, name string
	kind       types.Kind
}

func (s *scope) ownCols() []colRef {
	var out []colRef
	for _, r := range s.rels {
		for _, c := range r.cols {
			out = append(out, colRef{qual: r.alias, name: c.name, kind: c.kind})
		}
	}
	return out
}

// colsOfKind filters a scope's columns by kind.
func colsOfKind(cols []colRef, kind types.Kind) []colRef {
	var out []colRef
	for _, c := range cols {
		if c.kind == kind {
			out = append(out, c)
		}
	}
	return out
}

func (g *Gen) freshAlias() string {
	g.aliasSeq++
	return "f" + strconv.Itoa(g.aliasSeq)
}

func (g *Gen) freshCol() string {
	g.colSeq++
	return "x" + strconv.Itoa(g.colSeq)
}

// pickKind draws an output column kind, biased towards integers so the
// engine's numeric core keeps most of the coverage.
func (g *Gen) pickKind() types.Kind {
	if g.rng.chance(0.3) {
		return types.KindString
	}
	return types.KindInt
}

// Next generates one random query. Alias and column counters reset per
// query so rendered SQL is stable under replay of the same seed sequence.
func (g *Gen) Next() *Query {
	g.aliasSeq, g.colSeq = 0, 0
	var st *sql.Stmt
	if g.rng.chance(0.10) {
		st = g.genSetOp()
	} else {
		sel, _ := g.genSelect(2, nil, nil, true)
		st = &sql.Stmt{Left: sel}
	}
	return Finalize(st)
}

// genSetOp builds a set operation of two or three arms with one shared
// column shape (widths and kinds must match across arms — the analyzer
// rejects UNION of string and integer columns, as PostgreSQL does). Arms
// carry no ORDER BY or LIMIT.
func (g *Gen) genSetOp() *sql.Stmt {
	shape := make([]types.Kind, 1+g.rng.intn(2))
	for i := range shape {
		shape[i] = g.pickKind()
	}
	kinds := []string{"UNION", "INTERSECT", "EXCEPT"}
	left, _ := g.genSelect(1, nil, shape, false)
	right, _ := g.genSelect(1, nil, shape, false)
	st := &sql.Stmt{Left: left}
	st.SetOp = &sql.SetOpClause{
		Kind:  kinds[g.rng.intn(len(kinds))],
		All:   g.rng.chance(0.5),
		Right: &sql.Stmt{Left: right},
	}
	if g.rng.chance(0.25) {
		third, _ := g.genSelect(1, nil, shape, false)
		st.SetOp.Right.SetOp = &sql.SetOpClause{
			Kind:  kinds[g.rng.intn(len(kinds))],
			All:   g.rng.chance(0.5),
			Right: &sql.Stmt{Left: third},
		}
	}
	return st
}

// genSelect builds one SELECT block and reports its output columns. depth
// bounds subquery nesting; outer is the enclosing scope chain for
// correlated sublinks (nil for derived tables, which cannot correlate);
// shape forces the output column kinds (nil = free); orderable allows
// ORDER BY/LIMIT on this block.
func (g *Gen) genSelect(depth int, outer *scope, shape []types.Kind, orderable bool) (*sql.SelectStmt, []fcol) {
	sel := &sql.SelectStmt{Limit: -1}

	// FROM: one or two items, each a base table, derived table or join.
	// Nested blocks stay light: every base relation inside a sublink
	// multiplies the Gen strategy's CrossBase, so breadth lives at the top
	// level and depth in the nesting.
	sc := &scope{outer: outer}
	nFrom := 1
	if depth >= 2 && g.rng.chance(0.3) {
		nFrom = 2
	}
	for i := 0; i < nFrom; i++ {
		ref, rels := g.genFromItem(depth)
		sel.From = append(sel.From, ref)
		sc.rels = append(sc.rels, rels...)
	}

	// WHERE.
	if g.rng.chance(0.7) {
		sel.Where = g.genPred(depth, sc, 2)
	}

	grouped := shape == nil && g.rng.chance(0.18) && len(sc.ownCols()) > 0
	if grouped {
		return sel, g.genGroupedOutput(sel, sc, orderable)
	}

	// Plain output list.
	kinds := shape
	if kinds == nil {
		kinds = make([]types.Kind, 1+g.rng.intn(3))
		for i := range kinds {
			kinds[i] = g.pickKind()
		}
	}
	out := make([]fcol, len(kinds))
	for i, k := range kinds {
		if k == types.KindNull {
			k = g.pickKind()
		}
		e := g.genScalar(depth, sc, 2, k)
		alias := g.freshCol()
		sel.Cols = append(sel.Cols, sql.SelectCol{E: e, Alias: alias})
		out[i] = fcol{name: alias, kind: k}
	}
	if shape == nil && g.rng.chance(0.12) {
		sel.Distinct = true
	}

	if orderable {
		g.genOrderLimit(sel, sc, out)
	}
	return sel, out
}

// genFromItem builds one FROM item and the scope entries it contributes.
func (g *Gen) genFromItem(depth int) (sql.TableRef, []scopeRel) {
	roll := g.rng.intn(100)
	derivedCut, joinCut := 20, 45
	if depth < 2 {
		derivedCut, joinCut = 10, 22 // inside subqueries, prefer plain base tables
	}
	switch {
	case roll < derivedCut && depth > 0:
		// Derived table; cannot correlate outward, may order internally
		// (exercising order propagation and hidden-key LIMIT cuts).
		sub, cols := g.genSelect(depth-1, nil, nil, true)
		alias := g.freshAlias()
		return sql.TableRef{Sub: &sql.Stmt{Left: sub}, Alias: alias}, []scopeRel{{alias: alias, cols: cols}}
	case roll < joinCut:
		// Join of two base tables on a same-kind column equality.
		l, lrels := g.genBaseRef()
		r, rrels := g.genBaseRef()
		lc := lrels[0]
		rc := rrels[0]
		lcol := lc.cols[g.rng.intn(len(lc.cols))]
		rcands := make([]fcol, 0, len(rc.cols))
		for _, c := range rc.cols {
			if c.kind == lcol.kind {
				rcands = append(rcands, c)
			}
		}
		if len(rcands) == 0 {
			// No kind-matching pair: fall back to the integer columns both
			// tables are guaranteed to have.
			for _, c := range lc.cols {
				if c.kind == types.KindInt {
					lcol = c
					break
				}
			}
			for _, c := range rc.cols {
				if c.kind == types.KindInt {
					rcands = append(rcands, c)
				}
			}
		}
		rcol := rcands[g.rng.intn(len(rcands))]
		on := sql.Expr(sql.Binary{
			Op: "=",
			L:  sql.Ident{Qual: lc.alias, Name: lcol.name},
			R:  sql.Ident{Qual: rc.alias, Name: rcol.name},
		})
		return sql.TableRef{Join: &sql.JoinRef{
			Left: l, Right: r, LeftOuter: g.rng.chance(0.35), On: on,
		}}, append(lrels, rrels...)
	default:
		return g.genBaseRef()
	}
}

func (g *Gen) genBaseRef() (sql.TableRef, []scopeRel) {
	tb := fuzzTables[g.rng.intn(len(fuzzTables))]
	alias := g.freshAlias()
	return sql.TableRef{Table: tb.name, Alias: alias}, []scopeRel{{alias: alias, cols: tb.cols}}
}

// stringTable returns the fuzz table holding a string column, with that
// column's name — looked up from the schema so reordering or renaming
// fuzzTables cannot silently desynchronize the generator.
func stringTable() (name string, cols []fcol, strCol string) {
	for _, tb := range fuzzTables {
		for _, c := range tb.cols {
			if c.kind == types.KindString {
				return tb.name, tb.cols, c.name
			}
		}
	}
	panic("fuzz: no string-typed table in the schema")
}

// genGroupedOutput turns the block into a GROUP BY query: grouping columns
// plus aggregates in the select list (GROUP BY sometimes spelled as a
// select-list ordinal), optional HAVING, ORDER BY over the output —
// including aliases, ordinals and, sometimes, an aggregate not in the
// select list (a hidden-key sort over the aggregation schema).
func (g *Gen) genGroupedOutput(sel *sql.SelectStmt, sc *scope, orderable bool) []fcol {
	cols := sc.ownCols()
	var out []fcol
	nGroup := 1 + g.rng.intn(2)
	seen := map[string]bool{}
	for i := 0; i < nGroup; i++ {
		c := cols[g.rng.intn(len(cols))]
		key := c.qual + "." + c.name
		if seen[key] {
			continue
		}
		seen[key] = true
		id := sql.Ident{Qual: c.qual, Name: c.name}
		alias := g.freshCol()
		sel.Cols = append(sel.Cols, sql.SelectCol{E: id, Alias: alias})
		out = append(out, fcol{name: alias, kind: c.kind})
		if g.rng.chance(0.3) {
			// GROUP BY ordinal referencing the select-list position.
			sel.GroupBy = append(sel.GroupBy, sql.NumLit{Int: int64(len(sel.Cols))})
		} else {
			sel.GroupBy = append(sel.GroupBy, id)
		}
	}
	nAgg := 1 + g.rng.intn(2)
	for i := 0; i < nAgg; i++ {
		agg, kind := g.genAggCall(sc)
		alias := g.freshCol()
		sel.Cols = append(sel.Cols, sql.SelectCol{E: agg, Alias: alias})
		out = append(out, fcol{name: alias, kind: kind})
	}
	if g.rng.chance(0.4) {
		agg, kind := g.genAggCall(sc)
		sel.Having = sql.Binary{Op: cmpOp(g.rng), L: agg, R: g.genLit(kind)}
	}
	if orderable && g.rng.chance(0.5) {
		n := 1 + g.rng.intn(2)
		for i := 0; i < n; i++ {
			var key sql.Expr
			switch roll := g.rng.intn(100); {
			case roll < 45:
				key = sql.Ident{Name: sel.Cols[g.rng.intn(len(sel.Cols))].Alias}
			case roll < 70:
				key = sql.NumLit{Int: int64(1 + g.rng.intn(len(sel.Cols)))}
			default:
				key, _ = g.genAggCall(sc) // possibly not in the select list
			}
			sel.OrderBy = append(sel.OrderBy, sql.OrderKey{E: key, Desc: g.rng.chance(0.5)})
		}
		g.maybeLimit(sel)
	}
	return out
}

// genAggCall builds an aggregate call over the scope and reports its result
// kind. sum and avg only apply to integer columns; min/max/count take any.
func (g *Gen) genAggCall(sc *scope) (sql.Expr, types.Kind) {
	cols := sc.ownCols()
	intCols := colsOfKind(cols, types.KindInt)
	fns := []string{"count", "sum", "min", "max", "avg"}
	fn := fns[g.rng.intn(len(fns))]
	if (fn == "sum" || fn == "avg") && len(intCols) == 0 {
		fn = "count"
	}
	if fn == "count" && (g.rng.chance(0.3) || len(cols) == 0) {
		return sql.Call{Name: "count", Star: true}, types.KindInt
	}
	pool := cols
	if fn == "sum" || fn == "avg" {
		pool = intCols
	}
	c := pool[g.rng.intn(len(pool))]
	call := sql.Call{
		Name:     fn,
		Args:     []sql.Expr{sql.Ident{Qual: c.qual, Name: c.name}},
		Distinct: g.rng.chance(0.15),
	}
	switch fn {
	case "count":
		return call, types.KindInt
	case "avg":
		return call, types.KindFloat
	case "sum":
		return call, types.KindInt
	default: // min, max follow the argument
		return call, c.kind
	}
}

// genOrderLimit adds ORDER BY (over aliases, ordinals, scope columns — the
// hidden-key path — or expressions) and, only under an order, LIMIT/OFFSET
// (an unordered limit's row choice is unspecified, so the differential
// would false-positive on it).
func (g *Gen) genOrderLimit(sel *sql.SelectStmt, sc *scope, out []fcol) {
	if !g.rng.chance(0.5) {
		return
	}
	n := 1 + g.rng.intn(2)
	for i := 0; i < n; i++ {
		var key sql.Expr
		switch roll := g.rng.intn(100); {
		case roll < 35:
			key = sql.Ident{Name: sel.Cols[g.rng.intn(len(sel.Cols))].Alias}
		case roll < 55:
			key = sql.NumLit{Int: int64(1 + g.rng.intn(len(sel.Cols)))}
		case roll < 80 && !sel.Distinct:
			// A scope column, usually not projected: the hidden-key path.
			cols := sc.ownCols()
			c := cols[g.rng.intn(len(cols))]
			key = sql.Ident{Qual: c.qual, Name: c.name}
		default:
			// An expression over an output alias; || for string outputs,
			// + for numeric ones.
			idx := g.rng.intn(len(sel.Cols))
			alias := sql.Ident{Name: sel.Cols[idx].Alias}
			if out[idx].kind == types.KindString {
				key = sql.Binary{Op: "||", L: alias, R: g.genStrLit()}
			} else {
				key = sql.Binary{Op: "+", L: alias, R: g.genIntLit()}
			}
		}
		sel.OrderBy = append(sel.OrderBy, sql.OrderKey{E: key, Desc: g.rng.chance(0.5)})
	}
	g.maybeLimit(sel)
}

func (g *Gen) maybeLimit(sel *sql.SelectStmt) {
	if len(sel.OrderBy) == 0 || !g.rng.chance(0.4) {
		return
	}
	sel.Limit = g.rng.intn(5)
	if g.rng.chance(0.3) {
		sel.Offset = g.rng.intn(3)
	}
}

func cmpOp(r *rng) string {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	return ops[r.intn(len(ops))]
}

func (g *Gen) genIntLit() sql.Expr {
	n := int64(g.rng.intn(6) - 1)
	return sql.NumLit{Int: n}
}

func (g *Gen) genStrLit() sql.Expr {
	return sql.StrLit{S: strDomain[g.rng.intn(len(strDomain))]}
}

func (g *Gen) genLit(kind types.Kind) sql.Expr {
	if kind == types.KindString {
		return g.genStrLit()
	}
	return g.genIntLit()
}

// genColRef picks a column reference of the wanted kind: usually from the
// current scope, sometimes (when enclosing scopes exist) a correlated outer
// reference. ok is false when no column of the kind is in reach.
// References are always alias-qualified — aliases are generation-unique, so
// qualification is never ambiguous.
func (g *Gen) genColRef(sc *scope, kind types.Kind) (sql.Expr, bool) {
	pick := sc
	if pick.outer != nil && g.rng.chance(0.3) {
		pick = pick.outer
		if pick.outer != nil && g.rng.chance(0.2) {
			pick = pick.outer
		}
	}
	cols := colsOfKind(pick.ownCols(), kind)
	if len(cols) == 0 {
		cols = colsOfKind(sc.ownCols(), kind)
	}
	if len(cols) == 0 {
		return nil, false
	}
	c := cols[g.rng.intn(len(cols))]
	return sql.Ident{Qual: c.qual, Name: c.name}, true
}

// genColRefOr picks a column reference of the kind or falls back to a
// literal of the kind.
func (g *Gen) genColRefOr(sc *scope, kind types.Kind) sql.Expr {
	if ref, ok := g.genColRef(sc, kind); ok {
		return ref
	}
	return g.genLit(kind)
}

// genScalar builds an expression of the wanted kind over the scope.
func (g *Gen) genScalar(depth int, sc *scope, complexity int, kind types.Kind) sql.Expr {
	if kind == types.KindString {
		return g.genStrScalar(depth, sc, complexity)
	}
	roll := g.rng.intn(100)
	switch {
	case complexity <= 0 || roll < 50:
		return g.genColRefOr(sc, types.KindInt)
	case roll < 60:
		return g.genIntLit()
	case roll < 74:
		ops := []string{"+", "-", "*"}
		return sql.Binary{
			Op: ops[g.rng.intn(len(ops))],
			L:  g.genScalar(depth, sc, complexity-1, types.KindInt),
			R:  g.genScalar(depth, sc, complexity-1, types.KindInt),
		}
	case roll < 80:
		// length bridges the string family into integer expressions.
		return sql.Call{Name: "length", Args: []sql.Expr{g.genStrScalar(depth, sc, complexity-1)}}
	case roll < 92:
		c := sql.Case{}
		n := 1 + g.rng.intn(2)
		for i := 0; i < n; i++ {
			c.Whens = append(c.Whens, sql.CaseWhen{
				Cond:   g.genPred(depth, sc, complexity-1),
				Result: g.genScalar(depth, sc, complexity-1, types.KindInt),
			})
		}
		if g.rng.chance(0.7) {
			c.Else = g.genScalar(depth, sc, complexity-1, types.KindInt)
		}
		return c
	default:
		if depth > 0 {
			return g.genScalarSub(depth, sc, types.KindInt)
		}
		return g.genColRefOr(sc, types.KindInt)
	}
}

// genStrScalar builds a string-kinded expression: column references, string
// literals, || concatenation, upper/lower/substr, CAST to string, CASE with
// string results, and string-valued scalar subqueries (min/max).
func (g *Gen) genStrScalar(depth int, sc *scope, complexity int) sql.Expr {
	roll := g.rng.intn(100)
	switch {
	case complexity <= 0 || roll < 40:
		return g.genColRefOr(sc, types.KindString)
	case roll < 52:
		return g.genStrLit()
	case roll < 66:
		return sql.Binary{
			Op: "||",
			L:  g.genStrScalar(depth, sc, complexity-1),
			R:  g.genStrScalar(depth, sc, complexity-1),
		}
	case roll < 76:
		fn := []string{"upper", "lower"}[g.rng.intn(2)]
		return sql.Call{Name: fn, Args: []sql.Expr{g.genStrScalar(depth, sc, complexity-1)}}
	case roll < 84:
		args := []sql.Expr{
			g.genStrScalar(depth, sc, complexity-1),
			sql.NumLit{Int: int64(g.rng.intn(3))},
		}
		if g.rng.chance(0.6) {
			args = append(args, sql.NumLit{Int: int64(1 + g.rng.intn(3))})
		}
		return sql.Call{Name: "substr", Args: args}
	case roll < 90:
		return sql.CastExpr{E: g.genScalar(depth, sc, complexity-1, types.KindInt), Type: "string"}
	case roll < 96 || depth <= 0:
		c := sql.Case{}
		n := 1 + g.rng.intn(2)
		for i := 0; i < n; i++ {
			c.Whens = append(c.Whens, sql.CaseWhen{
				Cond:   g.genPred(depth, sc, complexity-1),
				Result: g.genStrScalar(depth, sc, complexity-1),
			})
		}
		if g.rng.chance(0.7) {
			c.Else = g.genStrScalar(depth, sc, complexity-1)
		}
		return c
	default:
		return g.genScalarSub(depth, sc, types.KindString)
	}
}

// genScalarSub builds a scalar subquery guaranteed to yield exactly one
// row: a global aggregate (no GROUP BY) over one table, optionally
// correlated with the enclosing scope. A string-kinded subquery aggregates
// min/max over the string table.
func (g *Gen) genScalarSub(depth int, sc *scope, kind types.Kind) sql.Expr {
	var ref sql.TableRef
	var rels []scopeRel
	var strCol string
	if kind == types.KindString {
		// Scan a table that has a string column (derived from the schema,
		// not a fixed position).
		name, cols, col := stringTable()
		strCol = col
		alias := g.freshAlias()
		ref = sql.TableRef{Table: name, Alias: alias}
		rels = []scopeRel{{alias: alias, cols: cols}}
	} else {
		ref, rels = g.genBaseRef()
	}
	inner := &scope{rels: rels, outer: sc}
	sub := &sql.SelectStmt{Limit: -1, From: []sql.TableRef{ref}}
	if g.rng.chance(0.6) {
		sub.Where = g.genPred(depth-1, inner, 1)
	}
	var agg sql.Expr
	if kind == types.KindString {
		fn := []string{"min", "max"}[g.rng.intn(2)]
		agg = sql.Call{Name: fn, Args: []sql.Expr{sql.Ident{Qual: rels[0].alias, Name: strCol}}}
	} else {
		for {
			var k types.Kind
			agg, k = g.genAggCall(inner)
			if k != types.KindString {
				break
			}
		}
	}
	sub.Cols = []sql.SelectCol{{E: agg, Alias: g.freshCol()}}
	return sql.ScalarSub{Sub: &sql.Stmt{Left: sub}}
}

// genSub builds a subquery for IN/ANY/ALL (shape of one column of the
// wanted kind) or EXISTS (shape nil = free), possibly correlated with the
// enclosing scope chain.
func (g *Gen) genSub(depth int, sc *scope, shape []types.Kind) *sql.Stmt {
	var outer *scope
	if g.rng.chance(0.55) {
		outer = sc // correlation allowed
	}
	sel, _ := g.genSelect(depth-1, outer, shape, g.rng.chance(0.15))
	return &sql.Stmt{Left: sel}
}

// genPred builds a boolean predicate over the scope. All comparisons are
// kind-consistent: the analyzer rejects string-vs-number operands, so the
// generator never produces them.
func (g *Gen) genPred(depth int, sc *scope, complexity int) sql.Expr {
	roll := g.rng.intn(100)
	sub := depth > 0 && complexity > 0
	// predKind chooses which family a comparison works in.
	predKind := types.KindInt
	if g.rng.chance(0.3) {
		predKind = types.KindString
	}
	switch {
	case complexity <= 0 || roll < 24:
		r := g.genLit(predKind)
		if g.rng.chance(0.5) {
			r = g.genColRefOr(sc, predKind)
		}
		return sql.Binary{Op: cmpOp(g.rng), L: g.genColRefOr(sc, predKind), R: r}
	case roll < 31:
		// LIKE over a string expression and a pattern from the fixed pool.
		pat := sql.Expr(sql.StrLit{S: likePatterns[g.rng.intn(len(likePatterns))]})
		return sql.Like{
			E:       g.genStrScalar(depth, sc, complexity-1),
			Pattern: pat,
			Not:     g.rng.chance(0.3),
		}
	case roll < 39:
		return sql.Binary{Op: "AND", L: g.genPred(depth, sc, complexity-1), R: g.genPred(depth, sc, complexity-1)}
	case roll < 46:
		return sql.Binary{Op: "OR", L: g.genPred(depth, sc, complexity-1), R: g.genPred(depth, sc, complexity-1)}
	case roll < 51:
		return sql.Unary{Op: "NOT", E: g.genPred(depth, sc, complexity-1)}
	case roll < 57:
		return sql.IsNull{E: g.genColRefOr(sc, predKind), Not: g.rng.chance(0.4)}
	case roll < 62:
		return sql.Between{
			E:   g.genColRefOr(sc, predKind),
			Lo:  g.genLit(predKind),
			Hi:  g.genLit(predKind),
			Not: g.rng.chance(0.3),
		}
	case roll < 68:
		n := 1 + g.rng.intn(3)
		list := make([]sql.Expr, n)
		for i := range list {
			list[i] = g.genLit(predKind)
		}
		return sql.InList{E: g.genColRefOr(sc, predKind), List: list, Not: g.rng.chance(0.3)}
	case roll < 77 && sub:
		return sql.InSub{
			E:   g.genScalar(0, sc, 1, predKind),
			Sub: g.genSub(depth, sc, []types.Kind{predKind}),
			Not: g.rng.chance(0.3),
		}
	case roll < 85 && sub:
		return sql.Quant{
			Op:  cmpOp(g.rng),
			Any: g.rng.chance(0.5),
			E:   g.genScalar(0, sc, 1, predKind),
			Sub: g.genSub(depth, sc, []types.Kind{predKind}),
		}
	case roll < 94 && sub:
		return sql.Exists{Sub: g.genSub(depth, sc, nil), Not: g.rng.chance(0.35)}
	default:
		return sql.Binary{
			Op: cmpOp(g.rng),
			L:  g.genScalar(0, sc, 1, predKind),
			R:  g.genScalar(0, sc, 1, predKind),
		}
	}
}

package fuzz

import (
	"strconv"

	"perm"
	"perm/internal/sql"
)

// The fixed fuzz schema: three small integer tables. Distinct column names
// across tables keep unqualified references unambiguous; the generator still
// qualifies most references through always-fresh aliases, so self-joins are
// safe too. Values are integers drawn from a tiny domain with NULLs and
// duplicate rows mixed in — the regime where bag semantics, three-valued
// logic and sublink edge cases (empty subquery results, NULL probes) are
// all exercised.
var fuzzTables = []struct {
	name string
	cols []string
}{
	{"r", []string{"a", "b"}},
	{"s", []string{"c", "d"}},
	{"t", []string{"e", "f"}},
}

// splitmix-style deterministic rng (no package state, replayable by seed).
type rng struct{ state uint64 }

func newRng(seed int64) *rng { return &rng{state: uint64(seed)*0x9E3779B9 + 0x2545F4914F6CDD1D} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
func (r *rng) chance(p float64) bool {
	return float64(r.next()>>11)/float64(1<<53) < p
}

// NewDB builds the fuzz database for one seed: the three tables filled with
// NULL-rich, duplicate-rich integer rows. Tables are kept tiny (4–6 rows)
// so even the Gen strategy's CrossBase products over nested sublinks stay
// cheap enough for thousands of differential runs.
func NewDB(seed int64) *perm.DB {
	r := newRng(seed ^ 0x5EED)
	db := perm.Open()
	for _, tb := range fuzzTables {
		n := 3 + r.intn(3)
		rows := make([][]any, 0, n)
		for i := 0; i < n; i++ {
			row := make([]any, len(tb.cols))
			for j := range tb.cols {
				if r.chance(0.15) {
					row[j] = nil
				} else {
					row[j] = r.intn(6) - 1 // domain [-1, 4]
				}
			}
			rows = append(rows, row)
			if r.chance(0.25) { // duplicate row: bag multiplicities > 1
				rows = append(rows, row)
			}
		}
		if err := db.Register(tb.name, tb.cols, rows); err != nil {
			panic(err) // fixed schema; cannot fail
		}
	}
	return db
}

// OrderCheck describes one top-level ORDER BY key that is a visible output
// column, so the oracle can verify the presented row order semantically.
type OrderCheck struct {
	Col  int // result column index
	Desc bool
}

// Query is one generated (or shrunk) query with the metadata the oracle
// needs.
type Query struct {
	Stmt *sql.Stmt
	SQL  string
	// UsesLimit reports a LIMIT or OFFSET anywhere in the tree; the
	// provenance rewrite rejects those, so the oracle skips the strategy
	// matrix for them.
	UsesLimit bool
	// OrderChecks are the top-level ORDER BY keys resolvable to visible
	// output columns (hidden-key and expression keys are exercised but not
	// semantically order-checked).
	OrderChecks []OrderCheck
	// Scans counts base-table references anywhere in the query. The Gen
	// strategy's CrossBase is a product over all sublink base relations, so
	// the oracle bounds the provenance matrix by this count.
	Scans int
}

// Finalize derives a Query from a statement AST: renders it and recomputes
// the oracle metadata. The shrinker calls it after every reduction.
func Finalize(st *sql.Stmt) *Query {
	return &Query{
		Stmt:        st,
		SQL:         Render(st),
		UsesLimit:   stmtUsesLimit(st),
		OrderChecks: orderChecks(st),
		Scans:       stmtScans(st),
	}
}

// stmtScans counts base-table references anywhere in the statement.
func stmtScans(st *sql.Stmt) int {
	n := 0
	visitSelects(st, func(sel *sql.SelectStmt) {
		for _, ref := range sel.From {
			n += refBases(ref)
		}
	})
	return n
}

// refBases counts the base tables of one FROM item; derived tables count
// through their own select blocks (visited separately by visitSelects).
func refBases(ref sql.TableRef) int {
	switch {
	case ref.Join != nil:
		return refBases(ref.Join.Left) + refBases(ref.Join.Right)
	case ref.Sub != nil:
		return 0
	default:
		return 1
	}
}

// stmtUsesLimit reports a LIMIT or OFFSET on any block of the statement.
func stmtUsesLimit(st *sql.Stmt) bool {
	found := false
	visitSelects(st, func(sel *sql.SelectStmt) {
		if sel.Limit >= 0 || sel.Offset > 0 {
			found = true
		}
	})
	return found
}

// visitSelects calls fn for every select block of the statement — set
// operation arms, derived tables and the subqueries nested anywhere in its
// expressions. The single traversal keeps the oracle metadata (scan
// counts, limit detection) in one place: a new expression node needs
// exactly one new arm here.
func visitSelects(st *sql.Stmt, fn func(*sql.SelectStmt)) {
	if st == nil {
		return
	}
	sel := st.Left
	fn(sel)
	for _, ref := range sel.From {
		visitRefSelects(ref, fn)
	}
	for _, e := range collectExprs(sel) {
		visitExprSelects(e, fn)
	}
	if st.SetOp != nil {
		visitSelects(st.SetOp.Right, fn)
	}
}

func visitRefSelects(ref sql.TableRef, fn func(*sql.SelectStmt)) {
	switch {
	case ref.Join != nil:
		visitRefSelects(ref.Join.Left, fn)
		visitRefSelects(ref.Join.Right, fn)
		visitExprSelects(ref.Join.On, fn)
	case ref.Sub != nil:
		visitSelects(ref.Sub, fn)
	}
}

// collectExprs gathers the clause expressions of one select block.
func collectExprs(sel *sql.SelectStmt) []sql.Expr {
	var out []sql.Expr
	for _, c := range sel.Cols {
		out = append(out, c.E)
	}
	if sel.Where != nil {
		out = append(out, sel.Where)
	}
	out = append(out, sel.GroupBy...)
	if sel.Having != nil {
		out = append(out, sel.Having)
	}
	for _, k := range sel.OrderBy {
		out = append(out, k.E)
	}
	return out
}

// visitExprSelects descends into the subqueries embedded in an expression.
func visitExprSelects(e sql.Expr, fn func(*sql.SelectStmt)) {
	switch x := e.(type) {
	case sql.Binary:
		visitExprSelects(x.L, fn)
		visitExprSelects(x.R, fn)
	case sql.Unary:
		visitExprSelects(x.E, fn)
	case sql.IsNull:
		visitExprSelects(x.E, fn)
	case sql.InList:
		visitExprSelects(x.E, fn)
		for _, it := range x.List {
			visitExprSelects(it, fn)
		}
	case sql.InSub:
		visitExprSelects(x.E, fn)
		visitSelects(x.Sub, fn)
	case sql.Quant:
		visitExprSelects(x.E, fn)
		visitSelects(x.Sub, fn)
	case sql.Exists:
		visitSelects(x.Sub, fn)
	case sql.ScalarSub:
		visitSelects(x.Sub, fn)
	case sql.Call:
		for _, a := range x.Args {
			visitExprSelects(a, fn)
		}
	case sql.Between:
		visitExprSelects(x.E, fn)
		visitExprSelects(x.Lo, fn)
		visitExprSelects(x.Hi, fn)
	case sql.Case:
		if x.Operand != nil {
			visitExprSelects(x.Operand, fn)
		}
		for _, w := range x.Whens {
			visitExprSelects(w.Cond, fn)
			visitExprSelects(w.Result, fn)
		}
		if x.Else != nil {
			visitExprSelects(x.Else, fn)
		}
	}
}

// orderChecks maps the top-level ORDER BY keys onto visible result column
// indexes where possible: a key naming a select-list alias, or structurally
// equal to a select-list expression. Set operations have no statement-level
// ORDER BY in this dialect, so they contribute no checks.
func orderChecks(st *sql.Stmt) []OrderCheck {
	if st == nil || st.SetOp != nil {
		return nil
	}
	sel := st.Left
	if sel.Star || len(sel.OrderBy) == 0 {
		return nil
	}
	var out []OrderCheck
	for _, k := range sel.OrderBy {
		id, ok := k.E.(sql.Ident)
		if !ok || id.Qual != "" {
			// Qualified and expression keys may be hidden-column keys; the
			// differential comparison still covers them.
			return out
		}
		found := -1
		for i, c := range sel.Cols {
			if c.Alias == id.Name {
				found = i
				break
			}
			if cid, isID := c.E.(sql.Ident); isID && c.Alias == "" && cid.Name == id.Name {
				found = i
				break
			}
		}
		if found < 0 {
			return out
		}
		out = append(out, OrderCheck{Col: found, Desc: k.Desc})
	}
	return out
}

// Gen is a deterministic random query generator over the fuzz schema.
type Gen struct {
	rng      *rng
	aliasSeq int
	colSeq   int
}

// NewGen returns a generator for one seed.
func NewGen(seed int64) *Gen { return &Gen{rng: newRng(seed)} }

// scopeRel is one FROM item visible in a scope: its alias and column names.
type scopeRel struct {
	alias string
	cols  []string
}

// scope is the name environment of one query block, linked to the enclosing
// block for correlated references.
type scope struct {
	rels  []scopeRel
	outer *scope
}

// colRef is one referencable column.
type colRef struct {
	qual, name string
}

func (s *scope) ownCols() []colRef {
	var out []colRef
	for _, r := range s.rels {
		for _, c := range r.cols {
			out = append(out, colRef{qual: r.alias, name: c})
		}
	}
	return out
}

func (g *Gen) freshAlias() string {
	g.aliasSeq++
	return "f" + strconv.Itoa(g.aliasSeq)
}

func (g *Gen) freshCol() string {
	g.colSeq++
	return "x" + strconv.Itoa(g.colSeq)
}

// Next generates one random query. Alias and column counters reset per
// query so rendered SQL is stable under replay of the same seed sequence.
func (g *Gen) Next() *Query {
	g.aliasSeq, g.colSeq = 0, 0
	var st *sql.Stmt
	if g.rng.chance(0.10) {
		st = g.genSetOp()
	} else {
		st = &sql.Stmt{Left: g.genSelect(2, nil, 0, true)}
	}
	return Finalize(st)
}

// genSetOp builds a set operation of two or three arms with matching width.
// Arms carry no ORDER BY or LIMIT (the dialect has no statement-level ORDER
// BY for set operations, and arm-level ordering is unobservable).
func (g *Gen) genSetOp() *sql.Stmt {
	width := 1 + g.rng.intn(2)
	kinds := []string{"UNION", "INTERSECT", "EXCEPT"}
	st := &sql.Stmt{Left: g.genSelect(1, nil, width, false)}
	st.SetOp = &sql.SetOpClause{
		Kind:  kinds[g.rng.intn(len(kinds))],
		All:   g.rng.chance(0.5),
		Right: &sql.Stmt{Left: g.genSelect(1, nil, width, false)},
	}
	if g.rng.chance(0.25) {
		st.SetOp.Right.SetOp = &sql.SetOpClause{
			Kind:  kinds[g.rng.intn(len(kinds))],
			All:   g.rng.chance(0.5),
			Right: &sql.Stmt{Left: g.genSelect(1, nil, width, false)},
		}
	}
	return st
}

// genSelect builds one SELECT block. depth bounds subquery nesting; outer
// is the enclosing scope chain for correlated sublinks (nil for derived
// tables, which cannot correlate); width forces the output column count
// (0 = free); orderable allows ORDER BY/LIMIT on this block.
func (g *Gen) genSelect(depth int, outer *scope, width int, orderable bool) *sql.SelectStmt {
	sel := &sql.SelectStmt{Limit: -1}

	// FROM: one or two items, each a base table, derived table or join.
	// Nested blocks stay light: every base relation inside a sublink
	// multiplies the Gen strategy's CrossBase, so breadth lives at the top
	// level and depth in the nesting.
	sc := &scope{outer: outer}
	nFrom := 1
	if depth >= 2 && g.rng.chance(0.3) {
		nFrom = 2
	}
	for i := 0; i < nFrom; i++ {
		ref, rels := g.genFromItem(depth)
		sel.From = append(sel.From, ref)
		sc.rels = append(sc.rels, rels...)
	}

	// WHERE.
	if g.rng.chance(0.7) {
		sel.Where = g.genPred(depth, sc, 2)
	}

	grouped := width == 0 && g.rng.chance(0.18) && len(sc.ownCols()) > 0
	if grouped {
		g.genGroupedOutput(sel, sc, orderable)
		return sel
	}

	// Plain output list.
	n := width
	if n == 0 {
		n = 1 + g.rng.intn(3)
	}
	for i := 0; i < n; i++ {
		e := g.genScalar(depth, sc, 2)
		sel.Cols = append(sel.Cols, sql.SelectCol{E: e, Alias: g.freshCol()})
	}
	if width == 0 && g.rng.chance(0.12) {
		sel.Distinct = true
	}

	if orderable {
		g.genOrderLimit(sel, sc)
	}
	return sel
}

// genFromItem builds one FROM item and the scope entries it contributes.
func (g *Gen) genFromItem(depth int) (sql.TableRef, []scopeRel) {
	roll := g.rng.intn(100)
	derivedCut, joinCut := 20, 45
	if depth < 2 {
		derivedCut, joinCut = 10, 22 // inside subqueries, prefer plain base tables
	}
	switch {
	case roll < derivedCut && depth > 0:
		// Derived table; cannot correlate outward, may order internally
		// (exercising order propagation and hidden-key LIMIT cuts).
		sub := g.genSelect(depth-1, nil, 0, true)
		alias := g.freshAlias()
		cols := make([]string, len(sub.Cols))
		for i, c := range sub.Cols {
			cols[i] = c.Alias
		}
		if sub.Star {
			cols = nil // not generated: derived tables always alias columns
		}
		return sql.TableRef{Sub: &sql.Stmt{Left: sub}, Alias: alias}, []scopeRel{{alias: alias, cols: cols}}
	case roll < joinCut:
		// Join of two base tables.
		l, lrels := g.genBaseRef()
		r, rrels := g.genBaseRef()
		lc := lrels[0]
		rc := rrels[0]
		on := sql.Expr(sql.Binary{
			Op: "=",
			L:  sql.Ident{Qual: lc.alias, Name: lc.cols[g.rng.intn(len(lc.cols))]},
			R:  sql.Ident{Qual: rc.alias, Name: rc.cols[g.rng.intn(len(rc.cols))]},
		})
		return sql.TableRef{Join: &sql.JoinRef{
			Left: l, Right: r, LeftOuter: g.rng.chance(0.35), On: on,
		}}, append(lrels, rrels...)
	default:
		return g.genBaseRef()
	}
}

func (g *Gen) genBaseRef() (sql.TableRef, []scopeRel) {
	tb := fuzzTables[g.rng.intn(len(fuzzTables))]
	alias := g.freshAlias()
	return sql.TableRef{Table: tb.name, Alias: alias}, []scopeRel{{alias: alias, cols: tb.cols}}
}

// genGroupedOutput turns the block into a GROUP BY query: grouping columns
// plus aggregates in the select list, optional HAVING, ORDER BY over the
// output (including, sometimes, an aggregate not in the select list — a
// hidden-key sort over the aggregation schema).
func (g *Gen) genGroupedOutput(sel *sql.SelectStmt, sc *scope, orderable bool) {
	cols := sc.ownCols()
	nGroup := 1 + g.rng.intn(2)
	seen := map[string]bool{}
	for i := 0; i < nGroup; i++ {
		c := cols[g.rng.intn(len(cols))]
		key := c.qual + "." + c.name
		if seen[key] {
			continue
		}
		seen[key] = true
		id := sql.Ident{Qual: c.qual, Name: c.name}
		sel.GroupBy = append(sel.GroupBy, id)
		sel.Cols = append(sel.Cols, sql.SelectCol{E: id, Alias: g.freshCol()})
	}
	nAgg := 1 + g.rng.intn(2)
	for i := 0; i < nAgg; i++ {
		sel.Cols = append(sel.Cols, sql.SelectCol{E: g.genAggCall(sc), Alias: g.freshCol()})
	}
	if g.rng.chance(0.4) {
		sel.Having = sql.Binary{Op: cmpOp(g.rng), L: g.genAggCall(sc), R: g.genIntLit()}
	}
	if orderable && g.rng.chance(0.5) {
		n := 1 + g.rng.intn(2)
		for i := 0; i < n; i++ {
			var key sql.Expr
			if g.rng.chance(0.75) {
				key = sql.Ident{Name: sel.Cols[g.rng.intn(len(sel.Cols))].Alias}
			} else {
				key = g.genAggCall(sc) // possibly not in the select list
			}
			sel.OrderBy = append(sel.OrderBy, sql.OrderKey{E: key, Desc: g.rng.chance(0.5)})
		}
		g.maybeLimit(sel)
	}
}

func (g *Gen) genAggCall(sc *scope) sql.Expr {
	fns := []string{"count", "sum", "min", "max", "avg"}
	fn := fns[g.rng.intn(len(fns))]
	if fn == "count" && g.rng.chance(0.3) {
		return sql.Call{Name: "count", Star: true}
	}
	cols := sc.ownCols()
	c := cols[g.rng.intn(len(cols))]
	return sql.Call{
		Name:     fn,
		Args:     []sql.Expr{sql.Ident{Qual: c.qual, Name: c.name}},
		Distinct: g.rng.chance(0.15),
	}
}

// genOrderLimit adds ORDER BY (over aliases, scope columns — the
// hidden-key path — or expressions) and, only under an order, LIMIT/OFFSET
// (an unordered limit's row choice is unspecified, so the differential
// would false-positive on it).
func (g *Gen) genOrderLimit(sel *sql.SelectStmt, sc *scope) {
	if !g.rng.chance(0.5) {
		return
	}
	n := 1 + g.rng.intn(2)
	for i := 0; i < n; i++ {
		var key sql.Expr
		switch roll := g.rng.intn(100); {
		case roll < 45:
			key = sql.Ident{Name: sel.Cols[g.rng.intn(len(sel.Cols))].Alias}
		case roll < 80 && !sel.Distinct:
			// A scope column, usually not projected: the hidden-key path.
			cols := sc.ownCols()
			c := cols[g.rng.intn(len(cols))]
			key = sql.Ident{Qual: c.qual, Name: c.name}
		default:
			key = sql.Binary{
				Op: "+",
				L:  sql.Ident{Name: sel.Cols[g.rng.intn(len(sel.Cols))].Alias},
				R:  g.genIntLit(),
			}
		}
		sel.OrderBy = append(sel.OrderBy, sql.OrderKey{E: key, Desc: g.rng.chance(0.5)})
	}
	g.maybeLimit(sel)
}

func (g *Gen) maybeLimit(sel *sql.SelectStmt) {
	if len(sel.OrderBy) == 0 || !g.rng.chance(0.4) {
		return
	}
	sel.Limit = g.rng.intn(5)
	if g.rng.chance(0.3) {
		sel.Offset = g.rng.intn(3)
	}
}

func cmpOp(r *rng) string {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	return ops[r.intn(len(ops))]
}

func (g *Gen) genIntLit() sql.Expr {
	n := int64(g.rng.intn(6) - 1)
	return sql.NumLit{Int: n}
}

// genColRef picks a column reference: usually from the current scope,
// sometimes (when enclosing scopes exist) a correlated outer reference.
// References are always alias-qualified — aliases are generation-unique, so
// qualification is never ambiguous.
func (g *Gen) genColRef(sc *scope) sql.Expr {
	pick := sc
	if pick.outer != nil && g.rng.chance(0.3) {
		pick = pick.outer
		if pick.outer != nil && g.rng.chance(0.2) {
			pick = pick.outer
		}
	}
	cols := pick.ownCols()
	if len(cols) == 0 {
		cols = sc.ownCols()
	}
	c := cols[g.rng.intn(len(cols))]
	return sql.Ident{Qual: c.qual, Name: c.name}
}

// genScalar builds an integer-valued expression over the scope.
func (g *Gen) genScalar(depth int, sc *scope, complexity int) sql.Expr {
	roll := g.rng.intn(100)
	switch {
	case complexity <= 0 || roll < 55:
		return g.genColRef(sc)
	case roll < 65:
		return g.genIntLit()
	case roll < 80:
		ops := []string{"+", "-", "*"}
		return sql.Binary{
			Op: ops[g.rng.intn(len(ops))],
			L:  g.genScalar(depth, sc, complexity-1),
			R:  g.genScalar(depth, sc, complexity-1),
		}
	case roll < 92:
		c := sql.Case{}
		n := 1 + g.rng.intn(2)
		for i := 0; i < n; i++ {
			c.Whens = append(c.Whens, sql.CaseWhen{
				Cond:   g.genPred(depth, sc, complexity-1),
				Result: g.genScalar(depth, sc, complexity-1),
			})
		}
		if g.rng.chance(0.7) {
			c.Else = g.genScalar(depth, sc, complexity-1)
		}
		return c
	default:
		if depth > 0 {
			return g.genScalarSub(depth, sc)
		}
		return g.genColRef(sc)
	}
}

// genScalarSub builds a scalar subquery guaranteed to yield exactly one
// row: a global aggregate (no GROUP BY) over one table, optionally
// correlated with the enclosing scope.
func (g *Gen) genScalarSub(depth int, sc *scope) sql.Expr {
	ref, rels := g.genBaseRef()
	inner := &scope{rels: rels, outer: sc}
	sub := &sql.SelectStmt{Limit: -1, From: []sql.TableRef{ref}}
	if g.rng.chance(0.6) {
		sub.Where = g.genPred(depth-1, inner, 1)
	}
	agg := g.genAggCall(inner)
	sub.Cols = []sql.SelectCol{{E: agg, Alias: g.freshCol()}}
	return sql.ScalarSub{Sub: &sql.Stmt{Left: sub}}
}

// genSub builds a subquery for IN/ANY/ALL (width 1) or EXISTS (width 0 =
// free), possibly correlated with the enclosing scope chain.
func (g *Gen) genSub(depth int, sc *scope, width int) *sql.Stmt {
	var outer *scope
	if g.rng.chance(0.55) {
		outer = sc // correlation allowed
	}
	sel := g.genSelect(depth-1, outer, width, g.rng.chance(0.15))
	return &sql.Stmt{Left: sel}
}

// genPred builds a boolean predicate over the scope.
func (g *Gen) genPred(depth int, sc *scope, complexity int) sql.Expr {
	roll := g.rng.intn(100)
	sub := depth > 0 && complexity > 0
	switch {
	case complexity <= 0 || roll < 28:
		r := sql.Expr(g.genIntLit())
		if g.rng.chance(0.5) {
			r = g.genColRef(sc)
		}
		return sql.Binary{Op: cmpOp(g.rng), L: g.genColRef(sc), R: r}
	case roll < 38:
		return sql.Binary{Op: "AND", L: g.genPred(depth, sc, complexity-1), R: g.genPred(depth, sc, complexity-1)}
	case roll < 46:
		return sql.Binary{Op: "OR", L: g.genPred(depth, sc, complexity-1), R: g.genPred(depth, sc, complexity-1)}
	case roll < 52:
		return sql.Unary{Op: "NOT", E: g.genPred(depth, sc, complexity-1)}
	case roll < 59:
		return sql.IsNull{E: g.genColRef(sc), Not: g.rng.chance(0.4)}
	case roll < 65:
		return sql.Between{E: g.genColRef(sc), Lo: g.genIntLit(), Hi: g.genIntLit(), Not: g.rng.chance(0.3)}
	case roll < 71:
		n := 1 + g.rng.intn(3)
		list := make([]sql.Expr, n)
		for i := range list {
			list[i] = g.genIntLit()
		}
		return sql.InList{E: g.genColRef(sc), List: list, Not: g.rng.chance(0.3)}
	case roll < 79 && sub:
		return sql.InSub{E: g.genScalar(0, sc, 1), Sub: g.genSub(depth, sc, 1), Not: g.rng.chance(0.3)}
	case roll < 86 && sub:
		return sql.Quant{
			Op:  cmpOp(g.rng),
			Any: g.rng.chance(0.5),
			E:   g.genScalar(0, sc, 1),
			Sub: g.genSub(depth, sc, 1),
		}
	case roll < 95 && sub:
		return sql.Exists{Sub: g.genSub(depth, sc, 0), Not: g.rng.chance(0.35)}
	default:
		return sql.Binary{Op: cmpOp(g.rng), L: g.genScalar(0, sc, 1), R: g.genScalar(0, sc, 1)}
	}
}

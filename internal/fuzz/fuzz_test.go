package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"perm"
	"perm/internal/sql"
)

// TestGeneratorDeterministic: the same seed must yield the same query
// sequence — failure reports are replayed by (seed, index).
func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGen(7), NewGen(7)
	for i := 0; i < 200; i++ {
		qa, qb := a.Next(), b.Next()
		if qa.SQL != qb.SQL {
			t.Fatalf("query %d diverges:\n%s\n%s", i, qa.SQL, qb.SQL)
		}
	}
}

// TestRenderParseRoundTrip: rendered queries must parse, and re-rendering
// the parse must be a fixpoint (the corpus stores rendered text, so the
// parser and renderer must agree).
func TestRenderParseRoundTrip(t *testing.T) {
	g := NewGen(3)
	for i := 0; i < 500; i++ {
		q := g.Next()
		st, err := sql.Parse(q.SQL)
		if err != nil {
			t.Fatalf("query %d does not parse: %v\n%s", i, err, q.SQL)
		}
		if again := Render(st); again != q.SQL {
			t.Fatalf("query %d is not a render fixpoint:\n%s\n%s", i, q.SQL, again)
		}
	}
}

// fuzzN is the bounded corpus run wired into go test: at least the 2,000
// queries the differential guarantee is stated over.
const fuzzN = 2200

// TestFuzzDifferential generates fuzzN queries from a fixed seed and runs
// each through the full differential matrix. Failures are shrunk before
// reporting.
func TestFuzzDifferential(t *testing.T) {
	n := fuzzN
	if testing.Short() {
		n = 250
	}
	const seed = 1
	db := NewDB(seed)
	g := NewGen(seed)
	queries := make([]*Query, n)
	for i := range queries {
		queries[i] = g.Next()
	}

	type failure struct {
		idx int
		err error
		q   *Query
	}
	var (
		mu       sync.Mutex
		failures []failure
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		mu.Lock()
		full := len(failures) >= 3 // enough evidence; stop collecting
		mu.Unlock()
		if full {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q *Query) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := Check(db, q); err != nil {
				mu.Lock()
				failures = append(failures, failure{idx: i, err: err, q: q})
				mu.Unlock()
			}
		}(i, q)
	}
	wg.Wait()
	for _, f := range failures {
		min := Shrink(db, f.q, 200)
		minErr := Check(db, min)
		t.Errorf("seed %d query %d disagrees: %v\noriginal:  %s\nminimized: %s\nminimized failure: %v",
			seed, f.idx, f.err, f.q.SQL, min.SQL, minErr)
	}
	if len(failures) == 0 {
		t.Logf("%d queries, full differential matrix, zero disagreements", n)
	}
}

// TestFuzzCorpus replays the checked-in minimized repros. A file may
// declare "-- expect-error: <substring>": then every executor mode must
// fail with a matching error. All other files must pass the full oracle.
func TestFuzzCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-corpus", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fuzz corpus found: %v", err)
	}
	db := NewDB(1) // corpus cases are stated over the seed-1 data
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			expectErr := ""
			var sqlLines []string
			for _, line := range strings.Split(string(raw), "\n") {
				trimmed := strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(trimmed, "-- expect-error:"); ok {
					expectErr = strings.TrimSpace(rest)
					continue
				}
				if strings.HasPrefix(trimmed, "--") || trimmed == "" {
					continue
				}
				sqlLines = append(sqlLines, trimmed)
			}
			query := strings.Join(sqlLines, " ")
			if query == "" {
				t.Fatalf("%s contains no SQL", file)
			}
			if expectErr != "" {
				first := ""
				for _, m := range Modes {
					_, err := db.Query(query, m.Opts...)
					if err == nil {
						t.Fatalf("%s: expected an error containing %q, got success", m.Name, expectErr)
					}
					if !strings.Contains(err.Error(), expectErr) {
						t.Fatalf("%s: error %q does not contain %q", m.Name, err, expectErr)
					}
					if first == "" {
						first = err.Error()
					} else if err.Error() != first {
						t.Fatalf("%s: error class diverged: %q vs %q", m.Name, err, first)
					}
				}
				// Compile-stage errors (semantic analysis) must keep their
				// class under SELECT PROVENANCE for every rewrite strategy
				// too — the analyzer runs before the rewrite, so no strategy
				// may succeed or fail differently. (The PROVENANCE keyword
				// shifts byte positions, so the comparison is by class, not
				// by exact message.)
				if strings.HasPrefix(first, "sql:") {
					provQ := "SELECT PROVENANCE" + strings.TrimPrefix(query, "SELECT")
					for _, s := range Strategies {
						_, err := db.Query(provQ, perm.WithStrategy(s))
						if err == nil || !strings.Contains(err.Error(), expectErr) {
							t.Fatalf("%s: provenance error class diverged: %v, want %q", s, err, expectErr)
						}
					}
				}
				return
			}
			st, err := sql.Parse(query)
			if err != nil {
				t.Fatalf("corpus query does not parse: %v", err)
			}
			if err := Check(db, Finalize(st)); err != nil {
				t.Errorf("corpus query disagrees: %v\n%s", err, query)
			}
		})
	}
}

// TestShrinkTerminates: the shrinker terminates within its budget and
// never returns a larger query than it was given.
func TestShrinkTerminates(t *testing.T) {
	db := NewDB(1)
	g := NewGen(5)
	q := g.Next()
	min := Shrink(db, q, 20)
	if min == nil || min.SQL == "" {
		t.Fatal("shrink returned nothing")
	}
	if len(min.SQL) > len(q.SQL) {
		t.Fatalf("shrink grew the query: %d -> %d", len(q.SQL), len(min.SQL))
	}
}

func ExampleRender() {
	st, _ := sql.Parse("SELECT a AS x FROM r ORDER BY b LIMIT 2")
	fmt.Println(Render(st))
	// Output: SELECT a AS x FROM r ORDER BY b LIMIT 2
}

// TestOrderChecksCastQuarantine: a CAST anywhere in the statement — even
// laundered through a derived-table column — disables semantic order
// checking, since cast digit-strings sort lexically in the engine but would
// be compared numerically by the checker (review-found false positive).
func TestOrderChecksCastQuarantine(t *testing.T) {
	st, err := sql.Parse(`SELECT f2.x1 AS y1 FROM (SELECT CAST(f1.a AS string) AS x1 FROM r AS f1) AS f2 ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	if checks := Finalize(st).OrderChecks; len(checks) != 0 {
		t.Fatalf("OrderChecks = %v, want none for a cast-bearing statement", checks)
	}
	// Cast-free keys stay checked.
	st, err = sql.Parse(`SELECT f1.a AS x1 FROM r AS f1 ORDER BY 1 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if checks := Finalize(st).OrderChecks; len(checks) != 1 || !checks[0].Desc || checks[0].Col != 0 {
		t.Fatalf("OrderChecks = %v, want one DESC check on column 0", checks)
	}
}

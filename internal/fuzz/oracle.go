package fuzz

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"perm"
)

// Mode is one executor configuration of the differential matrix.
type Mode struct {
	Name string
	Opts []perm.Option
}

// Modes is the executor matrix every query runs under: {streaming,
// materializing} × parallelism {1, 4}.
var Modes = []Mode{
	{"stream/seq", nil},
	{"stream/par4", []perm.Option{perm.WithParallelism(4)}},
	{"mat/seq", []perm.Option{perm.WithoutStreaming()}},
	{"mat/par4", []perm.Option{perm.WithoutStreaming(), perm.WithParallelism(4)}},
}

// Strategies is the provenance rewrite matrix.
var Strategies = []perm.Strategy{perm.Gen, perm.Left, perm.Move, perm.Unn, perm.UnnX, perm.Auto}

// MaxProvScans bounds the base-relation accesses of queries that enter the
// provenance strategy matrix (see Check). Variable so the long-budget
// fuzzer can raise it.
var MaxProvScans = 5

// PlanCheck makes every query of the matrix run under strict per-stage
// plan verification (perm.WithPlanCheck), so "plancheck clean at every
// stage" is an oracle assertion: a structural violation surfaces as a
// non-rewrite error and fails the check. On by default; permfuzz
// -plancheck=false turns it off.
var PlanCheck = true

// queryOpts prepends the plan-verification mode to a mode's options.
func queryOpts(opts []perm.Option) []perm.Option {
	if !PlanCheck {
		return opts
	}
	return append([]perm.Option{perm.WithPlanCheck(perm.PlanCheckStrict)}, opts...)
}

// outcome is one (query, strategy, mode) execution result.
type outcome struct {
	err  string   // "" on success
	rows []string // rendered rows in presentation order
	data int      // visible data columns (before provenance columns)
}

func run(db *perm.DB, q string, opts ...perm.Option) outcome {
	res, err := db.Query(q, queryOpts(opts)...)
	if err != nil {
		return outcome{err: err.Error()}
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = renderRow(r)
	}
	return outcome{rows: rows, data: res.DataColumns}
}

func renderRow(r []any) string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v == nil {
			parts[i] = "∅"
		} else {
			parts[i] = fmt.Sprintf("%v", v)
		}
	}
	return strings.Join(parts, "|")
}

// setFingerprint canonicalizes an outcome's distinct rows. Strategies are
// compared as witness sets: the multiplicity of an identical provenance row
// is a rewrite artifact (Gen's CrossBase keeps duplicate base tuples that a
// DISTINCT inside the sublink collapses in Left/Move), but which witness
// tuples appear is the paper's correctness claim. Executor modes of one
// strategy still compare exactly, row sequence and multiplicities included.
func setFingerprint(rows []string) string {
	return strings.Join(setList(distinctSet(rows)), "\n")
}

// isRewriteErr classifies errors raised by the provenance rewrite itself —
// the one legitimate per-strategy failure class (a strategy may be
// inapplicable to a sublink shape, and LIMIT has no provenance semantics).
// Anything else (parse, translate, evaluation) counts as a defect when the
// generator guarantees the query is valid.
func isRewriteErr(msg string) bool { return strings.HasPrefix(msg, "rewrite: ") }

// Check runs one generated query through the full differential matrix and
// returns an error describing the first disagreement (or illegal outcome),
// or nil when every combination agrees.
//
// Assertions, in order:
//  1. The plain query succeeds under every executor mode with the identical
//     presented row sequence (presentation is deterministic: the query's
//     ORDER BY where given, a canonical order otherwise).
//  2. Where top-level ORDER BY keys are visible output columns, the
//     presented sequence is actually sorted by them (NULLs last ascending,
//     first descending).
//  3. For each strategy, SELECT PROVENANCE under every executor mode yields
//     identical outcomes; rewrite-stage errors are allowed (inapplicable
//     strategy) but must be identical across modes, and no mode may fail
//     where another succeeds.
//  4. Every strategy that succeeds yields the identical provenance witness
//     set (multiplicities of identical provenance rows are rewrite
//     artifacts; see setFingerprint).
//  5. The distinct visible rows of every provenance result equal the
//     distinct rows of the plain result (the rewrite preserves the original
//     result set).
func Check(db *perm.DB, q *Query) error {
	// 1: plain query across executor modes.
	plain := make([]outcome, len(Modes))
	for i, m := range Modes {
		plain[i] = run(db, q.SQL, m.Opts...)
		if plain[i].err != "" {
			return fmt.Errorf("plain/%s failed on a generator-valid query: %s", m.Name, plain[i].err)
		}
	}
	for i := 1; i < len(plain); i++ {
		if !slices.Equal(plain[0].rows, plain[i].rows) {
			return fmt.Errorf("plain rows disagree: %s vs %s\n<<< %s\n>>> %s",
				Modes[0].Name, Modes[i].Name, strings.Join(plain[0].rows, " ; "), strings.Join(plain[i].rows, " ; "))
		}
	}

	// 2: semantic order check on the visible keys.
	if len(q.OrderChecks) > 0 {
		if err := checkSorted(plain[0].rows, q.OrderChecks); err != nil {
			return fmt.Errorf("plain result violates ORDER BY: %w", err)
		}
	}

	// 3–5: the provenance matrix. LIMIT/OFFSET queries are excluded up
	// front (the rewrite rejects them for every strategy), and so are
	// queries with more than MaxProvScans base-relation accesses — the Gen
	// strategy's CrossBase cost is exponential in that count, and the
	// matrix must stay cheap enough to run thousands of times per test run.
	// This is a cost cap, not a correctness statement: raise it in the
	// long-budget fuzzer (cmd/permfuzz) to widen coverage.
	if q.UsesLimit || q.Scans > MaxProvScans {
		return nil
	}
	provQ := "SELECT PROVENANCE" + strings.TrimPrefix(q.SQL, "SELECT")
	plainSet := distinctSet(plain[0].rows)
	type stratResult struct {
		strategy perm.Strategy
		bag      string
	}
	var succeeded []stratResult
	for _, s := range Strategies {
		outs := make([]outcome, len(Modes))
		for i, m := range Modes {
			opts := append([]perm.Option{perm.WithStrategy(s)}, m.Opts...)
			outs[i] = run(db, provQ, opts...)
		}
		for i := 1; i < len(outs); i++ {
			if outs[0].err != outs[i].err {
				return fmt.Errorf("%s: error class disagrees: %s says %q, %s says %q",
					s, Modes[0].Name, outs[0].err, Modes[i].Name, outs[i].err)
			}
		}
		if outs[0].err != "" {
			if !isRewriteErr(outs[0].err) {
				return fmt.Errorf("%s failed beyond the rewrite stage: %s", s, outs[0].err)
			}
			continue // strategy legitimately inapplicable
		}
		for i := 1; i < len(outs); i++ {
			if !slices.Equal(outs[0].rows, outs[i].rows) {
				return fmt.Errorf("%s: provenance rows disagree between %s and %s\n<<< %s\n>>> %s",
					s, Modes[0].Name, Modes[i].Name, strings.Join(outs[0].rows, " ; "), strings.Join(outs[i].rows, " ; "))
			}
		}
		if len(q.OrderChecks) > 0 {
			if err := checkSorted(outs[0].rows, q.OrderChecks); err != nil {
				return fmt.Errorf("%s: provenance result violates ORDER BY: %w", s, err)
			}
		}
		if got := dataSet(outs[0].rows, outs[0].data); !maps.Equal(plainSet, got) {
			return fmt.Errorf("%s: provenance result's visible rows differ from the plain result\nplain: %v\nprov:  %v",
				s, setList(plainSet), setList(got))
		}
		succeeded = append(succeeded, stratResult{strategy: s, bag: setFingerprint(outs[0].rows)})
	}
	for i := 1; i < len(succeeded); i++ {
		if succeeded[i].bag != succeeded[0].bag {
			return fmt.Errorf("provenance bags disagree: %s vs %s\n<<< %s\n>>> %s",
				succeeded[0].strategy, succeeded[i].strategy, succeeded[0].bag, succeeded[i].bag)
		}
	}
	return nil
}

func distinctSet(rows []string) map[string]bool {
	out := map[string]bool{}
	for _, r := range rows {
		out[r] = true
	}
	return out
}

// dataSet projects rendered provenance rows onto their first data columns.
func dataSet(rows []string, data int) map[string]bool {
	out := map[string]bool{}
	for _, r := range rows {
		parts := strings.Split(r, "|")
		if data < len(parts) {
			parts = parts[:data]
		}
		out[strings.Join(parts, "|")] = true
	}
	return out
}

func setList(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkSorted verifies rendered rows are ordered by the checked key
// columns: NULLs sort last ascending and first descending (the engine's
// documented PostgreSQL-default behaviour). Rendered rows are re-split;
// numeric cells compare numerically.
func checkSorted(rows []string, checks []OrderCheck) error {
	for i := 1; i < len(rows); i++ {
		prev := strings.Split(rows[i-1], "|")
		cur := strings.Split(rows[i], "|")
		for _, c := range checks {
			if c.Col >= len(prev) || c.Col >= len(cur) {
				break
			}
			cmp, ok := compareCells(prev[c.Col], cur[c.Col], c.Desc)
			if !ok {
				break // non-numeric or unparseable: skip the check
			}
			if cmp < 0 {
				break // strictly ordered by this key
			}
			if cmp > 0 {
				return fmt.Errorf("row %d (%s) sorts after row %d (%s) on column %d", i-1, rows[i-1], i, rows[i], c.Col)
			}
			// equal on this key: consult the next one
		}
	}
	return nil
}

// compareCells compares two rendered cells under one sort key: negative
// when a correctly precedes b. NULL handling follows the engine: last for
// ascending keys, first for descending.
func compareCells(a, b string, desc bool) (int, bool) {
	an, bn := a == "∅", b == "∅"
	switch {
	case an && bn:
		return 0, true
	case an:
		if desc {
			return -1, true
		}
		return 1, true
	case bn:
		if desc {
			return 1, true
		}
		return -1, true
	}
	af, aok := parseNum(a)
	bf, bok := parseNum(b)
	cmp := 0
	switch {
	case aok && bok:
		if af < bf {
			cmp = -1
		} else if af > bf {
			cmp = 1
		}
	case !aok && !bok:
		// Neither cell is numeric: compare as strings, matching the
		// engine's lexical string order. The generator's string domain is
		// digit-free, so a string-kinded cell never parses as a number.
		cmp = strings.Compare(a, b)
	default:
		return 0, false // mixed numeric/string cells: skip the check
	}
	if desc {
		cmp = -cmp
	}
	return cmp, true
}

func parseNum(s string) (float64, bool) {
	var f float64
	n, err := fmt.Sscanf(s, "%g", &f)
	return f, err == nil && n == 1
}

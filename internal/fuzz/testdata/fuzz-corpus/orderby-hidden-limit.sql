-- Minimized repro: ORDER BY referencing a column the SELECT list does not
-- project, combined with LIMIT, hard-errored ("eval: unknown attribute b")
-- before the translator learned to extend the projection with hidden
-- sort-key columns. The no-LIMIT form of the same bug silently returned
-- unsorted rows (asserted exactly in the perm package regression tests).
SELECT f1.a AS x1 FROM r AS f1 ORDER BY f1.b LIMIT 2

-- CAST alongside an ORDER BY ordinal (cast-bearing statements are not
-- semantically order-checked — digit-strings sort lexically — but the
-- differential matrix still compares the presented sequences).
SELECT CAST(f1.a AS string) AS x1, f1.b AS x2 FROM r AS f1 ORDER BY 2 DESC

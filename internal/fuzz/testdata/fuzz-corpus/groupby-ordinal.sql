-- GROUP BY ordinals group by the referenced select-list column. This
-- query used to fail with a leaked internal name ("unknown attribute b
-- (scope (g#1, agg#2), ...)").
SELECT f1.b AS x1, sum(f1.a) AS x2 FROM r AS f1 GROUP BY 1 ORDER BY 1

-- The string surface — ||, LIKE, upper/length — under the full
-- differential matrix including the provenance strategies.
SELECT upper(f1.g) AS x1, f1.g || 'a' AS x2, length(f1.g) AS x3
FROM u AS f1
WHERE f1.g LIKE '%a%' OR f1.h = ANY (SELECT f2.a FROM r AS f2)

-- int64 arithmetic raises PostgreSQL's "bigint out of range" instead of
-- silently wrapping to -9223372036854775808.
-- expect-error: bigint out of range
SELECT 9223372036854775807 + 1 AS x1 FROM r AS f1

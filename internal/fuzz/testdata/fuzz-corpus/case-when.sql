-- CASE WHEN was a parse error before the front end gained it; the lowered
-- expression must agree across every strategy and executor mode.
SELECT f1.a AS x1, CASE WHEN (f1.a > 1) THEN f1.b ELSE (0 - f1.b) END AS x2 FROM r AS f1

-- expect-error: division by zero
-- A failing sort-key expression must surface as the query's error in every
-- executor mode. Before the fix, division by zero yielded NULL and the
-- presentation sort swallowed key-evaluation errors, so the query
-- "succeeded" with rows in arbitrary order.
SELECT f1.a AS x1 FROM r AS f1 ORDER BY (f1.a / 0)

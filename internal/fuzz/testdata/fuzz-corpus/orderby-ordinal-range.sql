-- An out-of-range ORDER BY ordinal must error, as in PostgreSQL;
-- it used to be silently ignored.
-- expect-error: ORDER BY position 5 is not in select list
SELECT f1.a AS x1 FROM r AS f1 ORDER BY 5

-- Comparing a string column with a number is a typed error (PostgreSQL),
-- not a silent three-valued Unknown that filters every row.
-- expect-error: operator does not exist: string = integer
SELECT f1.g AS x1 FROM u AS f1 WHERE f1.g = 1

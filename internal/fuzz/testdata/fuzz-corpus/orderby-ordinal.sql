-- ORDER BY ordinals must sort by the referenced select-list column.
-- Pre-analyzer engines parsed the ordinal as the constant 1 — a no-op
-- sort key — and silently returned unsorted rows.
SELECT f1.a AS x1, f1.b AS x2 FROM r AS f1 ORDER BY 1 DESC, 2

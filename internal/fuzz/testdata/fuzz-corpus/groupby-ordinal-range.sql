-- expect-error: GROUP BY position 3 is not in select list
SELECT f1.a AS x1, f1.b AS x2 FROM r AS f1 GROUP BY 3

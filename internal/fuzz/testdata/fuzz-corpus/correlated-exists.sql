-- Differential anchor: equality-correlated EXISTS — the canonical input
-- for the UnnX X5 decorrelation — must agree between Gen, UnnX and Auto
-- under every executor mode.
SELECT f1.a AS x1 FROM r AS f1 WHERE (EXISTS (SELECT f2.c AS x2 FROM s AS f2 WHERE (f2.d = f1.b)))

-- Differential anchor: a set operation over a grouped arm with NULL group
-- keys and duplicate rows exercises the bag/set boundary of every
-- strategy's set-operation rewrite.
SELECT f1.b AS x1 FROM r AS f1 UNION ALL SELECT f2.d AS x2 FROM s AS f2 GROUP BY f2.d

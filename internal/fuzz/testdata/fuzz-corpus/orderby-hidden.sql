-- ORDER BY on a non-projected (hidden) column without LIMIT: all engine
-- modes must agree on the presented sequence, which is sorted by the
-- hidden key.
SELECT f1.a AS x1 FROM r AS f1 ORDER BY f1.b

package lint

import "testing"

func TestErrClass(t *testing.T) {
	RunFixture(t, ErrClass, fixturePath("errclass"))
}

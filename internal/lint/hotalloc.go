package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc inventories per-row cost in functions annotated `// perm:hot` —
// the emitFn pipeline, the sublink probes, the hash-join probe: everything
// that runs once per tuple. It flags
//
//   - interface boxing: storing a concrete value (a types.Value, a sortRow)
//     into an interface-typed slot allocates and is the cost the planned
//     vectorized executor removes, and
//   - per-row allocations: make/new/append, composite literals, closures.
//
// The check is interprocedural: a hot function calling a callee that
// transitively allocates (through statically resolvable calls) is a
// finding too, attributed with the call chain down to the allocation —
// the lexical inventory alone misses every allocation hidden one helper
// away. Callees without a summary (stdlib, function values, interface
// methods) are not followed, and callees that are themselves `// perm:hot`
// are skipped: their allocations are already their own inventory entries.
//
// The findings are advisory (an inventory, not failures): the multichecker
// prints them but exits 0 unless run with -strict-hot. The nightly CI job
// uploads the inventory so the vectorization work can track the count
// burning down.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "inventory interface boxing and per-row allocations — direct and via " +
		"transitively-allocating callees — in `// perm:hot` functions (advisory)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := commentDirective(fd.Doc, "perm:hot"); !hot {
				continue
			}
			checkHotFunc(pass, fd)
			checkHotCalls(pass, fd)
		}
	}
	return nil
}

// checkHotCalls flags call sites in a hot function whose resolvable callee
// transitively allocates, with the chain down to the allocation.
func checkHotCalls(pass *Pass, fd *ast.FuncDecl) {
	idx := pass.Cache.StoreAlias()
	cg := pass.Cache.CallGraph()
	self, _ := pass.Info.Defs[fd.Name].(*types.Func)
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.Info, call)
		if callee == nil || callee == self {
			return true
		}
		fi := cg.Funcs[callee]
		if fi == nil {
			return true // stdlib or unresolved: not followed
		}
		if _, hot := commentDirective(fi.Decl.Doc, "perm:hot"); hot {
			return true // the callee's own inventory covers it
		}
		if chain := idx.AllocChain(callee); chain != "" {
			pass.ReportInfof(call.Pos(), "transitive alloc in hot function %s: call to %s allocates (%s)", name, callee.Name(), chain)
		}
		return true
	})
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new", "append":
						pass.ReportInfof(n.Pos(), "alloc in hot function %s: %s", name, b.Name())
					}
				}
			}
			checkBoxingCall(pass, name, n)
		case *ast.CompositeLit:
			pass.ReportInfof(n.Pos(), "alloc in hot function %s: composite literal", name)
		case *ast.FuncLit:
			pass.ReportInfof(n.Pos(), "alloc in hot function %s: closure", name)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				lhsT := pass.Info.Types[n.Lhs[i]].Type
				reportBoxing(pass, name, rhs, lhsT)
			}
		}
		return true
	})
}

// checkBoxingCall flags concrete arguments passed in interface-typed
// parameter slots.
func checkBoxingCall(pass *Pass, name string, call *ast.CallExpr) {
	sigT := pass.Info.Types[call.Fun].Type
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				paramT = s.Elem()
			}
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		reportBoxing(pass, name, arg, paramT)
	}
}

// reportBoxing flags expr when its concrete static type meets an
// interface-typed destination.
func reportBoxing(pass *Pass, name string, expr ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if _, ok := src.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no new box
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.ReportInfof(expr.Pos(), "boxing in hot function %s: %s stored into %s", name, src, dst)
}

package lint

import "testing"

func TestImmutCheck(t *testing.T) {
	RunFixture(t, ImmutCheck, fixturePath("immutcheck"))
}

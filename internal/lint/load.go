package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package — the unit an
// Analyzer runs over.
type Package struct {
	// PkgPath is the import path (the go list ImportPath).
	PkgPath string
	// Name is the package name; "main" marks command packages, which some
	// analyzers treat more leniently (ctxflow allows context.Background
	// there).
	Name string
	// Dir is the package directory on disk.
	Dir string
	// Standard marks packages of the standard library: loaded only so the
	// module's packages type-check, never analyzed.
	Standard bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	// ImportMap maps source-level import paths to resolved package paths
	// (the stdlib vendors golang.org/x/... under vendor/).
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// Loader loads packages by shelling out to `go list` for dependency
// resolution and type-checking everything — including the standard-library
// closure — from source, so it needs no pre-built export data and no
// network. Loaded packages are cached per import path, so one Loader
// amortizes the stdlib across many Load/LoadDir calls.
type Loader struct {
	mu   sync.Mutex
	fset *token.FileSet
	pkgs map[string]*Package // by resolved import path
	meta map[string]*listPackage
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	return &Loader{
		fset: token.NewFileSet(),
		pkgs: map[string]*Package{},
		meta: map[string]*listPackage{},
	}
}

// Load resolves the patterns (e.g. "./...") relative to dir and returns the
// matched packages, type-checked, in dependency order. Standard-library
// dependencies are loaded into the cache but not returned.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	roots, err := l.list(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range roots {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// list runs `go list -deps -json` and records every package's metadata in
// dependency order, returning the import paths of the pattern roots
// (go list marks dependencies with DepOnly; roots are the rest).
func (l *Loader) list(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Name,Dir,Standard,GoFiles,Imports,ImportMap,Error,DepOnly", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go builds only: with cgo off, go list selects the no-cgo file
	// sets, which are what a from-source type-check can handle.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var roots []string
	for dec.More() {
		var p struct {
			listPackage
			DepOnly bool
		}
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		meta := p.listPackage
		l.meta[p.ImportPath] = &meta
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// check type-checks one package (and, recursively, its dependencies) from
// source. Callers hold l.mu.
func (l *Loader) check(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	meta := l.meta[path]
	if meta == nil {
		return nil, fmt.Errorf("lint: package %s was not listed", path)
	}
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	for _, imp := range meta.Imports {
		if imp == "unsafe" || imp == "C" {
			continue
		}
		if _, err := l.check(imp); err != nil {
			return nil, err
		}
	}
	info := newInfo()
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			if resolved, ok := meta.ImportMap[importPath]; ok {
				importPath = resolved
			}
			if p, ok := l.pkgs[importPath]; ok {
				return p.Types, nil
			}
			return nil, fmt.Errorf("lint: import %q not loaded", importPath)
		}),
		Sizes: types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		PkgPath:  path,
		Name:     meta.Name,
		Dir:      meta.Dir,
		Standard: meta.Standard,
		Fset:     l.fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir parses the Go files of one directory as a stand-alone package
// (used by the fixture tests, whose packages live under testdata and are
// invisible to `go list ./...`), resolving its imports through the loader's
// stdlib cache.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	var imports []string
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := l.ensure(dir, imports); err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			if p, ok := l.pkgs[importPath]; ok {
				return p.Types, nil
			}
			return nil, fmt.Errorf("lint: import %q not loaded", importPath)
		}),
		Sizes: types.SizesFor("gc", "amd64"),
	}
	name := files[0].Name.Name
	tpkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath: name,
		Name:    name,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// ensure lists and checks the given import paths (plus dependencies) into
// the cache. Callers hold l.mu.
func (l *Loader) ensure(dir string, imports []string) error {
	var missing []string
	for _, imp := range imports {
		if imp == "unsafe" {
			continue
		}
		if _, ok := l.pkgs[imp]; !ok {
			missing = append(missing, imp)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if _, err := l.list(dir, missing); err != nil {
		return err
	}
	for _, imp := range missing {
		if _, err := l.check(imp); err != nil {
			return err
		}
	}
	return nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

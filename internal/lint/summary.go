package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Whole-program side of the store/alias tier: per-function summaries, the
// fixpoint that makes them interprocedural, the // perm:frozen type set,
// and the transitive-allocation chains the interprocedural hotalloc
// reports.

// A FuncSummary abstracts one function for its callers.
type FuncSummary struct {
	Fn *types.Func

	// MutFrozen maps parameter index (receiver first) to the freshness
	// level an argument must have for the call not to mutate shared frozen
	// memory; FrozenParamType names the frozen type for the finding.
	MutFrozen       map[int]int8
	FrozenParamType map[int]string
	// MutParams/EscParams: parameters whose reachable memory the function
	// writes / publishes.
	MutParams map[int]bool
	EscParams map[int]bool

	MutShared    bool // writes globals or shared memory
	ReadsGlobal  bool
	CallsUnknown bool // calls something without a summary (stdlib, func value, interface)
	Sends        bool // channel sends or goroutine launches

	// ResultFresh grades each result: freshDeep when the whole reachable
	// graph is newly allocated (a constructor), freshShallow when only the
	// root is, freshNone otherwise.
	ResultFresh []int8

	// Allocates names the first direct allocation kind ("" when the body
	// allocates nothing), for the hotalloc chains.
	Allocates string

	NParams  int
	Variadic bool
}

// PurityClass places the function on the purity lattice
// pure < read-only < mutating < escaping. Escaping dominates: a function
// that leaks references is the hardest to reason about. The classification
// for this inventory is conservative the other way around from immutcheck:
// an unresolved callee makes the caller mutating.
func (s *FuncSummary) PurityClass() string {
	switch {
	case len(s.EscParams) > 0 || s.Sends:
		return "escaping"
	case s.MutShared || len(s.MutParams) > 0 || s.CallsUnknown:
		return "mutating"
	case s.ReadsGlobal:
		return "read-only"
	default:
		return "pure"
	}
}

// readonlyStdlib lists standard-library packages trusted not to mutate or
// retain their arguments; calling into them does not forfeit purity. The
// exceptions (sort.Slice mutates, fmt.Fprintf writes its writer) are
// deliberately left out of the trusted set.
var readonlyStdlib = map[string]bool{
	"errors": true, "math": true, "math/bits": true, "strconv": true,
	"strings": true, "unicode": true, "unicode/utf8": true, "hash/fnv": true,
}

// storeAliasIndex is the run-wide product: effects and summaries for every
// declared function, the frozen type set, and the hotalloc chains.
type storeAliasIndex struct {
	Frozen  map[*types.TypeName]bool
	Effects map[*types.Func]*funcEffects
	Sums    map[*types.Func]*FuncSummary

	chains map[*types.Func]string
}

// StoreAlias builds (once per run) the store/alias effects and summaries
// for every function in the analyzed packages, iterating the summary
// fixpoint until the call-graph-wide facts stabilize.
func (c *RunCache) StoreAlias() *storeAliasIndex {
	if c.storeAlias != nil {
		return c.storeAlias
	}
	pkgs := c.analyzedPackages()
	idx := &storeAliasIndex{
		Frozen: collectFrozen(pkgs),
		Sums:   map[*types.Func]*FuncSummary{},
	}
	cg := c.CallGraph()
	funcs := cg.SortedFuncs()
	const maxIter = 10
	for iter := 0; iter < maxIter; iter++ {
		effects := make(map[*types.Func]*funcEffects, len(funcs))
		changed := false
		for _, fi := range funcs {
			eff := analyzeFunc(c, fi.Pkg, fi.Fn, fi.Decl, idx.Sums, idx.Frozen)
			effects[fi.Fn] = eff
			s := summarize(eff, idx.Frozen)
			if !summaryEqual(idx.Sums[fi.Fn], s) {
				changed = true
			}
			idx.Sums[fi.Fn] = s
		}
		idx.Effects = effects
		if !changed {
			break
		}
	}
	idx.chains = buildAllocChains(cg, idx.Effects)
	c.storeAlias = idx
	return idx
}

// collectFrozen gathers the type names annotated // perm:frozen, on the
// type declaration group or on the individual spec.
func collectFrozen(pkgs []*Package) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				_, groupFrozen := commentDirective(gd.Doc, "perm:frozen")
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					frozen := groupFrozen
					if !frozen {
						_, frozen = commentDirective(ts.Doc, "perm:frozen")
					}
					if !frozen {
						_, frozen = commentDirective(ts.Comment, "perm:frozen")
					}
					if !frozen {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = true
					}
				}
			}
		}
	}
	return out
}

// summarize condenses one function's effects into its caller-facing
// summary.
func summarize(eff *funcEffects, frozen map[*types.TypeName]bool) *FuncSummary {
	s := &FuncSummary{
		Fn:              eff.fn,
		MutFrozen:       map[int]int8{},
		FrozenParamType: map[int]string{},
		MutParams:       map[int]bool{},
		EscParams:       map[int]bool{},
		MutShared:       eff.mutShared,
		ReadsGlobal:     eff.readsGlobal,
		CallsUnknown:    eff.callsUnknown,
		Sends:           eff.sends,
		ResultFresh:     append([]int8(nil), eff.resultFresh...),
	}
	sig, ok := eff.fn.Type().(*types.Signature)
	if !ok {
		return s
	}
	var paramTypes []types.Type
	if sig.Recv() != nil {
		paramTypes = append(paramTypes, sig.Recv().Type())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		paramTypes = append(paramTypes, sig.Params().At(i).Type())
	}
	s.NParams = len(paramTypes)
	s.Variadic = sig.Variadic()
	for i, need := range eff.mutFrozen {
		s.MutFrozen[i] = need
		if i < len(paramTypes) {
			if name, ok := frozenTypeName(paramTypes[i], frozen); ok {
				s.FrozenParamType[i] = name
			} else {
				s.FrozenParamType[i] = paramTypes[i].String()
			}
		}
	}
	for i := range eff.mutParams {
		s.MutParams[i] = true
	}
	for i := range eff.escParams {
		s.EscParams[i] = true
	}
	if len(eff.allocs) > 0 {
		s.Allocates = firstAlloc(eff.allocs)
	}
	return s
}

func firstAlloc(allocs map[token.Pos]string) string {
	best := token.Pos(-1)
	kind := ""
	for pos, k := range allocs {
		if best < 0 || pos < best {
			best, kind = pos, k
		}
	}
	return kind
}

func summaryEqual(a, b *FuncSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.MutShared != b.MutShared || a.ReadsGlobal != b.ReadsGlobal ||
		a.CallsUnknown != b.CallsUnknown || a.Sends != b.Sends ||
		a.Allocates != b.Allocates ||
		len(a.MutFrozen) != len(b.MutFrozen) || len(a.MutParams) != len(b.MutParams) ||
		len(a.EscParams) != len(b.EscParams) || len(a.ResultFresh) != len(b.ResultFresh) {
		return false
	}
	for i, v := range a.MutFrozen {
		if b.MutFrozen[i] != v {
			return false
		}
	}
	for i := range a.MutParams {
		if !b.MutParams[i] {
			return false
		}
	}
	for i := range a.EscParams {
		if !b.EscParams[i] {
			return false
		}
	}
	for i, v := range a.ResultFresh {
		if b.ResultFresh[i] != v {
			return false
		}
	}
	return true
}

// --- transitive allocation chains (interprocedural hotalloc) ---

// buildAllocChains renders, for every function that transitively
// allocates, a deterministic call chain ending at a direct allocation:
// "g -> h: make". Callees without a summary (stdlib, interface methods)
// are not followed — the documented call-graph approximation.
func buildAllocChains(cg *CallGraph, effects map[*types.Func]*funcEffects) map[*types.Func]string {
	chains := map[*types.Func]string{}
	state := map[*types.Func]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(fn *types.Func) string
	visit = func(fn *types.Func) string {
		if state[fn] == 1 {
			return "" // cycle: resolved by another path or not at all
		}
		if state[fn] == 2 {
			return chains[fn]
		}
		state[fn] = 1
		defer func() { state[fn] = 2 }()
		fi := cg.Funcs[fn]
		if fi == nil {
			return ""
		}
		if eff := effects[fn]; eff != nil && len(eff.allocs) > 0 {
			chains[fn] = fn.Name() + ": " + firstAlloc(eff.allocs)
			return chains[fn]
		}
		for _, callee := range fi.Callees {
			if callee == fn {
				continue
			}
			if sub := visit(callee); sub != "" {
				chains[fn] = fn.Name() + " -> " + sub
				return chains[fn]
			}
		}
		return ""
	}
	for _, fi := range cg.SortedFuncs() {
		visit(fi.Fn)
	}
	return chains
}

// AllocChain returns the rendered transitive-allocation chain for fn, or
// "" when fn provably allocates nothing through summarized calls.
func (idx *storeAliasIndex) AllocChain(fn *types.Func) string {
	return idx.chains[fn]
}

// sortedEffects returns the index's effects for one package in source
// order, for deterministic reports.
func (idx *storeAliasIndex) sortedEffects(pkg *Package) []*funcEffects {
	var out []*funcEffects
	for _, eff := range idx.Effects {
		if eff.pkg == pkg {
			out = append(out, eff)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

package lint

import "testing"

func TestLockCheck(t *testing.T) {
	RunFixture(t, LockCheck, fixturePath("lockcheck"))
}

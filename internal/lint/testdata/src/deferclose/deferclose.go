// Package deferclose is the fixture for the deferclose analyzer.
package deferclose

import (
	"context"
	"os"
	"time"
)

// deferred is the well-behaved shape: release deferred right after the
// acquisition, so every exit path runs it.
func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return use(f)
}

// deferredCancel threads a timeout correctly.
func deferredCancel(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

// deferredClosure releases inside a deferred closure (the error-checked
// close idiom); still clean.
func deferredClosure(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		_ = f.Close()
	}()
	return use(f)
}

// cancelLeak is the canonical context.WithTimeout leak: the cancel
// function is kept alive with a blank assignment and never called, so the
// timeout's timer goroutine outlives the request.
func cancelLeak(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second) // want `context cancel function cancel is never released`
	_ = cancel
	<-ctx.Done()
	return ctx.Err()
}

// cancelDiscarded throws the cancel function away at the acquisition.
func cancelDiscarded(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second)
	ctx2, _ := context.WithCancel(ctx) // want `context cancel function is discarded by the blank identifier`
	return ctx2
}

// closeNotDeferred releases only on the success path: the early return
// between Open and Close leaks the file.
func closeNotDeferred(path string) error {
	f, err := os.Open(path) // want `closeable resource \(\*os\.File\) f is released only by a plain call`
	if err != nil {
		return err
	}
	if err := use(f); err != nil {
		return err
	}
	f.Close()
	return nil
}

// neverClosed acquires and forgets.
func neverClosed(path string) string {
	f, err := os.Open(path) // want `closeable resource \(\*os\.File\) f is never released`
	if err != nil {
		return ""
	}
	return f.Name()
}

// handedOff passes the resource to another function, which now owns the
// release; the analyzer stays quiet.
func handedOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

// returned moves ownership to the caller.
func returned(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// stored parks the resource in a struct that outlives the call.
func stored(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// captured hands the resource to a goroutine closure, which owns it now.
func captured(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	go func() {
		_ = f.Close()
	}()
	return nil
}

// suppressed documents a deliberate process-lifetime resource.
func suppressed(path string) error {
	//permlint:ignore deferclose held open for the life of the process
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return use(f)
}

type holder struct{ f *os.File }

func use(f *os.File) error     { _ = f; return nil }
func consume(f *os.File) error { return f.Close() }

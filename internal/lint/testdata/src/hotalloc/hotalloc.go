// Package hotalloc is the fixture for the hotalloc analyzer.
package hotalloc

// value mirrors the engine's types.Value: a small struct passed by value
// that allocates when boxed into an interface.
type value struct {
	kind int
	i    int64
}

type row []value

// sink stands in for an interface-typed destination (heap.Push, any).
func sink(x any) { _ = x }

// emitHot is the per-tuple path; every allocation here runs once per row.
//
// perm:hot
func emitHot(in row) row {
	out := make(row, len(in)) // want `alloc in hot function emitHot: make`
	copy(out, in)
	sink(in[0]) // want `boxing in hot function emitHot: .*value stored into any`
	var x any
	x = out[0] // want `boxing in hot function emitHot: .*value stored into any`
	_ = x
	out = append(out, value{}) // want `alloc in hot function emitHot: append` `alloc in hot function emitHot: composite literal`
	f := func() {}             // want `alloc in hot function emitHot: closure`
	f()
	return out
}

// emitCold has the same shape but no annotation: no findings.
func emitCold(in row) row {
	out := make(row, len(in))
	copy(out, in)
	sink(in[0])
	return append(out, value{})
}

// Package hotalloc is the fixture for the hotalloc analyzer.
package hotalloc

// value mirrors the engine's types.Value: a small struct passed by value
// that allocates when boxed into an interface.
type value struct {
	kind int
	i    int64
}

type row []value

// sink stands in for an interface-typed destination (heap.Push, any).
func sink(x any) { _ = x }

// emitHot is the per-tuple path; every allocation here runs once per row.
//
// perm:hot
func emitHot(in row) row {
	out := make(row, len(in)) // want `alloc in hot function emitHot: make`
	copy(out, in)
	sink(in[0]) // want `boxing in hot function emitHot: .*value stored into any`
	var x any
	x = out[0] // want `boxing in hot function emitHot: .*value stored into any`
	_ = x
	out = append(out, value{}) // want `alloc in hot function emitHot: append` `alloc in hot function emitHot: composite literal`
	f := func() {}             // want `alloc in hot function emitHot: closure`
	f()
	return out
}

// emitCold has the same shape but no annotation: no findings.
func emitCold(in row) row {
	out := make(row, len(in))
	copy(out, in)
	sink(in[0])
	return append(out, value{})
}

// helperAlloc allocates on behalf of its caller.
func helperAlloc(n int) row {
	return make(row, n)
}

// helperDeep allocates two hops away from any hot caller.
func helperDeep(n int) row {
	return helperAlloc(n)
}

// pureHelper never allocates: calling it from a hot function is free.
func pureHelper(a, b int) int {
	return a + b
}

// hotNested allocates indirectly only; its own inventory covers it, so a
// hot caller is not charged again for calling it.
//
// perm:hot
func hotNested(n int) row {
	return helperAlloc(n) // want `transitive alloc in hot function hotNested: call to helperAlloc allocates \(helperAlloc: make\)`
}

// viaHelper is hot and allocates only through helpers: the lexical
// inventory sees nothing, the interprocedural one attributes the chain.
//
// perm:hot
func viaHelper(in row) row {
	n := pureHelper(len(in), 0)
	out := helperAlloc(n) // want `transitive alloc in hot function viaHelper: call to helperAlloc allocates \(helperAlloc: make\)`
	two := helperDeep(n)  // want `transitive alloc in hot function viaHelper: call to helperDeep allocates \(helperDeep -> helperAlloc: make\)`
	three := hotNested(n) // hot callee: its own inventory covers it
	copy(out, in)
	_ = two
	_ = three
	return out
}

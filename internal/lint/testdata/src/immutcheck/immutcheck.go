// Package immutcheck is the fixture for the immutcheck analyzer.
package immutcheck

// Node is a plan node, immutable once published.
//
// perm:frozen
type Node struct {
	Name string
	Kids []*Node
}

// Col is a value-typed projection column.
//
// perm:frozen
type Col struct {
	Name string
}

var shared *Node

var cols []Col

var registry = map[string]*Node{}

// build is the constructor pattern: every write lands in memory that is
// still private to this frame, so nothing is reported.
func build(name string) *Node {
	n := &Node{Name: name}
	n.Name = name + "!"
	n.Kids = append(n.Kids, &Node{Name: "kid"})
	return n
}

// rename writes through its parameter; callers must pass fresh memory.
func rename(n *Node, s string) {
	n.Name = s
}

func mutateGlobal() {
	shared.Name = "x" // want `field write to frozen Node value after it may have been published`
}

func mutateViaCall() {
	rename(shared, "x") // want `call to rename mutates frozen Node value that may be shared`
}

// renameFresh passes provably-fresh memory to the mutating helper: fine.
func renameFresh() *Node {
	n := build("a")
	rename(n, "b")
	return n
}

func appendShared(extra *Node) {
	shared.Kids = append(shared.Kids, extra) // want `field write to frozen Node value` `in-place append to frozen Node value`
}

func overwriteElem(i int) {
	cols[i] = Col{Name: "x"} // want `element write to frozen Col value after it may have been published`
}

// register replaces a pointer slot: the map mutates, no Node does.
func register(name string, n *Node) {
	registry[name] = n
}

// copyOnWrite extends a column list the frozen-safe way: fresh backing
// array, shared elements.
func copyOnWrite(in []Col, c Col) []Col {
	out := make([]Col, 0, len(in)+1)
	out = append(out, in...)
	out = append(out, c)
	return out
}

func suppressed() {
	shared.Name = "y" //permlint:ignore immutcheck fixture-justified
}

// Package lockorder is the fixture for the lockorder analyzer.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// ab nests a.mu before b.mu.
func ab(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `potential deadlock: lock-acquisition-order cycle`
	y.mu.Unlock()
	x.mu.Unlock()
}

// ba nests b.mu before a.mu: with ab this closes the cycle. The finding is
// attributed to the cycle's lexicographically first edge (in ab above).
func ba(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// outer/inner are always nested in one global order: no finding.
type outer struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

func nest(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Unlock()
}

func nestAgain(o *outer, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	defer i.mu.Unlock()
}

// c demonstrates the transitive self-deadlock: sum calls get while holding
// the lock get re-acquires.
type c struct {
	mu sync.Mutex
	n  int
}

func (v *c) get() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.n
}

func (v *c) sum() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.n + v.get() // want `potential self-deadlock: lockorder\.c\.mu is re-acquired while already held`
}

// d shows the read-read tolerance: RLock under RLock is shareable, not a
// self-deadlock.
type d struct {
	mu sync.RWMutex
	n  int
}

func (v *d) rget() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.n
}

func (v *d) rsum() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.n + v.rget()
}

// spawn: acquisitions inside a go statement are not ordered against the
// creator's held locks (the goroutine does not inherit them), so this adds
// no inner-before-outer edge.
func spawn(o *outer, i *inner) {
	o.mu.Lock()
	go func() {
		i.mu.Lock()
		i.mu.Unlock()
	}()
	o.mu.Unlock()
}

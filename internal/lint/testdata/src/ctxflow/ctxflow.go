// Package ctxflow is the fixture for the ctxflow analyzer.
package ctxflow

import "context"

// query is a well-behaved request-path function: context first, threaded
// through.
func query(ctx context.Context, sql string) error {
	return run(ctx, sql)
}

func run(ctx context.Context, sql string) error {
	_ = sql
	<-ctx.Done()
	return ctx.Err()
}

// severed mints a root context on the request path.
func severed(sql string) error {
	ctx := context.Background() // want `context\.Background\(\) severs the request cancellation chain`
	return run(ctx, sql)
}

// todo uses the other root constructor.
func todo(sql string) error {
	return run(context.TODO(), sql) // want `context\.TODO\(\) severs the request cancellation chain`
}

// misplaced takes its context second.
func misplaced(sql string, ctx context.Context) error { // want `context\.Context should be the first parameter`
	return run(ctx, sql)
}

// nilCtx passes an explicit nil context.
func nilCtx(sql string) error {
	return run(nil, sql) // want `do not pass a nil context\.Context`
}

// suppressed demonstrates the escape hatch for deliberate roots.
func suppressed(sql string) error {
	ctx := context.Background() //permlint:ignore ctxflow the detached audit log must outlive the request
	return run(ctx, sql)
}

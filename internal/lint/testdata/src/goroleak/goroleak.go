// Package goroleak is the fixture for the goroleak analyzer. Channel
// element types are deliberately distinct per case: the analyzer's
// type-fallback matching would otherwise let one case's close site excuse
// another case's leak.
package goroleak

import "context"

var sink int

// spin never terminates: its CFG has no path to exit.
func spin() {
	go func() { // want `goroutine never terminates`
		for {
		}
	}()
}

// worker is launched by name below; same finding through the call graph.
func worker() {
	for {
	}
}

func launch() {
	go worker() // want `goroutine never terminates`
}

// bounded selects on ctx.Done(): cancellation is its exit.
func bounded(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				sink += v
			}
		}
	}()
}

// drain ranges over a channel the producer closes: the close bounds it.
func drain() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sink += v
		}
	}()
	ch <- 1
	close(ch)
}

// leakyRange ranges over a channel with no close site anywhere in the
// analyzed packages: the worker never drains out.
func leakyRange(in chan string) {
	go func() {
		for v := range in { // want `ranges over channel in with no close site`
			sink += len(v)
		}
	}()
}

// leakyRecv blocks forever: nothing sends to or closes wait.
func leakyRecv() {
	wait := make(chan float64)
	go func() {
		<-wait // want `blocks on receive from wait, which has no send or close site`
	}()
}

// waiter receives from a channel that is closed: bounded.
func waiter() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)
}

// fed receives from a channel with a send site: bounded by the producer.
func fed() {
	results := make(chan uint32, 1)
	go func() {
		sink += int(<-results)
	}()
	results <- 7
}

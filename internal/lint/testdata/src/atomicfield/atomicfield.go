// Package atomicfield is the fixture for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

// gauges mirrors the plain-integer-plus-atomic-functions pattern.
type gauges struct {
	inFlight int64
	peak     int64
	// plain is never touched atomically; unchecked.
	plain int64
}

// enter and exit keep inFlight atomic everywhere: fine.
func (g *gauges) enter() { atomic.AddInt64(&g.inFlight, 1) }
func (g *gauges) exit()  { atomic.AddInt64(&g.inFlight, -1) }

// snapshot reads atomically: fine.
func (g *gauges) snapshot() int64 { return atomic.LoadInt64(&g.inFlight) }

// record uses the atomic CAS loop on peak.
func (g *gauges) record(v int64) {
	for {
		old := atomic.LoadInt64(&g.peak)
		if v <= old || atomic.CompareAndSwapInt64(&g.peak, old, v) {
			return
		}
	}
}

// report mixes a plain read in: races with the atomic writers.
func (g *gauges) report() int64 {
	return g.inFlight + g.plain // want `field "inFlight" is accessed via sync/atomic elsewhere`
}

// reset mixes a plain write in.
func (g *gauges) reset() {
	g.peak = 0 // want `field "peak" is accessed via sync/atomic elsewhere`
	g.plain = 0
}

// newGauges initializes by composite literal: exempt.
func newGauges() *gauges { return &gauges{inFlight: 0} }

// Package purity is the fixture for the purity analyzer.
package purity

// Plan is a frozen input type: memoized computations over one must be
// read-only.
//
// perm:frozen
type Plan struct {
	Cost  int
	Cards []int
}

type engine struct {
	memo map[string]int
}

// goodProbe reads the plan and writes only its own memo state: caching
// its result is sound.
//
// perm:memoized
func (e *engine) goodProbe(p *Plan) int {
	if v, ok := e.memo["k"]; ok {
		return v
	}
	v := p.Cost * 2
	e.memo["k"] = v
	return v
}

// badProbe mutates its frozen input while computing the cached result.
//
// perm:memoized
func (e *engine) badProbe(p *Plan) int { // want `memoized function badProbe mutates memory reachable from its frozen parameter p`
	p.Cost++
	return p.Cost
}

// bump writes through its parameter.
func bump(p *Plan) {
	p.Cost++
}

// badTransitive launders the mutation through a helper; the summary
// carries it back to the memoization site.
//
// perm:memoized
func badTransitive(p *Plan) int { // want `memoized function badTransitive mutates memory reachable from its frozen parameter p`
	bump(p)
	return p.Cost
}

// unannotated mutates its frozen parameter but is not memoized, so this
// analyzer stays silent (immutcheck owns that class at call sites).
func unannotated(p *Plan) {
	p.Cost++
}

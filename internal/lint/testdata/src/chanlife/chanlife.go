// Package chanlife is the fixture for the chanlife analyzer.
package chanlife

var sink int

// double closes twice on the only path: a guaranteed panic.
func double() {
	ch := make(chan int, 1)
	close(ch)
	close(ch) // want `close of ch: already closed on every path here \(panics at run time\)`
}

// maybeDouble closes on one branch and then unconditionally: a latent panic
// the branchy path makes real.
func maybeDouble(cond bool) {
	ch := make(chan int, 1)
	if cond {
		close(ch)
	}
	close(ch) // want `close of ch: may already be closed on some path here`
}

// reopened is fine: the variable is rebound to a fresh channel between the
// closes.
func reopened() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	close(ch)
}

// sendAfterClose panics at run time.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch after close \(panics at run time\)`
}

// maybeSendAfterClose: the close happens on one path in.
func maybeSendAfterClose(cond bool) {
	ch := make(chan int, 1)
	if cond {
		close(ch)
	}
	ch <- 1 // want `send on ch is reachable after close on some path`
}

// deferredDouble: a deferred close over an already-closed channel still
// panics when the function returns.
func deferredDouble() {
	ch := make(chan int, 1)
	defer close(ch) // want `close of ch: already closed on every path here \(panics at run time\)`
	close(ch)
}

// deferredOK is the produce-then-hang-up idiom.
func deferredOK() {
	ch := make(chan int, 1)
	defer close(ch)
	ch <- 1
}

// closeEach closes every element of a slice of channels: range rebinding
// resets the loop variable each iteration, so this is NOT a double close.
func closeEach(chans []chan int) {
	for _, ch := range chans {
		close(ch)
	}
}

// nilSend blocks forever: the channel was declared but never made.
func nilSend() {
	var ch chan int
	ch <- 1 // want `send on nil channel ch blocks forever`
}

// nilRecv blocks forever.
func nilRecv() {
	var ch chan int
	sink += <-ch // want `receive on nil channel ch blocks forever`
}

// nilRange blocks forever.
func nilRange() {
	var ch chan int
	for v := range ch { // want `range over nil channel ch blocks forever`
		sink += v
	}
}

// nilArm is the idiomatic select use of a nil channel: the arm simply never
// fires, so no finding.
func nilArm(live chan int) {
	var muted chan int
	for i := 0; i < 2; i++ {
		select {
		case v := <-muted:
			sink += v
		case muted <- 1:
		case v := <-live:
			sink += v
			muted = nil
		}
	}
}

// unbufferedStuck sends on an unbuffered channel that never escapes this
// function: no goroutine can ever receive, so the send blocks forever.
func unbufferedStuck() {
	ch := make(chan int)
	ch <- 1 // want `send on unbuffered channel ch blocks forever`
	sink += <-ch
}

// unbufferedHandoff passes the channel to a goroutine first: fine.
func unbufferedHandoff() {
	ch := make(chan int)
	go func() {
		sink += <-ch
	}()
	ch <- 1
}

// buffered sends within capacity: fine.
func buffered() {
	ch := make(chan int, 1)
	ch <- 1
	sink += <-ch
}

// trysend uses a select with default: a full (or receiverless) channel is
// skipped, not blocked on.
func trySend() {
	ch := make(chan int)
	select {
	case ch <- 1:
	default:
	}
}

// Package lockcheck is the fixture for the lockcheck analyzer.
package lockcheck

import "sync"

// registry mirrors the engine's views-map shape: a map replaced wholesale
// under a mutex.
type registry struct {
	mu sync.RWMutex

	// views is the published definitions map.
	// guarded-by: mu
	views map[string]int

	// dropped is tombstone state.
	dropped map[string]bool // guarded-by: mu

	// free is not annotated; accesses are unchecked.
	free int
}

// newRegistry initializes a fresh value: composite-literal initialization
// is exempt (the value is not shared yet).
func newRegistry() *registry {
	return &registry{views: map[string]int{}, dropped: map[string]bool{}}
}

// lookup holds the read lock: fine.
func (r *registry) lookup(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.views[name]
}

// publish holds the write lock: fine.
func (r *registry) publish(name string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]int, len(r.views)+1)
	for k, old := range r.views {
		next[k] = old
	}
	next[name] = v
	r.views = next
}

// leak reads the guarded map without the lock.
func (r *registry) leak(name string) int {
	return r.views[name] // want `access to "views" \(guarded-by: mu\) without holding mu`
}

// torn writes both guarded fields without the lock.
func (r *registry) torn(name string) {
	r.views[name] = 1      // want `access to "views" \(guarded-by: mu\) without holding mu`
	r.dropped[name] = true // want `access to "dropped" \(guarded-by: mu\) without holding mu`
	r.free++
}

// sizeLocked follows the *Locked helper convention: the caller holds mu.
//
// permlint:held mu
func (r *registry) sizeLocked() int {
	return len(r.views) + len(r.dropped)
}

// size takes the lock and delegates.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sizeLocked()
}

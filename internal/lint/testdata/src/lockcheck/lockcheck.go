// Package lockcheck is the fixture for the lockcheck analyzer.
package lockcheck

import "sync"

// registry mirrors the engine's views-map shape: a map replaced wholesale
// under a mutex.
type registry struct {
	mu sync.RWMutex

	// views is the published definitions map.
	// guarded-by: mu
	views map[string]int

	// dropped is tombstone state.
	dropped map[string]bool // guarded-by: mu

	// free is not annotated; accesses are unchecked.
	free int
}

// newRegistry initializes a fresh value: composite-literal initialization
// is exempt (the value is not shared yet).
func newRegistry() *registry {
	return &registry{views: map[string]int{}, dropped: map[string]bool{}}
}

// lookup holds the read lock: fine.
func (r *registry) lookup(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.views[name]
}

// publish holds the write lock: fine.
func (r *registry) publish(name string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]int, len(r.views)+1)
	for k, old := range r.views {
		next[k] = old
	}
	next[name] = v
	r.views = next
}

// leak reads the guarded map without the lock.
func (r *registry) leak(name string) int {
	return r.views[name] // want `access to "views" \(guarded-by: mu\) without holding mu`
}

// torn writes both guarded fields without the lock.
func (r *registry) torn(name string) {
	r.views[name] = 1      // want `access to "views" \(guarded-by: mu\) without holding mu`
	r.dropped[name] = true // want `access to "dropped" \(guarded-by: mu\) without holding mu`
	r.free++
}

// sizeLocked follows the *Locked helper convention: the caller holds mu.
//
// permlint:held mu
func (r *registry) sizeLocked() int {
	return len(r.views) + len(r.dropped)
}

// size takes the lock and delegates.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sizeLocked()
}

// earlyOK returns early under a deferred unlock: every path is balanced.
func (r *registry) earlyOK(name string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, ok := r.views[name]; ok {
		return v, true
	}
	return 0, false
}

// loop locks and unlocks per iteration: balanced across the back edge.
func (r *registry) loop(names []string) int {
	total := 0
	for _, n := range names {
		r.mu.RLock()
		total += r.views[n]
		r.mu.RUnlock()
	}
	return total
}

// branchy holds the lock on only one of the two paths reaching the access.
// The conditional release below is invisible to a path-insensitive join, so
// the balance check also (rightly, for this analysis) flags the RLock.
func (r *registry) branchy(cond bool, name string) int {
	if cond {
		r.mu.RLock() // want `lockcheck\.registry\.mu\.RLock\(\) is not released on some path to return`
	}
	v := r.views[name] // want `access to "views" \(guarded-by: mu\) holds mu on some paths only`
	if cond {
		r.mu.RUnlock()
	}
	return v
}

// leakyLock forgets to unlock on the early return.
func (r *registry) leakyLock(cond bool) int {
	r.mu.Lock() // want `lockcheck\.registry\.mu\.Lock\(\) is not released on some path to return`
	if cond {
		return 0
	}
	r.mu.Unlock()
	return 1
}

// hold never releases at all.
func (r *registry) hold(name string) int {
	r.mu.Lock() // want `lockcheck\.registry\.mu\.Lock\(\) is not released on any path to return`
	return r.views[name]
}

// relock re-acquires the write lock it already holds: self-deadlock.
func (r *registry) relock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `lockcheck\.registry\.mu\.Lock\(\) while the write lock is already held`
}

// stray unlocks a lock this path never took.
func (r *registry) stray() {
	r.mu.Unlock() // want `lockcheck\.registry\.mu\.Unlock\(\) without holding the lock on this path`
}

// Package errclass is the fixture for the errclass analyzer.
package errclass

import (
	"errors"
	"fmt"
	"net/http"
)

// errStop mirrors the engine's pipeline stop sentinel.
var errStop = errors.New("stop")

// ErrBudget mirrors an exported sentinel.
var ErrBudget = errors.New("budget exceeded")

// drain compares sentinels correctly.
func drain(err error) bool {
	return errors.Is(err, errStop) || errors.Is(err, ErrBudget)
}

// drainBroken compares with ==: a wrapped errStop slips through.
func drainBroken(err error) bool {
	if err == errStop { // want `sentinel error errStop compared with ==; use errors\.Is`
		return true
	}
	return err != ErrBudget // want `sentinel error ErrBudget compared with !=; use errors\.Is`
}

// nilCheck is fine: nil is not a sentinel.
func nilCheck(err error) bool { return err == nil }

// wrapKeep preserves the class with %w.
func wrapKeep(err error) error {
	return fmt.Errorf("evaluating plan: %w", err)
}

// wrapLose reclasses the error: %v flattens it to a string.
func wrapLose(err error) error {
	return fmt.Errorf("evaluating plan: %v", err) // want `fmt\.Errorf wraps an error without %w`
}

// classified is the package's classifier boundary, standing in for the
// service layer's writeError.
func classified(w http.ResponseWriter, err error) {
	w.WriteHeader(500)
	_, _ = w.Write([]byte(err.Error()))
}

// handleGood routes its error through the classifier.
func handleGood(w http.ResponseWriter, r *http.Request) {
	if err := r.Context().Err(); err != nil {
		classified(w, err)
	}
}

// handleBad writes ad-hoc errors.
func handleBad(w http.ResponseWriter, r *http.Request) {
	if err := r.Context().Err(); err != nil {
		http.Error(w, err.Error(), 500) // want `handler writes an error with http\.Error`
		return
	}
	w.WriteHeader(http.StatusBadGateway) // want `handler writes status 502 directly`
}

// Command ctxflowmain is the fixture proving ctxflow exempts main
// packages: the process entry point owns its root context.
package main

import "context"

func main() {
	ctx := context.Background() // no diagnostic: main packages own the root context
	<-ctx.Done()
}

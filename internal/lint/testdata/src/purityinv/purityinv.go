// Package purityinv is the fixture for the purityinv inventory.
package purityinv

var counter int

var sink []*int

// add touches nothing outside its frame.
func add(a, b int) int { // want `purity of add: pure`
	return a + b
}

// readGlobal reads package state without writing it.
func readGlobal() int { // want `purity of readGlobal: read-only`
	return counter
}

// bumpGlobal writes package state.
func bumpGlobal() { // want `purity of bumpGlobal: mutating`
	counter++
}

// leak publishes its parameter into shared memory.
func leak(p *int) { // want `purity of leak: escaping`
	sink = append(sink, p)
}

// sendOnly blocks forever conceptually, but for classification the send
// alone makes it escaping.
func sendOnly(ch chan int, v int) { // want `purity of sendOnly: escaping`
	ch <- v
}

// callsUnknown calls through a function value: conservatively mutating.
func callsUnknown(f func() int) int { // want `purity of callsUnknown: mutating`
	return f()
}

package lint

import "testing"

func TestChanLife(t *testing.T) {
	RunFixture(t, ChanLife, fixturePath("chanlife"))
}

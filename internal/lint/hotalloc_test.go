package lint

import "testing"

func TestHotAlloc(t *testing.T) {
	RunFixture(t, HotAlloc, fixturePath("hotalloc"))
}

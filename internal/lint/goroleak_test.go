package lint

import "testing"

func TestGoroLeak(t *testing.T) {
	RunFixture(t, GoroLeak, fixturePath("goroleak"))
}

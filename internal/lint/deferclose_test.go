package lint

import "testing"

func TestDeferClose(t *testing.T) {
	RunFixture(t, DeferClose, fixturePath("deferclose"))
}

package lint

import (
	"go/types"
	"testing"
)

func TestValSetOps(t *testing.T) {
	a := absVal{param: 0}
	b := absVal{param: 1}
	s1 := oneVal(a)
	s2 := oneVal(b)

	if !s1.empty() == true && len(s1.vals) != 1 {
		t.Fatalf("oneVal: %+v", s1)
	}
	u := unionVals(s1, s2)
	if u.top || len(u.vals) != 2 {
		t.Errorf("union = %+v, want 2 values", u)
	}
	if !equalVals(u, unionVals(s2, s1)) {
		t.Errorf("union not commutative")
	}
	if ut := unionVals(u, topSet); !ut.top {
		t.Errorf("union with top lost top")
	}
	if equalVals(s1, s2) {
		t.Errorf("distinct singletons compare equal")
	}
	if equalVals(s1, topSet) {
		t.Errorf("singleton equals top")
	}
}

func TestFreshFactJoin(t *testing.T) {
	site := absVal{param: 3} // stands in for any distinct value
	obj := types.NewVar(0, nil, "x", types.NewSlice(types.Typ[types.Int]))
	other := types.NewVar(0, nil, "y", types.NewSlice(types.Typ[types.Int]))

	a := freshFact{env: map[types.Object]valSet{obj: oneVal(site)}, pub: map[absVal]bool{}}
	b := freshFact{env: map[types.Object]valSet{obj: oneVal(site), other: oneVal(site)}, pub: map[absVal]bool{site: true}}

	j := joinFresh(a, b)
	// A variable absent on one path joins to ⊤, not to the present side.
	if got := j.env[other]; !got.top {
		t.Errorf("one-sided variable joined to %+v, want top", got)
	}
	if got := j.env[obj]; got.top || len(got.vals) != 1 {
		t.Errorf("two-sided variable joined to %+v, want the singleton", got)
	}
	// Publication is a may-property: the union survives the join.
	if !j.pub[site] {
		t.Errorf("publication lost in join")
	}
	// clone must not share map storage with the original.
	c := a.clone()
	c.env[obj] = topSet
	c.pub[site] = true
	if a.env[obj].top || a.pub[site] {
		t.Errorf("clone shares storage with the original")
	}
	if !equalFresh(a, a.clone()) {
		t.Errorf("clone not equal to original")
	}
	if equalFresh(a, b) {
		t.Errorf("distinct facts compare equal")
	}
}

// lookupSummary resolves a fixture function's summary by name.
func lookupSummary(t *testing.T, idx *storeAliasIndex, name string) *FuncSummary {
	t.Helper()
	for fn, sum := range idx.Sums {
		if fn.Name() == name {
			return sum
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

// TestStoreAliasSummaries checks the interprocedural summaries the fixture
// packages give rise to: result freshness, frozen-parameter mutation
// levels, and the purity lattice.
func TestStoreAliasSummaries(t *testing.T) {
	pkg, err := sharedLoader().LoadDir(fixturePath("immutcheck"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	idx := newRunCache([]*Package{pkg}).StoreAlias()

	build := lookupSummary(t, idx, "build")
	if len(build.ResultFresh) != 1 || build.ResultFresh[0] != freshDeep {
		t.Errorf("build.ResultFresh = %v, want [deep]", build.ResultFresh)
	}
	if build.Allocates == "" {
		t.Errorf("build.Allocates is empty, want an allocation kind")
	}

	rename := lookupSummary(t, idx, "rename")
	if rename.MutFrozen[0] != freshShallow {
		t.Errorf("rename.MutFrozen[0] = %v, want shallow", rename.MutFrozen[0])
	}
	if rename.FrozenParamType[0] != "Node" {
		t.Errorf("rename.FrozenParamType[0] = %q, want Node", rename.FrozenParamType[0])
	}

	cow := lookupSummary(t, idx, "copyOnWrite")
	if len(cow.MutFrozen) != 0 {
		t.Errorf("copyOnWrite.MutFrozen = %v, want none", cow.MutFrozen)
	}
	if len(cow.ResultFresh) != 1 || cow.ResultFresh[0] < freshShallow {
		t.Errorf("copyOnWrite.ResultFresh = %v, want at least shallow", cow.ResultFresh)
	}

	reg := lookupSummary(t, idx, "register")
	if !reg.EscParams[1] {
		t.Errorf("register should publish its second parameter")
	}
	if reg.PurityClass() != "escaping" {
		t.Errorf("register.PurityClass = %q, want escaping", reg.PurityClass())
	}
}

// TestStoreAliasPurityClasses pins the lattice over the purityinv fixture.
func TestStoreAliasPurityClasses(t *testing.T) {
	pkg, err := sharedLoader().LoadDir(fixturePath("purityinv"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	idx := newRunCache([]*Package{pkg}).StoreAlias()
	for name, want := range map[string]string{
		"add":          "pure",
		"readGlobal":   "read-only",
		"bumpGlobal":   "mutating",
		"leak":         "escaping",
		"sendOnly":     "escaping",
		"callsUnknown": "mutating",
	} {
		if got := lookupSummary(t, idx, name).PurityClass(); got != want {
			t.Errorf("%s: purity %q, want %q", name, got, want)
		}
	}
}

// TestAllocChains pins the chain attribution format used by the
// interprocedural hotalloc findings.
func TestAllocChains(t *testing.T) {
	pkg, err := sharedLoader().LoadDir(fixturePath("hotalloc"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	idx := newRunCache([]*Package{pkg}).StoreAlias()
	chains := map[string]string{}
	for fn := range idx.Sums {
		chains[fn.Name()] = idx.AllocChain(fn)
	}
	if got := chains["helperAlloc"]; got != "helperAlloc: make" {
		t.Errorf("helperAlloc chain = %q", got)
	}
	if got := chains["helperDeep"]; got != "helperDeep -> helperAlloc: make" {
		t.Errorf("helperDeep chain = %q", got)
	}
	if got := chains["pureHelper"]; got != "" {
		t.Errorf("pureHelper chain = %q, want empty", got)
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// Expression evaluation for the store/alias analysis: what abstract values
// an expression may produce, with call, allocation and publication effects
// applied along the way. Evaluating the same expression twice is safe —
// every effect record is keyed by position or is a monotone bit.

func (a *funcFresh) expr(e ast.Expr, f *freshFact) valSet {
	switch e := e.(type) {
	case nil:
		return valSet{}
	case *ast.Ident:
		return a.ident(e, f)
	case *ast.ParenExpr:
		return a.expr(e.X, f)
	case *ast.SelectorExpr:
		return a.selector(e, f)
	case *ast.IndexExpr:
		if tv, ok := a.info.Types[e]; ok && tv.IsType() {
			return valSet{} // generic instantiation
		}
		if tv, ok := a.info.Types[e.X]; ok && tv.Type != nil {
			if _, ok := tv.Type.Underlying().(*types.Signature); ok {
				return valSet{} // instantiated function value
			}
		}
		base := a.expr(e.X, f)
		a.expr(e.Index, f)
		return a.elementsOf(base, f)
	case *ast.IndexListExpr:
		return valSet{}
	case *ast.SliceExpr:
		base := a.expr(e.X, f)
		a.expr(e.Low, f)
		a.expr(e.High, f)
		a.expr(e.Max, f)
		return base // a reslice aliases the same backing array
	case *ast.StarExpr:
		a.expr(e.X, f)
		return topSet // a dereferenced copy may alias anything the target held
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return a.composite(lit, f)
			}
			a.expr(e.X, f)
			return topSet // address of a plain variable: untracked aliasing
		}
		a.expr(e.X, f)
		if e.Op.String() == "<-" {
			return topSet // received values come from another goroutine
		}
		return valSet{}
	case *ast.BinaryExpr:
		a.expr(e.X, f)
		a.expr(e.Y, f)
		return valSet{}
	case *ast.CallExpr:
		res := a.call(e, f)
		if len(res) > 0 {
			return res[0]
		}
		return valSet{}
	case *ast.TypeAssertExpr:
		return a.expr(e.X, f)
	case *ast.CompositeLit:
		return a.composite(e, f)
	case *ast.FuncLit:
		a.eff.allocs[e.Pos()] = "closure"
		a.funcLit(e, f)
		return valSet{}
	case *ast.BasicLit, *ast.ArrayType, *ast.MapType, *ast.StructType,
		*ast.InterfaceType, *ast.ChanType, *ast.FuncType, *ast.Ellipsis:
		return valSet{}
	}
	return topSet
}

func (a *funcFresh) ident(e *ast.Ident, f *freshFact) valSet {
	obj := a.info.Uses[e]
	if obj == nil {
		obj = a.info.Defs[e]
	}
	switch o := obj.(type) {
	case *types.Var:
		if isPackageLevel(o) {
			a.eff.readsGlobal = true
			return topSet
		}
		if vs, ok := f.env[o]; ok {
			return vs
		}
		if trackedType(o.Type()) {
			// Outer-scope capture (analyzing a literal) or a path the
			// binder missed: shared.
			return topSet
		}
	}
	return valSet{}
}

func (a *funcFresh) selector(e *ast.SelectorExpr, f *freshFact) valSet {
	if id, ok := e.X.(*ast.Ident); ok {
		if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
			if v, ok := a.info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
				a.eff.readsGlobal = true
				return topSet
			}
			return valSet{}
		}
	}
	if _, isFn := a.info.Uses[e.Sel].(*types.Func); isFn {
		// Method value: the bound receiver escapes with the closure.
		a.publish(a.expr(e.X, f), f)
		return valSet{}
	}
	base := a.expr(e.X, f)
	if base.top {
		return topSet
	}
	out := valSet{}
	for v := range base.vals {
		out = unionVals(out, a.loadField(v, e.Sel.Name, f))
	}
	return out
}

func (a *funcFresh) composite(e *ast.CompositeLit, f *freshFact) valSet {
	v := absVal{site: e}
	delete(f.pub, v)
	a.eff.allocs[e.Pos()] = "composite literal"
	var st *types.Struct
	if t := a.info.Types[e].Type; t != nil {
		st, _ = t.Underlying().(*types.Struct)
	}
	for i, elt := range e.Elts {
		switch el := elt.(type) {
		case *ast.KeyValueExpr:
			key := "[]"
			if st != nil {
				if kid, ok := el.Key.(*ast.Ident); ok {
					key = kid.Name
				}
			} else {
				a.addField(v, "[]", a.expr(el.Key, f))
			}
			a.addField(v, key, a.expr(el.Value, f))
		default:
			key := "[]"
			if st != nil && i < st.NumFields() {
				key = st.Field(i).Name()
			}
			a.addField(v, key, a.expr(elt, f))
		}
	}
	return oneVal(v)
}

// funcLit analyzes a nested literal once and folds its shared-state
// effects into the enclosing function; tracked captures are published at
// the creation point (the closure may run, and alias them, at any time).
func (a *funcFresh) funcLit(lit *ast.FuncLit, f *freshFact) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := a.info.Uses[id]; obj != nil {
			if vs, ok := f.env[obj]; ok {
				a.publish(vs, f)
			}
		}
		return true
	})
	if a.litDone == nil {
		a.litDone = map[*ast.FuncLit]*funcEffects{}
	}
	sub, ok := a.litDone[lit]
	if !ok {
		subA := &funcFresh{
			pkg: a.pkg, info: a.info, cache: a.cache, sums: a.sums, frozen: a.frozen,
			params:  paramVars(a.info, nil, lit.Type.Params),
			fields:  map[absVal]map[string]valSet{},
			dirty:   map[absVal]bool{},
			deepExt: map[absVal]bool{},
			eff:     newFuncEffects(a.eff.fn, a.eff.decl, a.pkg),
		}
		subA.solve(lit.Body, lit)
		sub = subA.eff
		a.litDone[lit] = sub
	}
	// Shared-state effects happen on the enclosing function's behalf; the
	// literal's own parameter effects are dropped (calls through function
	// values are unresolved, so no call site could check them).
	a.eff.mutShared = a.eff.mutShared || sub.mutShared
	a.eff.readsGlobal = a.eff.readsGlobal || sub.readsGlobal
	a.eff.callsUnknown = a.eff.callsUnknown || sub.callsUnknown
	a.eff.sends = a.eff.sends || sub.sends
	for pos, k := range sub.allocs {
		a.eff.allocs[pos] = k
	}
	for pos, w := range sub.frozenWrites {
		a.eff.frozenWrites[pos] = w
	}
}

// --- calls ---

func (a *funcFresh) call(e *ast.CallExpr, f *freshFact) []valSet {
	if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
		// Conversion: alias-preserving for reference kinds.
		if len(e.Args) == 1 {
			return []valSet{a.expr(e.Args[0], f)}
		}
		return nil
	}
	fun := ast.Unparen(e.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := a.info.Uses[id].(*types.Builtin); ok {
			return []valSet{a.builtin(e, b.Name(), f)}
		}
	}

	// Assemble the abstract arguments, receiver first for method calls.
	var argVS []valSet
	var argPos []ast.Expr
	switch fn := fun.(type) {
	case *ast.SelectorExpr:
		if fnObj, ok := a.info.Uses[fn.Sel].(*types.Func); ok {
			if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil {
				argVS = append(argVS, a.expr(fn.X, f))
				argPos = append(argPos, fn.X)
			}
		} else {
			a.expr(fn, f) // func-typed field: evaluate for effects
		}
	case *ast.Ident:
		// Plain function name: no value to evaluate.
	default:
		a.expr(fun, f) // call through a function value expression
	}
	for _, arg := range e.Args {
		argVS = append(argVS, a.expr(arg, f))
		argPos = append(argPos, arg)
	}

	nres := 0
	if tv, ok := a.info.Types[e.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			nres = sig.Results().Len()
		}
	}

	callee := calleeOf(a.info, e)
	if callee != nil {
		if sum := a.sums[callee]; sum != nil {
			return a.applySummary(e, callee, sum, argVS, argPos, f, nres)
		}
		if pkg := callee.Pkg(); pkg != nil && readonlyStdlib[pkg.Path()] {
			// Trusted read-only stdlib: no mutation, no escape.
			return tops(nres)
		}
	}
	a.eff.callsUnknown = true
	return tops(nres)
}

func tops(n int) []valSet {
	out := make([]valSet, n)
	for i := range out {
		out[i] = topSet
	}
	return out
}

// applySummary applies a known callee's summary at one call site: frozen
// and general parameter mutations check the arguments' freshness (fresh →
// the constructor pattern, fine; parameter → the effect propagates to this
// function's summary; shared → an immutcheck finding), escapes publish,
// and shared-state bits fold in transitively.
func (a *funcFresh) applySummary(e *ast.CallExpr, callee *types.Func, sum *FuncSummary,
	argVS []valSet, argPos []ast.Expr, f *freshFact, nres int) []valSet {

	a.eff.mutShared = a.eff.mutShared || sum.MutShared
	a.eff.readsGlobal = a.eff.readsGlobal || sum.ReadsGlobal
	a.eff.callsUnknown = a.eff.callsUnknown || sum.CallsUnknown
	a.eff.sends = a.eff.sends || sum.Sends

	for i, vs := range argVS {
		pi := i
		if sum.Variadic && pi >= sum.NParams-1 {
			pi = sum.NParams - 1
		}
		if pi >= sum.NParams {
			break
		}
		if need, ok := sum.MutFrozen[pi]; ok {
			a.frozenArg(e, callee, sum, pi, need, vs, argPos[i], f)
		} else if sum.MutParams[pi] {
			a.mutatedArg(vs, f)
		}
		if sum.EscParams[pi] {
			a.publish(vs, f)
		}
	}

	out := make([]valSet, nres)
	for j := range out {
		if j < len(sum.ResultFresh) && sum.ResultFresh[j] >= freshShallow {
			v := absVal{site: e, res: j}
			if sum.ResultFresh[j] == freshDeep {
				a.deepExt[v] = true
			}
			out[j] = a.freshGen(v, f)
		} else {
			out[j] = topSet
		}
	}
	return out
}

// frozenArg checks one argument passed where the callee mutates frozen
// memory reachable from the parameter.
func (a *funcFresh) frozenArg(e *ast.CallExpr, callee *types.Func, sum *FuncSummary,
	pi int, need int8, vs valSet, pos ast.Expr, f *freshFact) {

	if a.freshLevel(vs, f) >= need {
		// Constructor pattern: the callee builds into still-private memory.
		// Its writes make the contents unknown from here on.
		for v := range vs.vals {
			if !v.isParam() {
				a.dirty[v] = true
			}
		}
		return
	}
	onlyParams := !vs.top && len(vs.vals) > 0
	for v := range vs.vals {
		if !v.isParam() {
			if !f.pub[v] {
				continue
			}
			onlyParams = false
			continue
		}
		a.eff.mutParams[v.param] = true
		pneed := need
		if v.viaField {
			pneed = freshDeep
		}
		if cur, ok := a.eff.mutFrozen[v.param]; !ok || pneed > cur {
			a.eff.mutFrozen[v.param] = pneed
		}
	}
	if onlyParams {
		return
	}
	a.eff.mutShared = true
	p := pos.Pos()
	a.eff.frozenWrites[p] = frozenWrite{
		pos: p, typ: sum.FrozenParamType[pi], how: "call", call: callee.Name(),
	}
}

// mutatedArg handles a known callee writing through a non-frozen
// parameter: fresh arguments lose their deep guarantee, parameter
// arguments propagate the effect, shared arguments make this function
// mutating.
func (a *funcFresh) mutatedArg(vs valSet, f *freshFact) {
	if a.allFresh(vs, f) {
		for v := range vs.vals {
			a.dirty[v] = true
		}
		return
	}
	if vs.top {
		a.eff.mutShared = true
		return
	}
	for v := range vs.vals {
		if v.isParam() {
			a.eff.mutParams[v.param] = true
		} else if f.pub[v] {
			a.eff.mutShared = true
		}
	}
}

func (a *funcFresh) goCall(call *ast.CallExpr, f *freshFact) {
	a.call(call, f)
	a.eff.sends = true
	// Everything handed to the goroutine escapes this frame.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		a.publish(a.expr(sel.X, f), f)
	}
	for _, arg := range call.Args {
		a.publish(a.expr(arg, f), f)
	}
}

// --- builtins ---

func (a *funcFresh) builtin(e *ast.CallExpr, name string, f *freshFact) valSet {
	switch name {
	case "new", "make":
		for _, arg := range e.Args[1:] {
			a.expr(arg, f)
		}
		a.eff.allocs[e.Pos()] = name
		return a.freshGen(absVal{site: e}, f)
	case "append":
		return a.appendCall(e, f)
	case "delete", "clear":
		if len(e.Args) == 0 {
			return valSet{}
		}
		ownerVS := a.expr(e.Args[0], f)
		for _, arg := range e.Args[1:] {
			a.expr(arg, f)
		}
		frozenName, frozen := a.frozenChain(e.Args[0])
		a.applyMutation(e.Pos(), ownerVS, valSet{}, f, frozen, frozenName, name, "[]")
		return valSet{}
	case "copy":
		if len(e.Args) != 2 {
			return valSet{}
		}
		dst := a.expr(e.Args[0], f)
		src := a.elementsOf(a.expr(e.Args[1], f), f)
		frozenName, frozen := a.frozenChain(e.Args[0])
		a.applyMutation(e.Pos(), dst, src, f, frozen, frozenName, "copy into", "[]")
		return valSet{}
	default:
		for _, arg := range e.Args {
			a.expr(arg, f)
		}
		return valSet{}
	}
}

// appendCall models append's aliasing: appending to a fresh slice keeps
// it fresh (the elements join its containment), appending to nil builds a
// fresh one, and appending in place to a shared or parameter slice is a
// mutation of its backing array — unless the full-slice form s[:i:i]
// forces a copy, which yields a fresh (shallow) result.
func (a *funcFresh) appendCall(e *ast.CallExpr, f *freshFact) valSet {
	if len(e.Args) == 0 {
		return valSet{}
	}
	a.eff.allocs[e.Pos()] = "append"
	base := e.Args[0]
	baseVS := a.expr(base, f)
	elems := valSet{}
	for _, arg := range e.Args[1:] {
		elems = unionVals(elems, a.expr(arg, f))
	}
	threeIdx := false
	if se, ok := ast.Unparen(base).(*ast.SliceExpr); ok && se.Max != nil {
		threeIdx = true
	}
	if baseVS.empty() {
		v := absVal{site: e}
		a.addField(v, "[]", elems)
		return a.freshGen(v, f)
	}
	if a.allFresh(baseVS, f) {
		for v := range baseVS.vals {
			a.addField(v, "[]", elems)
		}
		return baseVS
	}
	if threeIdx {
		// Capped reslice: growth must reallocate, so the result is a fresh
		// backing array holding shared elements.
		a.publish(elems, f)
		v := absVal{site: e}
		a.addField(v, "[]", topSet)
		return a.freshGen(v, f)
	}
	frozenName, frozen := a.frozenChain(base)
	a.applyMutation(e.Pos(), baseVS, elems, f, frozen, frozenName, "in-place append", "[]")
	return baseVS
}

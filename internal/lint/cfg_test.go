package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGExitReachable(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		reachable bool
	}{
		{"straightline", `x := 1; _ = x`, true},
		{"return", `return`, true},
		{"infinite loop", `for { }`, false},
		{"infinite loop with break", `for { break }`, true},
		{"for true no break", `for true { }`, false},
		{"cond loop", `for i := 0; i < 3; i++ { }`, true},
		{"range loop", `for range []int{1} { }`, true},
		{"if both return", `if true { return }; return`, true},
		{"select no arms", `select { }`, false},
		{"select with return arm", `ch := make(chan int); select { case <-ch: return }`, true},
		{"infinite loop with select return", `ch := make(chan int); for { select { case <-ch: return } }`, true},
		{"goto self", `L: goto L`, false},
		{"goto forward", `goto L; L: return`, true},
		{"labeled break", `L: for { for { break L } }`, true},
		{"labeled continue only", `L: for { continue L }`, false},
		{"switch default returns", `switch { case true: return; default: return }`, true},
		{"switch no default", `switch 1 { case 2: }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.src), nil)
			if got := cfg.ExitReachable(); got != tc.reachable {
				t.Errorf("ExitReachable = %v, want %v", got, tc.reachable)
			}
		})
	}
}

// TestCFGPanicExit: a panic-only path reaches Exit but is marked PanicExit,
// so balance checks can exempt it.
func TestCFGPanicExit(t *testing.T) {
	isPanic := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	cfg := BuildCFG(parseBody(t, `if true { panic("boom") }; return`), isPanic)
	// Only entry-reachable blocks matter: terminators leave behind empty
	// unreachable continuation blocks that analyzers skip via solver facts.
	reachable := map[*Block]bool{cfg.Entry: true}
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reachable[s] {
				reachable[s] = true
				work = append(work, s)
			}
		}
	}
	var panicBlocks, plainExits int
	for _, b := range cfg.Blocks {
		if !reachable[b] {
			continue
		}
		for _, s := range b.Succs {
			if s != cfg.Exit {
				continue
			}
			if b.PanicExit {
				panicBlocks++
			} else {
				plainExits++
			}
		}
	}
	if panicBlocks != 1 || plainExits != 1 {
		t.Errorf("got %d panic exits and %d plain exits, want 1 and 1", panicBlocks, plainExits)
	}
	// A function that can only panic has no ordinary exit.
	cfg = BuildCFG(parseBody(t, `panic("always")`), isPanic)
	if cfg.ExitReachable() {
		t.Errorf("panic-only body should not reach exit ordinarily")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `defer f(); if true { defer g() }`), nil)
	if len(cfg.Defers) != 2 {
		t.Errorf("recorded %d defers, want 2", len(cfg.Defers))
	}
}

// TestFlowSolver runs the generic solver with a simple may-reach fact: the
// set of string markers assigned on some path (calls mark(x) join as union).
func TestFlowSolver(t *testing.T) {
	body := parseBody(t, `
	mark("a")
	if cond {
		mark("b")
	} else {
		mark("c")
	}
	mark("d")
`)
	cfg := BuildCFG(body, nil)
	type fact = map[string]bool
	flow := &Flow[fact]{
		CFG:  cfg,
		Init: fact{},
		Transfer: func(n ast.Node, f fact) fact {
			out := make(fact, len(f))
			for k := range f {
				out[k] = true
			}
			ast.Inspect(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						out[lit.Value] = true
					}
				}
				return true
			})
			return out
		},
		Join: func(a, b fact) fact {
			out := make(fact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	in := flow.Solve()

	// The block holding mark("d") must see a, and both b and c (joined),
	// before its own transfer.
	var dEntry fact
	for b, f := range in {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if lit, ok := x.(*ast.BasicLit); ok && lit.Value == `"d"` {
					found = true
				}
				return true
			})
			if found {
				dEntry = f
			}
		}
	}
	if dEntry == nil {
		t.Fatalf("block containing mark(\"d\") not solved")
	}
	for _, want := range []string{`"a"`, `"b"`, `"c"`} {
		if !dEntry[want] {
			t.Errorf("entry fact at mark(\"d\") missing %s: %v", want, dEntry)
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Shared lock-identity machinery for the flow-sensitive lockcheck and the
// whole-program lockorder analyzers.
//
// A lock identity conflates instances: every value of type Session holds
// "the" Session.mu. That is the standard static-analysis approximation —
// it can produce false cycles when two instances of one type are locked in
// a deliberate global order (address order, parent-before-child), and such
// sites must carry a //permlint:ignore with the ordering argument.

// lockOp classifies one sync.Mutex / sync.RWMutex method call.
type lockOp uint8

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

func (op lockOp) String() string {
	switch op {
	case opLock:
		return "Lock"
	case opRLock:
		return "RLock"
	case opUnlock:
		return "Unlock"
	case opRUnlock:
		return "RUnlock"
	}
	return "?"
}

// acquires reports whether the op takes the lock.
func (op lockOp) acquires() bool { return op == opLock || op == opRLock }

// lockID identifies one lock for analysis purposes. Exactly one of the two
// shapes is set:
//
//   - a mutex field: recv is the owning named type (instances conflated),
//     guard the field name — the shape `// guarded-by:` annotations use;
//   - a mutex variable: vr is the variable object (package-level vars are
//     shared program-wide; locals and parameters are per-function).
type lockID struct {
	recv  types.Type
	guard string
	vr    *types.Var
}

// String renders a stable, human-readable lock name for diagnostics and
// the DOT graph: pkg.Type.field or pkg.var.
func (id lockID) String() string {
	if id.vr != nil {
		if p := id.vr.Pkg(); p != nil {
			return p.Name() + "." + id.vr.Name()
		}
		return id.vr.Name()
	}
	recv := id.recv
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return fmt.Sprintf("%s.%s.%s", obj.Pkg().Name(), obj.Name(), id.guard)
		}
		return obj.Name() + "." + id.guard
	}
	return fmt.Sprintf("%s.%s", recv, id.guard)
}

// isSyncLockMethod reports whether the selector resolves to a Lock-family
// method of sync.Mutex or sync.RWMutex (not any type that merely has a
// method of that name).
func isSyncLockMethod(info *types.Info, sel *ast.SelectorExpr) (lockOp, bool) {
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, false
	}
	named, ok := derefNamed(sig.Recv().Type()).(*types.Named)
	if !ok {
		return opNone, false
	}
	name := named.Obj().Name()
	if name != "Mutex" && name != "RWMutex" {
		return opNone, false
	}
	return op, true
}

// classifyLockCall resolves a call to (lock identity, operation). ok is
// false for calls that are not sync lock operations or whose lock identity
// cannot be named (an element of a slice of mutexes, say).
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockID, lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, opNone, false
	}
	op, ok := isSyncLockMethod(info, sel)
	if !ok {
		return lockID{}, opNone, false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// base.guard.Lock(): a mutex field of base's type.
		baseType := info.Types[x.X].Type
		if baseType == nil {
			return lockID{}, opNone, false
		}
		return lockID{recv: derefNamed(baseType), guard: x.Sel.Name}, op, true
	case *ast.Ident:
		// mu.Lock(): a mutex variable (package-level, local or parameter).
		vr, ok := info.Uses[x].(*types.Var)
		if !ok {
			return lockID{}, opNone, false
		}
		if vr.IsField() {
			// An embedded-receiver method promoted call; name by the
			// field's owning struct if resolvable, else give up.
			return lockID{}, opNone, false
		}
		return lockID{vr: vr}, op, true
	}
	return lockID{}, opNone, false
}

// forEachLockCall walks node in evaluation (pre-)order and invokes fn for
// every classified lock call, skipping nested function literals (their
// bodies run at call time, not here), deferred calls (they run at function
// exit) and go statements (they run concurrently).
func forEachLockCall(info *types.Info, node ast.Node, fn func(call *ast.CallExpr, id lockID, op lockOp)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if id, op, ok := classifyLockCall(info, n); ok {
				fn(n, id, op)
			}
		}
		return true
	})
}

// deferredLockCalls collects the lock operations a defer statement performs
// at function exit: the deferred call itself, or — for `defer func() {...}()`
// — every lock call in the literal's body.
func deferredLockCalls(info *types.Info, d *ast.DeferStmt, fn func(call *ast.CallExpr, id lockID, op lockOp)) {
	if id, op, ok := classifyLockCall(info, d.Call); ok {
		fn(d.Call, id, op)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		forEachLockCall(info, lit.Body, fn)
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the store/alias core of the mutation-and-purity tier: an
// SSA-lite value-numbering analysis run per function over the Flow[F]
// solver. Every allocation site (composite literal, new, make, a call to a
// function proven to return fresh memory) is one abstract value; the
// analysis tracks which values each local variable may hold, which values
// have been published (returned, stored into shared memory, sent on a
// channel, captured by a closure), and what each value's fields contain
// (field-sensitive containment, so a fresh node built from fresh parts
// stays mutable until the whole graph is published). immutcheck, purity
// and the interprocedural hotalloc upgrade all consume the per-function
// effects and the whole-program summaries computed in summary.go.
//
// Known approximations, shared with the call graph this builds on: calls
// through function values and interface methods resolve to no summary and
// are treated as neither mutating nor publishing their arguments
// (optimistic — the same bet buildCallGraph already makes); taking the
// address of a plain local variable, dereferencing a pointer rvalue and
// reading a field of a published value all go to the shared ⊤; closure
// captures are published at the closure's creation point.

// An absVal is one abstract value: an allocation site or fresh call result
// (site != nil), or the memory reachable from a parameter (site == nil).
type absVal struct {
	site ast.Node // allocation site or call expression
	res  int      // result index for multi-result fresh calls
	// param is the parameter index (receiver first) when site == nil.
	param int
	// viaField marks parameter-reachable memory loaded through a field,
	// element or dereference: mutating it is a deep mutation of the
	// argument, not a store into the argument's own header.
	viaField bool
}

func (v absVal) isParam() bool { return v.site == nil }

// A valSet is the set of abstract values an expression may evaluate to.
// top is the shared ⊤: memory anyone may hold.
type valSet struct {
	top  bool
	vals map[absVal]bool
}

var topSet = valSet{top: true}

func oneVal(v absVal) valSet { return valSet{vals: map[absVal]bool{v: true}} }

func (s valSet) empty() bool { return !s.top && len(s.vals) == 0 }

func unionVals(a, b valSet) valSet {
	if a.top || b.top {
		return topSet
	}
	if len(b.vals) == 0 {
		return a
	}
	if len(a.vals) == 0 {
		return b
	}
	out := make(map[absVal]bool, len(a.vals)+len(b.vals))
	for v := range a.vals {
		out[v] = true
	}
	for v := range b.vals {
		out[v] = true
	}
	return valSet{vals: out}
}

func equalVals(a, b valSet) bool {
	if a.top != b.top || len(a.vals) != len(b.vals) {
		return false
	}
	for v := range a.vals {
		if !b.vals[v] {
			return false
		}
	}
	return true
}

// freshFact is the dataflow fact: what each tracked local may hold, and
// which allocation sites have been published so far on this path.
type freshFact struct {
	env map[types.Object]valSet
	pub map[absVal]bool
}

func (f freshFact) clone() freshFact {
	out := freshFact{
		env: make(map[types.Object]valSet, len(f.env)),
		pub: make(map[absVal]bool, len(f.pub)),
	}
	for k, v := range f.env {
		out.env[k] = v
	}
	for k := range f.pub {
		out.pub[k] = true
	}
	return out
}

func joinFresh(a, b freshFact) freshFact {
	out := freshFact{env: map[types.Object]valSet{}, pub: map[absVal]bool{}}
	for k, av := range a.env {
		if bv, ok := b.env[k]; ok {
			out.env[k] = unionVals(av, bv)
		} else {
			// Absent on the other path: the variable was not assigned
			// there, so anything could be in it.
			out.env[k] = topSet
		}
	}
	for k := range b.env {
		if _, ok := a.env[k]; !ok {
			out.env[k] = topSet
		}
	}
	for k := range a.pub {
		out.pub[k] = true
	}
	for k := range b.pub {
		out.pub[k] = true
	}
	return out
}

func equalFresh(a, b freshFact) bool {
	if len(a.env) != len(b.env) || len(a.pub) != len(b.pub) {
		return false
	}
	for k, av := range a.env {
		bv, ok := b.env[k]
		if !ok || !equalVals(av, bv) {
			return false
		}
	}
	for k := range a.pub {
		if !b.pub[k] {
			return false
		}
	}
	return true
}

// Result-freshness levels (FuncSummary.ResultFresh).
const (
	freshNone    int8 = 0
	freshShallow int8 = 1
	freshDeep    int8 = 2
)

// A frozenWrite is one immutcheck finding candidate: a store into frozen
// memory the analysis cannot prove fresh-and-unpublished.
type frozenWrite struct {
	pos  token.Pos
	typ  string // the frozen type's name
	how  string // "field write", "element write", "in-place append", ...
	call string // non-empty when the mutation happens inside a callee
}

// funcEffects is everything one function body's analysis produced. The
// interprocedural bits feed the summary fixpoint; the frozen writes are
// immutcheck's report list.
type funcEffects struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// mutFrozen maps a parameter index to the freshness level an argument
	// must have for the call to be safe: freshShallow when only the
	// argument's own fields are written, freshDeep when memory loaded
	// through its fields is.
	mutFrozen map[int]int8
	// mutParams are parameters whose reachable memory is written at all
	// (frozen or not); escParams are parameters published by the body.
	mutParams map[int]bool
	escParams map[int]bool

	mutShared    bool // writes globals or memory reachable from ⊤
	readsGlobal  bool
	callsUnknown bool
	sends        bool // channel sends or goroutine launches

	// allocs are the body's direct allocation sites (kind: make, new,
	// append, composite literal, closure), for the hotalloc chains.
	allocs map[token.Pos]string

	resultFresh []int8

	frozenWrites map[token.Pos]frozenWrite
}

func newFuncEffects(fn *types.Func, decl *ast.FuncDecl, pkg *Package) *funcEffects {
	return &funcEffects{
		fn: fn, decl: decl, pkg: pkg,
		mutFrozen:    map[int]int8{},
		mutParams:    map[int]bool{},
		escParams:    map[int]bool{},
		allocs:       map[token.Pos]string{},
		frozenWrites: map[token.Pos]frozenWrite{},
	}
}

// funcFresh is the analysis state for one function or function literal.
type funcFresh struct {
	pkg    *Package
	info   *types.Info
	cache  *RunCache
	sums   map[*types.Func]*FuncSummary
	frozen map[*types.TypeName]bool

	params []*types.Var // receiver first; nil for unnamed slots

	// fields is the containment graph: what each allocation site's fields
	// may hold. Accumulated monotonically across the whole fixpoint (weak
	// updates only), so it lives outside the flow fact.
	fields map[absVal]map[string]valSet
	// dirty marks sites whose contents a callee may have overwritten:
	// field reads go to ⊤ and the site is never deep-fresh.
	dirty map[absVal]bool
	// deepExt marks fresh call results whose callee proved the whole
	// reachable graph fresh; field loads from them stay fresh.
	deepExt map[absVal]bool
	// litDone memoizes nested literal analyses (the transfer function may
	// visit the creation point many times during the fixpoint).
	litDone map[*ast.FuncLit]*funcEffects

	eff *funcEffects
}

// paramVars lists a declaration's receiver and parameters in signature
// order from the AST field lists (nil for unnamed slots).
func paramVars(info *types.Info, recv *ast.FieldList, params *ast.FieldList) []*types.Var {
	var out []*types.Var
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	addList(recv)
	addList(params)
	return out
}

// analyzeFunc runs the freshness dataflow over one body and returns its
// effects. Nested function literals are analyzed recursively: their
// shared-state effects and frozen writes fold into the parent (the body
// runs on the parent's behalf), their parameter effects do not (calls
// through function values are unresolved).
func analyzeFunc(cache *RunCache, pkg *Package, fn *types.Func, decl *ast.FuncDecl,
	sums map[*types.Func]*FuncSummary, frozen map[*types.TypeName]bool) *funcEffects {

	eff := newFuncEffects(fn, decl, pkg)
	a := &funcFresh{
		pkg: pkg, info: pkg.Info, cache: cache, sums: sums, frozen: frozen,
		params:  paramVars(pkg.Info, decl.Recv, decl.Type.Params),
		fields:  map[absVal]map[string]valSet{},
		dirty:   map[absVal]bool{},
		deepExt: map[absVal]bool{},
		eff:     eff,
	}
	nresults := 0
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			if n := len(f.Names); n > 0 {
				nresults += n
			} else {
				nresults++
			}
		}
	}
	eff.resultFresh = make([]int8, nresults)
	for i := range eff.resultFresh {
		eff.resultFresh[i] = freshDeep // meet toward none as returns are seen
	}
	a.solve(decl.Body, decl)
	// A body with no reachable return keeps the optimistic init; no caller
	// can observe the results, so clamp to none for hygiene.
	return eff
}

// solve runs the flow problem over body (a decl's or literal's).
func (a *funcFresh) solve(body *ast.BlockStmt, fnNode ast.Node) {
	init := freshFact{env: map[types.Object]valSet{}, pub: map[absVal]bool{}}
	for i, p := range a.params {
		if p == nil || !trackedType(p.Type()) {
			continue
		}
		init.env[p] = oneVal(absVal{param: i})
	}
	cfg := a.cache.FuncCFG(fnNode, a.info)
	flow := &Flow[freshFact]{
		CFG:  cfg,
		Init: init,
		Transfer: func(n ast.Node, fact freshFact) freshFact {
			w := fact.clone()
			a.node(n, &w)
			return w
		},
		Join:  joinFresh,
		Equal: equalFresh,
	}
	flow.Solve()
}

// trackedType reports whether values of t can reference heap memory worth
// tracking. Basic types and functions are not.
func trackedType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic, *types.Signature:
		return false
	}
	return true
}

// --- transfer function ---

func (a *funcFresh) node(n ast.Node, f *freshFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, f)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			a.bindSpec(vs, f)
		}
	case *ast.ExprStmt:
		a.expr(n.X, f)
	case *ast.IncDecStmt:
		a.store(n.X, valSet{}, f, "field write")
	case *ast.SendStmt:
		a.expr(n.Chan, f)
		v := a.expr(n.Value, f)
		a.publish(v, f)
		a.eff.sends = true
	case *ast.GoStmt:
		a.goCall(n.Call, f)
	case *ast.DeferStmt:
		// Deferred calls run at exit; applying their effects here is a
		// sound over-approximation for the may-facts tracked.
		a.call(n.Call, f)
	case *ast.ReturnStmt:
		a.ret(n, f)
	case *ast.RangeStmt:
		a.rangeHead(n, f)
	case *ast.SelectStmt:
		// Comm statements live in the clause blocks.
	case ast.Expr:
		a.expr(n, f)
	}
}

func (a *funcFresh) bindSpec(vs *ast.ValueSpec, f *freshFact) {
	var rhs []valSet
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		rhs = a.multiExpr(vs.Values[0], len(vs.Names), f)
	} else {
		for _, v := range vs.Values {
			rhs = append(rhs, a.expr(v, f))
		}
	}
	for i, name := range vs.Names {
		obj := a.info.Defs[name]
		if obj == nil || name.Name == "_" || !trackedType(obj.Type()) {
			continue
		}
		if i < len(rhs) {
			f.env[obj] = rhs[i]
			continue
		}
		// Zero value: a struct or array value gets a pseudo allocation
		// site so later field stores into it are tracked; reference kinds
		// hold nothing yet.
		switch obj.Type().Underlying().(type) {
		case *types.Struct, *types.Array:
			f.env[obj] = a.freshGen(absVal{site: name}, f)
		default:
			f.env[obj] = valSet{}
		}
	}
}

func (a *funcFresh) assign(n *ast.AssignStmt, f *freshFact) {
	var rhs []valSet
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		rhs = a.multiExpr(n.Rhs[0], len(n.Lhs), f)
	} else {
		for _, r := range n.Rhs {
			rhs = append(rhs, a.expr(r, f))
		}
	}
	for i, lhs := range n.Lhs {
		var v valSet
		if i < len(rhs) {
			v = rhs[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := a.info.Defs[id]
			if obj == nil {
				obj = a.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isPackageLevel(obj) {
				a.eff.mutShared = true
				a.publish(v, f)
				continue
			}
			if trackedType(obj.Type()) {
				f.env[obj] = v
			}
			continue
		}
		a.store(lhs, v, f, "")
	}
}

// multiExpr evaluates a single expression producing n values (a call, a
// map index with ok, a type assertion with ok, a channel receive).
func (a *funcFresh) multiExpr(e ast.Expr, n int, f *freshFact) []valSet {
	out := make([]valSet, n)
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		res := a.call(e, f)
		copy(out, res)
		return out
	case *ast.TypeAssertExpr:
		out[0] = a.expr(e.X, f)
		return out
	case *ast.IndexExpr:
		out[0] = a.expr(e, f)
		return out
	case *ast.UnaryExpr:
		a.expr(e, f)
		out[0] = topSet
		return out
	}
	a.expr(e, f)
	for i := range out {
		out[i] = topSet
	}
	return out
}

func (a *funcFresh) ret(n *ast.ReturnStmt, f *freshFact) {
	results := make([]valSet, 0, len(a.eff.resultFresh))
	if len(n.Results) == 0 && len(a.eff.resultFresh) > 0 {
		// Bare return with named results: the result variables hold the
		// values. Unbound ones are ⊤.
		// The result variables are the trailing params of the scope; find
		// them through the signature.
		sig, _ := a.info.Defs[a.eff.decl.Name].(*types.Func)
		if sig != nil {
			st := sig.Type().(*types.Signature)
			for i := 0; i < st.Results().Len(); i++ {
				if v, ok := f.env[st.Results().At(i)]; ok {
					results = append(results, v)
				} else {
					results = append(results, topSet)
				}
			}
		}
	} else {
		for _, r := range n.Results {
			results = append(results, a.expr(r, f))
		}
	}
	for i, v := range results {
		if i >= len(a.eff.resultFresh) {
			break
		}
		level := a.freshLevel(v, f)
		if level < a.eff.resultFresh[i] {
			a.eff.resultFresh[i] = level
		}
		a.publish(v, f)
	}
}

func (a *funcFresh) rangeHead(n *ast.RangeStmt, f *freshFact) {
	xv := a.expr(n.X, f)
	bind := func(e ast.Expr, v valSet) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			if e != nil {
				a.store(e, v, f, "")
			}
			return
		}
		obj := a.info.Defs[id]
		if obj == nil {
			obj = a.info.Uses[id]
		}
		if obj != nil && trackedType(obj.Type()) {
			f.env[obj] = v
		}
	}
	if n.Key != nil {
		bind(n.Key, topSet)
	}
	if n.Value != nil {
		bind(n.Value, a.elementsOf(xv, f))
	}
}

// elementsOf returns what the elements of a container value set may hold.
func (a *funcFresh) elementsOf(vs valSet, f *freshFact) valSet {
	if vs.top {
		return topSet
	}
	out := valSet{}
	for v := range vs.vals {
		out = unionVals(out, a.loadField(v, "[]", f))
	}
	return out
}

// --- stores ---

// storeOwner resolves the expression whose value owns the memory an
// lvalue writes: the pointer dereferenced, the slice or map indexed, the
// struct pointer whose field is set. nil means the write stays inside a
// plain local variable.
func storeOwner(info *types.Info, lhs ast.Expr) ast.Expr {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return x.X
		case *ast.IndexExpr:
			return x.X
		case *ast.SelectorExpr:
			if t := info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return x.X
				}
			}
			e = x.X
		case *ast.Ident:
			return nil
		default:
			return e
		}
	}
}

// rootIdent returns the identifier at the base of an access chain.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// fieldKeyOf names the field or element slot an lvalue writes, for the
// containment graph.
func fieldKeyOf(lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return "[]"
	case *ast.StarExpr:
		return "*"
	}
	return "?"
}

// store handles a write through lhs of the values in rhs. how overrides
// the finding description ("" chooses by lvalue shape).
func (a *funcFresh) store(lhs ast.Expr, rhs valSet, f *freshFact, how string) {
	if how == "" {
		switch ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			how = "element write"
		case *ast.StarExpr:
			how = "pointer write"
		default:
			how = "field write"
		}
	}
	owner := storeOwner(a.info, lhs)
	if owner == nil {
		// The write stays inside a plain variable (v.F = x with v a struct
		// value, or x++): safe when the variable is a still-fresh local,
		// a shared mutation when it is package-level.
		if id, ok := rootIdent(lhs); ok {
			obj := a.info.Uses[id]
			if obj == nil {
				obj = a.info.Defs[id]
			}
			if obj != nil {
				if isPackageLevel(obj) {
					a.eff.mutShared = true
					a.publish(rhs, f)
					// A compound lvalue rooted at a package-level value
					// variable writes shared frozen bytes in place; a bare
					// ident rebinds the variable (assign's own rule).
					if _, bare := ast.Unparen(lhs).(*ast.Ident); !bare {
						if name, frozen := a.frozenChain(lhs); frozen {
							a.eff.frozenWrites[lhs.Pos()] = frozenWrite{pos: lhs.Pos(), typ: name, how: how}
						}
					}
					return
				}
				if vs, ok := f.env[obj]; ok && a.allFresh(vs, f) {
					for v := range vs.vals {
						a.addField(v, fieldKeyOf(lhs), rhs)
					}
					return
				}
			}
		}
		// Unknown local contents: anything stored may be read elsewhere
		// once the local escapes, so treat the values as published.
		a.publish(rhs, f)
		return
	}
	ownerVS := a.expr(owner, f)
	frozenName, frozen := a.frozenChain(lhs)
	a.applyMutation(lhs.Pos(), ownerVS, rhs, f, frozen, frozenName, how, fieldKeyOf(lhs))
}

// applyMutation classifies a write into the memory identified by ownerVS:
// fresh (fine, record containment), parameter-reachable (a summary
// effect), or shared (a frozen write finding when frozen).
func (a *funcFresh) applyMutation(pos token.Pos, ownerVS, rhs valSet, f *freshFact,
	frozen bool, frozenName, how, fieldKey string) {

	if a.allFresh(ownerVS, f) {
		for v := range ownerVS.vals {
			a.addField(v, fieldKey, rhs)
		}
		return
	}
	// Not provably fresh: the write escapes this frame in some way.
	a.publish(rhs, f)
	onlyParams := !ownerVS.top && len(ownerVS.vals) > 0
	for v := range ownerVS.vals {
		if !v.isParam() {
			if !f.pub[v] {
				continue // a fresh val in the mix is fine on its own
			}
			onlyParams = false
			continue
		}
		a.eff.mutParams[v.param] = true
		need := freshShallow
		if v.viaField || fieldKey == "*" {
			need = freshDeep
		}
		if frozen {
			if cur, ok := a.eff.mutFrozen[v.param]; !ok || need > cur {
				a.eff.mutFrozen[v.param] = need
			}
		}
	}
	if onlyParams {
		return // pure parameter effect: checked at call sites
	}
	a.eff.mutShared = true
	if frozen {
		a.eff.frozenWrites[pos] = frozenWrite{pos: pos, typ: frozenName, how: how}
	}
}

// freshGen returns the value set for a new generation of allocation site
// v. Evaluating an allocation expression yields memory that is fresh by
// definition, so a publication recorded for a previous loop iteration's
// generation of the same site is dropped (a recency abstraction). Stale
// aliases of the older generation share the absVal and become optimistic
// with it — the usual allocation-site/loop imprecision, accepted because
// the alternative flags every builder loop that publishes per iteration.
func (a *funcFresh) freshGen(v absVal, f *freshFact) valSet {
	delete(f.pub, v)
	return oneVal(v)
}

// allFresh reports whether every value in vs is a local allocation not yet
// published.
func (a *funcFresh) allFresh(vs valSet, f *freshFact) bool {
	if vs.top {
		return false
	}
	for v := range vs.vals {
		if v.isParam() || f.pub[v] {
			return false
		}
	}
	return true
}

// freshLevel grades a value set: freshDeep when every value and its whole
// reachable containment graph is fresh, freshShallow when only the roots
// are, freshNone otherwise.
func (a *funcFresh) freshLevel(vs valSet, f *freshFact) int8 {
	if !a.allFresh(vs, f) {
		return freshNone
	}
	level := freshDeep
	seen := map[absVal]bool{}
	var deep func(v absVal) bool
	deep = func(v absVal) bool {
		if seen[v] {
			return true
		}
		seen[v] = true
		if a.deepExt[v] {
			return true
		}
		if a.dirty[v] {
			return false
		}
		for _, fv := range a.fields[v] {
			if fv.top {
				return false
			}
			for c := range fv.vals {
				if c.isParam() || f.pub[c] || !deep(c) {
					return false
				}
			}
		}
		return true
	}
	for v := range vs.vals {
		if !deep(v) {
			level = freshShallow
		}
	}
	return level
}

func (a *funcFresh) addField(v absVal, key string, vals valSet) {
	if vals.empty() {
		return
	}
	m := a.fields[v]
	if m == nil {
		m = map[string]valSet{}
		a.fields[v] = m
	}
	m[key] = unionVals(m[key], vals)
}

func (a *funcFresh) loadField(v absVal, key string, f *freshFact) valSet {
	if v.isParam() {
		return oneVal(absVal{param: v.param, viaField: true})
	}
	if a.deepExt[v] {
		return oneVal(v) // stays inside the proven-fresh graph
	}
	if f.pub[v] || a.dirty[v] {
		return topSet
	}
	if m := a.fields[v]; m != nil {
		if fv, ok := m[key]; ok {
			return fv
		}
	}
	return valSet{} // zero value: references nothing
}

// publish marks every allocation in vs, and everything its containment
// graph reaches, as published; parameters in vs escape.
func (a *funcFresh) publish(vs valSet, f *freshFact) {
	if vs.top {
		return
	}
	work := make([]absVal, 0, len(vs.vals))
	for v := range vs.vals {
		work = append(work, v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if v.isParam() {
			a.eff.escParams[v.param] = true
			continue
		}
		if f.pub[v] {
			continue
		}
		f.pub[v] = true
		for _, fv := range a.fields[v] {
			if fv.top {
				continue
			}
			for c := range fv.vals {
				work = append(work, c)
			}
		}
	}
}

// --- frozen types along an lvalue chain ---

// frozenChain reports whether the lvalue writes memory owned by a value
// of a frozen type anywhere along its access chain (p.Cols[i] is frozen
// when p's type is, even though []ProjExpr itself is not annotated).
//
// The lvalue's own type counts only when it is a non-reference: overwriting
// a value-typed slot rewrites frozen bytes in place (aliases of the
// container observe it), while storing into a pointer- or interface-typed
// slot merely replaces a reference and never touches the old pointee
// (leaves[i] = &Select{Child: leaves[i]} wraps a plan node, it does not
// mutate one).
func (a *funcFresh) frozenChain(e ast.Expr) (string, bool) {
	outer := true
	for {
		if t := a.info.Types[e].Type; t != nil {
			isRef := false
			switch t.Underlying().(type) {
			case *types.Pointer, *types.Interface:
				isRef = true
			}
			if !(outer && isRef) {
				if name, ok := frozenTypeName(t, a.frozen); ok {
					return name, true
				}
			}
		}
		outer = false
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// frozenTypeName unwraps pointers and aliases and reports whether the
// named (or named-interface) type is annotated // perm:frozen.
func frozenTypeName(t types.Type, frozen map[*types.TypeName]bool) (string, bool) {
	for i := 0; i < 10; i++ {
		t = types.Unalias(t)
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			if frozen[tt.Obj()] {
				return tt.Obj().Name(), true
			}
			return "", false
		default:
			return "", false
		}
	}
	return "", false
}

// frozenReachable reports whether a parameter of type t hands the callee
// frozen memory: a frozen named type, a pointer to one, or a container of
// one.
func frozenReachable(t types.Type, frozen map[*types.TypeName]bool) bool {
	for i := 0; i < 10; i++ {
		if _, ok := frozenTypeName(t, frozen); ok {
			return true
		}
		switch tt := t.Underlying().(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem()
		default:
			return false
		}
	}
	return false
}

func isPackageLevel(obj types.Object) bool {
	if obj == nil || obj.Parent() == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

// message renders one frozen write for immutcheck.
func (w frozenWrite) message() string {
	if w.call != "" {
		return fmt.Sprintf("call to %s mutates frozen %s value that may be shared (copy-on-write it)", w.call, w.typ)
	}
	return fmt.Sprintf("%s to frozen %s value after it may have been published (copy-on-write it)", w.how, w.typ)
}

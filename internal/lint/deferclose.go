package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeferClose enforces the resource-release discipline: a function that
// acquires a releasable resource — a value with a niladic Close method, or
// a context.CancelFunc from context.WithCancel/WithTimeout/WithDeadline —
// must release it on every exit path, which in Go means `defer`.
//
// For every short variable declaration whose right-hand side is a single
// call producing such a value, the analyzer classifies what the function
// does with it:
//
//   - released by defer (defer x.Close(), defer cancel(), or a release
//     inside a deferred closure): clean;
//   - handed off (passed to another call, returned, stored into a
//     composite or another variable, captured by a non-deferred closure,
//     address taken): ownership moved, the analyzer stays quiet;
//   - released only by a plain call: flagged — an early return or panic
//     between acquisition and the call leaks the resource;
//   - discarded with the blank identifier or never released at all:
//     flagged. The context.WithTimeout cancel-leak (`_ = cancel`) is the
//     canonical instance: the timer keeps a goroutine alive until it
//     fires.
//
// Deliberate leaks (process-lifetime resources) carry a
// //permlint:ignore deferclose comment with the reason.
var DeferClose = &Analyzer{
	Name: "deferclose",
	Doc: "releasable resources (Close methods, context cancel functions) must be " +
		"released on every exit path: defer the release or hand the value off",
	Run: runDeferClose,
}

func runDeferClose(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkResourceScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkResourceScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// resourceUse aggregates what one function body does with one candidate.
type resourceUse struct {
	deferred bool // released under a defer on some path
	direct   bool // released by a plain, non-deferred call
	escaped  bool // handed off; release responsibility moved elsewhere
}

// checkResourceScope analyzes one function body. Candidate acquisitions
// are the := assignments directly in this scope (nested function literals
// are scopes of their own); uses are tracked through the whole subtree so
// a release inside a deferred closure counts.
func checkResourceScope(pass *Pass, body *ast.BlockStmt) {
	type candidate struct {
		obj  *types.Var
		id   *ast.Ident
		kind string
	}
	var cands []candidate

	var findAcquisitions func(n ast.Node)
	findAcquisitions = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // its own scope; visited by runDeferClose
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			results := callResults(pass.Info, call)
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && i < len(results) {
					if kind, res := resourceKind(pass.Types, results[i]); res {
						if id.Name == "_" {
							pass.Reportf(id.Pos(), "%s is discarded by the blank identifier and never released; assign it and defer the release", kind)
							continue
						}
						obj, _ := pass.Info.Defs[id].(*types.Var)
						if obj != nil {
							cands = append(cands, candidate{obj: obj, id: id, kind: kind})
						}
					}
				}
			}
			return true
		})
	}
	findAcquisitions(body)
	if len(cands) == 0 {
		return
	}

	uses := make(map[*types.Var]*resourceUse, len(cands))
	for _, c := range cands {
		uses[c.obj] = &resourceUse{}
	}
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := pass.Info.Uses[id].(*types.Var)
		u := uses[obj]
		if u == nil {
			return true
		}
		classifyResourceUse(u, id, stack)
		return true
	})

	for _, c := range cands {
		u := uses[c.obj]
		switch {
		case u.deferred:
			// Released on every path.
		case u.direct:
			// A plain release outranks a hand-off: if this function calls
			// the release itself, it still owns the resource, and owning it
			// without a defer is exactly the leak this check exists for.
			pass.Reportf(c.id.Pos(), "%s %s is released only by a plain call: an early return or panic between acquisition and release leaks it; defer the release", c.kind, c.id.Name)
		case u.escaped:
			// Ownership moved elsewhere.
		default:
			pass.Reportf(c.id.Pos(), "%s %s is never released; defer the release right after acquiring it", c.kind, c.id.Name)
		}
	}
}

// classifyResourceUse folds one occurrence of a candidate into its use
// record. stack holds the ancestors of id, innermost last.
func classifyResourceUse(u *resourceUse, id *ast.Ident, stack []ast.Node) {
	// Anything under a defer statement counts as a deferred release —
	// defer x.Close(), defer cancel(), defer cleanup(x), and releases
	// inside deferred closures all keep the resource safe on every path.
	for _, anc := range stack {
		if _, ok := anc.(*ast.DeferStmt); ok {
			u.deferred = true
			return
		}
	}
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]

	// Captured by a non-deferred closure: the closure owns the release
	// (a goroutine closing the file, a stored callback). Checked before
	// the plain-release shapes so a close inside such a closure does not
	// read as this function releasing the resource itself.
	for _, anc := range stack {
		if _, ok := anc.(*ast.FuncLit); ok {
			u.escaped = true
			return
		}
	}

	// Plain releases: cancel() and x.Close()-shaped method calls.
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == id {
		u.direct = true
		return
	}
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
				switch sel.Sel.Name {
				case "Close", "Cancel", "Stop", "Shutdown":
					u.direct = true
					return
				}
			}
		}
		return // other method/field access: plain use
	}

	// Hand-offs that move release responsibility out of this function.
	switch p := parent.(type) {
	case *ast.CallExpr:
		u.escaped = true // argument to another call
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.ValueSpec:
		u.escaped = true
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			u.escaped = true
		}
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs != id {
				continue
			}
			// `_ = x` keeps the value in this function (a deliberate-leak
			// idiom the never-released report still covers); any other
			// re-assignment moves it.
			for _, lhs := range p.Lhs {
				if lid, ok := lhs.(*ast.Ident); !ok || lid.Name != "_" {
					u.escaped = true
				}
			}
		}
	}
}

// callResults returns the result types of a call expression (one entry for
// a single-value call, the tuple's entries otherwise).
func callResults(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}

// resourceKind classifies a type as a releasable resource: a
// context.CancelFunc, or any type carrying a niladic Close method.
func resourceKind(from *types.Package, t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "CancelFunc" {
			return "context cancel function", true
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, from, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 {
		return "", false
	}
	return "closeable resource (" + types.TypeString(t, types.RelativeTo(from)) + ")", true
}

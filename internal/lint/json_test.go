package lint

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestWriteJSONGolden pins the machine-readable output format byte for
// byte: editor integrations and the CI annotation step parse it.
func TestWriteJSONGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "immutcheck",
			Pos:      token.Position{Filename: "internal/algebra/op.go", Line: 42, Column: 3},
			Message:  "field write to frozen Project value after it may have been published (copy-on-write it)",
		},
		{
			Analyzer: "hotalloc",
			Pos:      token.Position{Filename: "internal/eval/eval.go", Line: 7, Column: 12},
			Message:  "alloc in hot function emit: make",
			Info:     true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	const golden = "testdata/json-golden.txt"
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteJSONEmpty: zero findings must encode as an empty array, never
// null, so `jq length` and similar consumers keep working.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings encode as %q, want []", got)
	}
}

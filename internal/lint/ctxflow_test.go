package lint

import "testing"

func TestCtxFlow(t *testing.T) {
	RunFixture(t, CtxFlow, fixturePath("ctxflow"))
}

func TestCtxFlowMainExempt(t *testing.T) {
	RunFixture(t, CtxFlow, fixturePath("ctxflowmain"))
}

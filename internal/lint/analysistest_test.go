package lint

import (
	"fmt"
	"regexp"
	"sync"
	"testing"
)

// The fixture tests share one loader so the standard-library closure is
// type-checked once per test binary.
var (
	testLoaderOnce sync.Once
	testLoader     *Loader
)

func sharedLoader() *Loader {
	testLoaderOnce.Do(func() { testLoader = NewLoader() })
	return testLoader
}

// wantRE matches the expectation comments of a fixture file:
//
//	x = y // want "unguarded access" "second finding"
//
// Each quoted string is a regexp that must match one diagnostic reported on
// that line; lines without a want comment must produce no diagnostics.
// This is the golang.org/x/tools/go/analysis/analysistest contract, so the
// fixtures survive a migration to the real framework.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Each want argument is either a Go-quoted string or a backquoted raw
// string, matching analysistest's accepted forms.
var wantArgRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// RunFixture loads the fixture package in dir, runs the analyzer over it,
// and asserts the diagnostics match the // want comments exactly.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := sharedLoader().LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Pkg:      pkg,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Types:    pkg.Types,
		Info:     pkg.Info,
		Cache:    newRunCache([]*Package{pkg}),
		diags:    &diags,
		ignores:  buildIgnores(pkg),
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		fileTok := pkg.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{file: fileTok.Name(), line: pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{file: d.Pos.Filename, line: d.Pos.Line}
		res := wants[k]
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q (want one from %s)", k.file, k.line, re, a.Name)
			}
		}
	}
}

// fixturePath composes the conventional fixture directory.
func fixturePath(analyzer string) string {
	return fmt.Sprintf("testdata/src/%s", analyzer)
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity: once any site accesses a
// struct field through sync/atomic (atomic.AddInt64(&s.n, 1), ...), every
// other access of that field must be atomic too. A single plain read mixed
// in — a stats snapshot reading a gauge, a drain path checking a counter —
// is a data race that -race only catches under the right interleaving.
//
// Fields of the typed atomic kinds (atomic.Int64, atomic.Bool, ...) are
// safe by construction and need no checking; this analyzer exists for the
// plain-integer-plus-atomic-functions pattern.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "struct fields accessed via sync/atomic functions anywhere must be " +
		"accessed atomically everywhere",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	atomicFields := map[*types.Var][]ast.Node{}
	atomicArgs := map[ast.Expr]bool{}

	// Pass 1: find every &x.f argument of a sync/atomic call.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
				atomicFields[v] = append(atomicFields[v], call)
				atomicArgs[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access of those fields must be atomic.
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if _, atomicallyUsed := atomicFields[v]; !atomicallyUsed {
				return true
			}
			if insideCompositeLit(stack) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %q is accessed via sync/atomic elsewhere; this plain access races with the atomic sites", v.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call targets a sync/atomic package
// function that takes an address (Add*, Load*, Store*, Swap*,
// CompareAndSwap*).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(obj.Name(), prefix) {
			return true
		}
	}
	return false
}

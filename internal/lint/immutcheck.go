package lint

import (
	"go/token"
	"sort"
)

// ImmutCheck enforces the frozen-plan invariant the plan cache needs:
// types annotated `// perm:frozen` (algebra plan nodes, catalog snapshots,
// sql.Translated, analyzed ASTs) must never receive field stores, slice
// element or map writes, or aliasing in-place appends once the value may
// be shared. The store/alias tier proves a value private while it is a
// local allocation whose containment graph has not been published
// (returned, stored into shared memory, sent, captured); constructors
// therefore build freely, and helper functions that mutate their frozen
// parameters are checked at every call site instead — passing anything
// but provably-fresh memory to one is a finding, closed over the static
// call graph.
var ImmutCheck = &Analyzer{
	Name: "immutcheck",
	Doc: "`// perm:frozen` values must not be mutated after publication " +
		"(field/element writes, map writes, in-place append), interprocedurally",
	Run: runImmutCheck,
}

func runImmutCheck(pass *Pass) error {
	idx := pass.Cache.StoreAlias()
	for _, eff := range idx.sortedEffects(pass.Pkg) {
		poss := make([]token.Pos, 0, len(eff.frozenWrites))
		for p := range eff.frozenWrites {
			poss = append(poss, p)
		}
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
		for _, p := range poss {
			pass.Reportf(p, "%s", eff.frozenWrites[p].message())
		}
	}
	return nil
}

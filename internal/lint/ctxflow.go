package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the request-path cancellation discipline: every
// statement executing on behalf of a request must stay cancellable end to
// end, so no function may sever the context chain by minting a fresh root
// context, and context parameters must sit where convention (and the next
// refactor) expects them.
//
// Rules:
//
//  1. context.Background() and context.TODO() are forbidden outside main
//     packages (the process owns its root context there) and _test.go
//     files. Library code receives its context from the caller.
//  2. A function taking a context.Context must take it as the first
//     parameter.
//  3. A call must not pass a nil literal where a context.Context parameter
//     is declared.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path functions must thread context.Context (first parameter, " +
		"no context.Background/TODO outside main and tests, no nil contexts)",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	isMain := pass.Types.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isMain {
					if isPkgFunc(pass.Info, n, "context", "Background") {
						pass.Reportf(n.Pos(), "context.Background() severs the request cancellation chain; accept a context.Context parameter instead")
					}
					if isPkgFunc(pass.Info, n, "context", "TODO") {
						pass.Reportf(n.Pos(), "context.TODO() severs the request cancellation chain; accept a context.Context parameter instead")
					}
				}
				checkNilContextArg(pass, n)
			case *ast.FuncDecl:
				checkContextFirst(pass, n.Type)
			case *ast.FuncLit:
				checkContextFirst(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkContextFirst flags signatures where a context.Context parameter is
// not the first parameter.
func checkContextFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t := pass.Info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(t) && pos > 0 {
			pass.Reportf(field.Pos(), "context.Context should be the first parameter of a function")
			return
		}
		pos += n
	}
}

// checkNilContextArg flags nil literals in context.Context argument slots.
func checkNilContextArg(pass *Pass, call *ast.CallExpr) {
	sigType := pass.Info.Types[call.Fun].Type
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" || pass.Info.Uses[id] != types.Universe.Lookup("nil") {
			continue
		}
		if i >= params.Len() {
			break // variadic tail; contexts don't travel there
		}
		if isContextType(params.At(i).Type()) {
			pass.Reportf(arg.Pos(), "do not pass a nil context.Context; thread the caller's context")
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncInfo is one declared function or method of an analyzed package, with
// its statically resolvable callees.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees are the *types.Func objects this function's body calls
	// through identifiers or selectors, deduplicated, in source order.
	// Calls through function-typed variables and interface methods resolve
	// to the declared object go/types reports (for an interface method
	// that is the interface's method object, not any concrete
	// implementation) — the documented approximation of this call graph.
	// Calls inside nested function literals are attributed to the
	// enclosing declaration: the literal's body is part of the work this
	// function may cause.
	Callees []*types.Func
}

// CallGraph is a whole-run static call-graph approximation over the
// analyzed (non-standard-library) packages.
type CallGraph struct {
	// Funcs maps each declared function object to its info.
	Funcs map[*types.Func]*FuncInfo
}

// buildCallGraph scans every analyzed package once.
func buildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{Funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range pkgs {
		if pkg.Standard {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &FuncInfo{Fn: obj, Decl: fd, Pkg: pkg}
				seen := map[*types.Func]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeOf(pkg.Info, call); callee != nil && !seen[callee] {
						seen[callee] = true
						info.Callees = append(info.Callees, callee)
					}
					return true
				})
				cg.Funcs[obj] = info
			}
		}
	}
	return cg
}

// calleeOf resolves a call expression to the called function object, or nil
// for builtins, conversions and calls through unnamed function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// SortedFuncs returns the graph's functions in stable source order, for
// deterministic whole-program reports.
func (cg *CallGraph) SortedFuncs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(cg.Funcs))
	for _, fi := range cg.Funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg.PkgPath != b.Pkg.PkgPath {
			return a.Pkg.PkgPath < b.Pkg.PkgPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	return out
}

// RunCache is the state one RunAnalyzers invocation shares across all
// analyzers and packages: the call graph and the per-function CFGs are
// built once per run, not once per analyzer — together with the Loader's
// type-check cache this keeps a nine-analyzer run at one `go list` + one
// stdlib type-check + one CFG per function.
type RunCache struct {
	pkgs map[*Package]bool

	callGraph *CallGraph
	cfgs      map[ast.Node]*CFG

	// lockGraph memoizes the lockorder analyzer's whole-program
	// acquisition-order graph (built on first demand, reported per
	// package).
	lockGraph *lockOrderGraph

	// closeTracked memoizes the chanlife/goroleak close-site index.
	closeSites *closeIndex

	// storeAlias memoizes the store/alias tier's whole-program effects and
	// summaries (immutcheck, purity, interprocedural hotalloc).
	storeAlias *storeAliasIndex
}

func newRunCache(pkgs []*Package) *RunCache {
	set := map[*Package]bool{}
	for _, p := range pkgs {
		set[p] = true
	}
	return &RunCache{pkgs: set, cfgs: map[ast.Node]*CFG{}}
}

// analyzedPackages returns the cache's non-stdlib packages in stable order.
func (c *RunCache) analyzedPackages() []*Package {
	out := make([]*Package, 0, len(c.pkgs))
	for p := range c.pkgs {
		if !p.Standard {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

// CallGraph returns the run's call graph, building it on first use.
func (c *RunCache) CallGraph() *CallGraph {
	if c.callGraph == nil {
		c.callGraph = buildCallGraph(c.analyzedPackages())
	}
	return c.callGraph
}

// terminatingFuncs names the stdlib functions treated as never returning
// when building CFGs (beyond the panic builtin).
var terminatingFuncs = map[string]map[string]bool{
	"os":      {"Exit": true},
	"runtime": {"Goexit": true},
	"log":     {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
}

// FuncCFG returns the memoized CFG of a function declaration or literal.
// fn must be *ast.FuncDecl or *ast.FuncLit with a non-nil body; info is the
// owning package's type info (used to spot terminating calls).
func (c *RunCache) FuncCFG(fn ast.Node, info *types.Info) *CFG {
	if g, ok := c.cfgs[fn]; ok {
		return g
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	g := BuildCFG(body, func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		names := terminatingFuncs[obj.Pkg().Path()]
		return names != nil && names[obj.Name()]
	})
	c.cfgs[fn] = g
	return g
}

// Package lint is the perm repository's invariant-checking suite: six
// analyzers over type-checked packages, run by cmd/permlint and by the
// fixture tests in this package. The analyzers encode the concurrency,
// cancellation and error-handling disciplines the engine relies on but the
// compiler cannot enforce.
//
// # Framework
//
// The Analyzer/Pass/Diagnostic types mirror golang.org/x/tools/go/analysis
// so the suite can migrate to the real framework wholesale; the build
// environment has no module cache or network, so the loader (load.go)
// instead shells out to `go list -deps -json` and type-checks the module
// plus its standard-library closure from source with go/parser and
// go/types. `go list` never lists _test.go files, so test code is never
// analyzed — which is exactly the exemption ctxflow wants.
//
// Findings are suppressed line by line with
//
//	//permlint:ignore <analyzer> <reason>
//
// on the offending line or the line above; omitting the analyzer name
// suppresses every analyzer on that line. The reason is free text but
// should say why the invariant does not apply.
//
// # ctxflow
//
// The service attributes every query to a request context: cancellation
// (client gone, deadline expired, server draining) must propagate from the
// HTTP layer through the session to the evaluator's per-tuple cancellation
// checkpoints. A context.Background() or context.TODO() anywhere on that
// path silently severs the chain — the query keeps running after the
// client gave up, holding its admission token. ctxflow therefore forbids
// both constructors outside main packages (the process entry point owns
// the root context) and test files, requires context.Context parameters to
// come first, and rejects explicit nil contexts.
//
// # lockcheck
//
// The engine's shared maps (the DB and Session view maps, the catalog
// overlay layers, the evaluator's sublink memos, the service session
// table) follow one discipline: replaced wholesale, never mutated in
// place, always under their mutex. The compiler cannot see which mutex
// guards which field, so the struct field says so:
//
//	// guarded-by: mu
//	views map[string]*sql.ViewDef
//
// lockcheck flags any access to an annotated field from a function that
// neither locks the guard (a `x.mu.Lock()` or `x.mu.RLock()` call on the
// same receiver type) nor declares, via `// permlint:held mu` in its doc
// comment, that its callers hold it (the *Locked naming convention made
// checkable). Composite-literal initialization is exempt: the value is not
// shared yet. The check is lexical and flow-insensitive by design — it
// catches the common mistake (a new method reading a guarded map lock-free)
// without simulating control flow.
//
// # errclass
//
// The service maps engine errors onto stable error classes (timeout,
// canceled, budget, compile, ...) that tests and the load harness key on.
// That mapping works only if errors keep their identity on the way up:
// sentinels must be compared with errors.Is (a fmt.Errorf-wrapped
// eval.ErrCanceled fails ==), wrapping must use %w (a %v flattens the
// chain to a string), and HTTP handlers must route errors through the
// classifier rather than calling http.Error or writing 4xx/5xx statuses
// ad hoc.
//
// # atomicfield
//
// A field accessed through sync/atomic anywhere must be accessed that way
// everywhere: one plain `s.n++` next to an atomic.AddInt64(&s.n, 1) is a
// data race that -race only reports when both sites actually interleave.
// atomicfield finds every field passed by address to a sync/atomic
// function and flags plain reads or writes of the same field elsewhere in
// the package. (Fields of type atomic.Int64 and friends are immune by
// construction; the check matters for the plain-integer pattern.)
//
// # deferclose
//
// Sessions, HTTP bodies, CSV files and per-request timeout contexts are
// all acquire/release pairs, and a release that is not deferred is a
// release that an early return or panic skips. deferclose finds short
// variable declarations whose call produces a releasable value — anything
// with a niladic Close method, or a context.CancelFunc — and flags
// functions that discard it, never release it (the classic
// context.WithTimeout `_ = cancel` leak, which keeps the timer goroutine
// alive), or release it only through a plain non-deferred call. Values
// handed off — passed along, returned, stored, captured by a goroutine —
// move the obligation elsewhere and are not flagged.
//
// # hotalloc
//
// The per-tuple executor paths — the streaming operators and the sublink
// probes, annotated `// perm:hot` — pay for every allocation once per row.
// hotalloc inventories make/new/append calls, composite literals, closure
// creations and interface boxing (a types.Value stored into an any) inside
// those functions. Its findings are advisory: they do not fail permlint
// (pass -strict-hot to make them fail, -inventory to print only them) but
// form the measured burn-down list for the planned vectorized executor.
package lint

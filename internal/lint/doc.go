// Package lint is the perm repository's invariant-checking suite: twelve
// analyzers over type-checked packages, run by cmd/permlint and by the
// fixture tests in this package. The analyzers encode the concurrency,
// cancellation, error-handling and immutability disciplines the engine
// relies on but the compiler cannot enforce.
//
// # Annotation vocabulary
//
// The analyzers read a small set of comment directives:
//
//	// guarded-by: mu      (struct field)  lockcheck: accesses require mu
//	// permlint:held mu    (function doc)  lockcheck: caller holds mu
//	// perm:hot            (function doc)  hotalloc: per-row path, inventory allocations
//	// perm:frozen         (type doc)      immutcheck: immutable after publication
//	// perm:memoized       (function doc)  purity: results are cached, must be read-only over frozen inputs
//	//permlint:ignore <analyzer> <reason>  suppress a finding on this or the next line
//
// # Framework
//
// The Analyzer/Pass/Diagnostic types mirror golang.org/x/tools/go/analysis
// so the suite can migrate to the real framework wholesale; the build
// environment has no module cache or network, so the loader (load.go)
// instead shells out to `go list -deps -json` and type-checks the module
// plus its standard-library closure from source with go/parser and
// go/types. `go list` never lists _test.go files, so test code is never
// analyzed — which is exactly the exemption ctxflow wants.
//
// On top of the per-package passes sits a flow-sensitive tier (cfg.go): a
// dependency-free control-flow graph over function bodies — basic blocks
// for if/for/range/switch/select/goto, a virtual exit block, panic-path
// marking, recorded defers — and a generic forward-dataflow worklist
// solver (Flow[F]) parameterized by an analyzer's fact lattice. Analyzers
// never report during the fixpoint; they re-play the solved block-entry
// facts deterministically and report on the replay. A run-wide cache
// (callgraph.go) shares the expensive artifacts across analyzers within
// one permlint invocation: the static call graph (Ident/Selector calls
// only; calls through function values and interfaces stay unresolved),
// memoized per-function CFGs, the lock-order graph and the channel
// close/send index. cmd/permlint -v reports the load and per-analyzer
// wall time this caching buys.
//
// Findings are suppressed line by line with
//
//	//permlint:ignore <analyzer> <reason>
//
// on the offending line or the line above; omitting the analyzer name
// suppresses every analyzer on that line. The reason is free text but
// should say why the invariant does not apply.
//
// # ctxflow
//
// The service attributes every query to a request context: cancellation
// (client gone, deadline expired, server draining) must propagate from the
// HTTP layer through the session to the evaluator's per-tuple cancellation
// checkpoints. A context.Background() or context.TODO() anywhere on that
// path silently severs the chain — the query keeps running after the
// client gave up, holding its admission token. ctxflow therefore forbids
// both constructors outside main packages (the process entry point owns
// the root context) and test files, requires context.Context parameters to
// come first, and rejects explicit nil contexts.
//
// # lockcheck
//
// The engine's shared maps (the DB and Session view maps, the catalog
// overlay layers, the evaluator's sublink memos, the service session
// table) follow one discipline: replaced wholesale, never mutated in
// place, always under their mutex. The compiler cannot see which mutex
// guards which field, so the struct field says so:
//
//	// guarded-by: mu
//	views map[string]*sql.ViewDef
//
// lockcheck is flow-sensitive: it solves a per-function dataflow problem
// over the hold state of each lock (not held < maybe held < held, per
// write/read side) and requires every access to an annotated field to sit
// at a program point where the guard is held on ALL incoming paths — a
// lock held on only some paths ("Lock under if") is its own finding, as
// is a Lock/Unlock imbalance on any path to return, an Unlock without a
// matching hold, and a write-Lock taken while already held
// (self-deadlock). Deferred unlocks are credited on every exit path;
// panic-only paths are exempt from balance (deferred releases run during
// unwinding). `// permlint:held mu` still declares the caller-holds
// convention (the *Locked naming made checkable), and composite-literal
// initialization is exempt (the value is not shared yet). Known
// approximations: lock identities conflate instances per receiver type;
// closures inherit every lock their creator acquires anywhere (sink
// closures run synchronously under the creator's locks, and the analysis
// cannot see call time), so their bodies are checked leniently.
//
// # lockorder
//
// lockcheck proves each function's locking is locally sane; lockorder
// proves the functions compose. It derives the whole-program
// lock-acquisition-order graph — an edge A -> B wherever some function
// acquires B (directly, or transitively through statically resolvable
// calls) at a point where the flow analysis proves A is held — and
// reports every cycle as a potential deadlock: two goroutines taking
// {A then B} and {B then A} deadlock under the right interleaving without
// either path being wrong in isolation, which is exactly the bug class
// -race cannot see until it fires in production. Re-acquiring a lock
// already held (directly or via a callee) is a self-deadlock finding,
// except read-under-read, which RWMutex permits. Acquisitions inside go
// statements are excluded (a goroutine does not hold its creator's
// locks). cmd/permlint -checks lockorder -graph renders the graph as
// Graphviz DOT, cycles highlighted; the nightly CI job archives it.
// Approximations: instance conflation can produce false cycles for
// deliberate same-type ordering (address order, parent before child) —
// such sites carry a //permlint:ignore with the ordering argument — and
// calls through function values or interfaces do not propagate.
//
// # goroleak
//
// Every `go` statement's goroutine must have a bounded exit: a worker
// that can never terminate holds its stack, its captured references and
// (in the executor's pools) a semaphore token forever, invisibly to
// -race. goroleak requires the goroutine body's CFG to reach the function
// exit, and requires each potentially unbounded blocking construct to be
// externally signalable: `for range ch` needs a close site for ch
// somewhere in the analyzed packages, a bare `<-ch` needs a send or close
// site or must be a ctx.Done() channel, and a body that selects on a
// cancellation signal is trusted throughout. Channel identity resolves
// through the variable or field object where possible — including
// `for _, ch := range chans` rebinding back to chans — and falls back to
// element-type matching, which errs toward missing a leak rather than
// inventing one. Calls made by the goroutine body are not followed.
//
// # chanlife
//
// chanlife tracks each local channel variable's lifecycle through the CFG
// as a three-bit abstract state {open, closed, nil} joined bitwise at
// merges: close of a definitely-closed channel panics, close of a
// maybe-closed channel is a latent panic, a send reachable after a close
// panics, and sends/receives on definitely-nil channels block forever —
// except as select comms, where a nil channel idiomatically disables the
// arm. Range rebinding resets the loop variable each iteration, so
// closing every element of a slice of channels is clean. A separate
// escape check flags sends on unbuffered channels that never leave the
// function: with no other goroutine holding the receive end, the send can
// never complete. Shared state (fields, globals, parameters) is assumed
// open — cross-function channel lifecycles are goroleak's and the close
// index's business.
//
// # errclass
//
// The service maps engine errors onto stable error classes (timeout,
// canceled, budget, compile, ...) that tests and the load harness key on.
// That mapping works only if errors keep their identity on the way up:
// sentinels must be compared with errors.Is (a fmt.Errorf-wrapped
// eval.ErrCanceled fails ==), wrapping must use %w (a %v flattens the
// chain to a string), and HTTP handlers must route errors through the
// classifier rather than calling http.Error or writing 4xx/5xx statuses
// ad hoc.
//
// # atomicfield
//
// A field accessed through sync/atomic anywhere must be accessed that way
// everywhere: one plain `s.n++` next to an atomic.AddInt64(&s.n, 1) is a
// data race that -race only reports when both sites actually interleave.
// atomicfield finds every field passed by address to a sync/atomic
// function and flags plain reads or writes of the same field elsewhere in
// the package. (Fields of type atomic.Int64 and friends are immune by
// construction; the check matters for the plain-integer pattern.)
//
// # deferclose
//
// Sessions, HTTP bodies, CSV files and per-request timeout contexts are
// all acquire/release pairs, and a release that is not deferred is a
// release that an early return or panic skips. deferclose finds short
// variable declarations whose call produces a releasable value — anything
// with a niladic Close method, or a context.CancelFunc — and flags
// functions that discard it, never release it (the classic
// context.WithTimeout `_ = cancel` leak, which keeps the timer goroutine
// alive), or release it only through a plain non-deferred call. Values
// handed off — passed along, returned, stored, captured by a goroutine —
// move the obligation elsewhere and are not flagged.
//
// # The store/alias tier
//
// Above the CFGs sits an interprocedural mutation-and-aliasing analysis
// (storealias.go, storeeval.go, summary.go) shared by immutcheck, purity
// and hotalloc's transitive mode. Per function it runs an SSA-lite value
// numbering over the dataflow solver: every allocation site (composite
// literal, new, make, append, a call proven to return fresh memory) is one
// abstract value; the fact tracks which values each local may hold and
// which have been published — returned, stored into shared or
// parameter-reachable memory, sent on a channel, passed to a go statement,
// or captured by a closure (at its creation point). A field-sensitive
// containment graph records what each value's fields hold, so a node built
// from fresh parts stays provably private until the whole graph publishes;
// a capped reslice (s[:i:i]) is recognized as a forced copy. Per-function
// effects fold into FuncSummary records (parameter mutation levels, escape
// set, result freshness on none < shallow < deep, allocation kinds),
// iterated to a fixpoint over the call graph so effects flow through
// helpers; call sites apply callee summaries, which is how a constructor
// helper that writes its parameter is checked where it is called — with
// provably fresh memory it is fine, with anything shared it is a finding.
//
// Known approximations: calls through function values and interface
// methods (and stdlib outside a small trusted read-only set) resolve to no
// summary and are treated as neither mutating nor publishing their
// arguments — the same optimistic bet the call graph already makes;
// taking the address of a plain local, dereferencing a pointer rvalue and
// loading a field of a published value all go to the shared ⊤; allocation
// sites are per-expression, with a recency abstraction so a loop-reexecuted
// make is a fresh generation each iteration (stale aliases of the previous
// generation become optimistic with it); escape via return is treated as
// publication even though the memory is still frame-local until the caller
// shares it.
//
// # immutcheck
//
// Types annotated `// perm:frozen` — the algebra plan nodes and
// expressions, sql.Translated, view definitions, catalog snapshots — obey
// the frozen-plan invariant the plan cache needs: no field stores, element
// or map writes, or aliasing in-place appends once the value may be
// shared. The store/alias tier proves constructors innocent (their writes
// land in still-private memory), so the analyzer only reports
// post-publication mutation, including mutation smuggled through a helper:
// a function whose summary says "writes through parameter 0, which is
// frozen-typed" turns every call site that passes non-fresh memory into a
// finding. Storing into a pointer- or interface-typed slot replaces a
// reference and is not a mutation of the old pointee; overwriting a
// value-typed slot in shared memory is.
//
// # purity
//
// Functions annotated `// perm:memoized` — the sublink probes whose
// verdicts are cached, Register-time kind inference, any future plan-cache
// fill — must be read-only over their frozen inputs: a memoized function
// that mutates memory reachable from a frozen-typed parameter computed its
// cached result from inputs the computation itself changed, so every later
// cache hit returns a value no longer derivable from its key. Mutating its
// own receiver or run state (the memo maps themselves) is fine.
//
// # purityinv
//
// The advisory purity inventory: every declared function classified on the
// lattice pure < read-only < mutating < escaping (reads global state;
// writes shared or parameter-reachable memory or calls an unresolved
// callee; publishes a parameter or sends). Like the hotalloc inventory it
// never fails a run; the nightly CI job archives it so the share of
// pure/read-only code — the plan cache's candidate set — is tracked over
// time.
//
// # hotalloc
//
// The per-tuple executor paths — the streaming operators and the sublink
// probes, annotated `// perm:hot` — pay for every allocation once per row.
// hotalloc inventories make/new/append calls, composite literals, closure
// creations and interface boxing (a types.Value stored into an any) inside
// those functions, and — via the store/alias tier's summaries — calls to
// statically resolvable callees that transitively allocate, attributed
// with the call chain down to the allocation ("helper -> sub: make").
// Callees that are themselves `// perm:hot` are skipped (their allocations
// are their own inventory entries). Its findings are advisory: they do not
// fail permlint (-inventory prints only them) but form the measured
// burn-down list for the planned vectorized executor. -strict-hot diffs
// the inventory against the checked-in baseline
// (internal/lint/testdata/hotalloc-baseline.txt, regenerated with
// -write-hot-baseline): the burn-down may shrink, but a new hot-path
// allocation fails CI.
package lint

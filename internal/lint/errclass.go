package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrClass enforces the error-classification discipline the service
// boundary depends on: the differential harness and permload key on stable
// error classes, and a class survives the trip from the engine to the HTTP
// response only if (a) sentinel errors stay recognizable to errors.Is and
// (b) every handler error flows through the package's classifier rather
// than ad-hoc HTTP error writing.
//
// Rules:
//
//  1. Sentinel errors (package-level `var Err.../err...` of type error)
//     must be compared with errors.Is, never == or != — wrapped errors
//     (fmt.Errorf %w, the executor's cancellation chain) fail pointer
//     comparison silently.
//  2. fmt.Errorf with an error-typed argument must use %w: a %v/%s wrap
//     mints a new error class and the boundary classifier stops matching.
//  3. HTTP handler functions (w http.ResponseWriter, r *http.Request) must
//     not call http.Error or write 4xx/5xx statuses directly — errors
//     route through the package's classifier (writeError/writeJSON).
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "boundary errors keep their class: errors.Is for sentinels, %w for wraps, " +
		"the classifier for handler errors",
	Run: runErrClass,
}

func runErrClass(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.FuncDecl:
				if isHTTPHandler(pass, n) {
					checkHandlerErrors(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkSentinelCompare flags `err == ErrFoo` / `err != ErrFoo`.
func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if name, ok := sentinelName(pass, b.X); ok {
		pass.Reportf(b.Pos(), "sentinel error %s compared with %s; use errors.Is (wrapped errors fail pointer comparison)", name, b.Op)
		return
	}
	if name, ok := sentinelName(pass, b.Y); ok {
		pass.Reportf(b.Pos(), "sentinel error %s compared with %s; use errors.Is (wrapped errors fail pointer comparison)", name, b.Op)
	}
}

// sentinelName reports whether e is a package-level error variable named
// like a sentinel (Err*/err*).
func sentinelName(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	// Package level: the variable's parent scope is its package scope.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
		return "", false
	}
	if !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// checkErrorfWrap flags fmt.Errorf calls that take an error argument but
// whose (constant) format string has no %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if t := pass.Info.Types[arg].Type; t != nil && implementsError(t) {
			pass.Reportf(call.Pos(), "fmt.Errorf wraps an error without %%w: the error class is lost to errors.Is at the service boundary")
			return
		}
	}
}

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isHTTPHandler reports whether fd has an (http.ResponseWriter,
// *http.Request) parameter pair — the handler shape.
func isHTTPHandler(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	return isNamedType(params.At(0).Type(), "net/http", "ResponseWriter") &&
		isPtrToNamedType(params.At(1).Type(), "net/http", "Request")
}

// checkHandlerErrors flags ad-hoc error writing inside a handler.
func checkHandlerErrors(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass.Info, call, "net/http", "Error") {
			pass.Reportf(call.Pos(), "handler writes an error with http.Error; route it through the package's error classifier instead")
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
			if recvT := pass.Info.Types[sel.X].Type; recvT != nil && isNamedType(recvT, "net/http", "ResponseWriter") {
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if v, ok := constant.Int64Val(tv.Value); ok && v >= 400 {
						pass.Reportf(call.Pos(), "handler writes status %d directly; route errors through the package's error classifier instead", v)
					}
				}
			}
		}
		return true
	})
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isPtrToNamedType(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedType(ptr.Elem(), pkgPath, name)
}

package lint

import (
	"strings"
	"testing"
)

func TestLockOrder(t *testing.T) {
	RunFixture(t, LockOrder, fixturePath("lockorder"))
}

// TestLockOrderDOT asserts the graph renders as well-formed DOT with the
// cycle highlighted.
func TestLockOrderDOT(t *testing.T) {
	pkg, err := sharedLoader().LoadDir(fixturePath("lockorder"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	dot := LockOrderDOT([]*Package{pkg})
	if !strings.HasPrefix(dot, "digraph lockorder {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a DOT digraph:\n%s", dot)
	}
	for _, want := range []string{
		`"lockorder.a.mu" [color=red, penwidth=2];`,
		`"lockorder.b.mu" [color=red, penwidth=2];`,
		`"lockorder.a.mu" -> "lockorder.b.mu"`,
		`"lockorder.b.mu" -> "lockorder.a.mu"`,
		`"lockorder.outer.mu" -> "lockorder.inner.mu"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// The consistently ordered pair must not be highlighted.
	if strings.Contains(dot, `"lockorder.outer.mu" [color=red`) {
		t.Errorf("acyclic node wrongly highlighted:\n%s", dot)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLife tracks each local channel variable's lifecycle through the CFG
// with a three-bit abstract state {open, closed, nil} joined bitwise at
// merge points:
//
//   - close of a definitely-closed channel panics at run time; close of a
//     maybe-closed channel (closed on some path in) is flagged as a latent
//     panic;
//   - close of a receive-only channel is named explicitly (the compiler
//     rejects it too; the analyzer keeps the check so partially-broken
//     trees under analysis still get a precise message);
//   - a send reachable after a close on the same channel panics;
//   - sends and receives on a definitely-nil channel block forever (except
//     as select comms, where a nil channel is the idiomatic "disable this
//     arm");
//   - a send on an unbuffered channel that never escapes the function and
//     is never touched by another goroutine blocks forever.
//
// Channels are tracked per variable object; a variable whose state the
// analyzer has not seen (parameters, fields, globals) is assumed open.
// Range rebinding (`for _, ch := range chans`) resets the loop variable to
// open on each iteration, so closing each element of a slice of channels
// is not a double close.
var ChanLife = &Analyzer{
	Name: "chanlife",
	Doc: "per-channel lifecycle dataflow: double-close, close of receive-only " +
		"channels, send-after-close, and unbuffered sends no goroutine can receive",
	Run: runChanLife,
}

// Abstract channel state bits.
const (
	bitOpen   uint8 = 1 << iota // created / unknown-but-usable
	bitClosed                   // close(ch) executed
	bitNil                      // declared without make, or assigned nil
)

// chanFact maps channel variables to their abstract state at a program
// point. Absent means "never observed": treated as open.
type chanFact map[*types.Var]uint8

func (f chanFact) clone() chanFact {
	out := make(chanFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinChanFacts(a, b chanFact) chanFact {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; ok {
			out[k] = cur | v
		} else {
			out[k] = v | bitOpen
		}
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			out[k] |= bitOpen
		}
	}
	return out
}

func equalChanFacts(a, b chanFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runChanLife(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cl := &chanLifeChecker{pass: pass, visited: map[*ast.FuncLit]bool{}}
			cl.checkFunc(fd, fd.Body)
			cl.checkUnbuffered(fd.Body)
			// Closures run at unknown times relative to the enclosing flow;
			// each body is its own flow problem with a fresh (all-open) fact.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !cl.visited[lit] {
					cl.visited[lit] = true
					cl.checkFunc(lit, lit.Body)
					cl.checkUnbuffered(lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type chanLifeChecker struct {
	pass    *Pass
	visited map[*ast.FuncLit]bool
}

// checkFunc solves the channel-state dataflow over fn's CFG and replays the
// solution to report lifecycle violations.
func (cl *chanLifeChecker) checkFunc(fn ast.Node, body *ast.BlockStmt) {
	cfg := cl.pass.Cache.FuncCFG(fn, cl.pass.Info)
	commNodes := selectCommNodes(body)

	flow := &Flow[chanFact]{
		CFG:      cfg,
		Init:     chanFact{},
		Join:     joinChanFacts,
		Equal:    equalChanFacts,
		Transfer: func(n ast.Node, fact chanFact) chanFact { return cl.transferNode(fact, n, commNodes, nil) },
	}
	entry := flow.Solve()

	// Replay with reporting enabled.
	report := func(pos token.Pos, format string, args ...any) {
		cl.pass.Reportf(pos, format, args...)
	}
	exitFact := chanFact{}
	exitSeen := false
	for _, b := range cfg.Blocks {
		in, reached := entry[b]
		if !reached {
			continue
		}
		fact := in.clone()
		for _, n := range b.Nodes {
			fact = cl.transferNode(fact, n, commNodes, report)
		}
		for _, succ := range b.Succs {
			if succ == cfg.Exit && !b.PanicExit {
				if exitSeen {
					exitFact = joinChanFacts(exitFact, fact)
				} else {
					exitFact, exitSeen = fact.clone(), true
				}
			}
		}
	}
	// Deferred closes run at exit, in reverse order; double close between
	// two defers of the same channel is still a panic.
	for i := len(cfg.Defers) - 1; i >= 0; i-- {
		d := cfg.Defers[i]
		if call, ok := directCloseCall(cl.pass.Info, d.Call); ok {
			exitFact = cl.applyClose(exitFact, call, report)
		}
	}
}

// transferNode advances fact across one CFG node. report is nil during the
// fixpoint solve and live during replay.
func (cl *chanLifeChecker) transferNode(fact chanFact, n ast.Node, commNodes map[ast.Node]bool, report func(token.Pos, string, ...any)) chanFact {
	inSelect := commNodes[n]
	switch n := n.(type) {
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return fact
		}
		fact = fact.clone()
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				vr := cl.chanVarDef(name)
				if vr == nil {
					continue
				}
				if len(vs.Values) == 0 {
					fact[vr] = bitNil // var ch chan T
				} else if i < len(vs.Values) {
					fact[vr] = cl.rhsState(vs.Values[i])
				}
			}
		}
		return fact
	case *ast.AssignStmt:
		fact = fact.clone()
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				vr := cl.chanVarRef(id)
				if vr == nil {
					continue
				}
				fact[vr] = cl.rhsState(n.Rhs[i])
			}
		} else {
			// Multi-value RHS (ch, ok := f()): conservatively open.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if vr := cl.chanVarRef(id); vr != nil {
						fact[vr] = bitOpen
					}
				}
			}
		}
		// A receive on the RHS (v, ok := <-ch) is handled by the
		// UnaryExpr check below via the caller's walk — but CFG nodes are
		// whole statements, so check receives embedded here.
		fact = cl.checkEmbeddedReceives(fact, n, inSelect, report)
		return fact
	case *ast.RangeStmt:
		// Rebinding: each iteration yields a fresh element; a channel-typed
		// range value resets to open. Ranging over a nil channel blocks.
		fact = fact.clone()
		if report != nil {
			if vr := cl.chanVarExpr(n.X); vr != nil && fact.state(vr) == bitNil {
				report(n.Pos(), "range over nil channel %s blocks forever", exprString(n.X))
			}
		}
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if vr := cl.chanVarDef(id); vr != nil {
					fact[vr] = bitOpen
				}
			}
		}
		return fact
	case *ast.SendStmt:
		if vr := cl.chanVarExpr(n.Chan); vr != nil {
			st := fact.state(vr)
			if report != nil {
				name := exprString(n.Chan)
				switch {
				case st == bitClosed:
					report(n.Pos(), "send on %s after close (panics at run time)", name)
				case st&bitClosed != 0 && st&bitOpen != 0:
					report(n.Pos(), "send on %s is reachable after close on some path", name)
				case st == bitNil && !inSelect:
					report(n.Pos(), "send on nil channel %s blocks forever", name)
				}
			}
		}
		return cl.checkEmbeddedReceives(fact, n.Value, inSelect, report)
	case *ast.ExprStmt:
		if call, ok := directCloseCall(cl.pass.Info, n.X); ok {
			return cl.applyClose(fact, call, report)
		}
		return cl.checkEmbeddedReceives(fact, n, inSelect, report)
	default:
		if e, ok := n.(ast.Stmt); ok {
			return cl.checkEmbeddedReceives(fact, e, inSelect, report)
		}
		if e, ok := n.(ast.Expr); ok {
			return cl.checkEmbeddedReceives(fact, e, inSelect, report)
		}
	}
	return fact
}

// applyClose transitions ch's state through close(ch), reporting double
// closes and closes of receive-only channels.
func (cl *chanLifeChecker) applyClose(fact chanFact, call *ast.CallExpr, report func(token.Pos, string, ...any)) chanFact {
	arg := call.Args[0]
	if report != nil {
		if t := cl.pass.Info.Types[arg].Type; t != nil {
			if ch, ok := t.Underlying().(*types.Chan); ok && ch.Dir() == types.RecvOnly {
				report(call.Pos(), "close of receive-only channel %s", exprString(arg))
			}
		}
	}
	vr := cl.chanVarExpr(arg)
	if vr == nil {
		return fact
	}
	st := fact.state(vr)
	if report != nil {
		name := exprString(arg)
		switch {
		case st == bitClosed:
			report(call.Pos(), "close of %s: already closed on every path here (panics at run time)", name)
		case st&bitClosed != 0:
			report(call.Pos(), "close of %s: may already be closed on some path here", name)
		case st == bitNil:
			report(call.Pos(), "close of nil channel %s (panics at run time)", name)
		}
	}
	fact = fact.clone()
	fact[vr] = bitClosed
	return fact
}

// checkEmbeddedReceives reports receives from definitely-nil channels found
// anywhere inside n (skipping nested function literals and selects, which
// get their own treatment).
func (cl *chanLifeChecker) checkEmbeddedReceives(fact chanFact, n ast.Node, inSelect bool, report func(token.Pos, string, ...any)) chanFact {
	if n == nil || report == nil || inSelect {
		return fact
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.SelectStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op != token.ARROW {
				return true
			}
			if vr := cl.chanVarExpr(x.X); vr != nil && fact.state(vr) == bitNil {
				report(x.Pos(), "receive on nil channel %s blocks forever", exprString(x.X))
			}
		}
		return true
	})
	return fact
}

// state returns the abstract bits for vr, defaulting to open for channels
// the analyzer has not observed being created (parameters, fields).
func (f chanFact) state(vr *types.Var) uint8 {
	if st, ok := f[vr]; ok {
		return st
	}
	return bitOpen
}

// rhsState classifies an initializer: make() is open, nil is nil, anything
// else (a call, another variable) is open.
func (cl *chanLifeChecker) rhsState(e ast.Expr) uint8 {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := cl.pass.Info.Uses[id].(*types.Nil); isNil {
			return bitNil
		}
	}
	return bitOpen
}

// chanVarDef resolves a defining identifier to its channel-typed variable.
func (cl *chanLifeChecker) chanVarDef(id *ast.Ident) *types.Var {
	obj := cl.pass.Info.Defs[id]
	if obj == nil {
		obj = cl.pass.Info.Uses[id] // `=` rebinding in range, plain assign
	}
	return asChanVar(obj)
}

// chanVarRef resolves a used identifier to its channel-typed variable.
func (cl *chanLifeChecker) chanVarRef(id *ast.Ident) *types.Var {
	obj := cl.pass.Info.Uses[id]
	if obj == nil {
		obj = cl.pass.Info.Defs[id] // := definitions
	}
	return asChanVar(obj)
}

// chanVarExpr resolves a channel expression to a tracked variable: plain
// identifiers only — selectors, indexes and calls are shared state this
// per-function analysis does not model.
func (cl *chanLifeChecker) chanVarExpr(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return cl.chanVarRef(id)
}

func asChanVar(obj types.Object) *types.Var {
	vr, ok := obj.(*types.Var)
	if !ok || vr.Type() == nil {
		return nil
	}
	if _, ok := vr.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return vr
}

// directCloseCall matches `close(x)` as an expression.
func directCloseCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil, false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "close" {
		return nil, false
	}
	return call, true
}

// selectCommNodes collects every select comm statement in body, so nil-
// channel operations inside selects are exempt (a nil arm just never
// fires).
func selectCommNodes(body *ast.BlockStmt) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, s := range sel.Body.List {
			if cc, ok := s.(*ast.CommClause); ok && cc.Comm != nil {
				comms[cc.Comm] = true
			}
		}
		return true
	})
	return comms
}

// checkUnbuffered flags sends on unbuffered channels that never leave the
// function: with no other goroutine holding the receive end, the send can
// never complete.
func (cl *chanLifeChecker) checkUnbuffered(body *ast.BlockStmt) {
	info := cl.pass.Info

	// Candidate channels: ch := make(chan T) with no buffer argument.
	candidates := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true // make with buffer arg has len(Args) == 2
		}
		fid, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[fid].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		if vr := asChanVar(info.Defs[id]); vr != nil {
			candidates[vr] = true
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}

	// Disqualify channels that escape: passed to a call, captured by a
	// closure or go statement, returned, stored, aliased.
	type sendSite struct {
		pos      token.Pos
		vr       *types.Var
		inSelect bool
	}
	var sends []sendSite
	commNodes := selectCommNodes(body)
	selectHasDefault := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, s := range sel.Body.List {
			if cc, ok := s.(*ast.CommClause); ok {
				if cc.Comm == nil {
					for _, ss := range sel.Body.List {
						if c2, ok := ss.(*ast.CommClause); ok && c2.Comm != nil {
							selectHasDefault[c2.Comm] = true
						}
					}
				}
			}
		}
		return true
	})

	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		vr := asChanVar(info.Uses[id])
		if vr == nil || !candidates[vr] {
			return true
		}
		// Walk up: what role does this use play?
		parent := stack[len(stack)-1]
		escaped := false
		for _, anc := range stack {
			if _, ok := anc.(*ast.FuncLit); ok {
				escaped = true // another goroutine (or later caller) may receive
				break
			}
			if _, ok := anc.(*ast.GoStmt); ok {
				escaped = true
				break
			}
			if _, ok := anc.(*ast.DeferStmt); ok {
				escaped = true
				break
			}
			if _, ok := anc.(*ast.ReturnStmt); ok {
				escaped = true
				break
			}
		}
		if !escaped {
			switch p := parent.(type) {
			case *ast.SendStmt:
				if p.Chan == id {
					sends = append(sends, sendSite{pos: p.Pos(), vr: vr, inSelect: commNodes[p] && selectHasDefault[p]})
					return true
				}
				escaped = true // ch sent as a value on another channel
			case *ast.UnaryExpr:
				if p.Op != token.ARROW {
					escaped = true // &ch
				}
			case *ast.RangeStmt:
				if p.X != id {
					escaped = true
				}
			case *ast.CallExpr:
				// close(ch)/len/cap are fine; anything else hands the
				// channel to code that may receive.
				if fid, ok := p.Fun.(*ast.Ident); ok {
					if b, ok := info.Uses[fid].(*types.Builtin); ok {
						switch b.Name() {
						case "close", "len", "cap":
							return true
						}
					}
				}
				escaped = true
			case *ast.AssignStmt:
				for _, rhs := range p.Rhs {
					if rhs == id {
						escaped = true // aliased
					}
				}
			case *ast.BinaryExpr:
				// comparisons (ch == nil) are fine
			default:
				escaped = true
			}
		}
		if escaped {
			delete(candidates, vr)
		}
		return true
	})

	for _, s := range sends {
		if !candidates[s.vr] || s.inSelect {
			continue
		}
		cl.pass.Reportf(s.pos, "send on unbuffered channel %s blocks forever: the channel never leaves this function, so no goroutine can receive", s.vr.Name())
	}
}

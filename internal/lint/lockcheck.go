package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces the engine's lock discipline flow-sensitively, on
// every control-flow path of every function (if/for/range/switch/select,
// early returns, defers):
//
//   - every read or write of a field annotated `// guarded-by: mu` must
//     happen at a program point where the guard is held on ALL paths
//     reaching it — a Lock/RLock earlier on the path without an
//     intervening Unlock/RUnlock, or a `// permlint:held mu` annotation
//     declaring the caller-holds convention;
//   - Lock/Unlock must balance on every path: a lock still (or maybe)
//     held when the function returns, an Unlock of a lock not held on the
//     path, and a write-Lock taken while already held (self-deadlock) are
//     findings. Deferred unlocks are credited on every exit path;
//     panic-terminated paths are exempt from balance (deferred releases
//     still run during unwinding).
//
// Function literals run at call time, not where they appear, so their
// bodies are analyzed as separate flow problems. A closure inherits the
// guards its enclosing function acquires anywhere (the pre-flow-sensitive
// rule): the engine's sink closures execute synchronously under the locks
// of their creator, and claiming more precision than the analysis has
// would misreport them.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated `// guarded-by: mu` must only be accessed while the " +
		"guard is held on every path, and Lock/Unlock must balance on every path",
	Run: runLockCheck,
}

// guardInfo is one annotated field: the guard's field name within the same
// struct.
type guardInfo struct {
	guard string
}

// lock hold states, per acquisition kind. The lattice is
// notHeld < maybeHeld < held under join(x, x) = x, join(_, _) = maybeHeld.
const (
	notHeld   uint8 = 0
	maybeHeld uint8 = 1
	held      uint8 = 2
)

func joinHeld(a, b uint8) uint8 {
	if a == b {
		return a
	}
	return maybeHeld
}

// lockVal is the abstract state of one lock identity at a program point.
type lockVal struct {
	w, r uint8 // write / read hold state
	// wPos and rPos are representative acquisition sites for reporting.
	wPos, rPos token.Pos
	// initial marks holds inherited from the analysis context (a
	// permlint:held annotation or an enclosing closure's lexical locks):
	// exempt from balance checks, since this function did not acquire them.
	initial bool
}

func (v lockVal) zero() bool { return v.w == notHeld && v.r == notHeld && !v.initial }

// lockFact maps lock identities to hold states. Facts are treated as
// immutable; transfer clones before writing.
type lockFact map[lockID]lockVal

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinLockFacts(a, b lockFact) lockFact {
	out := make(lockFact, len(a))
	for k, av := range a {
		bv := b[k] // zero value = not held on the other path
		merged := lockVal{
			w:       joinHeld(av.w, bv.w),
			r:       joinHeld(av.r, bv.r),
			wPos:    av.wPos,
			rPos:    av.rPos,
			initial: av.initial || bv.initial,
		}
		if merged.wPos == token.NoPos {
			merged.wPos = bv.wPos
		}
		if merged.rPos == token.NoPos {
			merged.rPos = bv.rPos
		}
		if !merged.zero() {
			out[k] = merged
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; ok {
			continue
		}
		merged := lockVal{w: joinHeld(notHeld, bv.w), r: joinHeld(notHeld, bv.r), wPos: bv.wPos, rPos: bv.rPos, initial: bv.initial}
		if !merged.zero() {
			out[k] = merged
		}
	}
	return out
}

func equalLockFacts(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.w != bv.w || av.r != bv.r || av.initial != bv.initial {
			return false
		}
	}
	return true
}

// applyLockOp is the per-call transfer function. report is nil during the
// fixpoint solve and non-nil during the final reporting pass.
func applyLockOp(fact lockFact, call *ast.CallExpr, id lockID, op lockOp, report func(pos token.Pos, format string, args ...any)) lockFact {
	out := fact.clone()
	v := out[id]
	switch op {
	case opLock:
		if report != nil && v.w == held && !v.initial {
			report(call.Pos(), "%s.Lock() while the write lock is already held (self-deadlock; acquired at %s)", id, "earlier on this path")
		}
		v.w, v.wPos, v.initial = held, call.Pos(), false
	case opRLock:
		v.r, v.rPos = held, call.Pos()
		v.initial = false
	case opUnlock:
		if report != nil && v.w == notHeld && v.r == notHeld && !v.initial {
			report(call.Pos(), "%s.Unlock() without holding the lock on this path", id)
		}
		v.w = notHeld
	case opRUnlock:
		if report != nil && v.w == notHeld && v.r == notHeld && !v.initial {
			report(call.Pos(), "%s.RUnlock() without holding the read lock on this path", id)
		}
		v.r = notHeld
	}
	if v.zero() {
		delete(out, id)
	} else {
		out[id] = v
	}
	return out
}

func runLockCheck(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockChecker{
				pass:    pass,
				guarded: guarded,
				held:    heldGuards(fd),
				lexical: lexicalLocks(pass, fd),
				visited: map[*ast.FuncLit]bool{},
			}
			lc.checkFunc(fd, fd.Body, lc.initialFact(fd))
			// Closures the block walk did not reach (inside dead code)
			// still get the lexical-fallback analysis.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !lc.visited[lit] {
					lc.checkFunc(lit, lit.Body, lc.closureFact())
				}
				return true
			})
		}
	}
	return nil
}

type lockChecker struct {
	pass    *Pass
	guarded map[*types.Var]guardInfo
	// held is the guard-name set from the function's permlint:held
	// annotation.
	held map[string]bool
	// lexical is every lock identity the top-level function acquires
	// anywhere in its body, closures included — the closure fallback.
	lexical map[lockID]bool
	visited map[*ast.FuncLit]bool
}

// initialFact seeds a function's entry fact from its permlint:held
// annotation: a method annotated `held mu` starts with (recvType, mu) held.
func (lc *lockChecker) initialFact(fd *ast.FuncDecl) lockFact {
	fact := lockFact{}
	if len(lc.held) == 0 || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fact
	}
	recvT := lc.pass.Info.Types[fd.Recv.List[0].Type].Type
	if recvT == nil {
		return fact
	}
	for g := range lc.held {
		fact[lockID{recv: derefNamed(recvT), guard: g}] = lockVal{w: held, initial: true}
	}
	return fact
}

// closureFact seeds a closure's entry fact with every lock its enclosing
// function acquires anywhere, as initial (balance-exempt) holds.
func (lc *lockChecker) closureFact() lockFact {
	fact := lockFact{}
	for id := range lc.lexical {
		fact[id] = lockVal{w: held, initial: true}
	}
	return fact
}

// checkFunc runs the flow problem over one function or closure body and
// reports violations.
func (lc *lockChecker) checkFunc(fn ast.Node, body *ast.BlockStmt, init lockFact) {
	pass := lc.pass
	cfg := pass.Cache.FuncCFG(fn, pass.Info)
	flow := &Flow[lockFact]{
		CFG:  cfg,
		Init: init,
		Transfer: func(n ast.Node, fact lockFact) lockFact {
			if n = cfgEvalNode(n); n == nil {
				return fact
			}
			forEachLockCall(pass.Info, n, func(call *ast.CallExpr, id lockID, op lockOp) {
				fact = applyLockOp(fact, call, id, op, nil)
			})
			return fact
		},
		Join:  joinLockFacts,
		Equal: equalLockFacts,
	}
	in := flow.Solve()

	// Reporting pass: replay each reached block from its solved entry
	// fact, checking guarded accesses and lock-op sanity in order.
	for _, blk := range cfg.Blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.Nodes {
			if n = cfgEvalNode(n); n == nil {
				continue
			}
			fact = lc.walkNode(n, fact)
		}
	}

	// Balance: join the facts on every ordinary (non-panic) path into
	// Exit, credit deferred releases, and report what is still held.
	var exit lockFact
	first := true
	for _, blk := range cfg.Blocks {
		fact, reached := in[blk]
		if !reached || blk.PanicExit {
			continue
		}
		toExit := false
		for _, s := range blk.Succs {
			if s == cfg.Exit {
				toExit = true
			}
		}
		if !toExit {
			continue
		}
		for _, n := range blk.Nodes {
			if n = cfgEvalNode(n); n == nil {
				continue
			}
			forEachLockCall(pass.Info, n, func(call *ast.CallExpr, id lockID, op lockOp) {
				fact = applyLockOp(fact, call, id, op, nil)
			})
		}
		if first {
			exit, first = fact, false
		} else {
			exit = joinLockFacts(exit, fact)
		}
	}
	for _, d := range cfg.Defers {
		deferredLockCalls(pass.Info, d, func(call *ast.CallExpr, id lockID, op lockOp) {
			exit = applyLockOp(exit, call, id, op, nil)
		})
	}
	for id, v := range exit {
		if v.initial {
			continue
		}
		if v.w == held {
			pass.Reportf(v.wPos, "%s.Lock() is not released on any path to return: add a matching Unlock or defer", id)
		} else if v.w == maybeHeld {
			pass.Reportf(v.wPos, "%s.Lock() is not released on some path to return", id)
		}
		if v.r == held {
			pass.Reportf(v.rPos, "%s.RLock() is not released on any path to return: add a matching RUnlock or defer", id)
		} else if v.r == maybeHeld {
			pass.Reportf(v.rPos, "%s.RLock() is not released on some path to return", id)
		}
	}
}

// walkNode replays one statement: guarded-field accesses are checked
// against the current fact, lock calls update it, and nested function
// literals recurse as fresh flow problems.
func (lc *lockChecker) walkNode(n ast.Node, fact lockFact) lockFact {
	pass := lc.pass
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !lc.visited[n] {
				lc.visited[n] = true
				lc.checkFunc(n, n.Body, lc.closureFact())
			}
			return false
		case *ast.DeferStmt, *ast.GoStmt:
			// The call runs elsewhere; its closure (if any) is picked up
			// by the FuncLit case via the explicit walk below.
			if d, ok := n.(*ast.DeferStmt); ok {
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					walkLit(lc, lit)
				}
			}
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					walkLit(lc, lit)
				}
			}
			return false
		case *ast.CallExpr:
			if id, op, ok := classifyLockCall(pass.Info, n); ok {
				fact = applyLockOp(fact, n, id, op, pass.Reportf)
			}
		case *ast.SelectorExpr:
			lc.checkAccess(n, fact, stack)
		}
		return true
	}
	inspectWithStack(n, func(n ast.Node, st []ast.Node) bool {
		stack = st
		return walk(n)
	})
	return fact
}

func walkLit(lc *lockChecker, lit *ast.FuncLit) {
	if !lc.visited[lit] {
		lc.visited[lit] = true
		lc.checkFunc(lit, lit.Body, lc.closureFact())
	}
}

// checkAccess validates one guarded-field access against the current fact.
func (lc *lockChecker) checkAccess(sel *ast.SelectorExpr, fact lockFact, stack []ast.Node) {
	pass := lc.pass
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return
	}
	info, ok := lc.guarded[obj]
	if !ok {
		return
	}
	if lc.held[info.guard] {
		return
	}
	if insideCompositeLit(stack) {
		return
	}
	baseType := pass.Info.Types[sel.X].Type
	if baseType == nil {
		return
	}
	id := lockID{recv: derefNamed(baseType), guard: info.guard}
	v := fact[id]
	switch {
	case v.w == held || v.r == held:
		return
	case v.w == maybeHeld || v.r == maybeHeld:
		pass.Reportf(sel.Sel.Pos(), "access to %q (guarded-by: %s) holds %s on some paths only: hoist the Lock above the branch or annotate `// permlint:held %s`",
			obj.Name(), info.guard, info.guard, info.guard)
	default:
		pass.Reportf(sel.Sel.Pos(), "access to %q (guarded-by: %s) without holding %s: add %s.Lock()/RLock() or annotate the function `// permlint:held %s`",
			obj.Name(), info.guard, info.guard, info.guard, info.guard)
	}
}

// collectGuardedFields maps field objects to their guard annotations. The
// annotation may be the field's doc comment or its trailing line comment:
//
//	views map[string]*ViewDef // guarded-by: mu
func collectGuardedFields(pass *Pass) map[*types.Var]guardInfo {
	out := map[*types.Var]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := ""
				if g, ok := commentDirective(field.Doc, "guarded-by"); ok {
					guard = g
				} else if g, ok := commentDirective(field.Comment, "guarded-by"); ok {
					guard = g
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[obj] = guardInfo{guard: guard}
					}
				}
			}
			return true
		})
	}
	return out
}

// heldGuards returns the guard names a function's doc comment declares as
// held by the caller (`// permlint:held mu`).
func heldGuards(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if v, ok := commentDirective(fd.Doc, "permlint:held"); ok {
		for _, g := range strings.Fields(v) {
			out[g] = true
		}
	}
	return out
}

// lexicalLocks collects every lock identity acquired anywhere in the
// function body, closures and defers included — the flow-insensitive
// fallback closures inherit.
func lexicalLocks(pass *Pass, fd *ast.FuncDecl) map[lockID]bool {
	out := map[lockID]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, op, ok := classifyLockCall(pass.Info, call); ok && op.acquires() {
			out[id] = true
		}
		return true
	})
	return out
}

// insideCompositeLit reports whether the node stack passes through a
// composite literal (value initialization).
func insideCompositeLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.CompositeLit); ok {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheck enforces `// guarded-by: mu` field annotations: every read or
// write of an annotated struct field must happen in a function that
// demonstrably holds the guard. The check is lexical and flow-insensitive —
// deliberately so: it catches the unguarded access -race only finds under
// the right interleaving, at the cost of requiring honest annotations.
//
// A function "holds" a guard when either
//
//   - its body (including nested function literals) calls Lock or RLock on
//     the same-named mutex field of a value of the same receiver type as
//     the access, or
//   - its doc comment carries `// permlint:held mu`, documenting the
//     caller-holds-the-lock convention (the *Locked helper idiom).
//
// Accesses inside composite literals are initialization of a value not yet
// shared and are exempt.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated `// guarded-by: mu` must only be accessed while the " +
		"guard is held (a Lock/RLock call in the function, or `// permlint:held mu`)",
	Run: runLockCheck,
}

// guardInfo is one annotated field: the guard's field name within the same
// struct.
type guardInfo struct {
	guard string
}

func runLockCheck(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := heldGuards(fd)
			locked := lockedGuards(pass, fd)
			checkGuardedAccesses(pass, fd, guarded, held, locked)
		}
	}
	return nil
}

// collectGuardedFields maps field objects to their guard annotations. The
// annotation may be the field's doc comment or its trailing line comment:
//
//	views map[string]*ViewDef // guarded-by: mu
func collectGuardedFields(pass *Pass) map[*types.Var]guardInfo {
	out := map[*types.Var]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := ""
				if g, ok := commentDirective(field.Doc, "guarded-by"); ok {
					guard = g
				} else if g, ok := commentDirective(field.Comment, "guarded-by"); ok {
					guard = g
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[obj] = guardInfo{guard: guard}
					}
				}
			}
			return true
		})
	}
	return out
}

// heldGuards returns the guard names a function's doc comment declares as
// held by the caller (`// permlint:held mu`).
func heldGuards(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if v, ok := commentDirective(fd.Doc, "permlint:held"); ok {
		for _, g := range strings.Fields(v) {
			out[g] = true
		}
	}
	return out
}

// lockKey is one acquired lock: the receiver type owning the mutex field
// and the mutex field's name.
type lockKey struct {
	recv  types.Type
	guard string
}

// lockedGuards collects every `x.mu.Lock()` / `x.mu.RLock()` call in the
// function body: evidence that the function acquires the guard "mu" of a
// value of x's type.
func lockedGuards(pass *Pass, fd *ast.FuncDecl) map[lockKey]bool {
	out := map[lockKey]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		// sel.X should itself be a selector: <base>.<guardField>
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		baseType := pass.Info.Types[inner.X].Type
		if baseType == nil {
			return true
		}
		out[lockKey{recv: derefNamed(baseType), guard: inner.Sel.Name}] = true
		return true
	})
	return out
}

// checkGuardedAccesses flags guarded-field accesses that neither hold the
// lock nor carry a held annotation.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardInfo, held map[string]bool, locked map[lockKey]bool) {
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !obj.IsField() {
			return true
		}
		info, ok := guarded[obj]
		if !ok {
			return true
		}
		if held[info.guard] {
			return true
		}
		baseType := pass.Info.Types[sel.X].Type
		if baseType != nil && locked[lockKey{recv: derefNamed(baseType), guard: info.guard}] {
			return true
		}
		if insideCompositeLit(stack) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "access to %q (guarded-by: %s) without holding %s: add %s.Lock()/RLock() or annotate the function `// permlint:held %s`",
			obj.Name(), info.guard, info.guard, info.guard, info.guard)
		return true
	})
}

// insideCompositeLit reports whether the node stack passes through a
// composite literal (value initialization).
func insideCompositeLit(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.CompositeLit); ok {
			return true
		}
	}
	return false
}

package lint

import "testing"

func TestPurity(t *testing.T) {
	RunFixture(t, Purity, fixturePath("purity"))
}

func TestPurityInv(t *testing.T) {
	RunFixture(t, PurityInv, fixturePath("purityinv"))
}

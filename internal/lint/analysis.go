package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// An Analyzer checks one invariant over a type-checked package. The shape
// mirrors golang.org/x/tools/go/analysis so the suite can migrate to the
// real framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //permlint:ignore comments.
	Name string
	// Doc is the one-paragraph description the multichecker prints.
	Doc string
	// Run reports the analyzer's findings for one package via pass.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violated invariant.
	Message string
	// Info marks an advisory finding (the hotalloc inventory): printed, but
	// not counted against the exit status unless the checker runs strict.
	Info bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one (analyzer, package) run: the package under analysis
// plus the report sink. Suppressed positions (//permlint:ignore) are
// filtered here so analyzers never deal with them.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Cache is the run-wide shared state (call graph, per-function CFGs,
	// whole-program analyzer artifacts), built once per RunAnalyzers call
	// and reused by every (analyzer, package) pass.
	Cache *RunCache

	diags   *[]Diagnostic
	ignores map[ignoreKey]bool
}

// ignoreKey identifies one suppressed (file, line, analyzer) cell; analyzer
// "" suppresses every analyzer on the line.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, false, format, args...)
}

// ReportInfof records an advisory finding at pos (see Diagnostic.Info).
func (p *Pass) ReportInfof(pos token.Pos, format string, args ...any) {
	p.report(pos, true, format, args...)
}

func (p *Pass) report(pos token.Pos, info bool, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Info:     info,
	})
}

// suppressed reports whether a //permlint:ignore comment covers the
// position: on the same line (trailing comment) or on the line above.
func (p *Pass) suppressed(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range []string{p.Analyzer.Name, ""} {
			if p.ignores[ignoreKey{file: pos.Filename, line: line, analyzer: name}] {
				return true
			}
		}
	}
	return false
}

// ignoreRE matches "permlint:ignore [analyzer [reason]]" in a comment.
var ignoreRE = regexp.MustCompile(`^//\s*permlint:ignore(?:\s+([a-z]+))?`)

// buildIgnores scans every comment of the package for suppressions.
func buildIgnores(pkg *Package) map[ignoreKey]bool {
	out := map[ignoreKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[ignoreKey{file: pos.Filename, line: pos.Line, analyzer: m[1]}] = true
			}
		}
	}
	return out
}

// A Timing records one analyzer's wall-clock cost over the whole run,
// reported by cmd/permlint -v.
type Timing struct {
	Name     string
	Duration time.Duration
}

// RunAnalyzers applies the analyzers to each package and returns the
// findings sorted by position. Standard-library packages in pkgs are
// skipped: they are loaded only as type-checking context.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(pkgs, analyzers)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers with per-analyzer wall-time. All
// analyzers share one RunCache, so the call graph and the per-function
// CFGs are built once for the run regardless of how many analyzers need
// them; each analyzer's Timing therefore charges shared-artifact
// construction to the first analyzer that demands it.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing, error) {
	var diags []Diagnostic
	cache := newRunCache(pkgs)
	ignores := map[*Package]map[ignoreKey]bool{}
	for _, pkg := range pkgs {
		if !pkg.Standard {
			ignores[pkg] = buildIgnores(pkg)
		}
	}
	var timings []Timing
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			if pkg.Standard {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Types:    pkg.Types,
				Info:     pkg.Info,
				Cache:    cache,
				diags:    &diags,
				ignores:  ignores[pkg],
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		timings = append(timings, Timing{Name: a.Name, Duration: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings, nil
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxFlow, LockCheck, LockOrder, GoroLeak, ChanLife, ErrClass, AtomicField, DeferClose, HotAlloc, ImmutCheck, Purity, PurityInv}
}

// AnalyzerByName resolves one analyzer.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// --- shared annotation and AST helpers ---

// commentDirective scans a function's doc comment for a "marker" or
// "marker value" line and returns the value ("" when the marker stands
// alone) and whether it was found.
func commentDirective(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			return strings.TrimSpace(rest), true
		}
		if rest, ok := strings.CutPrefix(text, marker+":"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// funcFor returns the innermost function declaration enclosing pos, using
// the stack maintained by inspectWithStack.
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// inspectWithStack walks the node like ast.Inspect but hands the visitor
// the current ancestor stack (excluding n itself).
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// derefNamed strips one level of pointer, returning the (possibly named)
// element type — the receiver type two accesses must share for the
// lockcheck receiver match.
func derefNamed(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isPkgFunc reports whether the call invokes the named function of the
// named package (e.g. "context", "Background"), resolving through the
// type-checker so aliases and shadowing don't fool it.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

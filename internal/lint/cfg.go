package lint

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive tier's foundation: a dependency-free
// control-flow graph over go/ast function bodies plus a forward-dataflow
// worklist solver. The shape deliberately mirrors golang.org/x/tools/go/cfg
// (Blocks of statements connected by Succs edges) so analyzers written here
// survive a migration to the real package.
//
// Statements are never split: a Block's Nodes are whole statements (plus
// condition expressions), and analyzers that need sub-statement precision
// walk a node's expression tree in evaluation (pre-)order themselves.
// Function literals nested in a body are NOT part of the enclosing CFG —
// their statements execute at call time, not in the enclosing flow — and
// must be analyzed as separate CFGs by the analyzer.

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters first. Exit is a virtual empty
	// block every terminating path (return, fall-off-the-end, panic)
	// reaches; deferred calls conceptually run on the Exit edge.
	Entry, Exit *Block
	// Blocks lists every block, Entry first, Exit last.
	Blocks []*Block
	// Defers are the function's defer statements in lexical order. The CFG
	// does not model which defers are pending on which path; analyzers
	// treat every recorded defer as running at Exit (a sound
	// over-approximation for the lock-release and close patterns checked
	// here, where defers are unconditional first-statement idioms).
	Defers []*ast.DeferStmt
}

// cfgEvalNode maps a block node to the part actually evaluated at that
// program point. A RangeStmt head evaluates only its range expression (the
// body statements occupy their own blocks); a SelectStmt head evaluates
// nothing an analyzer should double-count (the comm statements live in the
// clause blocks). Walkers that interpret CFG nodes must go through this or
// they will apply clause/body effects twice.
func cfgEvalNode(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.RangeStmt:
		return n.X
	case *ast.SelectStmt:
		return nil
	}
	return n
}

// A Block is a maximal straight-line statement sequence.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// PanicExit marks a block that reaches Exit only by panicking or
	// os.Exit-style termination (no ordinary return). Balance checks skip
	// leak reports on such paths: the process or goroutine is going down
	// anyway and deferred releases still run on panic.
	PanicExit bool
}

func (b *Block) addSucc(s *Block) {
	if s == nil {
		return
	}
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// BuildCFG constructs the control-flow graph of body. The info map is used
// only to recognize terminating calls (panic, os.Exit); pass nil to treat
// every call as returning.
func BuildCFG(body *ast.BlockStmt, isTerminatingCall func(*ast.CallExpr) bool) *CFG {
	b := &cfgBuilder{
		cfg:         &CFG{},
		terminating: isTerminatingCall,
		labels:      map[string]*labelInfo{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.addSucc(b.cfg.Exit) // fall off the end
	}
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil {
			g.from.addSucc(li.target)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// labelInfo records the blocks a label's goto/break/continue resolve to.
type labelInfo struct {
	target     *Block // goto target: the labeled statement's block
	breakTo    *Block // filled when the labeled statement is a loop/switch/select
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg         *CFG
	cur         *Block // nil only transiently; after a terminator a fresh unreachable block is started lazily
	terminating func(*ast.CallExpr) bool

	// break/continue target stacks for unlabeled branches.
	breaks    []*Block
	continues []*Block

	labels map[string]*labelInfo
	gotos  []pendingGoto

	// pendingLabel is set while building the statement a label names, so
	// the loop/switch builders can register their break/continue targets.
	pendingLabel *labelInfo

	// fallthroughTo is the next case clause's block while building a
	// switch case body.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startUnreachable begins a fresh block with no predecessors for the code
// after a terminator (return/break/goto); it stays unreached unless a label
// lands on it.
func (b *cfgBuilder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isTerminatingExpr reports whether the statement's call never returns.
func (b *cfgBuilder) isTerminatingExpr(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.terminating != nil && b.terminating(call)
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.cur.addSucc(lb)
		b.cur = lb
		li := &labelInfo{target: lb}
		b.labels[s.Label.Name] = li
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur.addSucc(b.cfg.Exit)
		b.startUnreachable()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// EmptyStmt: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
		if b.isTerminatingExpr(s) {
			b.cur.PanicExit = true
			b.cur.addSucc(b.cfg.Exit)
			b.startUnreachable()
		}
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.breakTo
			}
		} else if len(b.breaks) > 0 {
			target = b.breaks[len(b.breaks)-1]
		}
		b.cur.addSucc(target)
		b.startUnreachable()
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.continueTo
			}
		} else if len(b.continues) > 0 {
			target = b.continues[len(b.continues)-1]
		}
		b.cur.addSucc(target)
		b.startUnreachable()
	case token.GOTO:
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		b.startUnreachable()
	case token.FALLTHROUGH:
		b.cur.addSucc(b.fallthroughTo)
		b.startUnreachable()
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	cond.addSucc(then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.cur.addSucc(after)
	if s.Else != nil {
		els := b.newBlock()
		cond.addSucc(els)
		b.cur = els
		b.stmt(s.Else)
		b.cur.addSucc(after)
	} else {
		cond.addSucc(after)
	}
	b.cur = after
}

// isTrueConst reports a for-condition that can never be false (absent or
// the literal true), making the loop exit only by break/return/goto.
func isTrueConst(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "true"
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = nil
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.cur.addSucc(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	after := b.newBlock()
	if !isTrueConst(s.Cond) {
		head.addSucc(after)
	}
	cont := head
	if s.Post != nil {
		cont = b.newBlock()
		cont.Nodes = append(cont.Nodes, s.Post)
		cont.addSucc(head)
	}
	if label != nil {
		label.breakTo, label.continueTo = after, cont
	}
	body := b.newBlock()
	head.addSucc(body)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	b.cur.addSucc(cont)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = nil
	head := b.newBlock()
	// The RangeStmt node itself sits in the head block so per-iteration
	// transfer functions (key/value rebinding, channel receives) see it.
	head.Nodes = append(head.Nodes, s)
	b.cur.addSucc(head)
	after := b.newBlock()
	head.addSucc(after)
	if label != nil {
		label.breakTo, label.continueTo = after, head
	}
	body := b.newBlock()
	head.addSucc(body)
	b.breaks = append(b.breaks, after)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.cur.addSucc(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

// switchBody builds the clauses of a switch or type switch.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = nil
	head := b.cur
	after := b.newBlock()
	if label != nil {
		label.breakTo = after
	}
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		head.addSucc(blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(after)
	}
	b.breaks = append(b.breaks, after)
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.cur.addSucc(after)
	}
	b.fallthroughTo = nil
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = nil
	head := b.cur
	// The SelectStmt node anchors the whole statement for analyzers that
	// reason about blocking (goroleak's bounded-exit test).
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	if label != nil {
		label.breakTo = after
	}
	b.breaks = append(b.breaks, after)
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.addSucc(blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.cur.addSucc(after)
	}
	// A select with no default blocks until an arm fires; every arm's edge
	// already exists, so head has no direct edge to after. With zero arms
	// (select{}) the statement blocks forever: no successor at all.
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// --- reachability ---

// ExitReachable reports whether any non-panic path from Entry reaches Exit:
// whether the function can terminate normally.
func (g *CFG) ExitReachable() bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if s == g.Exit {
				if !b.PanicExit {
					return true
				}
				continue
			}
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// --- forward dataflow ---

// A Flow is a forward dataflow problem over a CFG: facts of type F flow
// along edges, merged at joins with Join, transformed per node by Transfer.
// The framework iterates to fixpoint with a worklist; termination requires
// Join/Transfer to be monotone over a finite-height lattice (every fact
// used here is a small finite map).
type Flow[F any] struct {
	CFG *CFG
	// Init is the fact at Entry.
	Init F
	// Transfer produces the fact after node n given the fact before it.
	// It must not mutate its input.
	Transfer func(n ast.Node, fact F) F
	// Join merges two incoming facts at a block with several predecessors.
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
}

// Solve returns the fact at entry to each reached block. Unreached blocks
// (dead code) are absent from the map.
func (fl *Flow[F]) Solve() map[*Block]F {
	in := map[*Block]F{fl.CFG.Entry: fl.Init}
	work := []*Block{fl.CFG.Entry}
	inWork := map[*Block]bool{fl.CFG.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		fact := in[b]
		for _, n := range b.Nodes {
			fact = fl.Transfer(n, fact)
		}
		for _, s := range b.Succs {
			have, ok := in[s]
			next := fact
			if ok {
				next = fl.Join(have, fact)
				if fl.Equal(have, next) {
					continue
				}
			}
			in[s] = next
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

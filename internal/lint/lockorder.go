package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder derives a whole-program lock-acquisition-order graph and
// reports every cycle as a potential deadlock. An edge A -> B means some
// function acquires B (directly, or transitively through a statically
// resolvable call chain) at a program point where the flow analysis proves
// A is held. Two goroutines taking {A then B} and {B then A} deadlock under
// the right interleaving without either path ever being wrong in isolation
// — exactly the class of bug -race cannot see until it happens.
//
// Lock identities conflate instances (every *Session shares "the"
// Session.mu, see locks.go), acquisition sites inside go statements are
// excluded (a spawned goroutine does not hold its creator's locks ...
// acquisition order with its creator is a happens-before question, not a
// nesting question), and calls through function values or interface
// methods do not propagate (the call graph is the static approximation in
// callgraph.go). `// permlint:held mu` annotations seed a method's held
// set the same way lockcheck uses them.
//
// A self-edge A -> A (re-acquiring a lock already held, directly or via a
// callee) is reported unless both sides are read locks. cmd/permlint
// -graph emits the full graph in Graphviz DOT form.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "the whole-program lock-acquisition-order graph must be acyclic " +
		"(a cycle is a potential deadlock; -graph emits it as DOT)",
	Run: runLockOrder,
}

const (
	kindWrite uint8 = 1 << iota
	kindRead
)

// lockOrderEdge is one acquisition-order observation.
type lockOrderEdge struct {
	from, to lockID
	// fromKind/toKind are the acquisition kinds (write/read bitmask).
	fromKind, toKind uint8
	// pos is where `to` is acquired (or the call site that leads to it);
	// via names the callee for transitive edges.
	pos     token.Pos
	via     string
	pkgPath string
}

// lockOrderFinding is one precomputed diagnostic, attributed to a package
// so the per-package pass that owns the position reports it exactly once.
type lockOrderFinding struct {
	pos     token.Pos
	pkgPath string
	msg     string
}

type lockOrderGraph struct {
	edges  []*lockOrderEdge
	byPair map[[2]lockID]*lockOrderEdge

	findings []lockOrderFinding
}

func runLockOrder(pass *Pass) error {
	g := pass.Cache.LockOrderGraph()
	for _, f := range g.findings {
		if f.pkgPath == pass.Pkg.PkgPath {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// LockOrderGraph returns the run's acquisition-order graph, building it on
// first use.
func (c *RunCache) LockOrderGraph() *lockOrderGraph {
	if c.lockGraph == nil {
		c.lockGraph = buildLockOrderGraph(c)
	}
	return c.lockGraph
}

func buildLockOrderGraph(cache *RunCache) *lockOrderGraph {
	cg := cache.CallGraph()
	funcs := cg.SortedFuncs()

	// 1. Direct acquisitions per function: every Lock/RLock anywhere in
	// the body — closures and defers included, go statements excluded.
	direct := map[*types.Func]map[lockID]uint8{}
	for _, fi := range funcs {
		acq := map[lockID]uint8{}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if id, op, ok := classifyLockCall(fi.Pkg.Info, n); ok && op.acquires() {
					if op == opLock {
						acq[id] |= kindWrite
					} else {
						acq[id] |= kindRead
					}
				}
			}
			return true
		}
		ast.Inspect(fi.Decl.Body, walk)
		direct[fi.Fn] = acq
	}

	// 2. Transitive closure over the call graph: mayAcquire(f) = direct(f)
	// ∪ mayAcquire(callees). Plain Kleene iteration; the graph is small.
	may := map[*types.Func]map[lockID]uint8{}
	for fn, acq := range direct {
		cp := map[lockID]uint8{}
		for id, k := range acq {
			cp[id] = k
		}
		may[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			mine := may[fi.Fn]
			for _, callee := range fi.Callees {
				for id, k := range may[callee] {
					if mine[id]&k != k {
						mine[id] |= k
						changed = true
					}
				}
			}
		}
	}

	g := &lockOrderGraph{byPair: map[[2]lockID]*lockOrderEdge{}}

	// 3. Flow-sensitive edge extraction: replay each function with the
	// lockcheck fact lattice; at every acquisition or resolvable call made
	// while a lock is definitely held, add held -> acquired edges.
	for _, fi := range funcs {
		g.extractEdges(cache, fi, may)
	}

	// 4. Findings: self-edges and cycles.
	g.computeFindings(cache)
	return g
}

func (g *lockOrderGraph) addEdge(e *lockOrderEdge) {
	key := [2]lockID{e.from, e.to}
	if have, ok := g.byPair[key]; ok {
		have.fromKind |= e.fromKind
		have.toKind |= e.toKind
		return
	}
	g.byPair[key] = e
	g.edges = append(g.edges, e)
}

// heldInitFact seeds the flow from a permlint:held annotation, exactly as
// lockcheck does.
func heldInitFact(fi *FuncInfo) lockFact {
	fact := lockFact{}
	heldSet := heldGuards(fi.Decl)
	if len(heldSet) == 0 || fi.Decl.Recv == nil || len(fi.Decl.Recv.List) == 0 {
		return fact
	}
	recvT := fi.Pkg.Info.Types[fi.Decl.Recv.List[0].Type].Type
	if recvT == nil {
		return fact
	}
	for gname := range heldSet {
		fact[lockID{recv: derefNamed(recvT), guard: gname}] = lockVal{w: held, initial: true}
	}
	return fact
}

func (g *lockOrderGraph) extractEdges(cache *RunCache, fi *FuncInfo, may map[*types.Func]map[lockID]uint8) {
	info := fi.Pkg.Info
	cfg := cache.FuncCFG(fi.Decl, info)
	flow := &Flow[lockFact]{
		CFG:  cfg,
		Init: heldInitFact(fi),
		Transfer: func(n ast.Node, fact lockFact) lockFact {
			forEachLockCall(info, n, func(call *ast.CallExpr, id lockID, op lockOp) {
				fact = applyLockOp(fact, call, id, op, nil)
			})
			return fact
		},
		Join:  joinLockFacts,
		Equal: equalLockFacts,
	}
	in := flow.Solve()

	// heldIDs lists the locks definitely held in fact, with kinds.
	heldIDs := func(fact lockFact) map[lockID]uint8 {
		out := map[lockID]uint8{}
		for id, v := range fact {
			var k uint8
			if v.w == held {
				k |= kindWrite
			}
			if v.r == held {
				k |= kindRead
			}
			if k != 0 {
				out[id] = k
			}
		}
		return out
	}

	for _, blk := range cfg.Blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.Nodes {
			if n = cfgEvalNode(n); n == nil {
				continue
			}
			ast.Inspect(n, func(sub ast.Node) bool {
				switch sub := sub.(type) {
				case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					if id, op, ok := classifyLockCall(info, sub); ok {
						if op.acquires() {
							k := kindRead
							if op == opLock {
								k = kindWrite
							}
							for h, hk := range heldIDs(fact) {
								g.addEdge(&lockOrderEdge{
									from: h, to: id,
									fromKind: hk, toKind: k,
									pos: sub.Pos(), pkgPath: fi.Pkg.PkgPath,
								})
							}
						}
						fact = applyLockOp(fact, sub, id, op, nil)
						return true
					}
					callee := calleeOf(info, sub)
					if callee == nil {
						return true
					}
					acq := may[callee]
					if len(acq) == 0 {
						return true
					}
					for h, hk := range heldIDs(fact) {
						for id, k := range acq {
							g.addEdge(&lockOrderEdge{
								from: h, to: id,
								fromKind: hk, toKind: k,
								pos: sub.Pos(), via: callee.Name(), pkgPath: fi.Pkg.PkgPath,
							})
						}
					}
				}
				return true
			})
		}
	}
}

func (g *lockOrderGraph) computeFindings(cache *RunCache) {
	fset := sharedFset(cache)

	site := func(e *lockOrderEdge) string {
		p := fset.Position(e.pos)
		s := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		if e.via != "" {
			s += " via " + e.via
		}
		return s
	}

	// Self-edges: re-acquisition while held. Read-read is tolerated
	// (RLock is shareable; the writer-starvation hazard is not a cycle).
	for _, e := range g.edges {
		if e.from != e.to {
			continue
		}
		if e.fromKind == kindRead && e.toKind == kindRead {
			continue
		}
		g.findings = append(g.findings, lockOrderFinding{
			pos:     e.pos,
			pkgPath: e.pkgPath,
			msg: fmt.Sprintf("potential self-deadlock: %s is re-acquired while already held (%s)",
				e.from, site(e)),
		})
	}

	// Cycles: strongly connected components of size >= 2.
	for _, scc := range g.sccs() {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[lockID]bool{}
		for _, id := range scc {
			inSCC[id] = true
		}
		var cycleEdges []*lockOrderEdge
		for _, e := range g.edges {
			if e.from != e.to && inSCC[e.from] && inSCC[e.to] {
				cycleEdges = append(cycleEdges, e)
			}
		}
		sort.Slice(cycleEdges, func(i, j int) bool {
			if cycleEdges[i].from.String() != cycleEdges[j].from.String() {
				return cycleEdges[i].from.String() < cycleEdges[j].from.String()
			}
			return cycleEdges[i].to.String() < cycleEdges[j].to.String()
		})
		parts := make([]string, len(cycleEdges))
		for i, e := range cycleEdges {
			parts[i] = fmt.Sprintf("%s -> %s (%s)", e.from, e.to, site(e))
		}
		g.findings = append(g.findings, lockOrderFinding{
			pos:     cycleEdges[0].pos,
			pkgPath: cycleEdges[0].pkgPath,
			msg: "potential deadlock: lock-acquisition-order cycle: " +
				strings.Join(parts, ", ") + "; acquire these locks in one global order",
		})
	}
}

// sharedFset digs the run's FileSet out of any analyzed package.
func sharedFset(cache *RunCache) *token.FileSet {
	for _, p := range cache.analyzedPackages() {
		return p.Fset
	}
	return token.NewFileSet()
}

// sccs returns the strongly connected components of the graph (Tarjan).
func (g *lockOrderGraph) sccs() [][]lockID {
	adj := map[lockID][]lockID{}
	nodes := map[lockID]bool{}
	for _, e := range g.edges {
		nodes[e.from], nodes[e.to] = true, true
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	sorted := make([]lockID, 0, len(nodes))
	for id := range nodes {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })

	index := map[lockID]int{}
	low := map[lockID]int{}
	onStack := map[lockID]bool{}
	var stack []lockID
	var out [][]lockID
	next := 0
	var strongconnect func(v lockID)
	strongconnect = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// LockOrderDOT renders the acquisition-order graph of the packages as a
// Graphviz DOT digraph, edges labeled with an observation site. Nodes in a
// cycle are highlighted.
func LockOrderDOT(pkgs []*Package) string {
	cache := newRunCache(pkgs)
	g := cache.LockOrderGraph()
	fset := sharedFset(cache)

	cyclic := map[lockID]bool{}
	for _, scc := range g.sccs() {
		if len(scc) >= 2 {
			for _, id := range scc {
				cyclic[id] = true
			}
		}
	}
	for _, e := range g.edges {
		if e.from == e.to {
			cyclic[e.from] = true
		}
	}

	nodes := map[lockID]bool{}
	for _, e := range g.edges {
		nodes[e.from], nodes[e.to] = true, true
	}
	names := make([]string, 0, len(nodes))
	byName := map[string]lockID{}
	for id := range nodes {
		names = append(names, id.String())
		byName[id.String()] = id
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, name := range names {
		attr := ""
		if cyclic[byName[name]] {
			attr = " [color=red, penwidth=2]"
		}
		fmt.Fprintf(&b, "\t%q%s;\n", name, attr)
	}
	edges := make([]*lockOrderEdge, len(g.edges))
	copy(edges, g.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.String() != edges[j].from.String() {
			return edges[i].from.String() < edges[j].from.String()
		}
		return edges[i].to.String() < edges[j].to.String()
	})
	for _, e := range edges {
		p := fset.Position(e.pos)
		label := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		if e.via != "" {
			label += "\\nvia " + e.via
		}
		// Not %q: the label embeds the DOT line-break escape \n, which %q
		// would double-escape into a literal backslash-n.
		fmt.Fprintf(&b, "\t%q -> %q [label=\"%s\"];\n", e.from.String(), e.to.String(), label)
	}
	b.WriteString("}\n")
	return b.String()
}

package lint

import "testing"

func TestAtomicField(t *testing.T) {
	RunFixture(t, AtomicField, fixturePath("atomicfield"))
}

package lint

import (
	"go/ast"
	"go/types"
)

// GoroLeak requires every `go` statement's goroutine to have a bounded
// exit: the worker must be able to terminate once its work or its owner is
// done, or it leaks — holding its stack, its captured references and
// (for the engine's worker pools) a semaphore token, invisible to -race
// and visible to runtime.NumGoroutine only after the damage is done.
//
// A goroutine body passes when its CFG can reach the function exit AND
// every potentially unbounded blocking construct is externally signalable:
//
//   - a `for` / `for true` loop must be able to break or return (exit
//     reachability covers this);
//   - `for range ch` requires ch to have a close site somewhere in the
//     analyzed packages (the producer hangs up, the worker drains out);
//   - a bare `<-ch` receive outside a select requires ch to have a send
//     or close site in the analyzed packages, or to be a ctx.Done()
//     channel (cancellation is a bounded exit by definition).
//
// A body that selects on ctx.Done() (or any close-tracked channel) is
// considered signalable throughout: its other channel arms are that
// select's business, not a leak.
//
// Approximations: channel identity resolves through the variable or field
// object when it can (including `for _, ch := range chans` rebinding back
// to chans) and falls back to matching the channel's type against the
// close-site index; calls made by the goroutine body are not followed.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement's goroutine must have a bounded exit path " +
		"(a ctx.Done() select arm, a close-tracked channel receive, or a finite body)",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	idx := pass.Cache.CloseIndex()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoroutine(pass, idx, g)
			return true
		})
	}
	return nil
}

func checkGoroutine(pass *Pass, idx *closeIndex, g *ast.GoStmt) {
	var fn ast.Node
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		fn, body = fun, fun.Body
	default:
		callee := calleeOf(pass.Info, g.Call)
		if callee == nil {
			return
		}
		fi := pass.Cache.CallGraph().Funcs[callee]
		if fi == nil || fi.Decl.Body == nil {
			return
		}
		fn, body = fi.Decl, fi.Decl.Body
	}

	cfg := pass.Cache.FuncCFG(fn, pass.Info)
	if !cfg.ExitReachable() {
		pass.Reportf(g.Pos(), "goroutine never terminates: no path from its body reaches return; add a ctx.Done() select arm or a terminating condition")
		return
	}

	// A body that can see a cancellation signal is trusted: its loops and
	// receives are the signal's consumers.
	if bodySelectsOnSignal(pass, idx, body) {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested goroutine is its own go statement
		case *ast.RangeStmt:
			t := pass.Info.Types[n.X].Type
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Chan); !ok {
				return true
			}
			if !idx.closeTracked(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "goroutine ranges over channel %s with no close site in the analyzed packages: the worker can never drain out", exprString(n.X))
			}
		case *ast.UnaryExpr:
			// A bare blocking receive; receives that appear as a select
			// comm are skipped via the SelectStmt case below.
			if n.Op.String() != "<-" {
				return true
			}
			if isDoneChannel(pass.Info, n.X) {
				return true
			}
			if !idx.closeTracked(pass.Info, n.X) && !idx.sendTracked(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "goroutine blocks on receive from %s, which has no send or close site in the analyzed packages", exprString(n.X))
			}
		case *ast.SelectStmt:
			// Arms of a select without a Done arm are still individually
			// checked only when the select has a single arm and no
			// default (then it is just a receive in disguise).
			if len(n.Body.List) == 1 {
				if cc, ok := n.Body.List[0].(*ast.CommClause); ok && cc.Comm != nil {
					return true // fall through into the comm via Inspect
				}
			}
			return false
		}
		return true
	})
}

// bodySelectsOnSignal reports whether the body receives — anywhere, in a
// select arm or bare — from a ctx.Done() channel or a close-tracked
// channel used as a done signal.
func bodySelectsOnSignal(pass *Pass, idx *closeIndex, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			return true
		}
		if isDoneChannel(pass.Info, ue.X) {
			found = true
			return false
		}
		// A receive from a close-tracked channel counts as a signal only
		// inside a select (a bare receive from it is a drain, which the
		// close also bounds — both are fine).
		if idx.closeTracked(pass.Info, ue.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isDoneChannel recognizes `ctx.Done()` (any method named Done returning
// <-chan struct{} on a context.Context value) and values assigned from it.
func isDoneChannel(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if ok {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Done" {
			if t := info.Types[sel.X].Type; t != nil && isContextType(t) {
				return true
			}
		}
		return false
	}
	return false
}

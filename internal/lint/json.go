package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable shape of one finding, consumed by
// editor integrations and the CI annotation step. The field set is part of
// the tool's interface: additions are fine, renames are not.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Severity string `json:"severity"` // "error" or "info"
}

// WriteJSON encodes the findings as an indented JSON array (never null:
// zero findings encode as []), preserving the caller's ordering.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		severity := "error"
		if d.Info {
			severity = "info"
		}
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Severity: severity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

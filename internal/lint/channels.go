package lint

import (
	"go/ast"
	"go/types"
)

// closeIndex is a whole-run index of channel close and send sites, used by
// goroleak (is this receive bounded by a producer or a close somewhere?)
// and built once per run.
//
// Channel identity is resolved to a "root" object where possible: the
// variable or struct field the channel lives in, unwrapping parentheses,
// index expressions (chans[i] roots at chans) and range rebinding
// (`for _, ch := range chans { close(ch) }` roots ch's close at chans).
// When no root resolves, matching falls back to comparing channel element
// types — coarse, but it errs toward missing a leak rather than inventing
// one.
type closeIndex struct {
	closeObjs map[types.Object]bool
	closeElem []types.Type
	sendObjs  map[types.Object]bool
	sendElem  []types.Type

	// rangeOrigin maps a range-statement key/value variable to the
	// expression it ranges over, for root resolution.
	rangeOrigin map[types.Object]ast.Expr
	info        map[types.Object]*types.Info
}

// CloseIndex returns the run's channel close/send index, building it on
// first use.
func (c *RunCache) CloseIndex() *closeIndex {
	if c.closeSites == nil {
		c.closeSites = buildCloseIndex(c.analyzedPackages())
	}
	return c.closeSites
}

func buildCloseIndex(pkgs []*Package) *closeIndex {
	idx := &closeIndex{
		closeObjs:   map[types.Object]bool{},
		sendObjs:    map[types.Object]bool{},
		rangeOrigin: map[types.Object]ast.Expr{},
		info:        map[types.Object]*types.Info{},
	}
	// First pass: range rebindings, so close roots can chase them.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				for _, e := range []ast.Expr{rs.Key, rs.Value} {
					id, ok := e.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := pkg.Info.Defs[id]; obj != nil {
						idx.rangeOrigin[obj] = rs.X
						idx.info[obj] = pkg.Info
					}
				}
				return true
			})
		}
	}
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
						if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
							if obj := idx.rootChanObject(info, n.Args[0]); obj != nil {
								idx.closeObjs[obj] = true
							}
							if el := chanElem(info, n.Args[0]); el != nil {
								idx.closeElem = append(idx.closeElem, el)
							}
						}
					}
				case *ast.SendStmt:
					if obj := idx.rootChanObject(info, n.Chan); obj != nil {
						idx.sendObjs[obj] = true
					}
					if el := chanElem(info, n.Chan); el != nil {
						idx.sendElem = append(idx.sendElem, el)
					}
				}
				return true
			})
		}
	}
	return idx
}

// rootChanObject resolves a channel expression to its root variable or
// field object, or nil when the root is dynamic.
func (idx *closeIndex) rootChanObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return nil
			}
			// Chase range rebinding: ch in `for _, ch := range chans`
			// roots at chans.
			if origin, ok := idx.rangeOrigin[obj]; ok {
				e = origin
				info = idx.info[obj]
				continue
			}
			return obj
		case *ast.SelectorExpr:
			return info.Uses[x.Sel]
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// chanElem returns the channel element type of e, or nil.
func chanElem(info *types.Info, e ast.Expr) types.Type {
	t := info.Types[e].Type
	if t == nil {
		return nil
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return ch.Elem()
}

func (idx *closeIndex) closeTracked(info *types.Info, e ast.Expr) bool {
	if obj := idx.rootChanObject(info, e); obj != nil && idx.closeObjs[obj] {
		return true
	}
	return matchElem(idx.closeElem, chanElem(info, e))
}

func (idx *closeIndex) sendTracked(info *types.Info, e ast.Expr) bool {
	if obj := idx.rootChanObject(info, e); obj != nil && idx.sendObjs[obj] {
		return true
	}
	return matchElem(idx.sendElem, chanElem(info, e))
}

func matchElem(have []types.Type, want types.Type) bool {
	if want == nil {
		return false
	}
	for _, t := range have {
		if types.Identical(t, want) {
			return true
		}
	}
	return false
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

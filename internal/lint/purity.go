package lint

import (
	"go/ast"
	"go/types"
)

// Purity gates the engine's memoization sites: a function annotated
// `// perm:memoized` — the sublink probes whose verdicts are cached, the
// Register-time kind inference, any future plan-cache fill — must be
// read-only over its frozen inputs. Mutating its own receiver or run
// state (the memo maps themselves, counters) is fine; transitively
// mutating memory reachable from a frozen-typed parameter means the
// cached result was computed from inputs the computation itself changed,
// and every later cache hit returns a value no longer derivable from its
// key.
var Purity = &Analyzer{
	Name: "purity",
	Doc: "`// perm:memoized` functions must be read-only over their frozen " +
		"inputs (memoizing a frozen-input-mutating function poisons the cache)",
	Run: runPurity,
}

func runPurity(pass *Pass) error {
	idx := pass.Cache.StoreAlias()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, memo := commentDirective(fd.Doc, "perm:memoized"); !memo {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := idx.Sums[fn]
			if sum == nil {
				continue
			}
			params := paramVars(pass.Info, fd.Recv, fd.Type.Params)
			for i, p := range params {
				if p == nil || !frozenReachable(p.Type(), idx.Frozen) {
					continue
				}
				if _, bad := sum.MutFrozen[i]; !bad {
					continue
				}
				pass.Reportf(fd.Pos(),
					"memoized function %s mutates memory reachable from its frozen parameter %s (%s); its cached results cannot be reused",
					fn.Name(), p.Name(), p.Type())
			}
		}
	}
	return nil
}

// PurityInv is the advisory purity inventory: one classification per
// declared function on the lattice pure < read-only < mutating <
// escaping. Like the hotalloc inventory it never fails a run; the nightly
// CI job archives it so the share of pure/read-only code — the plan
// cache's candidate set — is tracked over time. The classification is
// conservative: an unresolved callee (stdlib outside the trusted
// read-only set, function values, interface methods) makes the caller
// mutating.
var PurityInv = &Analyzer{
	Name: "purityinv",
	Doc: "advisory purity classification of every function " +
		"(pure < read-only < mutating < escaping; the nightly inventory)",
	Run: runPurityInv,
}

func runPurityInv(pass *Pass) error {
	idx := pass.Cache.StoreAlias()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := idx.Sums[fn]
			if sum == nil {
				continue
			}
			pass.ReportInfof(fd.Pos(), "purity of %s: %s", fn.Name(), sum.PurityClass())
		}
	}
	return nil
}

package catalog

import (
	"strings"
	"testing"

	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

func intRelation(col string, vals ...int64) *rel.Relation {
	r := rel.New(schema.New("", col))
	for _, v := range vals {
		r.Add(rel.Tuple{types.NewInt(v)}, 1)
	}
	return r
}

func TestOverlayShadowsBase(t *testing.T) {
	base := New()
	base.Register("r", intRelation("a", 1, 2))
	o := NewOverlay(base)

	if err := o.Create("w", intRelation("a", 7), []types.Kind{types.KindInt}); err != nil {
		t.Fatal(err)
	}
	if !o.Has("w") || !o.Has("r") {
		t.Fatalf("overlay visibility: w=%v r=%v", o.Has("w"), o.Has("r"))
	}
	if base.Has("w") {
		t.Fatal("overlay CREATE leaked into the base catalog")
	}
	if got := strings.Join(o.Names(), ","); got != "r,w" {
		t.Fatalf("Names() = %s, want r,w", got)
	}
	ks, err := o.Kinds("w")
	if err != nil || len(ks) != 1 || ks[0] != types.KindInt {
		t.Fatalf("Kinds(w) = %v, %v", ks, err)
	}

	// Creating a name that the base already owns must fail.
	if err := o.Create("r", intRelation("a"), nil); err == nil {
		t.Fatal("Create over a base relation succeeded")
	}
}

func TestOverlaySnapshotIsImmutable(t *testing.T) {
	base := New()
	base.Register("r", intRelation("a", 1))
	o := NewOverlay(base)
	if err := o.Create("w", intRelation("a", 1), nil); err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()

	// Every class of later write: replace, create, drop — the snapshot
	// must keep observing the pre-write state.
	o.Replace("w", intRelation("a", 1, 2, 3), nil)
	if err := o.Create("w2", intRelation("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Drop("r"); err != nil {
		t.Fatal(err)
	}

	r, err := snap.Relation("w")
	if err != nil || r.Card() != 1 {
		t.Fatalf("snapshot w: len=%v err=%v, want the 1-row version", r.Card(), err)
	}
	if snap.Has("w2") {
		t.Fatal("snapshot sees a relation created after it was taken")
	}
	if !snap.Has("r") {
		t.Fatal("snapshot lost a base relation dropped after it was taken")
	}

	// The overlay itself sees the new state.
	r, err = o.Relation("w")
	if err != nil || r.Card() != 3 {
		t.Fatalf("overlay w: len=%v err=%v", r.Card(), err)
	}
	if o.Has("r") {
		t.Fatal("overlay still sees dropped base relation")
	}
}

func TestOverlayDropTombstonesBase(t *testing.T) {
	base := New()
	base.Register("r", intRelation("a", 1))
	o := NewOverlay(base)

	if err := o.Drop("r"); err != nil {
		t.Fatal(err)
	}
	if o.Has("r") {
		t.Fatal("dropped base relation still visible")
	}
	if !base.Has("r") {
		t.Fatal("overlay DROP mutated the base catalog")
	}
	if _, err := o.Relation("r"); err == nil {
		t.Fatal("Relation on a tombstoned name succeeded")
	}
	if err := o.Drop("r"); err == nil {
		t.Fatal("double DROP succeeded")
	}
	if err := o.Drop("nope"); err == nil {
		t.Fatal("DROP of an unknown name succeeded")
	}

	// The tombstoned name is free for reuse in the layer.
	if err := o.Create("r", intRelation("a", 9), nil); err != nil {
		t.Fatalf("re-CREATE after DROP: %v", err)
	}
	r, err := o.Relation("r")
	if err != nil || r.Card() != 1 {
		t.Fatalf("recreated r: len=%v err=%v", r.Card(), err)
	}
	// Dropping the recreated layer relation re-tombstones the base name.
	if err := o.Drop("r"); err != nil {
		t.Fatal(err)
	}
	if o.Has("r") {
		t.Fatal("base relation resurfaced after dropping its layer shadow")
	}
}

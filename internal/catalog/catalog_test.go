package catalog

import (
	"strings"
	"testing"

	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	r := rel.FromTuples(schema.New("", "a"), rel.Tuple{types.NewInt(1)})
	c.Register("r", r)
	got, err := c.Relation("r")
	if err != nil || got.Card() != 1 {
		t.Fatalf("lookup: %v", err)
	}
	if got.Schema.Attrs[0].Qual != "r" {
		t.Errorf("registration should qualify the schema: %s", got.Schema)
	}
	if _, err := c.Relation("nope"); err == nil {
		t.Error("unknown relation should error")
	}
	sch, err := c.Schema("r")
	if err != nil || sch.Len() != 1 {
		t.Errorf("Schema: %s, %v", sch, err)
	}
	if !c.Has("r") || c.Has("nope") {
		t.Error("Has misreports")
	}
}

func TestNamesSortedAndDrop(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.Register(n, rel.New(schema.New("", "x")))
	}
	got := c.Names()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Errorf("Names = %v", got)
	}
	c.Drop("mid")
	c.Drop("mid") // idempotent
	if c.Has("mid") || len(c.Names()) != 2 {
		t.Error("Drop failed")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := "a,b,c,d\n1,2.5,hello,true\nNULL,,x,false\n"
	r, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Card() != 2 || r.Schema.Len() != 4 {
		t.Fatalf("parsed %s", r)
	}
	want := rel.Tuple{types.NewInt(1), types.NewFloat(2.5), types.NewString("hello"), types.NewBool(true)}
	if r.Count(want) != 1 {
		t.Errorf("typed row missing: %s", r)
	}
	nullRow := rel.Tuple{types.Null(), types.Null(), types.NewString("x"), types.NewBool(false)}
	if r.Count(nullRow) != 1 {
		t.Errorf("null row missing: %s", r)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("round trip lost data:\n%s\nvs\n%s", r, back)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail on header")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestParseValue(t *testing.T) {
	cases := map[string]types.Value{
		"42":    types.NewInt(42),
		"-7":    types.NewInt(-7),
		"3.14":  types.NewFloat(3.14),
		"TRUE":  types.NewBool(true),
		"False": types.NewBool(false),
		"null":  types.Null(),
		"":      types.Null(),
		"text":  types.NewString("text"),
	}
	for in, want := range cases {
		got := ParseValue(in)
		if got.Kind() != want.Kind() || (!got.IsNull() && !types.NullEq(got, want)) {
			t.Errorf("ParseValue(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			c.Register("x", rel.New(schema.New("", "a")))
		}
	}()
	for i := 0; i < 100; i++ {
		c.Names()
		c.Has("x")
		_, _ = c.Relation("x")
	}
	<-done
}

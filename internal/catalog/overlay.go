package catalog

import (
	"fmt"
	"sort"
	"sync"

	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Source is the read surface the compiler and executor need from a
// catalog: schemas and kinds for analysis/translation, relations for
// execution. *Catalog, *Overlay and *Snapshot all implement it.
type Source interface {
	Relation(name string) (*rel.Relation, error)
	Schema(name string) (schema.Schema, error)
	Kinds(name string) ([]types.Kind, error)
	Has(name string) bool
	Names() []string
}

// Overlay is a copy-on-write catalog layer above a shared base Source.
// Sessions hold one: their DDL (CREATE TABLE, INSERT, DROP) lands in the
// overlay's private layer — shadowing, never mutating, the base — so any
// number of sessions share one immutable base catalog without
// coordination. All overlay maps are replaced wholesale on write (never
// mutated in place), so a Snapshot taken before a write keeps observing
// the pre-write state for as long as it lives; a long-running provenance
// query therefore never blocks, and is never torn by, concurrent session
// DDL. This grows the view-publish discipline of the perm layer into full
// catalog snapshot semantics.
type Overlay struct {
	base Source

	mu sync.RWMutex
	// rels is the layer's private relation map.
	// guarded-by: mu
	rels map[string]*rel.Relation
	// kinds holds the layer's declared column kinds.
	// guarded-by: mu
	kinds map[string][]types.Kind
	// dropped tombstones base relations.
	// guarded-by: mu
	dropped map[string]bool
}

// NewOverlay returns an empty copy-on-write layer over base.
func NewOverlay(base Source) *Overlay {
	return &Overlay{
		base:    base,
		rels:    map[string]*rel.Relation{},
		kinds:   map[string][]types.Kind{},
		dropped: map[string]bool{},
	}
}

// Snapshot is an immutable point-in-time view of an Overlay. It implements
// Source; queries compile and execute against one Snapshot so they observe
// exactly one catalog state end to end.
//
// perm:frozen
type Snapshot struct {
	base    Source
	rels    map[string]*rel.Relation
	kinds   map[string][]types.Kind
	dropped map[string]bool
}

// Snapshot captures the overlay's current state. The returned view is
// immutable: later overlay writes replace the overlay's maps and cannot
// reach a previously taken snapshot.
func (o *Overlay) Snapshot() *Snapshot {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return &Snapshot{base: o.base, rels: o.rels, kinds: o.kinds, dropped: o.dropped}
}

// cow clones the overlay maps for one write. Callers must hold o.mu.
//
// permlint:held mu
func (o *Overlay) cow() (map[string]*rel.Relation, map[string][]types.Kind, map[string]bool) {
	rels := make(map[string]*rel.Relation, len(o.rels)+1)
	for k, v := range o.rels {
		rels[k] = v
	}
	kinds := make(map[string][]types.Kind, len(o.kinds)+1)
	for k, v := range o.kinds {
		kinds[k] = v
	}
	dropped := make(map[string]bool, len(o.dropped))
	for k, v := range o.dropped {
		dropped[k] = v
	}
	return rels, kinds, dropped
}

// Create installs a new empty relation with declared column kinds in the
// overlay layer. It fails if the name is visible — in the layer or in the
// (un-dropped) base.
func (o *Overlay) Create(name string, r *rel.Relation, kinds []types.Kind) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.rels[name]; ok || (!o.dropped[name] && o.base.Has(name)) {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	rels, ks, dropped := o.cow()
	r.Schema = r.Schema.WithQual(name)
	rels[name] = r
	if kinds == nil {
		kinds = r.InferKinds()
	}
	ks[name] = kinds
	delete(dropped, name)
	o.rels, o.kinds, o.dropped = rels, ks, dropped
	return nil
}

// Replace publishes a new version of a relation into the overlay layer —
// the write half of copy-on-write INSERT: the caller builds the appended
// relation (typically starting from a clone of the base's version) and
// Replace shadows the old one. In-flight snapshots keep the old version.
func (o *Overlay) Replace(name string, r *rel.Relation, kinds []types.Kind) {
	o.mu.Lock()
	defer o.mu.Unlock()
	rels, ks, dropped := o.cow()
	r.Schema = r.Schema.WithQual(name)
	rels[name] = r
	if kinds == nil {
		kinds = r.InferKinds()
	}
	ks[name] = kinds
	delete(dropped, name)
	o.rels, o.kinds, o.dropped = rels, ks, dropped
}

// Drop removes a relation from the overlay's visibility: a layer-local
// relation is deleted, a base relation is tombstoned (the base itself is
// never touched).
func (o *Overlay) Drop(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, local := o.rels[name]
	if !local && (o.dropped[name] || !o.base.Has(name)) {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	rels, ks, dropped := o.cow()
	delete(rels, name)
	delete(ks, name)
	if o.base.Has(name) {
		dropped[name] = true
	}
	o.rels, o.kinds, o.dropped = rels, ks, dropped
	return nil
}

// Relation resolves through the layer, honouring tombstones.
func (o *Overlay) Relation(name string) (*rel.Relation, error) { return o.Snapshot().Relation(name) }

// Schema resolves through the layer, honouring tombstones.
func (o *Overlay) Schema(name string) (schema.Schema, error) { return o.Snapshot().Schema(name) }

// Kinds resolves through the layer, honouring tombstones.
func (o *Overlay) Kinds(name string) ([]types.Kind, error) { return o.Snapshot().Kinds(name) }

// Has resolves through the layer, honouring tombstones.
func (o *Overlay) Has(name string) bool { return o.Snapshot().Has(name) }

// Names lists the visible relation names, sorted.
func (o *Overlay) Names() []string { return o.Snapshot().Names() }

// Relation returns the snapshot's version of name: the overlay layer wins,
// tombstones hide base relations.
func (s *Snapshot) Relation(name string) (*rel.Relation, error) {
	if r, ok := s.rels[name]; ok {
		return r, nil
	}
	if s.dropped[name] {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return s.base.Relation(name)
}

// Schema returns the snapshot's schema for name.
func (s *Snapshot) Schema(name string) (schema.Schema, error) {
	if r, ok := s.rels[name]; ok {
		return r.Schema, nil
	}
	if s.dropped[name] {
		return schema.Schema{}, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return s.base.Schema(name)
}

// Kinds returns the snapshot's column kinds for name.
func (s *Snapshot) Kinds(name string) ([]types.Kind, error) {
	if k, ok := s.kinds[name]; ok {
		return k, nil
	}
	if s.dropped[name] {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return s.base.Kinds(name)
}

// Has reports whether name is visible in the snapshot.
func (s *Snapshot) Has(name string) bool {
	if _, ok := s.rels[name]; ok {
		return true
	}
	if s.dropped[name] {
		return false
	}
	return s.base.Has(name)
}

// Names lists the snapshot's visible relation names, sorted.
func (s *Snapshot) Names() []string {
	seen := map[string]bool{}
	var names []string
	for n := range s.rels {
		seen[n] = true
		names = append(names, n)
	}
	for _, n := range s.base.Names() {
		if !seen[n] && !s.dropped[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

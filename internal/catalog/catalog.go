// Package catalog implements the in-memory database: a named collection of
// base relations with schemas, plus CSV import/export so the CLI tools can
// persist generated workloads. It stands in for the storage layer of the
// PostgreSQL instance Perm was built on.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// Catalog is a thread-safe registry of base relations.
type Catalog struct {
	mu    sync.RWMutex
	rels  map[string]*rel.Relation
	kinds map[string][]types.Kind
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{rels: map[string]*rel.Relation{}, kinds: map[string][]types.Kind{}}
}

// Register installs (or replaces) a base relation under name. The relation's
// schema is re-qualified with the relation name so that unaliased scans
// resolve qualified references, and its column kinds are inferred once here
// (relations are immutable once registered), so compiling a query never
// rescans table data.
func (c *Catalog) Register(name string, r *rel.Relation) {
	c.RegisterWithKinds(name, r, nil)
}

// RegisterWithKinds installs (or replaces) a base relation with declared
// column kinds — the CREATE TABLE path, where an empty relation carries
// types that inference could not recover from data. kinds == nil infers
// from the data as Register does.
func (c *Catalog) RegisterWithKinds(name string, r *rel.Relation, kinds []types.Kind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Schema = r.Schema.WithQual(name)
	c.rels[name] = r
	if kinds == nil {
		kinds = r.InferKinds()
	}
	c.kinds[name] = kinds
}

// Relation returns the base relation registered under name.
func (c *Catalog) Relation(name string) (*rel.Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return r, nil
}

// Schema returns the schema of a registered relation.
func (c *Catalog) Schema(name string) (schema.Schema, error) {
	r, err := c.Relation(name)
	if err != nil {
		return schema.Schema{}, err
	}
	return r.Schema, nil
}

// Kinds returns the per-column value kinds of a registered relation,
// inferred once at Register time (see rel.Relation.InferKinds). The
// semantic analyzer types queries against these.
func (c *Catalog) Kinds(name string) ([]types.Kind, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	k, ok := c.kinds[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return k, nil
}

// Has reports whether name is registered.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.rels[name]
	return ok
}

// Drop removes a relation; dropping an absent relation is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.rels, name)
	delete(c.kinds, name)
}

// Names returns the registered relation names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

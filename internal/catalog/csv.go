package catalog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// ReadCSV parses a relation from CSV. The first record is the header
// (attribute names); values are typed by inference: "NULL" and "" become
// NULL, integers and floats parse numerically, "true"/"false" become
// booleans, everything else stays a string.
func ReadCSV(r io.Reader) (*rel.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("catalog: reading CSV header: %w", err)
	}
	out := rel.New(schema.New("", header...))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("catalog: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("catalog: CSV line %d has %d fields, header has %d", line, len(rec), len(header))
		}
		t := make(rel.Tuple, len(rec))
		for i, field := range rec {
			t[i] = ParseValue(field)
		}
		out.Add(t, 1)
	}
}

// ParseValue infers the type of one CSV field.
func ParseValue(field string) types.Value {
	switch {
	case field == "" || strings.EqualFold(field, "null"):
		return types.Null()
	case strings.EqualFold(field, "true"):
		return types.NewBool(true)
	case strings.EqualFold(field, "false"):
		return types.NewBool(false)
	}
	if i, err := strconv.ParseInt(field, 10, 64); err == nil {
		return types.NewInt(i)
	}
	if f, err := strconv.ParseFloat(field, 64); err == nil {
		return types.NewFloat(f)
	}
	return types.NewString(field)
}

// WriteCSV serializes a relation to CSV (header plus one record per tuple,
// duplicates expanded, deterministic order). NULL serializes as "NULL".
func WriteCSV(w io.Writer, r *rel.Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.Len())
	for i, a := range r.Schema.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("catalog: writing CSV header: %w", err)
	}
	for _, t := range r.SortedTuples() {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("catalog: writing CSV record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Package rel implements bag (multiset) relations: the data representation
// executed by the engine. Tuples carry explicit multiplicities, matching the
// counted-bag algebra of Figure 1 in Glavic & Alonso (EDBT 2009), where a
// tuple's cardinality is written as a superscript (e.g. (1,2)³).
package rel

import (
	"fmt"
	"sort"
	"strings"

	"perm/internal/schema"
	"perm/internal/types"
)

// Tuple is a row of values, positionally aligned with a Schema.
type Tuple []types.Value

// Key returns a self-delimiting byte-key for the tuple; two tuples share a
// key iff they are equal under =n per attribute (the grouping equivalence).
func (t Tuple) Key() string {
	buf := make([]byte, 0, 16*len(t))
	for _, v := range t {
		buf = v.AppendKey(buf)
	}
	return string(buf)
}

// Clone returns a copy of the tuple that shares no storage with t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation (t, o) as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// String renders the tuple as (v1, v2, …).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Nulls returns a tuple of n NULLs — the null(R) extension tuple used by the
// Gen strategy's CrossBase and by outer joins.
func Nulls(n int) Tuple {
	t := make(Tuple, n)
	for i := range t {
		t[i] = types.Null()
	}
	return t
}

// Relation is a bag of tuples over a schema. Distinct tuples are stored once
// with an integer multiplicity. The zero Relation is an empty bag with an
// empty schema; use New to attach a schema.
//
// Relation is deliberately NOT `// perm:frozen`: it is the engine's
// mutable builder — loaders and operators fill one with Add and only then
// hand it over. Immutability of registered relations is a catalog-boundary
// convention; the frozen, statically-checked view of a catalog state is
// catalog.Snapshot.
type Relation struct {
	Schema schema.Schema

	tuples []Tuple
	counts []int
	index  map[string]int // tuple key -> slot in tuples/counts
}

// New returns an empty relation with the given schema.
func New(s schema.Schema) *Relation {
	return &Relation{Schema: s, index: map[string]int{}}
}

// FromTuples builds a relation from tuples, each with multiplicity 1.
func FromTuples(s schema.Schema, ts ...Tuple) *Relation {
	r := New(s)
	for _, t := range ts {
		r.Add(t, 1)
	}
	return r
}

// Add inserts n copies of t (merging with an existing slot). It panics if
// the tuple width does not match the schema — that is always an engine bug,
// not a data error. n may be negative (bag difference); slots never go below
// zero.
func (r *Relation) Add(t Tuple, n int) {
	if len(t) != r.Schema.Len() {
		panic(fmt.Sprintf("rel: tuple width %d does not match schema %s", len(t), r.Schema))
	}
	if n == 0 {
		return
	}
	if r.index == nil {
		r.index = map[string]int{}
	}
	k := t.Key()
	if slot, ok := r.index[k]; ok {
		r.counts[slot] += n
		if r.counts[slot] < 0 {
			r.counts[slot] = 0
		}
		return
	}
	if n < 0 {
		return
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.counts = append(r.counts, n)
}

// NumSlots returns the number of distinct tuples (slots with any history;
// some may have count 0 after bag difference).
func (r *Relation) NumSlots() int { return len(r.tuples) }

// Slot returns the i-th distinct tuple and its multiplicity. The returned
// tuple must not be mutated.
func (r *Relation) Slot(i int) (Tuple, int) { return r.tuples[i], r.counts[i] }

// Count returns the multiplicity of t in the bag.
func (r *Relation) Count(t Tuple) int {
	if r.index == nil {
		return 0
	}
	if slot, ok := r.index[t.Key()]; ok {
		return r.counts[slot]
	}
	return 0
}

// Card returns the total cardinality including multiplicities.
func (r *Relation) Card() int {
	total := 0
	for _, c := range r.counts {
		total += c
	}
	return total
}

// Empty reports whether the bag contains no tuples.
func (r *Relation) Empty() bool { return r.Card() == 0 }

// Each calls fn for every distinct tuple with positive multiplicity,
// stopping early if fn returns an error.
func (r *Relation) Each(fn func(t Tuple, n int) error) error {
	for i, t := range r.tuples {
		if r.counts[i] <= 0 {
			continue
		}
		if err := fn(t, r.counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep-enough copy: slots are copied, tuples are shared
// (tuples are immutable by convention).
func (r *Relation) Clone() *Relation {
	c := New(r.Schema)
	for i, t := range r.tuples {
		if r.counts[i] > 0 {
			c.Add(t, r.counts[i])
		}
	}
	return c
}

// WithSchema returns a view of the relation under a different schema of the
// same width, sharing tuple storage. Used by scans to re-qualify attributes
// with the scan alias.
func (r *Relation) WithSchema(s schema.Schema) *Relation {
	if s.Len() != r.Schema.Len() {
		panic(fmt.Sprintf("rel: WithSchema width mismatch: %s vs %s", s, r.Schema))
	}
	return &Relation{Schema: s, tuples: r.tuples, counts: r.counts, index: r.index}
}

// Distinct returns the set version of the bag: every positive slot with
// multiplicity 1.
func (r *Relation) Distinct() *Relation {
	c := New(r.Schema)
	for i, t := range r.tuples {
		if r.counts[i] > 0 {
			c.Add(t, 1)
		}
	}
	return c
}

// Equal reports whether two relations contain the same bag of tuples
// (schemas are compared by width only; attribute names are metadata).
func (r *Relation) Equal(o *Relation) bool {
	if r.Schema.Len() != o.Schema.Len() {
		return false
	}
	if r.Card() != o.Card() {
		return false
	}
	for i, t := range r.tuples {
		if r.counts[i] <= 0 {
			continue
		}
		if o.Count(t) != r.counts[i] {
			return false
		}
	}
	return true
}

// EqualSet reports set-equality: both relations contain the same distinct
// tuples, ignoring multiplicities.
func (r *Relation) EqualSet(o *Relation) bool {
	if r.Schema.Len() != o.Schema.Len() {
		return false
	}
	for i, t := range r.tuples {
		if r.counts[i] > 0 && o.Count(t) <= 0 {
			return false
		}
	}
	for i, t := range o.tuples {
		if o.counts[i] > 0 && r.Count(t) <= 0 {
			return false
		}
	}
	return true
}

// InferKinds derives a per-column type from the data: the kind shared by
// every non-NULL value of the column, with int and float unifying to float.
// A column that is all NULL — or that mixes incompatible kinds, which the
// SQL surface cannot produce but Register permits — reports KindNull,
// meaning "unknown" to the semantic analyzer (every operation is admitted
// and decided at runtime).
//
// The result is computed once at Register time and cached in the catalog,
// so the inference must be read-only over the relation.
//
// perm:memoized
func (r *Relation) InferKinds() []types.Kind {
	kinds := make([]types.Kind, r.Schema.Len())
	conflict := make([]bool, r.Schema.Len())
	for i, t := range r.tuples {
		if r.counts[i] <= 0 {
			continue
		}
		for j, v := range t {
			k := v.Kind()
			if k == types.KindNull || kinds[j] == k || conflict[j] {
				continue
			}
			switch {
			case kinds[j] == types.KindNull:
				kinds[j] = k
			case (kinds[j] == types.KindInt || kinds[j] == types.KindFloat) &&
				(k == types.KindInt || k == types.KindFloat):
				kinds[j] = types.KindFloat
			default:
				kinds[j], conflict[j] = types.KindNull, true // incompatible mix: unknown
			}
		}
	}
	return kinds
}

// SortedTuples returns the distinct positive tuples expanded by multiplicity
// in a deterministic order — for tests and for stable CLI output.
func (r *Relation) SortedTuples() []Tuple {
	var out []Tuple
	for i, t := range r.tuples {
		for n := 0; n < r.counts[i]; n++ {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// String renders the relation as a small table, deterministically ordered.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Schema.String())
	b.WriteString(" {")
	for i, t := range r.SortedTuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString("}")
	return b.String()
}

package rel

import (
	"testing"
	"testing/quick"

	"perm/internal/schema"
	"perm/internal/types"
)

func ints(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func TestAddMergesDuplicates(t *testing.T) {
	r := New(schema.New("r", "a", "b"))
	r.Add(ints(1, 2), 1)
	r.Add(ints(1, 2), 2)
	r.Add(ints(3, 4), 1)
	if r.NumSlots() != 2 {
		t.Fatalf("slots = %d", r.NumSlots())
	}
	if r.Card() != 4 {
		t.Fatalf("card = %d", r.Card())
	}
	if r.Count(ints(1, 2)) != 3 {
		t.Fatalf("count = %d", r.Count(ints(1, 2)))
	}
}

func TestNegativeAddClampsAtZero(t *testing.T) {
	r := New(schema.New("r", "a"))
	r.Add(ints(1), 2)
	r.Add(ints(1), -5)
	if r.Count(ints(1)) != 0 {
		t.Fatalf("count after over-subtraction = %d", r.Count(ints(1)))
	}
	// Subtracting an absent tuple must not create a slot.
	r.Add(ints(9), -1)
	if r.Count(ints(9)) != 0 || !r.Empty() {
		t.Fatal("negative add created phantom tuple")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	r := New(schema.New("r", "a", "b"))
	r.Add(ints(1), 1)
}

func TestEqualAndEqualSet(t *testing.T) {
	s := schema.New("r", "a")
	a := FromTuples(s, ints(1), ints(1), ints(2))
	b := FromTuples(s, ints(2), ints(1), ints(1))
	c := FromTuples(s, ints(1), ints(2))
	if !a.Equal(b) {
		t.Error("bag equality should ignore insertion order")
	}
	if a.Equal(c) {
		t.Error("bag equality must respect multiplicities")
	}
	if !a.EqualSet(c) {
		t.Error("set equality must ignore multiplicities")
	}
	d := FromTuples(s, ints(3))
	if a.EqualSet(d) {
		t.Error("different tuples are not set-equal")
	}
}

func TestDistinctAndClone(t *testing.T) {
	s := schema.New("r", "a")
	a := FromTuples(s, ints(1), ints(1), ints(2))
	d := a.Distinct()
	if d.Card() != 2 || d.Count(ints(1)) != 1 {
		t.Errorf("distinct wrong: %v", d)
	}
	c := a.Clone()
	c.Add(ints(5), 1)
	if a.Count(ints(5)) != 0 {
		t.Error("clone shares slots with original")
	}
}

func TestEachSkipsZeroSlots(t *testing.T) {
	s := schema.New("r", "a")
	r := FromTuples(s, ints(1), ints(2))
	r.Add(ints(1), -1)
	var seen int
	_ = r.Each(func(tp Tuple, n int) error {
		seen += n
		return nil
	})
	if seen != 1 {
		t.Errorf("Each visited card %d, want 1", seen)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := ints(1, 2)
	b := a.Clone()
	b[0] = types.NewInt(9)
	if a[0].Int() != 1 {
		t.Error("Clone shares storage")
	}
	c := ints(1).Concat(ints(2, 3))
	if len(c) != 3 || c[2].Int() != 3 {
		t.Errorf("Concat = %v", c)
	}
	n := Nulls(3)
	for _, v := range n {
		if !v.IsNull() {
			t.Error("Nulls produced non-null")
		}
	}
	if s := ints(1, 2).String(); s != "(1, 2)" {
		t.Errorf("Tuple.String = %q", s)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	f := func(a, b int64, c, d int64) bool {
		t1, t2 := ints(a, b), ints(c, d)
		return (t1.Key() == t2.Key()) == (a == c && b == d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationString(t *testing.T) {
	s := schema.New("r", "a")
	r := FromTuples(s, ints(2), ints(1))
	got := r.String()
	if got != "(r.a) {(1), (2)}" {
		t.Errorf("String = %q", got)
	}
}

func TestWithSchemaSharesAndPanics(t *testing.T) {
	s := schema.New("r", "a")
	r := FromTuples(s, ints(1))
	v := r.WithSchema(schema.New("x", "b"))
	if v.Card() != 1 || v.Schema.Attrs[0].Qual != "x" {
		t.Errorf("view = %s", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch should panic")
		}
	}()
	r.WithSchema(schema.New("x", "b", "c"))
}

func TestEqualWidthAndCountEdge(t *testing.T) {
	a := FromTuples(schema.New("", "x"), ints(1))
	b := FromTuples(schema.New("", "x", "y"), ints(1, 2))
	if a.Equal(b) || a.EqualSet(b) {
		t.Error("different widths must not compare equal")
	}
	var empty Relation
	if empty.Count(ints(1)) != 0 {
		t.Error("zero-value relation Count should be 0")
	}
}

func TestSortedTuplesDeterministic(t *testing.T) {
	s := schema.New("r", "a")
	a := FromTuples(s, ints(3), ints(1), ints(2), ints(1))
	got := a.SortedTuples()
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key() > got[i].Key() {
			t.Fatal("not sorted")
		}
	}
}

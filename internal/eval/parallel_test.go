package eval

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"perm/internal/catalog"
	"perm/internal/opt"
	"perm/internal/rewrite"
	"perm/internal/sql"
	"perm/internal/synth"
)

// equivalenceQueries covers every operator the parallel paths touch:
// selections and projections with correlated and uncorrelated sublinks,
// hash and nested-loop joins, left joins, aggregation and set operations.
func equivalenceQueries() []string {
	return []string{
		`SELECT * FROM r WHERE a = ANY (SELECT c FROM s)`,
		`SELECT * FROM r WHERE a = ANY (SELECT c FROM s WHERE c = b)`,
		`SELECT * FROM r WHERE EXISTS (SELECT c FROM s WHERE c = a)`,
		`SELECT * FROM r WHERE a < ALL (SELECT c FROM s WHERE c > b)`,
		`SELECT a, (SELECT max(c) FROM s WHERE c <= a) FROM r`,
		`SELECT r.a, s.d FROM r, s WHERE r.a = s.c`,
		`SELECT r.a, s.d FROM r LEFT JOIN s ON r.a = s.c`,
		`SELECT r.a, s.d FROM r, s WHERE r.a < s.c`,
		`SELECT b, count(*), sum(a) FROM r GROUP BY b`,
		`SELECT b, max(a) FROM r WHERE EXISTS (SELECT c FROM s WHERE c = b) GROUP BY b`,
		`SELECT a FROM r UNION SELECT c FROM s`,
		`SELECT a FROM r WHERE a > 0 INTERSECT SELECT c FROM s`,
		`SELECT DISTINCT b FROM r`,
	}
}

// checkModes runs one query under every executor mode and checks the
// results are bag-equal to a fully sequential, unmemoized run.
func checkModes(t *testing.T, cat *catalog.Catalog, query, strategy string) {
	t.Helper()
	tr, err := sql.Compile(cat, query)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	plan := tr.Plan
	if strategy != "" {
		strat, err := rewrite.ParseStrategy(strategy)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rewrite.Rewrite(plan, strat)
		if errors.Is(err, rewrite.ErrNotApplicable) {
			return
		}
		if err != nil {
			t.Fatalf("rewrite %q: %v", query, err)
		}
		plan = res.Plan
	}
	plan = opt.Optimize(plan)

	base := New(cat)
	base.DisableSublinkMemo = true
	want, err := base.Eval(plan)
	if err != nil {
		t.Fatalf("sequential eval %q: %v", query, err)
	}
	for _, mode := range []struct {
		name string
		memo bool
		par  int
	}{
		{"memo", true, 1},
		{"parallel", false, 4},
		{"memo+parallel", true, 4},
	} {
		ev := New(cat)
		ev.DisableSublinkMemo = !mode.memo
		ev.Parallelism = mode.par
		got, err := ev.Eval(plan)
		if err != nil {
			t.Fatalf("%s eval %q: %v", mode.name, query, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s eval %q:\n got %s\nwant %s", mode.name, query, got, want)
		}
	}
}

func TestParallelAndMemoMatchSequential(t *testing.T) {
	cat := figure3DB()
	for _, query := range equivalenceQueries() {
		for _, strategy := range []string{"", "Gen", "Left", "Move", "Unn", "UnnX"} {
			checkModes(t, cat, query, strategy)
		}
	}
}

func TestParallelMatchesSequentialSynth(t *testing.T) {
	// A larger workload so the fan-out gate actually opens, including the
	// correlated query the per-binding memo targets.
	w := synth.Workload{InputSize: 120, SublinkSize: 60, Domain: 8, Seed: 3}
	cat := w.Catalog()
	for _, query := range []string{w.Q1(0), w.Q2(0), w.Q3(0)} {
		for _, strategy := range []string{"", "Gen"} {
			checkModes(t, cat, query, strategy)
		}
	}
}

func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := synth.Workload{InputSize: 200, SublinkSize: 100, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q3(0))
	if err != nil {
		t.Fatal(err)
	}
	ev := New(cat).WithContext(ctx)
	ev.Parallelism = 4
	if _, err := ev.Eval(opt.Optimize(tr.Plan)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestParallelRowBudget(t *testing.T) {
	w := synth.Workload{InputSize: 200, SublinkSize: 100, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, `SELECT * FROM r1, r2`)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(cat)
	ev.Parallelism = 4
	ev.MaxRows = 100
	if _, err := ev.Eval(tr.Plan); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestParallelProvenanceRewrites(t *testing.T) {
	// End-to-end over the synthetic provenance workload: every strategy's
	// rewritten plan evaluates identically with and without fan-out.
	w := synth.Workload{InputSize: 60, SublinkSize: 40, Domain: 6, Seed: 7}
	cat := w.Catalog()
	for i := int64(0); i < 2; i++ {
		for _, strategy := range []string{"Gen", "Left", "Move", "Unn", "UnnX"} {
			checkModes(t, cat, w.Q1(i), strategy)
		}
	}
}

func BenchmarkEvalParallelSelect(b *testing.B) {
	w := synth.Workload{InputSize: 500, SublinkSize: 250, Domain: 32, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q3(0))
	if err != nil {
		b.Fatal(err)
	}
	plan := opt.Optimize(tr.Plan)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			ev := New(cat)
			ev.Parallelism = par
			ev.DisableSublinkMemo = true
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package eval

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// evalCond evaluates a condition under three-valued logic. Boolean values
// map to True/False, NULL maps to Unknown; anything else is a type error.
func (e *Evaluator) evalCond(cond algebra.Expr, sch schema.Schema, t rel.Tuple, outer []frame) (types.TriBool, error) {
	v, err := e.evalExpr(cond, sch, t, outer)
	if err != nil {
		return types.Unknown, err
	}
	return toTri(v)
}

func toTri(v types.Value) (types.TriBool, error) {
	switch v.Kind() {
	case types.KindNull:
		return types.Unknown, nil
	case types.KindBool:
		return types.TriOf(v.Bool()), nil
	default:
		return types.Unknown, fmt.Errorf("eval: condition evaluated to %s, want boolean", v.Kind())
	}
}

func triToValue(t types.TriBool) types.Value {
	switch t {
	case types.True:
		return types.NewBool(true)
	case types.False:
		return types.NewBool(false)
	default:
		return types.Null()
	}
}

// evalExpr evaluates a scalar expression for tuple t of schema sch, with
// outer providing enclosing scopes for correlated attribute references
// (innermost scope last).
func (e *Evaluator) evalExpr(x algebra.Expr, sch schema.Schema, t rel.Tuple, outer []frame) (types.Value, error) {
	switch ex := x.(type) {
	case algebra.Const:
		return ex.Val, nil
	case algebra.AttrRef:
		return resolveAttr(ex, sch, t, outer)
	case algebra.Cmp:
		l, err := e.evalExpr(ex.L, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		r, err := e.evalExpr(ex.R, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		return triToValue(ex.Op.Apply(l, r)), nil
	case algebra.NullEq:
		l, err := e.evalExpr(ex.L, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		r, err := e.evalExpr(ex.R, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(types.NullEq(l, r)), nil
	case algebra.Arith:
		l, err := e.evalExpr(ex.L, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		r, err := e.evalExpr(ex.R, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		return ex.Op.Apply(l, r)
	case algebra.And:
		// Short-circuit: False AND x is False without evaluating x. This
		// matters for Gen-rewritten queries, whose conditions guard
		// expensive sublinks behind cheap comparisons.
		l, err := e.evalExpr(ex.L, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		lt, err := toTri(l)
		if err != nil {
			return types.Null(), err
		}
		if lt == types.False {
			return types.NewBool(false), nil
		}
		r, err := e.evalExpr(ex.R, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		rt, err := toTri(r)
		if err != nil {
			return types.Null(), err
		}
		return triToValue(lt.And(rt)), nil
	case algebra.Or:
		l, err := e.evalExpr(ex.L, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		lt, err := toTri(l)
		if err != nil {
			return types.Null(), err
		}
		if lt == types.True {
			return types.NewBool(true), nil
		}
		r, err := e.evalExpr(ex.R, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		rt, err := toTri(r)
		if err != nil {
			return types.Null(), err
		}
		return triToValue(lt.Or(rt)), nil
	case algebra.Not:
		v, err := e.evalExpr(ex.E, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		tv, err := toTri(v)
		if err != nil {
			return types.Null(), err
		}
		return triToValue(tv.Not()), nil
	case algebra.IsNull:
		v, err := e.evalExpr(ex.E, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(v.IsNull()), nil
	case algebra.Case:
		for _, w := range ex.Whens {
			keep, err := e.evalCond(w.When, sch, t, outer)
			if err != nil {
				return types.Null(), err
			}
			if keep == types.True {
				return e.evalExpr(w.Then, sch, t, outer)
			}
		}
		if ex.Else != nil {
			return e.evalExpr(ex.Else, sch, t, outer)
		}
		return types.Null(), nil
	case algebra.Func:
		def, ok := algebra.LookupFunc(ex.Name)
		if !ok {
			return types.Null(), fmt.Errorf("eval: unknown function %q", ex.Name)
		}
		if len(ex.Args) < def.MinArgs || len(ex.Args) > def.MaxArgs {
			return types.Null(), fmt.Errorf("eval: %s takes %d to %d arguments, got %d", ex.Name, def.MinArgs, def.MaxArgs, len(ex.Args))
		}
		args := make([]types.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := e.evalExpr(a, sch, t, outer)
			if err != nil {
				return types.Null(), err
			}
			args[i] = v
		}
		return def.Eval(args)
	case algebra.Cast:
		v, err := e.evalExpr(ex.E, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		return types.Cast(v, ex.To)
	case algebra.Sublink:
		return e.evalSublink(ex, sch, t, outer)
	default:
		return types.Null(), fmt.Errorf("eval: unsupported expression %T", x)
	}
}

// resolveAttr looks a reference up in the current scope first, then walks
// the enclosing scopes innermost-out — SQL correlation semantics.
func resolveAttr(ref algebra.AttrRef, sch schema.Schema, t rel.Tuple, outer []frame) (types.Value, error) {
	idx, ambiguous := sch.Lookup(ref.Qual, ref.Name)
	if ambiguous {
		return types.Null(), fmt.Errorf("eval: ambiguous attribute reference %s in %s", ref, sch)
	}
	if idx >= 0 {
		return t[idx], nil
	}
	for i := len(outer) - 1; i >= 0; i-- {
		idx, ambiguous = outer[i].sch.Lookup(ref.Qual, ref.Name)
		if ambiguous {
			return types.Null(), fmt.Errorf("eval: ambiguous correlated reference %s in %s", ref, outer[i].sch)
		}
		if idx >= 0 {
			return outer[i].t[idx], nil
		}
	}
	return types.Null(), fmt.Errorf("eval: unknown attribute %s (scope %s, %d outer scopes)", ref, sch, len(outer))
}

package eval

import (
	"errors"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

func TestValuesOperator(t *testing.T) {
	c := catalog.New()
	op := &algebra.Values{
		Sch: schema.New("", "x", "y"),
		Rows: []algebra.Row{
			{algebra.IntConst(1), algebra.StrConst("a")},
			{algebra.NullConst(), algebra.StrConst("b")},
		},
	}
	out := mustEval(t, c, op)
	if out.Card() != 2 {
		t.Fatalf("card = %d", out.Card())
	}
	if out.Count(rel.Tuple{types.Null(), types.NewString("b")}) != 1 {
		t.Errorf("null row missing: %s", out)
	}
	// Width mismatch is an error.
	bad := &algebra.Values{Sch: schema.New("", "x"), Rows: []algebra.Row{{algebra.IntConst(1), algebra.IntConst(2)}}}
	if _, err := New(c).Eval(bad); err == nil {
		t.Error("ragged VALUES row should error")
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	c := figure3DB()
	op := &algebra.Limit{Child: scan(t, c, "r"), N: 2}
	out := mustEval(t, c, op)
	if out.Card() != 2 {
		t.Errorf("limit without order card = %d", out.Card())
	}
	zero := &algebra.Limit{Child: scan(t, c, "r"), N: 0}
	if out := mustEval(t, c, zero); !out.Empty() {
		t.Errorf("limit 0 = %s", out)
	}
}

func TestOrderAloneIsBagIdentity(t *testing.T) {
	c := figure3DB()
	op := &algebra.Order{Child: scan(t, c, "r"), Keys: []algebra.SortKey{{E: algebra.Attr("a"), Desc: true}}}
	out := mustEval(t, c, op)
	base := mustEval(t, c, scan(t, c, "r"))
	if !out.Equal(base.WithSchema(out.Schema)) {
		t.Errorf("order changed bag content")
	}
}

func TestHashJoinWithResidual(t *testing.T) {
	c := figure3DB()
	// a = c (hashable) AND b < d (residual).
	cond := algebra.And{
		L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.Attr("c")},
		R: algebra.Cmp{Op: types.CmpLt, L: algebra.Attr("b"), R: algebra.Attr("d")},
	}
	op := &algebra.Join{L: scan(t, c, "r"), R: scan(t, c, "s"), Cond: cond}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(1, 1, 1, 3), ints(2, 1, 2, 4))
	if !out.Equal(want) {
		t.Errorf("hash join with residual = %s", out)
	}
}

func TestHashJoinNullKeysDoNotMatch(t *testing.T) {
	c := catalog.New()
	c.Register("l", rel.FromTuples(schema.New("", "a"), rel.Tuple{types.Null()}, ints(1)))
	c.Register("m", rel.FromTuples(schema.New("", "b"), rel.Tuple{types.Null()}, ints(1)))
	eq := &algebra.Join{L: scan(t, c, "l"), R: scan(t, c, "m"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.Attr("b")}}
	out := mustEval(t, c, eq)
	if out.Card() != 1 {
		t.Errorf("= join matched NULLs: %s", out)
	}
	// =n joins DO match NULLs.
	neq := &algebra.Join{L: scan(t, c, "l"), R: scan(t, c, "m"),
		Cond: algebra.NullEq{L: algebra.Attr("a"), R: algebra.Attr("b")}}
	out = mustEval(t, c, neq)
	if out.Card() != 2 {
		t.Errorf("=n join should match NULL with NULL: %s", out)
	}
}

func TestHashLeftJoinPadsUnmatched(t *testing.T) {
	c := figure3DB()
	cond := algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.Attr("c")}
	op := &algebra.LeftJoin{L: scan(t, c, "r"), R: scan(t, c, "s"), Cond: cond}
	out := mustEval(t, c, op)
	padded := rel.Tuple{types.NewInt(3), types.NewInt(2), types.Null(), types.Null()}
	if out.Card() != 3 || out.Count(padded) != 1 {
		t.Errorf("hash left join = %s", out)
	}
}

func TestSplitEquiJoinClassification(t *testing.T) {
	lsch := schema.New("l", "a", "b")
	rsch := schema.New("r", "c", "d")
	cond := algebra.Conj(
		algebra.Cmp{Op: types.CmpEq, L: algebra.QAttr("l", "a"), R: algebra.QAttr("r", "c")}, // key
		algebra.NullEq{L: algebra.QAttr("r", "d"), R: algebra.QAttr("l", "b")},               // key (swapped)
		algebra.Cmp{Op: types.CmpLt, L: algebra.QAttr("l", "a"), R: algebra.QAttr("r", "d")}, // residual
		algebra.Cmp{Op: types.CmpEq, L: algebra.QAttr("l", "a"), R: algebra.QAttr("l", "b")}, // one-sided: residual
	)
	keys := splitEquiJoin(cond, lsch, rsch)
	if len(keys.lKeys) != 2 {
		t.Fatalf("extracted %d keys, want 2", len(keys.lKeys))
	}
	if !keys.nullEq[1] || keys.nullEq[0] {
		t.Errorf("null-awareness flags = %v", keys.nullEq)
	}
	if keys.residual == nil {
		t.Fatal("missing residual")
	}
	// Correlated expressions must not become keys.
	correlated := algebra.Cmp{Op: types.CmpEq, L: algebra.QAttr("l", "a"), R: algebra.Attr("outer_x")}
	keys = splitEquiJoin(correlated, lsch, rsch)
	if len(keys.lKeys) != 0 {
		t.Error("correlated reference extracted as key")
	}
}

func TestSetOpWidthMismatch(t *testing.T) {
	c := figure3DB()
	op := &algebra.SetOp{Kind: algebra.Union, Bag: true,
		L: scan(t, c, "r"),
		R: algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))}
	if _, err := New(c).Eval(op); err == nil {
		t.Fatal("width mismatch should error")
	}
}

func TestSortTuplesNullsLast(t *testing.T) {
	s := schema.New("", "a")
	r := rel.FromTuples(s, rel.Tuple{types.Null()}, ints(2), ints(1))
	rows, err := SortTuples(r, []algebra.SortKey{{E: algebra.Attr("a")}})
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].IsNull() == false && rows[2][0].IsNull() {
		// ascending: 1, 2, NULL (NULLs last)
	}
	if rows[0][0].IsNull() || rows[1][0].Int() != 2 || !rows[2][0].IsNull() {
		t.Errorf("ascending with NULL = %v", rows)
	}
	desc, err := SortTuples(r, []algebra.SortKey{{E: algebra.Attr("a"), Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !desc[0][0].IsNull() && desc[0][0].Int() != 2 {
		t.Errorf("descending = %v", desc)
	}
}

func TestAllSublinkUnknownSemantics(t *testing.T) {
	// 2 < ALL {NULL, 3}: 2<3 true, 2<NULL unknown → Unknown → dropped.
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a"), ints(2)))
	c.Register("s", rel.FromTuples(schema.New("", "c"), rel.Tuple{types.Null()}, ints(3)))
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub}}
	out := mustEval(t, c, op)
	if !out.Empty() {
		t.Errorf("ALL with NULL element should be Unknown: %s", out)
	}
	// 5 < ALL {NULL, 3} is False (3 violates) regardless of the NULL.
	c.Register("r2", rel.FromTuples(schema.New("", "a"), ints(5)))
	op2 := &algebra.Select{Child: scan(t, c, "r2"),
		Cond: algebra.Not{E: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: sub}}}
	out2 := mustEval(t, c, op2)
	if out2.Card() != 1 {
		t.Errorf("NOT(false ALL) should keep the tuple: %s", out2)
	}
}

func TestHashedAnySemantics(t *testing.T) {
	// Uncorrelated = ANY goes through the hashed path; verify its NULL
	// semantics match the generic quantifier.
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a"), ints(1), ints(9), rel.Tuple{types.Null()}))
	c.Register("s", rel.FromTuples(schema.New("", "c"), rel.Tuple{types.Null()}, ints(1)))
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub}}
	out := mustEval(t, c, op)
	// a=1 matches; a=9 vs {NULL,1} → Unknown (dropped, not false); a=NULL → Unknown.
	if out.Card() != 1 || out.Count(ints(1)) != 1 {
		t.Errorf("hashed ANY = %s", out)
	}
	// Empty subquery: always false, even for NULL test values.
	c.Register("empty", rel.New(schema.New("", "c")))
	subE := algebra.NewProject(scan(t, c, "empty"), algebra.KeepCol("c"))
	opE := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Not{E: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: subE}}}
	outE := mustEval(t, c, opE)
	if outE.Card() != 3 {
		t.Errorf("NOT(x = ANY empty) should keep all: %s", outE)
	}
}

func TestMaxRowsBudget(t *testing.T) {
	c := figure3DB()
	// 3×3×3×3 cross product = 81 rows materialized along the way.
	var op algebra.Op = scan(t, c, "r")
	for i := 0; i < 3; i++ {
		op = &algebra.Cross{L: op, R: algebra.NewScan("r", string(rune('x'+i)), mustSchema(t, c, "r"))}
	}
	ev := New(c)
	ev.MaxRows = 10
	_, err := ev.Eval(op)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	// A generous budget succeeds, and the counter resets between calls.
	ev.MaxRows = 10000
	if _, err := ev.Eval(op); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if _, err := ev.Eval(op); err != nil {
		t.Fatalf("budget should reset per Eval: %v", err)
	}
}

func TestHashedAnyAblationAgrees(t *testing.T) {
	c := figure3DB()
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub}}
	fast := mustEval(t, c, op)
	slow := New(c)
	slow.DisableHashedAny = true
	out, err := slow.Eval(op)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(fast.WithSchema(out.Schema)) {
		t.Errorf("hashed and generic ANY disagree:\n%s\nvs\n%s", fast, out)
	}
}

func TestProjectionWithQualifiedOutput(t *testing.T) {
	c := figure3DB()
	op := &algebra.Project{Child: scan(t, c, "r"), Cols: []algebra.ProjExpr{
		{E: algebra.Attr("a"), As: "a", Qual: "x"},
	}}
	out := mustEval(t, c, op)
	if out.Schema.Attrs[0].Qual != "x" {
		t.Errorf("qualified projection output lost: %s", out.Schema)
	}
	// Referencing it as x.a works one level up.
	sel := &algebra.Select{Child: op, Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.QAttr("x", "a"), R: algebra.IntConst(1)}}
	if out := mustEval(t, c, sel); out.Card() != 1 {
		t.Errorf("qualified reference failed: %s", out)
	}
}

package eval

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// evalSublink evaluates the sublink Csub for one binding of the enclosing
// operator's input tuple. ANY/ALL/EXISTS yield a (three-valued) boolean;
// scalar sublinks yield the single attribute of their single result tuple,
// or NULL for an empty result.
func (e *Evaluator) evalSublink(s algebra.Sublink, sch schema.Schema, t rel.Tuple, outer []frame) (types.Value, error) {
	scope := append(outer, frame{sch: sch, t: t})
	sub, err := e.evalSubplan(s.Query, scope)
	if err != nil {
		return types.Null(), err
	}
	switch s.Kind {
	case algebra.ExistsSublink:
		return types.NewBool(!sub.Empty()), nil
	case algebra.ScalarSublink:
		if sub.Schema.Len() != 1 {
			return types.Null(), fmt.Errorf("eval: scalar sublink produced %d attributes, want 1", sub.Schema.Len())
		}
		switch sub.Card() {
		case 0:
			return types.Null(), nil
		case 1:
			var out types.Value
			_ = sub.Each(func(st rel.Tuple, n int) error { out = st[0]; return nil })
			return out, nil
		default:
			return types.Null(), fmt.Errorf("eval: scalar sublink produced %d tuples, want at most 1", sub.Card())
		}
	case algebra.AnySublink, algebra.AllSublink:
		a, err := e.evalExpr(s.Test, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		if s.Kind == algebra.AnySublink && s.Op == types.CmpEq && !e.DisableHashedAny && !e.isCorrelated(s.Query) {
			return e.hashedAny(s, a, sub)
		}
		return e.quantify(s, a, sub)
	default:
		return types.Null(), fmt.Errorf("eval: unknown sublink kind %v", s.Kind)
	}
}

// quantify applies the ANY (existential) or ALL (universal) quantifier of
// "a op ANY/ALL (sub)" under SQL three-valued logic: for ANY, True if any
// comparison is True, else Unknown if any is Unknown, else False (empty sub
// is False); dually for ALL (empty sub is True).
func (e *Evaluator) quantify(s algebra.Sublink, a types.Value, sub *rel.Relation) (types.Value, error) {
	if sub.Schema.Len() != 1 {
		return types.Null(), fmt.Errorf("eval: %s sublink query produced %d attributes, want 1", s.Kind, sub.Schema.Len())
	}
	sawUnknown := false
	if s.Kind == algebra.AnySublink {
		found := false
		_ = sub.Each(func(st rel.Tuple, n int) error {
			switch s.Op.Apply(a, st[0]) {
			case types.True:
				found = true
			case types.Unknown:
				sawUnknown = true
			}
			return nil
		})
		if found {
			return types.NewBool(true), nil
		}
		if sawUnknown {
			return types.Null(), nil
		}
		return types.NewBool(false), nil
	}
	allTrue := true
	_ = sub.Each(func(st rel.Tuple, n int) error {
		switch s.Op.Apply(a, st[0]) {
		case types.False:
			allTrue = false
		case types.Unknown:
			sawUnknown = true
		}
		return nil
	})
	if !allTrue {
		return types.NewBool(false), nil
	}
	if sawUnknown {
		return types.Null(), nil
	}
	return types.NewBool(true), nil
}

// anySet is the hashed form of an uncorrelated = ANY sublink result.
type anySet struct {
	keys    map[string]bool
	hasNull bool
	empty   bool
}

// hashedAny answers "a = ANY (sub)" from a hash set built once per query —
// PostgreSQL's hashed-subplan execution for uncorrelated IN/ANY, which the
// paper's measurements implicitly rely on. Semantics match quantify: an
// empty subquery yields false; a NULL test value or a NULL element that is
// the only possible match yields unknown.
func (e *Evaluator) hashedAny(s algebra.Sublink, a types.Value, sub *rel.Relation) (types.Value, error) {
	set, ok := e.anyMemo[s.Query]
	if !ok {
		if sub.Schema.Len() != 1 {
			return types.Null(), fmt.Errorf("eval: %s sublink query produced %d attributes, want 1", s.Kind, sub.Schema.Len())
		}
		set = &anySet{keys: map[string]bool{}, empty: sub.Empty()}
		_ = sub.Each(func(st rel.Tuple, n int) error {
			if st[0].IsNull() {
				set.hasNull = true
			} else {
				set.keys[string(st[0].AppendKey(nil))] = true
			}
			return nil
		})
		if e.anyMemo != nil {
			e.anyMemo[s.Query] = set
		}
	}
	if set.empty {
		return types.NewBool(false), nil
	}
	if a.IsNull() {
		return types.Null(), nil
	}
	if set.keys[string(a.AppendKey(nil))] {
		return types.NewBool(true), nil
	}
	if set.hasNull {
		return types.Null(), nil
	}
	return types.NewBool(false), nil
}

// evalSubplan evaluates a sublink query. Uncorrelated queries are evaluated
// once per top-level Eval and memoized (PostgreSQL's InitPlan behaviour);
// correlated queries re-evaluate for every outer binding (SubPlan
// behaviour). The distinction is what makes correlated provenance rewrites
// inherently expensive, as §4 of the paper observes.
func (e *Evaluator) evalSubplan(q algebra.Op, scope []frame) (*rel.Relation, error) {
	if e.isCorrelated(q) {
		return e.eval(q, scope)
	}
	if e.memo != nil {
		if cached, ok := e.memo[q]; ok {
			return cached, nil
		}
	}
	out, err := e.eval(q, nil)
	if err != nil {
		return nil, err
	}
	if e.memo != nil {
		e.memo[q] = out
	}
	return out, nil
}

// isCorrelated reports whether the plan has free attribute references,
// caching the analysis per node.
func (e *Evaluator) isCorrelated(q algebra.Op) bool {
	if e.free == nil {
		return len(algebra.FreeVars(q)) > 0
	}
	if v, ok := e.free[q]; ok {
		return v
	}
	v := len(algebra.FreeVars(q)) > 0
	e.free[q] = v
	return v
}

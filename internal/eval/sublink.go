package eval

import (
	"errors"
	"fmt"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// evalSublink evaluates the sublink Csub for one binding of the enclosing
// operator's input tuple. ANY/ALL/EXISTS yield a (three-valued) boolean;
// scalar sublinks yield the single attribute of their single result tuple,
// or NULL for an empty result.
//
// Under the streaming executor a probe pulls rows from the subplan pipeline
// and raises the stop signal at the first deciding row: EXISTS stops at any
// row, ANY at a True comparison, ALL at a False one, a scalar probe at its
// second row. An early-terminated probe has seen only part of the subplan's
// bag, so what the memo stores for it is the verdict, never the bag.
// Probes that want a reusable bag — uncorrelated ANY/ALL (PostgreSQL's
// InitPlan), the hashed = ANY set, and correlated ANY/ALL under the
// per-binding memo, whose bag serves every test value of a binding —
// materialize the subplan and are the executor's remaining sublink
// breakers.
func (e *Evaluator) evalSublink(s algebra.Sublink, sch schema.Schema, t rel.Tuple, outer []frame) (types.Value, error) {
	scope := append(outer, frame{sch: sch, t: t})
	switch s.Kind {
	case algebra.ExistsSublink:
		if e.DisableStreaming {
			sub, err := e.evalSubplan(s.Query, scope)
			if err != nil {
				return types.Null(), err
			}
			return types.NewBool(!sub.Empty()), nil
		}
		return e.probeExists(s.Query, scope)
	case algebra.ScalarSublink:
		if e.DisableStreaming {
			sub, err := e.evalSubplan(s.Query, scope)
			if err != nil {
				return types.Null(), err
			}
			if sub.Schema.Len() != 1 {
				return types.Null(), fmt.Errorf("eval: scalar sublink produced %d attributes, want 1", sub.Schema.Len())
			}
			switch sub.Card() {
			case 0:
				return types.Null(), nil
			case 1:
				var out types.Value
				_ = sub.Each(func(st rel.Tuple, n int) error { out = st[0]; return nil })
				return out, nil
			default:
				return types.Null(), fmt.Errorf("eval: scalar sublink produced %d tuples, want at most 1", sub.Card())
			}
		}
		return e.probeScalar(s.Query, scope)
	case algebra.AnySublink, algebra.AllSublink:
		a, err := e.evalExpr(s.Test, sch, t, outer)
		if err != nil {
			return types.Null(), err
		}
		if s.Kind == algebra.AnySublink && s.Op == types.CmpEq && !e.DisableHashedAny && !e.isCorrelated(s.Query) {
			sub, err := e.evalSubplan(s.Query, scope)
			if err != nil {
				return types.Null(), err
			}
			return e.hashedAny(s, a, sub)
		}
		if e.DisableStreaming || !e.isCorrelated(s.Query) || !e.DisableSublinkMemo {
			// Bag path: an uncorrelated bag evaluates once per query; a
			// correlated bag is memoized per binding and answers every test
			// value of that binding without re-running the subplan.
			sub, err := e.evalSubplan(s.Query, scope)
			if err != nil {
				return types.Null(), err
			}
			return e.quantify(s, a, sub)
		}
		// Correlated and unmemoized (the PostgreSQL SubPlan regime the
		// paper's figures measure): stream the probe, stop at the first
		// deciding row.
		return e.probeQuantified(s, a, scope)
	default:
		return types.Null(), fmt.Errorf("eval: unknown sublink kind %v", s.Kind)
	}
}

// streamSub runs a subplan pipeline for one probe, absorbing the stop
// signal the probe's emit raises once it has its answer.
func (e *Evaluator) streamSub(q algebra.Op, scope []frame, emit emitFn) error {
	if err := e.stream(q, scope, emit); err != nil && !errors.Is(err, errStop) {
		return err
	}
	return nil
}

// sublinkMemoKey resolves the cache key for a sublink probe: ok is false
// when the probe must not be cached (memoization disabled for correlated
// queries, no shared run state, or unresolvable parameters).
func (e *Evaluator) sublinkMemoKey(q algebra.Op, scope []frame) (string, bool) {
	if e.shared == nil {
		return "", false
	}
	fv := e.freeVars(q)
	if len(fv) == 0 {
		return "", true
	}
	if e.DisableSublinkMemo {
		return "", false
	}
	return paramKey(fv, scope)
}

// probeExists streams the subplan until the first row proves EXISTS true,
// caching the verdict (not the partial bag) per parameter binding.
//
// perm:hot
// perm:memoized
func (e *Evaluator) probeExists(q algebra.Op, scope []frame) (types.Value, error) {
	key, cache := e.sublinkMemoKey(q, scope)
	if cache {
		e.shared.mu.Lock()
		v, ok := e.shared.existsMemo[q][key]
		e.shared.mu.Unlock()
		if ok {
			return types.NewBool(v), nil
		}
	}
	found := false
	err := e.streamSub(q, scope, func(t rel.Tuple, n int) error {
		found = true
		return errStop
	})
	if err != nil {
		return types.Null(), err
	}
	if cache {
		e.shared.mu.Lock()
		if e.shared.existsMemo[q] == nil {
			e.shared.existsMemo[q] = map[string]bool{}
		}
		e.shared.existsMemo[q][key] = found
		e.shared.mu.Unlock()
	}
	return types.NewBool(found), nil
}

// probeScalar streams the subplan, stopping after the second row (which is
// already an error), and caches the scalar value per parameter binding.
//
// perm:hot
// perm:memoized
func (e *Evaluator) probeScalar(q algebra.Op, scope []frame) (types.Value, error) {
	if q.Schema().Len() != 1 {
		return types.Null(), fmt.Errorf("eval: scalar sublink produced %d attributes, want 1", q.Schema().Len())
	}
	key, cache := e.sublinkMemoKey(q, scope)
	if cache {
		e.shared.mu.Lock()
		v, ok := e.shared.scalarMemo[q][key]
		e.shared.mu.Unlock()
		if ok {
			return v, nil
		}
	}
	out := types.Null()
	count := 0
	err := e.streamSub(q, scope, func(t rel.Tuple, n int) error {
		count += n
		if count > 1 {
			return fmt.Errorf("eval: scalar sublink produced %d tuples, want at most 1", count)
		}
		out = t[0]
		return nil
	})
	if err != nil {
		return types.Null(), err
	}
	if cache {
		e.shared.mu.Lock()
		if e.shared.scalarMemo[q] == nil {
			e.shared.scalarMemo[q] = map[string]types.Value{}
		}
		e.shared.scalarMemo[q][key] = out
		e.shared.mu.Unlock()
	}
	return out, nil
}

// probeQuantified streams an ANY/ALL probe under SQL three-valued logic,
// stopping at the first deciding comparison: True decides ANY, False
// decides ALL.
//
// perm:hot
// perm:memoized
func (e *Evaluator) probeQuantified(s algebra.Sublink, a types.Value, scope []frame) (types.Value, error) {
	if s.Query.Schema().Len() != 1 {
		return types.Null(), fmt.Errorf("eval: %s sublink query produced %d attributes, want 1", s.Kind, s.Query.Schema().Len())
	}
	decided := false
	sawUnknown := false
	err := e.streamSub(s.Query, scope, func(t rel.Tuple, n int) error {
		switch s.Op.Apply(a, t[0]) {
		case types.True:
			if s.Kind == algebra.AnySublink {
				decided = true
				return errStop
			}
		case types.False:
			if s.Kind == algebra.AllSublink {
				decided = true
				return errStop
			}
		case types.Unknown:
			sawUnknown = true
		}
		return nil
	})
	if err != nil {
		return types.Null(), err
	}
	if decided {
		return types.NewBool(s.Kind == algebra.AnySublink), nil
	}
	if sawUnknown {
		return types.Null(), nil
	}
	return types.NewBool(s.Kind == algebra.AllSublink), nil
}

// quantify applies the ANY (existential) or ALL (universal) quantifier of
// "a op ANY/ALL (sub)" under SQL three-valued logic: for ANY, True if any
// comparison is True, else Unknown if any is Unknown, else False (empty sub
// is False); dually for ALL (empty sub is True).
//
// perm:hot
func (e *Evaluator) quantify(s algebra.Sublink, a types.Value, sub *rel.Relation) (types.Value, error) {
	if sub.Schema.Len() != 1 {
		return types.Null(), fmt.Errorf("eval: %s sublink query produced %d attributes, want 1", s.Kind, sub.Schema.Len())
	}
	sawUnknown := false
	if s.Kind == algebra.AnySublink {
		found := false
		_ = sub.Each(func(st rel.Tuple, n int) error {
			switch s.Op.Apply(a, st[0]) {
			case types.True:
				found = true
				return errStop // a True comparison decides ANY
			case types.Unknown:
				sawUnknown = true
			}
			return nil
		})
		if found {
			return types.NewBool(true), nil
		}
		if sawUnknown {
			return types.Null(), nil
		}
		return types.NewBool(false), nil
	}
	allTrue := true
	_ = sub.Each(func(st rel.Tuple, n int) error {
		switch s.Op.Apply(a, st[0]) {
		case types.False:
			allTrue = false
			return errStop // a False comparison decides ALL
		case types.Unknown:
			sawUnknown = true
		}
		return nil
	})
	if !allTrue {
		return types.NewBool(false), nil
	}
	if sawUnknown {
		return types.Null(), nil
	}
	return types.NewBool(true), nil
}

// anySet is the hashed form of an uncorrelated = ANY sublink result. It is
// immutable once published into the run's anyMemo.
type anySet struct {
	keys    map[string]bool
	hasNull bool
	empty   bool
}

// hashedAny answers "a = ANY (sub)" from a hash set built once per query —
// PostgreSQL's hashed-subplan execution for uncorrelated IN/ANY, which the
// paper's measurements implicitly rely on. Semantics match quantify: an
// empty subquery yields false; a NULL test value or a NULL element that is
// the only possible match yields unknown. Concurrent workers may race to
// build the set; the duplicate work is benign and the map publish is
// serialized.
//
// perm:hot
func (e *Evaluator) hashedAny(s algebra.Sublink, a types.Value, sub *rel.Relation) (types.Value, error) {
	var set *anySet
	if e.shared != nil {
		e.shared.mu.Lock()
		set = e.shared.anyMemo[s.Query]
		e.shared.mu.Unlock()
	}
	if set == nil {
		if sub.Schema.Len() != 1 {
			return types.Null(), fmt.Errorf("eval: %s sublink query produced %d attributes, want 1", s.Kind, sub.Schema.Len())
		}
		set = &anySet{keys: map[string]bool{}, empty: sub.Empty()}
		_ = sub.Each(func(st rel.Tuple, n int) error {
			if st[0].IsNull() {
				set.hasNull = true
			} else {
				set.keys[string(st[0].AppendKey(nil))] = true
			}
			return nil
		})
		if e.shared != nil {
			e.shared.mu.Lock()
			e.shared.anyMemo[s.Query] = set
			e.shared.mu.Unlock()
		}
	}
	if set.empty {
		return types.NewBool(false), nil
	}
	if a.IsNull() {
		return types.Null(), nil
	}
	if set.keys[string(a.AppendKey(nil))] {
		return types.NewBool(true), nil
	}
	if set.hasNull {
		return types.Null(), nil
	}
	return types.NewBool(false), nil
}

// evalSubplan evaluates a sublink query. Uncorrelated queries are evaluated
// once per top-level Eval and memoized (PostgreSQL's InitPlan behaviour).
// Correlated queries — the case §4 of the paper identifies as inherently
// expensive under provenance rewriting — are memoized per binding of their
// free parameters: outer tuples that agree on every correlated value share
// one evaluation instead of re-executing the subplan O(outer) times.
// DisableSublinkMemo restores the strict PostgreSQL SubPlan behaviour of
// re-evaluating per outer tuple.
//
// perm:memoized
func (e *Evaluator) evalSubplan(q algebra.Op, scope []frame) (*rel.Relation, error) {
	fv := e.freeVars(q)
	if len(fv) == 0 {
		if cached, ok := e.lookupMemo(q); ok {
			return cached, nil
		}
		out, err := e.eval(q, nil)
		if err != nil {
			return nil, err
		}
		e.storeMemo(q, out)
		return out, nil
	}
	if e.DisableSublinkMemo || e.shared == nil {
		return e.eval(q, scope)
	}
	key, ok := paramKey(fv, scope)
	if !ok {
		// A parameter failed to resolve cleanly; fall back to direct
		// evaluation, which reports the precise error if the value is used.
		return e.eval(q, scope)
	}
	if cached, ok := e.lookupSubMemo(q, key); ok {
		return cached, nil
	}
	out, err := e.eval(q, scope)
	if err != nil {
		return nil, err
	}
	e.storeSubMemo(q, key, out)
	return out, nil
}

// paramKey encodes the values of a subplan's free parameters under scope
// into a memo key. ok is false when any parameter is ambiguous or unbound.
func paramKey(fv []algebra.AttrRef, scope []frame) (string, bool) {
	buf := make([]byte, 0, 16*len(fv))
	for _, ref := range fv {
		v, ok := lookupScope(ref, scope)
		if !ok {
			return "", false
		}
		buf = v.AppendKey(buf)
	}
	return string(buf), true
}

// lookupScope resolves a free reference against the scope stack
// innermost-out, mirroring resolveAttr.
func lookupScope(ref algebra.AttrRef, scope []frame) (types.Value, bool) {
	for i := len(scope) - 1; i >= 0; i-- {
		idx, ambiguous := scope[i].sch.Lookup(ref.Qual, ref.Name)
		if ambiguous {
			return types.Null(), false
		}
		if idx >= 0 {
			return scope[i].t[idx], true
		}
	}
	return types.Null(), false
}

func (e *Evaluator) lookupMemo(q algebra.Op) (*rel.Relation, bool) {
	if e.shared == nil {
		return nil, false
	}
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	cached, ok := e.shared.memo[q]
	return cached, ok
}

func (e *Evaluator) storeMemo(q algebra.Op, out *rel.Relation) {
	if e.shared == nil {
		return
	}
	e.shared.mu.Lock()
	e.shared.memo[q] = out
	e.shared.mu.Unlock()
}

func (e *Evaluator) lookupSubMemo(q algebra.Op, key string) (*rel.Relation, bool) {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	m := e.shared.subMemo[q]
	if m == nil {
		return nil, false
	}
	cached, ok := m[key]
	return cached, ok
}

func (e *Evaluator) storeSubMemo(q algebra.Op, key string, out *rel.Relation) {
	e.shared.mu.Lock()
	m := e.shared.subMemo[q]
	if m == nil {
		m = map[string]*rel.Relation{}
		e.shared.subMemo[q] = m
	}
	m[key] = out
	e.shared.mu.Unlock()
}

// freeVars returns the plan's free attribute references, cached per node in
// the run's shared state.
func (e *Evaluator) freeVars(q algebra.Op) []algebra.AttrRef {
	if e.shared == nil {
		return algebra.FreeVars(q)
	}
	e.shared.mu.Lock()
	fv, ok := e.shared.free[q]
	e.shared.mu.Unlock()
	if ok {
		return fv
	}
	fv = algebra.FreeVars(q) // computed outside the lock; idempotent
	e.shared.mu.Lock()
	e.shared.free[q] = fv
	e.shared.mu.Unlock()
	return fv
}

// isCorrelated reports whether the plan has free attribute references.
func (e *Evaluator) isCorrelated(q algebra.Op) bool {
	return len(e.freeVars(q)) > 0
}

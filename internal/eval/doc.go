// Package eval is the bag-semantics executor of the Perm reproduction. It
// interprets algebra plans (Figure 1 of Glavic & Alonso, EDBT 2009) over an
// in-memory catalog, including correlated and nested sublinks in selection,
// projection and join conditions.
//
// # Execution model
//
// The executor materializes every operator's output as a counted bag
// (rel.Relation). Equi-join conditions execute as hash joins; everything
// else falls back to nested loops. A context attached with WithContext is
// polled during execution so long-running plans can be cancelled (the
// benchmark harness uses this for the paper's timeout rule), and MaxRows
// bounds total materialization (the Gen strategy's CrossBase cross products
// can exhaust memory long before a clock fires).
//
// # Sublink caching
//
// Like the PostgreSQL executor Perm ran on, the evaluator caches the result
// of uncorrelated subplans, evaluating them once per query (InitPlan
// behaviour), and hashes uncorrelated "= ANY" sublinks into a set probed per
// outer tuple (hashed subplans).
//
// Beyond PostgreSQL, correlated sublinks — the case §4 of the paper
// identifies as inherently expensive under provenance rewriting — are
// memoized per binding: the subplan's free attribute references are resolved
// against the enclosing scope and their encoded values key a cache of
// materialized results, so outer tuples that agree on every correlated
// parameter share one evaluation instead of re-executing the subplan once
// per outer tuple. DisableSublinkMemo restores the strict re-evaluating
// SubPlan behaviour (the benchmark harness sets it when reproducing the
// paper's figures, whose cost model assumes it).
//
// # Parallelism
//
// Setting Evaluator.Parallelism > 1 lets one Eval call fan tuple-independent
// work out across a bounded pool of worker goroutines: selection and
// projection inputs (where sublink conditions are evaluated), hash-join and
// nested-loop probes, aggregate key/argument evaluation, and the two build
// sides of joins and set operations. The invariants that keep this safe:
//
//   - Fan-out happens only at the top level of a plan. Workers, and any
//     evaluation under a correlated scope, run sequentially — nested
//     fan-out would multiply goroutines per outer tuple.
//   - Each worker appends to a private output relation; outputs merge in
//     worker order, so results are deterministic and no relation is written
//     concurrently. Materialized relations are immutable once built.
//   - All workers of one Eval share a single run state: the row budget
//     (atomic) and the memo tables (mutex-guarded). Workers may race to
//     compute the same memo entry; the duplicated work is benign and the
//     publish is serialized.
//
// The public API exposes this as perm.WithParallelism.
package eval

// Package eval is the bag-semantics executor of the Perm reproduction. It
// interprets algebra plans (Figure 1 of Glavic & Alonso, EDBT 2009) over an
// in-memory catalog, including correlated and nested sublinks in selection,
// projection and join conditions.
//
// # Execution model
//
// The executor is a push-based streaming pipeline: every operator emits its
// output rows to a consumer callback (emitFn) instead of materializing a
// bag, and rows flow from the scans at the bottom straight through
// selections, projections, unions, join probes and limits to the single
// materialization point at the top of the plan. Pipeline breakers buffer
// exactly the state their semantics force:
//
//   - sort: a LIMIT over an ORDER BY keeps a top-(offset+n) heap; an
//     OFFSET-only cut sorts its input;
//   - aggregation: the per-group accumulator table;
//   - hash-join and nested-loop builds: the materialized right input;
//   - intersection/difference: both inputs (full multiplicities);
//   - DISTINCT: the dedup set (rows still stream out on first sight).
//
// A stop signal (an errStop sentinel travelling the error path) propagates
// from a satisfied consumer through every producer beneath it, ceasing the
// upstream scans: a LIMIT that has its rows, or a sublink probe that has
// its answer, terminates the pipeline below it early. The signal is
// absorbed by the operator that raised it and never escapes Eval.
//
// DisableStreaming restores operator-at-a-time full materialization (every
// operator's output built as a counted bag). The materializing engine is
// the regression baseline and the comparison target of the benchmark
// harness's streaming table (permbench -fig stream); LastStats reports the
// rows either engine materialized. A context attached with WithContext is
// polled during execution so long-running plans can be cancelled (the
// benchmark harness uses this for the paper's timeout rule), and MaxRows
// bounds total materialization (the Gen strategy's CrossBase cross products
// can exhaust memory long before a clock fires).
//
// # Sublink probes, early termination and caching
//
// Like the PostgreSQL executor Perm ran on, the evaluator caches the result
// of uncorrelated subplans, evaluating them once per query (InitPlan
// behaviour), and hashes uncorrelated "= ANY" sublinks into a set probed per
// outer tuple (hashed subplans).
//
// Under the streaming pipeline a sublink probe pulls rows from the subplan
// and stops at the first deciding row: EXISTS at any row, ANY at a True
// comparison, ALL at a False one, a scalar sublink at its second row. An
// early-terminated probe has seen only part of the subplan's bag, so the
// memo never stores partial bags — it stores the verdict (EXISTS' boolean,
// the scalar value), keyed exactly like the bag memo by the resolved values
// of the subplan's free parameters. Probes whose cached bag outlives one
// test value — uncorrelated ANY/ALL, the hashed = ANY set, and correlated
// ANY/ALL under the per-binding memo — still materialize the subplan: the
// bag answers every test value of a binding, which one verdict cannot.
//
// Beyond PostgreSQL, correlated sublinks — the case §4 of the paper
// identifies as inherently expensive under provenance rewriting — are
// memoized per binding: the subplan's free attribute references are resolved
// against the enclosing scope and their encoded values key a cache of
// results, so outer tuples that agree on every correlated parameter share
// one evaluation instead of re-executing the subplan once per outer tuple.
// DisableSublinkMemo restores the strict re-evaluating SubPlan behaviour
// (the benchmark harness sets it when reproducing the paper's figures,
// whose cost model assumes it); with the memo off, streaming probes still
// early-terminate — the regime the streaming table measures.
//
// # Parallelism
//
// Setting Evaluator.Parallelism > 1 lets one Eval call fan tuple-independent
// work out across a bounded pool of worker goroutines. In streaming mode the
// unit of fan-out is a pipeline segment: the producer streams child rows
// into per-worker mailboxes dealt round-robin (bounded channels — the input
// is never materialized), each worker runs the segment body (where the
// sublink probes live) over its rows into a private output buffer, and the
// buffers merge in worker order, so the output bag is deterministic.
// Segments open at the topmost sublink-bearing selection, projection or
// nested-loop probe of a plan. The materializing engine keeps its original
// scheme of dealing the slots of the materialized input. The invariants
// that keep both safe:
//
//   - Fan-out happens only at the top level of a plan. Workers, segment
//     producers, and any evaluation under a correlated scope run
//     sequentially — nested fan-out would multiply goroutines per outer
//     tuple (and a nested segment would deadlock on the shared worker
//     token pool).
//   - Each worker appends to a private output relation; outputs merge in
//     worker order. Materialized relations are immutable once built.
//   - All workers of one Eval share a single run state: the row budget
//     (atomic) and the memo tables (mutex-guarded). Workers may race to
//     compute the same memo entry; the duplicated work is benign and the
//     publish is serialized.
//
// The public API exposes this as perm.WithParallelism.
package eval

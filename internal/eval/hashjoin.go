package eval

import (
	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// The executor runs equi-joins as hash joins, standing in for the hash join
// operator of the PostgreSQL executor the paper's measurements depend on.
// A join condition is decomposed into equi-key pairs (expressions over one
// side each, compared with = or =n) and a residual condition; if no key
// pairs exist the join falls back to a nested loop. Plain = keys never
// match NULLs; =n keys do (the aggregation rewrite R5 and the set-operation
// rewrites join on =n).

// equiKeys is the decomposition of a join condition.
type equiKeys struct {
	lKeys, rKeys []algebra.Expr
	nullEq       []bool // per key pair: true for =n, false for =
	residual     algebra.Expr
}

// splitEquiJoin extracts hashable key pairs from cond. Conjuncts of the
// form e1 = e2 / e1 =n e2 where e1 references only the left schema and e2
// only the right (or vice versa) become key pairs; everything else stays in
// the residual. Expressions containing sublinks never become keys.
func splitEquiJoin(cond algebra.Expr, lsch, rsch schema.Schema) equiKeys {
	var out equiKeys
	var residual []algebra.Expr
	for _, conj := range conjuncts(cond) {
		var l, r algebra.Expr
		nullAware := false
		switch c := conj.(type) {
		case algebra.Cmp:
			if c.Op == types.CmpEq {
				l, r = c.L, c.R
			}
		case algebra.NullEq:
			l, r = c.L, c.R
			nullAware = true
		}
		if l == nil || algebra.HasSublink(l) || algebra.HasSublink(r) {
			residual = append(residual, conj)
			continue
		}
		switch {
		case sideOnly(l, lsch, rsch) && sideOnly(r, rsch, lsch):
			out.lKeys = append(out.lKeys, l)
			out.rKeys = append(out.rKeys, r)
			out.nullEq = append(out.nullEq, nullAware)
		case sideOnly(l, rsch, lsch) && sideOnly(r, lsch, rsch):
			out.lKeys = append(out.lKeys, r)
			out.rKeys = append(out.rKeys, l)
			out.nullEq = append(out.nullEq, nullAware)
		default:
			residual = append(residual, conj)
		}
	}
	if len(residual) > 0 {
		out.residual = algebra.Conj(residual...)
	}
	return out
}

// conjuncts splits a condition into top-level AND factors.
func conjuncts(e algebra.Expr) []algebra.Expr {
	if a, ok := e.(algebra.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []algebra.Expr{e}
}

// sideOnly reports whether every attribute reference of e resolves in sch,
// at least one reference exists, and none resolves in the other side.
// References that resolve in neither schema are correlated to an enclosing
// scope — those disqualify the expression from being a hash key because the
// key would change per outer binding.
func sideOnly(e algebra.Expr, sch, other schema.Schema) bool {
	ok := true
	refs := 0
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		ref, isRef := x.(algebra.AttrRef)
		if !isRef {
			return ok
		}
		refs++
		if idx, amb := sch.Lookup(ref.Qual, ref.Name); idx < 0 || amb {
			ok = false
		}
		if idx, _ := other.Lookup(ref.Qual, ref.Name); idx >= 0 {
			ok = false
		}
		return ok
	})
	return ok && refs > 0
}

// hashJoin executes l ⋈ r (or l ⟕ r when leftOuter) using the extracted
// keys. The caller guarantees len(keys.lKeys) > 0. The build side hashes
// sequentially; the probe side fans out across workers when the evaluator
// parallelizes (the hash table is read-only during the probe).
//
// perm:hot
func (e *Evaluator) hashJoin(o algebra.Op, l, r *rel.Relation, keys equiKeys, leftOuter bool, outer []frame) (*rel.Relation, error) {
	sch := o.Schema()
	rightWidth := r.Schema.Len()

	type bucket struct {
		tuples []rel.Tuple
		counts []int
	}
	// Build side: hash the right input on its key expressions.
	table := map[string]*bucket{}
	err := r.Each(func(rt rel.Tuple, rn int) error {
		if err := e.tick(); err != nil {
			return err
		}
		key, ok, err := e.joinKey(keys.rKeys, keys.nullEq, r.Schema, rt, outer)
		if err != nil {
			return err
		}
		if !ok {
			return nil // a plain-= key is NULL; the row cannot match
		}
		b := table[key]
		if b == nil {
			b = &bucket{}
			table[key] = b
		}
		b.tuples = append(b.tuples, rt)
		b.counts = append(b.counts, rn)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Probe side.
	probe := func(w *Evaluator, out *rel.Relation, lt rel.Tuple, ln int) error {
		if err := w.tick(); err != nil {
			return err
		}
		matched := false
		key, ok, err := w.joinKey(keys.lKeys, keys.nullEq, l.Schema, lt, outer)
		if err != nil {
			return err
		}
		if ok {
			if b := table[key]; b != nil {
				for i, rt := range b.tuples {
					row := lt.Concat(rt)
					if keys.residual != nil {
						keep, err := w.evalCond(keys.residual, sch, row, outer)
						if err != nil {
							return err
						}
						if keep != types.True {
							continue
						}
					}
					matched = true
					if err := w.add(out, row, ln*b.counts[i]); err != nil {
						return err
					}
				}
			}
		}
		if leftOuter && !matched {
			return w.add(out, lt.Concat(rel.Nulls(rightWidth)), ln)
		}
		return nil
	}
	if out, done, err := e.parallelEach(l, sch, outer, probe); done {
		return out, err
	}
	out := rel.New(sch)
	if err := l.Each(func(lt rel.Tuple, ln int) error { return probe(e, out, lt, ln) }); err != nil {
		return nil, err
	}
	return out, nil
}

// joinKey evaluates the key expressions for one row. ok is false when a
// plain-= key is NULL (such rows match nothing).
func (e *Evaluator) joinKey(keyExprs []algebra.Expr, nullEq []bool, sch schema.Schema, t rel.Tuple, outer []frame) (string, bool, error) {
	buf := make([]byte, 0, 16*len(keyExprs))
	for i, kx := range keyExprs {
		v, err := e.evalExpr(kx, sch, t, outer)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() && !nullEq[i] {
			return "", false, nil
		}
		buf = v.AppendKey(buf)
	}
	return string(buf), true, nil
}

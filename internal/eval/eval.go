package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// DB is the relation resolver the executor reads base relations from.
// *catalog.Catalog implements it.
type DB interface {
	Relation(name string) (*rel.Relation, error)
}

// ErrCanceled is returned when the evaluation context is canceled (the
// benchmark harness uses this for the paper's per-query timeout rule).
var ErrCanceled = errors.New("eval: canceled")

// ErrBudget is returned when evaluation materializes more rows than
// MaxRows allows. The Gen strategy's CrossBase cross products can exceed
// memory long before any timeout fires; the harness treats budget
// exhaustion like a timeout (the paper's exclusion rule).
var ErrBudget = errors.New("eval: row budget exceeded")

// Evaluator executes algebra plans against a DB. An Evaluator is not safe
// for concurrent Eval calls; the concurrency an Eval call uses internally
// is configured with Parallelism.
type Evaluator struct {
	db  DB
	ctx context.Context

	// DisableHashedAny turns off the hashed-subplan execution of
	// uncorrelated = ANY sublinks — an ablation knob; PostgreSQL (and
	// hence the paper's measurements) always hashes them.
	DisableHashedAny bool

	// DisableSublinkMemo turns off the per-binding memoization of
	// correlated sublink results. With it set, correlated subplans
	// re-evaluate for every outer tuple — the PostgreSQL SubPlan behaviour
	// the paper's measurements rely on; the benchmark harness sets it to
	// reproduce the paper's figures.
	DisableSublinkMemo bool

	// DisableStreaming switches the executor from the default push-based
	// streaming pipeline back to operator-at-a-time full materialization
	// (every operator's output built as a counted bag before its parent
	// runs). The materializing mode is kept as an ablation/regression
	// baseline; the benchmark harness compares the two (permbench -fig
	// stream).
	DisableStreaming bool

	// Parallelism is the number of worker goroutines one Eval call may use
	// for tuple-independent work: selection and projection over expensive
	// (sublink) expressions, hash-join builds and probes, and aggregate
	// input evaluation. 0 or 1 evaluates sequentially.
	Parallelism int

	// MaxRows caps the total rows materialized across all operators of one
	// Eval call; 0 means unlimited. Exceeding it returns ErrBudget. The cap
	// is approximate under parallelism: workers racing past a memo miss may
	// transiently duplicate a subplan evaluation and charge it twice, so
	// runs close to the budget can exceed it slightly earlier than a
	// sequential run would.
	MaxRows int

	// shared is the per-Eval run state (row budget, memo tables), shared
	// by every worker of one evaluation.
	shared *runShared
	// worker marks an evaluator forked into a worker goroutine; workers
	// never fan out again.
	worker bool

	ticks int
}

// New returns an evaluator over db. The evaluator has no cancellation
// context until WithContext installs the caller's; request paths (the
// service, the benchmark harness) always do.
func New(db DB) *Evaluator {
	return &Evaluator{db: db}
}

// WithContext returns a copy of the evaluator that checks ctx for
// cancellation while executing.
func (e *Evaluator) WithContext(ctx context.Context) *Evaluator {
	cp := *e
	cp.ctx = ctx
	return &cp
}

// Eval executes the plan and returns its materialized result.
func (e *Evaluator) Eval(op algebra.Op) (*rel.Relation, error) {
	// A request whose deadline already passed (e.g. one that waited in a
	// service queue) must abort before any work, not after the first 1024
	// ticks.
	select {
	case <-e.done():
		return nil, fmt.Errorf("%w: %v", ErrCanceled, e.ctx.Err())
	default:
	}
	e.shared = newRunShared()
	if e.Parallelism > 1 {
		e.shared.sem = make(chan struct{}, e.Parallelism)
	}
	return e.eval(op, nil)
}

// Stats describes the materialization behaviour of one Eval call.
type Stats struct {
	// PeakRows counts the rows of resident state the run accumulated:
	// materialized bags (pipeline-breaker buffers, hash-join builds,
	// set-op inputs, memoized sublink results, parallel-worker output
	// buffers, the final result) plus the streaming breakers' in-operator
	// state (aggregate groups, DISTINCT dedup keys, top-N heap fills).
	// That state lives until Eval returns, so the total is the run's
	// high-water mark of resident rows. Under the materializing executor
	// every operator output counts, which is what the streaming pipeline
	// avoids.
	PeakRows int64
}

// LastStats reports the materialization counters of the most recent Eval
// call on this evaluator.
func (e *Evaluator) LastStats() Stats {
	if e.shared == nil {
		return Stats{}
	}
	return Stats{PeakRows: e.shared.rows.Load()}
}

// frame is one level of the correlation scope stack: the schema and current
// tuple of an enclosing operator's input.
type frame struct {
	sch schema.Schema
	t   rel.Tuple
}

// tick periodically polls the context so multi-hour plans (the Gen strategy
// at larger scales) can be aborted, mirroring the paper's 6-hour cutoff.
func (e *Evaluator) tick() error {
	e.ticks++
	if e.ticks&0x3ff != 0 {
		return nil
	}
	select {
	case <-e.done():
		return fmt.Errorf("%w: %v", ErrCanceled, e.ctx.Err())
	default:
		return nil
	}
}

// done returns the evaluator's cancellation channel; a nil channel (never
// ready) when no context was installed, so the selects above fall through
// to their default case.
func (e *Evaluator) done() <-chan struct{} {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Done()
}

// charge counts n rows of resident executor state — materialized bag slots,
// streaming breaker state (aggregate groups, dedup keys, heap fills) —
// against the row budget and the PeakRows counter.
func (e *Evaluator) charge(n int) error {
	if e.shared != nil {
		if rows := e.shared.rows.Add(int64(n)); e.MaxRows > 0 && rows > int64(e.MaxRows) {
			return fmt.Errorf("%w (%d rows)", ErrBudget, e.MaxRows)
		}
	}
	return nil
}

// add materializes one output row, charging it against the row budget.
// It is also a cancellation checkpoint: every materialization path — the
// final result bag, pipeline-breaker buffers, parallel-worker output
// buffers — funnels through here, so a canceled context stops bag fills
// even when the producing operator has no checkpoint of its own.
func (e *Evaluator) add(out *rel.Relation, t rel.Tuple, n int) error {
	if err := e.tick(); err != nil {
		return err
	}
	if err := e.charge(1); err != nil {
		return err
	}
	out.Add(t, n)
	return nil
}

// eval materializes the plan's result as a counted bag. In streaming mode
// (the default) the rows are produced by the push pipeline and only this
// bag is materialized; with DisableStreaming every operator materializes
// its own output recursively (operator-at-a-time execution).
func (e *Evaluator) eval(op algebra.Op, outer []frame) (*rel.Relation, error) {
	if e.DisableStreaming {
		return e.evalMat(op, outer)
	}
	switch o := op.(type) {
	case *algebra.Scan:
		// Base relations are materialized in the catalog already; a view
		// costs nothing and charges nothing.
		base, err := e.db.Relation(o.Name)
		if err != nil {
			return nil, err
		}
		return base.WithSchema(o.Schema()), nil
	case *algebra.Order:
		// A bag has no intrinsic order; Order is honoured by Limit above it
		// and by result presentation.
		return e.eval(o.Child, outer)
	}
	out := rel.New(op.Schema())
	if err := e.stream(op, outer, func(t rel.Tuple, n int) error {
		return e.add(out, t, n)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// evalMat is the materializing (operator-at-a-time) evaluator.
func (e *Evaluator) evalMat(op algebra.Op, outer []frame) (*rel.Relation, error) {
	if err := e.tick(); err != nil {
		return nil, err
	}
	switch o := op.(type) {
	case *algebra.Scan:
		base, err := e.db.Relation(o.Name)
		if err != nil {
			return nil, err
		}
		return base.WithSchema(o.Schema()), nil
	case *algebra.Values:
		out := rel.New(o.Sch)
		for _, row := range o.Rows {
			if len(row) != o.Sch.Len() {
				return nil, fmt.Errorf("eval: VALUES row width %d, schema width %d", len(row), o.Sch.Len())
			}
			t := make(rel.Tuple, len(row))
			for i, x := range row {
				v, err := e.evalExpr(x, schema.Schema{}, nil, outer)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Add(t, 1)
		}
		return out, nil
	case *algebra.Select:
		return e.evalSelect(o, outer)
	case *algebra.Project:
		return e.evalProject(o, outer)
	case *algebra.Cross:
		return e.evalCross(o, outer)
	case *algebra.Join:
		return e.evalJoin(o, outer)
	case *algebra.LeftJoin:
		return e.evalLeftJoin(o, outer)
	case *algebra.Aggregate:
		return e.evalAggregate(o, outer)
	case *algebra.SetOp:
		return e.evalSetOp(o, outer)
	case *algebra.Order:
		// A bag has no intrinsic order; Order is honoured by Limit above it
		// and by result presentation.
		return e.eval(o.Child, outer)
	case *algebra.Limit:
		return e.evalLimit(o, outer)
	default:
		return nil, fmt.Errorf("eval: unsupported operator %T", op)
	}
}

func (e *Evaluator) evalSelect(o *algebra.Select, outer []frame) (*rel.Relation, error) {
	in, err := e.eval(o.Child, outer)
	if err != nil {
		return nil, err
	}
	emit := func(w *Evaluator, out *rel.Relation, t rel.Tuple, n int) error {
		if err := w.tick(); err != nil {
			return err
		}
		keep, err := w.evalCond(o.Cond, in.Schema, t, outer)
		if err != nil {
			return err
		}
		if keep == types.True {
			return w.add(out, t, n)
		}
		return nil
	}
	if out, done, err := e.parallelEach(in, o.Schema(), outer, emit); done {
		return out, err
	}
	out := rel.New(o.Schema())
	if err := in.Each(func(t rel.Tuple, n int) error { return emit(e, out, t, n) }); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Evaluator) evalProject(o *algebra.Project, outer []frame) (*rel.Relation, error) {
	in, err := e.eval(o.Child, outer)
	if err != nil {
		return nil, err
	}
	emit := func(w *Evaluator, out *rel.Relation, t rel.Tuple, n int) error {
		if err := w.tick(); err != nil {
			return err
		}
		row := make(rel.Tuple, len(o.Cols))
		for i, c := range o.Cols {
			v, err := w.evalExpr(c.E, in.Schema, t, outer)
			if err != nil {
				return err
			}
			row[i] = v
		}
		if o.Distinct {
			return w.add(out, row, 1) // collapsed below
		}
		return w.add(out, row, n)
	}
	out, done, err := e.parallelEach(in, o.Schema(), outer, emit)
	if !done {
		out = rel.New(o.Schema())
		err = in.Each(func(t rel.Tuple, n int) error { return emit(e, out, t, n) })
	}
	if err != nil {
		return nil, err
	}
	if o.Distinct {
		out = out.Distinct()
	}
	return out, nil
}

func (e *Evaluator) evalCross(o *algebra.Cross, outer []frame) (*rel.Relation, error) {
	l, r, err := e.evalPair(o.L, o.R, outer)
	if err != nil {
		return nil, err
	}
	out := rel.New(o.Schema())
	err = l.Each(func(lt rel.Tuple, ln int) error {
		return r.Each(func(rt rel.Tuple, rn int) error {
			if err := e.tick(); err != nil {
				return err
			}
			return e.add(out, lt.Concat(rt), ln*rn)
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Evaluator) evalJoin(o *algebra.Join, outer []frame) (*rel.Relation, error) {
	l, r, err := e.evalPair(o.L, o.R, outer)
	if err != nil {
		return nil, err
	}
	if keys := splitEquiJoin(o.Cond, o.L.Schema(), o.R.Schema()); len(keys.lKeys) > 0 {
		return e.hashJoin(o, l, r, keys, false, outer)
	}
	sch := o.Schema()
	emit := func(w *Evaluator, out *rel.Relation, lt rel.Tuple, ln int) error {
		return r.Each(func(rt rel.Tuple, rn int) error {
			if err := w.tick(); err != nil {
				return err
			}
			row := lt.Concat(rt)
			keep, err := w.evalCond(o.Cond, sch, row, outer)
			if err != nil {
				return err
			}
			if keep == types.True {
				return w.add(out, row, ln*rn)
			}
			return nil
		})
	}
	if out, done, err := e.parallelEach(l, sch, outer, emit); done {
		return out, err
	}
	out := rel.New(sch)
	if err := l.Each(func(lt rel.Tuple, ln int) error { return emit(e, out, lt, ln) }); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Evaluator) evalLeftJoin(o *algebra.LeftJoin, outer []frame) (*rel.Relation, error) {
	l, r, err := e.evalPair(o.L, o.R, outer)
	if err != nil {
		return nil, err
	}
	if keys := splitEquiJoin(o.Cond, o.L.Schema(), o.R.Schema()); len(keys.lKeys) > 0 {
		return e.hashJoin(o, l, r, keys, true, outer)
	}
	sch := o.Schema()
	rightWidth := o.R.Schema().Len()
	emit := func(w *Evaluator, out *rel.Relation, lt rel.Tuple, ln int) error {
		matched := false
		err := r.Each(func(rt rel.Tuple, rn int) error {
			if err := w.tick(); err != nil {
				return err
			}
			row := lt.Concat(rt)
			keep, err := w.evalCond(o.Cond, sch, row, outer)
			if err != nil {
				return err
			}
			if keep == types.True {
				matched = true
				return w.add(out, row, ln*rn)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !matched {
			return w.add(out, lt.Concat(rel.Nulls(rightWidth)), ln)
		}
		return nil
	}
	if out, done, err := e.parallelEach(l, sch, outer, emit); done {
		return out, err
	}
	out := rel.New(sch)
	if err := l.Each(func(lt rel.Tuple, ln int) error { return emit(e, out, lt, ln) }); err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Evaluator) evalSetOp(o *algebra.SetOp, outer []frame) (*rel.Relation, error) {
	l, r, err := e.evalPair(o.L, o.R, outer)
	if err != nil {
		return nil, err
	}
	if l.Schema.Len() != r.Schema.Len() {
		return nil, fmt.Errorf("eval: %s of width %d and width %d", o.Kind, l.Schema.Len(), r.Schema.Len())
	}
	out := rel.New(o.Schema())
	switch o.Kind {
	case algebra.Union:
		if err := l.Each(func(t rel.Tuple, n int) error { return e.add(out, t, n) }); err != nil {
			return nil, err
		}
		if err := r.Each(func(t rel.Tuple, n int) error { return e.add(out, t, n) }); err != nil {
			return nil, err
		}
	case algebra.Intersect:
		if err := l.Each(func(t rel.Tuple, n int) error {
			if m := r.Count(t); m > 0 {
				return e.add(out, t, min(n, m))
			}
			return nil
		}); err != nil {
			return nil, err
		}
	case algebra.Except:
		if err := l.Each(func(t rel.Tuple, n int) error {
			m := r.Count(t)
			if o.Bag {
				if n > m {
					return e.add(out, t, n-m)
				}
			} else if m == 0 {
				return e.add(out, t, n)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("eval: unknown set operation %v", o.Kind)
	}
	if !o.Bag {
		out = out.Distinct()
	}
	return out, nil
}

func (e *Evaluator) evalLimit(o *algebra.Limit, outer []frame) (*rel.Relation, error) {
	// When the ordering column is projected away above the Order, cut below
	// the projections, where the key is still visible.
	if pushed, ok := algebra.PushLimit(o); ok {
		return e.eval(pushed, outer)
	}
	// The order a Limit honours may sit below projection wrappers — the
	// derived-table case `SELECT a FROM (… ORDER BY a DESC) t LIMIT 2`.
	keys := algebra.LiftOrderKeys(o.Child)
	in, err := e.eval(o.Child, outer)
	if err != nil {
		return nil, err
	}
	rows, err := e.sortedRows(in, keys, outer)
	if err != nil {
		return nil, err
	}
	out := rel.New(o.Schema())
	for _, t := range limitSlice(rows, o.N, o.Offset) {
		out.Add(t, 1)
	}
	return out, nil
}

// limitSlice applies OFFSET and LIMIT (n < 0 means no limit) to sorted rows.
func limitSlice(rows []rel.Tuple, n, offset int) []rel.Tuple {
	if offset >= len(rows) {
		return nil
	}
	rows = rows[offset:]
	if n >= 0 && n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// sortRow pairs a tuple with its evaluated sort-key values.
type sortRow struct {
	t    rel.Tuple
	keys rel.Tuple
}

// lessSortRows is the total order of ORDER BY: key comparison with NULLs
// last (PostgreSQL's default), ties broken by tuple key so the order — and
// therefore any LIMIT cut through it — is deterministic.
func lessSortRows(keys []algebra.SortKey, a, b sortRow) bool {
	for k := range keys {
		cmp, ok := types.Compare(a.keys[k], b.keys[k])
		if !ok {
			an := a.keys[k].IsNull()
			bn := b.keys[k].IsNull()
			if an != bn {
				return bn != keys[k].Desc
			}
			continue
		}
		if cmp != 0 {
			if keys[k].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
	}
	return a.t.Key() < b.t.Key()
}

// sortKeyVals evaluates the key expressions for one tuple.
func (e *Evaluator) sortKeyVals(keys []algebra.SortKey, sch schema.Schema, t rel.Tuple, outer []frame) (rel.Tuple, error) {
	kv := make(rel.Tuple, len(keys))
	for i, k := range keys {
		v, err := e.evalExpr(k.E, sch, t, outer)
		if err != nil {
			return nil, err
		}
		kv[i] = v
	}
	return kv, nil
}

// sortedRows expands the bag and sorts by keys (stable; ties in key order
// fall back to tuple key so output is deterministic).
func (e *Evaluator) sortedRows(in *rel.Relation, keys []algebra.SortKey, outer []frame) ([]rel.Tuple, error) {
	var rows []sortRow
	err := in.Each(func(t rel.Tuple, n int) error {
		kv, err := e.sortKeyVals(keys, in.Schema, t, outer)
		if err != nil {
			return err
		}
		for ; n > 0; n-- {
			rows = append(rows, sortRow{t: t, keys: kv})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return lessSortRows(keys, rows[i], rows[j]) })
	out := make([]rel.Tuple, len(rows))
	for i, r := range rows {
		out[i] = r.t
	}
	return out, nil
}

// SortTuples expands a materialized relation and sorts it by the given
// keys — used by result presentation to honour a query's ORDER BY after
// the bag has been materialized. Keys must be sublink-free.
func SortTuples(in *rel.Relation, keys []algebra.SortKey) ([]rel.Tuple, error) {
	e := New(nopDB{})
	return e.sortedRows(in, keys, nil)
}

type nopDB struct{}

func (nopDB) Relation(name string) (*rel.Relation, error) {
	return nil, fmt.Errorf("eval: no database attached")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

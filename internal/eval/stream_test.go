package eval

import (
	"errors"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/opt"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/sql"
	"perm/internal/synth"
	"perm/internal/types"
)

// evalMode runs one compiled plan under an executor configuration.
func evalMode(t *testing.T, cat *catalog.Catalog, plan algebra.Op, materialize, memo bool, par int) *rel.Relation {
	t.Helper()
	ev := New(cat)
	ev.DisableStreaming = materialize
	ev.DisableSublinkMemo = !memo
	ev.Parallelism = par
	out, err := ev.Eval(plan)
	if err != nil {
		t.Fatalf("eval (mat=%v memo=%v par=%d): %v\nplan:\n%s", materialize, memo, par, err, algebra.Indent(plan))
	}
	return out
}

// TestStreamingMatchesMaterializing: on every equivalence query and every
// strategy, the streaming pipeline must produce the bag the materializing
// executor produces, memoized or not, sequential or fanned out.
func TestStreamingMatchesMaterializing(t *testing.T) {
	cat := figure3DB()
	for _, query := range equivalenceQueries() {
		for _, strategy := range []string{"", "Gen", "Left", "Move", "Unn", "UnnX"} {
			tr, err := sql.Compile(cat, query)
			if err != nil {
				t.Fatalf("compile %q: %v", query, err)
			}
			plan := tr.Plan
			if strategy != "" {
				strat, err := rewrite.ParseStrategy(strategy)
				if err != nil {
					t.Fatal(err)
				}
				res, err := rewrite.Rewrite(plan, strat)
				if errors.Is(err, rewrite.ErrNotApplicable) {
					continue
				}
				if err != nil {
					t.Fatalf("rewrite %q: %v", query, err)
				}
				plan = res.Plan
			}
			plan = opt.Optimize(plan)
			want := evalMode(t, cat, plan, true, false, 1)
			for _, mode := range []struct {
				memo bool
				par  int
			}{{false, 1}, {true, 1}, {false, 4}, {true, 4}} {
				got := evalMode(t, cat, plan, false, mode.memo, mode.par)
				if !got.Equal(want) {
					t.Errorf("streaming (memo=%v par=%d) diverges on %q/%s:\n got %s\nwant %s",
						mode.memo, mode.par, query, strategy, got, want)
				}
			}
		}
	}
}

// TestStreamingMatchesMaterializingSynth covers the larger correlated
// workload, where fan-out and the per-binding memo actually engage.
func TestStreamingMatchesMaterializingSynth(t *testing.T) {
	w := synth.Workload{InputSize: 120, SublinkSize: 60, Domain: 8, Seed: 5}
	cat := w.Catalog()
	for _, query := range []string{w.Q1(0), w.Q2(0), w.Q3(0), w.Q4(0)} {
		tr, err := sql.Compile(cat, query)
		if err != nil {
			t.Fatal(err)
		}
		plan := opt.Optimize(tr.Plan)
		want := evalMode(t, cat, plan, true, false, 1)
		for _, par := range []int{1, 4} {
			for _, memo := range []bool{false, true} {
				got := evalMode(t, cat, plan, false, memo, par)
				if !got.Equal(want) {
					t.Errorf("streaming (memo=%v par=%d) diverges on %q", memo, par, query)
				}
			}
		}
	}
}

// TestExistsProbeEarlyTermination: an EXISTS-dominated correlated query
// must materialize at least an order of magnitude fewer rows under the
// streaming executor — the probes stop at their first witness instead of
// building per-binding result bags.
func TestExistsProbeEarlyTermination(t *testing.T) {
	w := synth.Workload{InputSize: 200, SublinkSize: 200, Domain: 16, Seed: 2}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q4(0))
	if err != nil {
		t.Fatal(err)
	}
	plan := opt.Optimize(tr.Plan)

	mat := New(cat)
	mat.DisableStreaming = true
	mat.DisableSublinkMemo = true
	matOut, err := mat.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	str := New(cat)
	str.DisableSublinkMemo = true
	strOut, err := str.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strOut.Equal(matOut) {
		t.Fatalf("streaming and materializing bags differ")
	}
	mp, sp := mat.LastStats().PeakRows, str.LastStats().PeakRows
	if sp == 0 || mp < 10*sp {
		t.Errorf("peak rows: materializing %d, streaming %d — want >= 10x reduction", mp, sp)
	}
}

// TestLimitStopsPipeline: a satisfied LIMIT must cease upstream work. The
// row budget is the witness: the streaming run only materializes the limit
// output, while the materializing run would need the full cross product.
func TestLimitStopsPipeline(t *testing.T) {
	w := synth.Workload{InputSize: 300, SublinkSize: 300, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, `SELECT * FROM r1, r2 LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(cat)
	ev.MaxRows = 100 // far below the 90000-row cross product
	out, err := ev.Eval(tr.Plan)
	if err != nil {
		t.Fatalf("streaming limit should stop before the budget: %v", err)
	}
	if out.Card() != 5 {
		t.Errorf("limit card = %d", out.Card())
	}
	mat := New(cat)
	mat.DisableStreaming = true
	mat.MaxRows = 100
	if _, err := mat.Eval(tr.Plan); !errors.Is(err, ErrBudget) {
		t.Fatalf("materializing executor should exhaust the budget, got %v", err)
	}
}

// TestTopNHeapMatchesSort: LIMIT/OFFSET over ORDER BY must select exactly
// the rows the materializing full sort selects, including the deterministic
// tie-break.
func TestTopNHeapMatchesSort(t *testing.T) {
	w := synth.Workload{InputSize: 150, SublinkSize: 10, Domain: 5, Seed: 9}
	cat := w.Catalog()
	for _, q := range []string{
		`SELECT a, b FROM r1 ORDER BY b LIMIT 7`,
		`SELECT a, b FROM r1 ORDER BY b DESC, a LIMIT 4 OFFSET 3`,
		`SELECT a, b FROM r1 ORDER BY a OFFSET 140`,
		`SELECT a, b FROM r1 ORDER BY b LIMIT 0`,
		`SELECT a, b FROM r1 ORDER BY b LIMIT 500 OFFSET 1`,
	} {
		tr, err := sql.Compile(cat, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := evalMode(t, cat, tr.Plan, true, false, 1)
		got := evalMode(t, cat, tr.Plan, false, false, 1)
		if !got.Equal(want) {
			t.Errorf("%s: heap and sort disagree\n got %s\nwant %s", q, got, want)
		}
	}
}

// TestLimitOffsetAlgebra exercises the Offset field at the operator level,
// including OFFSET without LIMIT (N < 0).
func TestLimitOffsetAlgebra(t *testing.T) {
	c := figure3DB()
	ord := &algebra.Order{Child: scan(t, c, "r"),
		Keys: []algebra.SortKey{{E: algebra.Attr("a")}}}
	for _, tc := range []struct {
		n, offset int
		want      []rel.Tuple
	}{
		{1, 1, []rel.Tuple{ints(2, 1)}},
		{-1, 2, []rel.Tuple{ints(3, 2)}},
		{-1, 0, []rel.Tuple{ints(1, 1), ints(2, 1), ints(3, 2)}},
		{2, 5, nil},
	} {
		op := &algebra.Limit{Child: ord, N: tc.n, Offset: tc.offset}
		for _, materialize := range []bool{false, true} {
			ev := New(c)
			ev.DisableStreaming = materialize
			out, err := ev.Eval(op)
			if err != nil {
				t.Fatalf("limit %d offset %d: %v", tc.n, tc.offset, err)
			}
			want := rel.FromTuples(out.Schema, tc.want...)
			if !out.Equal(want) {
				t.Errorf("limit %d offset %d (mat=%v) = %s, want %s", tc.n, tc.offset, materialize, out, want)
			}
		}
	}
}

// TestDerivedTableOrderPropagatesToLimit is the executor half of the
// derived-table ORDER BY regression: the Limit must honour an Order sitting
// below the subquery's re-qualifying projection wrapper. The pre-fix
// executor returned the canonical-order rows (1 and 2) instead.
func TestDerivedTableOrderPropagatesToLimit(t *testing.T) {
	cat := figure3DB()
	tr, err := sql.Compile(cat, `SELECT a FROM (SELECT a FROM r ORDER BY a DESC) t LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, materialize := range []bool{false, true} {
		ev := New(cat)
		ev.DisableStreaming = materialize
		out, err := ev.Eval(tr.Plan)
		if err != nil {
			t.Fatal(err)
		}
		want := rel.FromTuples(out.Schema, ints(3), ints(2))
		if !out.Equal(want) {
			t.Errorf("mat=%v: derived-table ORDER BY dropped: got %s, want %s", materialize, out, want)
		}
	}
}

// TestScalarProbeStopsAtSecondRow: the streaming scalar probe must fail on
// a multi-row subquery without materializing it all, and agree with the
// materializing executor on the single-row case.
func TestScalarProbeStopsAtSecondRow(t *testing.T) {
	c := figure3DB()
	multi := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"),
			R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: multi}},
	}
	if _, err := New(c).Eval(op); err == nil {
		t.Fatal("scalar sublink over 3 tuples should error under streaming")
	}
	single := algebra.NewProject(
		&algebra.Select{Child: scan(t, c, "s"),
			Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.IntConst(2)}},
		algebra.KeepCol("c"))
	ok := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"),
			R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: single}},
	}
	out := mustEval(t, c, ok)
	if out.Card() != 1 || out.Count(ints(2, 1)) != 1 {
		t.Errorf("scalar probe result = %s", out)
	}
}

// TestStreamingCorrelatedMemoCounts mirrors the materializing memo test:
// the verdict caches must keep the per-binding evaluation counts.
func TestStreamingCorrelatedMemoCounts(t *testing.T) {
	c := figure3DB()
	cdb := &countingDB{DB: c}
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}
	op := &algebra.Select{Child: scan(t, c, "r"),
		Cond: algebra.Sublink{Kind: algebra.ExistsSublink, Query: algebra.NewProject(sub, algebra.KeepCol("c"))}}
	// R carries bindings b = 1, 1, 2: the verdict cache answers the second
	// b=1 probe without touching s again.
	if _, err := New(cdb).Eval(op); err != nil {
		t.Fatal(err)
	}
	if cdb.counts["s"] != 2 {
		t.Errorf("correlated EXISTS probed s %d times, want 2 (verdict-cached per binding)", cdb.counts["s"])
	}
}

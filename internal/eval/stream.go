package eval

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// emitFn is the consumer callback of the push pipeline: an operator calls
// it once per produced row group (a tuple with multiplicity n > 0).
// Returning errStop tells the producer that the consumer is satisfied;
// returning any other error aborts the whole evaluation.
type emitFn func(t rel.Tuple, n int) error

// errStop is the pipeline stop signal. It travels the same path as real
// errors — up through every producer of the pipeline, ending the scans at
// the bottom — and is absorbed by the operator that raised it (a satisfied
// LIMIT, an EXISTS probe that found its row). It must never escape Eval.
var errStop = errors.New("eval: pipeline stop")

// stream pushes the plan's output rows into emit. Pipeline breakers — sort
// (Order under Limit), aggregation, hash-join and nested-loop build sides,
// set-operation inputs, DISTINCT's dedup state — materialize exactly the
// state their semantics force; everything else forwards rows one by one.
func (e *Evaluator) stream(op algebra.Op, outer []frame, emit emitFn) error {
	if err := e.tick(); err != nil {
		return err
	}
	switch o := op.(type) {
	case *algebra.Scan:
		base, err := e.db.Relation(o.Name)
		if err != nil {
			return err
		}
		return base.WithSchema(o.Schema()).Each(func(t rel.Tuple, n int) error {
			if err := e.tick(); err != nil {
				return err
			}
			return emit(t, n)
		})
	case *algebra.Values:
		for _, row := range o.Rows {
			if len(row) != o.Sch.Len() {
				return fmt.Errorf("eval: VALUES row width %d, schema width %d", len(row), o.Sch.Len())
			}
			t := make(rel.Tuple, len(row))
			for i, x := range row {
				v, err := e.evalExpr(x, schema.Schema{}, nil, outer)
				if err != nil {
					return err
				}
				t[i] = v
			}
			if err := emit(t, 1); err != nil {
				return err
			}
		}
		return nil
	case *algebra.Select:
		return e.streamSelect(o, outer, emit)
	case *algebra.Project:
		return e.streamProject(o, outer, emit)
	case *algebra.Cross:
		return e.streamCross(o, outer, emit)
	case *algebra.Join:
		return e.streamJoin(o.L, o.R, o.Cond, false, outer, emit)
	case *algebra.LeftJoin:
		return e.streamJoin(o.L, o.R, o.Cond, true, outer, emit)
	case *algebra.Aggregate:
		return e.streamAggregate(o, outer, emit)
	case *algebra.SetOp:
		return e.streamSetOp(o, outer, emit)
	case *algebra.Order:
		// A bag has no intrinsic order; Order is honoured by Limit above it
		// and by result presentation.
		return e.stream(o.Child, outer, emit)
	case *algebra.Limit:
		return e.streamLimit(o, outer, emit)
	default:
		return fmt.Errorf("eval: unsupported operator %T", op)
	}
}

// perm:hot
func (e *Evaluator) streamSelect(o *algebra.Select, outer []frame, emit emitFn) error {
	sch := o.Child.Schema()
	apply := func(w *Evaluator, t rel.Tuple, n int, out emitFn) error {
		if err := w.tick(); err != nil {
			return err
		}
		keep, err := w.evalCond(o.Cond, sch, t, outer)
		if err != nil {
			return err
		}
		if keep == types.True {
			return out(t, n)
		}
		return nil
	}
	if e.segmentFanOut(outer) > 0 && algebra.HasSublink(o.Cond) {
		return e.parallelSegment(o.Child, o.Schema(), outer, emit, apply)
	}
	return e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
		return apply(e, t, n, emit)
	})
}

// perm:hot
func (e *Evaluator) streamProject(o *algebra.Project, outer []frame, emit emitFn) error {
	sch := o.Child.Schema()
	hasSublink := false
	for _, c := range o.Cols {
		if algebra.HasSublink(c.E) {
			hasSublink = true
			break
		}
	}
	if o.Distinct {
		emit = e.dedupEmit(emit)
	}
	apply := func(w *Evaluator, t rel.Tuple, n int, out emitFn) error {
		if err := w.tick(); err != nil {
			return err
		}
		row := make(rel.Tuple, len(o.Cols))
		for i, c := range o.Cols {
			v, err := w.evalExpr(c.E, sch, t, outer)
			if err != nil {
				return err
			}
			row[i] = v
		}
		return out(row, n)
	}
	if e.segmentFanOut(outer) > 0 && hasSublink {
		// Dedup happens in the wrapped emit at merge time, after the
		// barrier, so DISTINCT stays correct under fan-out.
		return e.parallelSegment(o.Child, o.Schema(), outer, emit, apply)
	}
	return e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
		return apply(e, t, n, emit)
	})
}

func (e *Evaluator) streamCross(o *algebra.Cross, outer []frame, emit emitFn) error {
	r, err := e.eval(o.R, outer) // build side: the only materialized state
	if err != nil {
		return err
	}
	return e.stream(o.L, outer, func(lt rel.Tuple, ln int) error {
		return r.Each(func(rt rel.Tuple, rn int) error {
			if err := e.tick(); err != nil {
				return err
			}
			return emit(lt.Concat(rt), ln*rn)
		})
	})
}

// streamJoin runs l ⋈ r (or l ⟕ r) with r as the materialized build side
// and l streaming through the probe. Equi-key conditions use a hash table;
// everything else probes with a nested loop.
func (e *Evaluator) streamJoin(l, r algebra.Op, cond algebra.Expr, leftOuter bool, outer []frame, emit emitFn) error {
	joined := l.Schema().Concat(r.Schema())
	rightWidth := r.Schema().Len()
	rRel, err := e.eval(r, outer)
	if err != nil {
		return err
	}
	keys := splitEquiJoin(cond, l.Schema(), r.Schema())
	if len(keys.lKeys) > 0 {
		return e.streamHashJoin(l, rRel, keys, leftOuter, joined, rightWidth, outer, emit)
	}
	apply := func(w *Evaluator, lt rel.Tuple, ln int, out emitFn) error {
		matched := false
		err := rRel.Each(func(rt rel.Tuple, rn int) error {
			if err := w.tick(); err != nil {
				return err
			}
			row := lt.Concat(rt)
			keep, err := w.evalCond(cond, joined, row, outer)
			if err != nil {
				return err
			}
			if keep == types.True {
				matched = true
				return out(row, ln*rn)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if leftOuter && !matched {
			return out(lt.Concat(rel.Nulls(rightWidth)), ln)
		}
		return nil
	}
	if e.segmentFanOut(outer) > 0 && algebra.HasSublink(cond) {
		return e.parallelSegment(l, joined, outer, emit, apply)
	}
	return e.stream(l, outer, func(lt rel.Tuple, ln int) error {
		return apply(e, lt, ln, emit)
	})
}

// perm:hot
func (e *Evaluator) streamHashJoin(l algebra.Op, rRel *rel.Relation, keys equiKeys, leftOuter bool, joined schema.Schema, rightWidth int, outer []frame, emit emitFn) error {
	type bucket struct {
		tuples []rel.Tuple
		counts []int
	}
	table := map[string]*bucket{}
	err := rRel.Each(func(rt rel.Tuple, rn int) error {
		if err := e.tick(); err != nil {
			return err
		}
		key, ok, err := e.joinKey(keys.rKeys, keys.nullEq, rRel.Schema, rt, outer)
		if err != nil {
			return err
		}
		if !ok {
			return nil // a plain-= key is NULL; the row cannot match
		}
		b := table[key]
		if b == nil {
			b = &bucket{}
			table[key] = b
		}
		b.tuples = append(b.tuples, rt)
		b.counts = append(b.counts, rn)
		return nil
	})
	if err != nil {
		return err
	}
	lsch := l.Schema()
	apply := func(w *Evaluator, lt rel.Tuple, ln int, out emitFn) error {
		if err := w.tick(); err != nil {
			return err
		}
		matched := false
		key, ok, err := w.joinKey(keys.lKeys, keys.nullEq, lsch, lt, outer)
		if err != nil {
			return err
		}
		if ok {
			if b := table[key]; b != nil {
				for i, rt := range b.tuples {
					row := lt.Concat(rt)
					if keys.residual != nil {
						keep, err := w.evalCond(keys.residual, joined, row, outer)
						if err != nil {
							return err
						}
						if keep != types.True {
							continue
						}
					}
					matched = true
					if err := out(row, ln*b.counts[i]); err != nil {
						return err
					}
				}
			}
		}
		if leftOuter && !matched {
			return out(lt.Concat(rel.Nulls(rightWidth)), ln)
		}
		return nil
	}
	if e.segmentFanOut(outer) > 0 && keys.residual != nil && algebra.HasSublink(keys.residual) {
		return e.parallelSegment(l, joined, outer, emit, apply)
	}
	return e.stream(l, outer, func(lt rel.Tuple, ln int) error {
		return apply(e, lt, ln, emit)
	})
}

func (e *Evaluator) streamAggregate(o *algebra.Aggregate, outer []frame, emit emitFn) error {
	// Sublink-bearing aggregate expressions fan out over the materialized
	// input exactly like the materializing engine; the streaming fold below
	// is sequential per definition (the group table is the breaker state).
	if e.segmentFanOut(outer) > 0 && aggregateHasSublink(o) {
		out, err := e.evalAggregate(o, outer)
		if err != nil {
			return err
		}
		return out.Each(emit)
	}
	sch := o.Child.Schema()
	type group struct {
		keys rel.Tuple
		aggs []aggState
	}
	groups := map[string]*group{}
	var order []string
	newGroup := func(keys rel.Tuple) *group {
		g := &group{keys: keys, aggs: make([]aggState, len(o.Aggs))}
		for i, a := range o.Aggs {
			g.aggs[i].fn = a.Fn
			if a.Distinct {
				g.aggs[i].distinct = map[string]struct{}{}
			}
		}
		return g
	}
	err := e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
		if err := e.tick(); err != nil {
			return err
		}
		keys := make(rel.Tuple, len(o.Group))
		for ki, gx := range o.Group {
			v, err := e.evalExpr(gx.E, sch, t, outer)
			if err != nil {
				return err
			}
			keys[ki] = v
		}
		k := keys.Key()
		g, ok := groups[k]
		if !ok {
			// Each group's accumulator is resident breaker state.
			if err := e.charge(1); err != nil {
				return err
			}
			g = newGroup(keys)
			groups[k] = g
			order = append(order, k)
		}
		for ai, ax := range o.Aggs {
			var v types.Value
			if ax.Arg != nil {
				av, err := e.evalExpr(ax.Arg, sch, t, outer)
				if err != nil {
					return err
				}
				v = av
			}
			if err := g.aggs[ai].add(v, n); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// SQL semantics: with no GROUP BY, aggregation over an empty input
	// still yields one tuple (count 0, other aggregates NULL).
	if len(o.Group) == 0 && len(groups) == 0 {
		groups[""] = newGroup(rel.Tuple{})
		order = append(order, "")
	}
	for _, k := range order {
		g := groups[k]
		row := make(rel.Tuple, 0, len(o.Group)+len(o.Aggs))
		row = append(row, g.keys...)
		for i := range g.aggs {
			v, err := g.aggs[i].result()
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		if err := emit(row, 1); err != nil {
			return err
		}
	}
	return nil
}

// dedupEmit wraps a consumer with first-sight deduplication — DISTINCT's
// pipeline state: each distinct row is emitted once with multiplicity 1,
// duplicates are dropped without a bag. The dedup set is resident state,
// charged against the budget per distinct key.
func (e *Evaluator) dedupEmit(emit emitFn) emitFn {
	seen := map[string]struct{}{}
	return func(t rel.Tuple, n int) error {
		k := t.Key()
		if _, dup := seen[k]; dup {
			return nil
		}
		if err := e.charge(1); err != nil {
			return err
		}
		seen[k] = struct{}{}
		return emit(t, 1)
	}
}

// aggregateHasSublink reports whether any grouping or aggregate expression
// contains a sublink — the case worth fanning out per input tuple.
func aggregateHasSublink(o *algebra.Aggregate) bool {
	for _, g := range o.Group {
		if algebra.HasSublink(g.E) {
			return true
		}
	}
	for _, a := range o.Aggs {
		if a.Arg != nil && algebra.HasSublink(a.Arg) {
			return true
		}
	}
	return false
}

func (e *Evaluator) streamSetOp(o *algebra.SetOp, outer []frame, emit emitFn) error {
	if !o.Bag {
		// Set semantics: dedup at the output boundary, first occurrence
		// emitted with multiplicity 1.
		emit = e.dedupEmit(emit)
	}
	if o.L.Schema().Len() != o.R.Schema().Len() {
		return fmt.Errorf("eval: %s of width %d and width %d", o.Kind, o.L.Schema().Len(), o.R.Schema().Len())
	}
	if o.Kind == algebra.Union {
		// Union is no breaker: both inputs stream straight through.
		if err := e.stream(o.L, outer, emit); err != nil {
			return err
		}
		return e.stream(o.R, outer, emit)
	}
	// Intersection and difference need full multiplicities of both sides:
	// inherent breakers.
	l, err := e.eval(o.L, outer)
	if err != nil {
		return err
	}
	r, err := e.eval(o.R, outer)
	if err != nil {
		return err
	}
	switch o.Kind {
	case algebra.Intersect:
		return l.Each(func(t rel.Tuple, n int) error {
			if m := r.Count(t); m > 0 {
				return emit(t, min(n, m))
			}
			return nil
		})
	case algebra.Except:
		return l.Each(func(t rel.Tuple, n int) error {
			m := r.Count(t)
			if o.Bag {
				if n > m {
					return emit(t, n-m)
				}
			} else if m == 0 {
				return emit(t, n)
			}
			return nil
		})
	default:
		return fmt.Errorf("eval: unknown set operation %v", o.Kind)
	}
}

// streamLimit implements LIMIT/OFFSET. Under an order (an Order node
// reachable through projection wrappers) a bounded top-(offset+n) heap
// replaces the full sort of the materializing executor. Without an order
// and with a finite limit, the limit takes the first rows of the stream and
// raises the stop signal, ceasing the upstream scans — which rows a bare
// LIMIT returns is unspecified, exactly as in PostgreSQL.
func (e *Evaluator) streamLimit(o *algebra.Limit, outer []frame, emit emitFn) error {
	// When the ordering column is projected away above the Order, cut below
	// the projections, where the key is still visible.
	if pushed, ok := algebra.PushLimit(o); ok {
		return e.stream(pushed, outer, emit)
	}
	keys := algebra.LiftOrderKeys(o.Child)
	if len(keys) == 0 {
		if o.N < 0 {
			// OFFSET without LIMIT and without order: skip arbitrary rows.
			skip := o.Offset
			return e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
				if skip > 0 {
					if n <= skip {
						skip -= n
						return nil
					}
					n -= skip
					skip = 0
				}
				return emit(t, n)
			})
		}
		skip, remain := o.Offset, o.N
		err := e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
			if skip > 0 {
				if n <= skip {
					skip -= n
					return nil
				}
				n -= skip
				skip = 0
			}
			if remain == 0 {
				return errStop
			}
			take := n
			if take > remain {
				take = remain
			}
			remain -= take
			if err := emit(t, take); err != nil {
				return err
			}
			if remain == 0 {
				return errStop
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStop) {
			return err
		}
		return nil
	}
	if o.N < 0 {
		// OFFSET-only over an ordered input: the cut needs the full sorted
		// prefix, so sort everything (breaker).
		in, err := e.eval(o.Child, outer)
		if err != nil {
			return err
		}
		rows, err := e.sortedRows(in, keys, outer)
		if err != nil {
			return err
		}
		for _, t := range limitSlice(rows, o.N, o.Offset) {
			if err := emit(t, 1); err != nil {
				return err
			}
		}
		return nil
	}
	// Top-(offset+n) heap: the breaker state is bounded by the limit, not
	// by the input size.
	cap := o.Offset + o.N
	sch := o.Child.Schema()
	h := &topNHeap{keys: keys}
	err := e.stream(o.Child, outer, func(t rel.Tuple, n int) error {
		if err := e.tick(); err != nil {
			return err
		}
		kv, err := e.sortKeyVals(keys, sch, t, outer)
		if err != nil {
			return err
		}
		for ; n > 0; n-- {
			if h.Len() < cap {
				// The heap's fill (bounded by offset+n) is resident state;
				// replacements after the fill do not grow it.
				if err := e.charge(1); err != nil {
					return err
				}
				heap.Push(h, sortRow{t: t, keys: kv})
				continue
			}
			if cap == 0 {
				return errStop
			}
			// Replace the current maximum if this row sorts before it.
			if lessSortRows(keys, sortRow{t: t, keys: kv}, h.rows[0]) {
				h.rows[0] = sortRow{t: t, keys: kv}
				heap.Fix(h, 0)
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		return err
	}
	rows := make([]sortRow, len(h.rows))
	copy(rows, h.rows)
	sortRowsInPlace(keys, rows)
	for i, r := range rows {
		if i < o.Offset {
			continue
		}
		if err := emit(r.t, 1); err != nil {
			return err
		}
	}
	return nil
}

// topNHeap is a max-heap under the ORDER BY total order: the root is the
// largest retained row, evicted when a smaller one arrives.
type topNHeap struct {
	keys []algebra.SortKey
	rows []sortRow
}

func (h *topNHeap) Len() int           { return len(h.rows) }
func (h *topNHeap) Less(i, j int) bool { return lessSortRows(h.keys, h.rows[j], h.rows[i]) }
func (h *topNHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topNHeap) Push(x any)         { h.rows = append(h.rows, x.(sortRow)) }
func (h *topNHeap) Pop() any {
	r := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return r
}

func sortRowsInPlace(keys []algebra.SortKey, rows []sortRow) {
	sort.SliceStable(rows, func(i, j int) bool { return lessSortRows(keys, rows[i], rows[j]) })
}

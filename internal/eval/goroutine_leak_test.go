package eval

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"perm/internal/opt"
	"perm/internal/sql"
	"perm/internal/synth"
)

// waitGoroutineBaseline asserts the process returns to (at most) baseline
// goroutines. Worker exits are synchronized by wg.Wait before Eval returns,
// but the runtime's accounting of a just-returned goroutine can lag, so
// poll briefly before declaring a leak — and dump all stacks when one is
// real so the stuck worker is identifiable.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, baseline %d; stacks:\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerPoolGoroutineExit is the regression test for the fan-out worker
// pools (runWorkers, parallelSegment, evalPair): every termination path —
// clean completion, early errStop when the row budget trips mid-stream, and
// context cancellation mid-fanout — must leave zero worker goroutines
// behind. A leaked worker holds its mailbox, its forked evaluator and a sem
// token; under -race this test also shakes out unsynchronized worker exits.
func TestWorkerPoolGoroutineExit(t *testing.T) {
	w := synth.Workload{InputSize: 200, SublinkSize: 100, Seed: 1}
	cat := w.Catalog()
	tr, err := sql.Compile(cat, w.Q3(0))
	if err != nil {
		t.Fatal(err)
	}
	plan := opt.Optimize(tr.Plan)

	t.Run("clean completion", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ev := New(cat)
		ev.Parallelism = 4
		if _, err := ev.Eval(plan); err != nil {
			t.Fatalf("eval: %v", err)
		}
		waitGoroutineBaseline(t, baseline)
	})

	t.Run("errStop on row budget", func(t *testing.T) {
		// The budget trips inside a worker mid-stream; the producer sees the
		// failure flag, stops with errStop, closes every mailbox, and the
		// workers must all drain out.
		cross, err := sql.Compile(cat, `SELECT * FROM r1, r2`)
		if err != nil {
			t.Fatal(err)
		}
		baseline := runtime.NumGoroutine()
		ev := New(cat)
		ev.Parallelism = 4
		ev.MaxRows = 100
		if _, err := ev.Eval(cross.Plan); !errors.Is(err, ErrBudget) {
			t.Fatalf("want ErrBudget, got %v", err)
		}
		waitGoroutineBaseline(t, baseline)
	})

	t.Run("cancellation mid-fanout", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ev := New(cat).WithContext(ctx)
		ev.Parallelism = 4
		if _, err := ev.Eval(plan); !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		waitGoroutineBaseline(t, baseline)
	})

	t.Run("cancellation while streaming", func(t *testing.T) {
		// Cancel concurrently with evaluation: depending on timing the
		// cancellation lands before, during or after fan-out, and every
		// variant must terminate promptly with no stragglers.
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		ev := New(cat).WithContext(ctx)
		ev.Parallelism = 4
		if _, err := ev.Eval(plan); err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("want nil or ErrCanceled, got %v", err)
		}
		cancel()
		waitGoroutineBaseline(t, baseline)
	})
}

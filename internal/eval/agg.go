package eval

import (
	"fmt"
	"math/bits"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/types"
)

// mul128 is the full signed 128-bit product of two int64s (two's
// complement hi:lo).
func mul128(x, y int64) (hi int64, lo uint64) {
	h, l := bits.Mul64(uint64(x), uint64(y))
	if x < 0 {
		h -= uint64(y)
	}
	if y < 0 {
		h -= uint64(x)
	}
	return int64(h), l
}

// aggState accumulates one aggregate function over one group, honouring bag
// multiplicities and SQL NULL rules (non-count aggregates ignore NULL
// inputs; count(*) counts every tuple).
type aggState struct {
	fn    algebra.AggFn
	count int64
	// The integer sum accumulates exactly in 128 bits (sumHi:sumLo, two's
	// complement), so whether the total fits int64 is decided by the final
	// value alone — independent of accumulation order, which differs
	// between the streaming and materializing executors and across worker
	// counts. Overflow ("bigint out of range") is raised from result() only
	// when the result stays integral and the total is out of range.
	sumHi    int64
	sumLo    uint64
	sumF     float64
	isFloat  bool
	minMax   types.Value
	seen     bool
	distinct map[string]struct{} // non-nil for DISTINCT aggregates
}

func (a *aggState) add(v types.Value, n int) error {
	if a.fn == algebra.AggCountStar {
		a.count += int64(n)
		return nil
	}
	if v.IsNull() {
		return nil
	}
	if a.distinct != nil {
		key := string(v.AppendKey(nil))
		if _, dup := a.distinct[key]; dup {
			return nil
		}
		a.distinct[key] = struct{}{}
		n = 1
	}
	a.count += int64(n)
	switch a.fn {
	case algebra.AggCount:
		return nil
	case algebra.AggSum, algebra.AggAvg:
		if !v.IsNumeric() {
			return fmt.Errorf("eval: %s over non-numeric value %s", a.fn, v.Kind())
		}
		if v.Kind() == types.KindFloat {
			a.isFloat = true
		}
		// 128-bit exact accumulation of v*n; the float shadow sum keeps its
		// value for the float/avg result paths.
		hi, lo := mul128(v.Int(), int64(n))
		var carry uint64
		a.sumLo, carry = bits.Add64(a.sumLo, lo, 0)
		a.sumHi += hi + int64(carry)
		a.sumF += v.Float() * float64(n)
		a.seen = true
		return nil
	case algebra.AggMin:
		if !a.seen {
			a.minMax, a.seen = v, true
			return nil
		}
		if cmp, ok := types.Compare(v, a.minMax); ok && cmp < 0 {
			a.minMax = v
		}
		return nil
	case algebra.AggMax:
		if !a.seen {
			a.minMax, a.seen = v, true
			return nil
		}
		if cmp, ok := types.Compare(v, a.minMax); ok && cmp > 0 {
			a.minMax = v
		}
		return nil
	default:
		return fmt.Errorf("eval: unknown aggregate %v", a.fn)
	}
}

func (a *aggState) result() (types.Value, error) {
	switch a.fn {
	case algebra.AggCount, algebra.AggCountStar:
		return types.NewInt(a.count), nil
	case algebra.AggSum:
		if !a.seen {
			return types.Null(), nil
		}
		if a.isFloat {
			return types.NewFloat(a.sumF), nil
		}
		// The 128-bit total fits int64 iff the high word is the sign
		// extension of the low word.
		if a.sumHi != int64(a.sumLo)>>63 {
			return types.Null(), types.ErrNumericOutOfRange
		}
		return types.NewInt(int64(a.sumLo)), nil
	case algebra.AggAvg:
		if !a.seen {
			return types.Null(), nil
		}
		return types.NewFloat(a.sumF / float64(a.count)), nil
	case algebra.AggMin, algebra.AggMax:
		if !a.seen {
			return types.Null(), nil
		}
		return a.minMax, nil
	default:
		return types.Null(), nil
	}
}

func (e *Evaluator) evalAggregate(o *algebra.Aggregate, outer []frame) (*rel.Relation, error) {
	in, err := e.eval(o.Child, outer)
	if err != nil {
		return nil, err
	}
	type group struct {
		keys rel.Tuple
		aggs []aggState
	}
	groups := map[string]*group{}
	var order []string

	newGroup := func(keys rel.Tuple) *group {
		g := &group{keys: keys, aggs: make([]aggState, len(o.Aggs))}
		for i, a := range o.Aggs {
			g.aggs[i].fn = a.Fn
			if a.Distinct {
				g.aggs[i].distinct = map[string]struct{}{}
			}
		}
		return g
	}

	// Phase 1: evaluate the group keys and aggregate arguments per input
	// tuple — where any sublinks live, so this is the phase that fans out
	// across workers. Results scatter into slot-indexed slices.
	type tupleVals struct {
		keys rel.Tuple
		args []types.Value
	}
	vals := make([]tupleVals, in.NumSlots())
	compute := func(w *Evaluator, i int, t rel.Tuple, n int) error {
		if err := w.tick(); err != nil {
			return err
		}
		keys := make(rel.Tuple, len(o.Group))
		for ki, gx := range o.Group {
			v, err := w.evalExpr(gx.E, in.Schema, t, outer)
			if err != nil {
				return err
			}
			keys[ki] = v
		}
		args := make([]types.Value, len(o.Aggs))
		for ai, ax := range o.Aggs {
			if ax.Arg == nil {
				continue
			}
			v, err := w.evalExpr(ax.Arg, in.Schema, t, outer)
			if err != nil {
				return err
			}
			args[ai] = v
		}
		vals[i] = tupleVals{keys: keys, args: args}
		return nil
	}
	done, err := e.parallelSlots(in, outer, compute)
	if err != nil {
		return nil, err
	}
	if !done {
		for i := 0; i < in.NumSlots(); i++ {
			t, n := in.Slot(i)
			if n <= 0 {
				continue
			}
			if err := compute(e, i, t, n); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: fold into groups sequentially, in slot order — identical
	// grouping order to a fully sequential run.
	for i := 0; i < in.NumSlots(); i++ {
		_, n := in.Slot(i)
		if n <= 0 {
			continue
		}
		k := vals[i].keys.Key()
		g, ok := groups[k]
		if !ok {
			g = newGroup(vals[i].keys)
			groups[k] = g
			order = append(order, k)
		}
		for ai := range o.Aggs {
			if err := g.aggs[ai].add(vals[i].args[ai], n); err != nil {
				return nil, err
			}
		}
	}

	// SQL semantics: with no GROUP BY, aggregation over an empty input
	// still yields one tuple (count 0, other aggregates NULL).
	if len(o.Group) == 0 && len(groups) == 0 {
		g := newGroup(rel.Tuple{})
		groups[""] = g
		order = append(order, "")
	}

	out := rel.New(o.Schema())
	for _, k := range order {
		g := groups[k]
		row := make(rel.Tuple, 0, len(o.Group)+len(o.Aggs))
		row = append(row, g.keys...)
		for i := range g.aggs {
			v, err := g.aggs[i].result()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Add(row, 1)
	}
	return out, nil
}

package eval

import (
	"errors"
	"sync"
	"sync/atomic"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

// runShared is the state one top-level Eval call shares across all worker
// goroutines: the row budget and the memo tables. The maps are guarded by
// mu; rows is atomic so the hot add path never takes the lock. Memoized
// relations are immutable once stored — workers may read them freely.
type runShared struct {
	rows atomic.Int64

	// sem caps concurrently *running* tuple workers at Parallelism across
	// the whole evaluation: concurrent plan branches (evalPair) may each
	// request a fan-out, but their workers share this one token pool.
	// Workers never block on each other while holding a token, so the cap
	// cannot deadlock.
	sem chan struct{}

	mu sync.Mutex
	// memo caches materialized results of uncorrelated sublink queries,
	// keyed by plan-node identity (PostgreSQL's InitPlan behaviour).
	// guarded-by: mu
	memo map[algebra.Op]*rel.Relation
	// anyMemo caches hash sets for uncorrelated = ANY sublinks
	// (PostgreSQL's hashed subplans).
	// guarded-by: mu
	anyMemo map[algebra.Op]*anySet
	// subMemo caches correlated sublink results per plan node, keyed by the
	// encoded values of the node's free parameters — repeated outer
	// bindings evaluate the sublink once instead of O(outer) times.
	// guarded-by: mu
	subMemo map[algebra.Op]map[string]*rel.Relation
	// existsMemo and scalarMemo cache the verdicts of early-terminating
	// streaming probes per plan node and parameter binding. A probe that
	// stopped at its deciding row has seen only part of the subplan's bag,
	// so the bag caches above must never receive it — the verdict is the
	// memoizable result.
	// guarded-by: mu
	existsMemo map[algebra.Op]map[string]bool
	// guarded-by: mu
	scalarMemo map[algebra.Op]map[string]types.Value
	// free caches the free-variable analysis per plan node.
	// guarded-by: mu
	free map[algebra.Op][]algebra.AttrRef
}

func newRunShared() *runShared {
	return &runShared{
		memo:       map[algebra.Op]*rel.Relation{},
		anyMemo:    map[algebra.Op]*anySet{},
		subMemo:    map[algebra.Op]map[string]*rel.Relation{},
		existsMemo: map[algebra.Op]map[string]bool{},
		scalarMemo: map[algebra.Op]map[string]types.Value{},
		free:       map[algebra.Op][]algebra.AttrRef{},
	}
}

// minParallelSlots gates fan-out: inputs with fewer distinct tuples than
// this run sequentially — goroutine startup would dominate.
const minParallelSlots = 2

// fanOut returns the worker count for a tuple-parallel operator over in, or
// 0 for the sequential path. Fan-out happens only at the top level of a
// plan: workers (and operators under a correlated scope, whose evaluation
// is already per-outer-tuple work) never fan out again.
func (e *Evaluator) fanOut(in *rel.Relation, outer []frame) int {
	if e.Parallelism <= 1 || e.worker || len(outer) > 0 || e.shared == nil {
		return 0
	}
	slots := in.NumSlots()
	if slots < minParallelSlots {
		return 0
	}
	if e.Parallelism < slots {
		return e.Parallelism
	}
	return slots
}

// fork returns a copy of e for one worker goroutine: the same shared run
// state and context, a fresh tick counter, and fan-out disabled.
func (e *Evaluator) fork() *Evaluator {
	cp := *e
	cp.ticks = 0
	cp.worker = true
	return &cp
}

// parallelEach runs emit over in's positive slots with fanOut workers.
// Slots are dealt round-robin for load balance; each worker appends to a
// private output relation and the outputs merge in worker order, so the
// result bag is deterministic. done reports whether the parallel path ran —
// when false the caller must run its sequential loop.
func (e *Evaluator) parallelEach(in *rel.Relation, outSch schema.Schema, outer []frame, emit func(w *Evaluator, out *rel.Relation, t rel.Tuple, n int) error) (_ *rel.Relation, done bool, _ error) {
	p := e.fanOut(in, outer)
	if p == 0 {
		return nil, false, nil
	}
	outs := make([]*rel.Relation, p)
	if err := e.runWorkers(in, p, func(w *Evaluator, wid, i int, t rel.Tuple, n int) error {
		if outs[wid] == nil {
			outs[wid] = rel.New(outSch)
		}
		return emit(w, outs[wid], t, n)
	}); err != nil {
		return nil, true, err
	}
	merged := rel.New(outSch)
	for _, out := range outs {
		if out == nil {
			continue
		}
		_ = out.Each(func(t rel.Tuple, n int) error {
			merged.Add(t, n)
			return nil
		})
	}
	return merged, true, nil
}

// parallelSlots runs fn over in's positive slots with fanOut workers,
// passing each slot's index so callers can scatter results into a
// pre-sized slice without synchronization. done=false means sequential.
func (e *Evaluator) parallelSlots(in *rel.Relation, outer []frame, fn func(w *Evaluator, i int, t rel.Tuple, n int) error) (done bool, _ error) {
	p := e.fanOut(in, outer)
	if p == 0 {
		return false, nil
	}
	return true, e.runWorkers(in, p, func(w *Evaluator, wid, i int, t rel.Tuple, n int) error {
		return fn(w, i, t, n)
	})
}

// runWorkers is the shared pool loop: p goroutines, slot i handled by
// worker i%p, first error wins (lowest worker id).
func (e *Evaluator) runWorkers(in *rel.Relation, p int, fn func(w *Evaluator, wid, i int, t rel.Tuple, n int) error) error {
	errs := make([]error, p)
	slots := in.NumSlots()
	var wg sync.WaitGroup
	for wid := 0; wid < p; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			if sem := e.shared.sem; sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			w := e.fork()
			for i := wid; i < slots; i += p {
				t, n := in.Slot(i)
				if n <= 0 {
					continue
				}
				if err := fn(w, wid, i, t, n); err != nil {
					errs[wid] = err
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// segmentFanOut reports the worker count for a parallel pipeline segment of
// the streaming executor, or 0 for the sequential path. Like fanOut it only
// opens at the top level of a plan — workers and correlated scopes never
// fan out again — but the gate cannot inspect the input size (the input is
// a stream, not a bag), so callers additionally restrict fan-out to
// segments with sublink-bearing expressions, where per-row work dwarfs the
// exchange overhead.
func (e *Evaluator) segmentFanOut(outer []frame) int {
	if e.Parallelism <= 1 || e.worker || len(outer) > 0 || e.shared == nil {
		return 0
	}
	return e.Parallelism
}

// streamRow is one row group in flight between a segment producer and its
// workers.
type streamRow struct {
	t rel.Tuple
	n int
}

// parallelSegment fans a pipeline segment out across workers: the producer
// streams child rows into per-worker mailboxes dealt round-robin (bounded
// channels, so the input is never materialized), each worker applies the
// segment body to its rows and buffers output in a private bag, and the
// buffers merge into emit in worker order once all workers finish. The
// round-robin deal and ordered merge make the output bag deterministic.
// The merge is a synchronization barrier: a downstream stop signal arriving
// during the merge cannot cease the (already finished) upstream work.
func (e *Evaluator) parallelSegment(child algebra.Op, outSch schema.Schema, outer []frame, emit emitFn, apply func(w *Evaluator, t rel.Tuple, n int, out emitFn) error) error {
	p := e.segmentFanOut(outer)
	chans := make([]chan streamRow, p)
	for i := range chans {
		chans[i] = make(chan streamRow, 64)
	}
	outs := make([]*rel.Relation, p)
	errs := make([]error, p)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for wid := 0; wid < p; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			if sem := e.shared.sem; sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			w := e.fork()
			out := rel.New(outSch)
			outs[wid] = out
			sink := func(t rel.Tuple, n int) error { return w.add(out, t, n) }
			for row := range chans[wid] {
				if errs[wid] != nil {
					continue // drain after an error so the producer never blocks
				}
				if err := apply(w, row.t, row.n, sink); err != nil {
					errs[wid] = err
					failed.Store(true)
				}
			}
		}(wid)
	}
	// The producer streams with a forked evaluator: fan-out below the
	// segment is disabled (a nested segment would need sem tokens the
	// segment's own workers hold — deadlock), so one pipeline opens at most
	// one segment, at its topmost eligible operator.
	prod := e.fork()
	i := 0
	perr := prod.stream(child, outer, func(t rel.Tuple, n int) error {
		if failed.Load() {
			return errStop
		}
		chans[i%p] <- streamRow{t: t, n: n}
		i++
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if perr != nil && !errors.Is(perr, errStop) {
		return perr
	}
	for _, out := range outs {
		if err := out.Each(func(t rel.Tuple, n int) error { return emit(t, n) }); err != nil {
			return err
		}
	}
	return nil
}

// evalPair evaluates two independent subplans, concurrently when the
// evaluator may fan out — this is what runs a join's build sides in
// parallel. Unlike tuple fan-out, pair concurrency is bounded by the plan's
// join depth, so the forked halves keep their own fan-out enabled.
func (e *Evaluator) evalPair(l, r algebra.Op, outer []frame) (*rel.Relation, *rel.Relation, error) {
	if e.Parallelism <= 1 || e.worker || len(outer) > 0 || e.shared == nil {
		lRel, err := e.eval(l, outer)
		if err != nil {
			return nil, nil, err
		}
		rRel, err := e.eval(r, outer)
		if err != nil {
			return nil, nil, err
		}
		return lRel, rRel, nil
	}
	var (
		lRel, rRel *rel.Relation
		lErr, rErr error
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		le := *e
		le.ticks = 0
		lRel, lErr = le.eval(l, outer)
	}()
	re := *e
	re.ticks = 0
	rRel, rErr = re.eval(r, outer)
	wg.Wait()
	if lErr != nil {
		return nil, nil, lErr
	}
	if rErr != nil {
		return nil, nil, rErr
	}
	return lRel, rRel, nil
}

package eval

import (
	"sync"
	"sync/atomic"

	"perm/internal/algebra"
	"perm/internal/rel"
	"perm/internal/schema"
)

// runShared is the state one top-level Eval call shares across all worker
// goroutines: the row budget and the memo tables. The maps are guarded by
// mu; rows is atomic so the hot add path never takes the lock. Memoized
// relations are immutable once stored — workers may read them freely.
type runShared struct {
	rows atomic.Int64

	// sem caps concurrently *running* tuple workers at Parallelism across
	// the whole evaluation: concurrent plan branches (evalPair) may each
	// request a fan-out, but their workers share this one token pool.
	// Workers never block on each other while holding a token, so the cap
	// cannot deadlock.
	sem chan struct{}

	mu sync.Mutex
	// memo caches materialized results of uncorrelated sublink queries,
	// keyed by plan-node identity (PostgreSQL's InitPlan behaviour).
	memo map[algebra.Op]*rel.Relation
	// anyMemo caches hash sets for uncorrelated = ANY sublinks
	// (PostgreSQL's hashed subplans).
	anyMemo map[algebra.Op]*anySet
	// subMemo caches correlated sublink results per plan node, keyed by the
	// encoded values of the node's free parameters — repeated outer
	// bindings evaluate the sublink once instead of O(outer) times.
	subMemo map[algebra.Op]map[string]*rel.Relation
	// free caches the free-variable analysis per plan node.
	free map[algebra.Op][]algebra.AttrRef
}

func newRunShared() *runShared {
	return &runShared{
		memo:    map[algebra.Op]*rel.Relation{},
		anyMemo: map[algebra.Op]*anySet{},
		subMemo: map[algebra.Op]map[string]*rel.Relation{},
		free:    map[algebra.Op][]algebra.AttrRef{},
	}
}

// minParallelSlots gates fan-out: inputs with fewer distinct tuples than
// this run sequentially — goroutine startup would dominate.
const minParallelSlots = 2

// fanOut returns the worker count for a tuple-parallel operator over in, or
// 0 for the sequential path. Fan-out happens only at the top level of a
// plan: workers (and operators under a correlated scope, whose evaluation
// is already per-outer-tuple work) never fan out again.
func (e *Evaluator) fanOut(in *rel.Relation, outer []frame) int {
	if e.Parallelism <= 1 || e.worker || len(outer) > 0 || e.shared == nil {
		return 0
	}
	slots := in.NumSlots()
	if slots < minParallelSlots {
		return 0
	}
	if e.Parallelism < slots {
		return e.Parallelism
	}
	return slots
}

// fork returns a copy of e for one worker goroutine: the same shared run
// state and context, a fresh tick counter, and fan-out disabled.
func (e *Evaluator) fork() *Evaluator {
	cp := *e
	cp.ticks = 0
	cp.worker = true
	return &cp
}

// parallelEach runs emit over in's positive slots with fanOut workers.
// Slots are dealt round-robin for load balance; each worker appends to a
// private output relation and the outputs merge in worker order, so the
// result bag is deterministic. done reports whether the parallel path ran —
// when false the caller must run its sequential loop.
func (e *Evaluator) parallelEach(in *rel.Relation, outSch schema.Schema, outer []frame, emit func(w *Evaluator, out *rel.Relation, t rel.Tuple, n int) error) (_ *rel.Relation, done bool, _ error) {
	p := e.fanOut(in, outer)
	if p == 0 {
		return nil, false, nil
	}
	outs := make([]*rel.Relation, p)
	if err := e.runWorkers(in, p, func(w *Evaluator, wid, i int, t rel.Tuple, n int) error {
		if outs[wid] == nil {
			outs[wid] = rel.New(outSch)
		}
		return emit(w, outs[wid], t, n)
	}); err != nil {
		return nil, true, err
	}
	merged := rel.New(outSch)
	for _, out := range outs {
		if out == nil {
			continue
		}
		_ = out.Each(func(t rel.Tuple, n int) error {
			merged.Add(t, n)
			return nil
		})
	}
	return merged, true, nil
}

// parallelSlots runs fn over in's positive slots with fanOut workers,
// passing each slot's index so callers can scatter results into a
// pre-sized slice without synchronization. done=false means sequential.
func (e *Evaluator) parallelSlots(in *rel.Relation, outer []frame, fn func(w *Evaluator, i int, t rel.Tuple, n int) error) (done bool, _ error) {
	p := e.fanOut(in, outer)
	if p == 0 {
		return false, nil
	}
	return true, e.runWorkers(in, p, func(w *Evaluator, wid, i int, t rel.Tuple, n int) error {
		return fn(w, i, t, n)
	})
}

// runWorkers is the shared pool loop: p goroutines, slot i handled by
// worker i%p, first error wins (lowest worker id).
func (e *Evaluator) runWorkers(in *rel.Relation, p int, fn func(w *Evaluator, wid, i int, t rel.Tuple, n int) error) error {
	errs := make([]error, p)
	slots := in.NumSlots()
	var wg sync.WaitGroup
	for wid := 0; wid < p; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			if sem := e.shared.sem; sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			w := e.fork()
			for i := wid; i < slots; i += p {
				t, n := in.Slot(i)
				if n <= 0 {
					continue
				}
				if err := fn(w, wid, i, t, n); err != nil {
					errs[wid] = err
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalPair evaluates two independent subplans, concurrently when the
// evaluator may fan out — this is what runs a join's build sides in
// parallel. Unlike tuple fan-out, pair concurrency is bounded by the plan's
// join depth, so the forked halves keep their own fan-out enabled.
func (e *Evaluator) evalPair(l, r algebra.Op, outer []frame) (*rel.Relation, *rel.Relation, error) {
	if e.Parallelism <= 1 || e.worker || len(outer) > 0 || e.shared == nil {
		lRel, err := e.eval(l, outer)
		if err != nil {
			return nil, nil, err
		}
		rRel, err := e.eval(r, outer)
		if err != nil {
			return nil, nil, err
		}
		return lRel, rRel, nil
	}
	var (
		lRel, rRel *rel.Relation
		lErr, rErr error
		wg         sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		le := *e
		le.ticks = 0
		lRel, lErr = le.eval(l, outer)
	}()
	re := *e
	re.ticks = 0
	rRel, rErr = re.eval(r, outer)
	wg.Wait()
	if lErr != nil {
		return nil, nil, lErr
	}
	if rErr != nil {
		return nil, nil, rErr
	}
	return lRel, rRel, nil
}

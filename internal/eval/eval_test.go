package eval

import (
	"context"
	"errors"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/rel"
	"perm/internal/schema"
	"perm/internal/types"
)

func ints(vals ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

// figure3DB is the R and S of Figure 3 in the paper:
// R(a,b) = {(1,1),(2,1),(3,2)}, S(c,d) = {(1,3),(2,4),(4,5)}.
func figure3DB() *catalog.Catalog {
	c := catalog.New()
	r := rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2))
	s := rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4), ints(4, 5))
	c.Register("r", r)
	c.Register("s", s)
	return c
}

func scan(t *testing.T, c *catalog.Catalog, name string) *algebra.Scan {
	t.Helper()
	sch, err := c.Schema(name)
	if err != nil {
		t.Fatalf("schema(%s): %v", name, err)
	}
	return algebra.NewScan(name, "", sch)
}

func mustEval(t *testing.T, c *catalog.Catalog, op algebra.Op) *rel.Relation {
	t.Helper()
	out, err := New(c).Eval(op)
	if err != nil {
		t.Fatalf("eval %s: %v", op, err)
	}
	return out
}

func TestScanRequalifiesSchema(t *testing.T) {
	c := figure3DB()
	sch, _ := c.Schema("r")
	op := algebra.NewScan("r", "x", sch)
	out := mustEval(t, c, op)
	if out.Schema.Attrs[0].Qual != "x" {
		t.Errorf("alias qualifier not applied: %s", out.Schema)
	}
	if out.Card() != 3 {
		t.Errorf("card = %d", out.Card())
	}
}

func TestSelectSimple(t *testing.T) {
	c := figure3DB()
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(3)},
	}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(3, 2))
	if !out.Equal(want) {
		t.Errorf("σ[a=3](R) = %s", out)
	}
}

func TestSelectThreeValuedNullDropped(t *testing.T) {
	c := catalog.New()
	r := rel.FromTuples(schema.New("", "a"), rel.Tuple{types.Null()}, ints(1))
	c.Register("r", r)
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.IntConst(1)},
	}
	out := mustEval(t, c, op)
	if out.Card() != 1 {
		t.Errorf("NULL = 1 must not satisfy the selection; got %s", out)
	}
}

func TestProjectBagKeepsMultiplicity(t *testing.T) {
	c := figure3DB()
	// Π_b(R) = {1,1,2} as a bag.
	op := algebra.NewProject(scan(t, c, "r"), algebra.KeepCol("b"))
	out := mustEval(t, c, op)
	if out.Card() != 3 || out.Count(ints(1)) != 2 {
		t.Errorf("ΠB_b(R) = %s", out)
	}
}

func TestProjectDistinct(t *testing.T) {
	c := figure3DB()
	op := &algebra.Project{Child: scan(t, c, "r"), Cols: []algebra.ProjExpr{algebra.KeepCol("b")}, Distinct: true}
	out := mustEval(t, c, op)
	if out.Card() != 2 || out.Count(ints(1)) != 1 {
		t.Errorf("ΠS_b(R) = %s", out)
	}
}

func TestProjectExpressionsAndRename(t *testing.T) {
	c := figure3DB()
	op := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Arith{Op: types.OpAdd, L: algebra.Attr("a"), R: algebra.Attr("b")}, "s"),
		algebra.Col(algebra.Attr("a"), "pa"),
	)
	out := mustEval(t, c, op)
	if out.Schema.Attrs[0].Name != "s" || out.Schema.Attrs[1].Name != "pa" {
		t.Fatalf("schema = %s", out.Schema)
	}
	if out.Count(ints(2, 1)) != 1 || out.Count(ints(5, 3)) != 1 {
		t.Errorf("projection values wrong: %s", out)
	}
}

func TestCrossMultiplicities(t *testing.T) {
	c := catalog.New()
	c.Register("l", rel.FromTuples(schema.New("", "a"), ints(1), ints(1)))
	c.Register("r", rel.FromTuples(schema.New("", "b"), ints(7), ints(7), ints(7)))
	op := &algebra.Cross{L: scan(t, c, "l"), R: scan(t, c, "r")}
	out := mustEval(t, c, op)
	if out.Count(ints(1, 7)) != 6 {
		t.Errorf("2×3 multiplicity = %d, want 6", out.Count(ints(1, 7)))
	}
}

func TestJoinAndLeftJoin(t *testing.T) {
	c := figure3DB()
	cond := algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"), R: algebra.Attr("c")}
	join := &algebra.Join{L: scan(t, c, "r"), R: scan(t, c, "s"), Cond: cond}
	out := mustEval(t, c, join)
	if out.Card() != 2 {
		t.Errorf("R ⋈ S card = %d: %s", out.Card(), out)
	}
	lj := &algebra.LeftJoin{L: scan(t, c, "r"), R: scan(t, c, "s"), Cond: cond}
	out = mustEval(t, c, lj)
	if out.Card() != 3 {
		t.Fatalf("R ⟕ S card = %d", out.Card())
	}
	// The unmatched left tuple (3,2) is padded with NULLs.
	padded := rel.Tuple{types.NewInt(3), types.NewInt(2), types.Null(), types.Null()}
	if out.Count(padded) != 1 {
		t.Errorf("missing null-padded tuple in %s", out)
	}
}

func TestAggregateGrouped(t *testing.T) {
	c := figure3DB()
	op := &algebra.Aggregate{
		Child: scan(t, c, "r"),
		Group: []algebra.GroupExpr{{E: algebra.Attr("b"), As: "b"}},
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggSum, Arg: algebra.Attr("a"), As: "s"}},
	}
	out := mustEval(t, c, op)
	if out.Card() != 2 || out.Count(ints(1, 3)) != 1 || out.Count(ints(2, 3)) != 1 {
		t.Errorf("α = %s", out)
	}
}

func TestAggregateEmptyInputNoGroups(t *testing.T) {
	c := catalog.New()
	c.Register("e", rel.New(schema.New("", "a")))
	op := &algebra.Aggregate{
		Child: scan(t, c, "e"),
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggCountStar, As: "n"},
			{Fn: algebra.AggSum, Arg: algebra.Attr("a"), As: "s"},
		},
	}
	out := mustEval(t, c, op)
	if out.Card() != 1 {
		t.Fatalf("aggregate over empty input must yield one tuple, got %s", out)
	}
	want := rel.Tuple{types.NewInt(0), types.Null()}
	if out.Count(want) != 1 {
		t.Errorf("count/sum over empty = %s", out)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	c := catalog.New()
	r := rel.FromTuples(schema.New("", "a"),
		ints(2), rel.Tuple{types.Null()}, ints(4))
	c.Register("r", r)
	op := &algebra.Aggregate{
		Child: scan(t, c, "r"),
		Aggs: []algebra.AggExpr{
			{Fn: algebra.AggCountStar, As: "all"},
			{Fn: algebra.AggCount, Arg: algebra.Attr("a"), As: "nonnull"},
			{Fn: algebra.AggAvg, Arg: algebra.Attr("a"), As: "avg"},
			{Fn: algebra.AggMin, Arg: algebra.Attr("a"), As: "mn"},
			{Fn: algebra.AggMax, Arg: algebra.Attr("a"), As: "mx"},
		},
	}
	out := mustEval(t, c, op)
	want := rel.Tuple{types.NewInt(3), types.NewInt(2), types.NewFloat(3), types.NewInt(2), types.NewInt(4)}
	if out.Count(want) != 1 {
		t.Errorf("aggregate null handling = %s", out)
	}
}

func TestSetOps(t *testing.T) {
	c := catalog.New()
	s := schema.New("", "a")
	c.Register("l", rel.FromTuples(s, ints(1), ints(1), ints(2)))
	c.Register("r", rel.FromTuples(s, ints(1), ints(3)))
	cases := []struct {
		kind algebra.SetOpKind
		bag  bool
		want *rel.Relation
	}{
		{algebra.Union, true, rel.FromTuples(s, ints(1), ints(1), ints(1), ints(2), ints(3))},
		{algebra.Union, false, rel.FromTuples(s, ints(1), ints(2), ints(3))},
		{algebra.Intersect, true, rel.FromTuples(s, ints(1))},
		{algebra.Intersect, false, rel.FromTuples(s, ints(1))},
		{algebra.Except, true, rel.FromTuples(s, ints(1), ints(2))},
		{algebra.Except, false, rel.FromTuples(s, ints(2))},
	}
	for _, tc := range cases {
		op := &algebra.SetOp{Kind: tc.kind, Bag: tc.bag, L: scanT(t, c, "l"), R: scanT(t, c, "r")}
		out := mustEval(t, c, op)
		if !out.Equal(tc.want.WithSchema(out.Schema)) {
			t.Errorf("%v bag=%v = %s, want %s", tc.kind, tc.bag, out, tc.want)
		}
	}
}

func scanT(t *testing.T, c *catalog.Catalog, name string) *algebra.Scan {
	return scan(t, c, name)
}

func TestOrderLimit(t *testing.T) {
	c := figure3DB()
	op := &algebra.Limit{
		Child: &algebra.Order{
			Child: scan(t, c, "r"),
			Keys:  []algebra.SortKey{{E: algebra.Attr("a"), Desc: true}},
		},
		N: 2,
	}
	out := mustEval(t, c, op)
	if out.Card() != 2 || out.Count(ints(3, 2)) != 1 || out.Count(ints(2, 1)) != 1 {
		t.Errorf("limit 2 order by a desc = %s", out)
	}
}

// --- sublinks ---

func anyEq(test algebra.Expr, q algebra.Op) algebra.Sublink {
	return algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: test, Query: q}
}

func TestAnySublinkUncorrelated(t *testing.T) {
	c := figure3DB()
	// q1 of Figure 3: σ_{a = ANY(Πc(S))}(R) = {(1,1),(2,1)}.
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), sub)}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(1, 1), ints(2, 1))
	if !out.Equal(want) {
		t.Errorf("q1 = %s", out)
	}
}

func TestAllSublinkUncorrelated(t *testing.T) {
	c := figure3DB()
	// q2 of Figure 3: σ_{c > ALL(Πa(R))}(S) = {(4,5)}.
	sub := algebra.NewProject(scan(t, c, "r"), algebra.KeepCol("a"))
	op := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpGt, Test: algebra.Attr("c"), Query: sub},
	}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(4, 5))
	if !out.Equal(want) {
		t.Errorf("q2 = %s", out)
	}
}

func TestExistsSublinkCorrelated(t *testing.T) {
	c := figure3DB()
	// σ_{EXISTS(σ_{c=a}(S))}(R): keeps R tuples whose a appears in S.c.
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("a")},
	}
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub},
	}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(1, 1), ints(2, 1))
	if !out.Equal(want) {
		t.Errorf("correlated EXISTS = %s", out)
	}
}

func TestScalarSublink(t *testing.T) {
	c := figure3DB()
	// σ_{a = (Π_max)}: scalar sublink computing max(c) of S = 4; no R tuple
	// matches, then with min(c)=1 tuple (1,1) matches.
	maxQ := &algebra.Aggregate{
		Child: scan(t, c, "s"),
		Aggs:  []algebra.AggExpr{{Fn: algebra.AggMin, Arg: algebra.Attr("c"), As: "m"}},
	}
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"),
			R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: maxQ}},
	}
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema, ints(1, 1))
	if !out.Equal(want) {
		t.Errorf("scalar sublink = %s", out)
	}
}

func TestScalarSublinkEmptyIsNull(t *testing.T) {
	c := figure3DB()
	empty := &algebra.Select{Child: scan(t, c, "s"), Cond: algebra.BoolConst(false)}
	sub := algebra.NewProject(empty, algebra.KeepCol("c"))
	op := algebra.NewProject(scan(t, c, "r"),
		algebra.Col(algebra.Sublink{Kind: algebra.ScalarSublink, Query: sub}, "v"))
	out := mustEval(t, c, op)
	if out.Count(rel.Tuple{types.Null()}) != 3 {
		t.Errorf("empty scalar sublink should be NULL: %s", out)
	}
}

func TestScalarSublinkMultiRowErrors(t *testing.T) {
	c := figure3DB()
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("a"),
			R: algebra.Sublink{Kind: algebra.ScalarSublink, Query: sub}},
	}
	if _, err := New(c).Eval(op); err == nil {
		t.Fatal("scalar sublink over 3 tuples should error")
	}
}

func TestAnySublinkEmptyIsFalseAllIsTrue(t *testing.T) {
	c := figure3DB()
	empty := &algebra.Select{Child: scan(t, c, "s"), Cond: algebra.BoolConst(false)}
	sub := algebra.NewProject(empty, algebra.KeepCol("c"))
	anyOp := &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), sub)}
	if out := mustEval(t, c, anyOp); !out.Empty() {
		t.Errorf("ANY over empty should keep nothing: %s", out)
	}
	allOp := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpEq, Test: algebra.Attr("a"), Query: sub},
	}
	if out := mustEval(t, c, allOp); out.Card() != 3 {
		t.Errorf("ALL over empty should keep everything: %s", out)
	}
}

func TestAnySublinkUnknownSemantics(t *testing.T) {
	// a = ANY over {NULL, 2}: for a=2 → True; for a=9 → Unknown (NULL
	// comparison) so the tuple is dropped but not an error.
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a"), ints(2), ints(9)))
	c.Register("s", rel.FromTuples(schema.New("", "c"), rel.Tuple{types.Null()}, ints(2)))
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), sub)}
	out := mustEval(t, c, op)
	if out.Card() != 1 || out.Count(ints(2)) != 1 {
		t.Errorf("3VL ANY = %s", out)
	}
}

func TestNestedCorrelatedSublinks(t *testing.T) {
	// The nesting example of §2.2:
	//   σ_{a = ANY Tsub}(R), Tsub = σ_{c=b ∧ c = ANY(σ_{d=c}(T))}(S)
	// with T(d). The inner sublink references c from the containing sublink.
	c := figure3DB()
	c.Register("t", rel.FromTuples(schema.New("", "d"), ints(1), ints(2)))
	inner := &algebra.Select{
		Child: scan(t, c, "t"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("d"), R: algebra.Attr("c")},
	}
	innerLink := algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: algebra.Attr("c"),
		Query: algebra.NewProject(inner, algebra.KeepCol("d"))}
	tsub := algebra.NewProject(&algebra.Select{
		Child: scan(t, c, "s"),
		Cond: algebra.And{
			L: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
			R: innerLink,
		},
	}, algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), tsub)}
	out := mustEval(t, c, op)
	// For (1,1): Tsub = σ_{c=1 ∧ c=ANY(T where d=c)}(S) = {(1,3)} → a=1=c ✓.
	// For (2,1): c=1 but a=2 ✗. For (3,2): c=2, 2∈T ✓, a=3≠2 ✗.
	want := rel.FromTuples(out.Schema, ints(1, 1))
	if !out.Equal(want) {
		t.Errorf("nested correlated sublink = %s", out)
	}
}

func TestSublinkInProjection(t *testing.T) {
	c := figure3DB()
	// Π_{a, EXISTS(σ_{c=3}(S))}(R) — Figure 1's projection sublink example.
	sub := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.IntConst(3)},
	}
	op := algebra.NewProject(scan(t, c, "r"),
		algebra.KeepCol("a"),
		algebra.Col(algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}, "e"),
	)
	out := mustEval(t, c, op)
	want := rel.FromTuples(out.Schema,
		rel.Tuple{types.NewInt(1), types.NewBool(false)},
		rel.Tuple{types.NewInt(2), types.NewBool(false)},
		rel.Tuple{types.NewInt(3), types.NewBool(false)},
	)
	if !out.Equal(want) {
		t.Errorf("projection sublink = %s", out)
	}
}

func TestSublinkInJoinCondition(t *testing.T) {
	c := figure3DB()
	// R ⋈_{a < ALL(T)} S with T = Π_c(σ_{c>3}(S)) = {4}: join pairs where a < 4.
	tq := algebra.NewProject(&algebra.Select{
		Child: algebra.NewScan("s", "s2", mustSchema(t, c, "s")),
		Cond:  algebra.Cmp{Op: types.CmpGt, L: algebra.QAttr("s2", "c"), R: algebra.IntConst(3)},
	}, algebra.Col(algebra.QAttr("s2", "c"), "c"))
	op := &algebra.Join{
		L: scan(t, c, "r"), R: scan(t, c, "s"),
		Cond: algebra.Sublink{Kind: algebra.AllSublink, Op: types.CmpLt, Test: algebra.Attr("a"), Query: tq},
	}
	out := mustEval(t, c, op)
	if out.Card() != 9 {
		t.Errorf("join sublink card = %d, want 9 (all a<4)", out.Card())
	}
}

func mustSchema(t *testing.T, c *catalog.Catalog, name string) schema.Schema {
	t.Helper()
	s, err := c.Schema(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFreeVarsAnalysis(t *testing.T) {
	c := figure3DB()
	correlated := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
	}
	if !algebra.IsCorrelated(correlated) {
		t.Error("σ_{c=b}(S) must be correlated (free b)")
	}
	uncorrelated := &algebra.Select{
		Child: scan(t, c, "s"),
		Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("d")},
	}
	if algebra.IsCorrelated(uncorrelated) {
		t.Error("σ_{c=d}(S) must be uncorrelated")
	}
	// A sublink binding its own correlation is uncorrelated from outside.
	outer := &algebra.Select{
		Child: scan(t, c, "r"),
		Cond:  algebra.Sublink{Kind: algebra.ExistsSublink, Query: correlated},
	}
	if algebra.IsCorrelated(outer) {
		t.Error("outer query binds b; plan must have no free vars")
	}
}

func TestUnknownAttributeError(t *testing.T) {
	c := figure3DB()
	op := &algebra.Select{Child: scan(t, c, "r"), Cond: algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("zz"), R: algebra.IntConst(1)}}
	if _, err := New(c).Eval(op); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestContextCancellation(t *testing.T) {
	c := figure3DB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Build a plan big enough to hit a tick: cross product of r with itself
	// several times.
	var op algebra.Op = scan(t, c, "r")
	for i := 0; i < 6; i++ {
		op = &algebra.Cross{L: op, R: algebra.NewScan("r", string(rune('a'+i)), mustSchema(t, c, "r"))}
	}
	_, err := New(c).WithContext(ctx).Eval(op)
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestUncorrelatedSublinkMemoized(t *testing.T) {
	// A counting DB shim verifies the sublink base relation is fetched only
	// once despite 3 outer tuples.
	c := figure3DB()
	cdb := &countingDB{DB: c}
	sub := algebra.NewProject(scan(t, c, "s"), algebra.KeepCol("c"))
	op := &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), sub)}
	if _, err := New(cdb).Eval(op); err != nil {
		t.Fatal(err)
	}
	if cdb.counts["s"] != 1 {
		t.Errorf("uncorrelated sublink evaluated %d times, want 1 (memoized)", cdb.counts["s"])
	}
}

func TestCorrelatedSublinkMemoizedPerBinding(t *testing.T) {
	// R's outer tuples carry b = 1, 1, 2 — three bindings, two distinct
	// parameter values. The per-binding memo evaluates the correlated
	// sublink once per distinct value; the ablation knob restores the
	// PostgreSQL SubPlan behaviour of once per outer tuple.
	build := func() (*countingDB, algebra.Op) {
		c := figure3DB()
		cdb := &countingDB{DB: c}
		sub := algebra.NewProject(&algebra.Select{
			Child: scan(t, c, "s"),
			Cond:  algebra.Cmp{Op: types.CmpEq, L: algebra.Attr("c"), R: algebra.Attr("b")},
		}, algebra.KeepCol("c"))
		return cdb, &algebra.Select{Child: scan(t, c, "r"), Cond: anyEq(algebra.Attr("a"), sub)}
	}

	cdb, op := build()
	if _, err := New(cdb).Eval(op); err != nil {
		t.Fatal(err)
	}
	if cdb.counts["s"] != 2 {
		t.Errorf("correlated sublink evaluated %d times, want 2 (once per distinct binding)", cdb.counts["s"])
	}

	cdb, op = build()
	ev := New(cdb)
	ev.DisableSublinkMemo = true
	if _, err := ev.Eval(op); err != nil {
		t.Fatal(err)
	}
	if cdb.counts["s"] != 3 {
		t.Errorf("unmemoized correlated sublink evaluated %d times, want 3 (once per outer tuple)", cdb.counts["s"])
	}
}

type countingDB struct {
	DB
	counts map[string]int
}

func (c *countingDB) Relation(name string) (*rel.Relation, error) {
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	c.counts[name]++
	return c.DB.Relation(name)
}

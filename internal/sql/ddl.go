package sql

// Data-definition and data-manipulation statements of the service layer:
// CREATE TABLE with declared column types and INSERT ... VALUES with
// literal rows. Sessions execute them against their copy-on-write catalog
// overlay (see internal/catalog.Overlay); the perm layer executes them
// against the base catalog.

import (
	"fmt"
	"strconv"
	"strings"

	"perm/internal/types"
)

// TableDef is CREATE TABLE name (col type, ...).
type TableDef struct {
	Name string
	Cols []ColDef
}

// ColDef is one declared column: a name and a value kind.
type ColDef struct {
	Name string
	Kind types.Kind
}

// InsertStmt is INSERT INTO name VALUES (lit, ...), (...). Values are
// literals (NULL, numbers with optional sign, strings, booleans); rows are
// type-checked against the table's declared or inferred kinds at execution
// time.
type InsertStmt struct {
	Table string
	Rows  [][]types.Value
}

// columnKinds maps the accepted type spellings of CREATE TABLE. The
// narrow spellings rejected by CAST (smallint, int4, real) are rejected
// here too: the engine has exactly these four kinds.
var columnKinds = map[string]types.Kind{
	"int": types.KindInt, "integer": types.KindInt, "bigint": types.KindInt,
	"float": types.KindFloat, "double": types.KindFloat,
	"string": types.KindString, "text": types.KindString, "varchar": types.KindString,
	"boolean": types.KindBool, "bool": types.KindBool,
}

// parseCreateTable parses the clause after CREATE TABLE.
func (p *parser) parseCreateTable() (*TableDef, error) {
	if p.peek().kind != tokIdent {
		return nil, p.errf("expected table name, found %s", p.peek())
	}
	def := &TableDef{Name: p.next().text}
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for {
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected column name, found %s", p.peek())
		}
		col := p.next().text
		if seen[col] {
			return nil, fmt.Errorf("sql: column %q specified more than once", col)
		}
		seen[col] = true
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected column type, found %s", p.peek())
		}
		typ := p.next().text
		// "double precision" is the two-word PostgreSQL spelling.
		if typ == "double" && p.peek().kind == tokIdent && p.peek().text == "precision" {
			p.next()
		}
		kind, ok := columnKinds[typ]
		if !ok {
			return nil, fmt.Errorf("sql: type %q does not exist (supported: %s)", typ, strings.Join(kindSpellings(), ", "))
		}
		def.Cols = append(def.Cols, ColDef{Name: col, Kind: kind})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after table definition", p.peek())
	}
	return def, nil
}

func kindSpellings() []string {
	return []string{"int", "bigint", "float", "double", "string", "text", "boolean"}
}

// parseInsert parses the clause after INSERT.
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	if p.peek().kind != tokIdent {
		return nil, p.errf("expected table name, found %s", p.peek())
	}
	ins := &InsertStmt{Table: p.next().text}
	if err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []types.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after INSERT", p.peek())
	}
	return ins, nil
}

// parseLiteral parses one VALUES cell: NULL, TRUE/FALSE, a possibly signed
// number, or a string.
func (p *parser) parseLiteral() (types.Value, error) {
	neg := false
	if p.accept(tokSymbol, "-") {
		neg = true
	}
	t := p.peek()
	switch {
	case t.kind == tokKeyword && (t.text == "NULL" || t.text == "TRUE" || t.text == "FALSE"):
		if neg {
			return types.Null(), p.errf("cannot negate %s", t.text)
		}
		p.next()
		switch t.text {
		case "NULL":
			return types.Null(), nil
		case "TRUE":
			return types.NewBool(true), nil
		default:
			return types.NewBool(false), nil
		}
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return types.Null(), fmt.Errorf("sql: invalid numeric literal %q", t.text)
			}
			if neg {
				f = -f
			}
			return types.NewFloat(f), nil
		}
		text := t.text
		if neg {
			text = "-" + text
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return types.Null(), fmt.Errorf("sql: integer literal %q out of range", text)
		}
		return types.NewInt(i), nil
	case t.kind == tokString:
		if neg {
			return types.Null(), p.errf("cannot negate a string literal")
		}
		p.next()
		return types.NewString(t.text), nil
	default:
		return types.Null(), p.errf("expected a literal value, found %s", t)
	}
}

// CheckInsertKinds verifies an INSERT's rows against the target's declared
// column kinds: every non-NULL value's kind must match (KindNull in kinds
// means the column's kind is unknown and admits anything).
func CheckInsertKinds(ins *InsertStmt, cols []string, kinds []types.Kind) error {
	for i, row := range ins.Rows {
		if len(row) != len(cols) {
			return fmt.Errorf("sql: INSERT row %d has %d values, table %q has %d columns", i+1, len(row), ins.Table, len(cols))
		}
		for j, v := range row {
			if v.Kind() == types.KindNull || j >= len(kinds) || kinds[j] == types.KindNull {
				continue
			}
			if v.Kind() != kinds[j] {
				return fmt.Errorf("sql: INSERT row %d column %q: %s value for %s column", i+1, cols[j], v.Kind(), kinds[j])
			}
		}
	}
	return nil
}

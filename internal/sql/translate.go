package sql

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/schema"
	"perm/internal/types"
)

// Translated is the result of lowering a statement to algebra.
//
// perm:frozen
type Translated struct {
	// Plan is the algebra tree of the query (not provenance-rewritten).
	Plan algebra.Op
	// Provenance reports whether the statement used SELECT PROVENANCE.
	Provenance bool
	// Hidden is the number of trailing hidden sort-key columns in Plan's
	// output schema. ORDER BY may reference attributes the SELECT list does
	// not project (`SELECT a FROM r ORDER BY b`); the translator extends the
	// top-level projection with columns computing those keys so the sort and
	// any LIMIT cut can see them. The result presentation layer sorts on
	// them and then strips them — they are never part of the query's visible
	// result. Nested query blocks strip their hidden columns themselves
	// (their presentation order is not observable), so Hidden is only ever
	// non-zero for the top-level select.
	Hidden int
}

// Translate lowers a parsed statement to the extended relational algebra,
// resolving base table schemas against the catalog.
func Translate(cat *catalog.Catalog, stmt *Stmt) (*Translated, error) {
	tr := &translator{cat: cat}
	prov := stmt.Left.Provenance
	plan, err := tr.stmt(stmt, true)
	if err != nil {
		return nil, err
	}
	return &Translated{Plan: plan, Provenance: prov, Hidden: tr.hidden}, nil
}

// Compile parses, analyzes and translates in one step.
func Compile(cat *catalog.Catalog, query string) (*Translated, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if err := Analyze(Env{Catalog: cat}, stmt); err != nil {
		return nil, err
	}
	return Translate(cat, stmt)
}

type translator struct {
	cat       catalog.Source
	views     map[string]*ViewDef
	viewStack []string
	fresh     int
	// hidden is the number of trailing hidden sort-key columns the
	// top-level select block added to its projection (see Translated.Hidden).
	hidden int
	// subPlans memoizes sublink subquery translation per AST node. Ordinal
	// substitution shares one AST subquery between GROUP BY and the select
	// list; translating both occurrences to the same algebra.Op pointer is
	// what lets ExprEqual (which compares sublinks by query pointer)
	// recognize them as one grouping expression. Algebra trees are immutable
	// and may share subtrees, so reuse is safe.
	subPlans map[*Stmt]algebra.Op
}

// subquery translates a sublink subquery, memoizing by AST node.
func (tr *translator) subquery(s *Stmt) (algebra.Op, error) {
	if plan, ok := tr.subPlans[s]; ok {
		return plan, nil
	}
	plan, err := tr.stmt(s, false)
	if err != nil {
		return nil, err
	}
	if tr.subPlans == nil {
		tr.subPlans = map[*Stmt]algebra.Op{}
	}
	tr.subPlans[s] = plan
	return plan, nil
}

// freshName returns an internal attribute name (grouping columns, hidden
// sort keys, aggregate results). The '#' cannot appear in a lexed
// identifier, so these names can never collide with user columns or
// aliases — `SELECT a AS ord1 … GROUP BY g1` stays unambiguous.
func (tr *translator) freshName(stem string) string {
	tr.fresh++
	return fmt.Sprintf("%s#%d", stem, tr.fresh)
}

func (tr *translator) stmt(s *Stmt, top bool) (algebra.Op, error) {
	if s.Left.Provenance && !top {
		return nil, fmt.Errorf("sql: SELECT PROVENANCE is only allowed at the top level")
	}
	// Set-operation arms are nested blocks: their presentation order is not
	// observable, so any hidden sort-key columns are stripped inside.
	left, err := tr.selectStmt(s.Left, top && s.SetOp == nil)
	if err != nil {
		return nil, err
	}
	if s.SetOp == nil {
		return left, nil
	}
	if s.SetOp.Right.Left.Provenance {
		return nil, fmt.Errorf("sql: SELECT PROVENANCE is only allowed at the top level")
	}
	right, err := tr.stmt(s.SetOp.Right, false)
	if err != nil {
		return nil, err
	}
	var kind algebra.SetOpKind
	switch s.SetOp.Kind {
	case "UNION":
		kind = algebra.Union
	case "INTERSECT":
		kind = algebra.Intersect
	case "EXCEPT":
		kind = algebra.Except
	default:
		return nil, fmt.Errorf("sql: unknown set operation %q", s.SetOp.Kind)
	}
	if left.Schema().Len() != right.Schema().Len() {
		return nil, fmt.Errorf("sql: %s of %d and %d columns", s.SetOp.Kind, left.Schema().Len(), right.Schema().Len())
	}
	return &algebra.SetOp{Kind: kind, Bag: s.SetOp.All, L: left, R: right}, nil
}

func (tr *translator) selectStmt(sel *SelectStmt, top bool) (algebra.Op, error) {
	var plan algebra.Op
	var err error
	if len(sel.From) == 0 {
		// FROM-less SELECT: the select list evaluates over one empty tuple
		// (PostgreSQL's implicit single-row source).
		if sel.Star {
			return nil, fmt.Errorf("sql: SELECT * with no tables specified is not valid")
		}
		plan = &algebra.Values{Rows: []algebra.Row{{}}}
	} else {
		plan, err = tr.fromItem(sel.From[0])
		if err != nil {
			return nil, err
		}
		for _, ref := range sel.From[1:] {
			right, err := tr.fromItem(ref)
			if err != nil {
				return nil, err
			}
			plan = &algebra.Cross{L: plan, R: right}
		}
	}

	if sel.Where != nil {
		cond, err := tr.expr(sel.Where, nil)
		if err != nil {
			return nil, err
		}
		plan = &algebra.Select{Child: plan, Cond: cond}
	}

	// Aggregation: collect aggregate calls from the output list, HAVING and
	// ORDER BY, then translate those clauses against the post-aggregation
	// schema (aggregate calls become references to aggregate columns, and
	// grouping expressions become references to grouping columns).
	aggs := &aggCollector{tr: tr}
	var groupExprs []algebra.GroupExpr
	groupNames := map[string]bool{}
	for _, g := range sel.GroupBy {
		ge, err := tr.expr(g, nil)
		if err != nil {
			return nil, err
		}
		name, qual := "", ""
		// Name the grouping column after the grouped identifier — unless two
		// grouping columns share an identifier name (GROUP BY x.a, y.a),
		// which would make the post-aggregation schema ambiguous. The source
		// qualifier is carried onto the output attribute so qualified
		// references to the grouping column resolve above the aggregation.
		if id, ok := g.(Ident); ok && !groupNames[id.Name] {
			name = id.Name
			if idx, amb := plan.Schema().Lookup(id.Qual, id.Name); idx >= 0 && !amb {
				qual = plan.Schema().Attrs[idx].Qual
			}
		}
		if name == "" {
			name = tr.freshName("g")
		}
		groupNames[name] = true
		groupExprs = append(groupExprs, algebra.GroupExpr{E: ge, As: name, Qual: qual})
	}
	// Sublinks in GROUP BY are evaluated by a projection below the
	// aggregation (§2.2 of the paper: "this can be simulated … using
	// projection on sublinks before applying aggregation"), which also
	// lets the provenance rewrite see them as ordinary projection sublinks.
	// The pre-push expressions are kept so output-clause occurrences of a
	// pushed grouping sublink (GROUP BY 1 sharing the select-list subquery)
	// can still be recognized as the grouping column.
	origGroup := make([]algebra.Expr, len(groupExprs))
	for i, g := range groupExprs {
		origGroup[i] = g.E
	}
	if plan, groupExprs, err = tr.pushGroupSublinks(plan, groupExprs); err != nil {
		return nil, err
	}

	var outCols []algebra.ProjExpr
	star := sel.Star
	if star {
		if len(sel.GroupBy) > 0 {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY")
		}
		for _, a := range plan.Schema().Attrs {
			outCols = append(outCols, algebra.KeepAttr(a))
		}
	} else {
		for i, c := range sel.Cols {
			e, err := tr.expr(c.E, aggs)
			if err != nil {
				return nil, err
			}
			outCols = append(outCols, algebra.Col(e, outputName(c, i)))
		}
	}
	var having algebra.Expr
	if sel.Having != nil {
		having, err = tr.expr(sel.Having, aggs)
		if err != nil {
			return nil, err
		}
	}
	var orderKeys []algebra.SortKey
	for _, k := range sel.OrderBy {
		e, err := tr.expr(k.E, aggs)
		if err != nil {
			return nil, err
		}
		orderKeys = append(orderKeys, algebra.SortKey{E: e, Desc: k.Desc})
	}

	if len(groupExprs) > 0 || len(aggs.collected) > 0 {
		if star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
		}
		preAgg := plan.Schema()
		plan = &algebra.Aggregate{Child: plan, Group: groupExprs, Aggs: aggs.collected}
		// Replace grouping expressions in the output clauses with
		// references to the grouping columns. The comparison resolves
		// attribute references against the pre-aggregation schema, so
		// differently-qualified spellings of one grouping expression match
		// (SELECT a+1 … GROUP BY r.a+1), as they do in PostgreSQL.
		normGroups := make([]algebra.Expr, len(groupExprs))
		for i, g := range groupExprs {
			normGroups[i] = normalizeRefs(g.E, preAgg)
		}
		replace := func(e algebra.Expr) algebra.Expr {
			return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
				nx := normalizeRefs(x, preAgg)
				for i, g := range groupExprs {
					if algebra.ExprEqual(nx, normGroups[i]) || algebra.ExprEqual(x, origGroup[i]) {
						return algebra.Attr(g.As)
					}
				}
				return x
			})
		}
		for i := range outCols {
			outCols[i].E = replace(outCols[i].E)
		}
		if having != nil {
			having = replace(having)
			plan = &algebra.Select{Child: plan, Cond: having}
		}
		for i := range orderKeys {
			orderKeys[i].E = replace(orderKeys[i].E)
		}
	} else if having != nil {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}

	childSch := plan.Schema() // pre-projection schema, for hidden sort keys
	proj := &algebra.Project{Child: plan, Cols: outCols, Distinct: sel.Distinct}
	plan = proj

	// ORDER BY keys referencing output aliases (or projected expressions)
	// resolve against the projection. A key the projection cannot express —
	// a dropped column (`SELECT a FROM r ORDER BY b`), a qualified base
	// reference (`ORDER BY r2.b`) or a sublink — is computed as a hidden
	// trailing projection column, so the sort and any LIMIT cut above can
	// evaluate it; the hidden columns are stripped after the sort (below for
	// nested blocks, by the result presentation for the top-level one).
	hidden := 0
	var hiddenCols []algebra.ProjExpr
	if len(orderKeys) > 0 {
		for i := range orderKeys {
			// A bare name that directly names an output column is that
			// output column — SQL's output-alias rule takes precedence over
			// the structural source-expression match below, which would
			// otherwise mis-resolve `SELECT a AS b, b AS a … ORDER BY a`
			// onto the source column a instead of the output alias.
			if ref, isRef := orderKeys[i].E.(algebra.AttrRef); isRef && ref.Qual == "" {
				if idx, amb := proj.Schema().Lookup("", ref.Name); idx >= 0 && !amb {
					continue
				}
			}
			mapped := aliasKeys(orderKeys[i].E, outCols)
			if keyResolves(mapped, proj.Schema()) && !algebra.HasSublink(mapped) {
				orderKeys[i].E = mapped
				continue
			}
			if !keyResolves(orderKeys[i].E, childSch) {
				// Neither schema can evaluate the key (an unknown or
				// correlated reference); leave it for the evaluator to
				// resolve against enclosing scopes or reject.
				orderKeys[i].E = mapped
				continue
			}
			if sel.Distinct {
				return nil, fmt.Errorf("sql: for SELECT DISTINCT, ORDER BY expressions must appear in the select list")
			}
			name := tr.freshName("ord")
			hiddenCols = append(hiddenCols, algebra.Col(orderKeys[i].E, name))
			orderKeys[i].E = algebra.Attr(name)
			hidden++
		}
		if len(hiddenCols) > 0 {
			// Copy-on-write: proj's column slice aliases outCols, which the
			// alias-resolution helpers above may share, and plan nodes are
			// frozen once published. Build the extended projection as a
			// fresh node instead of appending in place.
			cols := make([]algebra.ProjExpr, 0, len(proj.Cols)+len(hiddenCols))
			cols = append(cols, proj.Cols...)
			cols = append(cols, hiddenCols...)
			proj = &algebra.Project{Child: proj.Child, Cols: cols, Distinct: proj.Distinct}
			plan = proj
		}
		plan = &algebra.Order{Child: plan, Keys: orderKeys}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		plan = &algebra.Limit{Child: plan, N: sel.Limit, Offset: sel.Offset}
	}
	if hidden > 0 {
		if top {
			tr.hidden = hidden
		} else {
			// Nested block: strip the hidden key columns above the sort and
			// limit, restoring the block's visible schema.
			visible := plan.Schema().Attrs[:len(proj.Cols)-hidden]
			strip := make([]algebra.ProjExpr, len(visible))
			for i, a := range visible {
				strip[i] = algebra.KeepAttr(a)
			}
			plan = algebra.NewProject(plan, strip...)
		}
	}
	return plan, nil
}

// normalizeRefs rewrites attribute references that resolve uniquely in sch
// to positional spellings ("#N" cannot collide with lexed identifiers), so
// differently-qualified spellings of one column compare structurally equal.
// Unresolvable or ambiguous references — e.g. correlated ones — are left
// as written.
func normalizeRefs(e algebra.Expr, sch schema.Schema) algebra.Expr {
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		if ref, ok := x.(algebra.AttrRef); ok {
			if idx, amb := sch.Lookup(ref.Qual, ref.Name); idx >= 0 && !amb {
				return algebra.Attr(fmt.Sprintf("#%d", idx))
			}
		}
		return x
	})
}

// keyResolves reports whether a sort-key expression can be evaluated over
// sch: every attribute reference — including the free (correlated)
// references escaping any sublink queries — resolves there uniquely.
func keyResolves(e algebra.Expr, sch schema.Schema) bool {
	ok := true
	check := func(ref algebra.AttrRef) {
		if idx, amb := sch.Lookup(ref.Qual, ref.Name); idx < 0 || amb {
			ok = false
		}
	}
	algebra.WalkExpr(e, func(x algebra.Expr) bool {
		switch v := x.(type) {
		case algebra.AttrRef:
			check(v)
		case algebra.Sublink:
			for _, fv := range algebra.FreeVars(v.Query) {
				check(fv)
			}
			if v.Test != nil {
				algebra.WalkExpr(v.Test, func(y algebra.Expr) bool {
					if r, isRef := y.(algebra.AttrRef); isRef {
						check(r)
					}
					return ok
				})
			}
			return false
		}
		return ok
	})
	return ok
}

// pushGroupSublinks rewrites grouping expressions containing sublinks into
// references to a pre-aggregation projection that computes them, passing
// every input attribute through.
func (tr *translator) pushGroupSublinks(plan algebra.Op, groups []algebra.GroupExpr) (algebra.Op, []algebra.GroupExpr, error) {
	any := false
	for _, g := range groups {
		if algebra.HasSublink(g.E) {
			any = true
			break
		}
	}
	if !any {
		return plan, groups, nil
	}
	cols := make([]algebra.ProjExpr, 0, plan.Schema().Len()+len(groups))
	for _, a := range plan.Schema().Attrs {
		cols = append(cols, algebra.KeepAttr(a))
	}
	out := make([]algebra.GroupExpr, len(groups))
	for i, g := range groups {
		if !algebra.HasSublink(g.E) {
			out[i] = g
			continue
		}
		name := tr.freshName("gsub")
		cols = append(cols, algebra.Col(g.E, name))
		out[i] = algebra.GroupExpr{E: algebra.Attr(name), As: g.As, Qual: g.Qual}
	}
	return algebra.NewProject(plan, cols...), out, nil
}

// outputName derives the projected column name of select-list item i: its
// alias, a plain identifier's own name, or the positional fallback colN.
// The analyzer (ordinal resolution, output-alias typing) and the translator
// (projection naming) share this single definition so the two can never
// disagree about what an output column is called.
func outputName(c SelectCol, i int) string {
	if c.Alias != "" {
		return c.Alias
	}
	if id, ok := c.E.(Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("col%d", i+1)
}

// aliasKeys maps ORDER BY references that name an output column's source
// expression onto the output attribute, so sorting happens over the
// projected schema.
func aliasKeys(e algebra.Expr, cols []algebra.ProjExpr) algebra.Expr {
	return algebra.MapExpr(e, func(x algebra.Expr) algebra.Expr {
		for _, c := range cols {
			if algebra.ExprEqual(x, c.E) {
				return algebra.Attr(c.As)
			}
		}
		return x
	})
}

func (tr *translator) fromItem(ref TableRef) (algebra.Op, error) {
	switch {
	case ref.Join != nil:
		l, err := tr.fromItem(ref.Join.Left)
		if err != nil {
			return nil, err
		}
		r, err := tr.fromItem(ref.Join.Right)
		if err != nil {
			return nil, err
		}
		on, err := tr.expr(ref.Join.On, nil)
		if err != nil {
			return nil, err
		}
		if ref.Join.LeftOuter {
			return &algebra.LeftJoin{L: l, R: r, Cond: on}, nil
		}
		return &algebra.Join{L: l, R: r, Cond: on}, nil
	case ref.Sub != nil:
		sub, err := tr.stmt(ref.Sub, false)
		if err != nil {
			return nil, err
		}
		cols := make([]algebra.ProjExpr, sub.Schema().Len())
		for i, a := range sub.Schema().Attrs {
			cols[i] = algebra.ProjExpr{E: algebra.QAttr(a.Qual, a.Name), As: a.Name, Qual: ref.Alias}
		}
		return algebra.NewProject(sub, cols...), nil
	default:
		if def, ok := tr.views[ref.Table]; ok {
			return tr.expandView(def, ref.Alias)
		}
		sch, err := tr.cat.Schema(ref.Table)
		if err != nil {
			return nil, err
		}
		return algebra.NewScan(ref.Table, ref.Alias, sch), nil
	}
}

// aggCollector gathers aggregate calls during expression translation,
// deduplicating structurally identical calls.
type aggCollector struct {
	tr        *translator
	collected []algebra.AggExpr
}

func (c *aggCollector) add(fn algebra.AggFn, arg algebra.Expr, distinct bool) string {
	for _, a := range c.collected {
		if a.Fn == fn && a.Distinct == distinct && algebra.ExprEqual(a.Arg, arg) {
			return a.As
		}
	}
	name := c.tr.freshName("agg")
	c.collected = append(c.collected, algebra.AggExpr{Fn: fn, Arg: arg, As: name, Distinct: distinct})
	return name
}

// aggFns maps SQL aggregate names.
var aggFns = map[string]algebra.AggFn{
	"sum": algebra.AggSum, "count": algebra.AggCount, "avg": algebra.AggAvg,
	"min": algebra.AggMin, "max": algebra.AggMax,
}

// cmpFromString maps operator spellings.
func cmpFromString(op string) (types.CmpOp, bool) {
	switch op {
	case "=":
		return types.CmpEq, true
	case "<>":
		return types.CmpNe, true
	case "<":
		return types.CmpLt, true
	case "<=":
		return types.CmpLe, true
	case ">":
		return types.CmpGt, true
	case ">=":
		return types.CmpGe, true
	default:
		return types.CmpEq, false
	}
}

// expr lowers a surface expression. aggs is non-nil in clauses where
// aggregate calls are allowed (SELECT list, HAVING, ORDER BY).
func (tr *translator) expr(e Expr, aggs *aggCollector) (algebra.Expr, error) {
	switch x := e.(type) {
	case Ident:
		return algebra.AttrRef{Qual: x.Qual, Name: x.Name}, nil
	case NumLit:
		if x.IsFlt {
			return algebra.FloatConst(x.Float), nil
		}
		return algebra.IntConst(x.Int), nil
	case StrLit:
		return algebra.StrConst(x.S), nil
	case BoolLit:
		return algebra.BoolConst(x.B), nil
	case NullLit:
		return algebra.NullConst(), nil
	case Binary:
		if x.Op == "||" {
			l, err := tr.expr(x.L, aggs)
			if err != nil {
				return nil, err
			}
			r, err := tr.expr(x.R, aggs)
			if err != nil {
				return nil, err
			}
			return algebra.Func{Name: "concat", Args: []algebra.Expr{l, r}}, nil
		}
		switch x.Op {
		case "AND", "OR":
			l, err := tr.expr(x.L, aggs)
			if err != nil {
				return nil, err
			}
			r, err := tr.expr(x.R, aggs)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" {
				return algebra.And{L: l, R: r}, nil
			}
			return algebra.Or{L: l, R: r}, nil
		}
		if op, ok := cmpFromString(x.Op); ok {
			l, err := tr.expr(x.L, aggs)
			if err != nil {
				return nil, err
			}
			r, err := tr.expr(x.R, aggs)
			if err != nil {
				return nil, err
			}
			return algebra.Cmp{Op: op, L: l, R: r}, nil
		}
		var aop types.ArithOp
		switch x.Op {
		case "+":
			aop = types.OpAdd
		case "-":
			aop = types.OpSub
		case "*":
			aop = types.OpMul
		case "/":
			aop = types.OpDiv
		case "%":
			aop = types.OpMod
		default:
			return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
		}
		l, err := tr.expr(x.L, aggs)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R, aggs)
		if err != nil {
			return nil, err
		}
		return algebra.Arith{Op: aop, L: l, R: r}, nil
	case Unary:
		inner, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			return algebra.Not{E: inner}, nil
		case "-":
			return algebra.Arith{Op: types.OpSub, L: algebra.IntConst(0), R: inner}, nil
		default:
			return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case IsNull:
		inner, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.IsNull{E: inner}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case InList:
		test, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr
		for _, item := range x.List {
			it, err := tr.expr(item, aggs)
			if err != nil {
				return nil, err
			}
			eq := algebra.Cmp{Op: types.CmpEq, L: test, R: it}
			if out == nil {
				out = eq
			} else {
				out = algebra.Or{L: out, R: eq}
			}
		}
		if out == nil {
			out = algebra.BoolConst(false)
		}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case InSub:
		test, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		sub, err := tr.subquery(x.Sub)
		if err != nil {
			return nil, err
		}
		if sub.Schema().Len() != 1 {
			return nil, fmt.Errorf("sql: IN subquery must produce one column, got %d", sub.Schema().Len())
		}
		var out algebra.Expr = algebra.Sublink{Kind: algebra.AnySublink, Op: types.CmpEq, Test: test, Query: sub}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case Quant:
		op, ok := cmpFromString(x.Op)
		if !ok {
			return nil, fmt.Errorf("sql: invalid quantified comparison operator %q", x.Op)
		}
		test, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		sub, err := tr.subquery(x.Sub)
		if err != nil {
			return nil, err
		}
		if sub.Schema().Len() != 1 {
			return nil, fmt.Errorf("sql: quantified subquery must produce one column, got %d", sub.Schema().Len())
		}
		kind := algebra.AllSublink
		if x.Any {
			kind = algebra.AnySublink
		}
		return algebra.Sublink{Kind: kind, Op: op, Test: test, Query: sub}, nil
	case Exists:
		sub, err := tr.subquery(x.Sub)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.Sublink{Kind: algebra.ExistsSublink, Query: sub}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case ScalarSub:
		sub, err := tr.subquery(x.Sub)
		if err != nil {
			return nil, err
		}
		if sub.Schema().Len() != 1 {
			return nil, fmt.Errorf("sql: scalar subquery must produce one column, got %d", sub.Schema().Len())
		}
		return algebra.Sublink{Kind: algebra.ScalarSublink, Query: sub}, nil
	case Between:
		v, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		lo, err := tr.expr(x.Lo, aggs)
		if err != nil {
			return nil, err
		}
		hi, err := tr.expr(x.Hi, aggs)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.And{
			L: algebra.Cmp{Op: types.CmpGe, L: v, R: lo},
			R: algebra.Cmp{Op: types.CmpLe, L: v, R: hi},
		}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case Case:
		// The simple form CASE x WHEN v THEN r … compares the operand to
		// each WHEN expression with =; both forms lower to the searched
		// algebra Case.
		var operand algebra.Expr
		if x.Operand != nil {
			op, err := tr.expr(x.Operand, aggs)
			if err != nil {
				return nil, err
			}
			operand = op
		}
		whens := make([]algebra.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			cond, err := tr.expr(w.Cond, aggs)
			if err != nil {
				return nil, err
			}
			if operand != nil {
				cond = algebra.Cmp{Op: types.CmpEq, L: operand, R: cond}
			}
			result, err := tr.expr(w.Result, aggs)
			if err != nil {
				return nil, err
			}
			whens[i] = algebra.CaseWhen{When: cond, Then: result}
		}
		var els algebra.Expr
		if x.Else != nil {
			e, err := tr.expr(x.Else, aggs)
			if err != nil {
				return nil, err
			}
			els = e
		}
		return algebra.Case{Whens: whens, Else: els}, nil
	case Like:
		e, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		pat, err := tr.expr(x.Pattern, aggs)
		if err != nil {
			return nil, err
		}
		var out algebra.Expr = algebra.Func{Name: "like", Args: []algebra.Expr{e, pat}}
		if x.Not {
			out = algebra.Not{E: out}
		}
		return out, nil
	case CastExpr:
		to, ok := algebra.ParseCastType(x.Type)
		if !ok {
			return nil, fmt.Errorf("sql: type %q does not exist", x.Type)
		}
		e, err := tr.expr(x.E, aggs)
		if err != nil {
			return nil, err
		}
		return algebra.Cast{E: e, To: to}, nil
	case Call:
		if def, ok := algebra.LookupFunc(x.Name); ok {
			if x.Star || x.Distinct {
				return nil, fmt.Errorf("sql: %s is not an aggregate function", x.Name)
			}
			if len(x.Args) < def.MinArgs || len(x.Args) > def.MaxArgs {
				return nil, fmt.Errorf("sql: %s takes %d to %d arguments, got %d", x.Name, def.MinArgs, def.MaxArgs, len(x.Args))
			}
			args := make([]algebra.Expr, len(x.Args))
			for i, a := range x.Args {
				arg, err := tr.expr(a, aggs)
				if err != nil {
					return nil, err
				}
				args[i] = arg
			}
			return algebra.Func{Name: x.Name, Args: args}, nil
		}
		fn, ok := aggFns[x.Name]
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %q", x.Name)
		}
		if aggs == nil {
			return nil, fmt.Errorf("sql: aggregate %s not allowed in this clause", x.Name)
		}
		if x.Star {
			if fn != algebra.AggCount {
				return nil, fmt.Errorf("sql: %s(*) is not valid", x.Name)
			}
			return algebra.Attr(aggs.add(algebra.AggCountStar, nil, false)), nil
		}
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sql: %s takes exactly one argument", x.Name)
		}
		arg, err := tr.expr(x.Args[0], nil)
		if err != nil {
			return nil, err
		}
		return algebra.Attr(aggs.add(fn, arg, x.Distinct)), nil
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

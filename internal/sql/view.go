package sql

import (
	"fmt"
	"strings"

	"perm/internal/algebra"
	"perm/internal/catalog"
)

// Statement is a script-level statement: either a query or a view
// definition (Perm stores provenance-free queries as views and reuses them
// as subqueries, §3.1).
type Statement struct {
	// Query is set for SELECT statements.
	Query *Stmt
	// CreateView / DropView are set for CREATE VIEW name AS … and
	// DROP VIEW name.
	CreateView *ViewDef
	DropView   string
	// CreateTable / Insert / DropTable are set for the DDL/DML statements
	// of the service layer: CREATE TABLE name (col type, …),
	// INSERT INTO name VALUES (…), … and DROP TABLE name.
	CreateTable *TableDef
	Insert      *InsertStmt
	DropTable   string
}

// ViewDef is a named stored query.
//
// perm:frozen
type ViewDef struct {
	Name string
	Body *Stmt
}

// ParseStatement parses a query, CREATE VIEW or DROP VIEW statement.
func ParseStatement(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.acceptKeyword("CREATE"):
		if p.acceptKeyword("TABLE") {
			def, err := p.parseCreateTable()
			if err != nil {
				return nil, err
			}
			return &Statement{CreateTable: def}, nil
		}
		if err := p.expect(tokKeyword, "VIEW"); err != nil {
			return nil, err
		}
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected view name, found %s", p.peek())
		}
		name := p.next().text
		if err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		p.accept(tokSymbol, ";")
		if p.peek().kind != tokEOF {
			return nil, p.errf("unexpected %s after view definition", p.peek())
		}
		if body.Left.Provenance {
			return nil, fmt.Errorf("sql: views cannot use SELECT PROVENANCE; query the view with PROVENANCE instead")
		}
		return &Statement{CreateView: &ViewDef{Name: name, Body: body}}, nil
	case p.acceptKeyword("DROP"):
		isTable := p.acceptKeyword("TABLE")
		if !isTable {
			if err := p.expect(tokKeyword, "VIEW"); err != nil {
				return nil, err
			}
		}
		kw := "VIEW"
		if isTable {
			kw = "TABLE"
		}
		if p.peek().kind != tokIdent {
			return nil, p.errf("expected %s name, found %s", strings.ToLower(kw), p.peek())
		}
		name := p.next().text
		p.accept(tokSymbol, ";")
		if p.peek().kind != tokEOF {
			return nil, p.errf("unexpected %s after DROP %s", p.peek(), kw)
		}
		if isTable {
			return &Statement{DropTable: name}, nil
		}
		return &Statement{DropView: name}, nil
	case p.acceptKeyword("INSERT"):
		ins, err := p.parseInsert()
		if err != nil {
			return nil, err
		}
		return &Statement{Insert: ins}, nil
	default:
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		p.accept(tokSymbol, ";")
		if p.peek().kind != tokEOF {
			return nil, p.errf("unexpected %s after end of statement", p.peek())
		}
		return &Statement{Query: stmt}, nil
	}
}

// Env is the translation environment: the base catalog plus named views.
// Views shadow base relations of the same name and may reference other
// views; cycles are rejected.
type Env struct {
	Catalog catalog.Source
	Views   map[string]*ViewDef
}

// CompileEnv parses, analyzes and translates a query against an environment
// with views.
func CompileEnv(env Env, query string) (*Translated, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if err := Analyze(env, stmt); err != nil {
		return nil, err
	}
	tr := &translator{cat: env.Catalog, views: env.Views}
	prov := stmt.Left.Provenance
	plan, err := tr.stmt(stmt, true)
	if err != nil {
		return nil, err
	}
	return &Translated{Plan: plan, Provenance: prov, Hidden: tr.hidden}, nil
}

// expandView translates a view reference under an alias, guarding against
// cycles via the expansion stack.
func (tr *translator) expandView(def *ViewDef, alias string) (algebra.Op, error) {
	for _, name := range tr.viewStack {
		if name == def.Name {
			return nil, fmt.Errorf("sql: cyclic view definition involving %q", def.Name)
		}
	}
	tr.viewStack = append(tr.viewStack, def.Name)
	defer func() { tr.viewStack = tr.viewStack[:len(tr.viewStack)-1] }()
	body, err := tr.stmt(def.Body, false)
	if err != nil {
		return nil, fmt.Errorf("sql: expanding view %q: %w", def.Name, err)
	}
	if alias == "" {
		alias = def.Name
	}
	cols := make([]algebra.ProjExpr, body.Schema().Len())
	for i, a := range body.Schema().Attrs {
		cols[i] = algebra.ProjExpr{E: algebra.QAttr(a.Qual, a.Name), As: a.Name, Qual: alias}
	}
	return algebra.NewProject(body, cols...), nil
}

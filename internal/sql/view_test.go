package sql

import (
	"strings"
	"testing"

	"perm/internal/eval"
	"perm/internal/rel"
)

func TestParseStatementKinds(t *testing.T) {
	st, err := ParseStatement("SELECT a FROM r;")
	if err != nil || st.Query == nil {
		t.Fatalf("query statement: %+v, %v", st, err)
	}
	st, err = ParseStatement("CREATE VIEW v AS SELECT a FROM r")
	if err != nil || st.CreateView == nil || st.CreateView.Name != "v" {
		t.Fatalf("create view: %+v, %v", st, err)
	}
	st, err = ParseStatement("DROP VIEW v;")
	if err != nil || st.DropView != "v" {
		t.Fatalf("drop view: %+v, %v", st, err)
	}
	bad := []string{
		"CREATE VIEW AS SELECT a FROM r",
		"CREATE VIEW v SELECT a FROM r",
		"CREATE VIEW v AS SELECT PROVENANCE a FROM r",
		"DROP VIEW",
		"CREATE TABLE x",
	}
	for _, q := range bad {
		if _, err := ParseStatement(q); err == nil {
			t.Errorf("ParseStatement(%q) should fail", q)
		}
	}
}

func TestViewExpansion(t *testing.T) {
	c := testDB()
	big, err := ParseStatement("CREATE VIEW big AS SELECT a, b FROM r WHERE a >= 2")
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Catalog: c, Views: map[string]*ViewDef{"big": big.CreateView}}
	tr, err := CompileEnv(env, "SELECT big.a FROM big WHERE big.b = 1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.FromTuples(out.Schema, ints(2))
	if !out.Equal(want) {
		t.Errorf("view query = %s", out)
	}
}

func TestViewInSublinkAndAlias(t *testing.T) {
	c := testDB()
	st, _ := ParseStatement("CREATE VIEW cs AS SELECT c FROM s WHERE d > 3")
	env := Env{Catalog: c, Views: map[string]*ViewDef{"cs": st.CreateView}}
	tr, err := CompileEnv(env, "SELECT a FROM r WHERE a IN (SELECT x.c FROM cs AS x)")
	if err != nil {
		t.Fatal(err)
	}
	out, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.FromTuples(out.Schema, ints(2))
	if !out.Equal(want) {
		t.Errorf("view in sublink = %s", out)
	}
}

func TestViewReferencingView(t *testing.T) {
	c := testDB()
	v1, _ := ParseStatement("CREATE VIEW v1 AS SELECT a FROM r WHERE a > 1")
	v2, _ := ParseStatement("CREATE VIEW v2 AS SELECT a FROM v1 WHERE a < 3")
	env := Env{Catalog: c, Views: map[string]*ViewDef{"v1": v1.CreateView, "v2": v2.CreateView}}
	tr, err := CompileEnv(env, "SELECT a FROM v2")
	if err != nil {
		t.Fatal(err)
	}
	out, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.FromTuples(out.Schema, ints(2))
	if !out.Equal(want) {
		t.Errorf("stacked views = %s", out)
	}
}

func TestCyclicViewRejected(t *testing.T) {
	c := testDB()
	v1, _ := ParseStatement("CREATE VIEW v1 AS SELECT a FROM v2")
	v2, _ := ParseStatement("CREATE VIEW v2 AS SELECT a FROM v1")
	env := Env{Catalog: c, Views: map[string]*ViewDef{"v1": v1.CreateView, "v2": v2.CreateView}}
	_, err := CompileEnv(env, "SELECT a FROM v1")
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("cyclic views should be rejected, got %v", err)
	}
}

// Package sql implements the SQL front end of the Perm reproduction: a
// lexer, a recursive-descent parser, a semantic analyzer and a translator
// from the SQL AST to the extended relational algebra of internal/algebra.
//
// The dialect covers the subset the paper's workloads need — SELECT
// [DISTINCT] lists with expressions and aliases (FROM-less SELECT included),
// FROM with base tables, aliases, subqueries and INNER/LEFT JOIN … ON,
// WHERE/HAVING conditions with IN, NOT IN, op ANY/SOME, op ALL, [NOT]
// EXISTS and scalar subqueries (correlated or not, arbitrarily nested),
// [NOT] LIKE, || concatenation, the scalar functions
// upper/lower/length/substr, CAST(x AS type), GROUP BY, ORDER BY (both with
// select-list ordinals), LIMIT/OFFSET, UNION/INTERSECT/EXCEPT [ALL] — plus
// Perm's extension keyword:
//
//	SELECT PROVENANCE … ;
//
// marks the query for provenance rewriting, exactly like the language
// extension described in §4.1 of the paper.
//
// Compilation runs in three passes. Parse builds the untyped AST. Analyze
// (see analyze.go) then resolves names and select-list ordinals, checks
// types bottom-up over kinds inferred from the catalog, resolves calls
// against the scalar function registry and enforces SQL's grouping and
// aggregate-placement rules, reporting errors with source positions and
// user-visible column names. Translate finally lowers the analyzed AST onto
// the algebra. Fine-grained provenance is only as trustworthy as the SQL
// interpretation feeding it, so the analyzer exists to turn every
// silently-wrong interpretation (no-op ORDER BY ordinals, cross-kind
// comparisons yielding Unknown) into a loud, PostgreSQL-compatible error.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexeme with its source position (1-based byte offset).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased, identifiers lower-cased
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// keywords of the dialect. SOME is an alias for ANY, as in SQL.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "PROVENANCE": true, "FROM": true,
	"WHERE": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "ANY": true, "SOME": true, "ALL": true, "EXISTS": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "ON": true, "UNION": true,
	"INTERSECT": true, "EXCEPT": true, "ASC": true, "DESC": true,
	"BETWEEN": true, "LIKE": true, "CREATE": true, "VIEW": true,
	"DROP": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CAST": true, "TABLE": true, "INSERT": true, "INTO": true,
	"VALUES": true,
}

// lex tokenizes the input. Errors carry byte positions for messages.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start + 1})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start + 1})
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start + 1})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at position %d", i)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: i})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=", "||":
				if two == "!=" {
					two = "<>"
				}
				toks = append(toks, token{kind: tokSymbol, text: two, pos: start + 1})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start + 1})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, start+1)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n + 1})
	return toks, nil
}

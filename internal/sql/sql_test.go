package sql

import (
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/catalog"
	"perm/internal/eval"
	"perm/internal/rel"
	"perm/internal/rewrite"
	"perm/internal/schema"
	"perm/internal/types"
)

func ints(vals ...int64) rel.Tuple {
	t := make(rel.Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewInt(v)
	}
	return t
}

func testDB() *catalog.Catalog {
	c := catalog.New()
	c.Register("r", rel.FromTuples(schema.New("", "a", "b"), ints(1, 1), ints(2, 1), ints(3, 2)))
	c.Register("s", rel.FromTuples(schema.New("", "c", "d"), ints(1, 3), ints(2, 4), ints(4, 5)))
	return c
}

func query(t *testing.T, c *catalog.Catalog, q string) *rel.Relation {
	t.Helper()
	tr, err := Compile(c, q)
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	out, err := eval.New(c).Eval(tr.Plan)
	if err != nil {
		t.Fatalf("eval %q: %v\nplan:\n%s", q, err, algebra.Indent(tr.Plan))
	}
	return out
}

// --- lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s' FROM r -- comment\nWHERE x <= 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	want := "SELECT a , it's FROM r WHERE x <= 1.5 ;"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("lex = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character should fail")
	}
}

// --- parser ---

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM r WHERE",
		"SELECT a FROM r GROUP a",
		"SELECT a FROM r LIMIT x",
		"SELECT a FROM (SELECT b FROM s)", // missing alias
		"SELECT a FROM r extra junk here",
		"SELECT a FROM r WHERE a IN ()",
		"SELECT a FROM r WHERE a NOT 5",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseProvenanceFlag(t *testing.T) {
	stmt, err := Parse("SELECT PROVENANCE a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Left.Provenance {
		t.Error("PROVENANCE flag not set")
	}
	stmt, err = Parse("SELECT a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Left.Provenance {
		t.Error("PROVENANCE flag set unexpectedly")
	}
}

func TestParseQuantifiersAndIn(t *testing.T) {
	stmt, err := Parse("SELECT * FROM r WHERE a = ANY (SELECT c FROM s) AND b NOT IN (SELECT d FROM s) AND a <> SOME (SELECT c FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Left.Where == nil {
		t.Fatal("missing WHERE")
	}
}

// --- end to end ---

func TestSimpleSelect(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a, b FROM r WHERE a >= 2")
	want := rel.FromTuples(out.Schema, ints(2, 1), ints(3, 2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestSelectStarAndAlias(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT * FROM r AS x WHERE x.a = 1")
	if out.Card() != 1 || out.Schema.Len() != 2 {
		t.Errorf("got %s", out)
	}
}

func TestExpressionsAndAliases(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a + b AS s, a * 2 AS dbl FROM r WHERE a BETWEEN 1 AND 2")
	want := rel.FromTuples(out.Schema, ints(2, 2), ints(3, 4))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
	if out.Schema.Attrs[0].Name != "s" || out.Schema.Attrs[1].Name != "dbl" {
		t.Errorf("schema = %s", out.Schema)
	}
}

func TestJoinSyntax(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a, d FROM r JOIN s ON a = c")
	want := rel.FromTuples(out.Schema, ints(1, 3), ints(2, 4))
	if !out.Equal(want) {
		t.Errorf("inner join: %s", out)
	}
	out = query(t, c, "SELECT a, d FROM r LEFT JOIN s ON a = c")
	if out.Card() != 3 {
		t.Errorf("left join card = %d", out.Card())
	}
}

func TestImplicitCrossJoin(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a, c FROM r, s WHERE a = c")
	want := rel.FromTuples(out.Schema, ints(1, 1), ints(2, 2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestGroupByHaving(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT b, sum(a) AS total FROM r GROUP BY b HAVING sum(a) > 2")
	want := rel.FromTuples(out.Schema, ints(1, 3), ints(2, 3))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT count(*) AS n, min(a) AS mn, max(a) AS mx, avg(a) AS av FROM r")
	if out.Card() != 1 {
		t.Fatalf("card = %d", out.Card())
	}
	want := rel.Tuple{types.NewInt(3), types.NewInt(1), types.NewInt(3), types.NewFloat(2)}
	if out.Count(want) != 1 {
		t.Errorf("got %s", out)
	}
}

func TestCountDistinct(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT count(DISTINCT b) AS n FROM r")
	if out.Count(ints(2)) != 1 {
		t.Errorf("count(distinct b) = %s", out)
	}
}

func TestOrderByLimit(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a FROM r ORDER BY a DESC LIMIT 2")
	want := rel.FromTuples(out.Schema, ints(3), ints(2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestDistinctSelect(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT DISTINCT b FROM r")
	want := rel.FromTuples(out.Schema, ints(1), ints(2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestInListAndNot(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a FROM r WHERE a IN (1, 3)")
	want := rel.FromTuples(out.Schema, ints(1), ints(3))
	if !out.Equal(want) {
		t.Errorf("IN list: %s", out)
	}
	out = query(t, c, "SELECT a FROM r WHERE a NOT IN (1, 3)")
	want = rel.FromTuples(out.Schema, ints(2))
	if !out.Equal(want) {
		t.Errorf("NOT IN list: %s", out)
	}
}

func TestSublinksEndToEnd(t *testing.T) {
	c := testDB()
	cases := []struct {
		q    string
		want []rel.Tuple
	}{
		{"SELECT a FROM r WHERE a = ANY (SELECT c FROM s)", []rel.Tuple{ints(1), ints(2)}},
		{"SELECT a FROM r WHERE a IN (SELECT c FROM s)", []rel.Tuple{ints(1), ints(2)}},
		{"SELECT a FROM r WHERE a NOT IN (SELECT c FROM s)", []rel.Tuple{ints(3)}},
		{"SELECT c FROM s WHERE c > ALL (SELECT a FROM r)", []rel.Tuple{ints(4)}},
		{"SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c = a)", []rel.Tuple{ints(1), ints(2)}},
		{"SELECT a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE c = a)", []rel.Tuple{ints(3)}},
		{"SELECT a FROM r WHERE a = (SELECT min(c) FROM s)", []rel.Tuple{ints(1)}},
		{"SELECT a FROM r WHERE b < (SELECT max(d) FROM s WHERE c = a)", []rel.Tuple{ints(1), ints(2)}},
	}
	for _, tc := range cases {
		out := query(t, c, tc.q)
		want := rel.FromTuples(out.Schema, tc.want...)
		if !out.Equal(want) {
			t.Errorf("%s = %s, want %s", tc.q, out, want)
		}
	}
}

func TestFromSubquery(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT v.t FROM (SELECT b, sum(a) AS t FROM r GROUP BY b) AS v WHERE v.t > 2")
	want := rel.FromTuples(out.Schema, ints(3), ints(3))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestSetOperations(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a FROM r UNION SELECT c FROM s")
	want := rel.FromTuples(out.Schema, ints(1), ints(2), ints(3), ints(4))
	if !out.Equal(want) {
		t.Errorf("union: %s", out)
	}
	out = query(t, c, "SELECT a FROM r INTERSECT SELECT c FROM s")
	want = rel.FromTuples(out.Schema, ints(1), ints(2))
	if !out.Equal(want) {
		t.Errorf("intersect: %s", out)
	}
	out = query(t, c, "SELECT a FROM r EXCEPT SELECT c FROM s")
	want = rel.FromTuples(out.Schema, ints(3))
	if !out.Equal(want) {
		t.Errorf("except: %s", out)
	}
	out = query(t, c, "SELECT b FROM r UNION ALL SELECT b FROM r")
	if out.Card() != 6 {
		t.Errorf("union all card = %d", out.Card())
	}
}

func TestCorrelatedNestedSQL(t *testing.T) {
	c := testDB()
	// Nested and correlated: which r.a values have an s partner whose d
	// exceeds every b of rows sharing that partner's c?
	q := `SELECT a FROM r WHERE EXISTS (
	        SELECT * FROM s WHERE c = a AND d > ALL (SELECT b FROM r WHERE a = c))`
	out := query(t, c, q)
	want := rel.FromTuples(out.Schema, ints(1), ints(2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
}

func TestProvenanceOnlyTopLevel(t *testing.T) {
	c := testDB()
	_, err := Compile(c, "SELECT a FROM r WHERE a IN (SELECT PROVENANCE c FROM s)")
	if err == nil {
		t.Error("nested PROVENANCE should be rejected")
	}
	_, err = Compile(c, "SELECT a FROM r UNION SELECT PROVENANCE c FROM s")
	if err == nil {
		t.Error("PROVENANCE on the right of a set op should be rejected")
	}
}

// TestSQLProvenancePipeline runs the full pipeline of §4.1: the extended-SQL
// query from the paper, parsed, translated, rewritten and executed.
func TestSQLProvenancePipeline(t *testing.T) {
	c := testDB()
	tr, err := Compile(c, "SELECT PROVENANCE * FROM r WHERE a = 3 AND b = ANY (SELECT c FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Provenance {
		t.Fatal("provenance flag lost")
	}
	res, err := rewrite.Rewrite(tr.Plan, rewrite.Gen)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eval.New(c).Eval(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// (3,2) qualifies (b=2 ∈ S.c); provenance: R(3,2) and S(2,4).
	want := rel.FromTuples(out.Schema, ints(3, 2, 3, 2, 2, 4))
	if !out.Equal(want) {
		t.Errorf("pipeline output = %s, want %s", out, want)
	}
}

func TestBetweenAndNegations(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a FROM r WHERE a NOT BETWEEN 2 AND 3")
	want := rel.FromTuples(out.Schema, ints(1))
	if !out.Equal(want) {
		t.Errorf("NOT BETWEEN: %s", out)
	}
	out = query(t, c, "SELECT a FROM r WHERE NOT (a = 1 OR a = 2)")
	want = rel.FromTuples(out.Schema, ints(3))
	if !out.Equal(want) {
		t.Errorf("NOT(...): %s", out)
	}
}

func TestUnaryMinusAndFloats(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a FROM r WHERE a > -1 AND a < 2.5")
	want := rel.FromTuples(out.Schema, ints(1), ints(2))
	if !out.Equal(want) {
		t.Errorf("got %s", out)
	}
	out = query(t, c, "SELECT -a AS neg FROM r WHERE a = 1")
	if out.Count(ints(-1)) != 1 {
		t.Errorf("unary minus: %s", out)
	}
}

func TestIsNotNullAndSome(t *testing.T) {
	c := catalog.New()
	c.Register("t", rel.FromTuples(schema.New("", "a"), ints(1), rel.Tuple{types.Null()}))
	out := query(t, c, "SELECT a FROM t WHERE a IS NOT NULL")
	if out.Card() != 1 {
		t.Errorf("IS NOT NULL: %s", out)
	}
	c2 := testDB()
	out = query(t, c2, "SELECT a FROM r WHERE a = SOME (SELECT c FROM s)")
	if out.Card() != 2 {
		t.Errorf("SOME: %s", out)
	}
}

func TestAggregateExpressionArguments(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT sum(a * b) AS s, sum(a) + sum(b) AS t FROM r")
	want := rel.Tuple{types.NewInt(9), types.NewInt(10)}
	if out.Count(want) != 1 {
		t.Errorf("aggregate expressions: %s", out)
	}
	// The same aggregate used twice is computed once (dedup by structure).
	tr, err := Compile(c, "SELECT sum(a) AS x, sum(a) AS y FROM r")
	if err != nil {
		t.Fatal(err)
	}
	var aggCount int
	algebra.Walk(tr.Plan, func(op algebra.Op) bool {
		if a, ok := op.(*algebra.Aggregate); ok {
			aggCount = len(a.Aggs)
		}
		return true
	})
	if aggCount != 1 {
		t.Errorf("duplicate aggregates not merged: %d", aggCount)
	}
}

func TestGroupByExpression(t *testing.T) {
	c := testDB()
	out := query(t, c, "SELECT a % 2 AS parity, count(*) AS n FROM r GROUP BY a % 2 ORDER BY parity")
	want := rel.FromTuples(out.Schema, ints(0, 1), ints(1, 2))
	if !out.Equal(want) {
		t.Errorf("group by expression: %s", out)
	}
}

func TestGroupBySublink(t *testing.T) {
	// §2.2: sublinks in GROUP BY are simulated with a projection before
	// aggregation. Group r rows by whether a appears in S.c.
	c := testDB()
	q := `SELECT count(*) AS n FROM r GROUP BY a IN (SELECT c FROM s) ORDER BY n`
	out := query(t, c, q)
	// a ∈ {1,2} are in S.c, a=3 is not → groups of sizes 2 and 1.
	want := rel.FromTuples(out.Schema, ints(1), ints(2))
	if !out.Equal(want) {
		t.Errorf("group-by-sublink = %s", out)
	}
	// And the provenance rewrite handles the resulting projection sublink.
	tr, err := Compile(c, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rewrite.Rewrite(tr.Plan, rewrite.Gen)
	if err != nil {
		t.Fatal(err)
	}
	pout, err := eval.New(c).Eval(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if pout.Empty() {
		t.Error("provenance of group-by-sublink query is empty")
	}
}

func TestStringComparisons(t *testing.T) {
	c := catalog.New()
	c.Register("w", rel.FromTuples(schema.New("", "name"),
		rel.Tuple{types.NewString("alpha")}, rel.Tuple{types.NewString("beta")}))
	out := query(t, c, "SELECT name FROM w WHERE name = 'beta'")
	if out.Card() != 1 {
		t.Errorf("string equality: %s", out)
	}
	out = query(t, c, "SELECT name FROM w WHERE name < 'b' ORDER BY name")
	if out.Card() != 1 {
		t.Errorf("string ordering: %s", out)
	}
}

func TestTranslateErrors(t *testing.T) {
	c := testDB()
	bad := []string{
		"SELECT a FROM nosuch",
		"SELECT zz(a) FROM r",
		"SELECT sum(a, b) FROM r",
		"SELECT a FROM r WHERE sum(a) > 1",
		"SELECT a FROM r HAVING a > 1",
		"SELECT a FROM r WHERE a IN (SELECT c, d FROM s)",
		"SELECT a FROM r WHERE a > (SELECT c, d FROM s)",
		"SELECT a FROM r UNION SELECT c, d FROM s",
		"SELECT * FROM r GROUP BY a",
	}
	for _, q := range bad {
		if _, err := Compile(c, q); err == nil {
			t.Errorf("Compile(%q) should fail", q)
		}
	}
}
